#!/usr/bin/env sh
# Runs the full tier-1 test suite (including the fault-injection soak) under
# AddressSanitizer + UndefinedBehaviorSanitizer, via the `sanitize` CMake preset.
# Usage: scripts/sanitize.sh [extra ctest args...]
set -eu

cd "$(dirname "$0")/.."

cmake --preset sanitize
cmake --build --preset sanitize -j "$(nproc)"
ctest --preset sanitize "$@"
