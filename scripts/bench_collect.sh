#!/usr/bin/env sh
# Runs every benchmark binary with `--json`, then merges the per-bench documents
# (schema "tock-bench-v1", see bench/bench_json.h) into one machine-readable
# results file:
#
#   {"schema":"tock-bench-results-v1","results":[ <per-bench doc>, ... ]}
#
# Usage: scripts/bench_collect.sh [output.json]
#   BUILD_DIR=build-foo scripts/bench_collect.sh    # non-default build tree
#
# The merge is plain concatenation — no jq/python dependency.
set -eu

cd "$(dirname "$0")/.."

BUILD_DIR="${BUILD_DIR:-build}"
OUT="${1:-BENCH_results.json}"

BENCHES="fig5_trusted_loc tab_syscall_sequences fig_energy_dutycycle \
tab_grant_exhaustion tab_allow_semantics tab_overlap_checks \
tab_process_loading tab_timer_virtualization tab_scheduler_policies \
tab_isolation_cost fig4_subslice tab_register_dsl tab_callbacks_vs_futures \
tab_hotpath_throughput tab_fleet_scaling tab_ota_throughput \
tab_telemetry_overhead"

tmpdir="$(mktemp -d)"
trap 'rm -rf "$tmpdir"' EXIT INT TERM

for b in $BENCHES; do
  bin="$BUILD_DIR/bench/$b"
  if [ ! -x "$bin" ]; then
    echo "error: $bin not found — build first (cmake --build $BUILD_DIR)" >&2
    exit 1
  fi
  echo "==== running $b ===="
  "$bin" --json "$tmpdir/$b.json"
  if [ ! -s "$tmpdir/$b.json" ]; then
    echo "error: $b produced no JSON output" >&2
    exit 1
  fi
done

{
  printf '{"schema":"tock-bench-results-v1","results":[\n'
  first=1
  for b in $BENCHES; do
    if [ "$first" = 1 ]; then first=0; else printf ',\n'; fi
    # Strip the trailing newline so the separator placement stays tidy.
    printf '%s' "$(cat "$tmpdir/$b.json")"
  done
  printf '\n]}\n'
} >"$OUT"

echo "wrote $OUT ($(wc -c <"$OUT") bytes, $(echo "$BENCHES" | wc -w) benches)"
