#!/usr/bin/env sh
# Builds and tests the supported configuration matrix:
#   default              — TOCK_TRACE=ON,  TOCK_DECODE_CACHE=ON
#   trace-off            — TOCK_TRACE=OFF (observability compiled out; must impose
#                          zero cost and zero behavior change when absent)
#   decode-off           — TOCK_DECODE_CACHE=OFF (VM predecode cache compiled out;
#                          the escape-hatch interpreter must be bit-identical)
#   trace-off-decode-off — both hot-path subsystems compiled out together
#   telemetry-off        — TOCK_TELEMETRY=OFF (live shm transport compiled out;
#                          boards must behave identically without it)
#   superblocks-off      — TOCK_SUPERBLOCKS=OFF (superblock chaining compiled out;
#                          the plain threaded batch engine must be bit-identical)
#   paged-mem-off        — TOCK_PAGED_MEM=OFF (copy-on-write paged board memory
#                          compiled out; eager flat banks must be bit-identical)
# and, for each preset, sweeps the scheduler dimension: the full suite under the
# default round-robin policy, then again under the cooperative policy via the
# TOCK_SCHED_POLICY override (board/sim_board.cc). The cooperative leg excludes
# the tests that *require* preemption or round-robin behavior by construction:
#   - KernelTest.InfiniteLoopCannotStarveNeighbor: the claim under test IS
#     preemptive isolation; cooperative mode intentionally lacks it (the
#     matching cooperative starvation test lives in extension_test.cc);
#   - AsyncLoader.* / LoaderCorruption.BitFlippedSignature…: spinning apps
#     starve the loader's deferred verification without a SysTick;
#   - FaultPolicy.AppBreakResetsAndPeerGrantsSurviveRestart and fault_soak:
#     CPU-bound victims/peers rely on preemption for mutual progress;
#   - Profiler.GoldenChromeTraceTwoApps: the golden export is recorded under
#     round-robin (non-default policies add the tockSched sidecar).
# Usage: scripts/check_matrix.sh [extra ctest args...]
set -eu

cd "$(dirname "$0")/.."

COOP_EXCLUDE='KernelTest.InfiniteLoopCannotStarveNeighbor|AsyncLoader\.|LoaderCorruption.BitFlippedSignatureFailsTheAuthenticityStep|FaultPolicy.AppBreakResetsAndPeerGrantsSurviveRestart|Profiler.GoldenChromeTraceTwoApps|^fault_soak$'

for preset in default trace-off decode-off trace-off-decode-off telemetry-off superblocks-off paged-mem-off; do
  echo "==== preset: $preset, policy: round-robin (default) ===="
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$(nproc)"
  ctest --preset "$preset" "$@"

  echo "==== preset: $preset, policy: cooperative ===="
  TOCK_SCHED_POLICY=cooperative ctest --preset "$preset" -E "$COOP_EXCLUDE" "$@"
done

echo "==== fleet smoke: sharded multi-board run via the CLI driver ===="
./build/src/tools/fleet --boards=4 --threads=2 --cycles=200000 >/dev/null
./build/src/tools/fleet --boards=4 --threads=1 --cycles=200000 --radio=off >/dev/null
# Scale-out knobs: paged vs eager backing, static sharding, idle-skip off, and
# the host-RSS report must all run clean through the CLI.
./build/src/tools/fleet --boards=64 --threads=2 --cycles=200000 --radio=off --report-rss >/dev/null
./build/src/tools/fleet --boards=4 --threads=2 --cycles=200000 --paged=off --steal=off --idle-skip=off >/dev/null

echo "==== telemetry smoke: fleet publishes to shm, tap attaches post-mortem ===="
# --telemetry-keep leaves the region behind so the tap can attach after the
# run, exactly like inspecting a crashed fleet. The tap must exit 0 and see
# every board's event stream.
TELEM_NAME="tock-matrix-$$"
./build/src/tools/fleet --boards=4 --threads=2 --cycles=2000000 \
  --telemetry="$TELEM_NAME" --telemetry-keep >/dev/null
./build/src/tools/tap --shm="$TELEM_NAME" --max-events=2 >/dev/null
rm -f "/dev/shm/$TELEM_NAME"

echo "==== OTA smoke: lossy multi-threaded signed-app push must converge ===="
# Exit code reflects convergence: the driver returns 1 unless every subscriber
# runs the verified update despite 10% drop + duplication + corruption.
./build/src/tools/fleet --ota --boards=9 --threads=4 --cycles=120000000 \
  --drop=100 --dup=20 --corrupt=10 >/dev/null

echo "==== preset: tsan — fleet sharding + radio mailbox + lossy OTA + live telemetry under ThreadSanitizer ===="
cmake --preset tsan
cmake --build --preset tsan -j "$(nproc)"
ctest --preset tsan -R 'Fleet|RadioHw|RadioFaults|Ota|Telemetry|SpscRing|Superblock|MidRunFlash|Paged' "$@"

echo "==== matrix OK (trace on/off x decode-cache on/off x telemetry on/off x superblocks on/off x paged-mem on/off, round-robin + cooperative, fleet + OTA + telemetry + tsan) ===="
