#!/usr/bin/env sh
# Builds and tests the two supported profiling configurations:
#   default   — TOCK_TRACE=ON  (counters, cycle attribution, histograms, export)
#   trace-off — TOCK_TRACE=OFF (all of the above compiled out; the observability
#               layer must impose zero cost and zero behavior change when absent)
# Usage: scripts/check_matrix.sh [extra ctest args...]
set -eu

cd "$(dirname "$0")/.."

for preset in default trace-off; do
  echo "==== preset: $preset ===="
  cmake --preset "$preset"
  cmake --build --preset "$preset" -j "$(nproc)"
  ctest --preset "$preset" "$@"
done

echo "==== matrix OK (default + trace-off) ===="
