// Telemetry transport overhead: the live shm publisher (kernel/telemetry.h)
// claims to be zero-perturbation and near-zero host cost. This bench proves
// both claims on the hot-path workload from tab_hotpath_throughput:
//
//   * identical simulation: telemetry off, on-with-no-reader, and on-with-a-
//     draining-reader must retire the same instruction count, the same syscall
//     mix, and end on the same cycle — divergence is a hard failure, because
//     it would mean attaching a tap changes what the fleet computes;
//   * cheap host: the drained run's simulated-instructions-per-wall-second
//     should be within ~2% of the telemetry-off figure. Push is a fixed
//     handful of atomic stores, and the reader runs on its own host thread —
//     the writer never blocks on it (util/spsc_ring.h).
//
// The syscall-heavy app makes every simulated iteration emit trace events
// (syscalls, upcalls, context switches), so the event rate through the ring is
// the realistic worst case for a chatty board, not an idle one.
#include <atomic>
#include <chrono>
#include <cstdio>
#include <string>
#include <thread>

#include <unistd.h>

#include "bench_json.h"
#include "board/sim_board.h"
#include "kernel/telemetry.h"

namespace {

// Compute-bound: a tight ALU/branch loop preempted by SysTick.
const char* kComputeApp = R"(
_start:
    li s0, 0
    li s1, 1
    li s2, 0x1234
loop:
    add s0, s0, s1
    xor s3, s0, s2
    slli s4, s3, 3
    srli s5, s3, 5
    or s6, s4, s5
    sub s7, s6, s0
    sltu s8, s0, s7
    andi s9, s7, 255
    add s2, s2, s8
    j loop
)";

// Syscall-heavy: command + yield-wait-for against the async temperature
// driver; every iteration crosses the trap boundary twice and delivers one
// upcall — a steady stream of trace events into the telemetry ring.
const char* kSyscallApp = R"(
_start:
loop:
    li a0, 0x60000
    li a1, 1
    li a2, 0
    li a3, 0
    li a4, 2
    ecall
    li a0, 2
    li a1, 0x60000
    li a2, 0
    li a4, 0
    ecall
    mv s2, a1
    j loop
)";

constexpr uint64_t kSimCycles = 20'000'000;

enum class Leg { kOff, kOnUndrained, kOnDrained };

struct RunResult {
  bool ok = false;
  uint64_t instructions = 0;
  uint64_t syscalls = 0;
  uint64_t upcalls = 0;
  uint64_t end_cycles = 0;
  uint64_t events_emitted = 0;
  uint64_t events_drained = 0;
  double wall_ns = 0.0;
};

RunResult RunWorkload(Leg leg) {
  std::string shm_path;
  tock::TelemetryRegion region;
  tock::BoardConfig config;
  if (leg != Leg::kOff) {
    char buf[128];
    std::snprintf(buf, sizeof(buf), "/tmp/tock_bench_telemetry_%d.shm",
                  static_cast<int>(getpid()));
    shm_path = buf;
    std::string error;
    if (!region.Create({shm_path, /*board_count=*/1, /*ring_capacity=*/4096},
                       tock::TelemetryConfig{}, &error)) {
      std::fprintf(stderr, "telemetry region failed: %s\n", error.c_str());
      return {};
    }
    config.telemetry = region.board(0);
  }
  tock::SimBoard board(config);

  tock::AppSpec compute;
  compute.name = "compute";
  compute.source = kComputeApp;
  compute.include_runtime = false;
  tock::AppSpec syscalls;
  syscalls.name = "syscalls";
  syscalls.source = kSyscallApp;
  syscalls.include_runtime = false;
  if (board.installer().Install(compute) == 0 ||
      board.installer().Install(syscalls) == 0 || board.Boot() != 2) {
    std::fprintf(stderr, "setup failed: %s\n", board.installer().error().c_str());
    return {};
  }

  // The drained leg attaches an in-process tap on its own thread — the same
  // lock-free protocol tools/tap uses out-of-process, minus the mmap.
  std::atomic<bool> done{false};
  std::atomic<uint64_t> drained{0};
  std::thread reader;
  if (leg == Leg::kOnDrained) {
    reader = std::thread([&] {
      tock::TelemetryTap tap;
      std::string error;
      if (!tap.Attach(region.base(), region.size(), &error)) {
        return;
      }
      tock::SpscReader* events = tap.events(0);
      uint64_t words[tock::kTelemetryRecordWords];
      uint64_t gap = 0;
      uint64_t count = 0;
      while (!done.load(std::memory_order_acquire)) {
        while (events->PollNext(words, &gap) ==
               tock::SpscReader::Poll::kRecord) {
          ++count;
        }
        // Poll at tools/tap's cadence: drain, then sleep. A reader that
        // busy-spins on the head cursor steals a core and bounces the
        // writer's cache line for no benefit — at this workload's event rate
        // the 4096-record ring holds ~100ms of slack, so a tap-like poll
        // period drains losslessly with ~20 wakeups a second.
        std::this_thread::sleep_for(std::chrono::milliseconds(20));
      }
      while (events->PollNext(words, &gap) == tock::SpscReader::Poll::kRecord) {
        ++count;  // final drain after the run stops
      }
      drained.store(count, std::memory_order_release);
    });
  }

  auto start = std::chrono::steady_clock::now();
  board.Run(kSimCycles);
  auto stop = std::chrono::steady_clock::now();
  if (reader.joinable()) {
    done.store(true, std::memory_order_release);
    reader.join();
  }

  RunResult r;
  r.ok = true;
  r.instructions = board.kernel().instructions_retired();
  r.syscalls = board.kernel().stats().SyscallsTotal();
  r.upcalls = board.kernel().stats().upcalls_delivered;
  r.end_cycles = board.mcu().CyclesNow();
  r.events_emitted = board.kernel().stats().telemetry_events_emitted;
  r.events_drained = drained.load();
  r.wall_ns = std::chrono::duration<double, std::nano>(stop - start).count();
  return r;
}

const char* LegName(Leg leg) {
  switch (leg) {
    case Leg::kOff: return "off";
    case Leg::kOnUndrained: return "on, no reader";
    case Leg::kOnDrained: return "on, drained";
  }
  return "?";
}

}  // namespace

int main(int argc, char** argv) {
  tock::bench::BenchReporter reporter("tab_telemetry_overhead", &argc, argv);

  std::printf("==== Telemetry transport overhead: off vs on vs on+drained ====\n\n");
  if (!tock::KernelConfig::telemetry_compiled) {
    std::printf("note: built with -DTOCK_TELEMETRY=OFF — all legs run without a\n"
                "sink, so the expected overhead is 0%%.\n\n");
  }

  const Leg legs[] = {Leg::kOff, Leg::kOnUndrained, Leg::kOnDrained};
  RunResult results[3];
  // Best-of-3 wall time per leg: the simulation is deterministic (every rep
  // must produce identical counts — checked below), so the fastest rep is the
  // least host-noise-contaminated measurement of the same work.
  constexpr int kReps = 3;
  for (int i = 0; i < 3; ++i) {
    for (int rep = 0; rep < kReps; ++rep) {
      RunResult r = RunWorkload(legs[i]);
      if (!r.ok) {
        return 1;
      }
      if (rep > 0 && r.instructions != results[i].instructions) {
        std::fprintf(stderr, "FAIL: leg '%s' not deterministic across reps\n",
                     LegName(legs[i]));
        return 1;
      }
      if (rep == 0 || r.wall_ns < results[i].wall_ns) {
        results[i] = r;
      }
    }
  }
  const RunResult& off = results[0];

  // The zero-perturbation contract, enforced: any simulated divergence between
  // the legs is a bug in the transport, not a benchmark result.
  for (int i = 1; i < 3; ++i) {
    const RunResult& r = results[i];
    if (r.instructions != off.instructions || r.syscalls != off.syscalls ||
        r.upcalls != off.upcalls || r.end_cycles != off.end_cycles) {
      std::fprintf(stderr,
                   "FAIL: leg '%s' diverged from telemetry-off\n"
                   "  insns   %llu vs %llu\n  syscalls %llu vs %llu\n"
                   "  upcalls %llu vs %llu\n  cycles  %llu vs %llu\n",
                   LegName(legs[i]),
                   (unsigned long long)r.instructions, (unsigned long long)off.instructions,
                   (unsigned long long)r.syscalls, (unsigned long long)off.syscalls,
                   (unsigned long long)r.upcalls, (unsigned long long)off.upcalls,
                   (unsigned long long)r.end_cycles, (unsigned long long)off.end_cycles);
      return 1;
    }
  }

  std::printf("  %-24s %15s %15s %15s\n", "metric", "off", "on (no reader)",
              "on (drained)");
  std::printf("  %-24s %15s %15s %15s\n", "------", "---", "--------------",
              "------------");
  std::printf("  %-24s %15llu %15llu %15llu\n", "sim instructions",
              (unsigned long long)results[0].instructions,
              (unsigned long long)results[1].instructions,
              (unsigned long long)results[2].instructions);
  std::printf("  %-24s %15llu %15llu %15llu\n", "events emitted",
              (unsigned long long)results[0].events_emitted,
              (unsigned long long)results[1].events_emitted,
              (unsigned long long)results[2].events_emitted);
  std::printf("  %-24s %15.1f %15.1f %15.1f\n", "wall time (ms)",
              results[0].wall_ns * 1e-6, results[1].wall_ns * 1e-6,
              results[2].wall_ns * 1e-6);

  double insn_per_sec[3];
  for (int i = 0; i < 3; ++i) {
    insn_per_sec[i] =
        static_cast<double>(results[i].instructions) / (results[i].wall_ns * 1e-9);
  }
  std::printf("  %-24s %15.2f %15.2f %15.2f\n", "sim Minsn/s",
              insn_per_sec[0] * 1e-6, insn_per_sec[1] * 1e-6,
              insn_per_sec[2] * 1e-6);

  const double overhead_undrained = 100.0 * (1.0 - insn_per_sec[1] / insn_per_sec[0]);
  const double overhead_drained = 100.0 * (1.0 - insn_per_sec[2] / insn_per_sec[0]);
  const double events_per_sec =
      static_cast<double>(results[2].events_drained) /
      (results[2].wall_ns * 1e-9);
  std::printf("\n  overhead (on, no reader):  %+.2f%%\n", overhead_undrained);
  std::printf("  overhead (on, drained):    %+.2f%% (target: <= 2%%)\n",
              overhead_drained);
  std::printf("  reader drained:            %llu of %llu events (%.2f Mevents/s)\n",
              (unsigned long long)results[2].events_drained,
              (unsigned long long)results[2].events_emitted,
              events_per_sec * 1e-6);

  reporter.Record("sim_insn_per_sec/telemetry_off", insn_per_sec[0], "insn/s");
  reporter.Record("sim_insn_per_sec/telemetry_on", insn_per_sec[1], "insn/s");
  reporter.Record("sim_insn_per_sec/telemetry_on_drained", insn_per_sec[2], "insn/s");
  reporter.Record("overhead_pct/no_reader", overhead_undrained, "%");
  reporter.Record("overhead_pct/drained", overhead_drained, "%");
  reporter.Record("events_emitted", static_cast<double>(results[2].events_emitted),
                  "events");
  reporter.Record("events_drained_per_sec", events_per_sec, "events/s");

  std::printf("\nshape: identical instruction/syscall/cycle counts across all three\n"
              "legs prove attaching a tap cannot change what a fleet computes; the\n"
              "wall-clock columns bound what live observability costs the host.\n");
  return 0;
}
