// Experiment E11 (§3.4): synchronous vs asynchronous (verified) process loading.
//
// Sweep the number of installed apps and measure simulated boot cost for:
//   (a) the synchronous loader: one structural pass, no crypto;
//   (b) the asynchronous state machine: header check -> hardware HMAC over the whole
//       image -> signature compare -> create, per app;
// then measure the latency of dynamically loading one more app at runtime — the
// capability the async design unlocked.
//
// Expected shape: async cost is dominated by image-size-proportional crypto time;
// sync is near-free but can neither verify nor (safely) load at runtime.
#include <cstdio>
#include <string>

#include "bench_json.h"
#include "board/sim_board.h"

namespace {

// Padded app so images are big enough that hashing dominates (as in real RoT boots).
std::string PaddedApp(int padding_words) {
  std::string source = "_start:\nspin:\n    j spin\npad:\n";
  source += "    .space " + std::to_string(padding_words * 4) + "\n";
  return source;
}

struct BootCost {
  uint64_t cycles = 0;
  int loaded = 0;
};

BootCost MeasureBoot(tock::LoaderMode mode, int n_apps, bool sign) {
  tock::BoardConfig config;
  config.kernel.loader = mode;
  tock::SimBoard board(config);
  for (int i = 0; i < n_apps; ++i) {
    tock::AppSpec app;
    app.name = "app" + std::to_string(i);
    app.source = PaddedApp(512);  // ~2 KiB binaries
    app.sign = sign;
    app.include_runtime = false;
    if (board.installer().Install(app) == 0) {
      std::fprintf(stderr, "install failed: %s\n", board.installer().error().c_str());
      return {};
    }
  }
  uint64_t start = board.mcu().CyclesNow();
  int loaded = board.Boot();
  return BootCost{board.mcu().CyclesNow() - start, loaded};
}

uint64_t MeasureDynamicLoad() {
  tock::BoardConfig config;
  config.kernel.loader = tock::LoaderMode::kAsynchronous;
  tock::SimBoard board(config);
  tock::AppSpec first;
  first.name = "base";
  first.source = PaddedApp(512);
  first.sign = true;
  first.include_runtime = false;
  board.installer().Install(first);
  board.Boot();
  board.Run(100'000);

  tock::AppSpec update;
  update.name = "update";
  update.source = PaddedApp(512);
  update.sign = true;
  update.include_runtime = false;
  uint32_t addr = board.installer().Install(update);
  uint64_t start = board.mcu().CyclesNow();
  board.loader().LoadOneAsync(addr);
  while (!board.loader().Done() && board.mcu().CyclesNow() < start + 50'000'000) {
    board.kernel().MainLoopStep(board.main_cap());
  }
  return board.mcu().CyclesNow() - start;
}

}  // namespace

int main(int argc, char** argv) {
  tock::bench::BenchReporter reporter("tab_process_loading", &argc, argv);
  std::printf("==== E11 (Table, §3.4): process loading — sync pass vs verified state machine ====\n\n");
  std::printf("  apps | sync cycles (loaded) | async+signed cycles (loaded) | crypto overhead\n");
  std::printf("  -----+----------------------+------------------------------+----------------\n");
  for (int n : {1, 2, 4, 8}) {
    BootCost sync_cost = MeasureBoot(tock::LoaderMode::kSynchronous, n, /*sign=*/true);
    BootCost async_cost = MeasureBoot(tock::LoaderMode::kAsynchronous, n, /*sign=*/true);
    std::printf("  %4d | %12llu (%d)%5s | %20llu (%d)%5s | %llu cycles/app\n", n,
                (unsigned long long)sync_cost.cycles, sync_cost.loaded, "",
                (unsigned long long)async_cost.cycles, async_cost.loaded, "",
                (unsigned long long)((async_cost.cycles - sync_cost.cycles) /
                                     static_cast<uint64_t>(n)));
    char name[48];
    std::snprintf(name, sizeof(name), "sync_boot_cycles/apps_%d", n);
    reporter.Record(name, static_cast<double>(sync_cost.cycles), "cycles");
    std::snprintf(name, sizeof(name), "async_signed_boot_cycles/apps_%d", n);
    reporter.Record(name, static_cast<double>(async_cost.cycles), "cycles");
  }

  uint64_t dynamic_cycles = MeasureDynamicLoad();
  reporter.Record("dynamic_load_cycles", static_cast<double>(dynamic_cycles), "cycles");
  std::printf("\n  dynamic load of one signed app at runtime: %llu cycles (%.2f ms at 16 MHz)\n",
              (unsigned long long)dynamic_cycles, dynamic_cycles / 16'000.0);
  std::printf("\nshape: the synchronous pass is near-free but unverified and boot-time-only;\n"
              "the async state machine pays image-proportional crypto time per app and, in\n"
              "exchange, makes runtime loading 'just trigger the kernel to check the new\n"
              "process' — §3.4's benefit/drawback trade exactly.\n");
  return 0;
}
