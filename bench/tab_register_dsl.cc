// Experiment E9 (§4.3): the typed register-field DSL is zero-cost.
//
// The same UART configuration sequence — set baud field, enable bits, poll a status
// field — written (a) with the DSL's Field/FieldValue operations and (b) with
// hand-written shifts and masks. Expected shape: identical ns/op; the DSL's
// bit-twiddling compiles away completely, leaving only the datasheet-shaped source.
#include <benchmark/benchmark.h>

#include "bench_json_gbench.h"

#include <cstdint>

#include "util/registers.h"

namespace {

struct Ctrl {
  static constexpr tock::Field<uint32_t> kEnable{0, 1};
  static constexpr tock::Field<uint32_t> kParity{1, 2};
  static constexpr tock::Field<uint32_t> kBaud{4, 4};
  static constexpr tock::Field<uint32_t> kWatermark{8, 8};
};
struct Status {
  static constexpr tock::Field<uint32_t> kTxFull{0, 1};
  static constexpr tock::Field<uint32_t> kLevel{8, 8};
};

void BM_RegisterDsl(benchmark::State& state) {
  tock::ReadWriteReg<uint32_t> ctrl;
  tock::ReadWriteReg<uint32_t> status(0x2A00);
  uint32_t level = 0;
  for (auto _ : state) {
    ctrl.Write(Ctrl::kEnable.Set() + Ctrl::kParity.Val(2) + Ctrl::kBaud.Val(7));
    ctrl.Modify(Ctrl::kWatermark.Val(32));
    if (!status.IsSet(Status::kTxFull)) {
      level += status.Read(Status::kLevel);
    }
    benchmark::DoNotOptimize(ctrl);
    benchmark::DoNotOptimize(level);
  }
}
BENCHMARK(BM_RegisterDsl);

void BM_ManualShiftMask(benchmark::State& state) {
  uint32_t ctrl = 0;
  uint32_t status = 0x2A00;
  uint32_t level = 0;
  for (auto _ : state) {
    ctrl = (1u << 0) | (2u << 1) | (7u << 4);
    ctrl = (ctrl & ~0xFF00u) | ((32u << 8) & 0xFF00u);
    if ((status & 0x1u) == 0) {
      level += (status >> 8) & 0xFFu;
    }
    benchmark::DoNotOptimize(ctrl);
    benchmark::DoNotOptimize(status);
    benchmark::DoNotOptimize(level);
  }
}
BENCHMARK(BM_ManualShiftMask);

// Constexpr proof that the DSL's arithmetic is resolved at compile time: these are
// compile-time constants, not runtime computation.
static_assert((Ctrl::kEnable.Set() + Ctrl::kParity.Val(2) + Ctrl::kBaud.Val(7)).value ==
              ((1u << 0) | (2u << 1) | (7u << 4)));
static_assert(Ctrl::kWatermark.Val(32).mask == 0xFF00u);

}  // namespace

int main(int argc, char** argv) {
  tock::bench::BenchReporter reporter("tab_register_dsl", &argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  tock::bench::GBenchJsonReporter console(&reporter);
  benchmark::RunSpecifiedBenchmarks(&console);
  return 0;
}
