// Experiment E2 (§2.2): capsule isolation is (virtually) free; hardware process
// isolation is not.
//
// Three ways to invoke the same trivial service:
//   (a) a direct function call          — no isolation
//   (b) a capsule call (virtual call through the narrow driver interface)
//                                       — language-based isolation, Tock's claim:
//                                         "fine-grained isolation ... with virtually
//                                         no runtime overhead"
//   (c) a process system call           — hardware isolation: trap, kernel dispatch,
//                                         MPU-guarded execution, trap return
//
// (a) and (b) are measured in host nanoseconds with google-benchmark (they are real
// C++ calls whose cost *is* the phenomenon). (c) is measured in simulated cycles,
// the same units the cost model charges real context switches in.
#include <benchmark/benchmark.h>

#include <cstdio>

#include "bench_json_gbench.h"
#include "board/sim_board.h"

namespace {

// The "service": bump a counter, return a value — what a trivial driver command does.
struct DirectService {
  uint64_t counter = 0;
  uint32_t Invoke(uint32_t arg) {
    counter += arg;
    return static_cast<uint32_t>(counter);
  }
};

class CapsuleService : public tock::SyscallDriver {
 public:
  tock::SyscallReturn Command(tock::ProcessId, uint32_t, uint32_t arg1, uint32_t) override {
    counter_ += arg1;
    return tock::SyscallReturn::SuccessU32(static_cast<uint32_t>(counter_));
  }
  uint64_t counter_ = 0;
};

void BM_DirectCall(benchmark::State& state) {
  DirectService service;
  uint32_t arg = 1;
  for (auto _ : state) {
    benchmark::DoNotOptimize(service.Invoke(arg));
  }
}
BENCHMARK(BM_DirectCall);

void BM_CapsuleCall(benchmark::State& state) {
  CapsuleService service;
  tock::SyscallDriver* driver = &service;  // devirtualization-proof
  benchmark::DoNotOptimize(driver);
  tock::ProcessId pid;
  for (auto _ : state) {
    benchmark::DoNotOptimize(driver->Command(pid, 1, 1, 0));
  }
}
BENCHMARK(BM_CapsuleCall);

// Simulated-cycle cost of the full process-boundary crossing.
void PrintSyscallCycleCost(tock::bench::BenchReporter& reporter) {
  tock::SimBoard board;
  tock::AppSpec app;
  app.name = "nullcall";
  app.source = R"(
_start:
    li s1, 1000
loop:
    # command(led driver 2, cmd 0 = existence check: the cheapest syscall there is)
    li a0, 2
    li a1, 0
    li a2, 0
    li a3, 0
    li a4, 2
    ecall
    addi s1, s1, -1
    bnez s1, loop
    li a0, 0
    li a4, 6
    ecall
)";
  if (board.installer().Install(app) == 0 || board.Boot() != 1) {
    std::fprintf(stderr, "setup failed\n");
    return;
  }
  uint64_t cycles_before = board.mcu().CyclesNow();
  tock::Process& proc = *board.kernel().process(0);
  while (proc.state != tock::ProcessState::kTerminated &&
         board.mcu().CyclesNow() < cycles_before + 20'000'000) {
    if (!board.kernel().MainLoopStep(board.main_cap(), cycles_before + 20'000'000)) {
      break;
    }
  }
  uint64_t total = board.mcu().CyclesNow() - cycles_before;
  // The kernel's own event counters (kernel/trace.h): the bench reports exactly what
  // the kernel measured instead of re-deriving counts from process state.
  const tock::KernelStats& stats = board.kernel().stats();
  // 7 instructions + 1 trap per iteration; subtract the instruction cost to isolate
  // the boundary crossing.
  uint64_t per_syscall = total / 1001;
  reporter.Record("syscall_cycles", static_cast<double>(per_syscall), "cycles");
  reporter.Record("context_switch_cycles",
                  static_cast<double>(tock::CycleCosts::kContextSwitch), "cycles");

  std::printf("\n==== E2: isolation cost summary ====\n");
  std::printf("  mechanism          | cost\n");
  std::printf("  -------------------+---------------------------\n");
  std::printf("  direct call        | see BM_DirectCall (host ns)\n");
  std::printf("  capsule call       | see BM_CapsuleCall (host ns, ~= direct: the paper's\n");
  std::printf("                     | 'virtually no CPU overhead' claim)\n");
  std::printf("  process syscall    | ~%llu simulated cycles each (trap %llu + return %llu +\n",
              (unsigned long long)per_syscall,
              (unsigned long long)tock::CycleCosts::kSyscallEntry,
              (unsigned long long)tock::CycleCosts::kSyscallExit);
  std::printf("                     | dispatch + instructions); plus %llu cycles + %u MPU\n",
              (unsigned long long)tock::CycleCosts::kContextSwitch, 2);
  std::printf("                     | region writes on every process switch\n");
  std::printf("  (kernel counted %llu syscalls, %llu context switches, %llu MPU reprograms)\n\n",
              (unsigned long long)stats.SyscallsTotal(),
              (unsigned long long)stats.context_switches,
              (unsigned long long)stats.mpu_reprograms);
}

}  // namespace

int main(int argc, char** argv) {
  tock::bench::BenchReporter reporter("tab_isolation_cost", &argc, argv);
  PrintSyscallCycleCost(reporter);
  benchmark::Initialize(&argc, argv);
  tock::bench::GBenchJsonReporter console(&reporter);
  benchmark::RunSpecifiedBenchmarks(&console);
  return 0;
}
