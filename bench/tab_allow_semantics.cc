// Experiment E6 (§3.3): v1 (capsule-held) vs v2 (kernel-held, swapping) allow
// semantics — soundness and cost.
//
//   soundness: under v1 a misbehaving capsule can retain a revoked buffer (a live
//   mutable alias into process memory, Rust-unsound); under v2 it is structurally
//   impossible because the capsule never receives buffer coordinates at all.
//
//   cost: the v2 swap is the same O(1) table update as v1's hand-off — the fix was
//   free, which is why it could become the default.
//
// Expected shape: stale-alias opportunities v1 = 1+, v2 = 0; cycles/allow ~equal.
#include <cstdio>
#include <cstring>

#include "bench_json.h"
#include "board/sim_board.h"

namespace {

constexpr uint32_t kHoarderDriver = 0x0BAD;
constexpr int kIterations = 500;

// The buggy v1-era capsule: keeps every buffer ever allowed to it (see tests/abi_test.cc).
class HoarderCapsule : public tock::SyscallDriver {
 public:
  tock::SyscallReturn Command(tock::ProcessId, uint32_t command_num, uint32_t,
                              uint32_t) override {
    return command_num == 0 ? tock::SyscallReturn::Success()
                            : tock::SyscallReturn::Failure(tock::ErrorCode::kNoSupport);
  }
  tock::Result<void> LegacyAllowV1(tock::ProcessId, uint32_t, uint32_t addr,
                                   uint32_t) override {
    if (held_ != 0 && held_ != addr) {
      ++stale_aliases;  // kept a revoked buffer: a live mutable alias
    }
    held_ = addr;
    return tock::Result<void>::Ok();
  }
  uint32_t held_ = 0;
  int stale_aliases = 0;
};

struct AbiResult {
  double cycles_per_allow = 0;
  int stale_aliases = 0;
  bool completed = false;
};

AbiResult RunAbi(tock::SyscallAbiVersion abi) {
  tock::BoardConfig config;
  config.kernel.abi = abi;
  tock::SimBoard board(config);
  HoarderCapsule hoarder;
  board.kernel().RegisterDriver(kHoarderDriver, &hoarder);

  tock::AppSpec app;
  app.name = "allower";
  // Alternate between two buffers: every allow revokes the previous one.
  app.source = R"(
_start:
    mv s0, a0
    li s1, 500
loop:
    li a0, 0x0BAD
    li a1, 0
    addi a2, s0, 256
    li a3, 64
    li a4, 3
    ecall
    li a0, 0x0BAD
    li a1, 0
    addi a2, s0, 512
    li a3, 64
    li a4, 3
    ecall
    addi s1, s1, -1
    bnez s1, loop
    li a0, 0
    li a4, 6
    ecall
)";
  app.include_runtime = false;
  if (board.installer().Install(app) == 0 || board.Boot() != 1) {
    std::fprintf(stderr, "setup failed\n");
    return {};
  }
  uint64_t start = board.mcu().CyclesNow();
  tock::Process& p = *board.kernel().process(0);
  while (p.state != tock::ProcessState::kTerminated &&
         board.mcu().CyclesNow() < start + 100'000'000) {
    if (!board.kernel().MainLoopStep(board.main_cap(), start + 100'000'000)) {
      break;
    }
  }
  uint64_t cycles = board.mcu().CyclesNow() - start;
  return AbiResult{static_cast<double>(cycles) / (2.0 * kIterations), hoarder.stale_aliases,
                   p.state == tock::ProcessState::kTerminated};
}

}  // namespace

int main(int argc, char** argv) {
  tock::bench::BenchReporter reporter("tab_allow_semantics", &argc, argv);
  std::printf("==== E6 (Table, §3.3): allow semantics — v1 capsule-held vs v2 swapping ====\n\n");
  AbiResult v1 = RunAbi(tock::SyscallAbiVersion::kV1);
  AbiResult v2 = RunAbi(tock::SyscallAbiVersion::kV2);
  reporter.Record("v1_cycles_per_allow", v1.cycles_per_allow, "cycles");
  reporter.Record("v2_cycles_per_allow", v2.cycles_per_allow, "cycles");
  reporter.Record("v1_stale_aliases", v1.stale_aliases, "count");
  reporter.Record("v2_stale_aliases", v2.stale_aliases, "count");

  std::printf("  ABI                  | cycles/allow | stale mutable aliases | sound?\n");
  std::printf("  ---------------------+--------------+-----------------------+-------\n");
  std::printf("  v1 (capsule-held)    | %12.1f | %21d | NO — capsule kept revoked buffers\n",
              v1.cycles_per_allow, v1.stale_aliases);
  std::printf("  v2 (kernel swapping) | %12.1f | %21d | yes — structurally unreachable\n",
              v2.cycles_per_allow, v2.stale_aliases);

  std::printf("\nshape: v2 eliminates every stale alias at essentially identical per-allow\n"
              "cost — the redesign of §3.3.2 bought soundness for free, at the price of\n"
              "one breaking ABI change (Tock 2.0).\n");
  return 0;
}
