// Experiment E4 (§2.5, §3.2): the asynchronous kernel's energy payoff.
//
// A sensing app samples the temperature once per period. Two kernels:
//   (a) event-driven (shipped design): the app blocks in yield; the kernel sleeps
//       the MCU whenever nothing is runnable;
//   (b) busy-poll baseline: the app spins on yield-no-wait, the CPU never sleeps —
//       what a naive synchronous main loop does on this hardware.
//
// Sweep the sampling period. Expected shape (the paper's energy argument): the
// async kernel's sleep fraction approaches 100% as the period grows and its energy
// advantage grows proportionally; the busy-poll baseline burns full power always.
#include <cstdio>
#include <string>

#include "bench_json.h"
#include "board/sim_board.h"

namespace {

const char* kEventDrivenApp = R"(
_start:
loop:
    call temp_read_sync
    li a0, %PERIOD%
    call sleep_ticks
    j loop
)";

const char* kBusyPollApp = R"(
_start:
loop:
    call temp_read_sync
    # arm the alarm, then spin on yield-no-wait until the upcall lands: the CPU
    # never enters a sleep state.
    li a0, 0
    li a1, 5
    li a2, %PERIOD%
    li a3, 0
    li a4, 2
    ecall
spin:
    li a0, 0
    li a4, 0
    ecall              # yield-no-wait: a0 = 1 iff an upcall ran
    beqz a0, spin
    j loop
)";

struct EnergyResult {
  double sleep_fraction;
  double energy;
  uint64_t samples;
};

EnergyResult RunKernel(const char* app_template, uint32_t period, uint64_t horizon) {
  tock::SimBoard board;
  std::string source = app_template;
  std::string needle = "%PERIOD%";
  size_t pos;
  while ((pos = source.find(needle)) != std::string::npos) {
    source.replace(pos, needle.size(), std::to_string(period));
  }
  // Busy-poll needs an alarm subscription for yield-no-wait delivery.
  if (source.find("spin:") != std::string::npos) {
    source.insert(source.find("loop:"),
                  "    li a0, 0\n    li a1, 0\n    la a2, nopret\n    li a3, 0\n"
                  "    li a4, 1\n    ecall\n");
    source += "\nnopret:\n    jr ra\n";
  }
  tock::AppSpec app;
  app.name = "sense";
  app.source = source;
  if (board.installer().Install(app) == 0 || board.Boot() != 1) {
    std::fprintf(stderr, "setup failed: %s\n", board.installer().error().c_str());
    return {};
  }
  board.mcu().ResetEnergyAccounting();
  uint64_t start_cycle = board.mcu().CyclesNow();
  uint64_t slept_before = board.kernel().stats().sleep_cycles;
  board.Run(horizon);
  // Sleep residency from the kernel's own counters (kernel/trace.h): cycles the
  // kernel spent parked in SleepUntilInterrupt over the elapsed window. Energy stays
  // a hardware power-model quantity.
  uint64_t elapsed = board.mcu().CyclesNow() - start_cycle;
  uint64_t slept = board.kernel().stats().sleep_cycles - slept_before;
  double sleep_fraction =
      elapsed == 0 ? 0.0 : static_cast<double>(slept) / static_cast<double>(elapsed);
  return EnergyResult{sleep_fraction, board.mcu().Energy(),
                      board.kernel().stats().upcalls_delivered};
}

}  // namespace

int main(int argc, char** argv) {
  tock::bench::BenchReporter reporter("fig_energy_dutycycle", &argc, argv);
  std::printf("==== E4 (Figure, §2.5): duty-cycle energy, async kernel vs busy-poll ====\n\n");
  std::printf("  %10s | %10s %12s | %10s %12s | %7s\n", "period", "async slp%", "async energy",
              "poll slp%", "poll energy", "ratio");
  std::printf("  %10s-+-%10s-%12s-+-%10s-%12s-+-%7s\n", "----------", "----------",
              "------------", "----------", "------------", "-----");

  const uint32_t kPeriods[] = {1'000, 10'000, 100'000, 1'000'000};
  for (uint32_t period : kPeriods) {
    uint64_t horizon = static_cast<uint64_t>(period) * 20 + 1'000'000;
    EnergyResult async_result = RunKernel(kEventDrivenApp, period, horizon);
    EnergyResult poll_result = RunKernel(kBusyPollApp, period, horizon);
    double ratio = async_result.energy > 0 ? poll_result.energy / async_result.energy : 0;
    std::printf("  %10u | %9.2f%% %12.0f | %9.2f%% %12.0f | %6.1fx\n", period,
                100.0 * async_result.sleep_fraction, async_result.energy,
                100.0 * poll_result.sleep_fraction, poll_result.energy, ratio);
    char name[64];
    std::snprintf(name, sizeof(name), "async_sleep/period_%u", period);
    reporter.Record(name, 100.0 * async_result.sleep_fraction, "percent");
    std::snprintf(name, sizeof(name), "poll_sleep/period_%u", period);
    reporter.Record(name, 100.0 * poll_result.sleep_fraction, "percent");
    std::snprintf(name, sizeof(name), "energy_ratio/period_%u", period);
    reporter.Record(name, ratio, "x");
  }

  std::printf("\nshape: the async kernel's sleep residency climbs toward 100%% with the\n"
              "period and its energy advantage grows with it; the busy-poll kernel\n"
              "stays near 0%% sleep — the asynchronous-design payoff of §2.5.\n");
  return 0;
}
