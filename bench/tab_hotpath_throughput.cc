// Host hot-path throughput: the predecoded instruction cache (vm/decode.h), the
// O(1) driver map, and the alarm mux's earliest-deadline cache are host-side
// optimizations that must not change simulated behavior. This bench proves both
// halves of that claim on one two-app workload:
//
//   * identical simulation: the cache-on and cache-off runs must retire the same
//     instruction count, execute the same syscall mix, and end on the same cycle —
//     any divergence is a hard failure, not a slow result;
//   * faster host: simulated instructions per wall-clock second with the cache on
//     must be at least ~2x the cache-off figure (the decode-once/execute-many
//     payoff; see DESIGN.md "Hot-path architecture").
//
// The workload pairs a compute-bound app (tight ALU/branch loop, preempted by
// SysTick) with a syscall-heavy app (command + yield-wait-for against the async
// temperature driver, exercising driver dispatch, the upcall queue, and the
// virtual-alarm mux every iteration). Both runs share one binary: the cache is a
// runtime flag (KernelConfig::enable_decode_cache) precisely so this comparison
// needs no second build tree.
#include <chrono>
#include <cstdio>

#include "bench_json.h"
#include "board/sim_board.h"

namespace {

// Compute-bound: a 10-instruction arithmetic loop that never traps. The decode
// cache converts every iteration after the first into pure table-driven execution.
const char* kComputeApp = R"(
_start:
    li s0, 0
    li s1, 1
    li s2, 0x1234
loop:
    add s0, s0, s1
    xor s3, s0, s2
    slli s4, s3, 3
    srli s5, s3, 5
    or s6, s4, s5
    sub s7, s6, s0
    sltu s8, s0, s7
    andi s9, s7, 255
    add s2, s2, s8
    j loop
)";

// Syscall-heavy: sample the async temperature driver forever with the two-trap
// command + yield-wait-for sequence. Each iteration crosses the syscall boundary
// twice, queues and delivers one upcall, and arms/fires the virtual alarm backing
// the simulated sensor.
const char* kSyscallApp = R"(
_start:
loop:
    # command(temp, 1 = sample)
    li a0, 0x60000
    li a1, 1
    li a2, 0
    li a3, 0
    li a4, 2
    ecall
    # yield-wait-for(temp, completion sub 0)
    li a0, 2
    li a1, 0x60000
    li a2, 0
    li a4, 0
    ecall
    mv s2, a1
    j loop
)";

constexpr uint64_t kSimCycles = 30'000'000;

struct RunResult {
  bool ok = false;
  uint64_t instructions = 0;
  uint64_t syscalls = 0;
  uint64_t upcalls = 0;
  uint64_t end_cycles = 0;
  uint64_t cache_fills = 0;
  double wall_ns = 0.0;
};

RunResult RunWorkload(bool cache_on) {
  tock::BoardConfig config;
  config.kernel.enable_decode_cache = cache_on;
  tock::SimBoard board(config);

  tock::AppSpec compute;
  compute.name = "compute";
  compute.source = kComputeApp;
  compute.include_runtime = false;
  tock::AppSpec syscalls;
  syscalls.name = "syscalls";
  syscalls.source = kSyscallApp;
  syscalls.include_runtime = false;
  if (board.installer().Install(compute) == 0 ||
      board.installer().Install(syscalls) == 0 || board.Boot() != 2) {
    std::fprintf(stderr, "setup failed: %s\n", board.installer().error().c_str());
    return {};
  }

  auto start = std::chrono::steady_clock::now();
  board.Run(kSimCycles);
  auto stop = std::chrono::steady_clock::now();

  RunResult r;
  r.ok = true;
  r.instructions = board.kernel().instructions_retired();
  r.syscalls = board.kernel().stats().SyscallsTotal();
  r.upcalls = board.kernel().stats().upcalls_delivered;
  r.end_cycles = board.mcu().CyclesNow();
  for (size_t i = 0; i < tock::Kernel::kMaxProcesses; ++i) {
    if (tock::Process* p = board.kernel().process(i)) {
      r.cache_fills += p->decode_cache.fills();
    }
  }
  r.wall_ns = std::chrono::duration<double, std::nano>(stop - start).count();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  tock::bench::BenchReporter reporter("tab_hotpath_throughput", &argc, argv);

  std::printf("==== Hot-path throughput: predecode cache on vs off, two-app workload ====\n\n");
  if (!tock::KernelConfig::decode_cache_compiled) {
    std::printf("note: built with -DTOCK_DECODE_CACHE=OFF — both legs run the\n"
                "fetch/decode interpreter, so the expected speedup is ~1.0x.\n\n");
  }

  // Off first so the cached run cannot inherit a warm host (page cache, branch
  // predictors) advantage from ordering alone; each leg builds its own board.
  RunResult off = RunWorkload(false);
  RunResult on = RunWorkload(true);
  if (!on.ok || !off.ok) {
    return 1;
  }

  // Bit-identical simulation is the contract that lets the golden traces stand.
  if (on.instructions != off.instructions || on.syscalls != off.syscalls ||
      on.upcalls != off.upcalls || on.end_cycles != off.end_cycles) {
    std::fprintf(stderr,
                 "FAIL: cache-on and cache-off runs diverged\n"
                 "  insns   %llu vs %llu\n  syscalls %llu vs %llu\n"
                 "  upcalls %llu vs %llu\n  cycles  %llu vs %llu\n",
                 (unsigned long long)on.instructions, (unsigned long long)off.instructions,
                 (unsigned long long)on.syscalls, (unsigned long long)off.syscalls,
                 (unsigned long long)on.upcalls, (unsigned long long)off.upcalls,
                 (unsigned long long)on.end_cycles, (unsigned long long)off.end_cycles);
    return 1;
  }

  double insn_per_sec_on = static_cast<double>(on.instructions) / (on.wall_ns * 1e-9);
  double insn_per_sec_off = static_cast<double>(off.instructions) / (off.wall_ns * 1e-9);
  double speedup = insn_per_sec_on / insn_per_sec_off;
  // Each syscall-app iteration is two traps; every trap crosses dispatch
  // (LookupDriver + upcall-queue handling), so wall time per syscall is the
  // end-to-end dispatch figure the driver-map work targets.
  double ns_per_syscall = on.wall_ns / static_cast<double>(on.syscalls);

  std::printf("  %-28s %15s %15s\n", "metric", "cache off", "cache on");
  std::printf("  %-28s %15s %15s\n", "------", "---------", "--------");
  std::printf("  %-28s %15llu %15llu\n", "sim instructions",
              (unsigned long long)off.instructions, (unsigned long long)on.instructions);
  std::printf("  %-28s %15llu %15llu\n", "syscalls",
              (unsigned long long)off.syscalls, (unsigned long long)on.syscalls);
  std::printf("  %-28s %15llu %15llu\n", "upcalls",
              (unsigned long long)off.upcalls, (unsigned long long)on.upcalls);
  std::printf("  %-28s %15llu %15llu\n", "decode-cache fills",
              (unsigned long long)off.cache_fills, (unsigned long long)on.cache_fills);
  std::printf("  %-28s %15.1f %15.1f\n", "wall time (ms)", off.wall_ns * 1e-6,
              on.wall_ns * 1e-6);
  std::printf("  %-28s %15.2f %15.2f\n", "sim Minsn/s", insn_per_sec_off * 1e-6,
              insn_per_sec_on * 1e-6);
  std::printf("\n  speedup (on/off):        %.2fx\n", speedup);
  std::printf("  ns per syscall dispatch: %.1f\n", ns_per_syscall);

  reporter.Record("sim_insn_per_sec/cache_off", insn_per_sec_off, "insn/s");
  reporter.Record("sim_insn_per_sec/cache_on", insn_per_sec_on, "insn/s");
  reporter.Record("speedup_cache_on_vs_off", speedup, "x");
  reporter.Record("ns_per_syscall_dispatch", ns_per_syscall, "ns");
  reporter.Record("decode_cache_fills", static_cast<double>(on.cache_fills), "fills");

  std::printf("\nshape: identical instruction/syscall/cycle counts prove the cache is\n"
              "invisible to the simulation; the wall-clock gap is the decode-once/\n"
              "execute-many payoff on the host.\n");
  return 0;
}
