// Host hot-path throughput: the interpreter engine ladder. Four legs share one
// binary and one two-app workload, differing only in runtime KernelConfig
// switches:
//
//   baseline     fetch/decode/execute per instruction (no host-side caching)
//   decode-cache predecoded instruction cache (vm/decode.h), per-insn kernel loop
//   threaded     batch engine: computed-goto dispatch (vm/cpu.cc RunBatch) with
//                block-boundary cycle accounting in the kernel
//   threaded+sb  batch engine + superblock chaining (straight-line runs executed
//                without per-insn budget/lookup checks, chained across branches)
//
// The bench proves both halves of the hot-path claim on every rung:
//
//   * identical simulation: all legs must retire the same instruction count,
//     execute the same syscall mix, and end on the same cycle — any divergence
//     is a hard failure, not a slow result;
//   * faster host: the threaded+superblocks leg must be at least 2x the
//     decode-cache leg in simulated instructions per wall-clock second (the
//     dispatch-overhead payoff; see DESIGN.md "Interpreter v2").
//
// The workload pairs a compute-bound app (tight ALU/branch loop, preempted by
// SysTick) with a syscall-heavy app (command + yield-wait-for against the async
// temperature driver, exercising driver dispatch, the upcall queue, and the
// virtual-alarm mux every iteration).
#include <chrono>
#include <cstdio>

#include "bench_json.h"
#include "board/sim_board.h"

namespace {

// Compute-bound: a 10-instruction arithmetic loop that never traps. The decode
// cache converts every iteration after the first into pure table-driven execution,
// and the superblock builder turns the loop body into one chained block.
const char* kComputeApp = R"(
_start:
    li s0, 0
    li s1, 1
    li s2, 0x1234
loop:
    add s0, s0, s1
    xor s3, s0, s2
    slli s4, s3, 3
    srli s5, s3, 5
    or s6, s4, s5
    sub s7, s6, s0
    sltu s8, s0, s7
    andi s9, s7, 255
    add s2, s2, s8
    j loop
)";

// Syscall-heavy: sample the async temperature driver forever with the two-trap
// command + yield-wait-for sequence. Each iteration crosses the syscall boundary
// twice, queues and delivers one upcall, and arms/fires the virtual alarm backing
// the simulated sensor.
const char* kSyscallApp = R"(
_start:
loop:
    # command(temp, 1 = sample)
    li a0, 0x60000
    li a1, 1
    li a2, 0
    li a3, 0
    li a4, 2
    ecall
    # yield-wait-for(temp, completion sub 0)
    li a0, 2
    li a1, 0x60000
    li a2, 0
    li a4, 0
    ecall
    mv s2, a1
    j loop
)";

constexpr uint64_t kSimCycles = 30'000'000;

struct EngineLeg {
  const char* name;        // human label and Record key suffix
  bool decode_cache;
  bool threaded;
  bool superblocks;
};

constexpr EngineLeg kLegs[] = {
    {"baseline", false, false, false},
    {"decode_cache", true, false, false},
    {"threaded", true, true, false},
    {"threaded_superblocks", true, true, true},
};
constexpr size_t kNumLegs = sizeof(kLegs) / sizeof(kLegs[0]);

struct RunResult {
  bool ok = false;
  uint64_t instructions = 0;
  uint64_t syscalls = 0;
  uint64_t upcalls = 0;
  uint64_t end_cycles = 0;
  uint64_t cache_fills = 0;
  uint64_t blocks_built = 0;
  uint64_t chain_hits = 0;
  double wall_ns = 0.0;
};

RunResult RunWorkload(const EngineLeg& leg) {
  tock::BoardConfig config;
  config.kernel.enable_decode_cache = leg.decode_cache;
  config.kernel.enable_threaded_dispatch = leg.threaded;
  config.kernel.enable_superblocks = leg.superblocks;
  tock::SimBoard board(config);

  tock::AppSpec compute;
  compute.name = "compute";
  compute.source = kComputeApp;
  compute.include_runtime = false;
  tock::AppSpec syscalls;
  syscalls.name = "syscalls";
  syscalls.source = kSyscallApp;
  syscalls.include_runtime = false;
  if (board.installer().Install(compute) == 0 ||
      board.installer().Install(syscalls) == 0 || board.Boot() != 2) {
    std::fprintf(stderr, "setup failed: %s\n", board.installer().error().c_str());
    return {};
  }

  auto start = std::chrono::steady_clock::now();
  board.Run(kSimCycles);
  auto stop = std::chrono::steady_clock::now();

  RunResult r;
  r.ok = true;
  r.instructions = board.kernel().instructions_retired();
  r.syscalls = board.kernel().stats().SyscallsTotal();
  r.upcalls = board.kernel().stats().upcalls_delivered;
  r.end_cycles = board.mcu().CyclesNow();
  r.blocks_built = board.kernel().stats().vm_blocks_built;
  r.chain_hits = board.kernel().stats().vm_block_chain_hits;
  for (size_t i = 0; i < tock::Kernel::kMaxProcesses; ++i) {
    if (tock::Process* p = board.kernel().process(i)) {
      r.cache_fills += p->decode_cache.fills();
    }
  }
  r.wall_ns = std::chrono::duration<double, std::nano>(stop - start).count();
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  tock::bench::BenchReporter reporter("tab_hotpath_throughput", &argc, argv);

  std::printf("==== Hot-path throughput: interpreter engine ladder, two-app workload ====\n\n");
  if (!tock::KernelConfig::decode_cache_compiled) {
    std::printf("note: built with -DTOCK_DECODE_CACHE=OFF — the cache-dependent legs\n"
                "degrade to the fetch/decode interpreter, so expect ~1.0x speedups.\n\n");
  }
  if (!tock::KernelConfig::superblocks_compiled) {
    std::printf("note: built with -DTOCK_SUPERBLOCKS=OFF — the threaded+superblocks\n"
                "leg runs the plain threaded engine; the 2x gate vs decode-cache\n"
                "still applies to the threaded engine itself.\n\n");
  }

  // Slowest leg first so no leg inherits a warm host (page cache, branch
  // predictors) advantage from ordering alone; each leg builds its own board.
  RunResult results[kNumLegs];
  for (size_t i = 0; i < kNumLegs; ++i) {
    results[i] = RunWorkload(kLegs[i]);
    if (!results[i].ok) {
      return 1;
    }
  }

  // Bit-identical simulation across every leg is the contract that lets the
  // golden traces stand no matter which engine a build or preset selects.
  const RunResult& ref = results[0];
  for (size_t i = 1; i < kNumLegs; ++i) {
    const RunResult& r = results[i];
    if (r.instructions != ref.instructions || r.syscalls != ref.syscalls ||
        r.upcalls != ref.upcalls || r.end_cycles != ref.end_cycles) {
      std::fprintf(stderr,
                   "FAIL: engine leg '%s' diverged from baseline\n"
                   "  insns   %llu vs %llu\n  syscalls %llu vs %llu\n"
                   "  upcalls %llu vs %llu\n  cycles  %llu vs %llu\n",
                   kLegs[i].name, (unsigned long long)r.instructions,
                   (unsigned long long)ref.instructions, (unsigned long long)r.syscalls,
                   (unsigned long long)ref.syscalls, (unsigned long long)r.upcalls,
                   (unsigned long long)ref.upcalls, (unsigned long long)r.end_cycles,
                   (unsigned long long)ref.end_cycles);
      return 1;
    }
  }

  double insn_per_sec[kNumLegs];
  for (size_t i = 0; i < kNumLegs; ++i) {
    insn_per_sec[i] = static_cast<double>(results[i].instructions) /
                      (results[i].wall_ns * 1e-9);
  }
  // Each syscall-app iteration is two traps; every trap crosses dispatch
  // (LookupDriver + upcall-queue handling), so wall time per syscall is the
  // end-to-end dispatch figure the driver-map work targets.
  const RunResult& best = results[kNumLegs - 1];
  double ns_per_syscall = best.wall_ns / static_cast<double>(best.syscalls);

  std::printf("  %-22s %14s %10s %12s %12s\n", "engine", "sim Minsn/s", "wall ms",
              "blocks", "chain hits");
  std::printf("  %-22s %14s %10s %12s %12s\n", "------", "-----------", "-------",
              "------", "----------");
  for (size_t i = 0; i < kNumLegs; ++i) {
    std::printf("  %-22s %14.2f %10.1f %12llu %12llu\n", kLegs[i].name,
                insn_per_sec[i] * 1e-6, results[i].wall_ns * 1e-6,
                (unsigned long long)results[i].blocks_built,
                (unsigned long long)results[i].chain_hits);
  }
  std::printf("\n  sim instructions %llu  syscalls %llu  upcalls %llu  end cycle %llu"
              "  (identical on every leg)\n",
              (unsigned long long)ref.instructions, (unsigned long long)ref.syscalls,
              (unsigned long long)ref.upcalls, (unsigned long long)ref.end_cycles);

  double speedup_cache = insn_per_sec[1] / insn_per_sec[0];
  double speedup_threaded = insn_per_sec[2] / insn_per_sec[1];
  double speedup_sb = insn_per_sec[3] / insn_per_sec[1];
  std::printf("\n  speedup decode-cache vs baseline:        %.2fx\n", speedup_cache);
  std::printf("  speedup threaded vs decode-cache:        %.2fx\n", speedup_threaded);
  std::printf("  speedup threaded+sb vs decode-cache:     %.2fx  (gate: >= 2x)\n",
              speedup_sb);
  std::printf("  ns per syscall dispatch:                 %.1f\n", ns_per_syscall);

  // Keep the pre-ladder key names alive so longitudinal BENCH_results.json
  // comparisons still line up: cache_off == baseline, cache_on == decode-cache.
  reporter.Record("sim_insn_per_sec/cache_off", insn_per_sec[0], "insn/s");
  reporter.Record("sim_insn_per_sec/cache_on", insn_per_sec[1], "insn/s");
  reporter.Record("sim_insn_per_sec/threaded", insn_per_sec[2], "insn/s");
  reporter.Record("sim_insn_per_sec/threaded_superblocks", insn_per_sec[3], "insn/s");
  reporter.Record("speedup_cache_on_vs_off", speedup_cache, "x");
  reporter.Record("speedup_threaded_vs_cache", speedup_threaded, "x");
  reporter.Record("speedup_superblocks_vs_cache", speedup_sb, "x");
  reporter.Record("ns_per_syscall_dispatch", ns_per_syscall, "ns");
  reporter.Record("decode_cache_fills", static_cast<double>(best.cache_fills), "fills");
  reporter.Record("vm_blocks_built", static_cast<double>(best.blocks_built), "blocks");
  reporter.Record("vm_block_chain_hits", static_cast<double>(best.chain_hits), "hits");

  bool gate_ok = speedup_sb >= 2.0;
  if (!gate_ok) {
    std::fprintf(stderr,
                 "FAIL: threaded+superblocks is %.2fx the decode-cache leg "
                 "(gate: >= 2x)\n",
                 speedup_sb);
  }

  std::printf("\nshape: identical instruction/syscall/cycle counts prove every engine is\n"
              "invisible to the simulation; the wall-clock ladder is the dispatch-\n"
              "overhead payoff (decode once -> thread dispatch -> chain superblocks).\n");
  return gate_ok ? 0 : 1;
}
