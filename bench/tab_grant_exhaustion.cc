// Experiment E5 (§2.4): grants confine memory exhaustion to the guilty process.
//
// Scenario: a hog process allocates kernel-side state without bound while a victim
// process periodically prints a heartbeat.
//
//   (a) grant design (this kernel): every allocation the kernel makes on the hog's
//       behalf comes out of the hog's own RAM quota. The hog hits its own wall; the
//       victim never misses a beat.
//   (b) shared-kernel-heap baseline (modelled): the same allocation stream drawn
//       from one global pool sized like a conventional embedded kernel heap. The
//       hog drains it; the victim's next allocation is refused.
//
// Expected shape: victim availability 100% under grants, collapse under the heap.
#include <cstdio>

#include "bench_json.h"
#include "board/sim_board.h"

namespace {

constexpr int kRounds = 40;
constexpr uint32_t kAllocPerRound = 512;

struct Outcome {
  int hog_failures = 0;
  int victim_failures = 0;
  int victim_heartbeats = 0;
};

// (a) Real kernel, real grants. The hog's "allocations" are grant-backed console
// state + sbrk growth; the victim prints heartbeats throughout.
Outcome RunGrantDesign() {
  tock::SimBoard board;
  tock::AppSpec hog;
  hog.name = "hog";
  hog.source = R"(
_start:
    mv s0, a0
grow:
    li a0, 1
    li a1, 512
    li a4, 5
    ecall             # sbrk(+512): kernel-visible allocation charged to us
    li t0, 129
    beq a0, t0, grow
park:
    li a0, 100000
    call sleep_ticks
    j park
)";
  tock::AppSpec victim;
  victim.name = "victim";
  victim.source = R"(
_start:
    li s1, 40
loop:
    la a0, msg
    li a1, 2
    call console_print
    li a0, 50000
    call sleep_ticks
    addi s1, s1, -1
    bnez s1, loop
    li a0, 0
    li a4, 6
    ecall
msg:
    .asciz "h\n"
)";
  if (board.installer().Install(hog) == 0 || board.installer().Install(victim) == 0 ||
      board.Boot() != 2) {
    std::fprintf(stderr, "grant setup failed\n");
    return {};
  }
  board.Run(200'000'000);

  Outcome outcome;
  const std::string& out = board.uart_hw().output();
  outcome.victim_heartbeats = static_cast<int>(std::count(out.begin(), out.end(), 'h'));
  outcome.victim_failures = kRounds - outcome.victim_heartbeats;
  // The hog's growth stopped at its own quota — count the refusals it must have hit.
  tock::Process& hog_proc = *board.kernel().process(0);
  outcome.hog_failures =
      hog_proc.app_break >= hog_proc.ram_start + hog_proc.ram_size - 1024 ? 1 : 0;
  return outcome;
}

// (b) Shared-heap baseline: a faithful model of the allocation *policy* difference.
// One pool serves everyone, first come first served.
Outcome RunSharedHeapBaseline() {
  constexpr uint32_t kKernelHeap = 16 * 1024;  // generous for this class of machine
  uint32_t heap_used = 0;
  auto heap_alloc = [&](uint32_t size) {
    if (heap_used + size > kKernelHeap) {
      return false;
    }
    heap_used += size;
    return true;
  };

  Outcome outcome;
  for (int round = 0; round < kRounds; ++round) {
    // The hog requests more kernel state every round and never frees.
    for (int i = 0; i < 4; ++i) {
      if (!heap_alloc(kAllocPerRound)) {
        ++outcome.hog_failures;
      }
    }
    // The victim needs a small transient allocation (console request state) to
    // print its heartbeat.
    if (heap_alloc(16)) {
      ++outcome.victim_heartbeats;
      heap_used -= 16;  // victim frees its state after each heartbeat
    } else {
      ++outcome.victim_failures;
    }
  }
  return outcome;
}

}  // namespace

int main(int argc, char** argv) {
  tock::bench::BenchReporter reporter("tab_grant_exhaustion", &argc, argv);
  std::printf("==== E5 (Table, §2.4): memory-exhaustion isolation, hog vs victim ====\n\n");
  Outcome grants = RunGrantDesign();
  Outcome heap = RunSharedHeapBaseline();
  reporter.Record("grants_victim_heartbeats", grants.victim_heartbeats, "count");
  reporter.Record("grants_victim_failures", grants.victim_failures, "count");
  reporter.Record("heap_victim_heartbeats", heap.victim_heartbeats, "count");
  reporter.Record("heap_victim_failures", heap.victim_failures, "count");

  std::printf("  design             | hog hit its wall | victim heartbeats | victim denied\n");
  std::printf("  -------------------+------------------+-------------------+--------------\n");
  std::printf("  grants (Tock)      | %-16s | %9d / %-5d | %d\n",
              grants.hog_failures > 0 ? "yes (own quota)" : "no", grants.victim_heartbeats,
              kRounds, grants.victim_failures);
  std::printf("  shared kernel heap | %-16s | %9d / %-5d | %d\n",
              heap.hog_failures > 0 ? "yes (pool empty)" : "no", heap.victim_heartbeats,
              kRounds, heap.victim_failures);

  std::printf("\nshape: under grants the victim's availability is 100%% no matter what the\n"
              "hog does; under a shared heap the hog's exhaustion becomes the victim's\n"
              "outage — the dependability argument of §2.4.\n");
  return 0;
}
