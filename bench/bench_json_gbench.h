// google-benchmark bridge for bench_json.h (kept separate so the plain
// table-printing benches never include benchmark.h).
//
// Usage in a gbench binary's main:
//   tock::bench::BenchReporter reporter("fig4_subslice", &argc, argv);  // eats --json
//   benchmark::Initialize(&argc, argv);
//   tock::bench::GBenchJsonReporter console(&reporter);
//   benchmark::RunSpecifiedBenchmarks(&console);
//
// The console output is unchanged; each finished run is additionally recorded as a
// metric named after the benchmark (real time, in gbench's reported time unit).
#ifndef TOCK_BENCH_BENCH_JSON_GBENCH_H_
#define TOCK_BENCH_BENCH_JSON_GBENCH_H_

#include <benchmark/benchmark.h>

#include "bench_json.h"

namespace tock::bench {

class GBenchJsonReporter : public benchmark::ConsoleReporter {
 public:
  explicit GBenchJsonReporter(BenchReporter* out) : out_(out) {}

  void ReportRuns(const std::vector<Run>& runs) override {
    for (const Run& run : runs) {
      if (run.error_occurred) {
        continue;
      }
      out_->Record(run.benchmark_name(), run.GetAdjustedRealTime(),
                   benchmark::GetTimeUnitString(run.time_unit));
    }
    ConsoleReporter::ReportRuns(runs);
  }

 private:
  BenchReporter* out_;
};

}  // namespace tock::bench

#endif  // TOCK_BENCH_BENCH_JSON_GBENCH_H_
