// Experiment E1 / Figure 5: kernel size vs. trusted-code footprint across eras.
//
// The paper's Figure 5 shows the Tock kernel growing ~10x over a decade while the
// amount of `unsafe` Rust stays flat and small. The C++ analog: every file carries
// an ERA tag (1..5, DESIGN.md §6) and everything that would require `unsafe` in
// Rust is delimited by TRUSTED-BEGIN/END markers. This harness audits the tree and
// prints the cumulative growth table.
//
// Expected shape: total LoC rises steeply era over era; trusted LoC stays small and
// nearly flat (well under 10% by the final era).
#include <cstdio>

#include "bench_json.h"
#include "tools/loc_audit.h"

#ifndef TOCK_SOURCE_DIR
#define TOCK_SOURCE_DIR "."
#endif

int main(int argc, char** argv) {
  tock::bench::BenchReporter reporter("fig5_trusted_loc", &argc, argv);
  std::printf("==== E1 (Figure 5): kernel growth vs. trusted code ====\n\n");
  tock::AuditReport report = tock::AuditTree(std::string(TOCK_SOURCE_DIR) + "/src");
  std::printf("%s", tock::FormatReport(report).c_str());

  if (!report.cumulative_eras.empty()) {
    const auto& first = report.cumulative_eras.front();
    const auto& last = report.cumulative_eras.back();
    double growth = first.total_lines == 0
                        ? 0.0
                        : static_cast<double>(last.total_lines) /
                              static_cast<double>(first.total_lines);
    double trusted_pct = last.total_lines == 0
                             ? 0.0
                             : 100.0 * static_cast<double>(last.trusted_lines) /
                                   static_cast<double>(last.total_lines);
    std::printf("\nshape check: total grew %.1fx across eras; final trusted share %.2f%% %s\n",
                growth, trusted_pct,
                (growth > 1.5 && trusted_pct < 10.0) ? "(matches Figure 5's shape)"
                                                     : "(UNEXPECTED — investigate)");
    reporter.Record("total_lines", static_cast<double>(last.total_lines), "lines");
    reporter.Record("trusted_lines", static_cast<double>(last.trusted_lines), "lines");
    reporter.Record("growth_across_eras", growth, "x");
    reporter.Record("trusted_share", trusted_pct, "percent");
  }
  return report.unbalanced_files == 0 ? 0 : 1;
}
