// ERA: 2
// OTA distribution throughput vs link quality (DESIGN.md §12).
//
// One gateway pushes the same signed TBF update to four subscriber boards over
// the simulated radio medium while each subscriber keeps running its baseline
// app. The link-fault layer is swept from a clean fabric to 30% drop, and for
// each point we record the simulated cycles until every subscriber runs the
// verified update, the retransmit overhead the retry/backoff plane paid for it,
// and the resulting goodput (signed image bytes delivered per megacycle).
//
// Convergence itself is a gate, not a metric: a row that fails to converge
// within the budget prints FAIL and the binary exits non-zero, so the bench
// doubles as a lossy-fabric smoke test in scripts/check_matrix.sh.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <vector>

#include "bench_json.h"
#include "board/fleet.h"
#include "board/sim_board.h"

namespace {

constexpr size_t kSubscribers = 4;
constexpr uint64_t kCycleBudget = 400'000'000;
constexpr uint64_t kStep = 500'000;

const char* kSleeperApp = R"(
_start:
loop:
    li a0, 50000
    call sleep_ticks
    j loop
)";

struct SweepPoint {
  const char* label;
  uint32_t drop_permille;
  uint32_t dup_permille;
  uint32_t corrupt_permille;
};

constexpr SweepPoint kSweep[] = {
    {"clean", 0, 0, 0},
    {"drop10", 100, 20, 10},
    {"drop30", 300, 20, 10},
};

struct RunResult {
  bool ok = false;
  uint64_t cycles = 0;          // simulated cycles until the campaign resolved
  uint64_t image_bytes = 0;     // size of the signed update image
  uint64_t frames_sent = 0;
  uint64_t retransmits = 0;
  uint64_t frames_dropped = 0;
  uint64_t frames_corrupted = 0;
  double wall_s = 0.0;
};

RunResult RunCampaign(const SweepPoint& point, unsigned threads) {
  tock::FleetConfig fc;
  fc.threads = threads;
  fc.link_faults.seed = 0xB046;
  fc.link_faults.drop_permille = point.drop_permille;
  fc.link_faults.duplicate_permille = point.dup_permille;
  fc.link_faults.corrupt_permille = point.corrupt_permille;
  tock::Fleet fleet(fc);

  std::vector<std::unique_ptr<tock::SimBoard>> boards;
  for (size_t i = 0; i < kSubscribers + 1; ++i) {
    tock::BoardConfig bc;
    bc.rng_seed = 0x07A0 + static_cast<uint32_t>(i);
    bc.radio_addr = static_cast<uint16_t>(i + 1);
    bc.medium = &fleet.medium();
    bc.ota.role = i == 0 ? tock::OtaRole::kGateway : tock::OtaRole::kSubscriber;
    auto board = std::make_unique<tock::SimBoard>(bc);
    int expected = 0;
    if (i != 0) {
      tock::AppSpec sleeper;
      sleeper.name = "sleeper";
      sleeper.source = kSleeperApp;
      if (board->installer().Install(sleeper) == 0) {
        std::fprintf(stderr, "setup failed: %s\n", board->installer().error().c_str());
        return {};
      }
      expected = 1;
    }
    if (board->Boot() != expected) {
      std::fprintf(stderr, "boot failed on board %zu\n", i);
      return {};
    }
    fleet.AddBoard(board.get());
    boards.push_back(std::move(board));
  }
  fleet.AlignClocks();

  tock::AppSpec update;
  update.name = "update";
  update.source = kSleeperApp;
  update.sign = true;
  uint32_t staging = boards[1]->ota_staging_addr();
  std::string error;
  std::vector<uint8_t> image =
      tock::BuildAppImage(update, staging, tock::SimBoard::kDeviceKey, &error);
  if (image.empty()) {
    std::fprintf(stderr, "image build failed: %s\n", error.c_str());
    return {};
  }
  RunResult r;
  r.image_bytes = image.size();
  std::vector<uint16_t> addrs;
  for (size_t i = 1; i < boards.size(); ++i) {
    addrs.push_back(static_cast<uint16_t>(i + 1));
  }
  tock::OtaGateway& gateway = boards[0]->ota_gateway();
  gateway.Configure(std::move(image), addrs);
  gateway.StartPush();

  auto start = std::chrono::steady_clock::now();
  uint64_t ran = 0;
  while (ran < kCycleBudget && !gateway.Done()) {
    fleet.Run(kStep);
    ran += kStep;
  }
  r.wall_s = std::chrono::duration<double>(std::chrono::steady_clock::now() - start).count();

  if (gateway.stats().converged != kSubscribers) {
    std::fprintf(stderr, "FAIL: %s converged %llu/%zu within %llu cycles\n", point.label,
                 static_cast<unsigned long long>(gateway.stats().converged), kSubscribers,
                 static_cast<unsigned long long>(kCycleBudget));
    return {};
  }
  tock::FleetStats stats = fleet.Stats();
  if (stats.wedge_events != 0) {
    std::fprintf(stderr, "FAIL: %s wedged a board\n", point.label);
    return {};
  }
  r.ok = true;
  r.cycles = ran;
  r.frames_sent = gateway.stats().frames_sent;
  r.retransmits = gateway.stats().retransmits;
  r.frames_dropped = stats.frames_dropped;
  r.frames_corrupted = stats.frames_corrupted;
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  tock::bench::BenchReporter reporter("tab_ota_throughput", &argc, argv);

  std::printf("OTA throughput vs link quality — 1 gateway + %zu subscribers, signed update\n\n",
              kSubscribers);
  std::printf("%-8s %6s %5s %5s  %12s %9s %9s %7s %7s %12s\n", "link", "drop", "dup", "cor",
              "cycles", "frames", "retx", "lost", "corrupt", "B/Mcycle");

  bool all_ok = true;
  for (const SweepPoint& point : kSweep) {
    RunResult r = RunCampaign(point, /*threads=*/1);
    if (!r.ok) {
      all_ok = false;
      std::printf("%-8s %5u%% FAILED\n", point.label, point.drop_permille / 10);
      continue;
    }
    double goodput = static_cast<double>(r.image_bytes * kSubscribers) /
                     (static_cast<double>(r.cycles) / 1e6);
    std::printf("%-8s %5.1f%% %4.1f%% %4.1f%%  %12llu %9llu %9llu %7llu %7llu %12.1f\n",
                point.label, point.drop_permille / 10.0, point.dup_permille / 10.0,
                point.corrupt_permille / 10.0, static_cast<unsigned long long>(r.cycles),
                static_cast<unsigned long long>(r.frames_sent),
                static_cast<unsigned long long>(r.retransmits),
                static_cast<unsigned long long>(r.frames_dropped),
                static_cast<unsigned long long>(r.frames_corrupted), goodput);
    std::string prefix = std::string("ota_") + point.label;
    reporter.Record(prefix + "_cycles_to_converge", static_cast<double>(r.cycles), "cycles");
    reporter.Record(prefix + "_goodput", goodput, "bytes/Mcycle");
    reporter.Record(prefix + "_retransmit_ratio",
                    r.frames_sent ? 100.0 * static_cast<double>(r.retransmits) /
                                        static_cast<double>(r.frames_sent)
                                  : 0.0,
                    "%");
  }

  std::printf("\n%s\n", all_ok ? "all campaigns converged, zero wedged boards"
                               : "FAIL: at least one campaign did not converge");
  return all_ok ? 0 : 1;
}
