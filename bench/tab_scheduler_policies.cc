// Scheduler-policy experiment (kernel/scheduler.h, kernel/sched/).
//
// Two measurements across the four pluggable policies:
//
//   1. Dispatch overhead: host ns per Next() decision against a synthetic
//      half-full process table. All four policies are O(kMaxProcesses) scans by
//      design, so this is the constant factor a board buys with each policy —
//      not a hot path (one decision per main-loop step), but worth pinning.
//
//   2. Fairness under interrupt pressure: two CPU-bound apps (yield-no-wait
//      spin loops) run under a seeded IRQ storm, which forces scheduling
//      decision points even for the cooperative policy (an interrupt ends the
//      running process's turn without a SysTick). Reported: each app's share of
//      attributed user cycles, context switches, and timeslice expirations.
//      Round-robin and MLFQ split the CPU near 50/50; the priority policy —
//      with app0 deliberately favored — demonstrates strict-priority starvation
//      of the spinning loser.
#include <chrono>
#include <cstdio>
#include <memory>

#include "bench_json.h"
#include "board/sim_board.h"
#include "hw/memory_map.h"
#include "kernel/sched/cooperative.h"
#include "kernel/sched/mlfq.h"
#include "kernel/sched/priority.h"
#include "kernel/sched/round_robin.h"
#include "kernel/scheduler.h"

namespace {

using namespace tock;

const SchedulerPolicy kPolicies[] = {
    SchedulerPolicy::kRoundRobin,
    SchedulerPolicy::kCooperative,
    SchedulerPolicy::kPriority,
    SchedulerPolicy::kMlfq,
};

std::unique_ptr<Scheduler> MakeScheduler(SchedulerPolicy policy,
                                         std::span<Process> procs,
                                         const KernelConfig& config) {
  switch (policy) {
    case SchedulerPolicy::kRoundRobin:
      return std::make_unique<RoundRobinScheduler>(procs, config);
    case SchedulerPolicy::kCooperative:
      return std::make_unique<CooperativeScheduler>(procs, config);
    case SchedulerPolicy::kPriority:
      return std::make_unique<PriorityScheduler>(procs, config);
    case SchedulerPolicy::kMlfq:
      return std::make_unique<MlfqScheduler>(procs, config);
  }
  return nullptr;
}

double MeasureDispatchNs(SchedulerPolicy policy) {
  KernelConfig config;
  config.scheduler.policy = policy;
  std::array<Process, Kernel::kMaxProcesses> procs;
  // Half-full table, the realistic shape: slots 0/2/4/6 created and runnable,
  // the rest never used.
  for (size_t i = 0; i < procs.size(); i += 2) {
    procs[i].id = ProcessId{static_cast<uint8_t>(i), 1};
    procs[i].state = ProcessState::kRunnable;
    procs[i].priority = static_cast<uint8_t>(i);
  }
  auto sched = MakeScheduler(policy, procs, config);

  constexpr int kIters = 400'000;
  uint64_t picked = 0;  // defeats dead-code elimination
  auto start = std::chrono::steady_clock::now();
  for (int i = 0; i < kIters; ++i) {
    SchedulingDecision d = sched->Next(static_cast<uint64_t>(i) * 10'000);
    if (d.process != nullptr) {
      picked += d.process->id.index;
      // Alternate block/expire feedback so stateful policies pay their
      // bookkeeping (MLFQ demotion) inside the measured loop.
      sched->ExecutionComplete(*d.process,
                               i % 2 == 0 ? StoppedReason::kBlocked
                                          : StoppedReason::kTimesliceExpired,
                               static_cast<uint64_t>(i) * 10'000);
    }
  }
  auto end = std::chrono::steady_clock::now();
  if (picked == UINT64_MAX) {
    std::printf("(impossible)\n");
  }
  double ns = std::chrono::duration<double, std::nano>(end - start).count();
  return ns / kIters;
}

struct FairnessResult {
  double share0 = 0.0;  // app0's fraction of attributed user cycles (0..1)
  double share1 = 0.0;
  uint64_t context_switches = 0;
  uint64_t timeslice_expirations = 0;
  uint64_t irqs = 0;
};

FairnessResult MeasureFairness(SchedulerPolicy policy) {
  BoardConfig config;
  config.kernel.scheduler.policy = policy;
  SimBoard board(config);
  // Two identical CPU-bound spinners: one yield-no-wait syscall per iteration,
  // never blocking.
  const char* spin = "_start:\nloop:\n    li a0, 0\n    li a4, 0\n    ecall\n    j loop\n";
  for (const char* name : {"app0", "app1"}) {
    AppSpec app;
    app.name = name;
    app.source = spin;
    if (board.installer().Install(app) == 0) {
      std::fprintf(stderr, "install failed: %s\n", board.installer().error().c_str());
      return {};
    }
  }
  if (board.Boot() != 2) {
    return {};
  }
  if (policy == SchedulerPolicy::kPriority) {
    // Favor app0 outright; the fairness table then shows what strict priority
    // does to a spinning loser.
    (void)board.kernel().SetPriority(board.kernel().process(0)->id, 1, board.pm_cap());
    (void)board.kernel().SetPriority(board.kernel().process(1)->id, 6, board.pm_cap());
  }

  // A seeded IRQ storm covering the whole horizon: a pending interrupt ends the
  // running app's turn even when no SysTick is armed (cooperative).
  board.fault_injector().StartIrqStorm(&board.mcu(), MemoryMap::kGpio,
                                       /*period_cycles=*/2'000, /*count=*/2'000);
  board.Run(4'000'000);

  FairnessResult r;
  Process* p0 = board.kernel().process(0);
  Process* p1 = board.kernel().process(1);
  r.context_switches = p0->context_switches + p1->context_switches;
  r.timeslice_expirations = p0->timeslice_expirations + p1->timeslice_expirations;
  r.irqs = board.fault_injector().irqs_injected();
  if (KernelTrace::kEnabled) {
    ProcStats s0 = board.kernel().GetProcStats(0);
    ProcStats s1 = board.kernel().GetProcStats(1);
    uint64_t total = s0.user_cycles + s1.user_cycles;
    if (total > 0) {
      r.share0 = static_cast<double>(s0.user_cycles) / static_cast<double>(total);
      r.share1 = static_cast<double>(s1.user_cycles) / static_cast<double>(total);
    }
  } else {
    // Trace-off builds have no cycle attribution; syscall counts are the
    // always-available progress measure.
    uint64_t total = p0->syscall_count + p1->syscall_count;
    if (total > 0) {
      r.share0 = static_cast<double>(p0->syscall_count) / static_cast<double>(total);
      r.share1 = static_cast<double>(p1->syscall_count) / static_cast<double>(total);
    }
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  tock::bench::BenchReporter reporter("tab_scheduler_policies", &argc, argv);

  std::printf("==== Scheduler policies: dispatch overhead & fairness under IRQ storm ====\n\n");
  std::printf("  policy      | dispatch ns | app0 share | app1 share | ctxsw | tsexp | irqs\n");
  std::printf("  ------------+-------------+------------+------------+-------+-------+------\n");
  for (SchedulerPolicy policy : kPolicies) {
    double ns = MeasureDispatchNs(policy);
    FairnessResult f = MeasureFairness(policy);
    std::printf("  %-11s | %11.1f | %9.1f%% | %9.1f%% | %5llu | %5llu | %llu\n",
                SchedulerPolicyName(policy), ns, f.share0 * 100.0, f.share1 * 100.0,
                (unsigned long long)f.context_switches,
                (unsigned long long)f.timeslice_expirations,
                (unsigned long long)f.irqs);
    char name[64];
    std::snprintf(name, sizeof(name), "dispatch_ns/%s", SchedulerPolicyName(policy));
    reporter.Record(name, ns, "ns");
    std::snprintf(name, sizeof(name), "user_share_app0/%s", SchedulerPolicyName(policy));
    reporter.Record(name, f.share0 * 100.0, "percent");
    std::snprintf(name, sizeof(name), "context_switches/%s", SchedulerPolicyName(policy));
    reporter.Record(name, static_cast<double>(f.context_switches), "count");
  }
  std::printf(
      "\nshape: all four policies decide in O(kMaxProcesses) with small constants;\n"
      "round-robin and MLFQ split two spinners ~50/50 (MLFQ via its periodic boost),\n"
      "cooperative only rotates when the storm forces a decision point, and strict\n"
      "priority starves the disfavored spinner — the policy/fairness trade the\n"
      "pluggable layer exists to let a board choose.\n");
  return 0;
}
