// Fleet scaling: aggregate simulation throughput of an 8-board deployment as the
// host thread count grows — the experiment behind the thread-sharded fleet
// runtime (board/fleet.h). Two workloads:
//
//   * compute fleet: radio-less boards running the CPU-bound app. No medium means
//     no lookahead clamp, so epochs are long and barriers amortized — the upper
//     bound of what sharding can buy.
//   * radio fleet: every board beacons to and listens for all the others, which
//     clamps the epoch to the medium lookahead (4608 cycles) — the conservative
//     lower bound with maximal cross-board chatter.
//
// Determinism is the hard gate, not a metric: if any board's (cycles, insns,
// context switches) fingerprint differs between thread counts the bench fails.
// The speedup itself is reported for the host it ran on (see host_cores): on a
// single-core container every thread count collapses to ~1.0x by construction,
// and the ≥3x-at-4-threads figure materializes only on ≥4-core hosts.
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "board/fleet.h"
#include "board/sim_board.h"

namespace {

constexpr size_t kBoards = 8;
constexpr uint64_t kComputeCycles = 4'000'000;  // per board
constexpr uint64_t kRadioCycles = 1'500'000;

const char* kComputeApp = R"(
_start:
    li s0, 0
    li s1, 1
    li s2, 0x1234
loop:
    add s0, s0, s1
    xor s3, s0, s2
    slli s4, s3, 3
    srli s5, s3, 5
    or s6, s4, s5
    sub s7, s6, s0
    sltu s8, s0, s7
    andi s9, s7, 255
    add s2, s2, s8
    j loop
)";

std::string BeaconApp(int node_id) {
  char buf[1024];
  std::snprintf(buf, sizeof(buf), R"(
_start:
    mv s0, a0
    li s1, 0
    li a0, %d
    call sleep_ticks
loop:
    li t0, %d
    sb t0, 0(s0)
    sb s1, 1(s0)
    li a0, 0x30001
    li a1, 0
    mv a2, s0
    li a3, 2
    li a4, 4
    ecall
    # command(radio, 1 = tx, broadcast, len=2)
    li a0, 0x30001
    li a1, 1
    li a2, 0xFFFF
    li a3, 2
    li a4, 2
    ecall
    # yield-wait-for(radio, 0 = tx done)
    li a0, 2
    li a1, 0x30001
    li a2, 0
    li a4, 0
    ecall
    addi s1, s1, 1
    li a0, 150000
    call sleep_ticks
    j loop
)",
                node_id * 9000, node_id);
  return buf;
}

const char* kListenerApp = R"(
_start:
    mv s0, a0
    li a0, 0x30001
    li a1, 1
    addi a2, s0, 64
    li a3, 8
    li a4, 3
    ecall
    # command(radio, 2 = listen)
    li a0, 0x30001
    li a1, 2
    li a2, 0
    li a3, 0
    li a4, 2
    ecall
loop:
    li a0, 2
    li a1, 0x30001
    li a2, 1
    li a4, 0
    ecall
    lw t0, 32(s0)
    addi t0, t0, 1
    sw t0, 32(s0)
    j loop
)";

struct BoardPrint {
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t context_switches = 0;
  uint64_t packets_received = 0;

  bool operator==(const BoardPrint&) const = default;
};

struct RunResult {
  bool ok = false;
  double wall_s = 0.0;
  uint64_t instructions = 0;
  uint64_t packets_received = 0;
  size_t boards_live = 0;
  std::vector<BoardPrint> prints;
};

RunResult RunFleet(bool with_radio, unsigned threads, uint64_t cycles) {
  tock::FleetConfig fc;
  fc.threads = threads;
  fc.slice = 100'000;  // radio-less epochs; clamped to the lookahead otherwise
  tock::Fleet fleet(fc);

  std::vector<std::unique_ptr<tock::SimBoard>> boards;
  for (size_t i = 0; i < kBoards; ++i) {
    tock::BoardConfig bc;
    bc.rng_seed = 0xF1EE7 + static_cast<uint32_t>(i);
    bc.radio_addr = static_cast<uint16_t>(i + 1);
    if (with_radio) {
      bc.medium = &fleet.medium();
    }
    auto board = std::make_unique<tock::SimBoard>(bc);
    tock::AppSpec compute;
    compute.name = "compute";
    compute.source = kComputeApp;
    compute.include_runtime = false;
    int expected = 1;
    if (board->installer().Install(compute) == 0) {
      std::fprintf(stderr, "setup failed: %s\n", board->installer().error().c_str());
      return {};
    }
    if (with_radio) {
      tock::AppSpec beacon;
      beacon.name = "beacon";
      beacon.source = BeaconApp(static_cast<int>(i + 1));
      tock::AppSpec listener;
      listener.name = "listener";
      listener.source = kListenerApp;
      if (board->installer().Install(beacon) == 0 ||
          board->installer().Install(listener) == 0) {
        std::fprintf(stderr, "setup failed: %s\n", board->installer().error().c_str());
        return {};
      }
      expected += 2;
    }
    if (board->Boot() != expected) {
      std::fprintf(stderr, "boot failed on board %zu\n", i);
      return {};
    }
    fleet.AddBoard(board.get());
    boards.push_back(std::move(board));
  }
  fleet.AlignClocks();

  auto start = std::chrono::steady_clock::now();
  fleet.Run(cycles);
  auto stop = std::chrono::steady_clock::now();

  RunResult r;
  r.ok = true;
  r.wall_s = std::chrono::duration<double>(stop - start).count();
  for (size_t i = 0; i < kBoards; ++i) {
    tock::SimBoard& b = *boards[i];
    r.prints.push_back(BoardPrint{b.mcu().CyclesNow(), b.kernel().instructions_retired(),
                                  b.kernel().stats().context_switches,
                                  b.radio_hw().packets_received()});
  }
  tock::FleetStats stats = fleet.Stats();
  r.instructions = stats.instructions;
  r.packets_received = stats.packets_received;
  r.boards_live = stats.boards_live;
  return r;
}

bool CheckIdentical(const char* what, const RunResult& base, const RunResult& other,
                    unsigned threads) {
  if (base.prints == other.prints) {
    return true;
  }
  std::fprintf(stderr, "FAIL: %s fleet diverged between 1 and %u threads\n", what, threads);
  for (size_t i = 0; i < base.prints.size(); ++i) {
    if (!(base.prints[i] == other.prints[i])) {
      std::fprintf(stderr,
                   "  board %zu: cycles %llu vs %llu, insns %llu vs %llu, "
                   "ctxsw %llu vs %llu, rx %llu vs %llu\n",
                   i, (unsigned long long)base.prints[i].cycles,
                   (unsigned long long)other.prints[i].cycles,
                   (unsigned long long)base.prints[i].instructions,
                   (unsigned long long)other.prints[i].instructions,
                   (unsigned long long)base.prints[i].context_switches,
                   (unsigned long long)other.prints[i].context_switches,
                   (unsigned long long)base.prints[i].packets_received,
                   (unsigned long long)other.prints[i].packets_received);
    }
  }
  return false;
}

}  // namespace

int main(int argc, char** argv) {
  tock::bench::BenchReporter reporter("tab_fleet_scaling", &argc, argv);
  unsigned host_cores = std::thread::hardware_concurrency();

  std::printf("==== Fleet scaling: %zu boards, host threads 1/2/4 ====\n\n", kBoards);
  std::printf("host cores available: %u\n\n", host_cores);

  const unsigned kThreadCounts[] = {1, 2, 4};
  RunResult compute[3];
  for (int i = 0; i < 3; ++i) {
    compute[i] = RunFleet(/*with_radio=*/false, kThreadCounts[i], kComputeCycles);
    if (!compute[i].ok) {
      return 1;
    }
  }
  // Per-board results must be bit-identical no matter how the fleet was sharded.
  if (!CheckIdentical("compute", compute[0], compute[1], 2) ||
      !CheckIdentical("compute", compute[0], compute[2], 4)) {
    return 1;
  }

  RunResult radio1 = RunFleet(/*with_radio=*/true, 1, kRadioCycles);
  RunResult radio4 = RunFleet(/*with_radio=*/true, 4, kRadioCycles);
  if (!radio1.ok || !radio4.ok || !CheckIdentical("radio", radio1, radio4, 4)) {
    return 1;
  }
  if (radio1.packets_received == 0) {
    std::fprintf(stderr, "FAIL: radio fleet exchanged no packets\n");
    return 1;
  }

  std::printf("  %-34s %12s %12s %12s\n", "workload / metric", "1 thread", "2 threads",
              "4 threads");
  std::printf("  %-34s %12s %12s %12s\n", "-----------------", "--------", "---------",
              "---------");
  double rate[3];
  for (int i = 0; i < 3; ++i) {
    rate[i] = static_cast<double>(compute[i].instructions) / compute[i].wall_s / 1e6;
  }
  std::printf("  %-34s %12.1f %12.1f %12.1f\n", "compute fleet (M sim-insn/s)", rate[0],
              rate[1], rate[2]);
  std::printf("  %-34s %12.2f %12.2f %12.2f\n", "compute speedup vs 1 thread", 1.0,
              rate[1] / rate[0], rate[2] / rate[0]);
  double rrate1 = static_cast<double>(radio1.instructions) / radio1.wall_s / 1e6;
  double rrate4 = static_cast<double>(radio4.instructions) / radio4.wall_s / 1e6;
  std::printf("  %-34s %12.1f %12s %12.1f\n", "radio fleet (M sim-insn/s)", rrate1, "-",
              rrate4);
  std::printf("\n  radio fleet: %llu packets delivered across %zu live boards, "
              "bit-identical at 1 and 4 threads\n",
              (unsigned long long)radio1.packets_received, radio1.boards_live);
  if (host_cores < 4) {
    std::printf("  note: only %u host core(s) — thread scaling is flat by "
                "construction; run on a >=4-core host for the scaling figure\n",
                host_cores);
  }

  reporter.Record("host_cores", host_cores, "cores");
  reporter.Record("boards", static_cast<double>(kBoards), "boards");
  reporter.Record("compute_fleet_insn_per_s_1t", rate[0] * 1e6, "insn/s");
  reporter.Record("compute_fleet_insn_per_s_2t", rate[1] * 1e6, "insn/s");
  reporter.Record("compute_fleet_insn_per_s_4t", rate[2] * 1e6, "insn/s");
  reporter.Record("compute_fleet_speedup_2t", rate[1] / rate[0], "x");
  reporter.Record("compute_fleet_speedup_4t", rate[2] / rate[0], "x");
  reporter.Record("radio_fleet_insn_per_s_1t", rrate1 * 1e6, "insn/s");
  reporter.Record("radio_fleet_insn_per_s_4t", rrate4 * 1e6, "insn/s");
  reporter.Record("radio_fleet_packets_delivered",
                  static_cast<double>(radio1.packets_received), "packets");
  reporter.Record("deterministic_across_threads", 1.0, "bool");
  return 0;
}
