// Fleet scaling: aggregate simulation throughput of an 8-board deployment as the
// host thread count grows — the experiment behind the thread-sharded fleet
// runtime (board/fleet.h). Two workloads:
//
//   * compute fleet: radio-less boards running the CPU-bound app. No medium means
//     no lookahead clamp, so epochs are long and barriers amortized — the upper
//     bound of what sharding can buy.
//   * radio fleet: every board beacons to and listens for all the others, which
//     clamps the epoch to the medium lookahead (4608 cycles) — the conservative
//     lower bound with maximal cross-board chatter.
//
// Two further legs cover the fleet scale-out work (paged memory, work stealing,
// idle skip):
//
//   * memory fleet: a 1,000-board homogeneous fleet sharing one immutable flash
//     base image, run paged and eager. The hard gate is residency: the paged
//     fleet must commit >=5x less host memory than the eager baseline, and the
//     paged total must reconcile exactly against whole 4 KiB pages with every
//     board holding the same page count (the fleet is homogeneous).
//   * skewed fleet: 1 hot spinner + 31 duty-cycled boards. Work stealing must
//     beat static sharding >=1.3x wall-clock at 4 threads (gated only when the
//     host has >=4 cores; flat on fewer cores is expected, not a failure).
//
// Determinism is the hard gate, not a metric: if any board's (cycles, insns,
// context switches) fingerprint differs between thread counts — or across
// paging on/off, idle-skip on/off, steal vs static — the bench fails.
// The speedup itself is reported for the host it ran on (see host_cores): on a
// single-core container every thread count collapses to ~1.0x by construction,
// and the ≥3x-at-4-threads figure materializes only on ≥4-core hosts.
#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <memory>
#include <string>
#include <thread>
#include <vector>

#include "bench_json.h"
#include "board/fleet.h"
#include "board/sim_board.h"
#include "hw/memory_map.h"
#include "hw/paged_mem.h"
#include "libtock/libtock.h"

namespace {

constexpr size_t kBoards = 8;
constexpr uint64_t kComputeCycles = 4'000'000;  // per board
constexpr uint64_t kRadioCycles = 1'500'000;

const char* kComputeApp = R"(
_start:
    li s0, 0
    li s1, 1
    li s2, 0x1234
loop:
    add s0, s0, s1
    xor s3, s0, s2
    slli s4, s3, 3
    srli s5, s3, 5
    or s6, s4, s5
    sub s7, s6, s0
    sltu s8, s0, s7
    andi s9, s7, 255
    add s2, s2, s8
    j loop
)";

std::string BeaconApp(int node_id) {
  char buf[1024];
  std::snprintf(buf, sizeof(buf), R"(
_start:
    mv s0, a0
    li s1, 0
    li a0, %d
    call sleep_ticks
loop:
    li t0, %d
    sb t0, 0(s0)
    sb s1, 1(s0)
    li a0, 0x30001
    li a1, 0
    mv a2, s0
    li a3, 2
    li a4, 4
    ecall
    # command(radio, 1 = tx, broadcast, len=2)
    li a0, 0x30001
    li a1, 1
    li a2, 0xFFFF
    li a3, 2
    li a4, 2
    ecall
    # yield-wait-for(radio, 0 = tx done)
    li a0, 2
    li a1, 0x30001
    li a2, 0
    li a4, 0
    ecall
    addi s1, s1, 1
    li a0, 150000
    call sleep_ticks
    j loop
)",
                node_id * 9000, node_id);
  return buf;
}

const char* kListenerApp = R"(
_start:
    mv s0, a0
    li a0, 0x30001
    li a1, 1
    addi a2, s0, 64
    li a3, 8
    li a4, 3
    ecall
    # command(radio, 2 = listen)
    li a0, 0x30001
    li a1, 2
    li a2, 0
    li a3, 0
    li a4, 2
    ecall
loop:
    li a0, 2
    li a1, 0x30001
    li a2, 1
    li a4, 0
    ecall
    lw t0, 32(s0)
    addi t0, t0, 1
    sw t0, 32(s0)
    j loop
)";

struct BoardPrint {
  uint64_t cycles = 0;
  uint64_t instructions = 0;
  uint64_t context_switches = 0;
  uint64_t packets_received = 0;

  bool operator==(const BoardPrint&) const = default;
};

struct RunResult {
  bool ok = false;
  double wall_s = 0.0;
  uint64_t instructions = 0;
  uint64_t packets_received = 0;
  size_t boards_live = 0;
  std::vector<BoardPrint> prints;
};

RunResult RunFleet(bool with_radio, unsigned threads, uint64_t cycles) {
  tock::FleetConfig fc;
  fc.threads = threads;
  fc.slice = 100'000;  // radio-less epochs; clamped to the lookahead otherwise
  tock::Fleet fleet(fc);

  std::vector<std::unique_ptr<tock::SimBoard>> boards;
  for (size_t i = 0; i < kBoards; ++i) {
    tock::BoardConfig bc;
    bc.rng_seed = 0xF1EE7 + static_cast<uint32_t>(i);
    bc.radio_addr = static_cast<uint16_t>(i + 1);
    if (with_radio) {
      bc.medium = &fleet.medium();
    }
    auto board = std::make_unique<tock::SimBoard>(bc);
    tock::AppSpec compute;
    compute.name = "compute";
    compute.source = kComputeApp;
    compute.include_runtime = false;
    int expected = 1;
    if (board->installer().Install(compute) == 0) {
      std::fprintf(stderr, "setup failed: %s\n", board->installer().error().c_str());
      return {};
    }
    if (with_radio) {
      tock::AppSpec beacon;
      beacon.name = "beacon";
      beacon.source = BeaconApp(static_cast<int>(i + 1));
      tock::AppSpec listener;
      listener.name = "listener";
      listener.source = kListenerApp;
      if (board->installer().Install(beacon) == 0 ||
          board->installer().Install(listener) == 0) {
        std::fprintf(stderr, "setup failed: %s\n", board->installer().error().c_str());
        return {};
      }
      expected += 2;
    }
    if (board->Boot() != expected) {
      std::fprintf(stderr, "boot failed on board %zu\n", i);
      return {};
    }
    fleet.AddBoard(board.get());
    boards.push_back(std::move(board));
  }
  fleet.AlignClocks();

  auto start = std::chrono::steady_clock::now();
  fleet.Run(cycles);
  auto stop = std::chrono::steady_clock::now();

  RunResult r;
  r.ok = true;
  r.wall_s = std::chrono::duration<double>(stop - start).count();
  for (size_t i = 0; i < kBoards; ++i) {
    tock::SimBoard& b = *boards[i];
    r.prints.push_back(BoardPrint{b.mcu().CyclesNow(), b.kernel().instructions_retired(),
                                  b.kernel().stats().context_switches,
                                  b.radio_hw().packets_received()});
  }
  tock::FleetStats stats = fleet.Stats();
  r.instructions = stats.instructions;
  r.packets_received = stats.packets_received;
  r.boards_live = stats.boards_live;
  return r;
}

bool CheckIdentical(const char* what, const std::vector<BoardPrint>& base,
                    const std::vector<BoardPrint>& other) {
  if (base == other) {
    return true;
  }
  std::fprintf(stderr, "FAIL: fleet diverged: %s\n", what);
  for (size_t i = 0; i < base.size() && i < other.size(); ++i) {
    if (!(base[i] == other[i])) {
      std::fprintf(stderr,
                   "  board %zu: cycles %llu vs %llu, insns %llu vs %llu, "
                   "ctxsw %llu vs %llu, rx %llu vs %llu\n",
                   i, (unsigned long long)base[i].cycles,
                   (unsigned long long)other[i].cycles,
                   (unsigned long long)base[i].instructions,
                   (unsigned long long)other[i].instructions,
                   (unsigned long long)base[i].context_switches,
                   (unsigned long long)other[i].context_switches,
                   (unsigned long long)base[i].packets_received,
                   (unsigned long long)other[i].packets_received);
    }
  }
  return false;
}

// ---------------------------------------------------------------------------
// Fleet scale-out legs: paged board memory, work stealing, idle-board skip.
// ---------------------------------------------------------------------------

constexpr size_t kMemBoards = 1000;
constexpr uint64_t kMemCycles = 150'000;
constexpr size_t kSkewBoards = 32;
constexpr uint64_t kSkewCycles = 6'000'000;

// Duty-cycled workload: a burst of arithmetic, a RAM-counter write, then a sleep
// several epochs long. The RAM write matters for the memory leg (each board must
// dirty *some* pages — an all-register app would show a degenerate 0-byte paged
// fleet) and the sleep matters for the skewed leg (the board is idle-skippable
// most of the time, so its average cost is a small fraction of the hot board's).
const char* kDutyApp = R"(
_start:
    mv s0, a0
    li s2, 0x9E37
loop:
    li t1, 2000
inner:
    addi s1, s1, 1
    xor s3, s1, s2
    add s2, s2, s3
    addi t1, t1, -1
    bnez t1, inner
    sw s1, 0(s0)
    li a0, 60000
    call sleep_ticks
    j loop
)";

struct MemLeg {
  bool ok = false;
  uint64_t resident_total = 0;
  uint64_t resident_min = 0;
  uint64_t resident_max = 0;
  std::vector<BoardPrint> prints;
};

// 1,000 identical boards, radio-less, all adopting ONE immutable flash base
// image holding the pre-built duty app — the homogeneous-fleet deployment shape.
// `paged` toggles BoardConfig::paged_mem at runtime, so both legs run the same
// binary over the same simulated bytes.
MemLeg RunMemFleet(bool paged, unsigned threads) {
  tock::FleetConfig fc;
  fc.threads = threads;
  fc.slice = 50'000;
  tock::Fleet fleet(fc);

  auto shared_flash = std::make_shared<std::vector<uint8_t>>(
      tock::MemoryMap::kFlashSize, uint8_t{0xFF});
  uint32_t shared_next = tock::SimBoard::kAppFlashBase;
  {
    tock::AppSpec duty;
    duty.name = "duty";
    duty.source = kDutyApp;
    std::string error;
    std::vector<uint8_t> image = tock::BuildAppImage(
        duty, shared_next, tock::SimBoard::kDeviceKey, &error);
    if (image.empty() ||
        shared_next + image.size() > tock::SimBoard::kAppFlashEnd) {
      std::fprintf(stderr, "duty app build failed: %s\n", error.c_str());
      return {};
    }
    std::copy(image.begin(), image.end(), shared_flash->begin() + shared_next);
    shared_next += static_cast<uint32_t>(image.size());
  }
  const std::shared_ptr<const std::vector<uint8_t>> base = shared_flash;

  std::vector<std::unique_ptr<tock::SimBoard>> boards;
  boards.reserve(kMemBoards);
  for (size_t i = 0; i < kMemBoards; ++i) {
    tock::BoardConfig bc;
    bc.paged_mem = paged;
    bc.rng_seed = 0xB0A7 + static_cast<uint32_t>(i);
    auto board = std::make_unique<tock::SimBoard>(bc);
    board->mcu().bus().AdoptFlashBase(base);
    board->installer().set_next_addr(shared_next);
    if (board->Boot() != 1) {
      std::fprintf(stderr, "memory fleet: boot failed on board %zu\n", i);
      return {};
    }
    fleet.AddBoard(board.get());
    boards.push_back(std::move(board));
  }
  fleet.AlignClocks();
  fleet.Run(kMemCycles);

  MemLeg r;
  r.ok = true;
  r.resident_min = UINT64_MAX;
  for (size_t i = 0; i < kMemBoards; ++i) {
    tock::SimBoard& b = *boards[i];
    const uint64_t res = b.mcu().bus().resident_bytes();
    r.resident_total += res;
    r.resident_min = std::min(r.resident_min, res);
    r.resident_max = std::max(r.resident_max, res);
    r.prints.push_back(BoardPrint{b.mcu().CyclesNow(),
                                  b.kernel().instructions_retired(),
                                  b.kernel().stats().context_switches, 0});
  }
  return r;
}

struct SkewLeg {
  bool ok = false;
  double wall_s = 0.0;
  uint64_t idle_skips = 0;
  std::vector<BoardPrint> prints;
};

// 1 hot board (the all-register spinner, never sleeps) + 31 duty-cycled boards.
// Under static sharding the hot board's thread also drags its stride-mates;
// under stealing the other threads drain the cheap boards while one thread works
// the hot one. Every (threads, steal, idle_skip, paged) combination must produce
// the same per-board fingerprints.
SkewLeg RunSkewFleet(unsigned threads, bool steal, bool idle_skip, bool paged) {
  tock::FleetConfig fc;
  fc.threads = threads;
  fc.steal = steal;
  fc.idle_skip = idle_skip;
  fc.slice = 20'000;
  tock::Fleet fleet(fc);

  std::vector<std::unique_ptr<tock::SimBoard>> boards;
  boards.reserve(kSkewBoards);
  for (size_t i = 0; i < kSkewBoards; ++i) {
    tock::BoardConfig bc;
    bc.paged_mem = paged;
    bc.rng_seed = 0x5CE1 + static_cast<uint32_t>(i);
    auto board = std::make_unique<tock::SimBoard>(bc);
    tock::AppSpec app;
    if (i == 0) {
      app.name = "hot";
      app.source = kComputeApp;
      app.include_runtime = false;
    } else {
      app.name = "duty";
      app.source = kDutyApp;
    }
    if (board->installer().Install(app) == 0) {
      std::fprintf(stderr, "skewed fleet setup failed: %s\n",
                   board->installer().error().c_str());
      return {};
    }
    if (board->Boot() != 1) {
      std::fprintf(stderr, "skewed fleet: boot failed on board %zu\n", i);
      return {};
    }
    fleet.AddBoard(board.get());
    boards.push_back(std::move(board));
  }
  fleet.AlignClocks();

  auto start = std::chrono::steady_clock::now();
  fleet.Run(kSkewCycles);
  auto stop = std::chrono::steady_clock::now();

  SkewLeg r;
  r.ok = true;
  r.wall_s = std::chrono::duration<double>(stop - start).count();
  r.idle_skips = fleet.Stats().aggregate.fleet_idle_skips;
  for (size_t i = 0; i < kSkewBoards; ++i) {
    tock::SimBoard& b = *boards[i];
    r.prints.push_back(BoardPrint{b.mcu().CyclesNow(),
                                  b.kernel().instructions_retired(),
                                  b.kernel().stats().context_switches, 0});
  }
  return r;
}

}  // namespace

int main(int argc, char** argv) {
  tock::bench::BenchReporter reporter("tab_fleet_scaling", &argc, argv);
  unsigned host_cores = std::thread::hardware_concurrency();

  std::printf("==== Fleet scaling: %zu boards, host threads 1/2/4 ====\n\n", kBoards);
  std::printf("host cores available: %u\n\n", host_cores);

  const unsigned kThreadCounts[] = {1, 2, 4};
  RunResult compute[3];
  for (int i = 0; i < 3; ++i) {
    compute[i] = RunFleet(/*with_radio=*/false, kThreadCounts[i], kComputeCycles);
    if (!compute[i].ok) {
      return 1;
    }
  }
  // Per-board results must be bit-identical no matter how the fleet was sharded.
  if (!CheckIdentical("compute fleet, 1 vs 2 threads", compute[0].prints, compute[1].prints) ||
      !CheckIdentical("compute fleet, 1 vs 4 threads", compute[0].prints, compute[2].prints)) {
    return 1;
  }

  RunResult radio1 = RunFleet(/*with_radio=*/true, 1, kRadioCycles);
  RunResult radio4 = RunFleet(/*with_radio=*/true, 4, kRadioCycles);
  if (!radio1.ok || !radio4.ok ||
      !CheckIdentical("radio fleet, 1 vs 4 threads", radio1.prints, radio4.prints)) {
    return 1;
  }
  if (radio1.packets_received == 0) {
    std::fprintf(stderr, "FAIL: radio fleet exchanged no packets\n");
    return 1;
  }

  std::printf("  %-34s %12s %12s %12s\n", "workload / metric", "1 thread", "2 threads",
              "4 threads");
  std::printf("  %-34s %12s %12s %12s\n", "-----------------", "--------", "---------",
              "---------");
  double rate[3];
  for (int i = 0; i < 3; ++i) {
    rate[i] = static_cast<double>(compute[i].instructions) / compute[i].wall_s / 1e6;
  }
  std::printf("  %-34s %12.1f %12.1f %12.1f\n", "compute fleet (M sim-insn/s)", rate[0],
              rate[1], rate[2]);
  std::printf("  %-34s %12.2f %12.2f %12.2f\n", "compute speedup vs 1 thread", 1.0,
              rate[1] / rate[0], rate[2] / rate[0]);
  double rrate1 = static_cast<double>(radio1.instructions) / radio1.wall_s / 1e6;
  double rrate4 = static_cast<double>(radio4.instructions) / radio4.wall_s / 1e6;
  std::printf("  %-34s %12.1f %12s %12.1f\n", "radio fleet (M sim-insn/s)", rrate1, "-",
              rrate4);
  std::printf("\n  radio fleet: %llu packets delivered across %zu live boards, "
              "bit-identical at 1 and 4 threads\n",
              (unsigned long long)radio1.packets_received, radio1.boards_live);
  if (host_cores < 4) {
    std::printf("  note: only %u host core(s) — thread scaling is flat by "
                "construction; run on a >=4-core host for the scaling figure\n",
                host_cores);
  }

  reporter.Record("host_cores", host_cores, "cores");
  reporter.Record("boards", static_cast<double>(kBoards), "boards");
  reporter.Record("compute_fleet_insn_per_s_1t", rate[0] * 1e6, "insn/s");
  reporter.Record("compute_fleet_insn_per_s_2t", rate[1] * 1e6, "insn/s");
  reporter.Record("compute_fleet_insn_per_s_4t", rate[2] * 1e6, "insn/s");
  reporter.Record("compute_fleet_speedup_2t", rate[1] / rate[0], "x");
  reporter.Record("compute_fleet_speedup_4t", rate[2] / rate[0], "x");
  reporter.Record("radio_fleet_insn_per_s_1t", rrate1 * 1e6, "insn/s");
  reporter.Record("radio_fleet_insn_per_s_4t", rrate4 * 1e6, "insn/s");
  reporter.Record("radio_fleet_packets_delivered",
                  static_cast<double>(radio1.packets_received), "packets");
  reporter.Record("deterministic_across_threads", 1.0, "bool");

  // ---- Memory fleet: 1,000 homogeneous boards, paged vs eager ----
  std::printf("\n==== Memory fleet: %zu homogeneous boards, paged vs eager ====\n\n",
              kMemBoards);
  MemLeg mem_paged = RunMemFleet(/*paged=*/true, /*threads=*/4);
  MemLeg mem_eager = RunMemFleet(/*paged=*/false, /*threads=*/4);
  if (!mem_paged.ok || !mem_eager.ok) {
    return 1;
  }
  // Paging must be invisible to the simulation.
  if (!CheckIdentical("memory fleet, paged vs eager", mem_paged.prints,
                      mem_eager.prints)) {
    return 1;
  }
  const double mib = 1024.0 * 1024.0;
  std::printf("  eager resident: %8.2f MiB (%zu boards x flash+RAM)\n",
              mem_eager.resident_total / mib, kMemBoards);
  std::printf("  paged resident: %8.2f MiB (%llu pages/board x 4 KiB)\n",
              mem_paged.resident_total / mib,
              (unsigned long long)(mem_paged.resident_max / tock::PagedBank::kPageSize));
  if (tock::PagedBank::kCompiled) {
    // Reconcile the gauge against whole pages: a homogeneous fleet must hold the
    // same private page count on every board, and the total must be exactly
    // boards x that count x 4 KiB — anything else means the residency gauge
    // drifted from the pages actually committed.
    if (mem_paged.resident_min != mem_paged.resident_max ||
        mem_paged.resident_max % tock::PagedBank::kPageSize != 0 ||
        mem_paged.resident_total != kMemBoards * mem_paged.resident_max) {
      std::fprintf(stderr,
                   "FAIL: paged residency does not reconcile against page counts "
                   "(min %llu, max %llu, total %llu)\n",
                   (unsigned long long)mem_paged.resident_min,
                   (unsigned long long)mem_paged.resident_max,
                   (unsigned long long)mem_paged.resident_total);
      return 1;
    }
    if (mem_paged.resident_total == 0 ||
        mem_eager.resident_total < 5 * mem_paged.resident_total) {
      std::fprintf(stderr,
                   "FAIL: paged fleet not >=5x smaller than eager (%llu vs %llu bytes)\n",
                   (unsigned long long)mem_paged.resident_total,
                   (unsigned long long)mem_eager.resident_total);
      return 1;
    }
    std::printf("  reduction: %.1fx (gate: >=5x)\n",
                (double)mem_eager.resident_total / (double)mem_paged.resident_total);
  } else {
    std::printf("  note: TOCK_PAGED_MEM=OFF — both legs eager, residency gate skipped\n");
  }

  // ---- Skewed fleet: work stealing vs static sharding ----
  std::printf("\n==== Skewed fleet: 1 hot + %zu duty-cycled boards ====\n\n",
              kSkewBoards - 1);
  const bool paged_default = tock::PagedBank::kCompiled;
  SkewLeg skew_base = RunSkewFleet(1, /*steal=*/true, /*idle_skip=*/true, paged_default);
  SkewLeg skew_steal4 = RunSkewFleet(4, /*steal=*/true, /*idle_skip=*/true, paged_default);
  SkewLeg skew_static4 = RunSkewFleet(4, /*steal=*/false, /*idle_skip=*/true, paged_default);
  SkewLeg skew_noskip = RunSkewFleet(1, /*steal=*/true, /*idle_skip=*/false, paged_default);
  SkewLeg skew_eager = RunSkewFleet(1, /*steal=*/true, /*idle_skip=*/true, /*paged=*/false);
  if (!skew_base.ok || !skew_steal4.ok || !skew_static4.ok || !skew_noskip.ok ||
      !skew_eager.ok) {
    return 1;
  }
  // The full determinism matrix: thread count x steal x idle-skip x paging.
  if (!CheckIdentical("skewed fleet, stealing 1 vs 4 threads", skew_base.prints,
                      skew_steal4.prints) ||
      !CheckIdentical("skewed fleet, steal vs static at 4 threads", skew_base.prints,
                      skew_static4.prints) ||
      !CheckIdentical("skewed fleet, idle-skip on vs off", skew_base.prints,
                      skew_noskip.prints) ||
      !CheckIdentical("skewed fleet, paged vs eager", skew_base.prints,
                      skew_eager.prints)) {
    return 1;
  }
  // Idle skip must actually engage on the duty-cycled boards (and only when on).
  if (skew_base.idle_skips == 0 || skew_noskip.idle_skips != 0) {
    std::fprintf(stderr, "FAIL: idle-skip counters wrong (on: %llu, off: %llu)\n",
                 (unsigned long long)skew_base.idle_skips,
                 (unsigned long long)skew_noskip.idle_skips);
    return 1;
  }
  const double steal_speedup = skew_static4.wall_s / skew_steal4.wall_s;
  std::printf("  static sharding, 4 threads: %8.2f s\n", skew_static4.wall_s);
  std::printf("  work stealing,   4 threads: %8.2f s  (%.2fx vs static)\n",
              skew_steal4.wall_s, steal_speedup);
  std::printf("  idle skips (1-thread base): %llu epochs fast-forwarded\n",
              (unsigned long long)skew_base.idle_skips);
  if (host_cores >= 4) {
    if (steal_speedup < 1.3) {
      std::fprintf(stderr,
                   "FAIL: work stealing only %.2fx vs static sharding on a %u-core "
                   "host (gate: >=1.3x)\n",
                   steal_speedup, host_cores);
      return 1;
    }
  } else {
    std::printf("  note: only %u host core(s) — steal-vs-static speedup is flat by "
                "construction; the >=1.3x gate applies on >=4-core hosts\n",
                host_cores);
  }

  reporter.Record("mem_fleet_boards", static_cast<double>(kMemBoards), "boards");
  reporter.Record("mem_fleet_resident_eager_bytes",
                  static_cast<double>(mem_eager.resident_total), "bytes");
  reporter.Record("mem_fleet_resident_paged_bytes",
                  static_cast<double>(mem_paged.resident_total), "bytes");
  if (tock::PagedBank::kCompiled && mem_paged.resident_total != 0) {
    reporter.Record("mem_fleet_reduction",
                    static_cast<double>(mem_eager.resident_total) /
                        static_cast<double>(mem_paged.resident_total),
                    "x");
  }
  reporter.Record("skew_fleet_steal_speedup_4t", steal_speedup, "x");
  reporter.Record("skew_fleet_idle_skips", static_cast<double>(skew_base.idle_skips),
                  "epochs");
  reporter.Record("deterministic_across_modes", 1.0, "bool");
  return 0;
}
