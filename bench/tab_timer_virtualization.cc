// Experiment E12 (§5.4): timer virtualization — cost and correctness under load.
//
// N virtual alarms share one hardware compare register. Cost: each hardware firing
// triggers an O(N) scan to collect expired clients and re-arm for the earliest
// remaining deadline (the same structure as upstream Tock's mux). Correctness: the
// heavy lifting is in tests/virtual_alarm_test.cc's fuzz suite; here we measure the
// scan cost's growth with N and confirm every deadline is met in a dense schedule.
#include <chrono>
#include <cstdio>
#include <memory>
#include <vector>

#include "bench_json.h"
#include "capsule/virtual_alarm.h"
#include "chip/chip_alarm.h"
#include "hw/mcu.h"
#include "hw/memory_map.h"
#include "hw/timer.h"

namespace {

class CountingClient : public tock::hil::AlarmClient {
 public:
  CountingClient(tock::VirtualAlarm* alarm, uint32_t period) : alarm_(alarm), period_(period) {}
  void AlarmFired() override {
    ++fired;
    alarm_->SetAlarm(alarm_->Now(), period_);  // periodic re-arm from the callback
  }
  tock::VirtualAlarm* alarm_;
  uint32_t period_;
  uint64_t fired = 0;
};

struct MuxResult {
  uint64_t total_firings;
  uint64_t hw_interrupts;
  double host_ns_per_firing;
  bool all_deadlines_met;
};

MuxResult RunMux(unsigned n_clients, uint64_t horizon) {
  tock::Mcu mcu;
  tock::AlarmTimer alarm_hw(&mcu.clock(),
                            tock::InterruptLine(&mcu.irq(), tock::MemoryMap::kAlarm));
  mcu.bus().AttachDevice(tock::MemoryMap::kAlarm, &alarm_hw);
  mcu.irq().Enable(tock::MemoryMap::kAlarm);
  tock::ChipAlarm chip(&mcu, tock::MemoryMap::SlotBase(tock::MemoryMap::kAlarm));
  tock::VirtualAlarmMux mux(&chip);

  std::vector<std::unique_ptr<tock::VirtualAlarm>> alarms;
  std::vector<std::unique_ptr<CountingClient>> clients;
  for (unsigned i = 0; i < n_clients; ++i) {
    alarms.push_back(std::make_unique<tock::VirtualAlarm>(&mux));
    mux.AddClient(alarms.back().get());
    // Co-prime-ish periods so deadlines interleave densely.
    uint32_t period = 700 + 137 * i;
    clients.push_back(std::make_unique<CountingClient>(alarms.back().get(), period));
    alarms.back()->SetClient(clients.back().get());
    alarms.back()->SetAlarm(alarms.back()->Now(), period);
  }

  uint64_t hw_interrupts = 0;
  auto start = std::chrono::steady_clock::now();
  while (mcu.CyclesNow() < horizon) {
    uint64_t next = mcu.clock().NextEventAt();
    if (next == UINT64_MAX) {
      break;
    }
    mcu.Tick(next > mcu.CyclesNow() ? next - mcu.CyclesNow() : 1);
    while (mcu.irq().IsPending(tock::MemoryMap::kAlarm)) {
      mcu.irq().Complete(tock::MemoryMap::kAlarm);
      ++hw_interrupts;
      chip.HandleInterrupt(tock::MemoryMap::kAlarm);
    }
  }
  auto end = std::chrono::steady_clock::now();

  uint64_t total = 0;
  bool met = true;
  for (unsigned i = 0; i < n_clients; ++i) {
    total += clients[i]->fired;
    // Each client should have fired about horizon/period times; tolerate the mux's
    // min-dt slack compounding slightly.
    uint64_t expected = horizon / clients[i]->period_;
    if (clients[i]->fired + 2 < expected * 9 / 10) {
      met = false;
    }
  }
  double ns = std::chrono::duration<double, std::nano>(end - start).count();
  return MuxResult{total, hw_interrupts,
                   total > 0 ? ns / static_cast<double>(total) : 0.0, met};
}

}  // namespace

int main(int argc, char** argv) {
  tock::bench::BenchReporter reporter("tab_timer_virtualization", &argc, argv);
  std::printf("==== E12 (Table, §5.4): virtual alarm mux under N periodic clients ====\n\n");
  std::printf("  clients | firings | hw irqs | firings/irq | host ns/firing | deadlines\n");
  std::printf("  --------+---------+---------+-------------+----------------+----------\n");
  for (unsigned n : {1u, 2u, 4u, 8u, 16u, 32u, 64u}) {
    MuxResult result = RunMux(n, 2'000'000);
    std::printf("  %7u | %7llu | %7llu | %11.2f | %14.1f | %s\n", n,
                (unsigned long long)result.total_firings,
                (unsigned long long)result.hw_interrupts,
                result.hw_interrupts ? static_cast<double>(result.total_firings) /
                                           static_cast<double>(result.hw_interrupts)
                                     : 0.0,
                result.host_ns_per_firing, result.all_deadlines_met ? "all met" : "MISSED");
    char name[48];
    std::snprintf(name, sizeof(name), "firings_per_irq/clients_%u", n);
    reporter.Record(name,
                    result.hw_interrupts ? static_cast<double>(result.total_firings) /
                                               static_cast<double>(result.hw_interrupts)
                                         : 0.0,
                    "ratio");
    std::snprintf(name, sizeof(name), "host_ns_per_firing/clients_%u", n);
    reporter.Record(name, result.host_ns_per_firing, "ns");
  }
  std::printf("\nshape: one hardware compare register serves arbitrarily many clients;\n"
              "per-firing cost grows with N (the O(N) rearm scan, as in upstream Tock)\n"
              "while batching amortizes interrupts — and no deadline is ever missed,\n"
              "which is precisely the property §5.4 reports is hard to keep true.\n");
  return 0;
}
