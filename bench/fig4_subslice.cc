// Experiment E8 (Figure 4, §4.2): SubSlice vs (slice, offset, length) plumbing.
//
// A four-layer driver stack passes a window of a buffer downward; each layer narrows
// the window (strips a header), the bottom layer touches the payload, and the buffer
// must come back whole. Two implementations:
//   (a) SubSlice: each layer slices; one Reset() restores the full buffer;
//   (b) the early-Tock convention: pass (buffer, offset, len) triples and do the
//       bounds arithmetic by hand at every layer.
//
// Expected shape: identical performance — SubSlice removes the error-prone manual
// arithmetic (which the property tests cover) at zero cost.
#include <benchmark/benchmark.h>

#include "bench_json_gbench.h"

#include <array>
#include <cstdint>
#include <span>

#include "util/subslice.h"

namespace {

constexpr size_t kHeaderPerLayer = 4;

// ---- (a) SubSlice stack ----
uint64_t Layer3Sub(tock::SubSliceMut& buffer) {
  uint64_t sum = 0;
  for (size_t i = 0; i < buffer.Size(); ++i) {
    buffer[i] = static_cast<uint8_t>(buffer[i] + 1);
    sum += buffer[i];
  }
  return sum;
}
uint64_t Layer2Sub(tock::SubSliceMut& buffer) {
  buffer.Slice(kHeaderPerLayer, buffer.Size() - kHeaderPerLayer);
  return Layer3Sub(buffer);
}
uint64_t Layer1Sub(tock::SubSliceMut& buffer) {
  buffer.Slice(kHeaderPerLayer, buffer.Size() - kHeaderPerLayer);
  return Layer2Sub(buffer);
}
uint64_t Layer0Sub(tock::SubSliceMut& buffer) {
  buffer.Slice(kHeaderPerLayer, buffer.Size() - kHeaderPerLayer);
  return Layer1Sub(buffer);
}

// ---- (b) manual triple stack ----
uint64_t Layer3Raw(uint8_t* buffer, size_t offset, size_t len) {
  uint64_t sum = 0;
  for (size_t i = 0; i < len; ++i) {
    buffer[offset + i] = static_cast<uint8_t>(buffer[offset + i] + 1);
    sum += buffer[offset + i];
  }
  return sum;
}
uint64_t Layer2Raw(uint8_t* buffer, size_t offset, size_t len) {
  return Layer3Raw(buffer, offset + kHeaderPerLayer, len - kHeaderPerLayer);
}
uint64_t Layer1Raw(uint8_t* buffer, size_t offset, size_t len) {
  return Layer2Raw(buffer, offset + kHeaderPerLayer, len - kHeaderPerLayer);
}
uint64_t Layer0Raw(uint8_t* buffer, size_t offset, size_t len) {
  return Layer1Raw(buffer, offset + kHeaderPerLayer, len - kHeaderPerLayer);
}

void BM_SubSliceStack(benchmark::State& state) {
  std::vector<uint8_t> storage(static_cast<size_t>(state.range(0)), 7);
  for (auto _ : state) {
    tock::SubSliceMut buffer(storage.data(), storage.size());
    benchmark::DoNotOptimize(Layer0Sub(buffer));
    buffer.Reset();  // the whole buffer is back, ready for the completion path
    benchmark::DoNotOptimize(buffer.Size());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_SubSliceStack)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

void BM_ManualTripleStack(benchmark::State& state) {
  std::vector<uint8_t> storage(static_cast<size_t>(state.range(0)), 7);
  for (auto _ : state) {
    benchmark::DoNotOptimize(Layer0Raw(storage.data(), 0, storage.size()));
    // "Restoring" the buffer is implicit — the caller must have remembered the
    // original extent somewhere; that bookkeeping is exactly what SubSlice encodes.
    benchmark::DoNotOptimize(storage.size());
  }
  state.SetBytesProcessed(state.iterations() * state.range(0));
}
BENCHMARK(BM_ManualTripleStack)->Arg(64)->Arg(256)->Arg(1024)->Arg(4096);

}  // namespace

int main(int argc, char** argv) {
  tock::bench::BenchReporter reporter("fig4_subslice", &argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  tock::bench::GBenchJsonReporter console(&reporter);
  benchmark::RunSpecifiedBenchmarks(&console);
  return 0;
}
