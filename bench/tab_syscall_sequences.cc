// Experiment E3 (§3.2): the cost of the asynchronous system call sequence, and why
// Ti50 forked to add a blocking command.
//
// The same logical operation — sample the temperature synchronously — three ways:
//   (a) classic async: subscribe + command + yield-wait + unsubscribe (4 traps, the
//       sequence the paper says Ti50 collapsed)
//   (b) yield-wait-for: command + yield-wait-for (2 traps, mainline's eventual fix)
//   (c) blocking command: 1 trap (the Ti50 fork, enable_blocking_command)
//
// Expected shape: (c) ~ 1/4 the traps of (a) and fewest cycles; (b) in between.
#include <cstdio>
#include <string>

#include "bench_json.h"
#include "board/sim_board.h"

namespace {

struct Variant {
  const char* name;
  const char* source;
  bool needs_blocking;
};

constexpr int kIterations = 200;

// Each app samples the temperature kIterations times then exits. s1 = loop counter.
const char* kClassicAsync = R"(
_start:
    li s1, 200
loop:
    # subscribe(temp, 0, handler, 0)
    li a0, 0x60000
    li a1, 0
    la a2, handler
    li a3, 0
    li a4, 1
    ecall
    # command(temp, 1 = sample)
    li a0, 0x60000
    li a1, 1
    li a2, 0
    li a3, 0
    li a4, 2
    ecall
    # yield-wait (runs handler)
    li a0, 1
    li a4, 0
    ecall
    # unsubscribe (null upcall)
    li a0, 0x60000
    li a1, 0
    li a2, 0
    li a3, 0
    li a4, 1
    ecall
    addi s1, s1, -1
    bnez s1, loop
    li a0, 0
    li a4, 6
    ecall
handler:
    mv s2, a0          # stash the reading
    jr ra
)";

const char* kYieldWaitFor = R"(
_start:
    li s1, 200
loop:
    # command(temp, 1 = sample)
    li a0, 0x60000
    li a1, 1
    li a2, 0
    li a3, 0
    li a4, 2
    ecall
    # yield-wait-for(temp, 0) -> values in registers, no handler
    li a0, 2
    li a1, 0x60000
    li a2, 0
    li a4, 0
    ecall
    mv s2, a1
    addi s1, s1, -1
    bnez s1, loop
    li a0, 0
    li a4, 6
    ecall
)";

const char* kBlockingCommand = R"(
_start:
    li s1, 200
loop:
    # blocking_command(temp, 1 = sample, 0, completion sub 0)
    li a0, 0x60000
    li a1, 1
    li a2, 0
    li a3, 0
    li a4, 7
    ecall
    mv s2, a1
    addi s1, s1, -1
    bnez s1, loop
    li a0, 0
    li a4, 6
    ecall
)";

struct RunResult {
  uint64_t syscalls;
  uint64_t cycles;
  uint64_t upcalls;
  bool completed;
};

RunResult RunVariant(const Variant& variant) {
  tock::BoardConfig config;
  config.kernel.enable_blocking_command = variant.needs_blocking;
  tock::SimBoard board(config);
  tock::AppSpec app;
  app.name = variant.name;
  app.source = variant.source;
  app.include_runtime = false;
  if (board.installer().Install(app) == 0 || board.Boot() != 1) {
    std::fprintf(stderr, "%s: setup failed: %s\n", variant.name,
                 board.installer().error().c_str());
    return {};
  }
  uint64_t start = board.mcu().CyclesNow();
  tock::Process& p = *board.kernel().process(0);
  // Step until the app finishes so the cycle count covers exactly the workload.
  while (p.state != tock::ProcessState::kTerminated &&
         board.mcu().CyclesNow() < start + 200'000'000) {
    if (!board.kernel().MainLoopStep(board.main_cap(), start + 200'000'000)) {
      break;
    }
  }
  // Trap and upcall counts come from the kernel's own counters (kernel/trace.h),
  // not from per-process bookkeeping the bench would have to maintain itself.
  const tock::KernelStats& stats = board.kernel().stats();
  return RunResult{stats.SyscallsTotal(), board.mcu().CyclesNow() - start,
                   stats.upcalls_delivered,
                   p.state == tock::ProcessState::kTerminated};
}

}  // namespace

int main(int argc, char** argv) {
  tock::bench::BenchReporter reporter("tab_syscall_sequences", &argc, argv);
  const Variant kVariants[] = {
      {"async-4-call (subscribe/command/yield/unsubscribe)", kClassicAsync, false},
      {"yield-wait-for (TRD104 variant)", kYieldWaitFor, false},
      {"blocking command (Ti50 fork)", kBlockingCommand, true},
  };

  std::printf("==== E3 (Table, §3.2): synchronous-operation cost, %d temperature reads ====\n\n",
              kIterations);
  std::printf("  %-52s %9s %12s %9s %8s\n", "variant", "traps/op", "cycles/op", "upcalls",
              "done");
  std::printf("  %-52s %9s %12s %9s %8s\n", "-------", "--------", "---------", "-------",
              "----");

  double baseline_cycles = 0;
  for (const Variant& variant : kVariants) {
    RunResult result = RunVariant(variant);
    double traps_per_op =
        static_cast<double>(result.syscalls - 1) / kIterations;  // -1 for exit
    double cycles_per_op = static_cast<double>(result.cycles) / kIterations;
    if (baseline_cycles == 0) {
      baseline_cycles = cycles_per_op;
    }
    std::printf("  %-52s %9.2f %12.0f %9llu %8s\n", variant.name, traps_per_op, cycles_per_op,
                (unsigned long long)result.upcalls, result.completed ? "yes" : "NO");
    char name[96];
    std::snprintf(name, sizeof(name), "traps_per_op/%s", variant.name);
    reporter.Record(name, traps_per_op, "traps");
    std::snprintf(name, sizeof(name), "cycles_per_op/%s", variant.name);
    reporter.Record(name, cycles_per_op, "cycles");
  }
  std::printf("\nshape: blocking command collapses 4 traps to 1 and skips the upcall\n"
              "machinery entirely; yield-wait-for lands in between — matching the\n"
              "trade-off the paper describes for Ti50's fork and Tock's later fix.\n");
  return 0;
}
