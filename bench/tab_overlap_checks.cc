// Experiment E7 (§5.1.1): runtime overlap rejection vs cell-typed acceptance.
//
// The paper weighs two fixes for mutably-aliased allow buffers: reject overlaps with
// a runtime check ("unreasonable runtime overheads for the systems Tock targets"),
// or weaken the type to interior-mutable cells (chosen). The check's cost grows with
// the number of live allow slots, because every new allow must be compared against
// all of them; the cell approach is O(1).
//
// Measured in host nanoseconds of kernel-side allow handling (the check is kernel
// code; the simulated cost model does not price hypothetical designs).
#include <algorithm>
#include <chrono>
#include <cstdio>
#include <string>

#include "bench_json.h"
#include "board/sim_board.h"

namespace {

// Builds an app that first populates `n_slots` disjoint allows across distinct
// driver/allow numbers, then re-allows one slot `iterations` times (each re-allow
// paying the overlap scan when enabled).
std::string AllowChurnApp(int n_slots, int iterations) {
  std::string source = "_start:\n    mv s0, a0\n";
  // Populate slots: console(1) allow nums 2..; spread across a few drivers.
  for (int i = 0; i < n_slots; ++i) {
    source += "    li a0, 1\n";
    source += "    li a1, " + std::to_string(10 + i) + "\n";
    source += "    addi a2, s0, " + std::to_string(256 + 64 * i) + "\n";
    source += "    li a3, 32\n    li a4, 3\n    ecall\n";
  }
  source += "    li s1, " + std::to_string(iterations) + "\nloop:\n";
  source += "    li a0, 1\n    li a1, 9\n";
  source += "    addi a2, s0, " + std::to_string(256 + 64 * n_slots) + "\n";
  source += "    li a3, 32\n    li a4, 3\n    ecall\n";
  source += "    addi s1, s1, -1\n    bnez s1, loop\n";
  source += "    li a0, 0\n    li a4, 6\n    ecall\n";
  return source;
}

double MeasureHostNsPerAllow(bool overlap_check, int n_slots) {
  constexpr int kIterations = 2000;
  tock::BoardConfig config;
  config.kernel.check_allow_overlap = overlap_check;
  config.kernel.process_ram_quota = 24 * 1024;
  tock::SimBoard board(config);
  tock::AppSpec app;
  app.name = "churn";
  app.source = AllowChurnApp(n_slots, kIterations);
  app.include_runtime = false;
  app.min_ram = 8192;
  if (board.installer().Install(app) == 0 || board.Boot() != 1) {
    std::fprintf(stderr, "setup failed: %s\n", board.installer().error().c_str());
    return -1;
  }
  auto start = std::chrono::steady_clock::now();
  board.Run(400'000'000);
  auto end = std::chrono::steady_clock::now();
  if (board.kernel().process(0)->state != tock::ProcessState::kTerminated) {
    std::fprintf(stderr, "app did not finish (n_slots=%d)\n", n_slots);
  }
  double ns = std::chrono::duration<double, std::nano>(end - start).count();
  return ns / kIterations;  // host ns per loop iteration (1 allow each)
}

}  // namespace

int main(int argc, char** argv) {
  tock::bench::BenchReporter reporter("tab_overlap_checks", &argc, argv);
  std::printf("==== E7 (Table, §5.1.1): overlap runtime check vs cell semantics ====\n");
  std::printf("(host ns per allow syscall path, including VM execution — the *delta*\n"
              " and its growth with live slots is the signal)\n\n");
  std::printf("  live slots | cells (no check) | overlap check | delta\n");
  std::printf("  -----------+------------------+---------------+-------\n");
  const int kSlotCounts[] = {1, 2, 4, 8, 12};
  for (int n : kSlotCounts) {
    // Warm + measure; take the better of two runs to shed host noise.
    double cells = MeasureHostNsPerAllow(false, n);
    cells = std::min(cells, MeasureHostNsPerAllow(false, n));
    double checked = MeasureHostNsPerAllow(true, n);
    checked = std::min(checked, MeasureHostNsPerAllow(true, n));
    std::printf("  %10d | %13.0f ns | %10.0f ns | %+5.0f ns\n", n, cells, checked,
                checked - cells);
    char name[48];
    std::snprintf(name, sizeof(name), "cells_ns_per_allow/slots_%d", n);
    reporter.Record(name, cells, "ns");
    std::snprintf(name, sizeof(name), "checked_ns_per_allow/slots_%d", n);
    reporter.Record(name, checked, "ns");
  }
  std::printf("\nshape: the cell design's cost is flat in the number of live buffers; the\n"
              "overlap check adds a per-allow cost that grows with them — the overhead\n"
              "§5.1.1 deems unreasonable for this class of system.\n");
  return 0;
}
