// Experiment E10 (§5.3): "Futures have significant overheads compared to Tock's
// callback-based design."
//
// A split-phase completion chain of depth N — each stage starts an operation whose
// completion triggers the next — implemented two ways:
//   (a) Tock-style: statically wired client objects with virtual completion
//       callbacks; no allocation, state lives in the (static) objects;
//   (b) future/coroutine-style: C++20 coroutines awaiting each stage, the closest
//       C++ analog to Rust's async/await; every chain allocates frames and drives
//       resumption through type-erased handles.
//
// Expected shape: callbacks cost a handful of ns per completion and zero
// allocations; coroutine chains pay frame allocation + resume machinery — the
// overhead that kept Futures out of the Tock kernel.
#include <benchmark/benchmark.h>

#include "bench_json_gbench.h"

#include <coroutine>
#include <cstdint>
#include <vector>

namespace {

// ---------------- (a) Tock-style callback chain ----------------

class CompletionClient {
 public:
  virtual ~CompletionClient() = default;
  virtual void OperationDone(uint32_t value) = 0;
};

// A split-phase "driver": Start() records the client; Fire() completes.
class SplitPhaseStage {
 public:
  void Start(uint32_t value, CompletionClient* client) {
    value_ = value;
    client_ = client;
  }
  void Fire() { client_->OperationDone(value_ + 1); }

 private:
  uint32_t value_ = 0;
  CompletionClient* client_ = nullptr;
};

// Each link starts the next stage from its completion callback.
class ChainLink : public CompletionClient {
 public:
  void Wire(SplitPhaseStage* stage, CompletionClient* next) {
    stage_ = stage;
    next_ = next;
  }
  void OperationDone(uint32_t value) override {
    if (stage_ != nullptr) {
      stage_->Start(value, next_);
      stage_->Fire();  // the simulated interrupt arrives immediately
    }
  }

 private:
  SplitPhaseStage* stage_ = nullptr;
  CompletionClient* next_ = nullptr;
};

class ChainTerminator : public CompletionClient {
 public:
  void OperationDone(uint32_t value) override { result = value; }
  uint32_t result = 0;
};

void BM_CallbackChain(benchmark::State& state) {
  const size_t depth = static_cast<size_t>(state.range(0));
  // Statically wired, like a Tock board: all objects exist up front.
  std::vector<SplitPhaseStage> stages(depth);
  std::vector<ChainLink> links(depth);
  ChainTerminator terminator;
  for (size_t i = 0; i < depth; ++i) {
    links[i].Wire(&stages[i],
                  i + 1 < depth ? static_cast<CompletionClient*>(&links[i + 1])
                                : static_cast<CompletionClient*>(&terminator));
  }
  for (auto _ : state) {
    links[0].OperationDone(0);
    benchmark::DoNotOptimize(terminator.result);
  }
  state.counters["per_completion_ns"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(depth),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_CallbackChain)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

// ---------------- (b) coroutine/future chain ----------------

struct Task {
  struct promise_type {
    uint32_t value = 0;
    std::coroutine_handle<> continuation;

    Task get_return_object() {
      return Task{std::coroutine_handle<promise_type>::from_promise(*this)};
    }
    std::suspend_always initial_suspend() { return {}; }
    // Symmetric transfer back to whoever awaited us.
    struct FinalAwaiter {
      bool await_ready() noexcept { return false; }
      std::coroutine_handle<> await_suspend(std::coroutine_handle<promise_type> h) noexcept {
        return h.promise().continuation ? h.promise().continuation : std::noop_coroutine();
      }
      void await_resume() noexcept {}
    };
    FinalAwaiter final_suspend() noexcept { return {}; }
    void return_value(uint32_t v) { value = v; }
    void unhandled_exception() {}
  };

  std::coroutine_handle<promise_type> handle;

  explicit Task(std::coroutine_handle<promise_type> h) : handle(h) {}
  Task(Task&& other) noexcept : handle(other.handle) { other.handle = {}; }
  Task(const Task&) = delete;
  ~Task() {
    if (handle) {
      handle.destroy();
    }
  }

  bool await_ready() { return false; }
  std::coroutine_handle<> await_suspend(std::coroutine_handle<> awaiter) {
    handle.promise().continuation = awaiter;
    return handle;  // start the child
  }
  uint32_t await_resume() { return handle.promise().value; }
};

Task AsyncStage(uint32_t value) { co_return value + 1; }

Task AsyncChain(size_t depth, uint32_t value) {
  for (size_t i = 0; i < depth; ++i) {
    value = co_await AsyncStage(value);
  }
  co_return value;
}

void BM_CoroutineChain(benchmark::State& state) {
  const size_t depth = static_cast<size_t>(state.range(0));
  for (auto _ : state) {
    Task chain = AsyncChain(depth, 0);
    chain.handle.resume();  // drive to completion (stages complete immediately)
    benchmark::DoNotOptimize(chain.handle.promise().value);
  }
  state.counters["per_completion_ns"] = benchmark::Counter(
      static_cast<double>(state.iterations()) * static_cast<double>(depth),
      benchmark::Counter::kIsRate | benchmark::Counter::kInvert);
}
BENCHMARK(BM_CoroutineChain)->Arg(1)->Arg(4)->Arg(16)->Arg(64);

}  // namespace

int main(int argc, char** argv) {
  tock::bench::BenchReporter reporter("tab_callbacks_vs_futures", &argc, argv);
  benchmark::Initialize(&argc, argv);
  if (benchmark::ReportUnrecognizedArguments(argc, argv)) {
    return 1;
  }
  tock::bench::GBenchJsonReporter console(&reporter);
  benchmark::RunSpecifiedBenchmarks(&console);
  return 0;
}
