// Machine-readable bench results (the export half of the observability PR).
//
// Every experiment binary keeps printing its human-readable table, and *also*
// records its headline numbers through a BenchReporter. With `--json <path>` on the
// command line the reporter writes them as one JSON object per binary:
//
//   {"schema":"tock-bench-v1","bench":"tab_syscall_sequences",
//    "metrics":[{"name":"...","value":12.5,"unit":"cycles"}, ...]}
//
// scripts/bench_collect.sh runs all twelve benches and merges the per-bench files
// into BENCH_results.json. Without --json the reporter is inert — the benches stay
// dependency-free table printers.
//
// The constructor *removes* --json/<path> from argv so harnesses that parse flags
// afterwards (google-benchmark's Initialize) never see it; see bench_json_gbench.h
// for the google-benchmark bridge.
#ifndef TOCK_BENCH_BENCH_JSON_H_
#define TOCK_BENCH_BENCH_JSON_H_

#include <cstdio>
#include <cstring>
#include <string>
#include <vector>

namespace tock::bench {

class BenchReporter {
 public:
  // `argc`/`argv` may be null (benches that take no flags still compile); when
  // given, any `--json <path>` pair is consumed and stripped from the vector.
  BenchReporter(const char* bench, int* argc = nullptr, char** argv = nullptr)
      : bench_(bench) {
    if (argc == nullptr || argv == nullptr) {
      return;
    }
    int out = 1;
    for (int i = 1; i < *argc; ++i) {
      if (std::strcmp(argv[i], "--json") == 0 && i + 1 < *argc) {
        path_ = argv[i + 1];
        ++i;
        continue;
      }
      argv[out++] = argv[i];
    }
    *argc = out;
  }

  ~BenchReporter() { Write(); }

  bool enabled() const { return !path_.empty(); }

  void Record(const std::string& metric, double value, const char* unit) {
    metrics_.push_back(Metric{metric, unit, value});
  }

  // Writes the JSON document if --json was given. Idempotent (the destructor calls
  // it too, so a bench may flush early and exit however it likes).
  bool Write() {
    if (path_.empty() || written_) {
      return true;
    }
    std::FILE* f = std::fopen(path_.c_str(), "wb");
    if (f == nullptr) {
      std::fprintf(stderr, "bench_json: cannot write %s\n", path_.c_str());
      return false;
    }
    std::fprintf(f, "{\"schema\":\"tock-bench-v1\",\"bench\":\"%s\",\"metrics\":[\n",
                 bench_.c_str());
    for (size_t i = 0; i < metrics_.size(); ++i) {
      const Metric& m = metrics_[i];
      std::fprintf(f, "  {\"name\":\"%s\",\"value\":%.6g,\"unit\":\"%s\"}%s\n",
                   Escaped(m.name).c_str(), m.value, m.unit.c_str(),
                   i + 1 < metrics_.size() ? "," : "");
    }
    std::fprintf(f, "]}\n");
    written_ = std::fclose(f) == 0;
    return written_;
  }

 private:
  struct Metric {
    std::string name;
    std::string unit;
    double value;
  };

  static std::string Escaped(const std::string& s) {
    std::string out;
    for (char c : s) {
      if (c == '"' || c == '\\') {
        out += '\\';
      }
      out += c;
    }
    return out;
  }

  std::string bench_;
  std::string path_;
  std::vector<Metric> metrics_;
  bool written_ = false;
};

}  // namespace tock::bench

#endif  // TOCK_BENCH_BENCH_JSON_H_
