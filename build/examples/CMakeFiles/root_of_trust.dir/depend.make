# Empty dependencies file for root_of_trust.
# This may be replaced when dependencies are built.
