file(REMOVE_RECURSE
  "CMakeFiles/root_of_trust.dir/root_of_trust.cpp.o"
  "CMakeFiles/root_of_trust.dir/root_of_trust.cpp.o.d"
  "root_of_trust"
  "root_of_trust.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/root_of_trust.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
