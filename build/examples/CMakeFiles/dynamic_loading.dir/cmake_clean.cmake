file(REMOVE_RECURSE
  "CMakeFiles/dynamic_loading.dir/dynamic_loading.cpp.o"
  "CMakeFiles/dynamic_loading.dir/dynamic_loading.cpp.o.d"
  "dynamic_loading"
  "dynamic_loading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/dynamic_loading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
