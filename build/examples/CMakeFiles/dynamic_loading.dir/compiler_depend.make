# Empty compiler generated dependencies file for dynamic_loading.
# This may be replaced when dependencies are built.
