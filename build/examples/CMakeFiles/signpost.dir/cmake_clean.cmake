file(REMOVE_RECURSE
  "CMakeFiles/signpost.dir/signpost.cpp.o"
  "CMakeFiles/signpost.dir/signpost.cpp.o.d"
  "signpost"
  "signpost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/signpost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
