# Empty dependencies file for signpost.
# This may be replaced when dependencies are built.
