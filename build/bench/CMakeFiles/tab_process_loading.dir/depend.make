# Empty dependencies file for tab_process_loading.
# This may be replaced when dependencies are built.
