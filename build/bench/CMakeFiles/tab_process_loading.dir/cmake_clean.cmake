file(REMOVE_RECURSE
  "CMakeFiles/tab_process_loading.dir/tab_process_loading.cc.o"
  "CMakeFiles/tab_process_loading.dir/tab_process_loading.cc.o.d"
  "tab_process_loading"
  "tab_process_loading.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_process_loading.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
