# Empty dependencies file for tab_callbacks_vs_futures.
# This may be replaced when dependencies are built.
