file(REMOVE_RECURSE
  "CMakeFiles/tab_callbacks_vs_futures.dir/tab_callbacks_vs_futures.cc.o"
  "CMakeFiles/tab_callbacks_vs_futures.dir/tab_callbacks_vs_futures.cc.o.d"
  "tab_callbacks_vs_futures"
  "tab_callbacks_vs_futures.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_callbacks_vs_futures.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
