# Empty dependencies file for tab_register_dsl.
# This may be replaced when dependencies are built.
