file(REMOVE_RECURSE
  "CMakeFiles/tab_register_dsl.dir/tab_register_dsl.cc.o"
  "CMakeFiles/tab_register_dsl.dir/tab_register_dsl.cc.o.d"
  "tab_register_dsl"
  "tab_register_dsl.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_register_dsl.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
