file(REMOVE_RECURSE
  "CMakeFiles/fig_energy_dutycycle.dir/fig_energy_dutycycle.cc.o"
  "CMakeFiles/fig_energy_dutycycle.dir/fig_energy_dutycycle.cc.o.d"
  "fig_energy_dutycycle"
  "fig_energy_dutycycle.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig_energy_dutycycle.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
