# Empty dependencies file for fig_energy_dutycycle.
# This may be replaced when dependencies are built.
