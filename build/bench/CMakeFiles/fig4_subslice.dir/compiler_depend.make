# Empty compiler generated dependencies file for fig4_subslice.
# This may be replaced when dependencies are built.
