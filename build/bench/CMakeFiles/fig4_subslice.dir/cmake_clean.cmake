file(REMOVE_RECURSE
  "CMakeFiles/fig4_subslice.dir/fig4_subslice.cc.o"
  "CMakeFiles/fig4_subslice.dir/fig4_subslice.cc.o.d"
  "fig4_subslice"
  "fig4_subslice.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig4_subslice.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
