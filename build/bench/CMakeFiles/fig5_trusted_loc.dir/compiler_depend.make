# Empty compiler generated dependencies file for fig5_trusted_loc.
# This may be replaced when dependencies are built.
