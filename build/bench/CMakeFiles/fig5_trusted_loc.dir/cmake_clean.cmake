file(REMOVE_RECURSE
  "CMakeFiles/fig5_trusted_loc.dir/fig5_trusted_loc.cc.o"
  "CMakeFiles/fig5_trusted_loc.dir/fig5_trusted_loc.cc.o.d"
  "fig5_trusted_loc"
  "fig5_trusted_loc.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/fig5_trusted_loc.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
