# Empty compiler generated dependencies file for tab_overlap_checks.
# This may be replaced when dependencies are built.
