file(REMOVE_RECURSE
  "CMakeFiles/tab_overlap_checks.dir/tab_overlap_checks.cc.o"
  "CMakeFiles/tab_overlap_checks.dir/tab_overlap_checks.cc.o.d"
  "tab_overlap_checks"
  "tab_overlap_checks.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_overlap_checks.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
