file(REMOVE_RECURSE
  "CMakeFiles/tab_grant_exhaustion.dir/tab_grant_exhaustion.cc.o"
  "CMakeFiles/tab_grant_exhaustion.dir/tab_grant_exhaustion.cc.o.d"
  "tab_grant_exhaustion"
  "tab_grant_exhaustion.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_grant_exhaustion.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
