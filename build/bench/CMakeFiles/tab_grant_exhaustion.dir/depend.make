# Empty dependencies file for tab_grant_exhaustion.
# This may be replaced when dependencies are built.
