# Empty dependencies file for tab_syscall_sequences.
# This may be replaced when dependencies are built.
