
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/bench/tab_syscall_sequences.cc" "bench/CMakeFiles/tab_syscall_sequences.dir/tab_syscall_sequences.cc.o" "gcc" "bench/CMakeFiles/tab_syscall_sequences.dir/tab_syscall_sequences.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/board/CMakeFiles/tock_board.dir/DependInfo.cmake"
  "/root/repo/build/src/tools/CMakeFiles/tock_tools.dir/DependInfo.cmake"
  "/root/repo/build/src/capsule/CMakeFiles/tock_capsule.dir/DependInfo.cmake"
  "/root/repo/build/src/libtock/CMakeFiles/tock_libtock.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/tock_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/tock_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/tock_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tock_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/tock_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
