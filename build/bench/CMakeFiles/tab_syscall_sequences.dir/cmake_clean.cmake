file(REMOVE_RECURSE
  "CMakeFiles/tab_syscall_sequences.dir/tab_syscall_sequences.cc.o"
  "CMakeFiles/tab_syscall_sequences.dir/tab_syscall_sequences.cc.o.d"
  "tab_syscall_sequences"
  "tab_syscall_sequences.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_syscall_sequences.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
