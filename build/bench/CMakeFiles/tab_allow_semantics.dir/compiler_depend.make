# Empty compiler generated dependencies file for tab_allow_semantics.
# This may be replaced when dependencies are built.
