file(REMOVE_RECURSE
  "CMakeFiles/tab_allow_semantics.dir/tab_allow_semantics.cc.o"
  "CMakeFiles/tab_allow_semantics.dir/tab_allow_semantics.cc.o.d"
  "tab_allow_semantics"
  "tab_allow_semantics.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_allow_semantics.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
