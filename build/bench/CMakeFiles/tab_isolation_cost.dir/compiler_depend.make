# Empty compiler generated dependencies file for tab_isolation_cost.
# This may be replaced when dependencies are built.
