file(REMOVE_RECURSE
  "CMakeFiles/tab_isolation_cost.dir/tab_isolation_cost.cc.o"
  "CMakeFiles/tab_isolation_cost.dir/tab_isolation_cost.cc.o.d"
  "tab_isolation_cost"
  "tab_isolation_cost.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_isolation_cost.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
