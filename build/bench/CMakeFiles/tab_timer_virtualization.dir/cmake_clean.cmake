file(REMOVE_RECURSE
  "CMakeFiles/tab_timer_virtualization.dir/tab_timer_virtualization.cc.o"
  "CMakeFiles/tab_timer_virtualization.dir/tab_timer_virtualization.cc.o.d"
  "tab_timer_virtualization"
  "tab_timer_virtualization.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tab_timer_virtualization.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
