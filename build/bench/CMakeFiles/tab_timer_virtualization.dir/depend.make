# Empty dependencies file for tab_timer_virtualization.
# This may be replaced when dependencies are built.
