file(REMOVE_RECURSE
  "CMakeFiles/tock_tests.dir/abi_test.cc.o"
  "CMakeFiles/tock_tests.dir/abi_test.cc.o.d"
  "CMakeFiles/tock_tests.dir/capability_test.cc.o"
  "CMakeFiles/tock_tests.dir/capability_test.cc.o.d"
  "CMakeFiles/tock_tests.dir/capsule_integration_test.cc.o"
  "CMakeFiles/tock_tests.dir/capsule_integration_test.cc.o.d"
  "CMakeFiles/tock_tests.dir/crypto_test.cc.o"
  "CMakeFiles/tock_tests.dir/crypto_test.cc.o.d"
  "CMakeFiles/tock_tests.dir/extension_test.cc.o"
  "CMakeFiles/tock_tests.dir/extension_test.cc.o.d"
  "CMakeFiles/tock_tests.dir/hw_test.cc.o"
  "CMakeFiles/tock_tests.dir/hw_test.cc.o.d"
  "CMakeFiles/tock_tests.dir/integration_test.cc.o"
  "CMakeFiles/tock_tests.dir/integration_test.cc.o.d"
  "CMakeFiles/tock_tests.dir/kernel_test.cc.o"
  "CMakeFiles/tock_tests.dir/kernel_test.cc.o.d"
  "CMakeFiles/tock_tests.dir/loader_test.cc.o"
  "CMakeFiles/tock_tests.dir/loader_test.cc.o.d"
  "CMakeFiles/tock_tests.dir/trace_test.cc.o"
  "CMakeFiles/tock_tests.dir/trace_test.cc.o.d"
  "CMakeFiles/tock_tests.dir/util_test.cc.o"
  "CMakeFiles/tock_tests.dir/util_test.cc.o.d"
  "CMakeFiles/tock_tests.dir/virtual_alarm_test.cc.o"
  "CMakeFiles/tock_tests.dir/virtual_alarm_test.cc.o.d"
  "CMakeFiles/tock_tests.dir/vm_test.cc.o"
  "CMakeFiles/tock_tests.dir/vm_test.cc.o.d"
  "tock_tests"
  "tock_tests.pdb"
  "tock_tests[1]_tests.cmake"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tock_tests.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
