
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/tests/abi_test.cc" "tests/CMakeFiles/tock_tests.dir/abi_test.cc.o" "gcc" "tests/CMakeFiles/tock_tests.dir/abi_test.cc.o.d"
  "/root/repo/tests/capability_test.cc" "tests/CMakeFiles/tock_tests.dir/capability_test.cc.o" "gcc" "tests/CMakeFiles/tock_tests.dir/capability_test.cc.o.d"
  "/root/repo/tests/capsule_integration_test.cc" "tests/CMakeFiles/tock_tests.dir/capsule_integration_test.cc.o" "gcc" "tests/CMakeFiles/tock_tests.dir/capsule_integration_test.cc.o.d"
  "/root/repo/tests/crypto_test.cc" "tests/CMakeFiles/tock_tests.dir/crypto_test.cc.o" "gcc" "tests/CMakeFiles/tock_tests.dir/crypto_test.cc.o.d"
  "/root/repo/tests/extension_test.cc" "tests/CMakeFiles/tock_tests.dir/extension_test.cc.o" "gcc" "tests/CMakeFiles/tock_tests.dir/extension_test.cc.o.d"
  "/root/repo/tests/hw_test.cc" "tests/CMakeFiles/tock_tests.dir/hw_test.cc.o" "gcc" "tests/CMakeFiles/tock_tests.dir/hw_test.cc.o.d"
  "/root/repo/tests/integration_test.cc" "tests/CMakeFiles/tock_tests.dir/integration_test.cc.o" "gcc" "tests/CMakeFiles/tock_tests.dir/integration_test.cc.o.d"
  "/root/repo/tests/kernel_test.cc" "tests/CMakeFiles/tock_tests.dir/kernel_test.cc.o" "gcc" "tests/CMakeFiles/tock_tests.dir/kernel_test.cc.o.d"
  "/root/repo/tests/loader_test.cc" "tests/CMakeFiles/tock_tests.dir/loader_test.cc.o" "gcc" "tests/CMakeFiles/tock_tests.dir/loader_test.cc.o.d"
  "/root/repo/tests/trace_test.cc" "tests/CMakeFiles/tock_tests.dir/trace_test.cc.o" "gcc" "tests/CMakeFiles/tock_tests.dir/trace_test.cc.o.d"
  "/root/repo/tests/util_test.cc" "tests/CMakeFiles/tock_tests.dir/util_test.cc.o" "gcc" "tests/CMakeFiles/tock_tests.dir/util_test.cc.o.d"
  "/root/repo/tests/virtual_alarm_test.cc" "tests/CMakeFiles/tock_tests.dir/virtual_alarm_test.cc.o" "gcc" "tests/CMakeFiles/tock_tests.dir/virtual_alarm_test.cc.o.d"
  "/root/repo/tests/vm_test.cc" "tests/CMakeFiles/tock_tests.dir/vm_test.cc.o" "gcc" "tests/CMakeFiles/tock_tests.dir/vm_test.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/board/CMakeFiles/tock_board.dir/DependInfo.cmake"
  "/root/repo/build/src/tools/CMakeFiles/tock_tools.dir/DependInfo.cmake"
  "/root/repo/build/src/capsule/CMakeFiles/tock_capsule.dir/DependInfo.cmake"
  "/root/repo/build/src/libtock/CMakeFiles/tock_libtock.dir/DependInfo.cmake"
  "/root/repo/build/src/kernel/CMakeFiles/tock_kernel.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/tock_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/hw/CMakeFiles/tock_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tock_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/tock_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
