# Empty compiler generated dependencies file for tock_tests.
# This may be replaced when dependencies are built.
