# Empty dependencies file for tock_libtock.
# This may be replaced when dependencies are built.
