file(REMOVE_RECURSE
  "CMakeFiles/tock_libtock.dir/libtock.cc.o"
  "CMakeFiles/tock_libtock.dir/libtock.cc.o.d"
  "libtock_libtock.a"
  "libtock_libtock.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tock_libtock.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
