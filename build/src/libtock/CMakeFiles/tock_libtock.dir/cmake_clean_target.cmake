file(REMOVE_RECURSE
  "libtock_libtock.a"
)
