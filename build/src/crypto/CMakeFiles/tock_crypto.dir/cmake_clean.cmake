file(REMOVE_RECURSE
  "CMakeFiles/tock_crypto.dir/aes128.cc.o"
  "CMakeFiles/tock_crypto.dir/aes128.cc.o.d"
  "CMakeFiles/tock_crypto.dir/hmac_sha256.cc.o"
  "CMakeFiles/tock_crypto.dir/hmac_sha256.cc.o.d"
  "CMakeFiles/tock_crypto.dir/sha256.cc.o"
  "CMakeFiles/tock_crypto.dir/sha256.cc.o.d"
  "libtock_crypto.a"
  "libtock_crypto.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tock_crypto.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
