file(REMOVE_RECURSE
  "libtock_crypto.a"
)
