# Empty dependencies file for tock_crypto.
# This may be replaced when dependencies are built.
