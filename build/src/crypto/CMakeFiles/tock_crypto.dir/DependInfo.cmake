
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/crypto/aes128.cc" "src/crypto/CMakeFiles/tock_crypto.dir/aes128.cc.o" "gcc" "src/crypto/CMakeFiles/tock_crypto.dir/aes128.cc.o.d"
  "/root/repo/src/crypto/hmac_sha256.cc" "src/crypto/CMakeFiles/tock_crypto.dir/hmac_sha256.cc.o" "gcc" "src/crypto/CMakeFiles/tock_crypto.dir/hmac_sha256.cc.o.d"
  "/root/repo/src/crypto/sha256.cc" "src/crypto/CMakeFiles/tock_crypto.dir/sha256.cc.o" "gcc" "src/crypto/CMakeFiles/tock_crypto.dir/sha256.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
