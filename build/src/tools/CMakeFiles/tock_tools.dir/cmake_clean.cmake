file(REMOVE_RECURSE
  "CMakeFiles/tock_tools.dir/loc_audit_lib.cc.o"
  "CMakeFiles/tock_tools.dir/loc_audit_lib.cc.o.d"
  "libtock_tools.a"
  "libtock_tools.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tock_tools.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
