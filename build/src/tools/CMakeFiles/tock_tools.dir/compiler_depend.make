# Empty compiler generated dependencies file for tock_tools.
# This may be replaced when dependencies are built.
