file(REMOVE_RECURSE
  "libtock_tools.a"
)
