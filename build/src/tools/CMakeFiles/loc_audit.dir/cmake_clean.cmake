file(REMOVE_RECURSE
  "CMakeFiles/loc_audit.dir/loc_audit.cc.o"
  "CMakeFiles/loc_audit.dir/loc_audit.cc.o.d"
  "loc_audit"
  "loc_audit.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/loc_audit.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
