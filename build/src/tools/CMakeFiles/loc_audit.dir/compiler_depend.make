# Empty compiler generated dependencies file for loc_audit.
# This may be replaced when dependencies are built.
