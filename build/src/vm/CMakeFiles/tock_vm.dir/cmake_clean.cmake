file(REMOVE_RECURSE
  "CMakeFiles/tock_vm.dir/assembler.cc.o"
  "CMakeFiles/tock_vm.dir/assembler.cc.o.d"
  "CMakeFiles/tock_vm.dir/cpu.cc.o"
  "CMakeFiles/tock_vm.dir/cpu.cc.o.d"
  "libtock_vm.a"
  "libtock_vm.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tock_vm.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
