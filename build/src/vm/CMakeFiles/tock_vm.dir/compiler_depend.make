# Empty compiler generated dependencies file for tock_vm.
# This may be replaced when dependencies are built.
