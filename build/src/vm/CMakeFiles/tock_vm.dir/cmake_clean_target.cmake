file(REMOVE_RECURSE
  "libtock_vm.a"
)
