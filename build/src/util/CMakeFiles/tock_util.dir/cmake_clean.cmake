file(REMOVE_RECURSE
  "CMakeFiles/tock_util.dir/error.cc.o"
  "CMakeFiles/tock_util.dir/error.cc.o.d"
  "libtock_util.a"
  "libtock_util.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tock_util.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
