# Empty dependencies file for tock_util.
# This may be replaced when dependencies are built.
