file(REMOVE_RECURSE
  "libtock_util.a"
)
