file(REMOVE_RECURSE
  "libtock_capsule.a"
)
