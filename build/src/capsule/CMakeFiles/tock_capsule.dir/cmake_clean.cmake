file(REMOVE_RECURSE
  "CMakeFiles/tock_capsule.dir/alarm_driver.cc.o"
  "CMakeFiles/tock_capsule.dir/alarm_driver.cc.o.d"
  "CMakeFiles/tock_capsule.dir/console.cc.o"
  "CMakeFiles/tock_capsule.dir/console.cc.o.d"
  "CMakeFiles/tock_capsule.dir/virtual_alarm.cc.o"
  "CMakeFiles/tock_capsule.dir/virtual_alarm.cc.o.d"
  "CMakeFiles/tock_capsule.dir/virtual_uart.cc.o"
  "CMakeFiles/tock_capsule.dir/virtual_uart.cc.o.d"
  "libtock_capsule.a"
  "libtock_capsule.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tock_capsule.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
