# Empty dependencies file for tock_capsule.
# This may be replaced when dependencies are built.
