file(REMOVE_RECURSE
  "libtock_board.a"
)
