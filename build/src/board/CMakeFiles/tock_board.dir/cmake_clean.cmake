file(REMOVE_RECURSE
  "CMakeFiles/tock_board.dir/sim_board.cc.o"
  "CMakeFiles/tock_board.dir/sim_board.cc.o.d"
  "libtock_board.a"
  "libtock_board.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tock_board.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
