# Empty compiler generated dependencies file for tock_board.
# This may be replaced when dependencies are built.
