file(REMOVE_RECURSE
  "libtock_kernel.a"
)
