file(REMOVE_RECURSE
  "CMakeFiles/tock_kernel.dir/kernel.cc.o"
  "CMakeFiles/tock_kernel.dir/kernel.cc.o.d"
  "CMakeFiles/tock_kernel.dir/process.cc.o"
  "CMakeFiles/tock_kernel.dir/process.cc.o.d"
  "CMakeFiles/tock_kernel.dir/process_loader.cc.o"
  "CMakeFiles/tock_kernel.dir/process_loader.cc.o.d"
  "CMakeFiles/tock_kernel.dir/tbf.cc.o"
  "CMakeFiles/tock_kernel.dir/tbf.cc.o.d"
  "CMakeFiles/tock_kernel.dir/trace.cc.o"
  "CMakeFiles/tock_kernel.dir/trace.cc.o.d"
  "libtock_kernel.a"
  "libtock_kernel.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tock_kernel.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
