
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/kernel/kernel.cc" "src/kernel/CMakeFiles/tock_kernel.dir/kernel.cc.o" "gcc" "src/kernel/CMakeFiles/tock_kernel.dir/kernel.cc.o.d"
  "/root/repo/src/kernel/process.cc" "src/kernel/CMakeFiles/tock_kernel.dir/process.cc.o" "gcc" "src/kernel/CMakeFiles/tock_kernel.dir/process.cc.o.d"
  "/root/repo/src/kernel/process_loader.cc" "src/kernel/CMakeFiles/tock_kernel.dir/process_loader.cc.o" "gcc" "src/kernel/CMakeFiles/tock_kernel.dir/process_loader.cc.o.d"
  "/root/repo/src/kernel/tbf.cc" "src/kernel/CMakeFiles/tock_kernel.dir/tbf.cc.o" "gcc" "src/kernel/CMakeFiles/tock_kernel.dir/tbf.cc.o.d"
  "/root/repo/src/kernel/trace.cc" "src/kernel/CMakeFiles/tock_kernel.dir/trace.cc.o" "gcc" "src/kernel/CMakeFiles/tock_kernel.dir/trace.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/hw/CMakeFiles/tock_hw.dir/DependInfo.cmake"
  "/root/repo/build/src/vm/CMakeFiles/tock_vm.dir/DependInfo.cmake"
  "/root/repo/build/src/util/CMakeFiles/tock_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/tock_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
