# Empty compiler generated dependencies file for tock_kernel.
# This may be replaced when dependencies are built.
