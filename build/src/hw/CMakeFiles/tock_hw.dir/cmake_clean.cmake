file(REMOVE_RECURSE
  "CMakeFiles/tock_hw.dir/crypto_accel.cc.o"
  "CMakeFiles/tock_hw.dir/crypto_accel.cc.o.d"
  "CMakeFiles/tock_hw.dir/gpio.cc.o"
  "CMakeFiles/tock_hw.dir/gpio.cc.o.d"
  "CMakeFiles/tock_hw.dir/memory_bus.cc.o"
  "CMakeFiles/tock_hw.dir/memory_bus.cc.o.d"
  "CMakeFiles/tock_hw.dir/radio.cc.o"
  "CMakeFiles/tock_hw.dir/radio.cc.o.d"
  "CMakeFiles/tock_hw.dir/sim_clock.cc.o"
  "CMakeFiles/tock_hw.dir/sim_clock.cc.o.d"
  "CMakeFiles/tock_hw.dir/spi.cc.o"
  "CMakeFiles/tock_hw.dir/spi.cc.o.d"
  "CMakeFiles/tock_hw.dir/timer.cc.o"
  "CMakeFiles/tock_hw.dir/timer.cc.o.d"
  "CMakeFiles/tock_hw.dir/uart.cc.o"
  "CMakeFiles/tock_hw.dir/uart.cc.o.d"
  "libtock_hw.a"
  "libtock_hw.pdb"
)

# Per-language clean rules from dependency scanning.
foreach(lang CXX)
  include(CMakeFiles/tock_hw.dir/cmake_clean_${lang}.cmake OPTIONAL)
endforeach()
