file(REMOVE_RECURSE
  "libtock_hw.a"
)
