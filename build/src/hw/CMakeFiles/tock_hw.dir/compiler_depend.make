# Empty compiler generated dependencies file for tock_hw.
# This may be replaced when dependencies are built.
