
# Consider dependencies only in project.
set(CMAKE_DEPENDS_IN_PROJECT_ONLY OFF)

# The set of languages for which implicit dependencies are needed:
set(CMAKE_DEPENDS_LANGUAGES
  )

# The set of dependency files which are needed:
set(CMAKE_DEPENDS_DEPENDENCY_FILES
  "/root/repo/src/hw/crypto_accel.cc" "src/hw/CMakeFiles/tock_hw.dir/crypto_accel.cc.o" "gcc" "src/hw/CMakeFiles/tock_hw.dir/crypto_accel.cc.o.d"
  "/root/repo/src/hw/gpio.cc" "src/hw/CMakeFiles/tock_hw.dir/gpio.cc.o" "gcc" "src/hw/CMakeFiles/tock_hw.dir/gpio.cc.o.d"
  "/root/repo/src/hw/memory_bus.cc" "src/hw/CMakeFiles/tock_hw.dir/memory_bus.cc.o" "gcc" "src/hw/CMakeFiles/tock_hw.dir/memory_bus.cc.o.d"
  "/root/repo/src/hw/radio.cc" "src/hw/CMakeFiles/tock_hw.dir/radio.cc.o" "gcc" "src/hw/CMakeFiles/tock_hw.dir/radio.cc.o.d"
  "/root/repo/src/hw/sim_clock.cc" "src/hw/CMakeFiles/tock_hw.dir/sim_clock.cc.o" "gcc" "src/hw/CMakeFiles/tock_hw.dir/sim_clock.cc.o.d"
  "/root/repo/src/hw/spi.cc" "src/hw/CMakeFiles/tock_hw.dir/spi.cc.o" "gcc" "src/hw/CMakeFiles/tock_hw.dir/spi.cc.o.d"
  "/root/repo/src/hw/timer.cc" "src/hw/CMakeFiles/tock_hw.dir/timer.cc.o" "gcc" "src/hw/CMakeFiles/tock_hw.dir/timer.cc.o.d"
  "/root/repo/src/hw/uart.cc" "src/hw/CMakeFiles/tock_hw.dir/uart.cc.o" "gcc" "src/hw/CMakeFiles/tock_hw.dir/uart.cc.o.d"
  )

# Targets to which this target links.
set(CMAKE_TARGET_LINKED_INFO_FILES
  "/root/repo/build/src/util/CMakeFiles/tock_util.dir/DependInfo.cmake"
  "/root/repo/build/src/crypto/CMakeFiles/tock_crypto.dir/DependInfo.cmake"
  )

# Fortran module output directory.
set(CMAKE_Fortran_TARGET_MODULE_DIR "")
