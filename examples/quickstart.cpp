// Quickstart: boot a simulated Tock board with two applications — a classic blinker
// and a console greeter — and watch them multiprogram a 64 kB-class computer.
//
//   $ ./build/examples/quickstart
//
// Tour: AppInstaller assembles RV32 source into TBF images and flashes them;
// SimBoard::Boot() runs the process loader; Run() drives the asynchronous kernel
// main loop (§2.5) — processes execute, trap, yield, and the MCU sleeps whenever
// nothing is runnable.
#include <cstdio>

#include "board/sim_board.h"

int main() {
  tock::SimBoard board;

  tock::AppSpec blink;
  blink.name = "blink";
  blink.source = R"(
# Toggle LED 0 every 50k ticks, ten times, then exit.
_start:
    li s1, 10
loop:
    li a0, 2          # driver: LED
    li a1, 3          # command: toggle
    li a2, 0          # led index
    li a3, 0
    li a4, 2          # syscall class: command
    ecall
    li a0, 50000
    call sleep_ticks
    addi s1, s1, -1
    bnez s1, loop
    li a0, 0
    call tock_exit_terminate
)";

  tock::AppSpec hello;
  hello.name = "hello";
  hello.source = R"(
_start:
    li s1, 3
loop:
    la a0, msg
    li a1, 21
    call console_print
    li a0, 120000
    call sleep_ticks
    addi s1, s1, -1
    bnez s1, loop
    li a0, 0
    call tock_exit_terminate
msg:
    .asciz "hello from userspace\n"
)";

  if (board.installer().Install(blink) == 0 || board.installer().Install(hello) == 0) {
    std::fprintf(stderr, "install failed: %s\n", board.installer().error().c_str());
    return 1;
  }

  int loaded = board.Boot();
  std::printf("loader created %d processes\n", loaded);

  board.Run(2'000'000);  // 2M cycles ≈ 125 ms of simulated time at 16 MHz

  std::printf("---- console output ----\n%s", board.uart_hw().output().c_str());
  std::printf("------------------------\n");
  std::printf("LED0 toggles:      %llu\n",
              (unsigned long long)board.gpio_hw().output_toggles(tock::SimBoard::kLed0));
  std::printf("system calls:      %llu\n", (unsigned long long)board.kernel().total_syscalls());
  std::printf("context switches:  %llu\n",
              (unsigned long long)board.kernel().total_context_switches());
  std::printf("sleep fraction:    %.1f%%  (the async kernel slept whenever idle, §2.5)\n",
              100.0 * board.mcu().SleepFraction());

  for (size_t i = 0; i < tock::Kernel::kMaxProcesses; ++i) {
    tock::Process* p = board.kernel().process(i);
    if (p != nullptr && p->id.IsValid()) {
      std::printf("process %-8s state=%-10s syscalls=%llu upcalls=%llu\n", p->name.c_str(),
                  tock::ProcessStateName(p->state), (unsigned long long)p->syscall_count,
                  (unsigned long long)p->upcalls_delivered);
    }
  }
  return 0;
}
