// Dynamic application loading (§3.4): because verified loading is an asynchronous
// state machine, installing new software at runtime is just "trigger the kernel to
// check the new process". This example boots with one app, then — while the system
// keeps running — flashes, verifies, and starts a second one, and finally shows a
// tampered third image being refused.
//
//   $ ./build/examples/dynamic_loading
#include <cstdio>

#include "board/sim_board.h"

namespace {

const char* kResidentApp = R"(
_start:
loop:
    la a0, msg
    li a1, 9
    call console_print
    li a0, 400000
    call sleep_ticks
    j loop
msg:
    .asciz "resident\n"
)";

const char* kUpdateApp = R"(
_start:
    li s1, 3
loop:
    la a0, msg
    li a1, 8
    call console_print
    li a0, 150000
    call sleep_ticks
    addi s1, s1, -1
    bnez s1, loop
    li a0, 0
    call tock_exit_terminate
msg:
    .asciz "update!\n"
)";

}  // namespace

int main() {
  tock::BoardConfig config;
  config.kernel.loader = tock::LoaderMode::kAsynchronous;
  tock::SimBoard board(config);

  tock::AppSpec resident;
  resident.name = "resident";
  resident.source = kResidentApp;
  resident.sign = true;
  if (board.installer().Install(resident) == 0) {
    std::fprintf(stderr, "install failed: %s\n", board.installer().error().c_str());
    return 1;
  }
  std::printf("boot: %d app(s) verified and started\n", board.Boot());
  board.Run(1'000'000);

  // --- The over-the-air update arrives while the system is live. ---
  std::printf("flashing signed update while running...\n");
  tock::AppSpec update;
  update.name = "update";
  update.source = kUpdateApp;
  update.sign = true;
  uint32_t addr = board.installer().Install(update);
  if (addr == 0 || !board.loader().LoadOneAsync(addr).ok()) {
    std::fprintf(stderr, "dynamic load failed\n");
    return 1;
  }
  board.Run(3'000'000);  // verification + both apps running concurrently

  // --- A tampered image shows up; verification refuses it, nothing reboots. ---
  std::printf("flashing tampered image...\n");
  tock::AppSpec evil;
  evil.name = "evil";
  evil.source = kUpdateApp;
  evil.sign = true;
  evil.corrupt_signature = true;
  uint32_t evil_addr = board.installer().Install(evil);
  if (evil_addr == 0 || !board.loader().LoadOneAsync(evil_addr).ok()) {
    std::fprintf(stderr, "dynamic load trigger failed\n");
    return 1;
  }
  board.Run(2'000'000);

  std::printf("---- console ----\n%s-----------------\n", board.uart_hw().output().c_str());
  std::printf("load records:\n");
  for (const auto& record : board.loader().records()) {
    std::printf("  %-8s @0x%05x  %s\n", record.name.c_str(), record.flash_addr,
                record.created ? "verified + started"
                               : (record.reject_reason ? record.reject_reason : "?"));
  }
  std::printf("live processes now: %zu (resident kept running throughout)\n",
              board.kernel().NumLiveProcesses());
  return 0;
}
