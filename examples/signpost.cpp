// Signpost-style urban sensing deployment (§2): two solar-powered sensor nodes
// sample the ambient temperature on a duty cycle and radio readings to a gateway
// node, which logs them to its console. The run ends with the per-node energy
// accounting that motivated Tock's asynchronous design.
//
//   $ ./build/examples/signpost
#include <cstdio>

#include "board/sim_board.h"

namespace {

// Sensor node app: sample temperature, pack [node, hi, lo], transmit to node 100,
// sleep a long interval, repeat. Spends almost all its life asleep.
std::string SensorApp(int node_id) {
  char buf[2048];
  std::snprintf(buf, sizeof(buf), R"(
_start:
    mv s0, a0              # ram base: packet staging area
    # stagger nodes so their radio transmissions don't collide at the gateway
    li a0, %d
    call sleep_ticks
loop:
    call temp_read_sync    # a0 = centi-degrees
    mv s1, a0
    # build packet: [node, temp_hi, temp_lo]
    li t0, %d
    sb t0, 0(s0)
    srli t0, s1, 8
    sb t0, 1(s0)
    sb s1, 2(s0)
    # allow_ro(radio, 0, packet, 3)... packet lives in RAM, so read-write allow
    li a0, 0x30001
    li a1, 0
    mv a2, s0
    li a3, 3
    li a4, 4
    ecall
    # command(radio, 1 = tx, dst=100, len=3)
    li a0, 0x30001
    li a1, 1
    li a2, 100
    li a3, 3
    li a4, 2
    ecall
    # yield-wait-for(radio, 0 = tx done)
    li a0, 2
    li a1, 0x30001
    li a2, 0
    li a4, 0
    ecall
    # deep sleep between samples: the whole point of the async kernel
    li a0, 500000
    call sleep_ticks
    j loop
)",
                node_id * 120000, node_id);
  return buf;
}

// Gateway app: listen for packets, print "node=N temp=T" lines.
const char* kGatewayApp = R"(
_start:
    mv s0, a0
    # allow_rw(radio, 1 = rx sink, ram+64, 8)
    li a0, 0x30001
    li a1, 1
    addi a2, s0, 64
    li a3, 8
    li a4, 3
    ecall
    # command(radio, 2 = listen)
    li a0, 0x30001
    li a1, 2
    li a2, 0
    li a3, 0
    li a4, 2
    ecall
loop:
    # yield-wait-for(radio, 1 = packet received)
    li a0, 2
    li a1, 0x30001
    li a2, 1
    li a4, 0
    ecall
    # format "N:HHHH.\n" into ram+128 (node digit, 4 hex temp digits)
    lbu t0, 64(s0)         # node id
    addi t0, t0, 48        # '0' + id
    sb t0, 128(s0)
    li t0, ':'
    sb t0, 129(s0)
    lbu t1, 65(s0)         # temp hi
    lbu t2, 66(s0)         # temp lo
    slli t1, t1, 8
    or t1, t1, t2          # t1 = centi-degrees
    li t3, 4               # 4 hex digits
    addi t4, s0, 133       # write backwards from ram+133
hexloop:
    andi t5, t1, 15
    li t6, 10
    blt t5, t6, digit
    addi t5, t5, 39        # 'a' - 10 - '0'
digit:
    addi t5, t5, 48
    sb t5, 0(t4)
    addi t4, t4, -1
    srli t1, t1, 4
    addi t3, t3, -1
    bnez t3, hexloop
    li t0, '\n'
    sb t0, 134(s0)
    # print 7 bytes from ram+128
    addi a0, s0, 128
    li a1, 7
    call console_print
    j loop
)";

}  // namespace

int main() {
  tock::World world;

  tock::BoardConfig sensor1_config;
  sensor1_config.radio_addr = 1;
  sensor1_config.medium = &world.medium();
  tock::BoardConfig sensor2_config;
  sensor2_config.radio_addr = 2;
  sensor2_config.medium = &world.medium();
  tock::BoardConfig gateway_config;
  gateway_config.radio_addr = 100;
  gateway_config.medium = &world.medium();

  tock::SimBoard sensor1(sensor1_config);
  tock::SimBoard sensor2(sensor2_config);
  tock::SimBoard gateway(gateway_config);
  sensor1.temp_hw().SetAmbient(1830);  // 18.3 °C street level
  sensor2.temp_hw().SetAmbient(2410);  // 24.1 °C rooftop
  world.AddBoard(&sensor1);
  world.AddBoard(&sensor2);
  world.AddBoard(&gateway);

  tock::AppSpec s1;
  s1.name = "sense1";
  s1.source = SensorApp(1);
  tock::AppSpec s2;
  s2.name = "sense2";
  s2.source = SensorApp(2);
  tock::AppSpec gw;
  gw.name = "gateway";
  gw.source = kGatewayApp;

  if (sensor1.installer().Install(s1) == 0 || sensor2.installer().Install(s2) == 0 ||
      gateway.installer().Install(gw) == 0) {
    std::fprintf(stderr, "install failed\n");
    return 1;
  }
  sensor1.Boot();
  sensor2.Boot();
  gateway.Boot();

  world.Run(5'000'000);  // ~312 ms of city time

  std::printf("---- gateway log (node:centi-degrees-hex) ----\n%s",
              gateway.uart_hw().output().c_str());
  std::printf("----------------------------------------------\n");
  std::printf("%-8s %12s %12s %8s %10s\n", "node", "active cyc", "sleep cyc", "sleep%",
              "energy");
  const char* names[] = {"sensor1", "sensor2", "gateway"};
  tock::SimBoard* boards[] = {&sensor1, &sensor2, &gateway};
  for (int i = 0; i < 3; ++i) {
    tock::Mcu& mcu = boards[i]->mcu();
    std::printf("%-8s %12llu %12llu %7.1f%% %10.0f\n", names[i],
                (unsigned long long)mcu.active_cycles(), (unsigned long long)mcu.sleep_cycles(),
                100.0 * mcu.SleepFraction(), mcu.Energy());
  }
  std::printf("packets: sensor1 sent %llu, sensor2 sent %llu, gateway received %llu\n",
              (unsigned long long)sensor1.radio_hw().packets_sent(),
              (unsigned long long)sensor2.radio_hw().packets_sent(),
              (unsigned long long)gateway.radio_hw().packets_received());
  return 0;
}
