// Root-of-trust scenario (§3): a 2FA-style token built on the verified-boot path.
//
//  * The board boots with the asynchronous, signature-checking process loader; a
//    tampered app image is rejected, a correctly signed authenticator app runs.
//  * The authenticator keeps its device secret in read-only flash and allows it to
//    the kernel's HMAC engine via read-only allow — the §3.3.3 pattern that made
//    allow-readonly "a must-have for root-of-trust applications".
//  * The host sends an 8-byte challenge over the UART; the app answers with the
//    HMAC-SHA256 response, which we verify out-of-band.
//
//   $ ./build/examples/root_of_trust
#include <cstdio>
#include <cstring>

#include "board/sim_board.h"
#include "crypto/hmac_sha256.h"

namespace {

// The authenticator: reads an 8-byte challenge from the console, MACs it under the
// flash-resident secret, and prints the 32-byte response tag in hex.
const char* kAuthenticatorApp = R"(
_start:
    mv s0, a0
    # --- read the challenge: allow_rw(console, 1, ram+64, 8); command(read 8) ---
    li a0, 1
    li a1, 1
    addi a2, s0, 64
    li a3, 8
    li a4, 3
    ecall
    li a0, 1
    li a1, 2
    li a2, 8
    li a3, 0
    li a4, 2
    ecall
    li a0, 2
    li a1, 1
    li a2, 2
    li a4, 0
    ecall                  # wait for read-complete
    # --- HMAC: key straight from flash via read-only allow (§3.3.3) ---
    li a0, 0x40003
    li a1, 0
    la a2, secret
    li a3, 32
    li a4, 4
    ecall
    # data = the challenge we just received (read-only allow of our own RAM)
    li a0, 0x40003
    li a1, 1
    addi a2, s0, 64
    li a3, 8
    li a4, 4
    ecall
    # digest out
    li a0, 0x40003
    li a1, 2
    addi a2, s0, 128
    li a3, 32
    li a4, 3
    ecall
    # run + wait
    li a0, 0x40003
    li a1, 1
    li a2, 8
    li a3, 0
    li a4, 2
    ecall
    li a0, 2
    li a1, 0x40003
    li a2, 0
    li a4, 0
    ecall
    # --- print the 32-byte tag as 64 hex chars into ram+192 ---
    li t0, 0               # index
hexloop:
    addi t1, s0, 128
    add t1, t1, t0
    lbu t2, 0(t1)
    srli t3, t2, 4
    call nibble_hi
    andi t3, t2, 15
    call nibble_lo
    addi t0, t0, 1
    li t1, 32
    blt t0, t1, hexloop
    # newline + print
    li t1, '\n'
    addi t2, s0, 192
    li t3, 64
    add t2, t2, t3
    sb t1, 0(t2)
    addi a0, s0, 192
    li a1, 65
    call console_print
    li a0, 0
    call tock_exit_terminate

# helpers: append hex digit of t3 at ram+192 + 2*t0 (+1 for lo)
nibble_hi:
    addi t4, s0, 192
    slli t5, t0, 1
    add t4, t4, t5
    j nibble_emit
nibble_lo:
    addi t4, s0, 192
    slli t5, t0, 1
    add t4, t4, t5
    addi t4, t4, 1
nibble_emit:
    li t5, 10
    blt t3, t5, nibble_digit
    addi t6, t3, 87        # 'a' - 10
    sb t6, 0(t4)
    jr ra
nibble_digit:
    addi t6, t3, 48
    sb t6, 0(t4)
    jr ra

.align 4
secret:
    .byte 0xde, 0xad, 0xbe, 0xef, 0x00, 0x11, 0x22, 0x33
    .byte 0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xaa, 0xbb
    .byte 0xcc, 0xdd, 0xee, 0xff, 0x01, 0x23, 0x45, 0x67
    .byte 0x89, 0xab, 0xcd, 0xef, 0xfe, 0xdc, 0xba, 0x98
)";

}  // namespace

int main() {
  tock::BoardConfig config;
  config.kernel.loader = tock::LoaderMode::kAsynchronous;  // verified boot (§3.4)
  tock::SimBoard board(config);

  tock::AppSpec authenticator;
  authenticator.name = "authent";
  authenticator.source = kAuthenticatorApp;
  authenticator.sign = true;

  tock::AppSpec malware;
  malware.name = "malware";
  malware.source = "_start:\nspin:\n    j spin\n";
  malware.sign = true;
  malware.corrupt_signature = true;  // supply-chain tamper

  if (board.installer().Install(authenticator) == 0 ||
      board.installer().Install(malware) == 0) {
    std::fprintf(stderr, "install failed: %s\n", board.installer().error().c_str());
    return 1;
  }

  int loaded = board.Boot();
  std::printf("verified boot: %d app(s) accepted, %d rejected\n", loaded,
              board.loader().rejected_count());
  for (const auto& record : board.loader().records()) {
    std::printf("  %-8s %s\n", record.name.c_str(),
                record.created ? "signature OK, running"
                               : (record.reject_reason ? record.reject_reason : "?"));
  }

  // Let the authenticator come up and park on the console read.
  board.Run(1'000'000);

  const uint8_t challenge[8] = {0x31, 0x41, 0x59, 0x26, 0x53, 0x58, 0x97, 0x93};
  std::printf("\nhost -> token: challenge ");
  for (uint8_t b : challenge) {
    std::printf("%02x", b);
  }
  std::printf("\n");
  board.uart_hw().InjectRx(std::string(reinterpret_cast<const char*>(challenge), 8));

  board.Run(50'000'000);
  std::printf("token -> host: response  %s", board.uart_hw().output().c_str());

  // Out-of-band verification with the same secret.
  const uint8_t secret[32] = {0xde, 0xad, 0xbe, 0xef, 0x00, 0x11, 0x22, 0x33, 0x44, 0x55, 0x66,
                              0x77, 0x88, 0x99, 0xaa, 0xbb, 0xcc, 0xdd, 0xee, 0xff, 0x01, 0x23,
                              0x45, 0x67, 0x89, 0xab, 0xcd, 0xef, 0xfe, 0xdc, 0xba, 0x98};
  auto expected = tock::HmacSha256::Compute(secret, sizeof(secret), challenge,
                                            sizeof(challenge));
  char expected_hex[65];
  for (int i = 0; i < 32; ++i) {
    std::snprintf(expected_hex + 2 * i, 3, "%02x", expected[i]);
  }
  bool ok = board.uart_hw().output().find(expected_hex) != std::string::npos;
  std::printf("host verification:       %s\n", ok ? "MATCH — token authenticated"
                                                  : "MISMATCH — authentication failed");
  return ok ? 0 : 1;
}
