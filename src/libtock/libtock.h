// ERA: 2
// libtock: the userspace runtime for simulated applications.
//
// Applications are RV32IM assembly (see src/vm/assembler.h for the dialect). This
// library provides:
//   * LibTockRuntimeAsm(): syscall veneers (`tock_command`, `tock_subscribe`, ...)
//     plus synchronous convenience wrappers built from the asynchronous ABI — the
//     "half a dozen system calls behind one synchronous call" of §3.2;
//   * AppInstaller: assembles app sources, wraps them in TBF images (optionally
//     HMAC-signed with the device key) and writes them into the app flash region,
//     playing the role of `tockloader`/the factory flashing step.
#ifndef TOCK_LIBTOCK_LIBTOCK_H_
#define TOCK_LIBTOCK_LIBTOCK_H_

#include <cstdint>
#include <string>
#include <vector>

#include "hw/mcu.h"
#include "kernel/tbf.h"
#include "vm/assembler.h"

namespace tock {

// Assembly text for the runtime veneers. Appended after application code by the
// AppInstaller (apps `call` into it by symbol). Provided veneers:
//
//   tock_command         a0=driver a1=cmd a2=arg1 a3=arg2   -> a0..a3 = return
//   tock_subscribe       a0=driver a1=sub a2=fn a3=userdata -> a0..a3
//   tock_allow_rw        a0=driver a1=num a2=addr a3=len    -> a0..a3
//   tock_allow_ro        a0=driver a1=num a2=addr a3=len    -> a0..a3
//   tock_memop           a0=op a1=arg                       -> a0..a1
//   tock_yield_nowait    -> a0 = 1 if an upcall ran
//   tock_yield_wait      (blocks until an upcall runs)
//   tock_yield_waitfor   a0=driver a1=sub -> a1..a3 = upcall args
//   tock_exit_terminate  a0=completion code (no return)
//   tock_exit_restart    (no return)
//   tock_blocking_command a0=driver a1=cmd a2=arg a3=sub -> a1..a3 = upcall args
//
// Synchronous wrappers (each a full async sequence, §3.2):
//   console_print        a0=addr a1=len -> a0 = bytes written
//   sleep_ticks          a0=dt (alarm-driver sleep)
//   temp_read_sync       -> a0 = centi-celsius
std::string LibTockRuntimeAsm();

struct AppSpec {
  std::string name;
  std::string source;         // application assembly (defines `_start`)
  uint32_t min_ram = 4096;    // initial app-accessible RAM request
  bool sign = false;          // append an HMAC-SHA256 signature
  bool enabled = true;
  bool include_runtime = true;  // append LibTockRuntimeAsm() after the source
  bool corrupt_signature = false;  // test hook: flip a bit in the signature
};

// Assembles `spec` into a (optionally signed) TBF image laid out for `flash_addr`.
// TBF images are position-dependent — code is assembled against
// flash_addr + TbfHeader::kHeaderSize — so an image built here runs only when
// placed at exactly `flash_addr`. Returns an empty vector on failure and sets
// *error. This is the build step the OTA gateway uses to produce an image for the
// subscribers' shared staging address; AppInstaller::Install composes it with the
// flash-programming step.
std::vector<uint8_t> BuildAppImage(const AppSpec& spec, uint32_t flash_addr,
                                   const uint8_t device_key[32], std::string* error);

// Installs applications back-to-back into the app flash region of an MCU before (or
// after, for dynamic-loading experiments) boot.
class AppInstaller {
 public:
  AppInstaller(Mcu* mcu, uint32_t app_flash_base, uint32_t app_flash_end)
      : mcu_(mcu), next_addr_(app_flash_base), end_(app_flash_end) {}

  void SetDeviceKey(const uint8_t key[32]);

  // Assembles and writes one app. Returns the flash address of its TBF header, or 0
  // on failure (see error()).
  uint32_t Install(const AppSpec& spec);

  const std::string& error() const { return error_; }
  uint32_t next_addr() const { return next_addr_; }
  // Repositions the install cursor past app images that reached flash without
  // going through Install — e.g. a fleet-shared base image adopted via
  // MemoryBus::AdoptFlashBase, where every page stays copy-on-write-shared
  // instead of being programmed per board.
  void set_next_addr(uint32_t addr) { next_addr_ = addr; }

 private:
  Mcu* mcu_;
  uint32_t next_addr_;
  uint32_t end_;
  uint8_t device_key_[32] = {};
  std::string error_;
};

}  // namespace tock

#endif  // TOCK_LIBTOCK_LIBTOCK_H_
