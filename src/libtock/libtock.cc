// ERA: 2
#include "libtock/libtock.h"

#include <cstring>

namespace tock {

std::string LibTockRuntimeAsm() {
  // The kernel preserves every register except a0-a3 across a system call, so the
  // veneers only need to marshal arguments. Yield variants and syscall class
  // numbers follow TRD104 (see kernel/syscall.h).
  return R"(
# ---- libtock runtime veneers ----
tock_command:
    li a4, 2
    ecall
    ret
tock_subscribe:
    li a4, 1
    ecall
    ret
tock_allow_rw:
    li a4, 3
    ecall
    ret
tock_allow_ro:
    li a4, 4
    ecall
    ret
tock_memop:
    li a4, 5
    ecall
    ret
tock_yield_nowait:
    li a0, 0
    li a4, 0
    ecall
    ret
tock_yield_wait:
    li a0, 1
    li a4, 0
    ecall
    ret
tock_yield_waitfor:
    mv a2, a1
    mv a1, a0
    li a0, 2
    li a4, 0
    ecall
    ret
tock_exit_terminate:
    mv a1, a0
    li a0, 0
    li a4, 6
    ecall
tock_exit_restart:
    li a0, 1
    li a4, 6
    ecall
tock_blocking_command:
    li a4, 7
    ecall
    ret

# ---- synchronous wrappers over the asynchronous ABI (§3.2) ----

# console_print(a0 = buffer address, a1 = length) -> a0 = bytes written.
# allow-ro + command + yield-wait-for: three traps standing in for what a blocking
# write would be on a synchronous kernel.
console_print:
    mv t0, a0
    mv t1, a1
    # allow_ro(console=1, slot 1, buf, len)
    li a0, 1
    li a1, 1
    mv a2, t0
    mv a3, t1
    li a4, 4
    ecall
    # command(1, write=1, len, 0)
    li a0, 1
    li a1, 1
    mv a2, t1
    li a3, 0
    li a4, 2
    ecall
    # yield-wait-for(console=1, sub 1) -> a1 = bytes written
    li a0, 2
    li a1, 1
    li a2, 1
    li a4, 0
    ecall
    mv a0, a1
    ret

# sleep_ticks(a0 = dt): arms the alarm driver and waits for its upcall.
sleep_ticks:
    mv t0, a0
    # command(alarm=0, set-relative=5, dt, 0)
    li a0, 0
    li a1, 5
    mv a2, t0
    li a3, 0
    li a4, 2
    ecall
    # yield-wait-for(alarm=0, sub 0)
    li a0, 2
    li a1, 0
    li a2, 0
    li a4, 0
    ecall
    ret

# temp_read_sync() -> a0 = centi-degrees Celsius.
temp_read_sync:
    # command(temp=0x60000, sample=1, 0, 0)
    li a0, 0x60000
    li a1, 1
    li a2, 0
    li a3, 0
    li a4, 2
    ecall
    # yield-wait-for(temp, sub 0) -> a1 = value
    li a0, 2
    li a1, 0x60000
    li a2, 0
    li a4, 0
    ecall
    mv a0, a1
    ret
)";
}

void AppInstaller::SetDeviceKey(const uint8_t key[32]) {
  std::memcpy(device_key_, key, sizeof(device_key_));
}

std::vector<uint8_t> BuildAppImage(const AppSpec& spec, uint32_t flash_addr,
                                   const uint8_t device_key[32], std::string* error) {
  std::string source = spec.source;
  if (spec.include_runtime) {
    source += "\n";
    source += LibTockRuntimeAsm();
  }

  uint32_t code_base = flash_addr + TbfHeader::kHeaderSize;
  Assembler assembler;
  AssembledImage assembled;
  if (!assembler.Assemble(source, code_base, &assembled)) {
    *error = "assembly failed for '" + spec.name + "': " + assembler.error();
    return {};
  }
  auto start = assembled.symbols.find("_start");
  if (start == assembled.symbols.end()) {
    *error = "app '" + spec.name + "' does not define _start";
    return {};
  }

  std::vector<uint8_t> image =
      BuildTbfImage(spec.name, assembled.bytes, start->second - code_base, spec.min_ram,
                    spec.sign, device_key);

  if (!spec.enabled || spec.corrupt_signature) {
    TbfHeader header;
    std::memcpy(&header, image.data(), sizeof(header));
    if (!spec.enabled) {
      header.flags &= ~TbfHeader::kFlagEnabled;
      header.checksum = header.ComputeChecksum();
      std::memcpy(image.data(), &header, sizeof(header));
    }
    if (spec.corrupt_signature && header.IsSigned()) {
      image[TbfHeader::kHeaderSize + header.binary_size] ^= 0x01;
    }
  }
  return image;
}

uint32_t AppInstaller::Install(const AppSpec& spec) {
  error_.clear();
  std::vector<uint8_t> image = BuildAppImage(spec, next_addr_, device_key_, &error_);
  if (image.empty()) {
    return 0;
  }

  if (next_addr_ + image.size() > end_) {
    error_ = "app flash region full";
    return 0;
  }
  if (!mcu_->bus().ProgramFlash(next_addr_, image.data(), static_cast<uint32_t>(image.size()))) {
    error_ = "flash programming failed";
    return 0;
  }
  uint32_t installed_at = next_addr_;
  next_addr_ += static_cast<uint32_t>(image.size());
  return installed_at;
}

}  // namespace tock
