// ERA: 6
#include "kernel/fault_injector.h"

#include "kernel/tbf.h"

namespace tock {

namespace {
bool FlipFlashBit(Mcu* mcu, uint32_t addr, uint32_t bit) {
  uint8_t byte;
  if (!mcu->bus().ReadBlock(addr + bit / 8, &byte, 1)) {
    return false;
  }
  byte ^= static_cast<uint8_t>(1u << (bit % 8));
  return mcu->bus().ProgramFlash(addr + bit / 8, &byte, 1);
}
}  // namespace

bool FaultInjector::FlipHeaderBit(Mcu* mcu, uint32_t header_addr, uint32_t bit_index) {
  if (bit_index >= TbfHeader::kHeaderSize * 8) {
    return false;
  }
  return FlipFlashBit(mcu, header_addr, bit_index);
}

bool FaultInjector::FlipSignatureBit(Mcu* mcu, uint32_t header_addr, uint32_t bit_index) {
  if (bit_index >= TbfHeader::kSignatureSize * 8) {
    return false;
  }
  TbfHeader header;
  if (!mcu->bus().ReadBlock(header_addr, reinterpret_cast<uint8_t*>(&header),
                            TbfHeader::kHeaderSize) ||
      header.magic != TbfHeader::kMagic || !header.IsSigned()) {
    return false;
  }
  uint32_t sig_addr = header_addr + TbfHeader::kHeaderSize + header.binary_size;
  return FlipFlashBit(mcu, sig_addr, bit_index);
}

void FaultInjector::StartIrqStorm(Mcu* mcu, unsigned line, uint64_t period_cycles,
                                  uint32_t count) {
  if (count == 0) {
    return;
  }
  if (period_cycles == 0) {
    period_cycles = 1;
  }
  mcu->clock().ScheduleAfter(period_cycles, [this, mcu, line, period_cycles, count] {
    mcu->irq().Raise(line);
    ++irqs_injected_;
    StartIrqStorm(mcu, line, period_cycles, count - 1);
  });
}

}  // namespace tock
