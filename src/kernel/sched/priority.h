// ERA: 2
// Strict priority: the schedulable process with the lowest priority number runs
// (0 = highest). Equal-priority processes rotate round-robin via a monotonic
// dispatch stamp — the least-recently-dispatched one wins, slot order breaking
// exact ties — so peers at one level share the CPU instead of the lowest slot
// monopolizing it. Priorities live on the PCB (Process::priority), seeded from
// SchedulerConfig::default_priority and overridable through the capability-gated
// Kernel::SetPriority. Strictness is real: a high-priority hog starves everything
// below it, by design — boards that want starvation-freedom pick MLFQ.
#ifndef TOCK_KERNEL_SCHED_PRIORITY_H_
#define TOCK_KERNEL_SCHED_PRIORITY_H_

#include "kernel/scheduler.h"

namespace tock {

class PriorityScheduler : public Scheduler {
 public:
  using Scheduler::Scheduler;

  SchedulerPolicy policy() const override { return SchedulerPolicy::kPriority; }

  SchedulingDecision Next(uint64_t now) override {
    (void)now;
    Process* best = nullptr;
    for (Process& p : processes_) {
      if (!IsSchedulable(p)) {
        continue;
      }
      if (best == nullptr || p.priority < best->priority ||
          (p.priority == best->priority && p.sched_stamp < best->sched_stamp)) {
        best = &p;
      }
    }
    if (best == nullptr) {
      return SchedulingDecision{};
    }
    best->sched_stamp = ++stamp_;
    return SchedulingDecision{best, config_->timeslice_cycles};
  }

 private:
  uint64_t stamp_ = 0;  // monotonic dispatch counter for round-robin among equals
};

}  // namespace tock

#endif  // TOCK_KERNEL_SCHED_PRIORITY_H_
