// ERA: 2
// Cooperative: round-robin rotation with preemption removed. The decision carries
// no timeslice, so the kernel leaves the SysTick disarmed and a process runs until
// it blocks, exits, or other hardware interrupts fire. This is upstream Tock's
// cooperative scheduler: cheapest possible dispatch, and the right choice for
// boards whose apps are trusted to yield (§3.2's run-to-completion agents) — a hog
// WILL starve its neighbors, which tests/extension_test.cc demonstrates on purpose.
#ifndef TOCK_KERNEL_SCHED_COOPERATIVE_H_
#define TOCK_KERNEL_SCHED_COOPERATIVE_H_

#include "kernel/scheduler.h"

namespace tock {

class CooperativeScheduler : public Scheduler {
 public:
  using Scheduler::Scheduler;

  SchedulerPolicy policy() const override { return SchedulerPolicy::kCooperative; }

  SchedulingDecision Next(uint64_t now) override {
    (void)now;
    const size_t n = processes_.size();
    for (size_t i = 0; i < n; ++i) {
      Process& p = processes_[(cursor_ + i) % n];
      if (IsSchedulable(p)) {
        cursor_ = (cursor_ + i + 1) % n;
        return SchedulingDecision{&p, std::nullopt};
      }
    }
    return SchedulingDecision{};
  }

 private:
  size_t cursor_ = 0;
};

}  // namespace tock

#endif  // TOCK_KERNEL_SCHED_COOPERATIVE_H_
