// ERA: 2
// Multi-level feedback queue, three levels. A process starts at level 0 with the
// base quantum; burning a whole quantum (kTimesliceExpired) demotes it one level,
// where the quantum is longer (mlfq_quantum_multiplier) but the level is scheduled
// only when no higher level has work. Blocking before the quantum expires keeps
// the process at its level, so interactive processes stay responsive while
// CPU-bound ones sink. Every mlfq_boost_period_cycles of MCU time all processes
// are boosted back to level 0 — the classic anti-starvation move, driven by the
// deterministic simulated clock, never wall time. Within a level, the monotonic
// dispatch stamp rotates peers round-robin exactly as in PriorityScheduler.
#ifndef TOCK_KERNEL_SCHED_MLFQ_H_
#define TOCK_KERNEL_SCHED_MLFQ_H_

#include "kernel/scheduler.h"

namespace tock {

class MlfqScheduler : public Scheduler {
 public:
  static constexpr size_t kLevels = SchedulerConfig::kMlfqLevels;

  using Scheduler::Scheduler;

  SchedulerPolicy policy() const override { return SchedulerPolicy::kMlfq; }

  SchedulingDecision Next(uint64_t now) override {
    MaybeBoost(now);

    Process* best = nullptr;
    for (Process& p : processes_) {
      if (!IsSchedulable(p)) {
        continue;
      }
      if (best == nullptr || p.queue_level < best->queue_level ||
          (p.queue_level == best->queue_level && p.sched_stamp < best->sched_stamp)) {
        best = &p;
      }
    }
    if (best == nullptr) {
      return SchedulingDecision{};
    }
    best->sched_stamp = ++stamp_;
    uint32_t level = best->queue_level < kLevels ? best->queue_level
                                                 : static_cast<uint32_t>(kLevels - 1);
    return SchedulingDecision{
        best, config_->timeslice_cycles * config_->scheduler.mlfq_quantum_multiplier[level]};
  }

  void ExecutionComplete(Process& p, StoppedReason reason, uint64_t now) override {
    (void)now;
    if (reason == StoppedReason::kTimesliceExpired &&
        p.queue_level + 1 < static_cast<uint32_t>(kLevels)) {
      ++p.queue_level;
    }
  }

  // MLFQ is the one policy whose Next() mutates state even when idle (the boost
  // clock anchors and advances). The idle fast-forward path must replay exactly
  // that bookkeeping to stay bit-identical with stepped idling.
  void ObserveIdle(uint64_t now) override { MaybeBoost(now); }

  // How many priority boosts have fired (fault-soak asserts the anti-starvation
  // machinery actually ran).
  uint64_t boosts() const { return boosts_; }

 private:
  // The time-anchored prelude of every scheduling decision: anchor the boost
  // period at the first call so boot time does not count as an elapsed period,
  // then boost when a full period has passed.
  void MaybeBoost(uint64_t now) {
    if (!anchored_) {
      anchored_ = true;
      last_boost_ = now;
    }
    const uint64_t period = config_->scheduler.mlfq_boost_period_cycles;
    if (period > 0 && now - last_boost_ >= period) {
      Boost();
      last_boost_ = now;
    }
  }

  void Boost() {
    for (Process& p : processes_) {
      p.queue_level = 0;
      p.sched_stamp = 0;  // a boost also resets the rotation, deterministically
    }
    stamp_ = 0;
    ++boosts_;
  }

  bool anchored_ = false;
  uint64_t last_boost_ = 0;
  uint64_t stamp_ = 0;
  uint64_t boosts_ = 0;
};

}  // namespace tock

#endif  // TOCK_KERNEL_SCHED_MLFQ_H_
