// ERA: 2
#include "kernel/scheduler.h"

#include <cstring>

namespace tock {

const char* SchedulerPolicyName(SchedulerPolicy policy) {
  switch (policy) {
    case SchedulerPolicy::kRoundRobin:
      return "round-robin";
    case SchedulerPolicy::kCooperative:
      return "cooperative";
    case SchedulerPolicy::kPriority:
      return "priority";
    case SchedulerPolicy::kMlfq:
      return "mlfq";
  }
  return "?";
}

const char* StoppedReasonName(StoppedReason reason) {
  switch (reason) {
    case StoppedReason::kBlocked:
      return "blocked";
    case StoppedReason::kExited:
      return "exited";
    case StoppedReason::kTimesliceExpired:
      return "timeslice-expired";
    case StoppedReason::kPreempted:
      return "preempted";
    case StoppedReason::kDeadline:
      return "deadline";
  }
  return "?";
}

bool SchedulerPolicyFromName(const char* name, SchedulerPolicy* out) {
  if (name == nullptr || out == nullptr) {
    return false;
  }
  for (SchedulerPolicy p : {SchedulerPolicy::kRoundRobin, SchedulerPolicy::kCooperative,
                            SchedulerPolicy::kPriority, SchedulerPolicy::kMlfq}) {
    if (std::strcmp(name, SchedulerPolicyName(p)) == 0) {
      *out = p;
      return true;
    }
  }
  return false;
}

}  // namespace tock
