// ERA: 2
// Round-robin: the seed policy, extracted verbatim. A cursor walks the process
// table; the first schedulable slot at-or-after the cursor runs for the fixed
// configured timeslice, and the cursor advances past it. The scan order, cursor
// arithmetic, and quantum are bit-for-bit the pre-refactor kernel loop — the
// golden traces in tests/golden/ are recorded under this policy and must keep
// passing unmodified.
#ifndef TOCK_KERNEL_SCHED_ROUND_ROBIN_H_
#define TOCK_KERNEL_SCHED_ROUND_ROBIN_H_

#include "kernel/scheduler.h"

namespace tock {

class RoundRobinScheduler : public Scheduler {
 public:
  using Scheduler::Scheduler;

  SchedulerPolicy policy() const override { return SchedulerPolicy::kRoundRobin; }

  SchedulingDecision Next(uint64_t now) override {
    (void)now;
    const size_t n = processes_.size();
    for (size_t i = 0; i < n; ++i) {
      Process& p = processes_[(cursor_ + i) % n];
      if (IsSchedulable(p)) {
        cursor_ = (cursor_ + i + 1) % n;
        return SchedulingDecision{&p, config_->timeslice_cycles};
      }
    }
    return SchedulingDecision{};
  }

 private:
  size_t cursor_ = 0;
};

}  // namespace tock

#endif  // TOCK_KERNEL_SCHED_ROUND_ROBIN_H_
