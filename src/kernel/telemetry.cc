// ERA: 8
#include "kernel/telemetry.h"

#include <cstring>

#include "kernel/kernel.h"
#include "kernel/process.h"

namespace tock {

namespace {

// Snapshot payload word offsets (after the seqlock word at index 0).
constexpr size_t kSnapCycleWord = 1;
constexpr size_t kSnapStatsWord = 2;
constexpr size_t kSnapNamesWord = kSnapStatsWord + kTelemetryStatWords;
constexpr size_t kSnapProcsWord =
    kSnapNamesWord + kTelemetryProcRows * kTelemetryProcNameWords;
static_assert(kSnapProcsWord + kTelemetryProcRows * kTelemetryProcStatWords ==
                  TelemetryLayout::SnapshotWords(),
              "snapshot offsets must cover exactly SnapshotWords()");

void PackName(const std::string& name, std::atomic<uint64_t>* words) {
  uint64_t packed[kTelemetryProcNameWords] = {};
  const size_t n = name.size() < kTelemetryProcNameWords * 8
                       ? name.size()
                       : kTelemetryProcNameWords * 8;
  for (size_t c = 0; c < n; ++c) {
    packed[c / 8] |= static_cast<uint64_t>(static_cast<uint8_t>(name[c]))
                     << (8 * (c % 8));
  }
  for (size_t w = 0; w < kTelemetryProcNameWords; ++w) {
    words[w].store(packed[w], std::memory_order_relaxed);
  }
}

std::string UnpackName(const uint64_t* words) {
  std::string name;
  for (size_t w = 0; w < kTelemetryProcNameWords; ++w) {
    for (size_t b = 0; b < 8; ++b) {
      const char c = static_cast<char>(words[w] >> (8 * b));
      if (c == '\0') {
        return name;
      }
      name += c;
    }
  }
  return name;
}

}  // namespace

// ---- BoardTelemetry -------------------------------------------------------

void BoardTelemetry::Bind(void* block, const TelemetryLayout& layout,
                          const TelemetryConfig& config) {
  block_ = static_cast<uint8_t*>(block);
  snap_ = reinterpret_cast<std::atomic<uint64_t>*>(block_);
  writer_.Init(block_ + TelemetryLayout::SnapshotBytes(), layout.ring_capacity,
               kTelemetryRecordWords);
  limiter_.Configure(RateLimiter::Config{config.storm_burst,
                                         config.storm_tokens_per_interval,
                                         config.storm_interval_cycles});
  snapshot_period_ = config.snapshot_period_cycles;
  next_snapshot_cycle_ = 0;
}

void BoardTelemetry::OnTraceEvent(const TraceEvent& event, KernelStats& stats) {
  if (!bound()) {
    return;
  }
  if (limiter_.Admit(event.cycle)) {
    uint64_t words[kTelemetryRecordWords];
    EncodeTelemetryRecord(event, words);
    writer_.Push(words);
    ++stats.telemetry_events_emitted;
    // Writer-side, exact, and independent of readers: records the ring can no
    // longer hand out. A reader reconciles: received + gaps == emitted.
    stats.telemetry_events_dropped = writer_.evicted();
  } else {
    ++stats.telemetry_suppressed;
  }
  if (snapshot_period_ != 0 && event.cycle >= next_snapshot_cycle_) {
    PublishSnapshot(event.cycle);
  }
}

void BoardTelemetry::PublishSnapshot(uint64_t cycle) {
  if (!bound()) {
    return;
  }
  // Seqlock write: odd while the payload is inconsistent.
  const uint64_t seq = snap_[0].load(std::memory_order_relaxed);
  snap_[0].store(seq + 1, std::memory_order_relaxed);
  std::atomic_thread_fence(std::memory_order_release);
  WriteSnapshotPayload(cycle);
  snap_[0].store(seq + 2, std::memory_order_release);
  if (snapshot_period_ != 0) {
    next_snapshot_cycle_ = cycle + snapshot_period_;
  }
}

void BoardTelemetry::WriteSnapshotPayload(uint64_t cycle) {
  snap_[kSnapCycleWord].store(cycle, std::memory_order_relaxed);
  for (size_t i = 0; i < kTelemetryStatWords; ++i) {
    const uint64_t value =
        kernel_ != nullptr
            ? StatValue(kernel_->stats(), static_cast<StatId>(i))
            : 0;
    snap_[kSnapStatsWord + i].store(value, std::memory_order_relaxed);
  }
  for (size_t row = 0; row < kTelemetryProcRows; ++row) {
    const Process* p = kernel_ != nullptr ? kernel_->process(row) : nullptr;
    PackName(p != nullptr ? p->name : std::string(),
             snap_ + kSnapNamesWord + row * kTelemetryProcNameWords);
    ProcStats ps;
    if (kernel_ != nullptr) {
      ps = kernel_->GetProcStats(row);
    }
    std::atomic<uint64_t>* out =
        snap_ + kSnapProcsWord + row * kTelemetryProcStatWords;
    for (size_t f = 0; f < kTelemetryProcStatWords; ++f) {
      out[f].store(ProcStatValue(ps, static_cast<ProcStatField>(f)),
                   std::memory_order_relaxed);
    }
  }
}

// ---- TelemetryRegion ------------------------------------------------------

bool TelemetryRegion::Create(const Options& options,
                             const TelemetryConfig& config,
                             std::string* error) {
  if (options.board_count == 0) {
    if (error != nullptr) *error = "board_count must be >= 1";
    return false;
  }
  if (options.ring_capacity == 0 ||
      (options.ring_capacity & (options.ring_capacity - 1)) != 0) {
    if (error != nullptr) *error = "ring_capacity must be a power of two";
    return false;
  }
  layout_ = TelemetryLayout{options.board_count, options.ring_capacity};
  if (!region_.CreateOrReplace(options.name, layout_.TotalBytes(), error)) {
    return false;
  }
  auto* header = reinterpret_cast<TelemetryShmHeader*>(region_.base());
  header->version.store(kTelemetryLayoutVersion, std::memory_order_relaxed);
  header->board_count.store(options.board_count, std::memory_order_relaxed);
  header->ring_capacity.store(options.ring_capacity, std::memory_order_relaxed);
  header->record_words.store(kTelemetryRecordWords, std::memory_order_relaxed);
  header->stat_words.store(kTelemetryStatWords, std::memory_order_relaxed);
  header->proc_rows.store(kTelemetryProcRows, std::memory_order_relaxed);
  header->proc_name_words.store(kTelemetryProcNameWords,
                                std::memory_order_relaxed);
  header->proc_stat_words.store(kTelemetryProcStatWords,
                                std::memory_order_relaxed);
  header->block_stride.store(layout_.BlockStride(), std::memory_order_relaxed);
  header->block0_offset.store(TelemetryLayout::Block0Offset(),
                              std::memory_order_relaxed);
  uint8_t* base = static_cast<uint8_t*>(region_.base());
  boards_.clear();
  for (uint64_t i = 0; i < options.board_count; ++i) {
    auto board = std::make_unique<BoardTelemetry>();
    board->Bind(base + TelemetryLayout::Block0Offset() + i * layout_.BlockStride(),
                layout_, config);
    boards_.push_back(std::move(board));
  }
  header->boards_attached.store(options.board_count, std::memory_order_relaxed);
  // Magic last, released: a reader that sees it sees a fully formatted region.
  header->magic.store(kTelemetryMagic, std::memory_order_release);
  return true;
}

// ---- TelemetryTap ---------------------------------------------------------

bool TelemetryTap::Open(const std::string& name, std::string* error) {
  if (!region_.OpenReadOnly(name, error)) {
    return false;
  }
  return Bind(region_.base(), region_.size(), error);
}

bool TelemetryTap::Attach(const void* base, size_t bytes, std::string* error) {
  return Bind(base, bytes, error);
}

bool TelemetryTap::Bind(const void* base, size_t bytes, std::string* error) {
  readers_.clear();
  header_ = nullptr;
  if (base == nullptr || bytes < sizeof(TelemetryShmHeader)) {
    if (error != nullptr) *error = "region too small for header";
    return false;
  }
  const auto* header = reinterpret_cast<const TelemetryShmHeader*>(base);
  if (header->magic.load(std::memory_order_acquire) != kTelemetryMagic) {
    if (error != nullptr) *error = "bad magic (not a telemetry region, or still initializing)";
    return false;
  }
  if (header->version.load(std::memory_order_relaxed) != kTelemetryLayoutVersion) {
    if (error != nullptr) *error = "layout version mismatch";
    return false;
  }
  TelemetryLayout layout{header->board_count.load(std::memory_order_relaxed),
                         header->ring_capacity.load(std::memory_order_relaxed)};
  const bool geometry_ok =
      layout.board_count >= 1 &&
      layout.ring_capacity >= 1 &&
      (layout.ring_capacity & (layout.ring_capacity - 1)) == 0 &&
      header->record_words.load(std::memory_order_relaxed) == kTelemetryRecordWords &&
      header->stat_words.load(std::memory_order_relaxed) == kTelemetryStatWords &&
      header->proc_rows.load(std::memory_order_relaxed) == kTelemetryProcRows &&
      header->proc_name_words.load(std::memory_order_relaxed) == kTelemetryProcNameWords &&
      header->proc_stat_words.load(std::memory_order_relaxed) == kTelemetryProcStatWords &&
      header->block_stride.load(std::memory_order_relaxed) == layout.BlockStride() &&
      header->block0_offset.load(std::memory_order_relaxed) ==
          TelemetryLayout::Block0Offset() &&
      bytes >= layout.TotalBytes();
  if (!geometry_ok) {
    if (error != nullptr) *error = "geometry mismatch (different build or truncated region)";
    return false;
  }
  header_ = header;
  base_ = static_cast<const uint8_t*>(base);
  layout_ = layout;
  readers_.resize(layout.board_count);
  for (uint64_t i = 0; i < layout.board_count; ++i) {
    const uint8_t* ring = base_ + TelemetryLayout::Block0Offset() +
                          i * layout_.BlockStride() +
                          TelemetryLayout::SnapshotBytes();
    if (!readers_[i].Bind(ring, layout_.RingBytes())) {
      if (error != nullptr) *error = "ring geometry mismatch";
      readers_.clear();
      header_ = nullptr;
      return false;
    }
  }
  return true;
}

uint64_t TelemetryTap::boards_attached() const {
  return header_ != nullptr
             ? header_->boards_attached.load(std::memory_order_relaxed)
             : 0;
}

bool TelemetryTap::ReadSnapshot(size_t i, TelemetrySnapshot* out) const {
  if (header_ == nullptr || i >= readers_.size() || out == nullptr) {
    return false;
  }
  const auto* snap = reinterpret_cast<const std::atomic<uint64_t>*>(
      base_ + TelemetryLayout::Block0Offset() + i * layout_.BlockStride());
  uint64_t payload[TelemetryLayout::SnapshotWords()];
  for (int attempt = 0; attempt < kSnapshotRetryLimit; ++attempt) {
    const uint64_t s1 = snap[0].load(std::memory_order_acquire);
    if (s1 == 0) {
      *out = TelemetrySnapshot{};  // never published
      return true;
    }
    if ((s1 & 1) != 0) {
      continue;  // write in progress
    }
    for (size_t w = 1; w < TelemetryLayout::SnapshotWords(); ++w) {
      payload[w] = snap[w].load(std::memory_order_relaxed);
    }
    std::atomic_thread_fence(std::memory_order_acquire);
    if (snap[0].load(std::memory_order_relaxed) != s1) {
      continue;  // torn: overwritten while copying
    }
    out->seq = s1 / 2;
    out->cycle = payload[kSnapCycleWord];
    for (size_t j = 0; j < kTelemetryStatWords; ++j) {
      out->stats[j] = payload[kSnapStatsWord + j];
    }
    for (size_t row = 0; row < kTelemetryProcRows; ++row) {
      out->proc_names[row] =
          UnpackName(payload + kSnapNamesWord + row * kTelemetryProcNameWords);
      for (size_t f = 0; f < kTelemetryProcStatWords; ++f) {
        out->procs[row][f] = payload[kSnapProcsWord + row * kTelemetryProcStatWords + f];
      }
    }
    return true;
  }
  return false;
}

}  // namespace tock
