// ERA: 2
// Deterministic kernel trace & counters (observability for the paper's quantitative
// claims). Every number the experiments report — isolation cost as syscall/context-
// switch counts (§2.2), sleep residency (§2.5, §3.2), allow/subscribe and upcall
// scrub activity (§3.3) — is a count of kernel events, so the kernel counts them
// itself at its dispatch points instead of every bench re-deriving them.
//
// Two layers, both heapless:
//   * KernelStats: monotonic counters, one per event class. Always cheap (an
//     increment), read through Kernel::stats().
//   * an EventRing of cycle-stamped TraceEvents — the last N things the kernel did,
//     dumpable as text. Because the simulator is deterministic, two identical runs
//     produce byte-identical dumps; tests/trace_test.cc locks that in against a
//     golden file.
//
// The whole subsystem is compile-time-gated on KernelConfig::trace_enabled
// (-DTOCK_TRACE=OFF): with the gate off, record calls are empty inlines and the
// layer compiles away.
#ifndef TOCK_KERNEL_TRACE_H_
#define TOCK_KERNEL_TRACE_H_

#include <array>
#include <cstdint>
#include <string>

#include "kernel/config.h"
#include "kernel/cycle_accounting.h"
#include "kernel/syscall.h"
#include "util/event_ring.h"
#include "util/log2_hist.h"
#include "vm/cpu.h"

namespace tock {

// Monotonic kernel event counters. Plain aggregate: cheap to read wholesale, and a
// stable numbered view (StatId) backs the ProcessInfoDriver stats syscall.
struct KernelStats {
  // System calls, by class (TRD104 numbering).
  uint64_t syscalls_yield = 0;
  uint64_t syscalls_subscribe = 0;
  uint64_t syscalls_command = 0;
  uint64_t syscalls_rw_allow = 0;
  uint64_t syscalls_ro_allow = 0;
  uint64_t syscalls_memop = 0;
  uint64_t syscalls_exit = 0;
  uint64_t syscalls_blocking_command = 0;
  uint64_t syscalls_unknown = 0;  // trapped with an out-of-range class (NOSUPPORT)

  // Scheduler & hardware interface.
  uint64_t context_switches = 0;
  uint64_t mpu_reprograms = 0;
  uint64_t irq_dispatches = 0;
  uint64_t deferred_calls_run = 0;

  // Upcall machinery (§3.3): queued = accepted into a queue; delivered = handler
  // invoked or consumed as a direct return; scrubbed = removed by a subscription
  // swap or eviction before delivery; dropped = lost (queue full, or the
  // subscription was null at delivery time).
  uint64_t upcalls_queued = 0;
  uint64_t upcalls_delivered = 0;
  uint64_t upcalls_scrubbed = 0;
  uint64_t upcalls_dropped = 0;

  // Grant allocator (§2.4). allocs/bytes count first-time grant entries; frees count
  // reclamation at process death or restart, so `grant_bytes - grant_bytes_freed`
  // reconciles to the live usage summed over process control blocks instead of
  // growing monotonically across restarts (asserted by tests/fault_soak_test.cc).
  uint64_t grant_allocs = 0;
  uint64_t grant_bytes = 0;
  uint64_t grant_frees = 0;
  uint64_t grant_bytes_freed = 0;

  // Sleep residency (§2.5): cycles the kernel spent in SleepUntilInterrupt and how
  // many times it entered the sleep state. A kSleep trace event stores the slept
  // cycles in a 32-bit arg; sleeps too long to fit are counted here so consumers
  // (tools/trace_export.cc) know to reconstruct durations from sleep_cycles deltas.
  uint64_t sleep_cycles = 0;
  uint64_t sleep_entries = 0;
  uint64_t sleep_arg_saturations = 0;

  // Process lifecycle.
  uint64_t process_faults = 0;
  uint64_t process_restarts = 0;
  uint64_t process_exits = 0;

  // Live telemetry transport (kernel/telemetry.h): records offered to the
  // per-board shm ring (emitted), overwritten in the ring before any reader
  // could still reach them (dropped — writer-side, exact), and rejected by the
  // storm suppressor (suppressed). Transport bookkeeping, not kernel events:
  // excluded from DumpStats and the exporter sidecar so golden traces and
  // fleet fingerprints are bit-identical with telemetry on or off
  // (StatIsTelemetryTransport); read them via StatValue / the stats syscall.
  uint64_t telemetry_events_emitted = 0;
  uint64_t telemetry_events_dropped = 0;
  uint64_t telemetry_suppressed = 0;

  // Interpreter v2 engine counters (vm/decode.h superblocks): host-side engine
  // bookkeeping, not simulated kernel events — excluded from golden surfaces the
  // same way as the telemetry transport counters (StatIsHostOnly), since they
  // differ across engine legs that are simulated-state identical. vm_cache_bytes
  // is a gauge (current decode+block table heap bytes), maintained with +/-
  // deltas so Accumulate still sums meaningfully across a fleet.
  uint64_t vm_blocks_built = 0;
  uint64_t vm_blocks_invalidated = 0;
  uint64_t vm_block_chain_hits = 0;
  uint64_t vm_cache_bytes = 0;

  // Fleet scale-out counters (host-side, StatIsHostOnly like the vm_* group):
  // mem_resident_bytes is an absolute gauge of host memory committed to this
  // board's flash+RAM banks (hw/paged_mem.h private pages — differs across
  // paging on/off legs that are simulated-state identical); fleet_idle_skips
  // counts epochs a quiesced board fast-forwarded without entering MainLoop.
  uint64_t mem_resident_bytes = 0;
  uint64_t fleet_idle_skips = 0;

  uint64_t SyscallsTotal() const {
    return syscalls_yield + syscalls_subscribe + syscalls_command + syscalls_rw_allow +
           syscalls_ro_allow + syscalls_memop + syscalls_exit + syscalls_blocking_command +
           syscalls_unknown;
  }

  uint64_t& SyscallSlot(SyscallClass klass);

  // Adds every counter of `other` into this one — fleet-wide aggregation
  // (board/fleet.h) over per-board kernels.
  void Accumulate(const KernelStats& other);
};

// Stable numbering for the read-only stats syscall (ProcessInfoDriver command 5).
// Append-only: userspace bakes these numbers in.
enum class StatId : uint32_t {
  kSyscallsTotal = 0,
  kSyscallsYield = 1,
  kSyscallsSubscribe = 2,
  kSyscallsCommand = 3,
  kSyscallsRwAllow = 4,
  kSyscallsRoAllow = 5,
  kSyscallsMemop = 6,
  kSyscallsExit = 7,
  kSyscallsBlockingCommand = 8,
  kContextSwitches = 9,
  kMpuReprograms = 10,
  kIrqDispatches = 11,
  kDeferredCallsRun = 12,
  kUpcallsQueued = 13,
  kUpcallsDelivered = 14,
  kUpcallsScrubbed = 15,
  kUpcallsDropped = 16,
  kGrantAllocs = 17,
  kGrantBytes = 18,
  kSleepCycles = 19,
  kSleepEntries = 20,
  kProcessFaults = 21,
  kProcessRestarts = 22,
  kProcessExits = 23,
  kSyscallsUnknown = 24,
  kGrantFrees = 25,
  kGrantBytesFreed = 26,
  kSleepArgSaturations = 27,
  kTelemetryEventsEmitted = 28,
  kTelemetryEventsDropped = 29,
  kTelemetrySuppressed = 30,
  kVmBlocksBuilt = 31,
  kVmBlocksInvalidated = 32,
  kVmBlockChainHits = 33,
  kVmCacheBytes = 34,
  kMemResidentBytes = 35,
  kFleetIdleSkips = 36,
  kNumStats = 37,
};

// Returns the counter for `id`, or 0 for an out-of-range id.
uint64_t StatValue(const KernelStats& stats, StatId id);
const char* StatName(StatId id);

// True for the transport-bookkeeping counters (telemetry_*): they count host-
// side publishing work, not simulated kernel events, so the golden-locked text
// dump and the exporter's tockStats sidecar skip them — attaching a tap must
// not change a byte of any golden artifact. They remain readable through the
// stats syscall (append-only StatIds) and the fleet aggregate table.
bool StatIsTelemetryTransport(StatId id);

// True for every counter that measures host-side machinery rather than simulated
// kernel events: the telemetry transport counters plus the interpreter-v2 engine
// counters (vm_*, which vary across engine legs and presets that are simulated-
// state identical). This is the predicate the golden surfaces — DumpStats and the
// exporter's tockStats sidecar — actually use.
bool StatIsHostOnly(StatId id);

// One recorded kernel event. `pid` is the process slot the event concerns (0xFF =
// none/kernel); `arg` is event-specific (syscall class, IRQ line, grant size, ...).
enum class TraceEventKind : uint8_t {
  kSyscall,        // arg = SyscallClass
  kContextSwitch,  // arg = process slot switched to
  kMpuReprogram,   // arg = process slot mapped
  kIrqDispatch,    // arg = interrupt line
  kDeferredCall,   // arg = deferred-call handle
  kUpcallQueued,   // arg = driver number
  kUpcallDelivered,
  kUpcallScrubbed,  // arg = entries scrubbed
  kUpcallDropped,
  kGrantAlloc,  // arg = bytes allocated
  kSleep,       // arg = cycles slept (saturated to 32 bits)
  kProcessFault,  // arg = fault cause (FaultCauseArg encoding)
  kProcessRestart,
  kProcessExit,  // arg = completion code
  kGrantFree,    // arg = bytes reclaimed at process death/restart
};

const char* TraceEventKindName(TraceEventKind kind);

// Fault-cause payload for kProcessFault events: low byte holds the VmFault::Kind,
// the next byte holds the BusFaultKind when the fault came from the memory bus.
// Packed into 32 bits so the cause survives in the fixed-size TraceEvent arg.
uint32_t FaultCauseArg(const VmFault& fault);
// Human-readable name for a packed cause ("mpu-violation", "illegal-instruction", ...).
const char* FaultCauseName(uint32_t cause_arg);

struct TraceEvent {
  uint64_t cycle = 0;
  TraceEventKind kind = TraceEventKind::kSyscall;
  uint8_t pid = 0xFF;
  uint32_t arg = 0;
};

// Where trace events go when a board opts into live telemetry
// (kernel/telemetry.h implements this over a lossy shm ring). The sink is
// handed the kernel's own stats block so its transport counters
// (telemetry_events_*) accumulate alongside the kernel counters and roll up
// through KernelStats::Accumulate into FleetStats. Implementations must never
// block and must not touch simulated state — they observe, only.
class TelemetrySink {
 public:
  virtual ~TelemetrySink() = default;
  virtual void OnTraceEvent(const TraceEvent& event, KernelStats& stats) = 0;
};

// The kernel-owned recorder. The kernel calls the record methods from its dispatch
// points, passing the current cycle; everything is an increment plus a ring store.
class KernelTrace {
 public:
  static constexpr size_t kTraceDepth = 256;
  static constexpr uint8_t kNoPid = 0xFF;
  static constexpr bool kEnabled = KernelConfig::trace_enabled;
  static constexpr bool kTelemetryCompiled = KernelConfig::telemetry_compiled;

  // Attaches (or detaches, with nullptr) the live telemetry sink. Board-side
  // wiring only; with -DTOCK_TELEMETRY=OFF the pointer is never consulted.
  void SetTelemetrySink(TelemetrySink* sink) {
    if constexpr (kTelemetryCompiled) {
      telemetry_ = sink;
    }
  }

  const KernelStats& stats() const { return stats_; }
  const EventRing<TraceEvent, kTraceDepth>& events() const { return ring_; }

  // Per-process cycle attribution (kernel/cycle_accounting.h). The kernel drives
  // Switch() from its main loop; everyone else reads.
  CycleAccounting& accounting() { return accounting_; }
  const CycleAccounting& accounting() const { return accounting_; }

  // Latency histograms (util/log2_hist.h), all in simulated cycles:
  //   syscall   — trap entry to trap return (or to the block, for yields)
  //   irq       — IRQ bottom-half dispatch to the resulting upcall's delivery
  //   roundtrip — split-phase Command syscall to the completion upcall's delivery
  const Log2Hist& syscall_hist() const { return hist_syscall_; }
  const Log2Hist& irq_upcall_hist() const { return hist_irq_upcall_; }
  const Log2Hist& command_roundtrip_hist() const { return hist_roundtrip_; }

  // Per-process high-water marks (the ProcStats fields the PCB does not keep).
  uint64_t grant_high_water(size_t pid) const {
    return pid < CycleAccounting::kMaxProcs ? grant_hwm_[pid] : 0;
  }
  uint64_t upcall_queue_max(size_t pid) const {
    return pid < CycleAccounting::kMaxProcs ? queue_max_[pid] : 0;
  }

  // Per-process scheduler activity (kernel/scheduler.h): how often each slot was
  // picked by the active policy, and how often the MPU was actually switched onto
  // it. Counters only, by design — the event ring and the StatId table are
  // golden-locked surfaces (tests/golden/), so scheduling observability lives in
  // these side arrays the way the grant high-water marks do.
  uint64_t sched_decisions(size_t pid) const {
    return pid < CycleAccounting::kMaxProcs ? sched_decisions_[pid] : 0;
  }
  uint64_t proc_context_switches(size_t pid) const {
    return pid < CycleAccounting::kMaxProcs ? ctxsw_per_proc_[pid] : 0;
  }
  void RecordScheduleDecision(uint8_t pid) {
    if constexpr (kEnabled) {
      if (pid < CycleAccounting::kMaxProcs) {
        ++sched_decisions_[pid];
      }
    }
  }

  void RecordSyscall(uint64_t cycle, uint8_t pid, uint32_t klass_raw) {
    if constexpr (kEnabled) {
      if (klass_raw <= static_cast<uint32_t>(SyscallClass::kBlockingCommand)) {
        ++stats_.SyscallSlot(static_cast<SyscallClass>(klass_raw));
      } else {
        ++stats_.syscalls_unknown;
      }
      Push(cycle, TraceEventKind::kSyscall, pid, klass_raw);
    }
  }
  void RecordContextSwitch(uint64_t cycle, uint8_t pid) {
    if constexpr (kEnabled) {
      ++stats_.context_switches;
      if (pid < CycleAccounting::kMaxProcs) {
        ++ctxsw_per_proc_[pid];
      }
      Push(cycle, TraceEventKind::kContextSwitch, pid, pid);
    }
  }
  void RecordMpuReprogram(uint64_t cycle, uint8_t pid) {
    if constexpr (kEnabled) {
      ++stats_.mpu_reprograms;
      Push(cycle, TraceEventKind::kMpuReprogram, pid, pid);
    }
  }
  void RecordIrqDispatch(uint64_t cycle, uint32_t line) {
    if constexpr (kEnabled) {
      ++stats_.irq_dispatches;
      // Upcalls scheduled while servicing this dispatch (directly, or from the
      // deferred call it triggers within the same loop step) are charged to it.
      irq_origin_cycle_ = cycle;
      Push(cycle, TraceEventKind::kIrqDispatch, kNoPid, line);
    }
  }
  void RecordDeferredCall(uint64_t cycle, uint32_t handle) {
    if constexpr (kEnabled) {
      ++stats_.deferred_calls_run;
      Push(cycle, TraceEventKind::kDeferredCall, kNoPid, handle);
    }
  }
  void RecordUpcallQueued(uint64_t cycle, uint8_t pid, uint32_t driver) {
    if constexpr (kEnabled) {
      ++stats_.upcalls_queued;
      Push(cycle, TraceEventKind::kUpcallQueued, pid, driver);
    }
  }
  // `driver` identifies the delivering driver (for command round-trip matching);
  // `origin_cycle` is the IRQ-dispatch stamp carried by the upcall (0 = none).
  void RecordUpcallDelivered(uint64_t cycle, uint8_t pid, uint32_t driver,
                             uint64_t origin_cycle) {
    if constexpr (kEnabled) {
      ++stats_.upcalls_delivered;
      Push(cycle, TraceEventKind::kUpcallDelivered, pid, driver);
      if (origin_cycle != 0 && cycle >= origin_cycle) {
        hist_irq_upcall_.Record(cycle - origin_cycle);
      }
      if (pid < CycleAccounting::kMaxProcs && pending_cmd_[pid].valid &&
          pending_cmd_[pid].driver == driver) {
        hist_roundtrip_.Record(cycle - pending_cmd_[pid].cycle);
        pending_cmd_[pid].valid = false;
      }
    }
  }
  void RecordUpcallsScrubbed(uint64_t cycle, uint8_t pid, uint64_t count) {
    if constexpr (kEnabled) {
      if (count == 0) {
        return;
      }
      stats_.upcalls_scrubbed += count;
      Push(cycle, TraceEventKind::kUpcallScrubbed, pid, static_cast<uint32_t>(count));
    }
  }
  void RecordUpcallDropped(uint64_t cycle, uint8_t pid) {
    if constexpr (kEnabled) {
      ++stats_.upcalls_dropped;
      Push(cycle, TraceEventKind::kUpcallDropped, pid, 0);
    }
  }
  // `live_bytes` is the process's live grant usage after this allocation, for the
  // high-water mark.
  void RecordGrantAlloc(uint64_t cycle, uint8_t pid, uint32_t bytes, uint64_t live_bytes) {
    if constexpr (kEnabled) {
      ++stats_.grant_allocs;
      stats_.grant_bytes += bytes;
      if (pid < CycleAccounting::kMaxProcs && live_bytes > grant_hwm_[pid]) {
        grant_hwm_[pid] = live_bytes;
      }
      Push(cycle, TraceEventKind::kGrantAlloc, pid, bytes);
    }
  }
  // Reclamation at death/restart: `count` grant regions totalling `bytes` returned
  // to the process's quota (satellite of the restart work in kernel.cc).
  void RecordGrantFree(uint64_t cycle, uint8_t pid, uint64_t count, uint64_t bytes) {
    if constexpr (kEnabled) {
      if (count == 0) {
        return;
      }
      stats_.grant_frees += count;
      stats_.grant_bytes_freed += bytes;
      Push(cycle, TraceEventKind::kGrantFree, pid, static_cast<uint32_t>(bytes));
    }
  }
  void RecordSleep(uint64_t cycle, uint64_t slept_cycles) {
    if constexpr (kEnabled) {
      if (slept_cycles == 0) {
        return;
      }
      stats_.sleep_cycles += slept_cycles;
      ++stats_.sleep_entries;
      uint32_t arg;
      if (slept_cycles > UINT32_MAX) {
        // The 32-bit event arg cannot hold the duration; count the saturation so
        // the exporter knows to fall back to sleep_cycles deltas.
        ++stats_.sleep_arg_saturations;
        arg = UINT32_MAX;
      } else {
        arg = static_cast<uint32_t>(slept_cycles);
      }
      Push(cycle, TraceEventKind::kSleep, kNoPid, arg);
    }
  }
  void RecordProcessFault(uint64_t cycle, uint8_t pid, uint32_t cause_arg) {
    if constexpr (kEnabled) {
      ++stats_.process_faults;
      Push(cycle, TraceEventKind::kProcessFault, pid, cause_arg);
    }
  }
  void RecordProcessRestart(uint64_t cycle, uint8_t pid) {
    if constexpr (kEnabled) {
      ++stats_.process_restarts;
      Push(cycle, TraceEventKind::kProcessRestart, pid, 0);
    }
  }
  void RecordProcessExit(uint64_t cycle, uint8_t pid, uint32_t completion_code) {
    if constexpr (kEnabled) {
      ++stats_.process_exits;
      Push(cycle, TraceEventKind::kProcessExit, pid, completion_code);
    }
  }

  // Interpreter-v2 engine activity (counters only — no trace events, so the
  // golden-locked event ring is untouched by engine choice).
  void RecordVmBlocks(uint64_t built, uint64_t chain_hits) {
    if constexpr (kEnabled) {
      stats_.vm_blocks_built += built;
      stats_.vm_block_chain_hits += chain_hits;
    }
  }
  void RecordVmBlocksInvalidated(uint64_t count) {
    if constexpr (kEnabled) {
      stats_.vm_blocks_invalidated += count;
    }
  }
  // vm_cache_bytes is a gauge: +bytes when a process's decode/block tables are
  // allocated (first dispatch), -bytes when they are released (death/restart).
  void RecordVmCacheBytes(int64_t delta) {
    if constexpr (kEnabled) {
      stats_.vm_cache_bytes += static_cast<uint64_t>(delta);
    }
  }
  // mem_resident_bytes is an absolute gauge (synced from the bus each main-loop
  // pass, not delta-maintained: page releases happen deep in restart paths).
  void SetMemResident(uint64_t bytes) {
    if constexpr (kEnabled) {
      stats_.mem_resident_bytes = bytes;
    }
  }
  void RecordIdleSkip() {
    if constexpr (kEnabled) {
      ++stats_.fleet_idle_skips;
    }
  }

  // ---- Profiling hooks (cycle attribution & latency histograms) ------------------

  // Syscall trap-entry to trap-return service time.
  void RecordSyscallLatency(uint64_t cycles) {
    if constexpr (kEnabled) {
      hist_syscall_.Record(cycles);
    }
  }

  // A Command syscall was dispatched; the next upcall delivered to `pid` from
  // `driver` closes the split-phase round trip. One outstanding command per process
  // (matching the one-outstanding-operation discipline of the TRD104 drivers).
  void NoteCommandIssued(uint8_t pid, uint32_t driver, uint64_t cycle) {
    if constexpr (kEnabled) {
      if (pid < CycleAccounting::kMaxProcs) {
        pending_cmd_[pid] = PendingCommand{cycle, driver, true};
      }
    }
  }

  // The IRQ-dispatch stamp a scheduled upcall should carry: the cycle of the IRQ
  // being serviced when attribution sits in interrupt/deferred context, else `now`
  // (capsule scheduled it synchronously from a syscall — the latency starts here).
  uint64_t UpcallOrigin(uint64_t now) const {
    if constexpr (kEnabled) {
      return accounting_.InHardwareContext() && irq_origin_cycle_ != 0 ? irq_origin_cycle_
                                                                      : now;
    }
    return 0;
  }

  void NoteUpcallQueueDepth(uint8_t pid, uint64_t depth) {
    if constexpr (kEnabled) {
      if (pid < CycleAccounting::kMaxProcs && depth > queue_max_[pid]) {
        queue_max_[pid] = depth;
      }
    }
  }

  // A process slot is being reset for reuse/restart: its pending round-trip stamp
  // must not match against the next incarnation's upcalls.
  void ClearProcessProfile(uint8_t pid) {
    if constexpr (kEnabled) {
      if (pid < CycleAccounting::kMaxProcs) {
        pending_cmd_[pid].valid = false;
      }
    }
  }

  // Text dumps (host-side introspection only; the record path never allocates).
  // Deterministic: byte-identical across identical runs.
  void DumpStats(std::string& out) const;
  void DumpTrace(std::string& out) const;
  void DumpHists(std::string& out) const;

 private:
  struct PendingCommand {
    uint64_t cycle = 0;
    uint32_t driver = 0;
    bool valid = false;
  };

  void Push(uint64_t cycle, TraceEventKind kind, uint8_t pid, uint32_t arg) {
    const TraceEvent event{cycle, kind, pid, arg};
    ring_.Push(event);
    if constexpr (kTelemetryCompiled) {
      if (telemetry_ != nullptr) {
        telemetry_->OnTraceEvent(event, stats_);
      }
    }
  }

  KernelStats stats_;
  EventRing<TraceEvent, kTraceDepth> ring_;
  CycleAccounting accounting_;
  Log2Hist hist_syscall_;
  Log2Hist hist_irq_upcall_;
  Log2Hist hist_roundtrip_;
  std::array<uint64_t, CycleAccounting::kMaxProcs> grant_hwm_{};
  std::array<uint64_t, CycleAccounting::kMaxProcs> queue_max_{};
  std::array<uint64_t, CycleAccounting::kMaxProcs> sched_decisions_{};
  std::array<uint64_t, CycleAccounting::kMaxProcs> ctxsw_per_proc_{};
  std::array<PendingCommand, CycleAccounting::kMaxProcs> pending_cmd_{};
  uint64_t irq_origin_cycle_ = 0;
  TelemetrySink* telemetry_ = nullptr;
};

// Dumps one histogram as a single line: summary stats plus the nonzero buckets.
void DumpLog2Hist(const Log2Hist& hist, const char* name, std::string& out);

}  // namespace tock

#endif  // TOCK_KERNEL_TRACE_H_
