// ERA: 2
// Deterministic kernel trace & counters (observability for the paper's quantitative
// claims). Every number the experiments report — isolation cost as syscall/context-
// switch counts (§2.2), sleep residency (§2.5, §3.2), allow/subscribe and upcall
// scrub activity (§3.3) — is a count of kernel events, so the kernel counts them
// itself at its dispatch points instead of every bench re-deriving them.
//
// Two layers, both heapless:
//   * KernelStats: monotonic counters, one per event class. Always cheap (an
//     increment), read through Kernel::stats().
//   * an EventRing of cycle-stamped TraceEvents — the last N things the kernel did,
//     dumpable as text. Because the simulator is deterministic, two identical runs
//     produce byte-identical dumps; tests/trace_test.cc locks that in against a
//     golden file.
//
// The whole subsystem is compile-time-gated on KernelConfig::trace_enabled
// (-DTOCK_TRACE=OFF): with the gate off, record calls are empty inlines and the
// layer compiles away.
#ifndef TOCK_KERNEL_TRACE_H_
#define TOCK_KERNEL_TRACE_H_

#include <cstdint>
#include <string>

#include "kernel/config.h"
#include "kernel/syscall.h"
#include "util/event_ring.h"
#include "vm/cpu.h"

namespace tock {

// Monotonic kernel event counters. Plain aggregate: cheap to read wholesale, and a
// stable numbered view (StatId) backs the ProcessInfoDriver stats syscall.
struct KernelStats {
  // System calls, by class (TRD104 numbering).
  uint64_t syscalls_yield = 0;
  uint64_t syscalls_subscribe = 0;
  uint64_t syscalls_command = 0;
  uint64_t syscalls_rw_allow = 0;
  uint64_t syscalls_ro_allow = 0;
  uint64_t syscalls_memop = 0;
  uint64_t syscalls_exit = 0;
  uint64_t syscalls_blocking_command = 0;
  uint64_t syscalls_unknown = 0;  // trapped with an out-of-range class (NOSUPPORT)

  // Scheduler & hardware interface.
  uint64_t context_switches = 0;
  uint64_t mpu_reprograms = 0;
  uint64_t irq_dispatches = 0;
  uint64_t deferred_calls_run = 0;

  // Upcall machinery (§3.3): queued = accepted into a queue; delivered = handler
  // invoked or consumed as a direct return; scrubbed = removed by a subscription
  // swap or eviction before delivery; dropped = lost (queue full, or the
  // subscription was null at delivery time).
  uint64_t upcalls_queued = 0;
  uint64_t upcalls_delivered = 0;
  uint64_t upcalls_scrubbed = 0;
  uint64_t upcalls_dropped = 0;

  // Grant allocator (§2.4).
  uint64_t grant_allocs = 0;
  uint64_t grant_bytes = 0;

  // Sleep residency (§2.5): cycles the kernel spent in SleepUntilInterrupt and how
  // many times it entered the sleep state.
  uint64_t sleep_cycles = 0;
  uint64_t sleep_entries = 0;

  // Process lifecycle.
  uint64_t process_faults = 0;
  uint64_t process_restarts = 0;
  uint64_t process_exits = 0;

  uint64_t SyscallsTotal() const {
    return syscalls_yield + syscalls_subscribe + syscalls_command + syscalls_rw_allow +
           syscalls_ro_allow + syscalls_memop + syscalls_exit + syscalls_blocking_command +
           syscalls_unknown;
  }

  uint64_t& SyscallSlot(SyscallClass klass);
};

// Stable numbering for the read-only stats syscall (ProcessInfoDriver command 5).
// Append-only: userspace bakes these numbers in.
enum class StatId : uint32_t {
  kSyscallsTotal = 0,
  kSyscallsYield = 1,
  kSyscallsSubscribe = 2,
  kSyscallsCommand = 3,
  kSyscallsRwAllow = 4,
  kSyscallsRoAllow = 5,
  kSyscallsMemop = 6,
  kSyscallsExit = 7,
  kSyscallsBlockingCommand = 8,
  kContextSwitches = 9,
  kMpuReprograms = 10,
  kIrqDispatches = 11,
  kDeferredCallsRun = 12,
  kUpcallsQueued = 13,
  kUpcallsDelivered = 14,
  kUpcallsScrubbed = 15,
  kUpcallsDropped = 16,
  kGrantAllocs = 17,
  kGrantBytes = 18,
  kSleepCycles = 19,
  kSleepEntries = 20,
  kProcessFaults = 21,
  kProcessRestarts = 22,
  kProcessExits = 23,
  kSyscallsUnknown = 24,
  kNumStats = 25,
};

// Returns the counter for `id`, or 0 for an out-of-range id.
uint64_t StatValue(const KernelStats& stats, StatId id);
const char* StatName(StatId id);

// One recorded kernel event. `pid` is the process slot the event concerns (0xFF =
// none/kernel); `arg` is event-specific (syscall class, IRQ line, grant size, ...).
enum class TraceEventKind : uint8_t {
  kSyscall,        // arg = SyscallClass
  kContextSwitch,  // arg = process slot switched to
  kMpuReprogram,   // arg = process slot mapped
  kIrqDispatch,    // arg = interrupt line
  kDeferredCall,   // arg = deferred-call handle
  kUpcallQueued,   // arg = driver number
  kUpcallDelivered,
  kUpcallScrubbed,  // arg = entries scrubbed
  kUpcallDropped,
  kGrantAlloc,  // arg = bytes allocated
  kSleep,       // arg = cycles slept (saturated to 32 bits)
  kProcessFault,  // arg = fault cause (FaultCauseArg encoding)
  kProcessRestart,
  kProcessExit,  // arg = completion code
};

const char* TraceEventKindName(TraceEventKind kind);

// Fault-cause payload for kProcessFault events: low byte holds the VmFault::Kind,
// the next byte holds the BusFaultKind when the fault came from the memory bus.
// Packed into 32 bits so the cause survives in the fixed-size TraceEvent arg.
uint32_t FaultCauseArg(const VmFault& fault);
// Human-readable name for a packed cause ("mpu-violation", "illegal-instruction", ...).
const char* FaultCauseName(uint32_t cause_arg);

struct TraceEvent {
  uint64_t cycle = 0;
  TraceEventKind kind = TraceEventKind::kSyscall;
  uint8_t pid = 0xFF;
  uint32_t arg = 0;
};

// The kernel-owned recorder. The kernel calls the record methods from its dispatch
// points, passing the current cycle; everything is an increment plus a ring store.
class KernelTrace {
 public:
  static constexpr size_t kTraceDepth = 256;
  static constexpr uint8_t kNoPid = 0xFF;
  static constexpr bool kEnabled = KernelConfig::trace_enabled;

  const KernelStats& stats() const { return stats_; }
  const EventRing<TraceEvent, kTraceDepth>& events() const { return ring_; }

  void RecordSyscall(uint64_t cycle, uint8_t pid, uint32_t klass_raw) {
    if constexpr (kEnabled) {
      if (klass_raw <= static_cast<uint32_t>(SyscallClass::kBlockingCommand)) {
        ++stats_.SyscallSlot(static_cast<SyscallClass>(klass_raw));
      } else {
        ++stats_.syscalls_unknown;
      }
      Push(cycle, TraceEventKind::kSyscall, pid, klass_raw);
    }
  }
  void RecordContextSwitch(uint64_t cycle, uint8_t pid) {
    if constexpr (kEnabled) {
      ++stats_.context_switches;
      Push(cycle, TraceEventKind::kContextSwitch, pid, pid);
    }
  }
  void RecordMpuReprogram(uint64_t cycle, uint8_t pid) {
    if constexpr (kEnabled) {
      ++stats_.mpu_reprograms;
      Push(cycle, TraceEventKind::kMpuReprogram, pid, pid);
    }
  }
  void RecordIrqDispatch(uint64_t cycle, uint32_t line) {
    if constexpr (kEnabled) {
      ++stats_.irq_dispatches;
      Push(cycle, TraceEventKind::kIrqDispatch, kNoPid, line);
    }
  }
  void RecordDeferredCall(uint64_t cycle, uint32_t handle) {
    if constexpr (kEnabled) {
      ++stats_.deferred_calls_run;
      Push(cycle, TraceEventKind::kDeferredCall, kNoPid, handle);
    }
  }
  void RecordUpcallQueued(uint64_t cycle, uint8_t pid, uint32_t driver) {
    if constexpr (kEnabled) {
      ++stats_.upcalls_queued;
      Push(cycle, TraceEventKind::kUpcallQueued, pid, driver);
    }
  }
  void RecordUpcallDelivered(uint64_t cycle, uint8_t pid) {
    if constexpr (kEnabled) {
      ++stats_.upcalls_delivered;
      Push(cycle, TraceEventKind::kUpcallDelivered, pid, 0);
    }
  }
  void RecordUpcallsScrubbed(uint64_t cycle, uint8_t pid, uint64_t count) {
    if constexpr (kEnabled) {
      if (count == 0) {
        return;
      }
      stats_.upcalls_scrubbed += count;
      Push(cycle, TraceEventKind::kUpcallScrubbed, pid, static_cast<uint32_t>(count));
    }
  }
  void RecordUpcallDropped(uint64_t cycle, uint8_t pid) {
    if constexpr (kEnabled) {
      ++stats_.upcalls_dropped;
      Push(cycle, TraceEventKind::kUpcallDropped, pid, 0);
    }
  }
  void RecordGrantAlloc(uint64_t cycle, uint8_t pid, uint32_t bytes) {
    if constexpr (kEnabled) {
      ++stats_.grant_allocs;
      stats_.grant_bytes += bytes;
      Push(cycle, TraceEventKind::kGrantAlloc, pid, bytes);
    }
  }
  void RecordSleep(uint64_t cycle, uint64_t slept_cycles) {
    if constexpr (kEnabled) {
      if (slept_cycles == 0) {
        return;
      }
      stats_.sleep_cycles += slept_cycles;
      ++stats_.sleep_entries;
      uint32_t arg = slept_cycles > UINT32_MAX ? UINT32_MAX
                                               : static_cast<uint32_t>(slept_cycles);
      Push(cycle, TraceEventKind::kSleep, kNoPid, arg);
    }
  }
  void RecordProcessFault(uint64_t cycle, uint8_t pid, uint32_t cause_arg) {
    if constexpr (kEnabled) {
      ++stats_.process_faults;
      Push(cycle, TraceEventKind::kProcessFault, pid, cause_arg);
    }
  }
  void RecordProcessRestart(uint64_t cycle, uint8_t pid) {
    if constexpr (kEnabled) {
      ++stats_.process_restarts;
      Push(cycle, TraceEventKind::kProcessRestart, pid, 0);
    }
  }
  void RecordProcessExit(uint64_t cycle, uint8_t pid, uint32_t completion_code) {
    if constexpr (kEnabled) {
      ++stats_.process_exits;
      Push(cycle, TraceEventKind::kProcessExit, pid, completion_code);
    }
  }

  // Text dumps (host-side introspection only; the record path never allocates).
  // Deterministic: byte-identical across identical runs.
  void DumpStats(std::string& out) const;
  void DumpTrace(std::string& out) const;

 private:
  void Push(uint64_t cycle, TraceEventKind kind, uint8_t pid, uint32_t arg) {
    ring_.Push(TraceEvent{cycle, kind, pid, arg});
  }

  KernelStats stats_;
  EventRing<TraceEvent, kTraceDepth> ring_;
};

}  // namespace tock

#endif  // TOCK_KERNEL_TRACE_H_
