// ERA: 3
#include "kernel/process_loader.h"

#include <cstring>

#include "crypto/hmac_sha256.h"

namespace tock {

const char* LoadErrorName(LoadError error) {
  switch (error) {
    case LoadError::kNone:
      return "none";
    case LoadError::kStructural:
      return "structural";
    case LoadError::kUnsigned:
      return "unsigned";
    case LoadError::kAuthenticity:
      return "authenticity";
    case LoadError::kDisabled:
      return "disabled";
    case LoadError::kNoResources:
      return "no-resources";
    case LoadError::kEngineUnavailable:
      return "engine-unavailable";
  }
  return "?";
}

void ProcessLoader::SetDeviceKey(const uint8_t key[32]) {
  std::memcpy(device_key_, key, sizeof(device_key_));
  have_key_ = true;
}

bool ProcessLoader::ReadHeader(uint32_t flash_addr, TbfHeader* out) const {
  if (flash_addr + TbfHeader::kHeaderSize > app_flash_end_) {
    return false;
  }
  return kernel_->mcu()->bus().ReadBlock(flash_addr, reinterpret_cast<uint8_t*>(out),
                                         TbfHeader::kHeaderSize);
}

Result<Process*> ProcessLoader::CreateFromHeader(uint32_t flash_addr, const TbfHeader& header,
                                                 bool verified) {
  (void)verified;
  ProcessCreateInfo info;
  info.name = header.Name();
  info.flash_start = flash_addr;
  info.flash_size = header.total_size;
  info.entry_point = flash_addr + header.entry_offset;
  info.min_ram = header.min_ram;
  Process* p = kernel_->CreateProcess(info, pm_cap_);
  if (p == nullptr) {
    return ErrorCode::kNoMem;
  }
  return p;
}

// ---- Synchronous loader --------------------------------------------------------------

int ProcessLoader::LoadAllSync() {
  int created = 0;
  uint32_t addr = app_flash_start_;
  while (addr + TbfHeader::kHeaderSize <= app_flash_end_) {
    TbfHeader header;
    if (!ReadHeader(addr, &header) || header.magic != TbfHeader::kMagic) {
      break;  // end of packed app list
    }
    LoadRecord record;
    record.flash_addr = addr;
    if (!header.StructurallyValid() ||
        addr + header.total_size > app_flash_end_) {
      record.name = "<invalid>";
      record.reject_reason = "structural check failed";
      record.error = LoadError::kStructural;
      ++rejected_count_;
      records_.push_back(record);
      // A corrupt total_size would wedge the scan; stop at first bad header.
      break;
    }
    record.name = header.Name();
    if (header.IsEnabled()) {
      Result<Process*> result = CreateFromHeader(addr, header, /*verified=*/false);
      if (result.ok()) {
        record.created = true;
        record.pid = result.value()->id;
        ++created;
        ++created_count_;
      } else {
        record.reject_reason = "out of process slots or RAM";
        record.error = LoadError::kNoResources;
        ++rejected_count_;
      }
    } else {
      record.reject_reason = "disabled";
      record.error = LoadError::kDisabled;
    }
    records_.push_back(record);
    addr += header.total_size;
  }
  state_ = State::kDone;
  return created;
}

// ---- Asynchronous loader --------------------------------------------------------------

Result<void> ProcessLoader::StartAsyncLoad() {
  if (digester_ == nullptr || !have_key_) {
    return Result<void>(ErrorCode::kUninstalled);
  }
  if (state_ == State::kScanning || state_ == State::kVerifying) {
    return Result<void>(ErrorCode::kBusy);
  }
  Result<void> keyed = digester_->SetHmacKey(SubSlice(device_key_, sizeof(device_key_)));
  if (!keyed.ok()) {
    return keyed;
  }
  single_mode_ = false;
  scan_addr_ = app_flash_start_;
  state_ = State::kScanning;
  ProcessCurrentCandidate();
  return Result<void>::Ok();
}

Result<void> ProcessLoader::LoadOneAsync(uint32_t flash_addr) {
  if (digester_ == nullptr || !have_key_) {
    return Result<void>(ErrorCode::kUninstalled);
  }
  if (state_ == State::kScanning || state_ == State::kVerifying) {
    return Result<void>(ErrorCode::kBusy);
  }
  // Retrying a failed slot: drop the stale failure record(s) for this address so
  // the ledger holds one row per slot, not one per attempt. Records of *created*
  // processes are live state and are never cleared this way.
  for (size_t i = records_.size(); i-- > 0;) {
    if (records_[i].flash_addr == flash_addr && !records_[i].created) {
      records_.erase(records_.begin() + static_cast<long>(i));
    }
  }
  Result<void> keyed = digester_->SetHmacKey(SubSlice(device_key_, sizeof(device_key_)));
  if (!keyed.ok()) {
    return keyed;
  }
  single_mode_ = true;
  scan_addr_ = flash_addr;
  state_ = State::kScanning;
  ProcessCurrentCandidate();
  return Result<void>::Ok();
}

const ProcessLoader::LoadRecord* ProcessLoader::RecordFor(uint32_t flash_addr) const {
  for (size_t i = records_.size(); i-- > 0;) {
    if (records_[i].flash_addr == flash_addr) {
      return &records_[i];
    }
  }
  return nullptr;
}

void ProcessLoader::ProcessCurrentCandidate() {
  // Step 1 of the per-app state machine: structural/header integrity.
  TbfHeader header;
  if (!ReadHeader(scan_addr_, &header) || header.magic != TbfHeader::kMagic) {
    state_ = State::kDone;  // end of packed list
    return;
  }
  if (!header.StructurallyValid() || scan_addr_ + header.total_size > app_flash_end_) {
    LoadRecord record;
    record.flash_addr = scan_addr_;
    record.name = "<invalid>";
    record.reject_reason = "structural check failed";
    record.error = LoadError::kStructural;
    ++rejected_count_;
    records_.push_back(record);
    state_ = State::kDone;  // cannot trust total_size to continue the scan
    return;
  }
  current_header_ = header;

  if (!header.IsEnabled()) {
    FinishCurrent(/*create=*/false, /*verified=*/false, "disabled", LoadError::kDisabled);
    return;
  }
  if (!header.IsSigned()) {
    // The signed-app security model rejects unsigned images outright.
    FinishCurrent(/*create=*/false, /*verified=*/false, "unsigned image",
                  LoadError::kUnsigned);
    return;
  }

  // Step 2: cryptographic integrity+authenticity. The accelerator raises an
  // interrupt when the MAC over [header | binary] is ready.
  state_ = State::kVerifying;
  Result<void> started = digester_->ComputeDigestPhys(
      scan_addr_, TbfHeader::kHeaderSize + current_header_.binary_size, &DigestDoneTrampoline,
      this);
  if (!started.ok()) {
    FinishCurrent(/*create=*/false, /*verified=*/false, "digest engine unavailable",
                  LoadError::kEngineUnavailable);
  }
}

void ProcessLoader::DigestDoneTrampoline(void* context, const uint8_t digest[32], bool ok) {
  static_cast<ProcessLoader*>(context)->OnDigestDone(digest, ok);
}

void ProcessLoader::OnDigestDone(const uint8_t digest[32], bool ok) {
  // Step 3: compare against the signature stored after the binary.
  uint8_t expected[TbfHeader::kSignatureSize];
  uint32_t sig_addr = scan_addr_ + TbfHeader::kHeaderSize + current_header_.binary_size;
  bool sig_read = kernel_->mcu()->bus().ReadBlock(sig_addr, expected, sizeof(expected));

  if (!ok || !sig_read || !HmacSha256::VerifyTag(expected, digest, sizeof(expected))) {
    FinishCurrent(/*create=*/false, /*verified=*/false, "signature verification failed",
                  LoadError::kAuthenticity);
    return;
  }
  // Step 4: runnability (process slot + RAM quota), then create.
  FinishCurrent(/*create=*/true, /*verified=*/true, nullptr, LoadError::kNone);
}

void ProcessLoader::FinishCurrent(bool create, bool verified, const char* reject_reason,
                                  LoadError error) {
  LoadRecord record;
  record.flash_addr = scan_addr_;
  record.name = current_header_.Name();
  record.verified = verified;
  record.reject_reason = reject_reason;
  record.error = error;

  if (create) {
    Result<Process*> result = CreateFromHeader(scan_addr_, current_header_, verified);
    if (result.ok()) {
      record.created = true;
      record.pid = result.value()->id;
      ++created_count_;
    } else {
      record.reject_reason = "out of process slots or RAM";
      record.error = LoadError::kNoResources;
      ++rejected_count_;
    }
  } else if (reject_reason != nullptr && std::strcmp(reject_reason, "disabled") != 0) {
    ++rejected_count_;
  }
  records_.push_back(record);

  if (single_mode_) {
    state_ = State::kDone;
    return;
  }
  AdvanceScan();
}

void ProcessLoader::AdvanceScan() {
  scan_addr_ += current_header_.total_size;
  state_ = State::kScanning;
  ProcessCurrentCandidate();
}

}  // namespace tock
