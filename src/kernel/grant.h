// ERA: 2
// Typed grants (§2.4): per-process kernel state allocated *inside the owning
// process's RAM quota*, made inaccessible to the process itself (the MPU region
// covers only [ram_start, app_break), and grants live above the grant break).
//
// A capsule declares `Grant<MyState> grant_` and enters it per process:
//
//   grant_.Enter(pid, [&](MyState& state) { ... });
//
// First entry allocates and value-initializes MyState from the process's quota;
// exhaustion fails only that process. When the process dies, the memory is
// reclaimed wholesale with the quota — so T must be trivially destructible, which
// the template enforces.
#ifndef TOCK_KERNEL_GRANT_H_
#define TOCK_KERNEL_GRANT_H_

#include <new>
#include <type_traits>

#include "kernel/capability.h"
#include "kernel/kernel.h"

namespace tock {

template <typename T>
class Grant {
  static_assert(std::is_trivially_destructible_v<T>,
                "grant state is reclaimed without destruction when a process dies");
  static_assert(std::is_trivially_copyable_v<T>,
                "grant state lives in simulated RAM and may bounce through a copy "
                "when the allocation straddles a 4 KiB page line");

 public:
  Grant() : kernel_(nullptr), grant_id_(0) {}

  // Board initialization only: allocating one of the finite grant slots requires the
  // memory-allocation capability (§4.4).
  Grant(Kernel* kernel, const MemoryAllocationCapability& cap)
      : kernel_(kernel), grant_id_(kernel->AllocateGrantId(cap)) {}

  // Runs `fn(T&)` against this grant's allocation for `pid`. Returns kNoMem when the
  // process's quota is exhausted and kInvalid when the process is dead.
  template <typename Fn>
  Result<void> Enter(ProcessId pid, Fn&& fn) {
    if (kernel_ == nullptr) {
      return Result<void>(ErrorCode::kFail);
    }
    bool first_time = false;
    uint32_t addr =
        kernel_->GrantEnterResolve(pid, grant_id_, sizeof(T), alignof(T), &first_time);
    if (addr == 0) {
      return Result<void>(kernel_->IsAlive(pid) ? ErrorCode::kNoMem : ErrorCode::kInvalid);
    }
    kernel_->WithRamBytes(addr, sizeof(T), [&](uint8_t* mem) {
      T* state = first_time ? new (mem) T() : reinterpret_cast<T*>(mem);
      fn(*state);
    });
    return Result<void>::Ok();
  }

  unsigned grant_id() const { return grant_id_; }

 private:
  Kernel* kernel_;
  unsigned grant_id_;
};

}  // namespace tock

#endif  // TOCK_KERNEL_GRANT_H_
