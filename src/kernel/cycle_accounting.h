// ERA: 3
// Per-process cycle attribution (the profiling half of kernel/trace.h).
//
// The paper's quantitative claims are *per-component* costs — capsule isolation is
// "virtually free" (§2.2), the asynchronous syscall sequence beats Ti50's blocking
// command (§3.2), the kernel sleeps whenever idle (§2.5). Aggregate counters cannot
// attribute a single cycle to the component that spent it, so the kernel main loop
// charges every elapsed cycle to exactly one bucket:
//
//   kUser(pid)     process pid executing its own instructions
//   kService(pid)  the kernel working on pid's behalf: syscall dispatch, context
//                  switch + MPU reprogram into pid, upcall delivery, fault handling
//   kCapsule       deferred-call bottom halves (no process is chargeable)
//   kIrq           interrupt servicing (top-half dispatch + chip handlers)
//   kIdle          SleepUntilInterrupt (plus the sleep transition cost)
//   kKernel        main-loop glue and anything a board does between loop steps
//
// Attribution is switch-based, which makes it *exhaustive by construction*: the
// accountant remembers the cycle of the last bucket switch and flushes the delta to
// the outgoing bucket, so at every flush point the bucket sums equal elapsed cycles
// since the anchor exactly — the conservation law tests/profiler_test.cc asserts.
// Scopes are RAII and nest (a syscall scope inside a user scope suspends the user
// bucket and resumes it on exit). Every flush with a nonzero delta also records a
// CycleSpan into a ring, which is what the Chrome-trace exporter
// (tools/trace_export.h) turns into duration events.
//
// Batched block-boundary accounting (interpreter v2): the kernel's batch engine
// does NOT tick the clock per instruction. It computes a budget of instructions
// guaranteed to contain no observable point — min(run deadline, SimClock::
// NextEventAt()) minus now — runs them in one RunBatch call, and ticks once with
// the consumed count at the batch boundary. Because kVmInstruction == 1
// (static_assert'ed in kernel/kernel.cc), Tick(k) advances the clock to exactly
// the cycle per-insn ticking would have reached, and no clock event can fire
// strictly inside the batch, so every flush point here sees identical cycle
// values either way. The conservation law is untouched: batches begin and end
// inside the same kUser scope, and all Service/Irq/Idle transitions still happen
// at batch boundaries.
//
// Like the rest of the trace layer this compiles away under -DTOCK_TRACE=OFF:
// every method body is behind `if constexpr` on KernelConfig::trace_enabled.
#ifndef TOCK_KERNEL_CYCLE_ACCOUNTING_H_
#define TOCK_KERNEL_CYCLE_ACCOUNTING_H_

#include <array>
#include <cstddef>
#include <cstdint>

#include "kernel/config.h"
#include "util/event_ring.h"

namespace tock {

enum class CycleBucket : uint8_t {
  kKernel,   // main-loop glue, boot, inter-step board activity
  kUser,     // process pid: its own instructions
  kService,  // process pid: kernel service (syscalls, switch-in, upcall delivery)
  kCapsule,  // deferred-call work
  kIrq,      // interrupt dispatch
  kIdle,     // sleep
};

const char* CycleBucketName(CycleBucket bucket);

// One attributed span of time, for the trace exporter. pid is meaningful only for
// kUser/kService spans (0xFF otherwise).
struct CycleSpan {
  uint64_t start = 0;
  uint64_t end = 0;
  CycleBucket bucket = CycleBucket::kKernel;
  uint8_t pid = 0xFF;
};

class CycleAccounting {
 public:
  static constexpr bool kEnabled = KernelConfig::trace_enabled;
  static constexpr size_t kMaxProcs = 8;  // kernel.cc asserts >= Kernel::kMaxProcesses
  static constexpr size_t kSpanDepth = 256;
  static constexpr uint8_t kNoPid = 0xFF;

  // A read-only, fully-flushed view of the buckets at a given cycle. Snap() charges
  // the still-open span to its bucket without mutating the accountant, so tests can
  // check conservation mid-run.
  struct Snapshot {
    uint64_t anchor = 0;   // cycle accounting began at
    uint64_t now = 0;      // cycle the snapshot was taken at
    std::array<uint64_t, kMaxProcs> user{};
    std::array<uint64_t, kMaxProcs> service{};
    uint64_t capsule = 0;
    uint64_t irq = 0;
    uint64_t idle = 0;
    uint64_t kernel = 0;

    uint64_t Total() const {
      uint64_t t = capsule + irq + idle + kernel;
      for (size_t i = 0; i < kMaxProcs; ++i) {
        t += user[i] + service[i];
      }
      return t;
    }
    uint64_t Elapsed() const { return now - anchor; }
  };

  bool begun() const { return begun_; }
  uint64_t anchor_cycle() const { return anchor_; }
  const EventRing<CycleSpan, kSpanDepth>& spans() const { return spans_; }

  // Starts accounting at `now` in the kKernel bucket (idempotent). The kernel calls
  // this on the first main-loop step, so boot-time cycles spent before any loop ran
  // stay outside the conservation window.
  void Begin(uint64_t now) {
    if constexpr (kEnabled) {
      if (!begun_) {
        begun_ = true;
        anchor_ = now;
        last_flush_ = now;
        bucket_ = CycleBucket::kKernel;
        pid_ = kNoPid;
      }
    }
  }

  // Flushes the open span and switches attribution to (bucket, pid).
  void Switch(CycleBucket bucket, uint8_t pid, uint64_t now) {
    if constexpr (kEnabled) {
      if (!begun_) {
        Begin(now);
      }
      Flush(now);
      bucket_ = bucket;
      pid_ = pid;
    }
  }

  // The open attribution target. The kernel's RAII scope helper (kernel.cc) reads
  // these to restore the suspended bucket when a nested scope exits.
  CycleBucket current_bucket() const { return bucket_; }
  uint8_t current_pid() const { return pid_; }
  // True while attribution sits in an interrupt or deferred-call scope — the window
  // in which a scheduled upcall's latency is chargeable to the triggering IRQ.
  bool InHardwareContext() const {
    return bucket_ == CycleBucket::kIrq || bucket_ == CycleBucket::kCapsule;
  }

  Snapshot Snap(uint64_t now) const {
    Snapshot s;
    if constexpr (kEnabled) {
      s.anchor = anchor_;
      s.now = now;
      s.user = user_;
      s.service = service_;
      s.capsule = capsule_;
      s.irq = irq_;
      s.idle = idle_;
      s.kernel = kernel_;
      // Charge the open span as Flush would, without mutating.
      if (begun_ && now > last_flush_) {
        uint64_t delta = now - last_flush_;
        switch (bucket_) {
          case CycleBucket::kUser:
            s.user[pid_ % kMaxProcs] += delta;
            break;
          case CycleBucket::kService:
            s.service[pid_ % kMaxProcs] += delta;
            break;
          case CycleBucket::kCapsule:
            s.capsule += delta;
            break;
          case CycleBucket::kIrq:
            s.irq += delta;
            break;
          case CycleBucket::kIdle:
            s.idle += delta;
            break;
          case CycleBucket::kKernel:
            s.kernel += delta;
            break;
        }
      }
    }
    return s;
  }

  uint64_t user_cycles(size_t pid) const {
    return pid < kMaxProcs ? user_[pid] : 0;
  }
  uint64_t service_cycles(size_t pid) const {
    return pid < kMaxProcs ? service_[pid] : 0;
  }
  uint64_t capsule_cycles() const { return capsule_; }
  uint64_t irq_cycles() const { return irq_; }
  uint64_t idle_cycles() const { return idle_; }
  uint64_t kernel_cycles() const { return kernel_; }

 private:
  void Flush(uint64_t now) {
    if (now <= last_flush_) {
      return;
    }
    uint64_t delta = now - last_flush_;
    switch (bucket_) {
      case CycleBucket::kUser:
        user_[pid_ % kMaxProcs] += delta;
        break;
      case CycleBucket::kService:
        service_[pid_ % kMaxProcs] += delta;
        break;
      case CycleBucket::kCapsule:
        capsule_ += delta;
        break;
      case CycleBucket::kIrq:
        irq_ += delta;
        break;
      case CycleBucket::kIdle:
        idle_ += delta;
        break;
      case CycleBucket::kKernel:
        kernel_ += delta;
        break;
    }
    spans_.Push(CycleSpan{last_flush_, now, bucket_, pid_});
    last_flush_ = now;
  }

  bool begun_ = false;
  uint64_t anchor_ = 0;
  uint64_t last_flush_ = 0;
  CycleBucket bucket_ = CycleBucket::kKernel;
  uint8_t pid_ = kNoPid;

  std::array<uint64_t, kMaxProcs> user_{};
  std::array<uint64_t, kMaxProcs> service_{};
  uint64_t capsule_ = 0;
  uint64_t irq_ = 0;
  uint64_t idle_ = 0;
  uint64_t kernel_ = 0;

  EventRing<CycleSpan, kSpanDepth> spans_;
};

// The per-process profiling row assembled by Kernel::GetProcStats (read by the
// process console's `prof` command and ProcessInfoDriver command 6). Stable field
// numbering for the syscall view — append-only, like StatId.
struct ProcStats {
  uint64_t user_cycles = 0;        // field 0
  uint64_t service_cycles = 0;     // field 1
  uint64_t syscalls = 0;           // field 2
  uint64_t upcalls = 0;            // field 3 (delivered)
  uint64_t grant_high_water = 0;   // field 4 (peak live grant bytes, any incarnation)
  uint64_t upcall_queue_max = 0;   // field 5 (peak queue depth)
  uint64_t restarts = 0;           // field 6
  // Scheduler fields (kernel/scheduler.h), appended for the pluggable-policy work.
  uint64_t context_switches = 0;       // field 7 (MPU switched onto this process)
  uint64_t timeslice_expirations = 0;  // field 8 (this incarnation)
  uint64_t priority = 0;               // field 9 (0 = highest)
  uint64_t queue_level = 0;            // field 10 (MLFQ level; 0 under other policies)
};

enum class ProcStatField : uint32_t {
  kUserCycles = 0,
  kServiceCycles = 1,
  kSyscalls = 2,
  kUpcalls = 3,
  kGrantHighWater = 4,
  kUpcallQueueMax = 5,
  kRestarts = 6,
  kContextSwitches = 7,
  kTimesliceExpirations = 8,
  kPriority = 9,
  kQueueLevel = 10,
  kNumFields = 11,
};

uint64_t ProcStatValue(const ProcStats& stats, ProcStatField field);
const char* ProcStatName(ProcStatField field);

}  // namespace tock

#endif  // TOCK_KERNEL_CYCLE_ACCOUNTING_H_
