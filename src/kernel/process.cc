// ERA: 1
#include "kernel/process.h"

namespace tock {

const char* ProcessStateName(ProcessState state) {
  switch (state) {
    case ProcessState::kUnstarted:
      return "Unstarted";
    case ProcessState::kRunnable:
      return "Runnable";
    case ProcessState::kYielded:
      return "Yielded";
    case ProcessState::kYieldedFor:
      return "YieldedFor";
    case ProcessState::kFaulted:
      return "Faulted";
    case ProcessState::kRestartPending:
      return "RestartPend";
    case ProcessState::kTerminated:
      return "Terminated";
  }
  return "?";
}

const char* FaultActionName(FaultAction action) {
  switch (action) {
    case FaultAction::kPanic:
      return "panic";
    case FaultAction::kStop:
      return "stop";
    case FaultAction::kRestart:
      return "restart";
  }
  return "?";
}

AllowSlot* Process::FindAllow(uint32_t driver, uint32_t allow_num, bool read_only) {
  for (AllowSlot& slot : allow_slots) {
    if (slot.in_use && slot.driver == driver && slot.allow_num == allow_num &&
        slot.read_only == read_only) {
      return &slot;
    }
  }
  return nullptr;
}

SubscribeSlot* Process::FindSubscribe(uint32_t driver, uint32_t sub_num) {
  for (SubscribeSlot& slot : subscribe_slots) {
    if (slot.in_use && slot.driver == driver && slot.sub_num == sub_num) {
      return &slot;
    }
  }
  return nullptr;
}

AllowSlot* Process::FindOrCreateAllow(uint32_t driver, uint32_t allow_num, bool read_only) {
  if (AllowSlot* existing = FindAllow(driver, allow_num, read_only)) {
    return existing;
  }
  for (AllowSlot& slot : allow_slots) {
    if (!slot.in_use) {
      slot = AllowSlot{true, read_only, driver, allow_num, 0, 0};
      return &slot;
    }
  }
  return nullptr;
}

SubscribeSlot* Process::FindOrCreateSubscribe(uint32_t driver, uint32_t sub_num) {
  if (SubscribeSlot* existing = FindSubscribe(driver, sub_num)) {
    return existing;
  }
  for (SubscribeSlot& slot : subscribe_slots) {
    if (!slot.in_use) {
      slot = SubscribeSlot{true, driver, sub_num, 0, 0};
      return &slot;
    }
  }
  return nullptr;
}

size_t Process::ScrubUpcalls(uint32_t driver, uint32_t sub_num) {
  return upcall_queue.RemoveIf([&](const QueuedUpcall& u) {
    return u.driver == driver && u.sub_num == sub_num;
  });
}

uint32_t Process::AllocateGrantMemory(uint32_t size, uint32_t align) {
  if (align == 0) {
    align = 4;
  }
  uint32_t candidate = grant_break - size;
  candidate &= ~(align - 1);
  if (candidate < app_break || candidate > grant_break) {  // overflow check via wrap
    return 0;
  }
  grant_break = candidate;
  grant_bytes_allocated += size;
  grant_bytes_live += size;
  ++grant_regions_live;
  return candidate;
}

bool Process::SetBreak(uint32_t new_break) {
  if (new_break < ram_start || new_break > grant_break) {
    return false;
  }
  app_break = new_break;
  return true;
}

bool Process::InAccessibleRam(uint32_t addr, uint32_t len) const {
  uint64_t end = static_cast<uint64_t>(addr) + len;
  return addr >= ram_start && end <= app_break;
}

bool Process::InOwnFlash(uint32_t addr, uint32_t len) const {
  uint64_t end = static_cast<uint64_t>(addr) + len;
  return addr >= flash_start && end <= static_cast<uint64_t>(flash_start) + flash_size;
}

void Process::ResetForRestart() {
  ctx = CpuContext{};
  saved_contexts.Clear();
  // Every cached decode is suspect across a restart: the same flash window may have
  // been reprogrammed (dynamic reload) between lives, and a revived process must
  // never replay a decode of bytes that are no longer there.
  decode_cache.Invalidate();
  wait_driver = 0;
  wait_sub = 0;
  blocking_command_wait = false;
  yield_flag_pending = 0;
  // Diagnostics from the previous life must not leak into the next one: a restarted
  // process that never faulted again would otherwise still show the old fault, and
  // its timeslice-expiration count would keep accumulating across incarnations.
  fault_info = ProcessFaultInfo{};
  timeslice_expirations = 0;
  restart_due_cycle = 0;
  // Scheduler state is incarnation-local: a revived process re-enters the top MLFQ
  // level with a fresh rotation stamp (priority itself is configuration and stays).
  queue_level = 0;
  sched_stamp = 0;
  for (AllowSlot& slot : allow_slots) {
    slot = AllowSlot{};
  }
  for (SubscribeSlot& slot : subscribe_slots) {
    slot = SubscribeSlot{};
  }
  upcall_queue.Clear();
  grant_ptrs.fill(0);
  grant_bytes_live = 0;
  grant_regions_live = 0;
  grant_break = ram_start + ram_size;
  app_break = ram_start;
  ++id.generation;
}

}  // namespace tock
