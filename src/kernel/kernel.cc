// ERA: 2
#include "kernel/kernel.h"

#include <cassert>

#include "hw/costs.h"
#include "hw/memory_map.h"
#include "kernel/fault_injector.h"

namespace tock {

namespace {
constexpr unsigned kSysTickIrqLine = MemoryMap::kSysTick;

// RAII cycle-attribution scope (kernel/cycle_accounting.h). Construction switches
// the open bucket; destruction restores whatever was open before, reading the clock
// directly so nesting (a syscall scope inside a user scope) suspends and resumes the
// outer bucket exactly. Compiles to nothing under -DTOCK_TRACE=OFF.
class AcctScope {
 public:
  AcctScope(KernelTrace& trace, Mcu& mcu, CycleBucket bucket,
            uint8_t pid = CycleAccounting::kNoPid)
      : trace_(trace), mcu_(mcu) {
    if constexpr (CycleAccounting::kEnabled) {
      prev_bucket_ = trace_.accounting().current_bucket();
      prev_pid_ = trace_.accounting().current_pid();
      trace_.accounting().Switch(bucket, pid, mcu_.CyclesNow());
    }
  }
  ~AcctScope() {
    if constexpr (CycleAccounting::kEnabled) {
      trace_.accounting().Switch(prev_bucket_, prev_pid_, mcu_.CyclesNow());
    }
  }
  AcctScope(const AcctScope&) = delete;
  AcctScope& operator=(const AcctScope&) = delete;

 private:
  KernelTrace& trace_;
  Mcu& mcu_;
  CycleBucket prev_bucket_ = CycleBucket::kKernel;
  uint8_t prev_pid_ = CycleAccounting::kNoPid;
};

static_assert(CycleAccounting::kMaxProcs >= Kernel::kMaxProcesses,
              "attribution tables must cover every process slot");
}  // namespace

Kernel::Kernel(Mcu* mcu, SysTick* systick, const KernelConfig& config)
    : mcu_(mcu), systick_(systick), config_(config), cpu_(&mcu->bus()) {
  // The kernel owns the SysTick interrupt line for preemption.
  mcu_->irq().Enable(kSysTickIrqLine);
  // The runtime engine switches exist so one binary can compare every engine leg
  // (the hotpath bench); they cannot resurrect compiled-out code. Superblocks
  // additionally require the decode cache (blocks live in its tables) and the
  // batch engine (the per-insn loop never executes blocks).
  config_.enable_decode_cache =
      config_.enable_decode_cache && KernelConfig::decode_cache_compiled;
  config_.enable_superblocks = config_.enable_superblocks &&
                               KernelConfig::superblocks_compiled &&
                               config_.enable_decode_cache &&
                               config_.enable_threaded_dispatch;
  // Watch the one modeled flash-write path so reprogrammed code can never execute
  // from a stale predecoded record (vm/decode.h).
  mcu_->bus().set_flash_observer(this);
  // Compose the board-selected scheduling policy (kernel/scheduler.h). All four
  // live in the kernel as members; only the selected one is ever consulted.
  switch (config_.scheduler.policy) {
    case SchedulerPolicy::kRoundRobin:
      scheduler_ = &sched_round_robin_;
      break;
    case SchedulerPolicy::kCooperative:
      scheduler_ = &sched_cooperative_;
      break;
    case SchedulerPolicy::kPriority:
      scheduler_ = &sched_priority_;
      break;
    case SchedulerPolicy::kMlfq:
      scheduler_ = &sched_mlfq_;
      break;
  }
}

Kernel::~Kernel() {
  mcu_->bus().set_flash_observer(nullptr);
}

// ---- Board wiring ------------------------------------------------------------------

bool Kernel::RegisterDriver(uint32_t driver_num, SyscallDriver* driver) {
  assert(driver != nullptr);
  assert(num_drivers_ < kMaxDrivers);
  size_t slot = DriverSlot(driver_num);
  while (drivers_[slot].driver != nullptr) {
    if (drivers_[slot].num == driver_num) {
      return false;  // duplicate: the first registration stands
    }
    slot = (slot + 1) & (kDriverTableSize - 1);
  }
  drivers_[slot] = DriverEntry{driver_num, driver};
  ++num_drivers_;
  return true;
}

void Kernel::RegisterIrqHandler(unsigned line, InterruptService* service) {
  assert(line < InterruptController::kNumLines);
  irq_handlers_[line] = service;
  mcu_->irq().Enable(line);
}

unsigned Kernel::AllocateGrantId(const MemoryAllocationCapability& cap) {
  (void)cap;
  assert(next_grant_id_ < Process::kMaxGrants);
  return next_grant_id_++;
}

SyscallDriver* Kernel::LookupDriver(uint32_t driver_num) {
  if (last_driver_ != nullptr && last_driver_num_ == driver_num) {
    return last_driver_;
  }
  size_t slot = DriverSlot(driver_num);
  while (drivers_[slot].driver != nullptr) {
    if (drivers_[slot].num == driver_num) {
      last_driver_num_ = driver_num;
      last_driver_ = drivers_[slot].driver;
      return last_driver_;
    }
    slot = (slot + 1) & (kDriverTableSize - 1);
  }
  return nullptr;  // hit an empty slot: the number was never registered
}

void Kernel::OnFlashProgrammed(uint32_t addr, uint32_t len) {
  for (size_t i = 0; i < num_created_processes_; ++i) {
    trace_.RecordVmBlocksInvalidated(processes_[i].decode_cache.InvalidateRange(addr, len));
  }
}

// ---- Process management --------------------------------------------------------------

Process* Kernel::CreateProcess(const ProcessCreateInfo& info,
                               const ProcessManagementCapability& cap) {
  (void)cap;
  if (num_created_processes_ >= kMaxProcesses) {
    return nullptr;
  }
  uint32_t quota = config_.process_ram_quota;
  uint32_t ram_start = MemoryMap::kRamBase + kKernelRamReserve +
                       static_cast<uint32_t>(num_created_processes_) * quota;
  if (ram_start + quota > MemoryMap::kRamBase + MemoryMap::kRamSize) {
    return nullptr;  // out of physical RAM for another quota
  }

  size_t slot = num_created_processes_++;
  Process& p = processes_[slot];
  p.id = ProcessId{static_cast<uint8_t>(slot), 1};
  p.name = info.name;
  p.flash_start = info.flash_start;
  p.flash_size = info.flash_size;
  p.entry_point = info.entry_point;
  p.ram_start = ram_start;
  p.ram_size = quota;
  uint32_t accessible = info.min_ram;
  if (accessible > quota / 2) {
    accessible = quota / 2;  // leave at least half the quota for grants by default
  }
  p.app_break = ram_start + ((accessible + 7) & ~7u);
  p.initial_break = p.app_break;
  p.grant_break = ram_start + quota;
  p.fault_policy = info.fault_policy.value_or(config_.default_fault_policy);
  p.priority = info.priority.value_or(config_.scheduler.default_priority);
  p.queue_level = 0;
  p.sched_stamp = 0;
  // The decode/block tables are NOT sized here: they allocate lazily on the
  // process's first dispatch (ExecuteProcess), so fleet slots that are created
  // but never scheduled cost zero cache memory. A dynamic reload into the same
  // window goes through ProgramFlash and is caught by OnFlashProgrammed.
  p.state = ProcessState::kUnstarted;
  return &p;
}

Result<void> Kernel::StopProcess(ProcessId pid, const ProcessManagementCapability& cap) {
  (void)cap;
  // Deliberately not GetLiveProcess: stopping a process parked in kRestartPending
  // must work too (it cancels the scheduled revival).
  Process* p = (pid.index < kMaxProcesses) ? &processes_[pid.index] : nullptr;
  if (p == nullptr || !p->id.IsValid() || p->id.generation != pid.generation ||
      (!p->IsAlive() && p->state != ProcessState::kRestartPending)) {
    return Result<void>(ErrorCode::kInvalid);
  }
  if (p->restart_event_id != 0) {
    mcu_->clock().Cancel(p->restart_event_id);
    p->restart_event_id = 0;
    p->restart_due_cycle = 0;
  }
  ReleaseVmCache(*p);
  p->state = ProcessState::kTerminated;
  trace_.RecordProcessExit(mcu_->CyclesNow(), p->id.index, 0);
  return Result<void>::Ok();
}

Result<void> Kernel::RestartProcess(ProcessId pid, const ProcessManagementCapability& cap) {
  (void)cap;
  Process* p = (pid.index < kMaxProcesses) ? &processes_[pid.index] : nullptr;
  if (p == nullptr || !p->id.IsValid()) {
    return Result<void>(ErrorCode::kInvalid);
  }
  if (p->restart_event_id != 0) {
    mcu_->clock().Cancel(p->restart_event_id);
    p->restart_event_id = 0;
  }
  ++p->restart_count;
  trace_.RecordGrantFree(mcu_->CyclesNow(), p->id.index, p->grant_regions_live,
                         p->grant_bytes_live);
  trace_.ClearProcessProfile(p->id.index);
  ReleaseVmCache(*p);
  // The reclaimed grant region is dead memory — grant_ptrs are cleared and the
  // app can never reach above its break — so zero it now, releasing its private
  // pages back to the shared backing. App-accessible RAM deliberately persists
  // across restarts (ExitRestartRunsAgainWithBumpedGeneration pins that).
  mcu_->bus().ResetRam(p->grant_break, p->ram_start + p->ram_size - p->grant_break);
  p->ResetForRestart();
  p->SetBreak(p->initial_break);
  InitProcessContext(*p);
  p->state = ProcessState::kRunnable;
  if (mpu_configured_for_ == p->id.index) {
    mpu_configured_for_ = 0xFF;  // the break moved; force an MPU reprogram
  }
  trace_.RecordProcessRestart(mcu_->CyclesNow(), p->id.index);
  return Result<void>::Ok();
}

Result<void> Kernel::SetFaultPolicy(ProcessId pid, const FaultPolicy& policy,
                                    const ProcessManagementCapability& cap) {
  (void)cap;
  Process* p = (pid.index < kMaxProcesses) ? &processes_[pid.index] : nullptr;
  if (p == nullptr || !p->id.IsValid() || p->id.generation != pid.generation) {
    return Result<void>(ErrorCode::kInvalid);
  }
  p->fault_policy = policy;
  return Result<void>::Ok();
}

Result<void> Kernel::SetPriority(ProcessId pid, uint8_t priority,
                                 const ProcessManagementCapability& cap) {
  (void)cap;
  Process* p = (pid.index < kMaxProcesses) ? &processes_[pid.index] : nullptr;
  if (p == nullptr || !p->id.IsValid() || p->id.generation != pid.generation) {
    return Result<void>(ErrorCode::kInvalid);
  }
  p->priority = priority;
  return Result<void>::Ok();
}

Process* Kernel::GetLiveProcess(ProcessId pid) {
  if (pid.index >= kMaxProcesses) {
    return nullptr;
  }
  Process& p = processes_[pid.index];
  if (!p.id.IsValid() || p.id.generation != pid.generation || !p.IsAlive()) {
    return nullptr;
  }
  return &p;
}

bool Kernel::IsAlive(ProcessId pid) const {
  return const_cast<Kernel*>(this)->GetLiveProcess(pid) != nullptr;
}

ProcStats Kernel::GetProcStats(size_t index) const {
  ProcStats s;
  if (index >= kMaxProcesses) {
    return s;
  }
  const Process& p = processes_[index];
  // Snap (not the raw getters) so the still-open attribution span is included:
  // `prof` from inside a syscall sees service time up to this very cycle.
  CycleAccounting::Snapshot snap = trace_.accounting().Snap(mcu_->CyclesNow());
  s.user_cycles = snap.user[index];
  s.service_cycles = snap.service[index];
  s.syscalls = p.syscall_count;
  s.upcalls = p.upcalls_delivered;
  s.grant_high_water = trace_.grant_high_water(index);
  s.upcall_queue_max = trace_.upcall_queue_max(index);
  s.restarts = p.restart_count;
  s.context_switches = p.context_switches;
  s.timeslice_expirations = p.timeslice_expirations;
  s.priority = p.priority;
  s.queue_level = p.queue_level;
  return s;
}

size_t Kernel::NumLiveProcesses() const {
  size_t n = 0;
  for (const Process& p : processes_) {
    if (p.id.IsValid() && p.IsAlive()) {
      ++n;
    }
  }
  return n;
}

// ---- Memory translation --------------------------------------------------------------

uint8_t* Kernel::TranslateRam(uint32_t addr) {
  uint8_t* p = mcu_->bus().RamWritePtr(addr, 1);
  assert(p != nullptr);
  return p;
}

const uint8_t* Kernel::TranslateMem(uint32_t addr) {
  const uint8_t* p = mcu_->bus().MemReadPtr(addr, 1);
  assert(p != nullptr);
  return p;
}

// ---- Grants ---------------------------------------------------------------------------

uint32_t Kernel::GrantEnterResolve(ProcessId pid, unsigned grant_id, uint32_t size,
                                   uint32_t align, bool* first_time) {
  Process* p = GetLiveProcess(pid);
  if (p == nullptr || grant_id >= Process::kMaxGrants) {
    return 0;
  }
  uint32_t addr = p->grant_ptrs[grant_id];
  if (addr == 0) {
    if (fault_injector_ != nullptr && fault_injector_->ShouldFailGrantAlloc(p->id.index)) {
      return 0;  // injected quota exhaustion: indistinguishable from the real one
    }
    addr = p->AllocateGrantMemory(size, align);
    if (addr == 0) {
      return 0;  // this process exhausted its own quota; nobody else affected
    }
    p->grant_ptrs[grant_id] = addr;
    trace_.RecordGrantAlloc(mcu_->CyclesNow(), p->id.index, size, p->grant_bytes_live);
    *first_time = true;
  } else {
    *first_time = false;
  }
  return addr;
}

// ---- Deferred calls -------------------------------------------------------------------

int Kernel::RegisterDeferredCall(DeferredCallClient* client) {
  assert(num_deferred_ < kMaxDeferredCalls);
  deferred_[num_deferred_] = DeferredEntry{client, false};
  return static_cast<int>(num_deferred_++);
}

void Kernel::SetDeferredCall(int handle) {
  if (handle >= 0 && static_cast<size_t>(handle) < num_deferred_) {
    deferred_[handle].pending = true;
  }
}

bool Kernel::RunDeferredCalls() {
  bool any = false;
  for (size_t i = 0; i < num_deferred_; ++i) {
    if (deferred_[i].pending) {
      deferred_[i].pending = false;
      any = true;
      trace_.RecordDeferredCall(mcu_->CyclesNow(), static_cast<uint32_t>(i));
      deferred_[i].client->HandleDeferredCall();
    }
  }
  return any;
}

// ---- Interrupt servicing --------------------------------------------------------------

void Kernel::ServiceInterrupts() {
  // Bottom halves run here, in the main loop, never in interrupt context (§2.5).
  while (auto line = mcu_->irq().NextPending()) {
    mcu_->Tick(CycleCosts::kInterruptEntry);
    if (*line == kSysTickIrqLine) {
      systick_->DisarmAndClear();
      mcu_->irq().Complete(*line);
      continue;
    }
    if (InterruptService* handler = irq_handlers_[*line]) {
      trace_.RecordIrqDispatch(mcu_->CyclesNow(), *line);
      handler->HandleInterrupt(*line);
    }
    mcu_->irq().Complete(*line);
  }
}

// ---- Upcalls ----------------------------------------------------------------------------

Result<void> Kernel::ScheduleUpcall(ProcessId pid, uint32_t driver, uint32_t sub,
                                    uint32_t arg0, uint32_t arg1, uint32_t arg2) {
  Process* p = GetLiveProcess(pid);
  if (p == nullptr) {
    return Result<void>(ErrorCode::kInvalid);
  }
  QueuedUpcall upcall{driver, sub, {arg0, arg1, arg2}};
  // Latency origin: the IRQ being serviced when a hardware bottom half scheduled
  // this, else the scheduling point itself (kernel/trace.h).
  upcall.origin_cycle = trace_.UpcallOrigin(mcu_->CyclesNow());

  // A process parked in yield-wait-for (or a blocking command) consumes the upcall
  // directly: the values are written into its registers and no handler runs (§3.2).
  if (p->state == ProcessState::kYieldedFor && p->wait_driver == driver &&
      p->wait_sub == sub) {
    DeliverDirectReturn(*p, upcall);
    p->state = ProcessState::kRunnable;
    return Result<void>::Ok();
  }

  // Queue even without a live subscription: a later yield-wait-for may consume the
  // entry as a direct return value (Tock's ReturnValue task). Entries whose
  // subscription is null at *delivery* time are dropped then.
  if (!p->upcall_queue.Push(upcall)) {
    // Make room by evicting entries that could only ever be dropped (their
    // subscription is currently null), then retry once.
    size_t evicted = p->upcall_queue.RemoveIf([&](const QueuedUpcall& u) {
      SubscribeSlot* slot = p->FindSubscribe(u.driver, u.sub_num);
      return slot == nullptr || slot->fn == 0;
    });
    trace_.RecordUpcallsScrubbed(mcu_->CyclesNow(), p->id.index, evicted);
    if (!p->upcall_queue.Push(upcall)) {
      trace_.RecordUpcallDropped(mcu_->CyclesNow(), p->id.index);
      return Result<void>(ErrorCode::kNoMem);
    }
  }
  trace_.RecordUpcallQueued(mcu_->CyclesNow(), p->id.index, driver);
  trace_.NoteUpcallQueueDepth(p->id.index, p->upcall_queue.Size());
  return Result<void>::Ok();
}

bool Kernel::TryDeliverQueuedUpcall(Process& p) {
  while (auto upcall = p.upcall_queue.Pop()) {
    SubscribeSlot* slot = p.FindSubscribe(upcall->driver, upcall->sub_num);
    if (slot == nullptr || slot->fn == 0) {
      // Subscription swapped out after queueing.
      trace_.RecordUpcallDropped(mcu_->CyclesNow(), p.id.index);
      continue;
    }
    InvokeUpcallHandler(p, *upcall, slot->fn, slot->userdata);
    return true;
  }
  return false;
}

void Kernel::InvokeUpcallHandler(Process& p, const QueuedUpcall& upcall, uint32_t fn,
                                 uint32_t userdata) {
  if (p.saved_contexts.IsFull()) {
    // Upcall nesting deeper than the architecture supports: treat as a process
    // error, as real Tock would overflow the process stack. No VM fault is involved,
    // so the recorded cause is empty.
    FaultProcess(p, VmFault{});
    return;
  }
  p.saved_contexts.PushBack(p.ctx);
  p.ctx.x[Reg::kA0] = upcall.args[0];
  p.ctx.x[Reg::kA1] = upcall.args[1];
  p.ctx.x[Reg::kA2] = upcall.args[2];
  p.ctx.x[Reg::kA3] = userdata;
  p.ctx.x[Reg::kRa] = Cpu::kUpcallReturnAddr;
  p.ctx.pc = fn;
  ++p.upcalls_delivered;
  trace_.RecordUpcallDelivered(mcu_->CyclesNow(), p.id.index, upcall.driver,
                               upcall.origin_cycle);
  mcu_->Tick(CycleCosts::kUpcallInvoke);
}

void Kernel::DeliverDirectReturn(Process& p, const QueuedUpcall& upcall) {
  SyscallReturn::Success3U32(upcall.args[0], upcall.args[1], upcall.args[2]).WriteTo(p.ctx);
  p.blocking_command_wait = false;
  ++p.upcalls_delivered;
  trace_.RecordUpcallDelivered(mcu_->CyclesNow(), p.id.index, upcall.driver,
                               upcall.origin_cycle);
}

// ---- Scheduler --------------------------------------------------------------------------

// Decide → run → report: the one place the kernel touches the policy layer. The
// schedulability predicate (HasDeliverableWork) lives in kernel/scheduler.h now, as
// part of the contract every policy must honor.
bool Kernel::RunOneProcess(uint64_t deadline_cycles) {
  SchedulingDecision decision = scheduler_->Next(mcu_->CyclesNow());
  if (decision.process == nullptr) {
    return false;
  }
  Process& p = *decision.process;
  trace_.RecordScheduleDecision(p.id.index);
  StoppedReason reason = ExecuteProcess(p, deadline_cycles, decision.timeslice_cycles);
  scheduler_->ExecutionComplete(p, reason, mcu_->CyclesNow());
  return true;
}

void Kernel::ConfigureMpuFor(const Process& p) {
  // Region 0: the app's flash image, read/execute. Region 1: its accessible RAM.
  mcu_->mpu().ConfigureRegion(0, MpuRegionConfig{p.flash_start, p.flash_size,
                                                 /*read=*/true, /*write=*/false,
                                                 /*execute=*/true, /*enabled=*/true});
  mcu_->mpu().ConfigureRegion(1, MpuRegionConfig{p.ram_start, p.app_break - p.ram_start,
                                                 /*read=*/true, /*write=*/true,
                                                 /*execute=*/false, /*enabled=*/true});
  trace_.RecordMpuReprogram(mcu_->CyclesNow(), p.id.index);
  mcu_->Tick(2 * CycleCosts::kMpuRegionConfig);
}

void Kernel::InitProcessContext(Process& p) {
  p.ctx = CpuContext{};
  p.ctx.pc = p.entry_point;
  p.ctx.x[Reg::kSp] = p.app_break & ~0xFu;  // stack grows down from the break
  p.ctx.x[Reg::kA0] = p.ram_start;
  p.ctx.x[Reg::kA1] = p.app_break - p.ram_start;
  p.ctx.x[Reg::kA2] = p.flash_start;
  p.ctx.x[Reg::kA3] = p.flash_size;
}

uint64_t Kernel::BackoffDelay(const Process& p) const {
  // Exponential: base for the first restart, doubling each subsequent one, capped.
  // restart_count has already been incremented for the restart being scheduled.
  uint64_t base = p.fault_policy.backoff_base_cycles;
  if (base == 0) {
    base = 1;  // zero-cycle events starve the clock; always move time forward
  }
  uint32_t exponent = p.restart_count > 0 ? p.restart_count - 1 : 0;
  if (exponent > 32) {
    exponent = 32;
  }
  uint64_t delay = base << exponent;
  uint64_t cap = p.fault_policy.backoff_cap_cycles;
  if (cap != 0 && delay > cap) {
    delay = cap;
  }
  return delay;
}

void Kernel::FaultProcess(Process& p, const VmFault& fault) {
  uint64_t now = mcu_->CyclesNow();
  p.fault_info = ProcessFaultInfo{fault, now};
  trace_.RecordProcessFault(now, p.id.index, FaultCauseArg(fault));

  bool restart = p.fault_policy.action == FaultAction::kRestart &&
                 p.restart_count < p.fault_policy.max_restarts;
  ReleaseVmCache(p);
  if (!restart) {
    p.state = ProcessState::kFaulted;
    if (p.fault_policy.action == FaultAction::kPanic) {
      panicked_ = true;  // the main loop halts, as a kernel panic would on hardware
    }
    return;
  }

  // Restart policy with budget left. All dynamic kernel state (grants, allows,
  // subscriptions, queued upcalls) is reclaimed *now*, at death (§2.4); only the
  // revival is deferred, so a crash loop pays its backoff out of its own time.
  ++p.restart_count;
  ProcessFaultInfo diagnostics = p.fault_info;
  trace_.RecordGrantFree(now, p.id.index, p.grant_regions_live, p.grant_bytes_live);
  trace_.ClearProcessProfile(p.id.index);
  // Zero the reclaimed grant region (dead memory), releasing its private pages.
  mcu_->bus().ResetRam(p.grant_break, p.ram_start + p.ram_size - p.grant_break);
  p.ResetForRestart();            // bumps the generation: stale ProcessIds go dead
  p.fault_info = diagnostics;     // keep the cause visible while restart-pending
  p.state = ProcessState::kRestartPending;
  if (mpu_configured_for_ == p.id.index) {
    mpu_configured_for_ = 0xFF;  // the break moved; force an MPU reprogram at revive
  }

  ProcessId reborn = p.id;  // post-bump identity the revival must still match
  p.restart_due_cycle = now + BackoffDelay(p);
  p.restart_event_id = mcu_->clock().ScheduleAt(
      p.restart_due_cycle, [this, reborn] { ReviveProcess(reborn); });
}

void Kernel::ReviveProcess(ProcessId pid) {
  if (pid.index >= kMaxProcesses) {
    return;
  }
  Process& p = processes_[pid.index];
  if (!p.id.IsValid() || p.id.generation != pid.generation ||
      p.state != ProcessState::kRestartPending) {
    return;  // stopped, force-restarted, or reloaded while the backoff ran
  }
  p.restart_event_id = 0;
  p.restart_due_cycle = 0;
  p.SetBreak(p.initial_break);
  InitProcessContext(p);
  p.state = ProcessState::kRunnable;
  trace_.RecordProcessRestart(mcu_->CyclesNow(), p.id.index);
  // A sleeping main loop only wakes for interrupts, not bare clock events; nudge the
  // kernel-owned SysTick line so the revived process is scheduled promptly.
  mcu_->irq().Raise(kSysTickIrqLine);
}

void Kernel::ReleaseVmCache(Process& p) {
  if (!p.decode_cache.IsConfigured()) {
    return;  // never dispatched (or already released): nothing allocated
  }
  // Settle the gauge before Release() frees the backing vectors, and fold the
  // blocks that die with the tables into the invalidation counter so every
  // built block is eventually accounted as dropped.
  trace_.RecordVmCacheBytes(-static_cast<int64_t>(p.decode_cache.MemoryBytes()));
  trace_.RecordVmBlocksInvalidated(p.decode_cache.Release());
}

// ---- Process execution --------------------------------------------------------------

StoppedReason Kernel::ExecuteProcess(Process& p, uint64_t deadline_cycles,
                                     std::optional<uint32_t> timeslice_cycles) {
  // Everything in here belongs to this process: its own instructions run under
  // kUser; kernel work on its behalf (switch-in, upcall delivery, syscall service)
  // runs under nested kService scopes.
  AcctScope user_scope(trace_, *mcu_, CycleBucket::kUser, p.id.index);

  if (p.state == ProcessState::kUnstarted) {
    InitProcessContext(p);
    p.state = ProcessState::kRunnable;
  } else if (p.state == ProcessState::kYielded) {
    AcctScope service_scope(trace_, *mcu_, CycleBucket::kService, p.id.index);
    if (!TryDeliverQueuedUpcall(p)) {
      return StoppedReason::kBlocked;  // every queued upcall had been scrubbed
    }
    p.state = ProcessState::kRunnable;
  }

  if (mpu_configured_for_ != p.id.index) {
    AcctScope service_scope(trace_, *mcu_, CycleBucket::kService, p.id.index);
    ConfigureMpuFor(p);
    mpu_configured_for_ = p.id.index;
    mcu_->Tick(CycleCosts::kContextSwitch);
    ++p.context_switches;
    trace_.RecordContextSwitch(mcu_->CyclesNow(), p.id.index);
  }

  // Safe to bind the predecoded cache only now: MPU region 0 maps exactly this
  // process's flash window read+execute (ConfigureMpuFor), which is the fast path's
  // license to skip the per-fetch execute check (vm/decode.h). The tables allocate
  // lazily here, on the process's first dispatch — not at CreateProcess — so slots
  // that never run cost nothing; ReleaseVmCache frees them at every life-end.
  if (config_.enable_decode_cache && !p.decode_cache.IsConfigured()) {
    p.decode_cache.Configure(p.flash_start, p.flash_size, config_.enable_superblocks);
    trace_.RecordVmCacheBytes(static_cast<int64_t>(p.decode_cache.MemoryBytes()));
  }
  cpu_.set_decode_cache(config_.enable_decode_cache ? &p.decode_cache : nullptr);

  // An absent timeslice is the cooperative contract: ArmCycles(0) schedules
  // nothing, so the process runs until it blocks or other hardware interrupts.
  systick_->ArmCycles(timeslice_cycles.value_or(0));

  // Hoisted out of the per-instruction loop: at -O0 (the default Debug presets)
  // each accessor chain is a real call sequence, and this loop runs once per
  // simulated instruction. Same checks, same order — only the host-side lookup
  // cost moves.
  const InterruptController& irq = mcu_->irq();
  const SimClock& clock = mcu_->clock();
  const bool threaded = config_.enable_threaded_dispatch;
  const bool superblocks = config_.enable_superblocks;

  // Batched block-boundary accounting (the batch engine below) folds the
  // per-instruction Tick into one Tick(executed) at the batch boundary. That is
  // bit-identical to per-insn ticking only because one VM instruction costs
  // exactly one cycle: a batch of k instructions advances the clock by k either
  // way, and the batch budget never crosses a pending clock event.
  static_assert(CycleCosts::kVmInstruction == 1,
                "batched accounting folds k instructions into Tick(k); a non-unit "
                "instruction cost would need a multiply and a re-derived budget");
  // Cap so the uint32 budget/executed arithmetic in RunBatch can't overflow even
  // with a far-future deadline and an idle event queue.
  constexpr uint64_t kMaxBatchInsns = 1u << 20;

  while (true) {
    if (irq.AnyPending()) {
      bool expired = systick_->Expired();
      if (expired) {
        ++p.timeslice_expirations;
      }
      systick_->DisarmAndClear();
      return expired ? StoppedReason::kTimesliceExpired : StoppedReason::kPreempted;
    }
    if (clock.Now() >= deadline_cycles) {
      systick_->DisarmAndClear();
      return StoppedReason::kDeadline;  // only reachable with preemption disabled
    }

    StepResult result;
    if (threaded &&
        (fault_injector_ == nullptr || fault_injector_->armed_cpu_faults() == 0)) {
      // Budget = instructions until the next observable point: the run-deadline
      // or the earliest scheduled clock event (conservative lower bound — a
      // lazily-cancelled event only shortens the batch). No event can fire
      // strictly inside the batch, so deferring the Tick to the boundary leaves
      // every event firing at the same cycle as per-insn ticking. An overdue
      // event (NextEventAt <= now) degrades to budget 1: it fires after one
      // instruction, exactly like the per-insn loop.
      uint64_t now = clock.Now();
      uint64_t horizon = clock.NextEventAt();
      if (horizon > deadline_cycles) {
        horizon = deadline_cycles;
      }
      uint64_t budget = horizon > now ? horizon - now : 1;
      uint32_t max_insns =
          budget > kMaxBatchInsns ? static_cast<uint32_t>(kMaxBatchInsns)
                                  : static_cast<uint32_t>(budget);
      Cpu::BatchResult batch = cpu_.RunBatch(p.ctx, max_insns, superblocks);
      mcu_->Tick(batch.executed);
      if (batch.blocks_built != 0 || batch.chain_hits != 0) {
        trace_.RecordVmBlocks(batch.blocks_built, batch.chain_hits);
      }
      if (batch.status == StepResult::kOk) {
        continue;  // budget exhausted; re-check irq/deadline like every boundary
      }
      result = batch.status;
    } else {
      // Per-insn reference engine: runtime-disabled threading, or a fault
      // injector with armed CPU faults (OnInstruction must see every pc).
      if (fault_injector_ != nullptr) {
        if (auto injected = fault_injector_->OnInstruction(p.id.index, p.ctx.pc)) {
          FaultProcess(p, *injected);
          systick_->DisarmAndClear();
          return StoppedReason::kExited;
        }
      }
      result = cpu_.Step(p.ctx);
      mcu_->Tick(CycleCosts::kVmInstruction);
    }

    switch (result) {
      case StepResult::kOk:
        continue;
      case StepResult::kEcall: {
        ++p.syscall_count;
        uint64_t trap_entry = mcu_->CyclesNow();
        trace_.RecordSyscall(trap_entry, p.id.index, p.ctx.x[Reg::kA4]);
        bool keep_running;
        {
          AcctScope service_scope(trace_, *mcu_, CycleBucket::kService, p.id.index);
          mcu_->Tick(CycleCosts::kSyscallEntry);
          keep_running = HandleSyscall(p);
          mcu_->Tick(CycleCosts::kSyscallExit);
        }
        trace_.RecordSyscallLatency(mcu_->CyclesNow() - trap_entry);
        if (!keep_running) {
          systick_->DisarmAndClear();
          // A yield-block (or an exit-restart that left the slot runnable again)
          // gave the CPU up voluntarily; a terminal exit or a mid-command fault
          // did not. MLFQ only demotes involuntary quantum burns, so the
          // distinction matters.
          return p.IsAlive() ? StoppedReason::kBlocked : StoppedReason::kExited;
        }
        continue;
      }
      case StepResult::kUpcallReturn: {
        if (p.saved_contexts.IsEmpty()) {
          // Stray jump to the upcall-return magic address.
          FaultProcess(p, VmFault{});
          systick_->DisarmAndClear();
          return StoppedReason::kExited;
        }
        p.ctx = p.saved_contexts.PopBack();
        // The interrupted yield resumes reporting "an upcall ran".
        p.ctx.x[Reg::kA0] = 1;
        continue;
      }
      case StepResult::kEbreak:
      case StepResult::kFault:
        FaultProcess(p, cpu_.fault());
        systick_->DisarmAndClear();
        return StoppedReason::kExited;
    }
  }
}

// ---- System call dispatch --------------------------------------------------------------

bool Kernel::HandleSyscall(Process& p) {
  Syscall call = Syscall::Decode(p.ctx);
  switch (call.klass) {
    case SyscallClass::kYield:
      return HandleYield(p, call);

    case SyscallClass::kSubscribe:
      HandleSubscribe(p, call).WriteTo(p.ctx);
      return true;

    case SyscallClass::kCommand: {
      SyscallDriver* driver = LookupDriver(call.args[0]);
      if (driver == nullptr) {
        SyscallReturn::Failure(ErrorCode::kNoDevice).WriteTo(p.ctx);
        return true;
      }
      uint32_t generation_before = p.id.generation;
      trace_.NoteCommandIssued(p.id.index, call.args[0], mcu_->CyclesNow());
      SyscallReturn ret = driver->Command(p.id, call.args[1], call.args[2], call.args[3]);
      // A privileged driver may have stopped or restarted the caller mid-command; in
      // either case the old register context is gone and must not be written.
      if (p.id.generation != generation_before || p.state != ProcessState::kRunnable) {
        return false;
      }
      ret.WriteTo(p.ctx);
      return true;
    }

    case SyscallClass::kReadWriteAllow:
      HandleAllow(p, call, /*read_only=*/false).WriteTo(p.ctx);
      return true;

    case SyscallClass::kReadOnlyAllow:
      HandleAllow(p, call, /*read_only=*/true).WriteTo(p.ctx);
      return true;

    case SyscallClass::kMemop:
      HandleMemop(p, call).WriteTo(p.ctx);
      return true;

    case SyscallClass::kExit: {
      ReleaseVmCache(p);  // both variants end this life; the tables die with it
      if (static_cast<ExitVariant>(call.args[0]) == ExitVariant::kRestart) {
        ++p.restart_count;
        trace_.RecordGrantFree(mcu_->CyclesNow(), p.id.index, p.grant_regions_live,
                               p.grant_bytes_live);
        trace_.ClearProcessProfile(p.id.index);
        // Zero the reclaimed grant region (dead memory), releasing its pages.
        mcu_->bus().ResetRam(p.grant_break,
                             p.ram_start + p.ram_size - p.grant_break);
        p.ResetForRestart();
        p.SetBreak(p.initial_break);
        InitProcessContext(p);
        p.state = ProcessState::kRunnable;
        if (mpu_configured_for_ == p.id.index) {
          mpu_configured_for_ = 0xFF;  // the break moved; force an MPU reprogram
        }
        trace_.RecordProcessRestart(mcu_->CyclesNow(), p.id.index);
      } else {
        p.completion_code = call.args[1];
        p.state = ProcessState::kTerminated;
        trace_.RecordProcessExit(mcu_->CyclesNow(), p.id.index, p.completion_code);
      }
      return false;
    }

    case SyscallClass::kBlockingCommand:
      if (!config_.enable_blocking_command) {
        SyscallReturn::Failure(ErrorCode::kNoSupport).WriteTo(p.ctx);
        return true;
      }
      return HandleBlockingCommand(p, call);
  }
  SyscallReturn::Failure(ErrorCode::kNoSupport).WriteTo(p.ctx);
  return true;
}

SyscallReturn Kernel::HandleSubscribe(Process& p, const Syscall& call) {
  uint32_t driver_num = call.args[0];
  uint32_t sub_num = call.args[1];
  uint32_t fn = call.args[2];
  uint32_t userdata = call.args[3];

  SyscallDriver* driver = LookupDriver(driver_num);
  if (driver == nullptr) {
    return SyscallReturn::Failure2U32(ErrorCode::kNoDevice, fn, userdata);
  }
  Result<void> veto = driver->Subscribe(p.id, sub_num);
  if (!veto.ok()) {
    return SyscallReturn::Failure2U32(veto.error(), fn, userdata);
  }
  SubscribeSlot* slot = p.FindOrCreateSubscribe(driver_num, sub_num);
  if (slot == nullptr) {
    return SyscallReturn::Failure2U32(ErrorCode::kNoMem, fn, userdata);
  }

  // Swapping semantics (§3.3.2): the previous upcall is returned to userspace, and
  // queued deliveries of it are scrubbed so the old function can never fire again.
  uint32_t old_fn = slot->fn;
  uint32_t old_userdata = slot->userdata;
  slot->fn = fn;
  slot->userdata = userdata;
  size_t scrubbed = p.ScrubUpcalls(driver_num, sub_num);
  trace_.RecordUpcallsScrubbed(mcu_->CyclesNow(), p.id.index, scrubbed);
  return SyscallReturn::Success2U32(old_fn, old_userdata);
}

SyscallReturn Kernel::HandleAllow(Process& p, const Syscall& call, bool read_only) {
  uint32_t driver_num = call.args[0];
  uint32_t allow_num = call.args[1];
  uint32_t addr = call.args[2];
  uint32_t len = call.args[3];

  SyscallDriver* driver = LookupDriver(driver_num);
  if (driver == nullptr) {
    return SyscallReturn::Failure2U32(ErrorCode::kNoDevice, addr, len);
  }

  // Validate the buffer. Zero-length allows are always legal regardless of address:
  // this is the "un-allow" idiom. §5.1.2's lesson is encoded here — the kernel
  // accepts the arbitrary user pointer but *stores* it only as an opaque (addr, len)
  // pair; it never materializes a zero-length host reference from it.
  if (len > 0) {
    bool valid = read_only ? (p.InAccessibleRam(addr, len) || p.InOwnFlash(addr, len))
                           : p.InAccessibleRam(addr, len);
    if (!valid) {
      return SyscallReturn::Failure2U32(ErrorCode::kInvalid, addr, len);
    }
  }

  if (config_.abi == SyscallAbiVersion::kV1) {
    // Original semantics: hand the raw buffer to the capsule, which owns it from now
    // on (unsound; kept for experiment E6).
    Result<void> res = driver->LegacyAllowV1(p.id, allow_num, addr, len);
    if (!res.ok()) {
      return SyscallReturn::Failure2U32(res.error(), addr, len);
    }
    return SyscallReturn::Success2U32(0, 0);
  }

  // E7: optional runtime overlap rejection (the design §5.1.1 weighs and discards).
  if (!read_only && config_.check_allow_overlap && len > 0) {
    for (const AllowSlot& slot : p.allow_slots) {
      if (slot.in_use && !slot.read_only && slot.len > 0 &&
          !(slot.driver == driver_num && slot.allow_num == allow_num) &&
          addr < slot.addr + slot.len && slot.addr < addr + len) {
        return SyscallReturn::Failure2U32(ErrorCode::kInvalid, addr, len);
      }
    }
  }

  Result<void> veto = read_only ? driver->AllowReadOnly(p.id, allow_num, len)
                                : driver->AllowReadWrite(p.id, allow_num, len);
  if (!veto.ok()) {
    return SyscallReturn::Failure2U32(veto.error(), addr, len);
  }

  AllowSlot* slot = p.FindOrCreateAllow(driver_num, allow_num, read_only);
  if (slot == nullptr) {
    return SyscallReturn::Failure2U32(ErrorCode::kNoMem, addr, len);
  }
  uint32_t old_addr = slot->addr;
  uint32_t old_len = slot->len;
  slot->addr = addr;
  slot->len = len;
  return SyscallReturn::Success2U32(old_addr, old_len);
}

SyscallReturn Kernel::HandleMemop(Process& p, const Syscall& call) {
  switch (static_cast<MemopOp>(call.args[0])) {
    case MemopOp::kBrk:
      if (!p.SetBreak(call.args[1])) {
        return SyscallReturn::Failure(ErrorCode::kNoMem);
      }
      ConfigureMpuFor(p);  // the accessible-RAM region follows the break
      return SyscallReturn::Success();
    case MemopOp::kSbrk: {
      uint32_t old_break = p.app_break;
      if (!p.SetBreak(p.app_break + call.args[1])) {
        return SyscallReturn::Failure(ErrorCode::kNoMem);
      }
      ConfigureMpuFor(p);
      return SyscallReturn::SuccessU32(old_break);
    }
    case MemopOp::kFlashStart:
      return SyscallReturn::SuccessU32(p.flash_start);
    case MemopOp::kFlashEnd:
      return SyscallReturn::SuccessU32(p.flash_start + p.flash_size);
    case MemopOp::kRamStart:
      return SyscallReturn::SuccessU32(p.ram_start);
    case MemopOp::kRamEnd:
      return SyscallReturn::SuccessU32(p.app_break);
  }
  return SyscallReturn::Failure(ErrorCode::kNoSupport);
}

bool Kernel::HandleYield(Process& p, const Syscall& call) {
  switch (static_cast<YieldVariant>(call.args[0])) {
    case YieldVariant::kNoWait: {
      if (TryDeliverQueuedUpcall(p)) {
        return true;  // handler frame installed; a0=1 written on upcall return
      }
      p.ctx.x[Reg::kA0] = 0;  // no upcall ran
      return true;
    }
    case YieldVariant::kWait: {
      if (TryDeliverQueuedUpcall(p)) {
        return true;
      }
      p.state = ProcessState::kYielded;
      return false;
    }
    case YieldVariant::kWaitFor: {
      uint32_t driver = call.args[1];
      uint32_t sub = call.args[2];
      // Consume a matching queued upcall if one already arrived. RemoveFirstIf stops
      // at the first hit instead of compacting the whole queue, and an empty queue
      // (the common case: the completion has not fired yet) costs nothing.
      if (auto matched = p.upcall_queue.RemoveFirstIf([&](const QueuedUpcall& u) {
            return u.driver == driver && u.sub_num == sub;
          })) {
        DeliverDirectReturn(p, *matched);
        return true;
      }
      p.state = ProcessState::kYieldedFor;
      p.wait_driver = driver;
      p.wait_sub = sub;
      return false;
    }
  }
  p.ctx.x[Reg::kA0] = 0;
  return true;
}

bool Kernel::HandleBlockingCommand(Process& p, const Syscall& call) {
  // Ti50-fork semantics (§3.2): driver in a0, command in a1, argument in a2, and the
  // completion subscribe number in a3. One trap replaces the
  // subscribe/command/yield/unsubscribe sequence.
  uint32_t driver_num = call.args[0];
  SyscallDriver* driver = LookupDriver(driver_num);
  if (driver == nullptr) {
    SyscallReturn::Failure(ErrorCode::kNoDevice).WriteTo(p.ctx);
    return true;
  }
  trace_.NoteCommandIssued(p.id.index, driver_num, mcu_->CyclesNow());
  SyscallReturn started = driver->Command(p.id, call.args[1], call.args[2], 0);
  if (static_cast<uint32_t>(started.variant) < static_cast<uint32_t>(ReturnVariant::kSuccess)) {
    started.WriteTo(p.ctx);  // command failed synchronously
    return true;
  }

  // Nearly every blocking command parks: the completion upcall arrives later, via
  // ScheduleUpcall's direct-return path. The old code still walked and recompacted
  // the entire upcall queue here on every command; RemoveFirstIf makes the no-match
  // case (usually an empty queue) free and stops at the first hit otherwise.
  uint32_t sub = call.args[3];
  if (auto matched = p.upcall_queue.RemoveFirstIf([&](const QueuedUpcall& u) {
        return u.driver == driver_num && u.sub_num == sub;
      })) {
    DeliverDirectReturn(p, *matched);
    return true;
  }
  p.state = ProcessState::kYieldedFor;
  p.wait_driver = driver_num;
  p.wait_sub = sub;
  p.blocking_command_wait = true;
  return false;
}

// ---- Main loop ---------------------------------------------------------------------------

bool Kernel::MainLoopStep(const MainLoopCapability& cap, uint64_t deadline_cycles) {
  (void)cap;
  if (panicked_) {
    return false;  // a Panic-policy process faulted: the kernel has halted
  }
  // Attribution anchors at the first loop step (boot cost stays outside the
  // conservation window); the ambient bucket between scopes is kKernel, so
  // main-loop glue and inter-step board activity stay accounted for.
  trace_.accounting().Begin(mcu_->CyclesNow());
  // Host-only gauge: what the paged backing store currently has materialized.
  trace_.SetMemResident(mcu_->bus().resident_bytes());

  {
    AcctScope irq_scope(trace_, *mcu_, CycleBucket::kIrq);
    ServiceInterrupts();
  }
  bool deferred_ran;
  {
    AcctScope capsule_scope(trace_, *mcu_, CycleBucket::kCapsule);
    deferred_ran = RunDeferredCalls();
  }

  if (RunOneProcess(deadline_cycles)) {
    return true;
  }
  if (deferred_ran || mcu_->irq().AnyPending()) {
    return true;
  }

  // Nothing to do: sleep until the next hardware event (§2.5), without overshooting
  // the caller's deadline.
  uint64_t slept;
  {
    AcctScope idle_scope(trace_, *mcu_, CycleBucket::kIdle);
    slept = mcu_->SleepUntilInterrupt(deadline_cycles);
  }
  trace_.RecordSleep(mcu_->CyclesNow(), slept);
  return !mcu_->wedged();
}

void Kernel::MainLoop(uint64_t deadline_cycles, const MainLoopCapability& cap) {
  while (mcu_->CyclesNow() < deadline_cycles) {
    if (!MainLoopStep(cap, deadline_cycles)) {
      return;  // wedged: no runnable process and no future hardware event
    }
  }
}

bool Kernel::IsQuiescedUntil(uint64_t deadline_cycles) {
  if (panicked_ || mcu_->CyclesNow() >= deadline_cycles) {
    return false;
  }
  if (mcu_->irq().AnyPending()) {
    return false;
  }
  for (size_t i = 0; i < num_deferred_; ++i) {
    if (deferred_[i].pending) {
      return false;
    }
  }
  for (const Process& p : processes_) {
    if (IsSchedulable(p)) {
      return false;
    }
  }
  // The next hardware event (alarms, restart backoffs, in-flight radio frames —
  // everything is a clock event) must lie at or past the deadline, and must
  // exist: a board with *no* future event would wedge under stepping, and the
  // skip path must not hide that from fleet supervision.
  const uint64_t next = mcu_->clock().NextEventAt();
  return next >= deadline_cycles && next != UINT64_MAX;
}

bool Kernel::TryIdleFastForward(uint64_t deadline_cycles, const MainLoopCapability& cap) {
  (void)cap;
  if (!IsQuiescedUntil(deadline_cycles)) {
    return false;
  }
  // Replicate the one idle pass a stepped MainLoop would have made, byte for
  // byte: anchor the attribution window, give the policy its time observation
  // (the MLFQ boost clock advances in Next() even with nothing schedulable),
  // then sleep to the deadline under the idle bucket and record it. The
  // interrupt/deferred scopes of a real pass are provably invisible here — no
  // work means zero-delta scopes, which flush nothing.
  const uint64_t now = mcu_->CyclesNow();
  trace_.accounting().Begin(now);
  trace_.SetMemResident(mcu_->bus().resident_bytes());
  scheduler_->ObserveIdle(now);
  uint64_t slept;
  {
    AcctScope idle_scope(trace_, *mcu_, CycleBucket::kIdle);
    slept = mcu_->SleepUntilInterrupt(deadline_cycles);
  }
  trace_.RecordSleep(mcu_->CyclesNow(), slept);
  trace_.RecordIdleSkip();
  return true;
}

}  // namespace tock
