// ERA: 2
// The pluggable scheduler layer (§2.3). The Tock 2.0 redesign turned scheduling
// from a loop hardcoded in the kernel into a board-selectable component: the kernel
// main loop asks the scheduler *which* process to run and *how long* its quantum
// is, runs it, and reports back *why* it stopped. Policy lives entirely behind this
// interface; mechanism (context switching, MPU, SysTick arming, fault handling)
// stays in kernel.cc.
//
// Everything here is heapless: schedulers look directly at the kernel's fixed
// process table through a span and keep only O(1) or O(kMaxProcesses) state of
// their own. All four implementations (kernel/sched/) are cycle-deterministic —
// identical runs make identical decisions — which is what keeps the golden-trace
// tests meaningful under the default policy.
#ifndef TOCK_KERNEL_SCHEDULER_H_
#define TOCK_KERNEL_SCHEDULER_H_

#include <cstdint>
#include <optional>
#include <span>

#include "kernel/config.h"
#include "kernel/process.h"

namespace tock {

// What the kernel's execution of a process ended with. The scheduler uses this to
// update its own bookkeeping (e.g. MLFQ demotes on kTimesliceExpired); the kernel
// reports it truthfully and otherwise does not care.
enum class StoppedReason : uint8_t {
  kBlocked,           // yielded-wait/-for with nothing deliverable, or stayed yielded
  kExited,            // the process exited or faulted; its slot is no longer runnable
  kTimesliceExpired,  // the SysTick quantum fired (preemption)
  kPreempted,         // stopped early for other pending hardware interrupts
  kDeadline,          // the simulation deadline passed (simulator artifact, ignored)
};

// One scheduling decision: run `process` for `timeslice_cycles`, or — when the
// timeslice is absent — cooperatively, with the SysTick disarmed, until the process
// blocks of its own accord.
struct SchedulingDecision {
  Process* process = nullptr;
  std::optional<uint32_t> timeslice_cycles;
};

// The schedulability predicate every policy must honor: only a created slot that is
// unstarted, runnable, or yielded with a deliverable upcall may be picked. Faulted,
// restart-pending, and terminated processes are never schedulable (the regression
// test in tests/scheduler_test.cc holds all policies to this).
inline bool HasDeliverableWork(const Process& p) {
  switch (p.state) {
    case ProcessState::kUnstarted:
    case ProcessState::kRunnable:
      return true;
    case ProcessState::kYielded:
      return !p.upcall_queue.IsEmpty();
    default:
      return false;
  }
}

inline bool IsSchedulable(const Process& p) {
  return p.id.IsValid() && HasDeliverableWork(p);
}

class Scheduler {
 public:
  Scheduler(std::span<Process> processes, const KernelConfig& config)
      : processes_(processes), config_(&config) {}
  virtual ~Scheduler() = default;
  Scheduler(const Scheduler&) = delete;
  Scheduler& operator=(const Scheduler&) = delete;

  virtual SchedulerPolicy policy() const = 0;

  // Picks the next process to run at cycle `now`, or {nullptr} when nothing is
  // schedulable. Called once per main-loop step, after interrupts and deferred
  // calls have been serviced.
  virtual SchedulingDecision Next(uint64_t now) = 0;

  // Feedback after the decided process ran: why it stopped and when. Default: the
  // policy does not care (round-robin, cooperative, strict priority).
  virtual void ExecutionComplete(Process& p, StoppedReason reason, uint64_t now) {
    (void)p;
    (void)reason;
    (void)now;
  }

  // Notifies the policy of a main-loop pass at cycle `now` where nothing was
  // schedulable, *without* asking for a decision. The idle fast-forward path
  // (Kernel::TryIdleFastForward) calls this exactly where Next() would have run,
  // so time-anchored bookkeeping (the MLFQ boost clock) stays bit-identical
  // whether an idle stretch is stepped or skipped. Default: stateless when idle
  // (round-robin, cooperative, strict priority — their Next() is pure when it
  // returns no decision).
  virtual void ObserveIdle(uint64_t now) { (void)now; }

 protected:
  std::span<Process> processes_;
  const KernelConfig* config_;
};

const char* StoppedReasonName(StoppedReason reason);
// Parses a policy name as printed by SchedulerPolicyName ("round-robin",
// "cooperative", "priority", "mlfq"). Used by SimBoard's TOCK_SCHED_POLICY
// environment override so scripts/check_matrix.sh can sweep the test suite across
// policies without touching board code.
bool SchedulerPolicyFromName(const char* name, SchedulerPolicy* out);

}  // namespace tock

#endif  // TOCK_KERNEL_SCHEDULER_H_
