// ERA: 3
// Tock Binary Format (simplified): the on-flash framing for application images.
//
// Layout of one app slot in flash:
//   [TbfHeader (64 bytes)] [binary (binary_size bytes)] [signature (32 bytes, if
//   signed)] padded so total_size is 8-aligned. Apps are packed back-to-back in the
//   app flash region; a word that fails the magic check terminates the scan.
//
// The signature is an HMAC-SHA256 tag over header+binary under the device key
// (stand-in for the per-image asymmetric signatures of §3.4 — same loader state
// machine, dependency tree we fully control; see DESIGN.md).
#ifndef TOCK_KERNEL_TBF_H_
#define TOCK_KERNEL_TBF_H_

#include <cstdint>
#include <cstring>
#include <string>
#include <vector>

namespace tock {

struct TbfHeader {
  static constexpr uint32_t kMagic = 0x544F434B;  // "TOCK"
  static constexpr uint32_t kVersion = 2;
  static constexpr uint32_t kHeaderSize = 64;
  static constexpr uint32_t kSignatureSize = 32;

  // Flags.
  static constexpr uint32_t kFlagEnabled = 1u << 0;
  static constexpr uint32_t kFlagSigned = 1u << 1;

  uint32_t magic = kMagic;
  uint32_t version = kVersion;
  uint32_t header_size = kHeaderSize;
  uint32_t total_size = 0;    // header + binary + signature, 8-aligned
  uint32_t entry_offset = 0;  // entry point, relative to the header start
  uint32_t min_ram = 4096;    // requested initial app-accessible RAM
  char name[16] = {};
  uint32_t flags = kFlagEnabled;
  uint32_t binary_size = 0;
  uint32_t checksum = 0;  // XOR of all header words with this field zeroed
  uint32_t reserved[3] = {};

  bool IsEnabled() const { return (flags & kFlagEnabled) != 0; }
  bool IsSigned() const { return (flags & kFlagSigned) != 0; }

  // XOR checksum over the 64-byte header with the checksum word zeroed.
  uint32_t ComputeChecksum() const;

  // Structural validity: magic, version, sizes coherent.
  bool StructurallyValid() const;

  std::string Name() const {
    return std::string(name, strnlen(name, sizeof(name)));
  }
};
static_assert(sizeof(TbfHeader) == TbfHeader::kHeaderSize, "TBF header must be 64 bytes");

// Builds a complete TBF image (header + binary [+ signature]) ready to be placed in
// flash. `device_key` (32 bytes) is used when `sign` is set.
std::vector<uint8_t> BuildTbfImage(const std::string& name, const std::vector<uint8_t>& binary,
                                   uint32_t entry_offset, uint32_t min_ram, bool sign,
                                   const uint8_t* device_key);

}  // namespace tock

#endif  // TOCK_KERNEL_TBF_H_
