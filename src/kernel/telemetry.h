// ERA: 8
// Zero-perturbation live telemetry (ROADMAP item 4).
//
// A running board (or a whole fleet) publishes its observability state into a
// shared-memory region that any number of out-of-process readers (tools/tap)
// can follow live. Two channels per board:
//
//   * an event stream: every trace event the kernel records is also pushed
//     into a lossy single-writer ring (util/spsc_ring.h) — the writer never
//     blocks, readers detect exactly how many records they missed;
//   * a state snapshot: the full KernelStats vector, per-process names and
//     ProcStats rows, republished at most every
//     TelemetryConfig::snapshot_period_cycles under a seqlock, so a tap that
//     attaches mid-run gets absolute counters, not just the event tail.
//
// The invariant that names this file: publishing must not perturb the
// simulation. Nothing here arms clock events, sleeps, allocates on the record
// path, or depends on whether a reader exists; all publishing decisions are
// functions of *simulated* cycles, so golden traces and fleet fingerprints
// are bit-identical with telemetry on, off, or compiled out
// (-DTOCK_TELEMETRY=OFF — the TOCK_TRACE idiom).
//
// Every shared word is a std::atomic<uint64_t>: the region is race-free by
// construction, and the TSan matrix leg maps it in-process and hammers it
// from a reader thread to prove it.
#ifndef TOCK_KERNEL_TELEMETRY_H_
#define TOCK_KERNEL_TELEMETRY_H_

#include <array>
#include <atomic>
#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "kernel/cycle_accounting.h"
#include "kernel/trace.h"
#include "util/rate_limiter.h"
#include "util/shm_region.h"
#include "util/spsc_ring.h"

namespace tock {

class Kernel;

// ---- Wire format ----------------------------------------------------------

inline constexpr uint64_t kTelemetryMagic = 0x544F434B54454C45ull;  // "TOCKTELE"
inline constexpr uint64_t kTelemetryLayoutVersion = 1;

// One event record: [cycle][kind | pid<<8 | arg<<32].
inline constexpr uint32_t kTelemetryRecordWords = 2;

inline constexpr size_t kTelemetryProcRows = CycleAccounting::kMaxProcs;
inline constexpr size_t kTelemetryProcNameWords = 2;  // 16 chars, zero-padded
inline constexpr size_t kTelemetryStatWords =
    static_cast<size_t>(StatId::kNumStats);
inline constexpr size_t kTelemetryProcStatWords =
    static_cast<size_t>(ProcStatField::kNumFields);

inline void EncodeTelemetryRecord(const TraceEvent& event, uint64_t words[2]) {
  words[0] = event.cycle;
  words[1] = static_cast<uint64_t>(event.kind) |
             (static_cast<uint64_t>(event.pid) << 8) |
             (static_cast<uint64_t>(event.arg) << 32);
}

inline TraceEvent DecodeTelemetryRecord(const uint64_t words[2]) {
  TraceEvent event;
  event.cycle = words[0];
  event.kind = static_cast<TraceEventKind>(words[1] & 0xFF);
  event.pid = static_cast<uint8_t>(words[1] >> 8);
  event.arg = static_cast<uint32_t>(words[1] >> 32);
  return event;
}

// Region header, at offset 0. Written once by the creator (geometry) except
// boards_attached; readers validate every geometry word against their own
// compiled-in constants before touching a payload byte, so a version- or
// layout-mismatched tap fails closed instead of misparsing.
struct TelemetryShmHeader {
  std::atomic<uint64_t> magic;
  std::atomic<uint64_t> version;
  std::atomic<uint64_t> board_count;
  std::atomic<uint64_t> ring_capacity;  // records per board ring (power of two)
  std::atomic<uint64_t> record_words;
  std::atomic<uint64_t> stat_words;      // KernelStats counters per snapshot
  std::atomic<uint64_t> proc_rows;       // process slots per snapshot
  std::atomic<uint64_t> proc_name_words; // words per process name
  std::atomic<uint64_t> proc_stat_words; // ProcStats fields per row
  std::atomic<uint64_t> block_stride;    // bytes between per-board blocks
  std::atomic<uint64_t> block0_offset;   // byte offset of board 0's block
  std::atomic<uint64_t> boards_attached; // writers that have bound so far
};

// Byte offsets shared by writer and reader. A per-board block is
//   [seqlock snapshot area][64-aligned SpscRing]
// and the snapshot area is, in words:
//   [snap_seq][snap_cycle][stats...][proc names...][proc stat rows...]
struct TelemetryLayout {
  uint64_t board_count = 0;
  uint64_t ring_capacity = 0;

  static constexpr uint64_t Align64(uint64_t bytes) {
    return (bytes + 63) & ~uint64_t{63};
  }
  static constexpr uint64_t SnapshotWords() {
    return 2 + kTelemetryStatWords +
           kTelemetryProcRows * kTelemetryProcNameWords +
           kTelemetryProcRows * kTelemetryProcStatWords;
  }
  static constexpr uint64_t SnapshotBytes() {
    return Align64(SnapshotWords() * sizeof(uint64_t));
  }
  uint64_t RingBytes() const {
    return Align64(SpscRingBytes(ring_capacity, kTelemetryRecordWords));
  }
  uint64_t BlockStride() const { return SnapshotBytes() + RingBytes(); }
  static constexpr uint64_t Block0Offset() {
    return Align64(sizeof(TelemetryShmHeader));
  }
  uint64_t TotalBytes() const {
    return Block0Offset() + board_count * BlockStride();
  }
};

// A decoded snapshot, as the tap renders it.
struct TelemetrySnapshot {
  uint64_t seq = 0;    // publish count (0 = never published)
  uint64_t cycle = 0;  // simulated cycle the snapshot was taken at
  std::array<uint64_t, kTelemetryStatWords> stats{};
  std::array<std::string, kTelemetryProcRows> proc_names;
  std::array<std::array<uint64_t, kTelemetryProcStatWords>, kTelemetryProcRows>
      procs{};
};

// ---- Writer side ----------------------------------------------------------

// The per-board publisher: a TelemetrySink fed from KernelTrace::Push, plus
// the seqlock snapshot writer. Owns no memory — it writes into the block a
// TelemetryRegion carved out for it.
class BoardTelemetry : public TelemetrySink {
 public:
  // Binds to a zeroed per-board block (layout per TelemetryLayout) and
  // formats the ring. `config` supplies snapshot period and storm knobs.
  void Bind(void* block, const TelemetryLayout& layout,
            const TelemetryConfig& config);

  // The kernel whose stats/procs the snapshots mirror. Must outlive this.
  void AttachKernel(const Kernel* kernel) { kernel_ = kernel; }

  bool bound() const { return block_ != nullptr; }

  // TelemetrySink: called inline from the kernel's trace hook. Never blocks;
  // cost is a rate-limiter check plus four atomic stores.
  void OnTraceEvent(const TraceEvent& event, KernelStats& stats) override;

  // Publishes a snapshot now (board teardown, fleet epoch barriers). `cycle`
  // is the board's current simulated time.
  void PublishSnapshot(uint64_t cycle);

  // Period-gated variant for opportunistic call sites (epoch barriers): a
  // no-op until snapshot_period_cycles have passed since the last publish.
  void MaybePublishSnapshot(uint64_t cycle) {
    if (bound() && snapshot_period_ != 0 && cycle >= next_snapshot_cycle_) {
      PublishSnapshot(cycle);
    }
  }

  const RateLimiter& limiter() const { return limiter_; }
  uint64_t events_published() const { return writer_.published(); }

 private:
  void WriteSnapshotPayload(uint64_t cycle);

  uint8_t* block_ = nullptr;
  std::atomic<uint64_t>* snap_ = nullptr;  // snapshot area as atomic words
  SpscWriter writer_;
  RateLimiter limiter_;
  const Kernel* kernel_ = nullptr;
  uint64_t snapshot_period_ = 0;
  uint64_t next_snapshot_cycle_ = 0;
};

// Owns the shm mapping for a board set: creates + formats the region, hands
// each board its BoardTelemetry block. The region file lives for the run and
// is unlinked on destruction unless KeepOnClose() was requested.
class TelemetryRegion {
 public:
  struct Options {
    std::string name;              // shm name, or a path containing '/'
    uint64_t board_count = 1;
    uint64_t ring_capacity = 4096; // records per board; power of two
  };

  bool Create(const Options& options, const TelemetryConfig& config,
              std::string* error);

  size_t board_count() const { return boards_.size(); }
  BoardTelemetry* board(size_t i) {
    return i < boards_.size() ? boards_[i].get() : nullptr;
  }
  const std::string& path() const { return region_.path(); }
  void* base() { return region_.base(); }
  size_t size() const { return region_.size(); }

  // Leave the region file behind after this process exits (tap smoke tests,
  // post-mortem inspection of a finished run).
  void KeepOnClose() { region_.ReleaseOwnership(); }

 private:
  ShmRegion region_;
  TelemetryLayout layout_;
  // unique_ptr: BoardTelemetry addresses are handed to kernels and must
  // survive vector reallocation.
  std::vector<std::unique_ptr<BoardTelemetry>> boards_;
};

// ---- Reader side ----------------------------------------------------------

// Read-only attachment to a telemetry region: out-of-process via shm name
// (tools/tap) or in-process via a raw base pointer (the TSan reader-thread
// test). Validates the header before exposing anything.
class TelemetryTap {
 public:
  // Maps the named region read-only.
  bool Open(const std::string& name, std::string* error);
  // Attaches to an already-mapped region (no ownership).
  bool Attach(const void* base, size_t bytes, std::string* error);

  size_t board_count() const { return readers_.size(); }
  uint64_t boards_attached() const;

  // The per-board event stream (each tap owns its own read cursors).
  SpscReader* events(size_t i) {
    return i < readers_.size() ? &readers_[i] : nullptr;
  }

  // Seqlock read of board i's latest snapshot. Returns false only if the
  // writer kept flipping the lock for the whole retry budget (or i is bad).
  bool ReadSnapshot(size_t i, TelemetrySnapshot* out) const;

 private:
  bool Bind(const void* base, size_t bytes, std::string* error);

  ShmRegion region_;  // only used by Open()
  const TelemetryShmHeader* header_ = nullptr;
  const uint8_t* base_ = nullptr;
  TelemetryLayout layout_;
  std::vector<SpscReader> readers_;

  static constexpr int kSnapshotRetryLimit = 1024;
};

}  // namespace tock

#endif  // TOCK_KERNEL_TELEMETRY_H_
