// ERA: 2
#include "kernel/trace.h"

#include <cinttypes>
#include <cstdio>

namespace tock {

uint64_t& KernelStats::SyscallSlot(SyscallClass klass) {
  switch (klass) {
    case SyscallClass::kYield:
      return syscalls_yield;
    case SyscallClass::kSubscribe:
      return syscalls_subscribe;
    case SyscallClass::kCommand:
      return syscalls_command;
    case SyscallClass::kReadWriteAllow:
      return syscalls_rw_allow;
    case SyscallClass::kReadOnlyAllow:
      return syscalls_ro_allow;
    case SyscallClass::kMemop:
      return syscalls_memop;
    case SyscallClass::kExit:
      return syscalls_exit;
    case SyscallClass::kBlockingCommand:
      return syscalls_blocking_command;
  }
  return syscalls_command;  // unreachable for decoded syscalls
}

void KernelStats::Accumulate(const KernelStats& other) {
  // Every StatId-visible counter, in declaration order. Iterating over StatValue
  // would miss none either, but several ids (SyscallsTotal) are derived — sum the
  // raw fields instead.
  syscalls_yield += other.syscalls_yield;
  syscalls_subscribe += other.syscalls_subscribe;
  syscalls_command += other.syscalls_command;
  syscalls_rw_allow += other.syscalls_rw_allow;
  syscalls_ro_allow += other.syscalls_ro_allow;
  syscalls_memop += other.syscalls_memop;
  syscalls_exit += other.syscalls_exit;
  syscalls_blocking_command += other.syscalls_blocking_command;
  syscalls_unknown += other.syscalls_unknown;
  context_switches += other.context_switches;
  mpu_reprograms += other.mpu_reprograms;
  irq_dispatches += other.irq_dispatches;
  deferred_calls_run += other.deferred_calls_run;
  upcalls_queued += other.upcalls_queued;
  upcalls_delivered += other.upcalls_delivered;
  upcalls_scrubbed += other.upcalls_scrubbed;
  upcalls_dropped += other.upcalls_dropped;
  grant_allocs += other.grant_allocs;
  grant_bytes += other.grant_bytes;
  grant_frees += other.grant_frees;
  grant_bytes_freed += other.grant_bytes_freed;
  sleep_cycles += other.sleep_cycles;
  sleep_entries += other.sleep_entries;
  sleep_arg_saturations += other.sleep_arg_saturations;
  process_faults += other.process_faults;
  process_restarts += other.process_restarts;
  process_exits += other.process_exits;
  telemetry_events_emitted += other.telemetry_events_emitted;
  telemetry_events_dropped += other.telemetry_events_dropped;
  telemetry_suppressed += other.telemetry_suppressed;
  vm_blocks_built += other.vm_blocks_built;
  vm_blocks_invalidated += other.vm_blocks_invalidated;
  vm_block_chain_hits += other.vm_block_chain_hits;
  vm_cache_bytes += other.vm_cache_bytes;
  mem_resident_bytes += other.mem_resident_bytes;
  fleet_idle_skips += other.fleet_idle_skips;
}

uint64_t StatValue(const KernelStats& stats, StatId id) {
  switch (id) {
    case StatId::kSyscallsTotal:
      return stats.SyscallsTotal();
    case StatId::kSyscallsYield:
      return stats.syscalls_yield;
    case StatId::kSyscallsSubscribe:
      return stats.syscalls_subscribe;
    case StatId::kSyscallsCommand:
      return stats.syscalls_command;
    case StatId::kSyscallsRwAllow:
      return stats.syscalls_rw_allow;
    case StatId::kSyscallsRoAllow:
      return stats.syscalls_ro_allow;
    case StatId::kSyscallsMemop:
      return stats.syscalls_memop;
    case StatId::kSyscallsExit:
      return stats.syscalls_exit;
    case StatId::kSyscallsBlockingCommand:
      return stats.syscalls_blocking_command;
    case StatId::kContextSwitches:
      return stats.context_switches;
    case StatId::kMpuReprograms:
      return stats.mpu_reprograms;
    case StatId::kIrqDispatches:
      return stats.irq_dispatches;
    case StatId::kDeferredCallsRun:
      return stats.deferred_calls_run;
    case StatId::kUpcallsQueued:
      return stats.upcalls_queued;
    case StatId::kUpcallsDelivered:
      return stats.upcalls_delivered;
    case StatId::kUpcallsScrubbed:
      return stats.upcalls_scrubbed;
    case StatId::kUpcallsDropped:
      return stats.upcalls_dropped;
    case StatId::kGrantAllocs:
      return stats.grant_allocs;
    case StatId::kGrantBytes:
      return stats.grant_bytes;
    case StatId::kSleepCycles:
      return stats.sleep_cycles;
    case StatId::kSleepEntries:
      return stats.sleep_entries;
    case StatId::kProcessFaults:
      return stats.process_faults;
    case StatId::kProcessRestarts:
      return stats.process_restarts;
    case StatId::kProcessExits:
      return stats.process_exits;
    case StatId::kSyscallsUnknown:
      return stats.syscalls_unknown;
    case StatId::kGrantFrees:
      return stats.grant_frees;
    case StatId::kGrantBytesFreed:
      return stats.grant_bytes_freed;
    case StatId::kSleepArgSaturations:
      return stats.sleep_arg_saturations;
    case StatId::kTelemetryEventsEmitted:
      return stats.telemetry_events_emitted;
    case StatId::kTelemetryEventsDropped:
      return stats.telemetry_events_dropped;
    case StatId::kTelemetrySuppressed:
      return stats.telemetry_suppressed;
    case StatId::kVmBlocksBuilt:
      return stats.vm_blocks_built;
    case StatId::kVmBlocksInvalidated:
      return stats.vm_blocks_invalidated;
    case StatId::kVmBlockChainHits:
      return stats.vm_block_chain_hits;
    case StatId::kVmCacheBytes:
      return stats.vm_cache_bytes;
    case StatId::kMemResidentBytes:
      return stats.mem_resident_bytes;
    case StatId::kFleetIdleSkips:
      return stats.fleet_idle_skips;
    case StatId::kNumStats:
      break;
  }
  return 0;
}

const char* StatName(StatId id) {
  switch (id) {
    case StatId::kSyscallsTotal:
      return "syscalls.total";
    case StatId::kSyscallsYield:
      return "syscalls.yield";
    case StatId::kSyscallsSubscribe:
      return "syscalls.subscribe";
    case StatId::kSyscallsCommand:
      return "syscalls.command";
    case StatId::kSyscallsRwAllow:
      return "syscalls.rw_allow";
    case StatId::kSyscallsRoAllow:
      return "syscalls.ro_allow";
    case StatId::kSyscallsMemop:
      return "syscalls.memop";
    case StatId::kSyscallsExit:
      return "syscalls.exit";
    case StatId::kSyscallsBlockingCommand:
      return "syscalls.blocking_command";
    case StatId::kContextSwitches:
      return "sched.context_switches";
    case StatId::kMpuReprograms:
      return "sched.mpu_reprograms";
    case StatId::kIrqDispatches:
      return "irq.dispatches";
    case StatId::kDeferredCallsRun:
      return "deferred.calls_run";
    case StatId::kUpcallsQueued:
      return "upcalls.queued";
    case StatId::kUpcallsDelivered:
      return "upcalls.delivered";
    case StatId::kUpcallsScrubbed:
      return "upcalls.scrubbed";
    case StatId::kUpcallsDropped:
      return "upcalls.dropped";
    case StatId::kGrantAllocs:
      return "grants.allocs";
    case StatId::kGrantBytes:
      return "grants.bytes";
    case StatId::kSleepCycles:
      return "sleep.cycles";
    case StatId::kSleepEntries:
      return "sleep.entries";
    case StatId::kProcessFaults:
      return "process.faults";
    case StatId::kProcessRestarts:
      return "process.restarts";
    case StatId::kProcessExits:
      return "process.exits";
    case StatId::kSyscallsUnknown:
      return "syscalls.unknown";
    case StatId::kGrantFrees:
      return "grants.frees";
    case StatId::kGrantBytesFreed:
      return "grants.bytes_freed";
    case StatId::kSleepArgSaturations:
      return "sleep.arg_saturations";
    case StatId::kTelemetryEventsEmitted:
      return "telemetry.events_emitted";
    case StatId::kTelemetryEventsDropped:
      return "telemetry.events_dropped";
    case StatId::kTelemetrySuppressed:
      return "telemetry.suppressed";
    case StatId::kVmBlocksBuilt:
      return "vm.blocks_built";
    case StatId::kVmBlocksInvalidated:
      return "vm.blocks_invalidated";
    case StatId::kVmBlockChainHits:
      return "vm.block_chain_hits";
    case StatId::kVmCacheBytes:
      return "vm.cache_bytes";
    case StatId::kMemResidentBytes:
      return "mem.resident_bytes";
    case StatId::kFleetIdleSkips:
      return "fleet.idle_skips";
    case StatId::kNumStats:
      break;
  }
  return "?";
}

bool StatIsTelemetryTransport(StatId id) {
  switch (id) {
    case StatId::kTelemetryEventsEmitted:
    case StatId::kTelemetryEventsDropped:
    case StatId::kTelemetrySuppressed:
      return true;
    default:
      return false;
  }
}

bool StatIsHostOnly(StatId id) {
  switch (id) {
    case StatId::kVmBlocksBuilt:
    case StatId::kVmBlocksInvalidated:
    case StatId::kVmBlockChainHits:
    case StatId::kVmCacheBytes:
    // Fleet scale-out gauges: resident memory differs across paging on/off legs
    // and idle skips across idle-skip on/off legs, all simulated-state identical.
    case StatId::kMemResidentBytes:
    case StatId::kFleetIdleSkips:
      return true;
    default:
      return StatIsTelemetryTransport(id);
  }
}

uint32_t FaultCauseArg(const VmFault& fault) {
  uint32_t arg = static_cast<uint32_t>(fault.kind);
  if (fault.kind == VmFault::Kind::kBus) {
    arg |= static_cast<uint32_t>(fault.bus_fault.kind) << 8;
  }
  return arg;
}

const char* FaultCauseName(uint32_t cause_arg) {
  switch (static_cast<VmFault::Kind>(cause_arg & 0xFF)) {
    case VmFault::Kind::kNone:
      return "none";
    case VmFault::Kind::kIllegalInstruction:
      return "illegal-instruction";
    case VmFault::Kind::kMisalignedJump:
      return "misaligned-jump";
    case VmFault::Kind::kBus:
      switch (static_cast<BusFaultKind>((cause_arg >> 8) & 0xFF)) {
        case BusFaultKind::kNone:
          return "bus";
        case BusFaultKind::kUnmapped:
          return "bus-unmapped";
        case BusFaultKind::kMpuViolation:
          return "mpu-violation";
        case BusFaultKind::kFlashWrite:
          return "bus-flash-write";
        case BusFaultKind::kUnalignedMmio:
          return "bus-unaligned-mmio";
      }
      return "bus";
  }
  return "?";
}

const char* TraceEventKindName(TraceEventKind kind) {
  switch (kind) {
    case TraceEventKind::kSyscall:
      return "syscall";
    case TraceEventKind::kContextSwitch:
      return "ctxswitch";
    case TraceEventKind::kMpuReprogram:
      return "mpu";
    case TraceEventKind::kIrqDispatch:
      return "irq";
    case TraceEventKind::kDeferredCall:
      return "deferred";
    case TraceEventKind::kUpcallQueued:
      return "upq";
    case TraceEventKind::kUpcallDelivered:
      return "updeliver";
    case TraceEventKind::kUpcallScrubbed:
      return "upscrub";
    case TraceEventKind::kUpcallDropped:
      return "updrop";
    case TraceEventKind::kGrantAlloc:
      return "grant";
    case TraceEventKind::kSleep:
      return "sleep";
    case TraceEventKind::kProcessFault:
      return "fault";
    case TraceEventKind::kProcessRestart:
      return "restart";
    case TraceEventKind::kProcessExit:
      return "exit";
    case TraceEventKind::kGrantFree:
      return "grantfree";
  }
  return "?";
}

const char* CycleBucketName(CycleBucket bucket) {
  switch (bucket) {
    case CycleBucket::kKernel:
      return "kernel";
    case CycleBucket::kUser:
      return "user";
    case CycleBucket::kService:
      return "service";
    case CycleBucket::kCapsule:
      return "deferred";
    case CycleBucket::kIrq:
      return "irq";
    case CycleBucket::kIdle:
      return "idle";
  }
  return "?";
}

uint64_t ProcStatValue(const ProcStats& stats, ProcStatField field) {
  switch (field) {
    case ProcStatField::kUserCycles:
      return stats.user_cycles;
    case ProcStatField::kServiceCycles:
      return stats.service_cycles;
    case ProcStatField::kSyscalls:
      return stats.syscalls;
    case ProcStatField::kUpcalls:
      return stats.upcalls;
    case ProcStatField::kGrantHighWater:
      return stats.grant_high_water;
    case ProcStatField::kUpcallQueueMax:
      return stats.upcall_queue_max;
    case ProcStatField::kRestarts:
      return stats.restarts;
    case ProcStatField::kContextSwitches:
      return stats.context_switches;
    case ProcStatField::kTimesliceExpirations:
      return stats.timeslice_expirations;
    case ProcStatField::kPriority:
      return stats.priority;
    case ProcStatField::kQueueLevel:
      return stats.queue_level;
    case ProcStatField::kNumFields:
      break;
  }
  return 0;
}

const char* ProcStatName(ProcStatField field) {
  switch (field) {
    case ProcStatField::kUserCycles:
      return "user_cycles";
    case ProcStatField::kServiceCycles:
      return "service_cycles";
    case ProcStatField::kSyscalls:
      return "syscalls";
    case ProcStatField::kUpcalls:
      return "upcalls";
    case ProcStatField::kGrantHighWater:
      return "grant_high_water";
    case ProcStatField::kUpcallQueueMax:
      return "upcall_queue_max";
    case ProcStatField::kRestarts:
      return "restarts";
    case ProcStatField::kContextSwitches:
      return "context_switches";
    case ProcStatField::kTimesliceExpirations:
      return "timeslice_expirations";
    case ProcStatField::kPriority:
      return "priority";
    case ProcStatField::kQueueLevel:
      return "queue_level";
    case ProcStatField::kNumFields:
      break;
  }
  return "?";
}

void KernelTrace::DumpStats(std::string& out) const {
  char line[96];
  out += "==== kernel stats ====\n";
  for (uint32_t i = 0; i < static_cast<uint32_t>(StatId::kNumStats); ++i) {
    StatId id = static_cast<StatId>(i);
    if (StatIsHostOnly(id)) {
      continue;  // host-side bookkeeping (telemetry transport, vm engine); keeps
                 // the dump golden-identical across telemetry and engine configs
    }
    std::snprintf(line, sizeof(line), "%-26s %" PRIu64 "\n", StatName(id),
                  StatValue(stats_, id));
    out += line;
  }
}

void DumpLog2Hist(const Log2Hist& hist, const char* name, std::string& out) {
  char buf[96];
  std::snprintf(buf, sizeof(buf), "%-10s n=%" PRIu64 " min=%" PRIu64 " max=%" PRIu64
                " mean=%" PRIu64 "\n",
                name, hist.count(), hist.min(), hist.max(), hist.Mean());
  out += buf;
  if (hist.count() == 0) {
    return;
  }
  for (size_t i = 0; i < Log2Hist::kBuckets; ++i) {
    if (hist.bucket(i) == 0) {
      continue;
    }
    if (i == Log2Hist::kBuckets - 1) {
      std::snprintf(buf, sizeof(buf), "  [2^%zu,     inf) %" PRIu64 "\n", i,
                    hist.bucket(i));
    } else {
      std::snprintf(buf, sizeof(buf), "  [2^%-2zu, 2^%-2zu) %" PRIu64 "\n", i, i + 1,
                    hist.bucket(i));
    }
    out += buf;
  }
}

void KernelTrace::DumpHists(std::string& out) const {
  out += "==== latency histograms (cycles) ====\n";
  DumpLog2Hist(hist_syscall_, "syscall", out);
  DumpLog2Hist(hist_irq_upcall_, "irq2up", out);
  DumpLog2Hist(hist_roundtrip_, "roundtrip", out);
}

void KernelTrace::DumpTrace(std::string& out) const {
  char line[96];
  std::snprintf(line, sizeof(line),
                "==== trace (%zu events retained, %" PRIu64 " evicted) ====\n",
                ring_.Size(), ring_.Evicted());
  out += line;
  ring_.ForEach([&](const TraceEvent& e) {
    if (e.pid == kNoPid) {
      std::snprintf(line, sizeof(line), "[%10" PRIu64 "] %-10s pid=-  arg=%u\n", e.cycle,
                    TraceEventKindName(e.kind), e.arg);
    } else {
      std::snprintf(line, sizeof(line), "[%10" PRIu64 "] %-10s pid=%u  arg=%u\n", e.cycle,
                    TraceEventKindName(e.kind), e.pid, e.arg);
    }
    out += line;
  });
}

}  // namespace tock
