// ERA: 6
// Deterministic fault-injection harness (robustness evaluation, CompartOS-style).
//
// The paper's central claim is mutual distrust: a misbehaving process must not
// degrade its peers (§2.3) and all of its dynamic kernel state must be reclaimable
// on death (§2.4). Claims like that rot unless they are exercised mechanically, so
// this injector gives tests a seeded, cycle-deterministic way to make processes
// misbehave on purpose:
//
//   * CPU faults: synthesize an MPU violation or illegal instruction at the Nth
//     instruction a chosen process executes (consulted by the kernel's execute
//     loop, one armed-table probe per retired instruction when armed).
//   * Loader corruption: flip a chosen bit of a TBF header (fails the §3.4
//     integrity step) or of the signature footer (fails the authenticity step).
//   * Grant pressure: force the next N grant allocations of a process to fail as
//     if its quota were exhausted.
//   * IRQ storms: raise an interrupt line on a fixed cycle period, via the MCU
//     clock, to stress the bottom-half dispatch path.
//
// Everything is driven off simulated cycles and a splitmix64 PRNG, so a campaign
// seed fully determines the injection schedule — tests reconcile KernelStats
// fault/restart counters against the injector's own audit counters exactly.
#ifndef TOCK_KERNEL_FAULT_INJECTOR_H_
#define TOCK_KERNEL_FAULT_INJECTOR_H_

#include <cstdint>
#include <optional>

#include "hw/mcu.h"
#include "util/static_vec.h"
#include "vm/cpu.h"

namespace tock {

class FaultInjector {
 public:
  static constexpr size_t kMaxArmed = 16;
  static constexpr uint8_t kAnyProcess = 0xFF;

  explicit FaultInjector(uint64_t seed = 0) : prng_state_(seed) {}

  // --- Seeded determinism ---------------------------------------------------------
  // splitmix64: cheap, well-distributed, and identical on every platform.
  uint64_t NextRandom() {
    uint64_t z = (prng_state_ += 0x9E3779B97F4A7C15ull);
    z = (z ^ (z >> 30)) * 0xBF58476D1CE4E5B9ull;
    z = (z ^ (z >> 27)) * 0x94D049BB133111EBull;
    return z ^ (z >> 31);
  }
  // Uniform in [lo, hi] (inclusive). Modulo bias is irrelevant at these ranges.
  uint64_t RandomInRange(uint64_t lo, uint64_t hi) {
    return hi <= lo ? lo : lo + NextRandom() % (hi - lo + 1);
  }

  // --- CPU-side injection ---------------------------------------------------------
  // Arms a synthesized fault for process slot `pid_index` (or kAnyProcess) after it
  // executes `after_instructions` more instructions. Silently dropped when the
  // armed table is full (tests arm a handful at most).
  void ArmCpuFault(uint8_t pid_index, uint64_t after_instructions, VmFault::Kind kind) {
    if (!armed_.IsFull()) {
      armed_.PushBack(ArmedCpuFault{pid_index, after_instructions, kind});
    }
  }

  // Consulted by the kernel before each instruction of process `pid_index`. Returns
  // the fault to synthesize, populated as the real fault path would populate it.
  std::optional<VmFault> OnInstruction(uint8_t pid_index, uint32_t pc) {
    if (armed_.IsEmpty()) {
      return std::nullopt;
    }
    for (size_t i = 0; i < armed_.Size(); ++i) {
      ArmedCpuFault& armed = armed_[i];
      if (armed.pid_index != kAnyProcess && armed.pid_index != pid_index) {
        continue;
      }
      if (armed.countdown > 0) {
        --armed.countdown;
        continue;
      }
      VmFault fault;
      fault.kind = armed.kind;
      fault.pc = pc;
      if (armed.kind == VmFault::Kind::kBus) {
        // Mimic what an out-of-window store produces on the real bus.
        fault.detail = pc;
        fault.bus_fault = BusFault{BusFaultKind::kMpuViolation, pc, AccessType::kWrite};
      } else {
        fault.detail = 0;  // an all-zero word is an illegal RV32 instruction
      }
      armed_.Erase(i);
      ++cpu_faults_injected_;
      return fault;
    }
    return std::nullopt;
  }

  // --- Grant-allocation pressure ---------------------------------------------------
  // The next `count` first-time grant allocations by `pid_index` (or any process)
  // fail as if the owner's quota were exhausted.
  void FailNextGrantAllocs(uint8_t pid_index, uint32_t count) {
    grant_fail_pid_ = pid_index;
    grant_fail_remaining_ = count;
  }
  bool ShouldFailGrantAlloc(uint8_t pid_index) {
    if (grant_fail_remaining_ == 0 ||
        (grant_fail_pid_ != kAnyProcess && grant_fail_pid_ != pid_index)) {
      return false;
    }
    --grant_fail_remaining_;
    ++grant_failures_injected_;
    return true;
  }

  // --- Loader-side flash corruption (§3.4 integrity vs. authenticity) ---------------
  // Flips bit `bit_index` of the TBF header at `header_addr`. Bits 0..31 are the
  // magic word — flipping those makes the loader treat the slot as end-of-list
  // rather than reject it, so callers probing the *integrity* step should pass
  // bit_index >= 32. Returns false if flash I/O fails.
  static bool FlipHeaderBit(Mcu* mcu, uint32_t header_addr, uint32_t bit_index);
  // Flips bit `bit_index` (0..255) of the 32-byte signature footer of the signed
  // image at `header_addr` — the *authenticity* step must then reject the image.
  static bool FlipSignatureBit(Mcu* mcu, uint32_t header_addr, uint32_t bit_index);

  // --- IRQ storm -------------------------------------------------------------------
  // Raises `line` every `period_cycles`, `count` times, scheduled on the MCU clock.
  void StartIrqStorm(Mcu* mcu, unsigned line, uint64_t period_cycles, uint32_t count);

  // --- Audit counters (what actually fired, for schedule/counter reconciliation) ----
  uint32_t cpu_faults_injected() const { return cpu_faults_injected_; }
  uint32_t grant_failures_injected() const { return grant_failures_injected_; }
  uint32_t irqs_injected() const { return irqs_injected_; }
  size_t armed_cpu_faults() const { return armed_.Size(); }

 private:
  struct ArmedCpuFault {
    uint8_t pid_index = kAnyProcess;
    uint64_t countdown = 0;
    VmFault::Kind kind = VmFault::Kind::kBus;
  };

  uint64_t prng_state_;
  StaticVec<ArmedCpuFault, kMaxArmed> armed_;
  uint8_t grant_fail_pid_ = kAnyProcess;
  uint32_t grant_fail_remaining_ = 0;
  uint32_t cpu_faults_injected_ = 0;
  uint32_t grant_failures_injected_ = 0;
  uint32_t irqs_injected_ = 0;
};

}  // namespace tock

#endif  // TOCK_KERNEL_FAULT_INJECTOR_H_
