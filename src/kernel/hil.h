// ERA: 1
// Hardware Interface Layer (HIL) traits: the narrow, hardware-agnostic, split-phase
// interfaces through which capsules and virtualizers reach hardware (§2.2, §4.1).
//
// Every long-running operation follows Tock's split-phase convention (§4.2): a
// `Start`-style method takes ownership of a SubSliceMut (the caller's TakeCell is
// emptied), and the completion callback returns the same buffer. A start method that
// fails must hand the buffer straight back — mirrored from Tock's
// `Result<(), (ErrorCode, &'static mut [u8])>` — via BufResult: nullopt means the
// operation started and the buffer is now owned by the callee until the completion
// callback.
#ifndef TOCK_KERNEL_HIL_H_
#define TOCK_KERNEL_HIL_H_

#include <cstdint>
#include <optional>

#include "util/error.h"
#include "util/subslice.h"

namespace tock::hil {

// Failure to start a split-phase operation: the error plus the returned buffer.
struct BufFailure {
  ErrorCode error;
  SubSliceMut buffer;
};

// nullopt = started; engaged = failed, buffer returned to the caller synchronously.
using BufResult = std::optional<BufFailure>;

inline BufResult Started() { return std::nullopt; }
inline BufResult Refused(ErrorCode error, SubSliceMut buffer) {
  return BufFailure{error, buffer};
}

// ---------------------------------------------------------------------------------
// Time (hil::time in upstream Tock). 32-bit tick domain with wraparound arithmetic.

class AlarmClient {
 public:
  virtual ~AlarmClient() = default;
  virtual void AlarmFired() = 0;
};

class Alarm {
 public:
  virtual ~Alarm() = default;
  virtual uint32_t Now() = 0;
  // Fires when the counter reaches reference + dt (wrapping). Re-arming replaces any
  // previously set alarm.
  virtual void SetAlarm(uint32_t reference, uint32_t dt) = 0;
  virtual uint32_t GetAlarm() = 0;  // currently armed expiration tick
  virtual void Disarm() = 0;
  virtual bool IsArmed() = 0;
  virtual void SetClient(AlarmClient* client) = 0;

  // Wrapping "has the window (reference, reference+dt] passed by `now`" helper the
  // virtual-alarm mux relies on (§5.4's subtle-logic-bug territory).
  static bool Expired(uint32_t now, uint32_t reference, uint32_t dt) {
    return now - reference >= dt;
  }
};

// ---------------------------------------------------------------------------------
// UART.

class UartTransmitClient {
 public:
  virtual ~UartTransmitClient() = default;
  virtual void TransmitComplete(SubSliceMut buffer, Result<void> result) = 0;
};

class UartTransmit {
 public:
  virtual ~UartTransmit() = default;
  // Sends the buffer's active window.
  virtual BufResult Transmit(SubSliceMut buffer) = 0;
  virtual void SetTransmitClient(UartTransmitClient* client) = 0;
};

class UartReceiveClient {
 public:
  virtual ~UartReceiveClient() = default;
  virtual void ReceiveComplete(SubSliceMut buffer, uint32_t received, Result<void> result) = 0;
};

class UartReceive {
 public:
  virtual ~UartReceive() = default;
  // Fills the buffer's active window completely, then calls back.
  virtual BufResult Receive(SubSliceMut buffer) = 0;
  virtual void SetReceiveClient(UartReceiveClient* client) = 0;
};

// ---------------------------------------------------------------------------------
// GPIO / LEDs.

class GpioInterruptClient {
 public:
  virtual ~GpioInterruptClient() = default;
  virtual void PinInterrupt(unsigned pin, bool level) = 0;
};

enum class GpioEdge { kRising, kFalling, kBoth };

class GpioController {
 public:
  virtual ~GpioController() = default;
  virtual void MakeOutput(unsigned pin) = 0;
  virtual void MakeInput(unsigned pin) = 0;
  virtual void SetPin(unsigned pin, bool level) = 0;
  virtual bool ReadPin(unsigned pin) = 0;
  virtual void EnableInterrupt(unsigned pin, GpioEdge edge) = 0;
  virtual void DisableInterrupt(unsigned pin) = 0;
  virtual void SetInterruptClient(GpioInterruptClient* client) = 0;
  virtual unsigned NumPins() = 0;
};

// ---------------------------------------------------------------------------------
// Entropy.

class RngClient {
 public:
  virtual ~RngClient() = default;
  virtual void RandomReady(uint32_t value) = 0;
};

class RngSource {
 public:
  virtual ~RngSource() = default;
  virtual Result<void> FetchRandom() = 0;
  virtual void SetRngClient(RngClient* client) = 0;
};

// ---------------------------------------------------------------------------------
// Temperature.

class TemperatureClient {
 public:
  virtual ~TemperatureClient() = default;
  virtual void TemperatureReady(int32_t centi_celsius) = 0;
};

class TemperatureSensor {
 public:
  virtual ~TemperatureSensor() = default;
  virtual Result<void> SampleTemperature() = 0;
  virtual void SetTemperatureClient(TemperatureClient* client) = 0;
};

// ---------------------------------------------------------------------------------
// Digest engines (SHA-256 / HMAC-SHA256), mirroring hil::digest.

class DigestClient {
 public:
  virtual ~DigestClient() = default;
  // `data` is the input buffer being returned; `digest` the 32-byte result buffer.
  virtual void DigestDone(SubSliceMut data, SubSliceMut digest, Result<void> result) = 0;
};

class DigestEngine {
 public:
  virtual ~DigestEngine() = default;
  // Hashes `data` (or MACs it when a key is set), writing 32 bytes into `digest`.
  // On refusal both buffers come back in the BufFailure (data) and via
  // `digest_on_failure` (out-param keeps the common case clean).
  virtual BufResult ComputeDigest(SubSliceMut data, SubSliceMut digest,
                                  SubSliceMut* digest_on_failure) = 0;
  // Switches to HMAC with the given 32-byte key; empty key returns to plain SHA-256.
  virtual Result<void> SetHmacKey(SubSlice key) = 0;
  virtual void SetDigestClient(DigestClient* client) = 0;
};

// ---------------------------------------------------------------------------------
// AES-128 (CTR/ECB) engines, mirroring hil::symmetric_encryption.

class AesClient {
 public:
  virtual ~AesClient() = default;
  virtual void CryptDone(SubSliceMut buffer, Result<void> result) = 0;
};

enum class AesMode { kEcbEncrypt, kEcbDecrypt, kCtr };

class AesEngine {
 public:
  virtual ~AesEngine() = default;
  virtual Result<void> SetKey(SubSlice key) = 0;  // 16 bytes
  virtual Result<void> SetIv(SubSlice iv) = 0;    // 16 bytes (CTR)
  virtual BufResult Crypt(AesMode mode, SubSliceMut buffer) = 0;  // in place
  virtual void SetAesClient(AesClient* client) = 0;
};

// ---------------------------------------------------------------------------------
// SPI master. The compile-time chip-select polarity composition checks of §4.1 /
// Figure 3 live at the typed driver layer (board/composition.h); this runtime
// interface is what those statically validated stacks execute through.

class SpiClient {
 public:
  virtual ~SpiClient() = default;
  virtual void TransferComplete(SubSliceMut buffer, Result<void> result) = 0;
};

class SpiMaster {
 public:
  virtual ~SpiMaster() = default;
  // Full-duplex, in-place transfer of the buffer's active window on the currently
  // selected chip.
  virtual BufResult Transfer(SubSliceMut buffer) = 0;
  virtual Result<void> SelectChip(unsigned cs_index) = 0;
  virtual void SetSpiClient(SpiClient* client) = 0;
};

// ---------------------------------------------------------------------------------
// Packet radio.

class RadioClient {
 public:
  virtual ~RadioClient() = default;
  virtual void TransmitDone(SubSliceMut buffer, Result<void> result) = 0;
  virtual void PacketReceived(SubSliceMut buffer, uint32_t len) = 0;
};

class PacketRadio {
 public:
  virtual ~PacketRadio() = default;
  virtual BufResult TransmitPacket(uint16_t dst, SubSliceMut buffer) = 0;
  // Hands the radio a receive buffer; PacketReceived returns it with each packet,
  // and the client re-arms by calling StartReceive again.
  virtual BufResult StartReceive(SubSliceMut buffer) = 0;
  virtual void SetRadioClient(RadioClient* client) = 0;
  virtual uint16_t LocalAddress() = 0;
};

// ---------------------------------------------------------------------------------
// Flash storage.

class FlashClient {
 public:
  virtual ~FlashClient() = default;
  virtual void WriteComplete(SubSliceMut buffer, Result<void> result) = 0;
  virtual void EraseComplete(Result<void> result) = 0;
};

class FlashStorage {
 public:
  virtual ~FlashStorage() = default;
  virtual BufResult WriteFlash(uint32_t flash_addr, SubSliceMut buffer) = 0;
  virtual Result<void> ErasePage(uint32_t flash_addr) = 0;
  // Flash reads are synchronous memory reads on this class of hardware.
  virtual Result<void> ReadFlash(uint32_t flash_addr, SubSliceMut buffer) = 0;
  virtual void SetFlashClient(FlashClient* client) = 0;
};

}  // namespace tock::hil

#endif  // TOCK_KERNEL_HIL_H_
