// ERA: 1
// The process control block (§2.3, §2.4).
//
// A process owns: a region of flash holding its (untrusted) binary, a fixed quota of
// RAM, and nothing else. Everything the kernel must remember on its behalf — allow
// slots, subscriptions, queued upcalls, grant allocations — lives either in this
// fixed-size PCB or *inside the process's own RAM quota* (grants), so a greedy or
// malicious process can only ever exhaust itself (§2.4).
#ifndef TOCK_KERNEL_PROCESS_H_
#define TOCK_KERNEL_PROCESS_H_

#include <array>
#include <cstdint>
#include <string>

#include "kernel/config.h"
#include "kernel/syscall.h"
#include "util/ring_buffer.h"
#include "util/static_vec.h"
#include "vm/cpu.h"
#include "vm/decode.h"

namespace tock {

// Identifies a process slot *and* its incarnation. Capsules hold ProcessIds, never
// pointers; the generation check is how the kernel guarantees that state belonging
// to a dead process can never be touched through a stale identifier (the liveness
// check behind every Allow access, §5.1).
struct ProcessId {
  uint8_t index = 0xFF;
  uint32_t generation = 0;

  bool operator==(const ProcessId& other) const = default;
  bool IsValid() const { return index != 0xFF; }
};

enum class ProcessState {
  kUnstarted,       // loaded and verified, not yet run
  kRunnable,        // has work to do (or is mid-timeslice)
  kYielded,         // blocked in yield-wait until any upcall arrives
  kYieldedFor,      // blocked in yield-wait-for / blocking-command on one upcall
  kFaulted,         // faulted terminally (Stop/Panic policy, or restart budget spent)
  kRestartPending,  // faulted under a Restart policy; state already reclaimed, the
                    // revival is scheduled on the MCU clock after a growing backoff
  kTerminated,      // exited (or was stopped); slot reusable after Reset
};

const char* ProcessStateName(ProcessState state);

// One kernel-held allowed-buffer slot (Tock 2.0 swapping semantics, §3.3.2). The
// kernel owns these; capsules only ever see the contents through short-lived spans
// inside closures.
struct AllowSlot {
  bool in_use = false;
  bool read_only = false;
  uint32_t driver = 0;
  uint32_t allow_num = 0;
  uint32_t addr = 0;
  uint32_t len = 0;
};

// One kernel-held subscription slot.
struct SubscribeSlot {
  bool in_use = false;
  uint32_t driver = 0;
  uint32_t sub_num = 0;
  uint32_t fn = 0;        // 0 = the null upcall
  uint32_t userdata = 0;
};

// A queued upcall: function pointer resolved at delivery time from the subscription
// table, so re-subscribing scrubs stale queue entries instead of firing old handlers.
struct QueuedUpcall {
  uint32_t driver = 0;
  uint32_t sub_num = 0;
  uint32_t args[3] = {0, 0, 0};
  // Cycle stamp of the IRQ (or scheduling point) that caused this upcall; the
  // profiling layer uses it for the IRQ-to-delivery latency histogram. 0 = unstamped
  // (e.g. trace disabled).
  uint64_t origin_cycle = 0;
};

struct ProcessFaultInfo {
  VmFault vm_fault;
  uint64_t at_cycle = 0;
};

class Process {
 public:
  static constexpr size_t kMaxAllowSlots = 16;
  static constexpr size_t kMaxSubscribeSlots = 16;
  static constexpr size_t kMaxGrants = 8;
  static constexpr size_t kUpcallQueueDepth = 16;
  static constexpr size_t kMaxUpcallNesting = 4;

  // --- Identity & layout (set by the loader) ---
  ProcessId id;
  std::string name;
  uint32_t flash_start = 0;  // app region in flash (TBF header at this address)
  uint32_t flash_size = 0;
  uint32_t entry_point = 0;  // absolute address of _start
  uint32_t ram_start = 0;    // base of this process's RAM quota
  uint32_t ram_size = 0;     // quota size
  uint32_t app_break = 0;    // [ram_start, app_break) is app-accessible (MPU RW)
  uint32_t grant_break = 0;  // (grant_break, ram_start+ram_size] holds grants
  uint32_t initial_break = 0;  // app_break value at load time (restored on restart)

  // --- Execution state ---
  ProcessState state = ProcessState::kTerminated;
  CpuContext ctx;
  // Predecoded instructions for this process's flash window (vm/decode.h). Sized by
  // the kernel at creation when the decode cache is enabled, left empty otherwise;
  // invalidated on restart and on flash reprogramming that overlaps the window.
  DecodeCache decode_cache;
  StaticVec<CpuContext, kMaxUpcallNesting> saved_contexts;  // upcall nesting stack
  // For kYieldedFor: which upcall unblocks us.
  uint32_t wait_driver = 0;
  uint32_t wait_sub = 0;
  bool blocking_command_wait = false;  // kYieldedFor came from kBlockingCommand
  uint32_t yield_flag_pending = 0;     // a0 to write when a no-wait/wait yield resumes

  // Most recent fault of the *current incarnation chain*: ResetForRestart clears it,
  // and the fault path re-records the fault that ended the previous life so the
  // process console's `faults` command can show why a process is backing off.
  ProcessFaultInfo fault_info;
  uint32_t completion_code = 0;
  uint32_t restart_count = 0;

  // Per-process fault disposition (§2.3). Seeded from the kernel config's default at
  // creation; the board or a privileged capsule may override it per process.
  FaultPolicy fault_policy;

  // --- Scheduler state (kernel/scheduler.h) ---
  // `priority` is configuration, like fault_policy: seeded from
  // SchedulerConfig::default_priority at creation, overridden via the
  // capability-gated Kernel::SetPriority, and deliberately NOT cleared by
  // ResetForRestart — a restarted process keeps the importance its board assigned.
  // queue_level and sched_stamp are incarnation-local policy state (MLFQ demotion
  // level, last-dispatch stamp) and ARE cleared on restart: a revived process starts
  // its next life undemoted, exactly like its fault diagnostics start clean.
  uint8_t priority = 4;
  uint32_t queue_level = 0;
  uint64_t sched_stamp = 0;
  // While kRestartPending: the clock event that will revive us (0 = none) and when.
  uint64_t restart_event_id = 0;
  uint64_t restart_due_cycle = 0;

  // --- Kernel-held syscall state ---
  std::array<AllowSlot, kMaxAllowSlots> allow_slots;
  std::array<SubscribeSlot, kMaxSubscribeSlots> subscribe_slots;
  RingBuffer<QueuedUpcall, kUpcallQueueDepth> upcall_queue;
  std::array<uint32_t, kMaxGrants> grant_ptrs{};  // 0 = not yet allocated

  // --- Statistics (process console / experiments) ---
  uint64_t syscall_count = 0;
  uint64_t upcalls_delivered = 0;
  uint64_t timeslice_expirations = 0;
  uint64_t context_switches = 0;        // times the MPU was switched onto this process
  uint64_t grant_bytes_allocated = 0;   // lifetime total (monotonic across restarts)
  uint64_t grant_bytes_live = 0;        // this incarnation's live grant bytes
  uint32_t grant_regions_live = 0;      // how many grant_ptrs are allocated

  // A restart-pending process is *between lives*: its dynamic kernel state has been
  // reclaimed and its generation bumped, so capsules must treat it as dead until the
  // revival actually happens.
  bool IsAlive() const {
    return state != ProcessState::kTerminated && state != ProcessState::kFaulted &&
           state != ProcessState::kRestartPending;
  }

  // Looks up a slot, returning nullptr when absent.
  AllowSlot* FindAllow(uint32_t driver, uint32_t allow_num, bool read_only);
  SubscribeSlot* FindSubscribe(uint32_t driver, uint32_t sub_num);

  // Removes every queued upcall for (driver, sub_num) — the §3.3.2 scrub that keeps
  // a swapped-out upcall function from ever firing. Returns how many were removed,
  // so the kernel can account for them (kernel/trace.h).
  size_t ScrubUpcalls(uint32_t driver, uint32_t sub_num);

  // Finds-or-creates; returns nullptr when the fixed table is full (the process has
  // hit its own resource bound — no other process is affected).
  AllowSlot* FindOrCreateAllow(uint32_t driver, uint32_t allow_num, bool read_only);
  SubscribeSlot* FindOrCreateSubscribe(uint32_t driver, uint32_t sub_num);

  // Grant bump allocator: carves `size` bytes (aligned) off the top of the RAM quota,
  // growing down toward app_break. Returns 0 on exhaustion.
  uint32_t AllocateGrantMemory(uint32_t size, uint32_t align);

  // memop brk/sbrk support. The break may grow up to the grant break.
  bool SetBreak(uint32_t new_break);

  // True if [addr, addr+len) lies entirely in app-accessible RAM.
  bool InAccessibleRam(uint32_t addr, uint32_t len) const;
  // True if [addr, addr+len) lies in this app's flash region (read-only allows of
  // keys stored in flash, §3.3.3).
  bool InOwnFlash(uint32_t addr, uint32_t len) const;

  // Clears all transient state for restart or reuse (including the previous life's
  // fault record and timeslice-expiration count); bumps the generation.
  void ResetForRestart();
};

}  // namespace tock

#endif  // TOCK_KERNEL_PROCESS_H_
