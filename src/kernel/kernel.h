// ERA: 2
// The Tock kernel core: system call dispatch, the asynchronous main loop, process
// scheduling, interrupt servicing, deferred calls, grants, and the kernel-held
// allow/subscribe machinery of the 2.0 ABI (§2.5, §3.3).
#ifndef TOCK_KERNEL_KERNEL_H_
#define TOCK_KERNEL_KERNEL_H_

#include <array>
#include <cstddef>
#include <cstdint>
#include <optional>
#include <span>
#include <vector>

#include "hw/mcu.h"
#include "hw/timer.h"
#include "kernel/capability.h"
#include "kernel/config.h"
#include "kernel/driver.h"
#include "kernel/process.h"
#include "kernel/sched/cooperative.h"
#include "kernel/sched/mlfq.h"
#include "kernel/sched/priority.h"
#include "kernel/sched/round_robin.h"
#include "kernel/scheduler.h"
#include "kernel/syscall.h"
#include "kernel/trace.h"
#include "util/error.h"
#include "vm/cpu.h"

namespace tock {

class FaultInjector;

// Parameters the loader supplies when creating a process.
struct ProcessCreateInfo {
  std::string name;
  uint32_t flash_start = 0;
  uint32_t flash_size = 0;
  uint32_t entry_point = 0;
  uint32_t min_ram = 4096;  // initial app-accessible size (app break above ram_start)
  // Per-process fault policy; absent means the board-wide default applies.
  std::optional<FaultPolicy> fault_policy;
  // Scheduling priority (0 = highest); absent means SchedulerConfig::default_priority.
  std::optional<uint8_t> priority;
};

class Kernel : public FlashWriteObserver {
 public:
  static constexpr size_t kMaxProcesses = 8;
  static constexpr size_t kMaxDrivers = 24;
  static constexpr size_t kMaxDeferredCalls = 16;

  // RAM reserved at the bottom for the kernel itself (stack/statics on real
  // hardware); process quotas are carved above it.
  static constexpr uint32_t kKernelRamReserve = 32 * 1024;

  Kernel(Mcu* mcu, SysTick* systick, const KernelConfig& config);
  ~Kernel() override;

  const KernelConfig& config() const { return config_; }
  Mcu* mcu() { return mcu_; }

  // ---- Board wiring (trusted initialization) -------------------------------------
  // Registers a syscall driver under `driver_num`. Returns false (registering
  // nothing) on a duplicate number: the old linear table silently shadowed the later
  // registration via scan order, which hid board-wiring bugs.
  bool RegisterDriver(uint32_t driver_num, SyscallDriver* driver);
  void RegisterIrqHandler(unsigned line, InterruptService* service);
  // Allocates one of the per-process grant slots. Requires the memory-allocation
  // capability: only board init may shape the grant layout (§4.4).
  unsigned AllocateGrantId(const MemoryAllocationCapability& cap);

  // ---- Process management (capability-gated, §4.4) -------------------------------
  Process* CreateProcess(const ProcessCreateInfo& info, const ProcessManagementCapability& cap);
  Result<void> StopProcess(ProcessId pid, const ProcessManagementCapability& cap);
  Result<void> RestartProcess(ProcessId pid, const ProcessManagementCapability& cap);
  // Replaces the fault policy of a process. Works on any created slot (including one
  // parked in kRestartPending); generation-checked like the other management calls.
  Result<void> SetFaultPolicy(ProcessId pid, const FaultPolicy& policy,
                              const ProcessManagementCapability& cap);
  // Replaces the scheduling priority of a process (0 = highest; meaningful under
  // the priority policy, advisory elsewhere). Same gating and generation check as
  // SetFaultPolicy: priority is a management decision, not something a process can
  // grant itself.
  Result<void> SetPriority(ProcessId pid, uint8_t priority,
                           const ProcessManagementCapability& cap);

  // Wires the deterministic fault-injection harness in (tests only; nullptr
  // disables). The kernel consults it before each retired instruction and on
  // first-time grant allocations.
  void SetFaultInjector(FaultInjector* injector) { fault_injector_ = injector; }

  // True once a process with a Panic fault policy has faulted: the main loop halts,
  // mirroring a kernel panic on hardware.
  bool panicked() const { return panicked_; }

  // FlashWriteObserver: invalidates any per-process decode cache overlapping a
  // programmed flash range (vm/decode.h). Registered on the MCU bus at construction.
  void OnFlashProgrammed(uint32_t addr, uint32_t len) override;

  // ---- Main loop -----------------------------------------------------------------
  // Runs until `deadline_cycles` of simulated time pass, or the system wedges
  // (nothing runnable, no pending hardware event). Holding the MainLoopCapability is
  // required: the loop reconfigures the MPU and executes untrusted code.
  void MainLoop(uint64_t deadline_cycles, const MainLoopCapability& cap);
  // One scheduling pass; returns false when the system is wedged. `deadline_cycles`
  // bounds how far an idle sleep may fast-forward the clock (multi-board lockstep).
  bool MainLoopStep(const MainLoopCapability& cap, uint64_t deadline_cycles = UINT64_MAX);
  // Fleet idle-skip fast path: if the kernel is provably quiescent until
  // `deadline_cycles` (nothing schedulable, no pending IRQs or deferred calls, and
  // the next hardware event is at or past the deadline), advance the clock to the
  // deadline without entering the main-loop machinery and return true. The pass is
  // bit-identical to what one stepped MainLoop pass would have produced — same
  // sleep trace event, same cycle accounting, same scheduler bookkeeping
  // (Scheduler::ObserveIdle) — so fleets may apply it per epoch freely. Returns
  // false (doing nothing) when the board has, or might have, work; wedged boards
  // (no future event at all) also return false so supervision still sees them.
  bool TryIdleFastForward(uint64_t deadline_cycles, const MainLoopCapability& cap);

  // ---- Capsule services (safe API surface, §2.2) ----------------------------------
  // Schedules an upcall for (driver, sub). Returns kInvalid for a dead process; a
  // null or missing subscription drops the upcall successfully (Tock semantics).
  Result<void> ScheduleUpcall(ProcessId pid, uint32_t driver, uint32_t sub, uint32_t arg0,
                              uint32_t arg1, uint32_t arg2);

  // Lends the contents of an allowed read-write buffer to `fn` as a span, after
  // liveness + generation checks. The span must not escape `fn` — this is the
  // closure-scoped access of §3.3.2 (and what makes the page-straddle bounce copy
  // below sound: nobody can observe the buffer mid-closure). Returns kInvalid if
  // no such buffer.
  template <typename Fn>
  Result<void> WithReadWriteBuffer(ProcessId pid, uint32_t driver, uint32_t allow_num, Fn&& fn) {
    Process* p = GetLiveProcess(pid);
    if (p == nullptr) {
      return Result<void>(ErrorCode::kInvalid);
    }
    AllowSlot* slot = p->FindAllow(driver, allow_num, /*read_only=*/false);
    if (slot == nullptr || !slot->in_use) {
      return Result<void>(ErrorCode::kInvalid);
    }
    if (uint8_t* direct = mcu_->bus().RamWritePtr(slot->addr, slot->len)) {
      fn(std::span<uint8_t>(direct, slot->len));
    } else {
      // The buffer straddles a 4 KiB page line: lend a bounce copy and write the
      // closure's edits back through the bus.
      std::vector<uint8_t> bounce(slot->len);
      mcu_->bus().ReadBlock(slot->addr, bounce.data(), slot->len);
      fn(std::span<uint8_t>(bounce.data(), bounce.size()));
      mcu_->bus().WriteBlock(slot->addr, bounce.data(), slot->len);
    }
    return Result<void>::Ok();
  }

  template <typename Fn>
  Result<void> WithReadOnlyBuffer(ProcessId pid, uint32_t driver, uint32_t allow_num, Fn&& fn) {
    Process* p = GetLiveProcess(pid);
    if (p == nullptr) {
      return Result<void>(ErrorCode::kInvalid);
    }
    AllowSlot* slot = p->FindAllow(driver, allow_num, /*read_only=*/true);
    if (slot == nullptr || !slot->in_use) {
      return Result<void>(ErrorCode::kInvalid);
    }
    if (const uint8_t* direct = mcu_->bus().MemReadPtr(slot->addr, slot->len)) {
      fn(std::span<const uint8_t>(direct, slot->len));
    } else {
      std::vector<uint8_t> bounce(slot->len);
      mcu_->bus().ReadBlock(slot->addr, bounce.data(), slot->len);
      fn(std::span<const uint8_t>(bounce.data(), bounce.size()));
    }
    return Result<void>::Ok();
  }

  bool IsAlive(ProcessId pid) const;

  // Grant entry: resolves the simulated address of the grant allocation for
  // (pid, grant_id), allocating `size` bytes from the process's own RAM quota on
  // first entry (`*first_time` reports whether initialization is needed). 0 = dead
  // process or quota exhausted. Used via the typed Grant<T> wrapper
  // (kernel/grant.h), which materializes the bytes through WithRamBytes.
  uint32_t GrantEnterResolve(ProcessId pid, unsigned grant_id, uint32_t size, uint32_t align,
                             bool* first_time);

  // Lends `len` bytes of simulated RAM at `addr` to `fn` as a host pointer —
  // direct when the range is page-contiguous, else a bounce copy written back
  // after the closure returns (grant allocations can straddle page lines). The
  // pointer must not escape `fn`. The bounce buffer is max_align-aligned so
  // placement-new of any grant type is valid either way.
  template <typename Fn>
  void WithRamBytes(uint32_t addr, uint32_t len, Fn&& fn) {
    if (uint8_t* direct = mcu_->bus().RamWritePtr(addr, len)) {
      fn(direct);
      return;
    }
    std::vector<std::max_align_t> bounce(
        (len + sizeof(std::max_align_t) - 1) / sizeof(std::max_align_t));
    uint8_t* bytes = reinterpret_cast<uint8_t*>(bounce.data());
    mcu_->bus().ReadBlock(addr, bytes, len);
    fn(bytes);
    mcu_->bus().WriteBlock(addr, bytes, len);
  }

  // Deferred calls (§2.5): capsules register once, then set the flag to be called
  // back from the main loop outside any interrupt context.
  int RegisterDeferredCall(DeferredCallClient* client);
  void SetDeferredCall(int handle);

  // ---- Introspection (process console, tests, experiments) ------------------------
  Process* process(size_t index) {
    return index < kMaxProcesses ? &processes_[index] : nullptr;
  }
  const Process* process(size_t index) const {
    return index < kMaxProcesses ? &processes_[index] : nullptr;
  }
  Process* GetLiveProcess(ProcessId pid);
  size_t NumLiveProcesses() const;

  // The kernel's event counters and trace ring (kernel/trace.h). `stats()` is what
  // experiments and the process console consume; the legacy total_* accessors
  // forward into it so existing callers keep working.
  const KernelStats& stats() const { return trace_.stats(); }
  const KernelTrace& trace() const { return trace_; }
  // Attaches the live telemetry publisher (kernel/telemetry.h) to the trace
  // hook. Board wiring only; a no-op under -DTOCK_TELEMETRY=OFF.
  void SetTelemetrySink(TelemetrySink* sink) { trace_.SetTelemetrySink(sink); }
  // The active scheduling policy and the scheduler itself (tests assert
  // policy-specific internals, e.g. the MLFQ boost counter).
  SchedulerPolicy scheduler_policy() const { return scheduler_->policy(); }
  const Scheduler& scheduler() const { return *scheduler_; }
  // Assembles the per-process profiling row (kernel/cycle_accounting.h): attribution
  // snapshot fields plus the PCB's own lifetime counters. All-zero for a bad index;
  // with tracing compiled out only the PCB-backed fields are populated.
  ProcStats GetProcStats(size_t index) const;
  // Simulated instructions retired by the VM across all processes — the numerator
  // of the hot-path throughput bench (host wall time is the denominator).
  uint64_t instructions_retired() const { return cpu_.instructions_retired(); }
  uint64_t total_syscalls() const { return stats().SyscallsTotal(); }
  uint64_t total_context_switches() const { return stats().context_switches; }
  uint64_t total_upcalls() const { return stats().upcalls_queued; }
  uint64_t dropped_upcalls() const { return stats().upcalls_dropped; }

  // TRUSTED-BEGIN(process memory translation): converts a validated simulated RAM
  // address into a host pointer. Every caller must have bounds-checked the range
  // against the owning process's layout first. With paged backing the pointer is
  // only valid within the containing 4 KiB page — multi-page ranges must go
  // through WithRamBytes / the With*Buffer lenders, which bounce when needed.
  uint8_t* TranslateRam(uint32_t addr);
  const uint8_t* TranslateMem(uint32_t addr);  // RAM or flash (read-only allows)
  // TRUSTED-END

 private:
  struct DriverEntry {
    uint32_t num = 0;
    SyscallDriver* driver = nullptr;
  };

  // Open-addressed flat map over driver numbers (linear probing, power-of-two
  // table). Driver numbers are sparse 32-bit values (0x0 .. 0xA0001), so the old
  // linear scan cost O(registered drivers) on every command/subscribe/allow trap.
  // The table is sized ~2.7x kMaxDrivers, mappings are immutable once registered
  // (duplicates are rejected), and `driver == nullptr` marks an empty slot — driver
  // number 0 is real (kAlarm). Immutability is also what makes the one-entry
  // last-driver cache in LookupDriver safe: a cached hit can never go stale.
  static constexpr size_t kDriverTableSize = 64;
  static_assert((kDriverTableSize & (kDriverTableSize - 1)) == 0,
                "probe wraparound relies on a power-of-two table");
  static_assert(kDriverTableSize > kMaxDrivers,
                "a full table would turn lookup misses into infinite probes");
  static size_t DriverSlot(uint32_t driver_num) {
    // Knuth multiplicative hash; top bits index the 64-entry table.
    return (driver_num * 2654435761u) >> 26;
  }

  SyscallDriver* LookupDriver(uint32_t driver_num);

  // One decide-run-report scheduling round through the active policy
  // (kernel/scheduler.h). Returns false when no process was schedulable.
  bool RunOneProcess(uint64_t deadline_cycles);

  // Runs one process until it blocks, faults, exits, exhausts its timeslice
  // (absent = cooperative: SysTick stays disarmed), or the simulation deadline
  // passes (a cooperative process with no pending hardware events would otherwise
  // run unboundedly — fine on silicon, not in a simulator). The returned reason is
  // the scheduler feedback (MLFQ demotes on kTimesliceExpired).
  StoppedReason ExecuteProcess(Process& p, uint64_t deadline_cycles,
                               std::optional<uint32_t> timeslice_cycles);
  void ConfigureMpuFor(const Process& p);
  void InitProcessContext(Process& p);

  // Syscall handling. Returns true if the process should keep running.
  bool HandleSyscall(Process& p);
  SyscallReturn HandleSubscribe(Process& p, const Syscall& call);
  SyscallReturn HandleAllow(Process& p, const Syscall& call, bool read_only);
  SyscallReturn HandleMemop(Process& p, const Syscall& call);
  bool HandleYield(Process& p, const Syscall& call);
  bool HandleBlockingCommand(Process& p, const Syscall& call);

  // Upcall machinery.
  bool TryDeliverQueuedUpcall(Process& p);
  void InvokeUpcallHandler(Process& p, const QueuedUpcall& upcall, uint32_t fn,
                           uint32_t userdata);
  void DeliverDirectReturn(Process& p, const QueuedUpcall& upcall);

  // Frees a process's decode/block tables (the lazy-allocation counterpart of the
  // first-dispatch Configure in ExecuteProcess) and settles the vm_cache_bytes
  // gauge and vm.blocks_invalidated counter. Called at every life-end transition
  // (terminal exit/fault/stop and all three restart paths) *before*
  // ResetForRestart so the stats see the tables while they still exist.
  void ReleaseVmCache(Process& p);

  // Applies the process's fault policy: panic, park it terminally, or schedule a
  // deferred backoff restart. `fault` is the cause recorded for diagnostics.
  void FaultProcess(Process& p, const VmFault& fault);
  // Deferred-restart callback: brings a kRestartPending process back to life, if its
  // generation still matches (Stop/Restart may have intervened).
  void ReviveProcess(ProcessId pid);
  // Exponential backoff for the *next* restart: base << (restart_count - 1), capped.
  uint64_t BackoffDelay(const Process& p) const;
  void ServiceInterrupts();
  bool RunDeferredCalls();
  // The idle-skip precondition: true iff a main-loop pass started now would
  // provably do nothing but sleep to `deadline_cycles`.
  bool IsQuiescedUntil(uint64_t deadline_cycles);

  Mcu* mcu_;
  SysTick* systick_;
  KernelConfig config_;
  Cpu cpu_;

  std::array<Process, kMaxProcesses> processes_;
  size_t num_created_processes_ = 0;
  uint8_t mpu_configured_for_ = 0xFF;  // process index currently mapped by the MPU

  // All four policies are board-composable; the kernel embeds them (heapless — no
  // dynamic allocation) and points scheduler_ at the one the config selects.
  // Declared after processes_: each holds a span over the table.
  RoundRobinScheduler sched_round_robin_{processes_, config_};
  CooperativeScheduler sched_cooperative_{processes_, config_};
  PriorityScheduler sched_priority_{processes_, config_};
  MlfqScheduler sched_mlfq_{processes_, config_};
  Scheduler* scheduler_ = &sched_round_robin_;

  std::array<DriverEntry, kDriverTableSize> drivers_{};
  size_t num_drivers_ = 0;
  // One-entry lookup cache: syscall-heavy apps overwhelmingly hit one driver
  // repeatedly (the command/yield loop shape of §3.2).
  uint32_t last_driver_num_ = 0;
  SyscallDriver* last_driver_ = nullptr;

  std::array<InterruptService*, InterruptController::kNumLines> irq_handlers_{};

  struct DeferredEntry {
    DeferredCallClient* client = nullptr;
    bool pending = false;
  };
  std::array<DeferredEntry, kMaxDeferredCalls> deferred_{};
  size_t num_deferred_ = 0;

  unsigned next_grant_id_ = 0;

  FaultInjector* fault_injector_ = nullptr;
  bool panicked_ = false;

  KernelTrace trace_;
};

}  // namespace tock

#endif  // TOCK_KERNEL_KERNEL_H_
