// ERA: 2
// The system-call driver interface implemented by capsules (§2.2, §3.3).
//
// Under the Tock 2.0 ABI the *kernel* owns allow/subscribe state (swapping
// semantics); a capsule is only consulted to validate numbers and lengths, and can
// reach buffer contents exclusively through the short-lived spans the kernel lends
// inside closures (Kernel::WithReadWriteBuffer / WithReadOnlyBuffer). This is the
// structural fix for the unsoundness described in §3.3.1: a capsule has no way to
// stash a reference to process memory.
#ifndef TOCK_KERNEL_DRIVER_H_
#define TOCK_KERNEL_DRIVER_H_

#include <cstdint>

#include "kernel/process.h"
#include "kernel/syscall.h"
#include "util/error.h"

namespace tock {

class SyscallDriver {
 public:
  virtual ~SyscallDriver() = default;

  // Handles a command system call. By convention command 0 is an existence check
  // and must return Success.
  virtual SyscallReturn Command(ProcessId pid, uint32_t command_num, uint32_t arg1,
                                uint32_t arg2) = 0;

  // Notification that the kernel swapped a read-write allow slot for `pid`. The
  // driver may veto (e.g. length requirements); on veto the kernel swaps back.
  virtual Result<void> AllowReadWrite(ProcessId pid, uint32_t allow_num, uint32_t len) {
    (void)pid;
    (void)allow_num;
    (void)len;
    return Result<void>::Ok();
  }

  // Same for read-only allows.
  virtual Result<void> AllowReadOnly(ProcessId pid, uint32_t allow_num, uint32_t len) {
    (void)pid;
    (void)allow_num;
    (void)len;
    return Result<void>::Ok();
  }

  // Notification of a subscribe swap (validation only; the slot is kernel-held).
  virtual Result<void> Subscribe(ProcessId pid, uint32_t sub_num) {
    (void)pid;
    (void)sub_num;
    return Result<void>::Ok();
  }

  // V1-ABI compatibility hook (experiment E6 only): under SyscallAbiVersion::kV1 the
  // kernel passes raw buffer coordinates to the capsule, which becomes responsible
  // for storing and later *voluntarily* returning them — the unenforceable contract
  // §3.3.1 shows to be unsound. V2 drivers never see this call.
  virtual Result<void> LegacyAllowV1(ProcessId pid, uint32_t allow_num, uint32_t addr,
                                     uint32_t len) {
    (void)pid;
    (void)allow_num;
    (void)addr;
    (void)len;
    return Result<void>(ErrorCode::kNoSupport);
  }
};

// Chip drivers implement this to receive interrupt bottom halves from the kernel
// main loop (§2.5: Tock services interrupts from the loop, not in ISRs).
class InterruptService {
 public:
  virtual ~InterruptService() = default;
  virtual void HandleInterrupt(unsigned line) = 0;
};

// Capsules implement this to get called back from the kernel loop after setting
// their deferred call — the mechanism for splitting work out of callback chains.
class DeferredCallClient {
 public:
  virtual ~DeferredCallClient() = default;
  virtual void HandleDeferredCall() = 0;
};

}  // namespace tock

#endif  // TOCK_KERNEL_DRIVER_H_
