// ERA: 2
// Tock 2.0 system call ABI (TRD104). Userspace traps with the system call class in
// a4 and arguments in a0-a3; the kernel replies with a return-variant identifier in
// a0 and payload words in a1-a3. Keeping the numeric values identical to upstream
// Tock means the assembly in src/libtock reads like real Tock userspace code.
#ifndef TOCK_KERNEL_SYSCALL_H_
#define TOCK_KERNEL_SYSCALL_H_

#include <cstdint>

#include "util/error.h"
#include "vm/cpu.h"

namespace tock {

enum class SyscallClass : uint32_t {
  kYield = 0,
  kSubscribe = 1,
  kCommand = 2,
  kReadWriteAllow = 3,
  kReadOnlyAllow = 4,
  kMemop = 5,
  kExit = 6,
  // Downstream extension modelled after Ti50's fork (§3.2); only decoded when
  // KernelConfig::enable_blocking_command is set.
  kBlockingCommand = 7,
};

// Yield argument values (first argument of the kYield class).
enum class YieldVariant : uint32_t {
  kNoWait = 0,
  kWait = 1,
  kWaitFor = 2,  // TRD104 yield-wait-for: returns the upcall values directly
};

// Exit argument values.
enum class ExitVariant : uint32_t {
  kTerminate = 0,
  kRestart = 1,
};

// Memop operation numbers (subset of TRD104).
enum class MemopOp : uint32_t {
  kBrk = 0,
  kSbrk = 1,
  kFlashStart = 2,
  kFlashEnd = 3,
  kRamStart = 4,
  kRamEnd = 5,
};

// TRD104 return variant identifiers.
enum class ReturnVariant : uint32_t {
  kFailure = 0,
  kFailureU32 = 1,
  kFailure2U32 = 2,
  kFailureU64 = 3,
  kSuccess = 128,
  kSuccessU32 = 129,
  kSuccess2U32 = 130,
  kSuccessU64 = 131,
  kSuccess3U32 = 132,
};

// A system call return value, written to a0-a3 of the faulting process.
struct SyscallReturn {
  ReturnVariant variant;
  uint32_t values[3] = {0, 0, 0};

  static SyscallReturn Success() { return {ReturnVariant::kSuccess, {0, 0, 0}}; }
  static SyscallReturn SuccessU32(uint32_t v) { return {ReturnVariant::kSuccessU32, {v, 0, 0}}; }
  static SyscallReturn Success2U32(uint32_t a, uint32_t b) {
    return {ReturnVariant::kSuccess2U32, {a, b, 0}};
  }
  static SyscallReturn Success3U32(uint32_t a, uint32_t b, uint32_t c) {
    return {ReturnVariant::kSuccess3U32, {a, b, c}};
  }
  static SyscallReturn Failure(ErrorCode error) {
    return {ReturnVariant::kFailure, {static_cast<uint32_t>(error), 0, 0}};
  }
  static SyscallReturn FailureU32(ErrorCode error, uint32_t v) {
    return {ReturnVariant::kFailureU32, {static_cast<uint32_t>(error), v, 0}};
  }
  static SyscallReturn Failure2U32(ErrorCode error, uint32_t a, uint32_t b) {
    return {ReturnVariant::kFailure2U32, {static_cast<uint32_t>(error), a, b}};
  }

  // Applies this return value to a process context.
  void WriteTo(CpuContext& ctx) const {
    ctx.x[Reg::kA0] = static_cast<uint32_t>(variant);
    ctx.x[Reg::kA1] = values[0];
    ctx.x[Reg::kA2] = values[1];
    ctx.x[Reg::kA3] = values[2];
  }
};

// A decoded system call, read out of a trapped process's registers.
struct Syscall {
  SyscallClass klass;
  uint32_t args[4];

  static Syscall Decode(const CpuContext& ctx) {
    return Syscall{static_cast<SyscallClass>(ctx.x[Reg::kA4]),
                   {ctx.x[Reg::kA0], ctx.x[Reg::kA1], ctx.x[Reg::kA2], ctx.x[Reg::kA3]}};
  }
};

}  // namespace tock

#endif  // TOCK_KERNEL_SYSCALL_H_
