// ERA: 3
#include "kernel/tbf.h"

#include "crypto/hmac_sha256.h"

namespace tock {

uint32_t TbfHeader::ComputeChecksum() const {
  TbfHeader copy = *this;
  copy.checksum = 0;
  uint32_t words[kHeaderSize / 4];
  std::memcpy(words, &copy, sizeof(words));
  uint32_t sum = 0;
  for (uint32_t w : words) {
    sum ^= w;
  }
  return sum;
}

bool TbfHeader::StructurallyValid() const {
  if (magic != kMagic || version != kVersion || header_size != kHeaderSize) {
    return false;
  }
  if (checksum != ComputeChecksum()) {
    return false;
  }
  uint32_t payload = header_size + binary_size + (IsSigned() ? kSignatureSize : 0);
  if (total_size < payload || total_size > payload + 8) {
    return false;
  }
  if (entry_offset < header_size || entry_offset >= header_size + binary_size) {
    return false;
  }
  return true;
}

std::vector<uint8_t> BuildTbfImage(const std::string& name, const std::vector<uint8_t>& binary,
                                   uint32_t entry_offset, uint32_t min_ram, bool sign,
                                   const uint8_t* device_key) {
  TbfHeader header;
  std::memset(header.name, 0, sizeof(header.name));
  std::memcpy(header.name, name.data(),
              name.size() < sizeof(header.name) ? name.size() : sizeof(header.name));
  header.binary_size = static_cast<uint32_t>(binary.size());
  header.entry_offset = TbfHeader::kHeaderSize + entry_offset;
  header.min_ram = min_ram;
  header.flags = TbfHeader::kFlagEnabled | (sign ? TbfHeader::kFlagSigned : 0);
  uint32_t payload = TbfHeader::kHeaderSize + header.binary_size +
                     (sign ? TbfHeader::kSignatureSize : 0);
  header.total_size = (payload + 7) & ~7u;
  header.checksum = header.ComputeChecksum();

  std::vector<uint8_t> image(header.total_size, 0);
  std::memcpy(image.data(), &header, sizeof(header));
  std::memcpy(image.data() + TbfHeader::kHeaderSize, binary.data(), binary.size());

  if (sign) {
    auto tag = HmacSha256::Compute(device_key, 32, image.data(),
                                   TbfHeader::kHeaderSize + header.binary_size);
    std::memcpy(image.data() + TbfHeader::kHeaderSize + header.binary_size, tag.data(),
                tag.size());
  }
  return image;
}

}  // namespace tock
