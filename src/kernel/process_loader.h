// ERA: 3
// Process loading (§3.4).
//
// Two loaders share the structural header checks:
//
//  * The **synchronous loader** is the original design: one pass over the app flash
//    region, validating magic/version/checksum and creating a process per enabled
//    header. Cheap, but cannot perform cryptographic checks, because crypto hardware
//    completes asynchronously.
//
//  * The **asynchronous loader** is the state machine the signed-application security
//    model forced: each candidate image walks
//        CheckHeader -> ComputeDigest (hardware, interrupt-completed) -> Verify ->
//        CreateProcess -> next image,
//    driven entirely by digest-completion callbacks. As the paper notes, once
//    loading is a state machine, dynamically loading an app at runtime is just
//    "trigger the kernel to check the new process" — LoadOneAsync.
#ifndef TOCK_KERNEL_PROCESS_LOADER_H_
#define TOCK_KERNEL_PROCESS_LOADER_H_

#include <cstdint>
#include <string>
#include <vector>

#include "kernel/capability.h"
#include "kernel/kernel.h"
#include "kernel/phys_digest.h"
#include "kernel/tbf.h"

namespace tock {

// Typed outcome of one load candidate: which step of the §3.4 state machine
// rejected it. Distinguishes *integrity* failures (kStructural: the header is
// malformed or inconsistent) from *authenticity* failures (kAuthenticity: the
// image parses fine but its signature does not verify under the device key).
enum class LoadError : uint8_t {
  kNone = 0,           // created (or still in flight)
  kStructural,         // header integrity check failed (magic aside, §3.4 step 1)
  kUnsigned,           // well-formed but unsigned; the signed-app model rejects it
  kAuthenticity,       // signature verification failed (§3.4 step 3)
  kDisabled,           // valid image, marked not-enabled
  kNoResources,        // out of process slots or RAM quota (§3.4 step 4)
  kEngineUnavailable,  // digest engine refused the request
};

const char* LoadErrorName(LoadError error);

class ProcessLoader {
 public:
  enum class State { kIdle, kScanning, kVerifying, kDone };

  struct LoadRecord {
    std::string name;
    uint32_t flash_addr = 0;
    bool created = false;
    bool verified = false;  // passed a cryptographic check (async loader only)
    const char* reject_reason = nullptr;
    LoadError error = LoadError::kNone;
    ProcessId pid;
  };

  ProcessLoader(Kernel* kernel, uint32_t app_flash_start, uint32_t app_flash_end,
                ProcessManagementCapability pm_cap, ProcessLoadingCapability load_cap)
      : kernel_(kernel),
        app_flash_start_(app_flash_start),
        app_flash_end_(app_flash_end),
        pm_cap_(pm_cap),
        load_cap_(load_cap) {}

  // Wires the crypto engine + device key needed for signature verification.
  void SetDigestEngine(PhysDigestEngine* digester) { digester_ = digester; }
  void SetDeviceKey(const uint8_t key[32]);

  // --- Synchronous loader ---
  // Scans the whole region, creating processes after structural checks only.
  // Signed images are *not* verified (the limitation that motivated the async
  // design). Returns the number of processes created.
  int LoadAllSync();

  // --- Asynchronous loader ---
  // Starts the scan; progress continues from digest-completion interrupts as the
  // kernel main loop runs. Requires a digest engine and device key.
  Result<void> StartAsyncLoad();

  // Dynamically loads (and verifies) a single image that was placed at `flash_addr`
  // at runtime — §3.4's "major benefit". A slot whose previous attempt *failed* may
  // be retried: the stale failure record for `flash_addr` is cleared first, so the
  // ledger reflects the slot's current state instead of accumulating duplicates
  // (the OTA retry path re-pushes rejected images repeatedly). The cumulative
  // created/rejected counters still count every attempt.
  Result<void> LoadOneAsync(uint32_t flash_addr);

  bool Done() const { return state_ == State::kDone; }
  State state() const { return state_; }
  int created_count() const { return created_count_; }
  int rejected_count() const { return rejected_count_; }
  const std::vector<LoadRecord>& records() const { return records_; }
  // Most recent record for the image at `flash_addr`, or nullptr.
  const LoadRecord* RecordFor(uint32_t flash_addr) const;

 private:
  bool ReadHeader(uint32_t flash_addr, TbfHeader* out) const;
  // Structural pass on the image at scan_addr_; advances or finishes.
  void ProcessCurrentCandidate();
  void AdvanceScan();
  void FinishCurrent(bool create, bool verified, const char* reject_reason,
                     LoadError error);
  Result<Process*> CreateFromHeader(uint32_t flash_addr, const TbfHeader& header, bool verified);

  static void DigestDoneTrampoline(void* context, const uint8_t digest[32], bool ok);
  void OnDigestDone(const uint8_t digest[32], bool ok);

  Kernel* kernel_;
  uint32_t app_flash_start_;
  uint32_t app_flash_end_;
  ProcessManagementCapability pm_cap_;
  ProcessLoadingCapability load_cap_;

  PhysDigestEngine* digester_ = nullptr;
  uint8_t device_key_[32] = {};
  bool have_key_ = false;

  State state_ = State::kIdle;
  bool single_mode_ = false;  // LoadOneAsync: stop after the current candidate
  uint32_t scan_addr_ = 0;
  TbfHeader current_header_;
  int created_count_ = 0;
  int rejected_count_ = 0;
  std::vector<LoadRecord> records_;
};

}  // namespace tock

#endif  // TOCK_KERNEL_PROCESS_LOADER_H_
