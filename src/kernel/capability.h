// ERA: 4
// Capability tokens gating privileged kernel APIs (paper §4.4, Listing 1).
//
// Rust Tock mints zero-sized capability values inside `unsafe` platform-initialization
// code; functions demand `&dyn Capability` parameters, so a capsule that was never
// handed the token cannot call them — checked at compile time, free at run time.
//
// The C++ rendering: each capability is an empty tag type whose constructor is
// private. Only CapabilityFactory (used by trusted board-initialization code) can
// mint them. Passing one by value costs nothing; calling a gated API without one is
// a compile error. tests/compile_fail/ verifies the negative case.
#ifndef TOCK_KERNEL_CAPABILITY_H_
#define TOCK_KERNEL_CAPABILITY_H_

namespace tock {

class CapabilityFactory;

// Grants the right to create, stop, restart, or destroy processes.
class ProcessManagementCapability {
 private:
  ProcessManagementCapability() = default;
  friend class CapabilityFactory;
};

// Grants the right to run the kernel main loop (only the board's main() holds it).
class MainLoopCapability {
 private:
  MainLoopCapability() = default;
  friend class CapabilityFactory;
};

// Grants the right to create grant regions (board initialization only).
class MemoryAllocationCapability {
 private:
  MemoryAllocationCapability() = default;
  friend class CapabilityFactory;
};

// Grants access to process loading / flash app regions.
class ProcessLoadingCapability {
 private:
  ProcessLoadingCapability() = default;
  friend class CapabilityFactory;
};

// TRUSTED-BEGIN(capability minting): the single place capabilities come from.
// Instantiated by board bring-up code; never reachable from capsule code, which
// receives only the already-minted tokens the board chooses to share.
class CapabilityFactory {
 public:
  ProcessManagementCapability MintProcessManagement() const { return {}; }
  MainLoopCapability MintMainLoop() const { return {}; }
  MemoryAllocationCapability MintMemoryAllocation() const { return {}; }
  ProcessLoadingCapability MintProcessLoading() const { return {}; }
};
// TRUSTED-END

}  // namespace tock

#endif  // TOCK_KERNEL_CAPABILITY_H_
