// ERA: 2
// Compile-time-style kernel configuration. The paper describes several alternatives
// that coexist behind configuration: the synchronous vs. asynchronous process loader
// (§3.4), the v1 vs. v2 allow/subscribe semantics (§3.3, kept so experiment E6 can
// demonstrate why v1 was unsound), the Ti50-style blocking command extension (§3.2),
// and the fault-response policy.
#ifndef TOCK_KERNEL_CONFIG_H_
#define TOCK_KERNEL_CONFIG_H_

#include <array>
#include <cstddef>
#include <cstdint>

// Compile-time gate for the kernel trace/counters subsystem (kernel/trace.h). When
// defined to 0 (CMake: -DTOCK_TRACE=OFF) every record call collapses to an empty
// inline and the subsystem compiles away entirely — the trace layer must cost
// nothing on builds that do not want observability.
#ifndef TOCK_TRACE_ENABLED
#define TOCK_TRACE_ENABLED 1
#endif

// Compile-time gate for the VM's predecoded instruction cache (vm/decode.h). When
// defined to 0 (CMake: -DTOCK_DECODE_CACHE=OFF) the kernel never sizes or binds a
// cache and the interpreter runs the original fetch/decode path — the escape hatch
// if a decode-cache bug is ever suspected. Simulated behavior is identical either
// way; only host throughput differs.
#ifndef TOCK_DECODE_CACHE_ENABLED
#define TOCK_DECODE_CACHE_ENABLED 1
#endif

// Compile-time gate for the interpreter's superblock engine (vm/decode.h grows the
// block tables, vm/cpu.cc the block execution paths). When defined to 0 (CMake:
// -DTOCK_SUPERBLOCKS=OFF) no block tables are ever allocated and the batch engine
// runs strictly instruction-at-a-time dispatch — the escape hatch if a superblock
// bug is ever suspected. Simulated behavior is identical either way. The macro is
// consumed in vm/decode.h (which cannot include kernel headers); this mirror keeps
// the kernel-facing constexpr next to its siblings.
#ifndef TOCK_SUPERBLOCKS_ENABLED
#define TOCK_SUPERBLOCKS_ENABLED 1
#endif

// Compile-time gate for the live telemetry transport (kernel/telemetry.h). When
// defined to 0 (CMake: -DTOCK_TELEMETRY=OFF) the trace hook carries no sink and
// the shm publishing layer compiles away, mirroring the TOCK_TRACE idiom.
// Simulated behavior is identical either way — telemetry is host-side only.
#ifndef TOCK_TELEMETRY_ENABLED
#define TOCK_TELEMETRY_ENABLED 1
#endif

namespace tock {

enum class SyscallAbiVersion {
  kV1,  // original semantics: capsules take ownership of allowed buffers (unsound)
  kV2,  // Tock 2.0 swapping semantics: the kernel holds allow/subscribe slots
};

enum class LoaderMode {
  kSynchronous,  // single pass over headers, structural checks only
  kAsynchronous, // multi-step state machine with cryptographic verification (§3.4)
};

// What the kernel does when a process hits an MPU violation, illegal instruction,
// or other unrecoverable error (§2.3). Policies are per process: each Process
// carries its own FaultPolicy, seeded from KernelConfig::default_fault_policy at
// creation and overridable through Kernel::SetFaultPolicy (capability-gated).
enum class FaultAction : uint8_t {
  kPanic,    // halt the whole kernel: debug builds where a fault means "stop the world"
  kStop,     // mark the process Faulted and never run it again
  kRestart,  // reclaim its state and revive it after a deferred, growing backoff
};

struct FaultPolicy {
  FaultAction action = FaultAction::kStop;

  // kRestart knobs. A crash-looping process restarts at most `max_restarts` times;
  // each revival is deferred by backoff_base_cycles << (restart number - 1), capped
  // at backoff_cap_cycles, and scheduled through the MCU clock so the faulting app
  // yields the CPU to its peers between lives instead of restarting for free.
  uint32_t max_restarts = 8;
  uint32_t backoff_base_cycles = 20'000;
  uint32_t backoff_cap_cycles = 1'000'000;

  static constexpr FaultPolicy Panic() { return FaultPolicy{FaultAction::kPanic, 0, 0, 0}; }
  static constexpr FaultPolicy Stop() { return FaultPolicy{FaultAction::kStop, 0, 0, 0}; }
  static constexpr FaultPolicy Restart(uint32_t max_restarts = 8,
                                       uint32_t backoff_base_cycles = 20'000,
                                       uint32_t backoff_cap_cycles = 1'000'000) {
    return FaultPolicy{FaultAction::kRestart, max_restarts, backoff_base_cycles,
                       backoff_cap_cycles};
  }
};

const char* FaultActionName(FaultAction action);

// Which scheduling policy the board composes into the kernel (kernel/scheduler.h).
// The Tock 2.0 redesign made this a board decision rather than a kernel constant;
// every policy is heapless and cycle-deterministic, so golden traces stay valid as
// long as the board keeps the default.
enum class SchedulerPolicy : uint8_t {
  kRoundRobin,   // seed behavior: cursor scan, fixed timeslice (the golden policy)
  kCooperative,  // same rotation, but no SysTick preemption: processes run to yield
  kPriority,     // strict priority (0 = highest), round-robin among equals
  kMlfq,         // multi-level feedback queue with periodic priority boost
};

const char* SchedulerPolicyName(SchedulerPolicy policy);

struct SchedulerConfig {
  static constexpr size_t kMlfqLevels = 3;

  SchedulerPolicy policy = SchedulerPolicy::kRoundRobin;

  // Priority a process is born with under kPriority/kMlfq when its creator does not
  // say otherwise (Kernel::SetPriority overrides per process). Mid-range so boards
  // can both raise and lower without renumbering.
  uint8_t default_priority = 4;

  // MLFQ knobs. A process at level L runs for timeslice_cycles *
  // mlfq_quantum_multiplier[L]; expiring the quantum demotes it one level. Every
  // mlfq_boost_period_cycles of MCU time, all processes are boosted back to level 0
  // so a demoted CPU-bound process cannot be starved forever (§2.3's guarantee that
  // every process keeps running).
  std::array<uint32_t, kMlfqLevels> mlfq_quantum_multiplier{1, 2, 4};
  uint64_t mlfq_boost_period_cycles = 1'000'000;
};

// Knobs for the per-board live telemetry publisher (kernel/telemetry.h). All
// periods are in *simulated* cycles so publishing decisions are deterministic;
// publishing itself is pure host-side work and never arms clock events or
// changes cycle accounting.
struct TelemetryConfig {
  // How often (at most) a ProcStats/KernelStats snapshot is published into the
  // shm region. Snapshots piggyback on trace events and epoch barriers — no
  // timer is armed for them. 0 = only the final snapshot at board teardown.
  uint64_t snapshot_period_cycles = 100'000;

  // Storm suppressor (util/rate_limiter.h): at most `storm_burst` events
  // back-to-back, refilled `storm_tokens_per_interval` per
  // `storm_interval_cycles` of simulated time. Any knob 0 = unlimited
  // (the default — suppression is opt-in).
  uint32_t storm_burst = 0;
  uint32_t storm_tokens_per_interval = 0;
  uint64_t storm_interval_cycles = 0;
};

struct KernelConfig {
  SyscallAbiVersion abi = SyscallAbiVersion::kV2;
  LoaderMode loader = LoaderMode::kSynchronous;
  FaultPolicy default_fault_policy = FaultPolicy::Stop();

  // Ti50's downstream extension: a single system call that performs
  // subscribe+command+yield-wait+unsubscribe in one trap (§3.2). Off by default,
  // as in mainline Tock.
  bool enable_blocking_command = false;

  // Process scheduling quantum in cycles (SysTick reload value).
  uint32_t timeslice_cycles = 10000;

  // Scheduling policy and its per-policy knobs (kernel/scheduler.h).
  SchedulerConfig scheduler;

  // RAM quota handed to each process (covers app-accessible memory + grants).
  uint32_t process_ram_quota = 12 * 1024;

  // For E7: reject read-write allows that overlap an existing allowed buffer of the
  // same process instead of accepting them with cell semantics (§5.1.1). The paper
  // deems this overhead unreasonable; it exists so the cost can be measured.
  bool check_allow_overlap = false;

  // Whether the kernel records counters and trace events at its dispatch points
  // (kernel/trace.h). Resolved at compile time so a false value removes the record
  // calls from every hot path rather than testing a flag on each one.
  static constexpr bool trace_enabled = TOCK_TRACE_ENABLED != 0;

  // Whether processes execute through the predecoded instruction cache. Runtime so
  // one binary can compare both engines (bench/tab_hotpath_throughput.cc); defaults
  // to the compile-time gate, and the kernel clamps it to false in a
  // -DTOCK_DECODE_CACHE=OFF build — the flag cannot resurrect compiled-out code.
  static constexpr bool decode_cache_compiled = TOCK_DECODE_CACHE_ENABLED != 0;
  bool enable_decode_cache = decode_cache_compiled;

  // Interpreter v2 engine toggles, runtime for the same reason as
  // enable_decode_cache: one binary must be able to race every engine leg
  // (bench/tab_hotpath_throughput.cc) and prove the simulated state identical.
  //
  // enable_threaded_dispatch selects the batch engine (Cpu::RunBatch: computed-
  // goto dispatch, per-block cycle accounting reconciled at batch boundaries) for
  // process execution; off = the PR-5-era per-instruction Step loop. Works with
  // or without the decode cache.
  //
  // enable_superblocks additionally builds and chains straight-line superblocks
  // inside the batch engine. Requires the decode cache (blocks live in its
  // tables) and the batch engine (the per-insn loop never sees blocks); the
  // kernel clamps it to false when either is off or when compiled out.
  static constexpr bool superblocks_compiled = TOCK_SUPERBLOCKS_ENABLED != 0;
  bool enable_threaded_dispatch = true;
  bool enable_superblocks = superblocks_compiled;

  // Whether the live telemetry transport is compiled in (kernel/telemetry.h).
  // A board still has to attach a sink (BoardConfig::telemetry) for anything to
  // be published; with the gate off the sink hook itself compiles away.
  static constexpr bool telemetry_compiled = TOCK_TELEMETRY_ENABLED != 0;

  // Publisher knobs, consumed by the board-attached sink.
  TelemetryConfig telemetry;
};

}  // namespace tock

#endif  // TOCK_KERNEL_CONFIG_H_
