// ERA: 3
// Privileged digest interface used by the process loader: hash/MAC a physical
// memory range (typically a flash-resident app image) without buffering it through
// kernel RAM. Implemented by the SHA accelerator's chip driver.
#ifndef TOCK_KERNEL_PHYS_DIGEST_H_
#define TOCK_KERNEL_PHYS_DIGEST_H_

#include <cstdint>

#include "util/error.h"
#include "util/subslice.h"

namespace tock {

class PhysDigestEngine {
 public:
  static constexpr uint32_t kDigestSize = 32;
  using PhysDoneFn = void (*)(void* context, const uint8_t digest[kDigestSize], bool ok);

  virtual ~PhysDigestEngine() = default;
  virtual Result<void> SetHmacKey(SubSlice key) = 0;
  virtual Result<void> ComputeDigestPhys(uint32_t addr, uint32_t len, PhysDoneFn done,
                                         void* context) = 0;
};

}  // namespace tock

#endif  // TOCK_KERNEL_PHYS_DIGEST_H_
