// ERA: 1
// Userspace execution engine: an RV32IM interpreter.
//
// The paper's processes are real machine code confined by the MPU (§2.3). To make
// that isolation *enforced* rather than simulated-by-convention, applications in this
// reproduction are genuine RV32IM instruction streams; every fetch, load and store is
// routed through the memory bus in unprivileged mode, where the MPU either permits it
// or faults the process. The kernel never trusts anything a process does.
//
// The syscall ABI follows Tock TRD104's RISC-V convention: system call class in a4,
// arguments in a0-a3, return variant + values in a0-a3.
#ifndef TOCK_VM_CPU_H_
#define TOCK_VM_CPU_H_

#include <array>
#include <cstdint>

#include "hw/memory_bus.h"
#include "vm/decode.h"

namespace tock {

// Architectural register file + pc for one process. Owned by the kernel's Process
// object; saved/restored around upcalls.
struct CpuContext {
  uint32_t pc = 0;
  std::array<uint32_t, 32> x{};  // x0 hardwired to zero (enforced on write)
};

// RISC-V ABI register numbers used by the kernel.
struct Reg {
  static constexpr unsigned kZero = 0;
  static constexpr unsigned kRa = 1;
  static constexpr unsigned kSp = 2;
  static constexpr unsigned kA0 = 10;
  static constexpr unsigned kA1 = 11;
  static constexpr unsigned kA2 = 12;
  static constexpr unsigned kA3 = 13;
  static constexpr unsigned kA4 = 14;
};

enum class StepResult {
  kOk,            // instruction retired
  kEcall,         // process executed ecall; syscall args in the context
  kEbreak,        // debug trap
  kUpcallReturn,  // pc reached the magic upcall-return address
  kFault,         // memory/MPU/illegal-instruction fault; details in fault()
};

struct VmFault {
  enum class Kind { kNone, kBus, kIllegalInstruction, kMisalignedJump };
  Kind kind = Kind::kNone;
  uint32_t pc = 0;        // faulting instruction address
  uint32_t detail = 0;    // bad address or raw instruction word
  BusFault bus_fault;     // populated for Kind::kBus
};

// Executes instructions for one context at a time. Stateless across calls apart from
// fault bookkeeping, so a single Cpu instance serves every process on the board.
class Cpu {
 public:
  // Jumping to this address signals "return from upcall to kernel" (§2.5). It lives
  // outside any mappable region so a stray jump cannot alias real code.
  static constexpr uint32_t kUpcallReturnAddr = 0xFFFF'FFFC;

  explicit Cpu(MemoryBus* bus) : bus_(bus) {}

  // Executes one instruction in unprivileged mode. On kFault the context pc is left
  // at the faulting instruction for diagnosis.
  //
  // With a decode cache bound, in-window pcs execute predecoded records and skip the
  // per-step bus fetch; the caller (the kernel) guarantees the MPU currently maps
  // the cache's window read+execute (see vm/decode.h for the safety contract).
  // Without one — or for any pc the cache does not cover — the ordinary checked
  // fetch-decode path runs, so behavior is identical either way.
  StepResult Step(CpuContext& ctx);

  // Result of one RunBatch burst. `executed` counts consumed instruction slots —
  // retired instructions plus the non-retiring slots a faulting instruction and
  // the upcall-return pseudo-step consume — i.e. exactly the simulated cycles the
  // per-insn loop would have ticked one at a time (CycleCosts::kVmInstruction
  // each), so the kernel reconciles accounting with a single Tick(executed).
  struct BatchResult {
    StepResult status = StepResult::kOk;  // kOk = budget exhausted, nothing trapped
    uint32_t executed = 0;
    uint32_t blocks_built = 0;  // superblocks constructed during this burst
    uint32_t chain_hits = 0;    // block→block transitions without a full dispatch
  };

  // Threaded-dispatch batch engine: executes up to `max_insns` instructions and
  // returns on the first trap/fault/upcall-return, with computed-goto dispatch
  // under __GNUC__ (portable switch otherwise) and — when `superblocks` is set
  // and the bound cache has block tables — superblock execution and chaining.
  // Architecturally bit-identical to calling Step() `max_insns` times: same
  // handler bodies (vm/interp_ops.inc), same fault/trap semantics, same
  // instructions_retired(). The caller guarantees nothing observable (IRQ state,
  // clock events, deadline) can change within the batch window; the kernel picks
  // max_insns = cycles-to-next-event to make that hold.
  BatchResult RunBatch(CpuContext& ctx, uint32_t max_insns, bool superblocks);

  // Binds the running process's predecoded-instruction cache (nullptr = none). The
  // kernel rebinds on every process dispatch; unit tests drive it directly.
  void set_decode_cache(DecodeCache* cache) { cache_ = cache; }

  const VmFault& fault() const { return fault_; }

  uint64_t instructions_retired() const { return instructions_retired_; }

 private:
  StepResult Execute(CpuContext& ctx, const DecodedInsn& d);
  StepResult RaiseBusFault(CpuContext& ctx, uint32_t addr);
  StepResult RaiseIllegal(CpuContext& ctx, uint32_t instruction);
  // Decodes a straight-line run starting at cache word `start_idx` and records it
  // in the cache's block table. Returns the block length (0 if no block could be
  // formed, e.g. the first word's fetch faults).
  uint32_t BuildBlock(DecodeCache& cache, uint32_t start_idx);

  MemoryBus* bus_;
  DecodeCache* cache_ = nullptr;
  VmFault fault_;
  uint64_t instructions_retired_ = 0;
};

}  // namespace tock

#endif  // TOCK_VM_CPU_H_
