// ERA: 1
// Two interpreter engines share the handler bodies in vm/interp_ops.inc:
//
//   * Execute/Step — the single-step reference engine (plain switch). Unit tests
//     drive it directly and the kernel falls back to it whenever per-instruction
//     observation is required (armed CPU-fault injection).
//   * RunBatch — the threaded-dispatch batch engine: computed-goto dispatch under
//     __GNUC__ (a portable switch otherwise), superblock execution and chaining
//     when the bound DecodeCache carries block tables.
//
// The engines are architecturally bit-identical by construction: dispatch and
// exit plumbing differ, instruction semantics cannot (one copy of every body).
#include "vm/cpu.h"

namespace tock {
namespace {

inline int32_t SignExtend(uint32_t value, unsigned bits) {
  uint32_t shift = 32 - bits;
  return static_cast<int32_t>(value << shift) >> shift;
}

}  // namespace

StepResult Cpu::RaiseBusFault(CpuContext& ctx, uint32_t addr) {
  fault_ = VmFault{VmFault::Kind::kBus, ctx.pc, addr, bus_->last_fault()};
  return StepResult::kFault;
}

StepResult Cpu::RaiseIllegal(CpuContext& ctx, uint32_t instruction) {
  fault_ = VmFault{VmFault::Kind::kIllegalInstruction, ctx.pc, instruction, BusFault{}};
  return StepResult::kFault;
}

StepResult Cpu::Step(CpuContext& ctx) {
  if (ctx.pc == kUpcallReturnAddr) {
    return StepResult::kUpcallReturn;
  }

  // Fast path: replay a predecoded record. A kNotDecoded slot fills through the
  // ordinary checked fetch, so the first execution of every word still pays (and
  // passes) the MPU execute check; only verified-once words are ever replayed.
  if (cache_ != nullptr) {
    if (DecodedInsn* d = cache_->Lookup(ctx.pc)) {
      if (d->h == OpHandler::kNotDecoded) {
        auto fetched = bus_->Fetch(ctx.pc, Privilege::kUnprivileged);
        if (!fetched.has_value()) {
          return RaiseBusFault(ctx, ctx.pc);
        }
        *d = Decode(*fetched);
        cache_->NoteFill();
      }
      return Execute(ctx, *d);
    }
  }

  auto fetched = bus_->Fetch(ctx.pc, Privilege::kUnprivileged);
  if (!fetched.has_value()) {
    return RaiseBusFault(ctx, ctx.pc);
  }
  DecodedInsn d = Decode(*fetched);
  return Execute(ctx, d);
}

StepResult Cpu::Execute(CpuContext& ctx, const DecodedInsn& d) {
  auto& x = ctx.x;
  uint32_t next_pc = ctx.pc + 4;

  switch (d.h) {
    // Reference-engine plumbing for the shared handler bodies: a plain case per
    // handler, `break` falls through to the common retire epilogue below, traps
    // and faults return out of the switch directly.
#define TOCK_OP(Name) case OpHandler::k##Name:
#define TOCK_OP_END break;
#define TOCK_D d
#define TOCK_PC ctx.pc
#define TOCK_WR(reg, value)       \
  do {                            \
    unsigned tock_wr_rd = (reg);  \
    if (tock_wr_rd != 0) {        \
      x[tock_wr_rd] = (value);    \
    }                             \
  } while (0)
#define TOCK_BUS_FAULT(addr) return RaiseBusFault(ctx, (addr))
#define TOCK_ILLEGAL(word) return RaiseIllegal(ctx, (word))
#define TOCK_TRAP_ECALL           \
  do {                            \
    ++instructions_retired_;      \
    ctx.pc = next_pc;             \
    return StepResult::kEcall;    \
  } while (0)
#define TOCK_TRAP_EBREAK          \
  do {                            \
    ++instructions_retired_;      \
    ctx.pc = next_pc;             \
    return StepResult::kEbreak;   \
  } while (0)
#include "vm/interp_ops.inc"
#undef TOCK_OP
#undef TOCK_OP_END
#undef TOCK_D
#undef TOCK_PC
#undef TOCK_WR
#undef TOCK_BUS_FAULT
#undef TOCK_ILLEGAL
#undef TOCK_TRAP_ECALL
#undef TOCK_TRAP_EBREAK
  }

  ++instructions_retired_;
  ctx.pc = next_pc;
  return StepResult::kOk;
}

uint32_t Cpu::BuildBlock(DecodeCache& cache, uint32_t start_idx) {
  const uint32_t room = cache.limit() - start_idx;
  const uint32_t max_scan =
      room < DecodeCache::kMaxBlockInsns ? room : DecodeCache::kMaxBlockInsns;
  DecodedInsn* entries = cache.EntryAt(start_idx);
  const uint32_t base_pc = cache.base() + start_idx * 4;
  uint32_t len = 0;
  while (len < max_scan) {
    DecodedInsn& e = entries[len];
    if (e.h == OpHandler::kNotDecoded) {
      // Ahead-of-pc decode still goes through the checked bus fetch: the safety
      // contract (MPU maps the whole window R+X while a cache is bound) makes it
      // pass, and if it ever didn't, the block simply ends before that word and
      // the dispatch loop faults there exactly like the per-insn engine.
      auto fetched = bus_->Fetch(base_pc + len * 4, Privilege::kUnprivileged);
      if (!fetched.has_value()) {
        break;
      }
      e = Decode(*fetched);
      cache.NoteFill();
    }
    ++len;
    if (EndsBlock(e.h)) {
      break;
    }
  }
  if (len == 0) {
    return 0;
  }
  // Length-1 blocks (a lone branch/trap) are recorded too: the entry marks the
  // word as "already scanned" so hot lone terminators don't rebuild every visit.
  cache.SetBlockLen(start_idx, static_cast<uint8_t>(len));
  return len;
}

Cpu::BatchResult Cpu::RunBatch(CpuContext& ctx, uint32_t max_insns, bool superblocks) {
  BatchResult res;
  auto& x = ctx.x;
  DecodeCache* const cache = cache_;
  const bool use_blocks = DecodeCache::kSuperblocksCompiled && superblocks &&
                          cache != nullptr && cache->blocks_enabled();
  uint32_t executed = 0;
  bool was_in_block = false;
  const DecodedInsn* dp = nullptr;
  DecodedInsn fallback{};              // out-of-window pcs decode into this
  const DecodedInsn* blk_next = nullptr;
  uint32_t blk_rem = 0;                // instructions left in the current superblock
  uint32_t pc = ctx.pc;
  uint32_t next_pc = 0;

#if defined(__GNUC__)
  // Threaded dispatch: the OpHandler byte in every DecodedInsn is the direct
  // index into this label table (pinned to the enum order by TOCK_OPHANDLERS +
  // the OpHandlerOrderMatches static_assert in vm/decode.h).
#define TOCK_OPHANDLER_LABEL(Name) &&op_##Name,
  static const void* const kDispatch[] = {TOCK_OPHANDLERS(TOCK_OPHANDLER_LABEL)};
#undef TOCK_OPHANDLER_LABEL
  static_assert(sizeof(kDispatch) / sizeof(kDispatch[0]) == kNumOpHandlers,
                "dispatch table must cover every handler");
#endif

dispatch:
  if (blk_rem != 0) {
    // Superblock fast path: no budget / upcall-address / Lookup checks — the
    // full dispatch below reserved budget for the whole block, pcs inside a
    // block are sequential flash addresses (so never the upcall-return magic),
    // and the block invariant guarantees every member word is decoded.
    dp = blk_next++;
    --blk_rem;
    next_pc = pc + 4;
    goto have_insn;
  }
  if (executed >= max_insns) {
    res.status = StepResult::kOk;
    goto done;
  }
  if (pc == kUpcallReturnAddr) {
    ++executed;  // the pseudo-step consumes a cycle but retires nothing (see Step)
    res.status = StepResult::kUpcallReturn;
    goto done;
  }
  {
    DecodedInsn* slot = cache != nullptr ? cache->Lookup(pc) : nullptr;
    if (slot != nullptr) {
      if (slot->h == OpHandler::kNotDecoded) {
        auto fetched = bus_->Fetch(pc, Privilege::kUnprivileged);
        if (!fetched.has_value()) {
          ctx.pc = pc;
          ++executed;
          res.status = RaiseBusFault(ctx, pc);
          goto done;
        }
        *slot = Decode(*fetched);
        cache->NoteFill();
      }
      if (use_blocks) {
        uint32_t idx = cache->IndexOf(slot);
        uint32_t blk = cache->BlockLenAt(idx);
        if (blk == 0) {
          blk = BuildBlock(*cache, idx);
          if (blk != 0) {
            ++res.blocks_built;
          }
        }
        if (blk > 1 && blk <= max_insns - executed) {
          if (was_in_block) {
            ++res.chain_hits;  // terminator target started another known block
          }
          was_in_block = true;
          dp = slot;
          blk_next = slot + 1;
          blk_rem = blk - 1;
          next_pc = pc + 4;
          goto have_insn;
        }
      }
      was_in_block = false;
      dp = slot;
      next_pc = pc + 4;
      goto have_insn;
    }
  }
  was_in_block = false;
  {
    auto fetched = bus_->Fetch(pc, Privilege::kUnprivileged);
    if (!fetched.has_value()) {
      ctx.pc = pc;
      ++executed;
      res.status = RaiseBusFault(ctx, pc);
      goto done;
    }
    fallback = Decode(*fetched);
    dp = &fallback;
    next_pc = pc + 4;
  }

have_insn:
#if defined(__GNUC__)
  goto* kDispatch[static_cast<size_t>(dp->h)];
#else
  switch (dp->h) {
#endif

  // Batch-engine plumbing for the shared handler bodies: handlers retire by
  // committing next_pc and jumping back to `dispatch`; traps/faults record the
  // batch outcome and jump to `done`.
#if defined(__GNUC__)
#define TOCK_OP(Name) op_##Name:
#else
#define TOCK_OP(Name) case OpHandler::k##Name:
#endif
#define TOCK_OP_END               \
  {                               \
    pc = next_pc;                 \
    ++instructions_retired_;      \
    ++executed;                   \
    goto dispatch;                \
  }
#define TOCK_D (*dp)
#define TOCK_PC pc
#define TOCK_WR(reg, value)       \
  do {                            \
    unsigned tock_wr_rd = (reg);  \
    if (tock_wr_rd != 0) {        \
      x[tock_wr_rd] = (value);    \
    }                             \
  } while (0)
#define TOCK_BUS_FAULT(addr)                  \
  do {                                        \
    ctx.pc = pc;                              \
    ++executed;                               \
    res.status = RaiseBusFault(ctx, (addr));  \
    goto done;                                \
  } while (0)
#define TOCK_ILLEGAL(word)                    \
  do {                                        \
    ctx.pc = pc;                              \
    ++executed;                               \
    res.status = RaiseIllegal(ctx, (word));   \
    goto done;                                \
  } while (0)
#define TOCK_TRAP_ECALL                       \
  do {                                        \
    ++instructions_retired_;                  \
    ++executed;                               \
    pc = next_pc;                             \
    res.status = StepResult::kEcall;          \
    goto done;                                \
  } while (0)
#define TOCK_TRAP_EBREAK                      \
  do {                                        \
    ++instructions_retired_;                  \
    ++executed;                               \
    pc = next_pc;                             \
    res.status = StepResult::kEbreak;         \
    goto done;                                \
  } while (0)
#include "vm/interp_ops.inc"
#undef TOCK_OP
#undef TOCK_OP_END
#undef TOCK_D
#undef TOCK_PC
#undef TOCK_WR
#undef TOCK_BUS_FAULT
#undef TOCK_ILLEGAL
#undef TOCK_TRAP_ECALL
#undef TOCK_TRAP_EBREAK

#if !defined(__GNUC__)
  }
#endif

done:
  ctx.pc = pc;
  res.executed = executed;
  return res;
}

}  // namespace tock
