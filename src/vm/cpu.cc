// ERA: 1
#include "vm/cpu.h"

namespace tock {
namespace {

inline int32_t SignExtend(uint32_t value, unsigned bits) {
  uint32_t shift = 32 - bits;
  return static_cast<int32_t>(value << shift) >> shift;
}

}  // namespace

StepResult Cpu::RaiseBusFault(CpuContext& ctx, uint32_t addr) {
  fault_ = VmFault{VmFault::Kind::kBus, ctx.pc, addr, bus_->last_fault()};
  return StepResult::kFault;
}

StepResult Cpu::RaiseIllegal(CpuContext& ctx, uint32_t instruction) {
  fault_ = VmFault{VmFault::Kind::kIllegalInstruction, ctx.pc, instruction, BusFault{}};
  return StepResult::kFault;
}

StepResult Cpu::Step(CpuContext& ctx) {
  if (ctx.pc == kUpcallReturnAddr) {
    return StepResult::kUpcallReturn;
  }

  // Fast path: replay a predecoded record. A kNotDecoded slot fills through the
  // ordinary checked fetch, so the first execution of every word still pays (and
  // passes) the MPU execute check; only verified-once words are ever replayed.
  if (cache_ != nullptr) {
    if (DecodedInsn* d = cache_->Lookup(ctx.pc)) {
      if (d->h == OpHandler::kNotDecoded) {
        auto fetched = bus_->Fetch(ctx.pc, Privilege::kUnprivileged);
        if (!fetched.has_value()) {
          return RaiseBusFault(ctx, ctx.pc);
        }
        *d = Decode(*fetched);
        cache_->NoteFill();
      }
      return Execute(ctx, *d);
    }
  }

  auto fetched = bus_->Fetch(ctx.pc, Privilege::kUnprivileged);
  if (!fetched.has_value()) {
    return RaiseBusFault(ctx, ctx.pc);
  }
  DecodedInsn d = Decode(*fetched);
  return Execute(ctx, d);
}

StepResult Cpu::Execute(CpuContext& ctx, const DecodedInsn& d) {
  auto& x = ctx.x;
  auto wr = [&x](unsigned rd, uint32_t value) {
    if (rd != 0) {
      x[rd] = value;
    }
  };

  uint32_t next_pc = ctx.pc + 4;

  switch (d.h) {
    case OpHandler::kLui:
      wr(d.rd, d.imm);
      break;
    case OpHandler::kAuipc:
      wr(d.rd, ctx.pc + d.imm);
      break;
    case OpHandler::kJal: {
      uint32_t target = ctx.pc + d.imm;
      wr(d.rd, ctx.pc + 4);
      next_pc = target;
      break;
    }
    case OpHandler::kJalr: {
      uint32_t target = (x[d.rs1] + d.imm) & ~1u;
      wr(d.rd, ctx.pc + 4);
      next_pc = target;
      break;
    }
    case OpHandler::kBeq:
      if (x[d.rs1] == x[d.rs2]) {
        next_pc = ctx.pc + d.imm;
      }
      break;
    case OpHandler::kBne:
      if (x[d.rs1] != x[d.rs2]) {
        next_pc = ctx.pc + d.imm;
      }
      break;
    case OpHandler::kBlt:
      if (static_cast<int32_t>(x[d.rs1]) < static_cast<int32_t>(x[d.rs2])) {
        next_pc = ctx.pc + d.imm;
      }
      break;
    case OpHandler::kBge:
      if (static_cast<int32_t>(x[d.rs1]) >= static_cast<int32_t>(x[d.rs2])) {
        next_pc = ctx.pc + d.imm;
      }
      break;
    case OpHandler::kBltu:
      if (x[d.rs1] < x[d.rs2]) {
        next_pc = ctx.pc + d.imm;
      }
      break;
    case OpHandler::kBgeu:
      if (x[d.rs1] >= x[d.rs2]) {
        next_pc = ctx.pc + d.imm;
      }
      break;
    case OpHandler::kLb:
    case OpHandler::kLh:
    case OpHandler::kLw:
    case OpHandler::kLbu:
    case OpHandler::kLhu: {
      uint32_t addr = x[d.rs1] + d.imm;
      unsigned size =
          (d.h == OpHandler::kLb || d.h == OpHandler::kLbu)   ? 1
          : (d.h == OpHandler::kLh || d.h == OpHandler::kLhu) ? 2
                                                              : 4;
      auto loaded = bus_->Read(addr, size, Privilege::kUnprivileged);
      if (!loaded.has_value()) {
        return RaiseBusFault(ctx, addr);
      }
      uint32_t value = *loaded;
      if (d.h == OpHandler::kLb) {
        value = static_cast<uint32_t>(SignExtend(value, 8));
      } else if (d.h == OpHandler::kLh) {
        value = static_cast<uint32_t>(SignExtend(value, 16));
      }
      wr(d.rd, value);
      break;
    }
    case OpHandler::kSb:
    case OpHandler::kSh:
    case OpHandler::kSw: {
      uint32_t addr = x[d.rs1] + d.imm;
      unsigned size = d.h == OpHandler::kSb ? 1 : d.h == OpHandler::kSh ? 2 : 4;
      if (!bus_->Write(addr, x[d.rs2], size, Privilege::kUnprivileged)) {
        return RaiseBusFault(ctx, addr);
      }
      break;
    }
    case OpHandler::kAddi:
      wr(d.rd, x[d.rs1] + d.imm);
      break;
    case OpHandler::kSlli:
      wr(d.rd, x[d.rs1] << d.imm);
      break;
    case OpHandler::kSlti:
      wr(d.rd, static_cast<int32_t>(x[d.rs1]) < static_cast<int32_t>(d.imm) ? 1 : 0);
      break;
    case OpHandler::kSltiu:
      wr(d.rd, x[d.rs1] < d.imm ? 1 : 0);
      break;
    case OpHandler::kXori:
      wr(d.rd, x[d.rs1] ^ d.imm);
      break;
    case OpHandler::kSrli:
      wr(d.rd, x[d.rs1] >> d.imm);
      break;
    case OpHandler::kSrai:
      wr(d.rd, static_cast<uint32_t>(static_cast<int32_t>(x[d.rs1]) >> d.imm));
      break;
    case OpHandler::kOri:
      wr(d.rd, x[d.rs1] | d.imm);
      break;
    case OpHandler::kAndi:
      wr(d.rd, x[d.rs1] & d.imm);
      break;
    case OpHandler::kAdd:
      wr(d.rd, x[d.rs1] + x[d.rs2]);
      break;
    case OpHandler::kSub:
      wr(d.rd, x[d.rs1] - x[d.rs2]);
      break;
    case OpHandler::kSll:
      wr(d.rd, x[d.rs1] << (x[d.rs2] & 0x1F));
      break;
    case OpHandler::kSlt:
      wr(d.rd, static_cast<int32_t>(x[d.rs1]) < static_cast<int32_t>(x[d.rs2]) ? 1 : 0);
      break;
    case OpHandler::kSltu:
      wr(d.rd, x[d.rs1] < x[d.rs2] ? 1 : 0);
      break;
    case OpHandler::kXor:
      wr(d.rd, x[d.rs1] ^ x[d.rs2]);
      break;
    case OpHandler::kSrl:
      wr(d.rd, x[d.rs1] >> (x[d.rs2] & 0x1F));
      break;
    case OpHandler::kSra:
      wr(d.rd, static_cast<uint32_t>(static_cast<int32_t>(x[d.rs1]) >> (x[d.rs2] & 0x1F)));
      break;
    case OpHandler::kOr:
      wr(d.rd, x[d.rs1] | x[d.rs2]);
      break;
    case OpHandler::kAnd:
      wr(d.rd, x[d.rs1] & x[d.rs2]);
      break;
    case OpHandler::kMul:
      wr(d.rd, x[d.rs1] * x[d.rs2]);
      break;
    case OpHandler::kMulh: {
      int64_t prod = static_cast<int64_t>(static_cast<int32_t>(x[d.rs1])) *
                     static_cast<int64_t>(static_cast<int32_t>(x[d.rs2]));
      wr(d.rd, static_cast<uint32_t>(prod >> 32));
      break;
    }
    case OpHandler::kMulhu: {
      uint64_t prod = static_cast<uint64_t>(x[d.rs1]) * static_cast<uint64_t>(x[d.rs2]);
      wr(d.rd, static_cast<uint32_t>(prod >> 32));
      break;
    }
    case OpHandler::kDiv: {
      int32_t a = static_cast<int32_t>(x[d.rs1]);
      int32_t b = static_cast<int32_t>(x[d.rs2]);
      int32_t q = b == 0 ? -1 : (a == INT32_MIN && b == -1 ? a : a / b);
      wr(d.rd, static_cast<uint32_t>(q));
      break;
    }
    case OpHandler::kDivu:
      wr(d.rd, x[d.rs2] == 0 ? UINT32_MAX : x[d.rs1] / x[d.rs2]);
      break;
    case OpHandler::kRem: {
      int32_t a = static_cast<int32_t>(x[d.rs1]);
      int32_t b = static_cast<int32_t>(x[d.rs2]);
      int32_t r = b == 0 ? a : (a == INT32_MIN && b == -1 ? 0 : a % b);
      wr(d.rd, static_cast<uint32_t>(r));
      break;
    }
    case OpHandler::kRemu:
      wr(d.rd, x[d.rs2] == 0 ? x[d.rs1] : x[d.rs1] % x[d.rs2]);
      break;
    case OpHandler::kFence:
      break;
    case OpHandler::kEcall:
      ++instructions_retired_;
      ctx.pc = next_pc;  // syscalls resume after the trap instruction
      return StepResult::kEcall;
    case OpHandler::kEbreak:
      ++instructions_retired_;
      ctx.pc = next_pc;
      return StepResult::kEbreak;
    case OpHandler::kIllegal:
    case OpHandler::kNotDecoded:  // unreachable: Step fills before executing
      return RaiseIllegal(ctx, d.imm);
  }

  ++instructions_retired_;
  ctx.pc = next_pc;
  return StepResult::kOk;
}

}  // namespace tock
