// ERA: 1
#include "vm/cpu.h"

namespace tock {
namespace {

inline int32_t SignExtend(uint32_t value, unsigned bits) {
  uint32_t shift = 32 - bits;
  return static_cast<int32_t>(value << shift) >> shift;
}

// Immediate decoders for the RV32 instruction formats.
inline int32_t ImmI(uint32_t insn) { return SignExtend(insn >> 20, 12); }
inline int32_t ImmS(uint32_t insn) {
  return SignExtend(((insn >> 25) << 5) | ((insn >> 7) & 0x1F), 12);
}
inline int32_t ImmB(uint32_t insn) {
  uint32_t imm = (((insn >> 31) & 1) << 12) | (((insn >> 7) & 1) << 11) |
                 (((insn >> 25) & 0x3F) << 5) | (((insn >> 8) & 0xF) << 1);
  return SignExtend(imm, 13);
}
inline int32_t ImmU(uint32_t insn) { return static_cast<int32_t>(insn & 0xFFFFF000); }
inline int32_t ImmJ(uint32_t insn) {
  uint32_t imm = (((insn >> 31) & 1) << 20) | (((insn >> 12) & 0xFF) << 12) |
                 (((insn >> 20) & 1) << 11) | (((insn >> 21) & 0x3FF) << 1);
  return SignExtend(imm, 21);
}

}  // namespace

StepResult Cpu::RaiseBusFault(CpuContext& ctx, uint32_t addr) {
  fault_ = VmFault{VmFault::Kind::kBus, ctx.pc, addr, bus_->last_fault()};
  return StepResult::kFault;
}

StepResult Cpu::RaiseIllegal(CpuContext& ctx, uint32_t instruction) {
  fault_ = VmFault{VmFault::Kind::kIllegalInstruction, ctx.pc, instruction, BusFault{}};
  return StepResult::kFault;
}

StepResult Cpu::Step(CpuContext& ctx) {
  if (ctx.pc == kUpcallReturnAddr) {
    return StepResult::kUpcallReturn;
  }

  auto fetched = bus_->Fetch(ctx.pc, Privilege::kUnprivileged);
  if (!fetched.has_value()) {
    return RaiseBusFault(ctx, ctx.pc);
  }
  uint32_t insn = *fetched;

  auto& x = ctx.x;
  auto wr = [&x](unsigned rd, uint32_t value) {
    if (rd != 0) {
      x[rd] = value;
    }
  };

  unsigned opcode = insn & 0x7F;
  unsigned rd = (insn >> 7) & 0x1F;
  unsigned funct3 = (insn >> 12) & 0x7;
  unsigned rs1 = (insn >> 15) & 0x1F;
  unsigned rs2 = (insn >> 20) & 0x1F;
  unsigned funct7 = insn >> 25;

  uint32_t next_pc = ctx.pc + 4;

  switch (opcode) {
    case 0x37:  // LUI
      wr(rd, static_cast<uint32_t>(ImmU(insn)));
      break;
    case 0x17:  // AUIPC
      wr(rd, ctx.pc + static_cast<uint32_t>(ImmU(insn)));
      break;
    case 0x6F: {  // JAL
      uint32_t target = ctx.pc + static_cast<uint32_t>(ImmJ(insn));
      wr(rd, ctx.pc + 4);
      next_pc = target;
      break;
    }
    case 0x67: {  // JALR
      if (funct3 != 0) {
        return RaiseIllegal(ctx, insn);
      }
      uint32_t target = (x[rs1] + static_cast<uint32_t>(ImmI(insn))) & ~1u;
      wr(rd, ctx.pc + 4);
      next_pc = target;
      break;
    }
    case 0x63: {  // branches
      bool taken;
      switch (funct3) {
        case 0:
          taken = x[rs1] == x[rs2];
          break;
        case 1:
          taken = x[rs1] != x[rs2];
          break;
        case 4:
          taken = static_cast<int32_t>(x[rs1]) < static_cast<int32_t>(x[rs2]);
          break;
        case 5:
          taken = static_cast<int32_t>(x[rs1]) >= static_cast<int32_t>(x[rs2]);
          break;
        case 6:
          taken = x[rs1] < x[rs2];
          break;
        case 7:
          taken = x[rs1] >= x[rs2];
          break;
        default:
          return RaiseIllegal(ctx, insn);
      }
      if (taken) {
        next_pc = ctx.pc + static_cast<uint32_t>(ImmB(insn));
      }
      break;
    }
    case 0x03: {  // loads
      uint32_t addr = x[rs1] + static_cast<uint32_t>(ImmI(insn));
      unsigned size;
      switch (funct3) {
        case 0:
        case 4:
          size = 1;
          break;
        case 1:
        case 5:
          size = 2;
          break;
        case 2:
          size = 4;
          break;
        default:
          return RaiseIllegal(ctx, insn);
      }
      auto loaded = bus_->Read(addr, size, Privilege::kUnprivileged);
      if (!loaded.has_value()) {
        return RaiseBusFault(ctx, addr);
      }
      uint32_t value = *loaded;
      switch (funct3) {
        case 0:  // LB
          value = static_cast<uint32_t>(SignExtend(value, 8));
          break;
        case 1:  // LH
          value = static_cast<uint32_t>(SignExtend(value, 16));
          break;
        default:  // LW, LBU, LHU already zero-extended
          break;
      }
      wr(rd, value);
      break;
    }
    case 0x23: {  // stores
      uint32_t addr = x[rs1] + static_cast<uint32_t>(ImmS(insn));
      unsigned size;
      switch (funct3) {
        case 0:
          size = 1;
          break;
        case 1:
          size = 2;
          break;
        case 2:
          size = 4;
          break;
        default:
          return RaiseIllegal(ctx, insn);
      }
      if (!bus_->Write(addr, x[rs2], size, Privilege::kUnprivileged)) {
        return RaiseBusFault(ctx, addr);
      }
      break;
    }
    case 0x13: {  // ALU immediate
      int32_t imm = ImmI(insn);
      uint32_t uimm = static_cast<uint32_t>(imm);
      unsigned shamt = rs2;  // shift amount lives in the rs2 field
      switch (funct3) {
        case 0:
          wr(rd, x[rs1] + uimm);
          break;
        case 1:
          if (funct7 != 0) {
            return RaiseIllegal(ctx, insn);
          }
          wr(rd, x[rs1] << shamt);
          break;
        case 2:
          wr(rd, static_cast<int32_t>(x[rs1]) < imm ? 1 : 0);
          break;
        case 3:
          wr(rd, x[rs1] < uimm ? 1 : 0);
          break;
        case 4:
          wr(rd, x[rs1] ^ uimm);
          break;
        case 5:
          if (funct7 == 0x00) {
            wr(rd, x[rs1] >> shamt);
          } else if (funct7 == 0x20) {
            wr(rd, static_cast<uint32_t>(static_cast<int32_t>(x[rs1]) >> shamt));
          } else {
            return RaiseIllegal(ctx, insn);
          }
          break;
        case 6:
          wr(rd, x[rs1] | uimm);
          break;
        case 7:
          wr(rd, x[rs1] & uimm);
          break;
      }
      break;
    }
    case 0x33: {  // ALU register
      if (funct7 == 0x01) {  // M extension
        switch (funct3) {
          case 0:
            wr(rd, x[rs1] * x[rs2]);
            break;
          case 1: {  // MULH
            int64_t prod = static_cast<int64_t>(static_cast<int32_t>(x[rs1])) *
                           static_cast<int64_t>(static_cast<int32_t>(x[rs2]));
            wr(rd, static_cast<uint32_t>(prod >> 32));
            break;
          }
          case 3: {  // MULHU
            uint64_t prod = static_cast<uint64_t>(x[rs1]) * static_cast<uint64_t>(x[rs2]);
            wr(rd, static_cast<uint32_t>(prod >> 32));
            break;
          }
          case 4: {  // DIV
            int32_t a = static_cast<int32_t>(x[rs1]);
            int32_t b = static_cast<int32_t>(x[rs2]);
            int32_t q = b == 0 ? -1 : (a == INT32_MIN && b == -1 ? a : a / b);
            wr(rd, static_cast<uint32_t>(q));
            break;
          }
          case 5:  // DIVU
            wr(rd, x[rs2] == 0 ? UINT32_MAX : x[rs1] / x[rs2]);
            break;
          case 6: {  // REM
            int32_t a = static_cast<int32_t>(x[rs1]);
            int32_t b = static_cast<int32_t>(x[rs2]);
            int32_t r = b == 0 ? a : (a == INT32_MIN && b == -1 ? 0 : a % b);
            wr(rd, static_cast<uint32_t>(r));
            break;
          }
          case 7:  // REMU
            wr(rd, x[rs2] == 0 ? x[rs1] : x[rs1] % x[rs2]);
            break;
          default:
            return RaiseIllegal(ctx, insn);
        }
        break;
      }
      switch (funct3) {
        case 0:
          if (funct7 == 0x00) {
            wr(rd, x[rs1] + x[rs2]);
          } else if (funct7 == 0x20) {
            wr(rd, x[rs1] - x[rs2]);
          } else {
            return RaiseIllegal(ctx, insn);
          }
          break;
        case 1:
          wr(rd, x[rs1] << (x[rs2] & 0x1F));
          break;
        case 2:
          wr(rd, static_cast<int32_t>(x[rs1]) < static_cast<int32_t>(x[rs2]) ? 1 : 0);
          break;
        case 3:
          wr(rd, x[rs1] < x[rs2] ? 1 : 0);
          break;
        case 4:
          wr(rd, x[rs1] ^ x[rs2]);
          break;
        case 5:
          if (funct7 == 0x00) {
            wr(rd, x[rs1] >> (x[rs2] & 0x1F));
          } else if (funct7 == 0x20) {
            wr(rd, static_cast<uint32_t>(static_cast<int32_t>(x[rs1]) >> (x[rs2] & 0x1F)));
          } else {
            return RaiseIllegal(ctx, insn);
          }
          break;
        case 6:
          wr(rd, x[rs1] | x[rs2]);
          break;
        case 7:
          wr(rd, x[rs1] & x[rs2]);
          break;
      }
      break;
    }
    case 0x73: {  // SYSTEM
      uint32_t imm = insn >> 20;
      if (funct3 == 0 && rd == 0 && rs1 == 0) {
        ++instructions_retired_;
        ctx.pc = next_pc;  // syscalls resume after the trap instruction
        return imm == 0 ? StepResult::kEcall : StepResult::kEbreak;
      }
      return RaiseIllegal(ctx, insn);
    }
    case 0x0F:  // FENCE: no-op in this memory model
      break;
    default:
      return RaiseIllegal(ctx, insn);
  }

  ++instructions_retired_;
  ctx.pc = next_pc;
  return StepResult::kOk;
}

}  // namespace tock
