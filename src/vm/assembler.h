// ERA: 1
// Two-pass RV32IM assembler. Userspace applications in this reproduction are written
// as assembly text (see src/libtock for the syscall wrappers and app packaging);
// the assembler turns them into the raw instruction streams the Cpu executes.
//
// Supported syntax:
//   - labels:           `loop:`
//   - comments:         `# ...` or `// ...`
//   - registers:        x0..x31 and ABI names (zero, ra, sp, gp, tp, t0-6, s0-11,
//                       a0-7, fp)
//   - RV32I:            lui auipc jal jalr beq bne blt bge bltu bgeu lb lh lw lbu
//                       lhu sb sh sw addi slti sltiu xori ori andi slli srli srai
//                       add sub sll slt sltu xor srl sra or and ecall ebreak fence
//   - RV32M:            mul mulh mulhu div divu rem remu
//   - pseudo:           li la mv j jr call ret nop beqz bnez seqz snez neg
//   - directives:       .word .byte .asciz .align .space .equ
//   - immediates:       decimal, 0x hex, 'c' characters, .equ symbols, labels, and
//                       symbol+offset / symbol-offset
#ifndef TOCK_VM_ASSEMBLER_H_
#define TOCK_VM_ASSEMBLER_H_

#include <cstdint>
#include <map>
#include <string>
#include <vector>

namespace tock {

struct AssembledImage {
  uint32_t base_addr = 0;
  std::vector<uint8_t> bytes;
  std::map<std::string, uint32_t> symbols;  // label -> absolute address
};

class Assembler {
 public:
  // Assembles `source` for placement at absolute address `base_addr` (labels and
  // `la` resolve to absolute addresses). Returns false on error; see error().
  bool Assemble(const std::string& source, uint32_t base_addr, AssembledImage* out);

  const std::string& error() const { return error_; }

 private:
  std::string error_;
};

}  // namespace tock

#endif  // TOCK_VM_ASSEMBLER_H_
