// ERA: 1
#include "vm/decode.h"

namespace tock {
namespace {

inline int32_t SignExtend(uint32_t value, unsigned bits) {
  uint32_t shift = 32 - bits;
  return static_cast<int32_t>(value << shift) >> shift;
}

// Immediate decoders for the RV32 instruction formats (identical to the ones the
// interpreter used per-step; they now run once per flash word).
inline int32_t ImmI(uint32_t insn) { return SignExtend(insn >> 20, 12); }
inline int32_t ImmS(uint32_t insn) {
  return SignExtend(((insn >> 25) << 5) | ((insn >> 7) & 0x1F), 12);
}
inline int32_t ImmB(uint32_t insn) {
  uint32_t imm = (((insn >> 31) & 1) << 12) | (((insn >> 7) & 1) << 11) |
                 (((insn >> 25) & 0x3F) << 5) | (((insn >> 8) & 0xF) << 1);
  return SignExtend(imm, 13);
}
inline int32_t ImmU(uint32_t insn) { return static_cast<int32_t>(insn & 0xFFFFF000); }
inline int32_t ImmJ(uint32_t insn) {
  uint32_t imm = (((insn >> 31) & 1) << 20) | (((insn >> 12) & 0xFF) << 12) |
                 (((insn >> 20) & 1) << 11) | (((insn >> 21) & 0x3FF) << 1);
  return SignExtend(imm, 21);
}

// kIllegal records the raw word so the fault path can report the offending
// encoding (VmFault::detail), exactly as the fetch-decode interpreter did.
inline DecodedInsn Illegal(uint32_t insn) {
  return DecodedInsn{OpHandler::kIllegal, 0, 0, 0, insn};
}

}  // namespace

DecodedInsn Decode(uint32_t insn) {
  DecodedInsn d;
  d.rd = static_cast<uint8_t>((insn >> 7) & 0x1F);
  d.rs1 = static_cast<uint8_t>((insn >> 15) & 0x1F);
  d.rs2 = static_cast<uint8_t>((insn >> 20) & 0x1F);
  unsigned funct3 = (insn >> 12) & 0x7;
  unsigned funct7 = insn >> 25;

  switch (insn & 0x7F) {
    case 0x37:
      d.h = OpHandler::kLui;
      d.imm = static_cast<uint32_t>(ImmU(insn));
      return d;
    case 0x17:
      d.h = OpHandler::kAuipc;
      d.imm = static_cast<uint32_t>(ImmU(insn));
      return d;
    case 0x6F:
      d.h = OpHandler::kJal;
      d.imm = static_cast<uint32_t>(ImmJ(insn));
      return d;
    case 0x67:
      if (funct3 != 0) {
        return Illegal(insn);
      }
      d.h = OpHandler::kJalr;
      d.imm = static_cast<uint32_t>(ImmI(insn));
      return d;
    case 0x63: {
      switch (funct3) {
        case 0:
          d.h = OpHandler::kBeq;
          break;
        case 1:
          d.h = OpHandler::kBne;
          break;
        case 4:
          d.h = OpHandler::kBlt;
          break;
        case 5:
          d.h = OpHandler::kBge;
          break;
        case 6:
          d.h = OpHandler::kBltu;
          break;
        case 7:
          d.h = OpHandler::kBgeu;
          break;
        default:
          return Illegal(insn);
      }
      d.imm = static_cast<uint32_t>(ImmB(insn));
      return d;
    }
    case 0x03: {
      switch (funct3) {
        case 0:
          d.h = OpHandler::kLb;
          break;
        case 1:
          d.h = OpHandler::kLh;
          break;
        case 2:
          d.h = OpHandler::kLw;
          break;
        case 4:
          d.h = OpHandler::kLbu;
          break;
        case 5:
          d.h = OpHandler::kLhu;
          break;
        default:
          return Illegal(insn);
      }
      d.imm = static_cast<uint32_t>(ImmI(insn));
      return d;
    }
    case 0x23: {
      switch (funct3) {
        case 0:
          d.h = OpHandler::kSb;
          break;
        case 1:
          d.h = OpHandler::kSh;
          break;
        case 2:
          d.h = OpHandler::kSw;
          break;
        default:
          return Illegal(insn);
      }
      d.imm = static_cast<uint32_t>(ImmS(insn));
      return d;
    }
    case 0x13: {
      d.imm = static_cast<uint32_t>(ImmI(insn));
      switch (funct3) {
        case 0:
          d.h = OpHandler::kAddi;
          return d;
        case 1:
          if (funct7 != 0) {
            return Illegal(insn);
          }
          d.h = OpHandler::kSlli;
          d.imm = d.rs2;  // shift amount lives in the rs2 field
          return d;
        case 2:
          d.h = OpHandler::kSlti;
          return d;
        case 3:
          d.h = OpHandler::kSltiu;
          return d;
        case 4:
          d.h = OpHandler::kXori;
          return d;
        case 5:
          if (funct7 == 0x00) {
            d.h = OpHandler::kSrli;
          } else if (funct7 == 0x20) {
            d.h = OpHandler::kSrai;
          } else {
            return Illegal(insn);
          }
          d.imm = d.rs2;
          return d;
        case 6:
          d.h = OpHandler::kOri;
          return d;
        case 7:
          d.h = OpHandler::kAndi;
          return d;
      }
      return Illegal(insn);
    }
    case 0x33: {
      if (funct7 == 0x01) {  // M extension (no MULHSU in this subset: funct3==2 traps)
        switch (funct3) {
          case 0:
            d.h = OpHandler::kMul;
            return d;
          case 1:
            d.h = OpHandler::kMulh;
            return d;
          case 3:
            d.h = OpHandler::kMulhu;
            return d;
          case 4:
            d.h = OpHandler::kDiv;
            return d;
          case 5:
            d.h = OpHandler::kDivu;
            return d;
          case 6:
            d.h = OpHandler::kRem;
            return d;
          case 7:
            d.h = OpHandler::kRemu;
            return d;
          default:
            return Illegal(insn);
        }
      }
      switch (funct3) {
        case 0:
          if (funct7 == 0x00) {
            d.h = OpHandler::kAdd;
          } else if (funct7 == 0x20) {
            d.h = OpHandler::kSub;
          } else {
            return Illegal(insn);
          }
          return d;
        case 1:  // funct7 ignored outside {0,5}, matching the interpreter
          d.h = OpHandler::kSll;
          return d;
        case 2:
          d.h = OpHandler::kSlt;
          return d;
        case 3:
          d.h = OpHandler::kSltu;
          return d;
        case 4:
          d.h = OpHandler::kXor;
          return d;
        case 5:
          if (funct7 == 0x00) {
            d.h = OpHandler::kSrl;
          } else if (funct7 == 0x20) {
            d.h = OpHandler::kSra;
          } else {
            return Illegal(insn);
          }
          return d;
        case 6:
          d.h = OpHandler::kOr;
          return d;
        case 7:
          d.h = OpHandler::kAnd;
          return d;
      }
      return Illegal(insn);
    }
    case 0x73:
      // ecall/ebreak only; any other SYSTEM encoding (CSR ops, or WFI-style
      // immediates with nonzero rd/rs1/funct3) is illegal — and any nonzero
      // immediate with the zero fields is an ebreak-class trap, as before.
      if (funct3 == 0 && d.rd == 0 && d.rs1 == 0) {
        d.h = (insn >> 20) == 0 ? OpHandler::kEcall : OpHandler::kEbreak;
        return d;
      }
      return Illegal(insn);
    case 0x0F:  // FENCE: no-op in this memory model, whatever the funct3
      d.h = OpHandler::kFence;
      return d;
    default:
      return Illegal(insn);
  }
}

}  // namespace tock
