// ERA: 1
// Predecoded instruction cache for the RV32IM interpreter (the ROADMAP "make a hot
// path measurably faster" step).
//
// The interpreter originally paid a full bus fetch (MPU execute check + routing) and
// a nested opcode/funct3/funct7 switch for every retired instruction. Flash is
// immutable outside the flash-controller programming path, so that work is
// decode-once/execute-many territory — the shape QEMU-style predecoded interpreters
// use: each 4-byte flash word decodes once into a compact DecodedInsn record
// {handler id, rd, rs1, rs2, imm}, and execution replays records straight from the
// cache.
//
// Everything here is host-side only. The simulated machine is unchanged: cycle
// accounting, fault semantics, and architectural state transitions are bit-identical
// with the cache on or off (golden traces in tests/golden/ hold either way), because
//   * MemoryBus::Fetch never ticks simulated cycles and never routes to MMIO, and
//   * Mpu::CheckAccess is a pure predicate — skipping a check that is known to pass
//     is unobservable.
// The known-to-pass argument is the cache's safety contract: the kernel binds a
// process's cache to the Cpu only while MPU region 0 maps exactly that process's
// flash window read+execute, and Lookup() only serves 4-aligned pcs whose full word
// lies inside the window. Every other pc — including the first execution of each
// word, which fills the cache — takes the ordinary checked bus path.
//
// Invalidation: ResetForRestart() invalidates the whole cache (restart), and the
// kernel observes MemoryBus::ProgramFlash — the single modeled flash-write path
// (flash controller, app installer, fault-injected bit flips) — to invalidate any
// overlapping range. -DTOCK_DECODE_CACHE=OFF compiles the escape hatch: the kernel
// never binds a cache and the interpreter runs exactly as before.
//
// Superblocks (interpreter v2): on top of the decoded slots the cache records
// straight-line runs — "superblocks" — as a parallel run-length table:
// block_len_[i] == L means entries_[i .. i+L-1] are all decoded and only the last
// one can redirect control flow (branch/jump/trap) or the run hit the window edge
// or the kMaxBlockInsns bound. The threaded batch engine (Cpu::RunBatch) executes
// a whole block with no per-instruction lookup/budget/upcall-address checks, and
// chains from a taken branch straight into the block at the target pc. The same
// ProgramFlash observer path keeps blocks honest: invalidating any word drops
// every block overlapping it (a bounded back-scan, since a block spans at most
// kMaxBlockInsns words). -DTOCK_SUPERBLOCKS=OFF compiles the block tables and the
// block fast path out; KernelConfig::enable_superblocks is the runtime toggle.
#ifndef TOCK_VM_DECODE_H_
#define TOCK_VM_DECODE_H_

#include <algorithm>
#include <cstddef>
#include <cstdint>
#include <vector>

// CMake passes TOCK_SUPERBLOCKS_ENABLED=0 for -DTOCK_SUPERBLOCKS=OFF builds
// (kernel/config.h mirrors this as KernelConfig::superblocks_compiled; the
// fallback lives here too because the vm layer cannot include kernel headers).
#ifndef TOCK_SUPERBLOCKS_ENABLED
#define TOCK_SUPERBLOCKS_ENABLED 1
#endif

namespace tock {

// Handler ids for the execute switch. kNotDecoded doubles as the empty-slot
// sentinel: no instruction word decodes to it (anything unrecognized decodes to
// kIllegal), so a zero-filled cache is simply "all misses".
enum class OpHandler : uint8_t {
  kNotDecoded = 0,
  kLui,
  kAuipc,
  kJal,
  kJalr,
  kBeq,
  kBne,
  kBlt,
  kBge,
  kBltu,
  kBgeu,
  kLb,
  kLh,
  kLw,
  kLbu,
  kLhu,
  kSb,
  kSh,
  kSw,
  kAddi,
  kSlli,
  kSlti,
  kSltiu,
  kXori,
  kSrli,
  kSrai,
  kOri,
  kAndi,
  kAdd,
  kSub,
  kSll,
  kSlt,
  kSltu,
  kXor,
  kSrl,
  kSra,
  kOr,
  kAnd,
  kMul,
  kMulh,
  kMulhu,
  kDiv,
  kDivu,
  kRem,
  kRemu,
  kFence,   // no-op in this memory model, any funct3
  kEcall,
  kEbreak,  // any SYSTEM with funct3==0, rd==0, rs1==0 and imm != 0 (incl. WFI)
  kIllegal,
};

// The handler id doubles as the precomputed dispatch index: the threaded engine
// jumps through a label table indexed by the raw OpHandler byte, so decode time
// is the only place dispatch targets are ever computed. This X-macro pins the
// table layout; OpHandlerOrderMatches() below proves it matches the enum, so the
// enum stays readable and the table cannot silently skew.
#define TOCK_OPHANDLERS(X)                                                          \
  X(NotDecoded) X(Lui) X(Auipc) X(Jal) X(Jalr) X(Beq) X(Bne) X(Blt) X(Bge) X(Bltu) \
  X(Bgeu) X(Lb) X(Lh) X(Lw) X(Lbu) X(Lhu) X(Sb) X(Sh) X(Sw) X(Addi) X(Slli)        \
  X(Slti) X(Sltiu) X(Xori) X(Srli) X(Srai) X(Ori) X(Andi) X(Add) X(Sub) X(Sll)     \
  X(Slt) X(Sltu) X(Xor) X(Srl) X(Sra) X(Or) X(And) X(Mul) X(Mulh) X(Mulhu) X(Div)  \
  X(Divu) X(Rem) X(Remu) X(Fence) X(Ecall) X(Ebreak) X(Illegal)

inline constexpr OpHandler kOpHandlerOrder[] = {
#define TOCK_OPHANDLER_ENUM(Name) OpHandler::k##Name,
    TOCK_OPHANDLERS(TOCK_OPHANDLER_ENUM)
#undef TOCK_OPHANDLER_ENUM
};
inline constexpr size_t kNumOpHandlers = sizeof(kOpHandlerOrder) / sizeof(kOpHandlerOrder[0]);

constexpr bool OpHandlerOrderMatches() {
  for (size_t i = 0; i < kNumOpHandlers; ++i) {
    if (static_cast<size_t>(kOpHandlerOrder[i]) != i) {
      return false;
    }
  }
  return true;
}
static_assert(OpHandlerOrderMatches(), "TOCK_OPHANDLERS must list OpHandler in enum order");
static_assert(static_cast<size_t>(OpHandler::kIllegal) == kNumOpHandlers - 1,
              "TOCK_OPHANDLERS must cover every OpHandler");

// True for the handlers that terminate a superblock: anything that can redirect
// control flow or trap to the kernel. Straight-line instructions (including
// kFence, a no-op here) extend the block.
constexpr bool EndsBlock(OpHandler h) {
  return (h >= OpHandler::kJal && h <= OpHandler::kBgeu) || h >= OpHandler::kEcall ||
         h == OpHandler::kNotDecoded;
}

// One predecoded instruction. 8 bytes: handler id + register fields + the one
// immediate the handler needs. `imm` holds the sign-extended immediate for I/S/B/U/J
// formats, the shift amount for immediate shifts, and the raw instruction word for
// kIllegal (the fault records the offending encoding in VmFault::detail).
struct DecodedInsn {
  OpHandler h = OpHandler::kNotDecoded;
  uint8_t rd = 0;
  uint8_t rs1 = 0;
  uint8_t rs2 = 0;
  uint32_t imm = 0;
};
static_assert(sizeof(DecodedInsn) == 8, "decoded records should stay compact");

// Decodes one instruction word. Total: every word maps to some handler (kIllegal for
// unrecognized encodings), mirroring the interpreter's fault behavior exactly.
DecodedInsn Decode(uint32_t word);

// Per-process cache of decoded flash words, indexed by (pc - base) / 4, plus the
// superblock run-length table. Owned by the process control block; allocated
// lazily on the process's first dispatch (never-run fleet slots stay at zero
// bytes) and freed again when the process dies or restarts (Release()).
class DecodeCache {
 public:
  static constexpr bool kSuperblocksCompiled = TOCK_SUPERBLOCKS_ENABLED != 0;

  // Upper bound on superblock length in instructions. Bounds the invalidation
  // back-scan (a block overlapping word W must start within kMaxBlockInsns-1
  // words before W) and keeps the batch engine's up-front budget reservation
  // small relative to any realistic timeslice.
  static constexpr uint32_t kMaxBlockInsns = 64;

  // (Re)binds the cache to a flash window and drops all cached decodes. The block
  // table is only allocated when superblocks are compiled in and enabled for this
  // board, so a decode-cache-only configuration pays no extra memory.
  void Configure(uint32_t base, uint32_t size, bool superblocks = kSuperblocksCompiled) {
    base_ = base;
    entries_.assign(size / 4, DecodedInsn{});
    data_ = entries_.data();
    limit_ = static_cast<uint32_t>(entries_.size());
    live_blocks_ = 0;
    if (kSuperblocksCompiled && superblocks) {
      block_len_.assign(entries_.size(), 0);
      block_data_ = block_len_.data();
    } else {
      block_len_.clear();
      block_len_.shrink_to_fit();
      block_data_ = nullptr;
    }
  }

  bool IsConfigured() const { return !entries_.empty(); }

  // Frees the decode and block tables outright (process exit/fault/restart — the
  // lazy-allocation counterpart of Configure). Leaves data_ null and limit_ zero
  // so a stale Lookup misses harmlessly; the next dispatch reconfigures. Returns
  // the number of live superblocks dropped, for the vm.blocks_invalidated stat.
  uint64_t Release() {
    if (entries_.empty()) {
      return 0;
    }
    ++invalidations_;
    uint64_t dropped = live_blocks_;
    blocks_dropped_ += dropped;
    live_blocks_ = 0;
    std::vector<DecodedInsn>().swap(entries_);
    std::vector<uint8_t>().swap(block_len_);
    data_ = nullptr;
    block_data_ = nullptr;
    limit_ = 0;
    return dropped;
  }

  // Heap bytes currently held (the vm.cache_bytes gauge).
  uint64_t MemoryBytes() const {
    return entries_.capacity() * sizeof(DecodedInsn) + block_len_.capacity();
  }

  // Drops every cached decode and block (process restart / slot reuse).
  void Invalidate() {
    if (!entries_.empty()) {
      std::fill(entries_.begin(), entries_.end(), DecodedInsn{});
      if (block_data_ != nullptr) {
        std::fill(block_len_.begin(), block_len_.end(), uint8_t{0});
        blocks_dropped_ += live_blocks_;
        live_blocks_ = 0;
      }
      ++invalidations_;
    }
  }

  // Drops cached decodes overlapping [addr, addr+len) — called when flash inside the
  // window is reprogrammed. A write to byte B stales the 4-aligned word containing B.
  // Every superblock overlapping a stale word is dropped whole (the block invariant
  // is "all member words decoded and current"); returns how many blocks that was.
  uint64_t InvalidateRange(uint32_t addr, uint32_t len) {
    if (entries_.empty() || len == 0) {
      return 0;
    }
    uint64_t lo = addr > base_ ? addr - base_ : 0;
    uint64_t hi = static_cast<uint64_t>(addr) + len;
    uint64_t window_end = static_cast<uint64_t>(base_) + entries_.size() * 4;
    if (addr >= window_end || hi <= base_) {
      return 0;
    }
    hi -= base_;
    size_t first = static_cast<size_t>(lo / 4);
    size_t last = static_cast<size_t>((hi + 3) / 4);
    if (last > entries_.size()) {
      last = entries_.size();
    }
    for (size_t i = first; i < last; ++i) {
      entries_[i] = DecodedInsn{};
    }
    ++invalidations_;
    uint64_t dropped = 0;
    if (block_data_ != nullptr) {
      // A block [s, s+len) overlaps a stale word iff s < last && s+len > first;
      // blocks are at most kMaxBlockInsns long, so the back-scan is bounded.
      size_t scan_lo = first > (kMaxBlockInsns - 1) ? first - (kMaxBlockInsns - 1) : 0;
      for (size_t s = scan_lo; s < last; ++s) {
        uint8_t blk = block_data_[s];
        if (blk != 0 && s + blk > first) {
          block_data_[s] = 0;
          ++dropped;
        }
      }
      blocks_dropped_ += dropped;
      live_blocks_ -= static_cast<uint32_t>(dropped);
    }
    return dropped;
  }

  // The cache slot for `pc`, or nullptr when `pc` is outside the window (misaligned,
  // below base, or its word not fully inside) — those take the checked bus path.
  DecodedInsn* Lookup(uint32_t pc) {
    uint32_t off = pc - base_;  // wraps huge for pc < base_, failing the index check
    if ((off & 3u) != 0) {
      return nullptr;
    }
    uint32_t idx = off >> 2;
    // data_/limit_ mirror entries_ (set in Configure) so this per-instruction path
    // is raw pointer arithmetic rather than std::vector accessor calls — at -O0,
    // the Debug presets' default, those are real calls.
    if (idx >= limit_) {
      return nullptr;
    }
    return data_ + idx;
  }

  void NoteFill() { ++fills_; }

  // --- Superblock access (Cpu::RunBatch and its block builder) ---------------
  // All of these assume blocks_enabled(); indices come from IndexOf on a slot
  // Lookup already validated.

  bool blocks_enabled() const { return block_data_ != nullptr; }
  uint32_t IndexOf(const DecodedInsn* slot) const {
    return static_cast<uint32_t>(slot - data_);
  }
  DecodedInsn* EntryAt(uint32_t idx) { return data_ + idx; }
  uint8_t BlockLenAt(uint32_t idx) const { return block_data_[idx]; }
  void SetBlockLen(uint32_t idx, uint8_t len) {
    block_data_[idx] = len;
    ++blocks_built_;
    ++live_blocks_;
  }
  uint32_t base() const { return base_; }
  uint32_t limit() const { return limit_; }

  // Host-side instrumentation (tests prove caching/invalidation through these).
  uint64_t fills() const { return fills_; }
  uint64_t invalidations() const { return invalidations_; }
  uint64_t blocks_built() const { return blocks_built_; }
  uint64_t blocks_dropped() const { return blocks_dropped_; }
  uint32_t live_blocks() const { return live_blocks_; }

 private:
  uint32_t base_ = 0;
  std::vector<DecodedInsn> entries_;
  std::vector<uint8_t> block_len_;  // run length starting at word i; 0 = no block
  DecodedInsn* data_ = nullptr;     // == entries_.data(); see Lookup
  uint8_t* block_data_ = nullptr;   // == block_len_.data(), null when blocks off
  uint32_t limit_ = 0;              // == entries_.size()
  uint32_t live_blocks_ = 0;
  uint64_t fills_ = 0;
  uint64_t invalidations_ = 0;
  uint64_t blocks_built_ = 0;
  uint64_t blocks_dropped_ = 0;
};

}  // namespace tock

#endif  // TOCK_VM_DECODE_H_
