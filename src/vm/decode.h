// ERA: 1
// Predecoded instruction cache for the RV32IM interpreter (the ROADMAP "make a hot
// path measurably faster" step).
//
// The interpreter originally paid a full bus fetch (MPU execute check + routing) and
// a nested opcode/funct3/funct7 switch for every retired instruction. Flash is
// immutable outside the flash-controller programming path, so that work is
// decode-once/execute-many territory — the shape QEMU-style predecoded interpreters
// use: each 4-byte flash word decodes once into a compact DecodedInsn record
// {handler id, rd, rs1, rs2, imm}, and execution replays records straight from the
// cache.
//
// Everything here is host-side only. The simulated machine is unchanged: cycle
// accounting, fault semantics, and architectural state transitions are bit-identical
// with the cache on or off (golden traces in tests/golden/ hold either way), because
//   * MemoryBus::Fetch never ticks simulated cycles and never routes to MMIO, and
//   * Mpu::CheckAccess is a pure predicate — skipping a check that is known to pass
//     is unobservable.
// The known-to-pass argument is the cache's safety contract: the kernel binds a
// process's cache to the Cpu only while MPU region 0 maps exactly that process's
// flash window read+execute, and Lookup() only serves 4-aligned pcs whose full word
// lies inside the window. Every other pc — including the first execution of each
// word, which fills the cache — takes the ordinary checked bus path.
//
// Invalidation: ResetForRestart() invalidates the whole cache (restart), and the
// kernel observes MemoryBus::ProgramFlash — the single modeled flash-write path
// (flash controller, app installer, fault-injected bit flips) — to invalidate any
// overlapping range. -DTOCK_DECODE_CACHE=OFF compiles the escape hatch: the kernel
// never binds a cache and the interpreter runs exactly as before.
#ifndef TOCK_VM_DECODE_H_
#define TOCK_VM_DECODE_H_

#include <algorithm>
#include <cstdint>
#include <vector>

namespace tock {

// Handler ids for the execute switch. kNotDecoded doubles as the empty-slot
// sentinel: no instruction word decodes to it (anything unrecognized decodes to
// kIllegal), so a zero-filled cache is simply "all misses".
enum class OpHandler : uint8_t {
  kNotDecoded = 0,
  kLui,
  kAuipc,
  kJal,
  kJalr,
  kBeq,
  kBne,
  kBlt,
  kBge,
  kBltu,
  kBgeu,
  kLb,
  kLh,
  kLw,
  kLbu,
  kLhu,
  kSb,
  kSh,
  kSw,
  kAddi,
  kSlli,
  kSlti,
  kSltiu,
  kXori,
  kSrli,
  kSrai,
  kOri,
  kAndi,
  kAdd,
  kSub,
  kSll,
  kSlt,
  kSltu,
  kXor,
  kSrl,
  kSra,
  kOr,
  kAnd,
  kMul,
  kMulh,
  kMulhu,
  kDiv,
  kDivu,
  kRem,
  kRemu,
  kFence,   // no-op in this memory model, any funct3
  kEcall,
  kEbreak,  // any SYSTEM with funct3==0, rd==0, rs1==0 and imm != 0 (incl. WFI)
  kIllegal,
};

// One predecoded instruction. 8 bytes: handler id + register fields + the one
// immediate the handler needs. `imm` holds the sign-extended immediate for I/S/B/U/J
// formats, the shift amount for immediate shifts, and the raw instruction word for
// kIllegal (the fault records the offending encoding in VmFault::detail).
struct DecodedInsn {
  OpHandler h = OpHandler::kNotDecoded;
  uint8_t rd = 0;
  uint8_t rs1 = 0;
  uint8_t rs2 = 0;
  uint32_t imm = 0;
};
static_assert(sizeof(DecodedInsn) == 8, "decoded records should stay compact");

// Decodes one instruction word. Total: every word maps to some handler (kIllegal for
// unrecognized encodings), mirroring the interpreter's fault behavior exactly.
DecodedInsn Decode(uint32_t word);

// Per-process cache of decoded flash words, indexed by (pc - base) / 4. Owned by the
// process control block; sized to the process's flash window at load time.
class DecodeCache {
 public:
  // (Re)binds the cache to a flash window and drops all cached decodes.
  void Configure(uint32_t base, uint32_t size) {
    base_ = base;
    entries_.assign(size / 4, DecodedInsn{});
    data_ = entries_.data();
    limit_ = static_cast<uint32_t>(entries_.size());
  }

  bool IsConfigured() const { return !entries_.empty(); }

  // Drops every cached decode (process restart / slot reuse).
  void Invalidate() {
    if (!entries_.empty()) {
      std::fill(entries_.begin(), entries_.end(), DecodedInsn{});
      ++invalidations_;
    }
  }

  // Drops cached decodes overlapping [addr, addr+len) — called when flash inside the
  // window is reprogrammed. A write to byte B stales the 4-aligned word containing B.
  void InvalidateRange(uint32_t addr, uint32_t len) {
    if (entries_.empty() || len == 0) {
      return;
    }
    uint64_t lo = addr > base_ ? addr - base_ : 0;
    uint64_t hi = static_cast<uint64_t>(addr) + len;
    uint64_t window_end = static_cast<uint64_t>(base_) + entries_.size() * 4;
    if (addr >= window_end || hi <= base_) {
      return;
    }
    hi -= base_;
    size_t first = static_cast<size_t>(lo / 4);
    size_t last = static_cast<size_t>((hi + 3) / 4);
    if (last > entries_.size()) {
      last = entries_.size();
    }
    for (size_t i = first; i < last; ++i) {
      entries_[i] = DecodedInsn{};
    }
    ++invalidations_;
  }

  // The cache slot for `pc`, or nullptr when `pc` is outside the window (misaligned,
  // below base, or its word not fully inside) — those take the checked bus path.
  DecodedInsn* Lookup(uint32_t pc) {
    uint32_t off = pc - base_;  // wraps huge for pc < base_, failing the index check
    if ((off & 3u) != 0) {
      return nullptr;
    }
    uint32_t idx = off >> 2;
    // data_/limit_ mirror entries_ (set in Configure) so this per-instruction path
    // is raw pointer arithmetic rather than std::vector accessor calls — at -O0,
    // the Debug presets' default, those are real calls.
    if (idx >= limit_) {
      return nullptr;
    }
    return data_ + idx;
  }

  void NoteFill() { ++fills_; }

  // Host-side instrumentation (tests prove caching/invalidation through these).
  uint64_t fills() const { return fills_; }
  uint64_t invalidations() const { return invalidations_; }

 private:
  uint32_t base_ = 0;
  std::vector<DecodedInsn> entries_;
  DecodedInsn* data_ = nullptr;  // == entries_.data(); see Lookup
  uint32_t limit_ = 0;           // == entries_.size()
  uint64_t fills_ = 0;
  uint64_t invalidations_ = 0;
};

}  // namespace tock

#endif  // TOCK_VM_DECODE_H_
