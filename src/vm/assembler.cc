// ERA: 1
#include "vm/assembler.h"

#include <cctype>
#include <cstdlib>
#include <optional>
#include <sstream>

namespace tock {
namespace {

// --- Tokenizing helpers -----------------------------------------------------------

std::string Trim(const std::string& s) {
  size_t begin = s.find_first_not_of(" \t\r\n");
  if (begin == std::string::npos) {
    return "";
  }
  size_t end = s.find_last_not_of(" \t\r\n");
  return s.substr(begin, end - begin + 1);
}

std::string StripComment(const std::string& line) {
  // Respect quotes so `.asciz "# not a comment"` survives.
  bool in_quote = false;
  for (size_t i = 0; i < line.size(); ++i) {
    char c = line[i];
    if (c == '"') {
      in_quote = !in_quote;
    } else if (!in_quote) {
      if (c == '#' || (c == '/' && i + 1 < line.size() && line[i + 1] == '/')) {
        return line.substr(0, i);
      }
    }
  }
  return line;
}

std::string ToLower(std::string s) {
  for (char& c : s) {
    c = static_cast<char>(std::tolower(static_cast<unsigned char>(c)));
  }
  return s;
}

// Splits "a0, 4(sp)" into {"a0", "4(sp)"}.
std::vector<std::string> SplitOperands(const std::string& s) {
  std::vector<std::string> out;
  std::string cur;
  bool in_quote = false;
  for (char c : s) {
    if (c == '"') {
      in_quote = !in_quote;
    }
    if (c == ',' && !in_quote) {
      out.push_back(Trim(cur));
      cur.clear();
    } else {
      cur.push_back(c);
    }
  }
  std::string last = Trim(cur);
  if (!last.empty()) {
    out.push_back(last);
  }
  return out;
}

std::optional<unsigned> ParseRegister(const std::string& name_in) {
  std::string name = ToLower(name_in);
  static const std::map<std::string, unsigned> kAbi = {
      {"zero", 0}, {"ra", 1},  {"sp", 2},   {"gp", 3},   {"tp", 4},  {"t0", 5},  {"t1", 6},
      {"t2", 7},   {"s0", 8},  {"fp", 8},   {"s1", 9},   {"a0", 10}, {"a1", 11}, {"a2", 12},
      {"a3", 13},  {"a4", 14}, {"a5", 15},  {"a6", 16},  {"a7", 17}, {"s2", 18}, {"s3", 19},
      {"s4", 20},  {"s5", 21}, {"s6", 22},  {"s7", 23},  {"s8", 24}, {"s9", 25}, {"s10", 26},
      {"s11", 27}, {"t3", 28}, {"t4", 29},  {"t5", 30},  {"t6", 31}};
  auto it = kAbi.find(name);
  if (it != kAbi.end()) {
    return it->second;
  }
  if (name.size() >= 2 && name[0] == 'x') {
    char* end = nullptr;
    long v = std::strtol(name.c_str() + 1, &end, 10);
    if (*end == '\0' && v >= 0 && v < 32) {
      return static_cast<unsigned>(v);
    }
  }
  return std::nullopt;
}

// --- Encoders ---------------------------------------------------------------------

uint32_t EncodeR(unsigned funct7, unsigned rs2, unsigned rs1, unsigned funct3, unsigned rd,
                 unsigned opcode) {
  return (funct7 << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) | opcode;
}
uint32_t EncodeI(int32_t imm, unsigned rs1, unsigned funct3, unsigned rd, unsigned opcode) {
  return (static_cast<uint32_t>(imm & 0xFFF) << 20) | (rs1 << 15) | (funct3 << 12) | (rd << 7) |
         opcode;
}
uint32_t EncodeS(int32_t imm, unsigned rs2, unsigned rs1, unsigned funct3, unsigned opcode) {
  uint32_t uimm = static_cast<uint32_t>(imm) & 0xFFF;
  return ((uimm >> 5) << 25) | (rs2 << 20) | (rs1 << 15) | (funct3 << 12) | ((uimm & 0x1F) << 7) |
         opcode;
}
uint32_t EncodeB(int32_t imm, unsigned rs2, unsigned rs1, unsigned funct3, unsigned opcode) {
  uint32_t uimm = static_cast<uint32_t>(imm);
  return (((uimm >> 12) & 1) << 31) | (((uimm >> 5) & 0x3F) << 25) | (rs2 << 20) | (rs1 << 15) |
         (funct3 << 12) | (((uimm >> 1) & 0xF) << 8) | (((uimm >> 11) & 1) << 7) | opcode;
}
uint32_t EncodeU(uint32_t imm20, unsigned rd, unsigned opcode) {
  return (imm20 << 12) | (rd << 7) | opcode;
}
uint32_t EncodeJ(int32_t imm, unsigned rd, unsigned opcode) {
  uint32_t uimm = static_cast<uint32_t>(imm);
  return (((uimm >> 20) & 1) << 31) | (((uimm >> 1) & 0x3FF) << 21) | (((uimm >> 11) & 1) << 20) |
         (((uimm >> 12) & 0xFF) << 12) | (rd << 7) | opcode;
}

struct InstrDesc {
  enum class Format { kR, kI, kLoad, kStore, kBranch, kU, kJ, kShift, kSystem };
  Format format;
  unsigned opcode;
  unsigned funct3;
  unsigned funct7;
};

const std::map<std::string, InstrDesc>& InstrTable() {
  using F = InstrDesc::Format;
  static const std::map<std::string, InstrDesc> kTable = {
      {"lui", {F::kU, 0x37, 0, 0}},
      {"auipc", {F::kU, 0x17, 0, 0}},
      {"jal", {F::kJ, 0x6F, 0, 0}},
      {"jalr", {F::kI, 0x67, 0, 0}},
      {"beq", {F::kBranch, 0x63, 0, 0}},
      {"bne", {F::kBranch, 0x63, 1, 0}},
      {"blt", {F::kBranch, 0x63, 4, 0}},
      {"bge", {F::kBranch, 0x63, 5, 0}},
      {"bltu", {F::kBranch, 0x63, 6, 0}},
      {"bgeu", {F::kBranch, 0x63, 7, 0}},
      {"lb", {F::kLoad, 0x03, 0, 0}},
      {"lh", {F::kLoad, 0x03, 1, 0}},
      {"lw", {F::kLoad, 0x03, 2, 0}},
      {"lbu", {F::kLoad, 0x03, 4, 0}},
      {"lhu", {F::kLoad, 0x03, 5, 0}},
      {"sb", {F::kStore, 0x23, 0, 0}},
      {"sh", {F::kStore, 0x23, 1, 0}},
      {"sw", {F::kStore, 0x23, 2, 0}},
      {"addi", {F::kI, 0x13, 0, 0}},
      {"slti", {F::kI, 0x13, 2, 0}},
      {"sltiu", {F::kI, 0x13, 3, 0}},
      {"xori", {F::kI, 0x13, 4, 0}},
      {"ori", {F::kI, 0x13, 6, 0}},
      {"andi", {F::kI, 0x13, 7, 0}},
      {"slli", {F::kShift, 0x13, 1, 0x00}},
      {"srli", {F::kShift, 0x13, 5, 0x00}},
      {"srai", {F::kShift, 0x13, 5, 0x20}},
      {"add", {F::kR, 0x33, 0, 0x00}},
      {"sub", {F::kR, 0x33, 0, 0x20}},
      {"sll", {F::kR, 0x33, 1, 0x00}},
      {"slt", {F::kR, 0x33, 2, 0x00}},
      {"sltu", {F::kR, 0x33, 3, 0x00}},
      {"xor", {F::kR, 0x33, 4, 0x00}},
      {"srl", {F::kR, 0x33, 5, 0x00}},
      {"sra", {F::kR, 0x33, 5, 0x20}},
      {"or", {F::kR, 0x33, 6, 0x00}},
      {"and", {F::kR, 0x33, 7, 0x00}},
      {"mul", {F::kR, 0x33, 0, 0x01}},
      {"mulh", {F::kR, 0x33, 1, 0x01}},
      {"mulhu", {F::kR, 0x33, 3, 0x01}},
      {"div", {F::kR, 0x33, 4, 0x01}},
      {"divu", {F::kR, 0x33, 5, 0x01}},
      {"rem", {F::kR, 0x33, 6, 0x01}},
      {"remu", {F::kR, 0x33, 7, 0x01}},
      {"ecall", {F::kSystem, 0x73, 0, 0}},
      {"ebreak", {F::kSystem, 0x73, 0, 1}},
      {"fence", {F::kSystem, 0x0F, 0, 2}},
  };
  return kTable;
}

// One parsed source statement.
struct Statement {
  int line_no;
  std::string mnemonic;  // lowercase; empty for pure directives handled in pass 1
  std::vector<std::string> operands;
  uint32_t addr = 0;   // assigned in pass 1 (after any alignment padding)
  uint32_t pad = 0;    // zero bytes emitted before the statement to 4-align code
  uint32_t size = 0;   // bytes emitted (excluding pad)
  std::vector<uint8_t> data;  // for data directives, filled in pass 1 (except .word syms)
};

}  // namespace

bool Assembler::Assemble(const std::string& source, uint32_t base_addr, AssembledImage* out) {
  error_.clear();
  out->base_addr = base_addr;
  out->bytes.clear();
  out->symbols.clear();

  std::map<std::string, uint32_t> symbols;
  std::vector<Statement> statements;

  auto fail = [this](int line_no, const std::string& msg) {
    std::ostringstream oss;
    oss << "line " << line_no << ": " << msg;
    error_ = oss.str();
    return false;
  };

  // Immediate parser; needs `symbols`, so defined as a lambda used in pass 2 (and in
  // pass 1 for .equ / .space / .align where symbols must already be defined).
  auto parse_imm = [&symbols](const std::string& raw, int64_t* value) {
    std::string text = Trim(raw);
    if (text.empty()) {
      return false;
    }
    // Character literal.
    if (text.size() >= 3 && text.front() == '\'' && text.back() == '\'') {
      std::string inner = text.substr(1, text.size() - 2);
      if (inner == "\\n") {
        *value = '\n';
      } else if (inner == "\\t") {
        *value = '\t';
      } else if (inner == "\\0") {
        *value = 0;
      } else if (inner.size() == 1) {
        *value = inner[0];
      } else {
        return false;
      }
      return true;
    }
    // Pure number?
    char* end = nullptr;
    long long v = std::strtoll(text.c_str(), &end, 0);
    if (end != text.c_str() && *end == '\0') {
      *value = v;
      return true;
    }
    // symbol, symbol+N, symbol-N
    size_t split = text.find_first_of("+-", 1);
    std::string sym = Trim(split == std::string::npos ? text : text.substr(0, split));
    int64_t offset = 0;
    if (split != std::string::npos) {
      char* oend = nullptr;
      offset = std::strtoll(text.c_str() + split, &oend, 0);
      if (*oend != '\0') {
        return false;
      }
    }
    auto it = symbols.find(sym);
    if (it == symbols.end()) {
      return false;
    }
    *value = static_cast<int64_t>(it->second) + offset;
    return true;
  };

  // ---------------- Pass 1: parse, assign addresses, collect labels ----------------
  uint32_t pc = base_addr;
  std::vector<std::string> pending_labels;
  std::istringstream stream(source);
  std::string raw_line;
  int line_no = 0;
  while (std::getline(stream, raw_line)) {
    ++line_no;
    std::string line = Trim(StripComment(raw_line));

    // Leading labels (possibly several).
    while (true) {
      size_t colon = line.find(':');
      if (colon == std::string::npos) {
        break;
      }
      std::string candidate = Trim(line.substr(0, colon));
      // Only treat as a label if it looks like an identifier.
      bool ident = !candidate.empty() &&
                   (std::isalpha(static_cast<unsigned char>(candidate[0])) || candidate[0] == '_' ||
                    candidate[0] == '.');
      for (char c : candidate) {
        if (!std::isalnum(static_cast<unsigned char>(c)) && c != '_' && c != '.') {
          ident = false;
        }
      }
      if (!ident) {
        break;
      }
      if (symbols.count(candidate) != 0) {
        return fail(line_no, "duplicate label '" + candidate + "'");
      }
      // Labels bind to the *next* statement's final address so that a label on an
      // instruction lands after any alignment padding.
      pending_labels.push_back(candidate);
      line = Trim(line.substr(colon + 1));
    }
    if (line.empty()) {
      continue;
    }

    // Split mnemonic from operands.
    size_t space = line.find_first_of(" \t");
    std::string mnemonic = ToLower(space == std::string::npos ? line : line.substr(0, space));
    std::string rest = space == std::string::npos ? "" : Trim(line.substr(space));
    std::vector<std::string> operands = SplitOperands(rest);

    Statement st;
    st.line_no = line_no;
    st.mnemonic = mnemonic;
    st.operands = operands;

    // Instructions must sit at 4-byte boundaries (RV32 jump/branch offsets are in
    // units of 2 and fetches are word-wide); pad with zero bytes after data.
    bool is_instruction = mnemonic[0] != '.';
    if (is_instruction && (pc % 4) != 0) {
      st.pad = 4 - (pc % 4);
      pc += st.pad;
    }
    st.addr = pc;
    for (const std::string& label : pending_labels) {
      symbols[label] = pc;
    }
    pending_labels.clear();

    if (mnemonic[0] == '.') {
      if (mnemonic == ".equ") {
        if (operands.size() != 2) {
          return fail(line_no, ".equ needs name, value");
        }
        int64_t value = 0;
        if (!parse_imm(operands[1], &value)) {
          return fail(line_no, "bad .equ value '" + operands[1] + "'");
        }
        symbols[operands[0]] = static_cast<uint32_t>(value);
        continue;  // emits nothing
      }
      if (mnemonic == ".word") {
        st.size = static_cast<uint32_t>(4 * operands.size());
      } else if (mnemonic == ".byte") {
        st.size = static_cast<uint32_t>(operands.size());
      } else if (mnemonic == ".asciz" || mnemonic == ".ascii") {
        if (operands.size() != 1 || operands[0].size() < 2 || operands[0].front() != '"' ||
            operands[0].back() != '"') {
          return fail(line_no, mnemonic + " needs one quoted string");
        }
        std::string text = operands[0].substr(1, operands[0].size() - 2);
        for (size_t i = 0; i < text.size(); ++i) {
          char c = text[i];
          if (c == '\\' && i + 1 < text.size()) {
            ++i;
            switch (text[i]) {
              case 'n':
                c = '\n';
                break;
              case 't':
                c = '\t';
                break;
              case '0':
                c = '\0';
                break;
              case '\\':
                c = '\\';
                break;
              case '"':
                c = '"';
                break;
              default:
                return fail(line_no, "unknown escape in string");
            }
          }
          st.data.push_back(static_cast<uint8_t>(c));
        }
        if (mnemonic == ".asciz") {
          st.data.push_back(0);
        }
        st.size = static_cast<uint32_t>(st.data.size());
      } else if (mnemonic == ".align") {
        int64_t n = 4;
        if (!operands.empty() && !parse_imm(operands[0], &n)) {
          return fail(line_no, "bad .align operand");
        }
        uint32_t align = static_cast<uint32_t>(n);
        uint32_t aligned = (pc + align - 1) / align * align;
        st.size = aligned - pc;
        st.data.assign(st.size, 0);
      } else if (mnemonic == ".space") {
        int64_t n = 0;
        if (operands.size() != 1 || !parse_imm(operands[0], &n) || n < 0) {
          return fail(line_no, "bad .space operand");
        }
        st.size = static_cast<uint32_t>(n);
        st.data.assign(st.size, 0);
      } else {
        return fail(line_no, "unknown directive '" + mnemonic + "'");
      }
    } else {
      // Instruction sizes: li and la always expand to two instructions so that pass-1
      // addresses are stable regardless of symbol values.
      if (mnemonic == "li" || mnemonic == "la") {
        st.size = 8;
      } else if (InstrTable().count(mnemonic) != 0 || mnemonic == "mv" || mnemonic == "j" ||
                 mnemonic == "jr" || mnemonic == "call" || mnemonic == "ret" ||
                 mnemonic == "nop" || mnemonic == "beqz" || mnemonic == "bnez" ||
                 mnemonic == "seqz" || mnemonic == "snez" || mnemonic == "neg") {
        st.size = 4;
      } else {
        return fail(line_no, "unknown mnemonic '" + mnemonic + "'");
      }
    }

    pc += st.size;
    statements.push_back(std::move(st));
  }

  for (const std::string& label : pending_labels) {
    symbols[label] = pc;
  }
  pending_labels.clear();

  // ---------------- Pass 2: encode --------------------------------------------------
  out->bytes.reserve(pc - base_addr);

  auto emit_word = [out](uint32_t word) {
    out->bytes.push_back(static_cast<uint8_t>(word));
    out->bytes.push_back(static_cast<uint8_t>(word >> 8));
    out->bytes.push_back(static_cast<uint8_t>(word >> 16));
    out->bytes.push_back(static_cast<uint8_t>(word >> 24));
  };

  auto reg_or_fail = [&](const Statement& st, const std::string& token, unsigned* reg) {
    auto r = ParseRegister(token);
    if (!r.has_value()) {
      fail(st.line_no, "bad register '" + token + "'");
      return false;
    }
    *reg = *r;
    return true;
  };

  // Parses "imm(reg)" memory operands.
  auto mem_or_fail = [&](const Statement& st, const std::string& token, int64_t* imm,
                         unsigned* reg) {
    size_t open = token.find('(');
    size_t close = token.rfind(')');
    if (open == std::string::npos || close == std::string::npos || close < open) {
      fail(st.line_no, "bad memory operand '" + token + "'");
      return false;
    }
    std::string imm_part = Trim(token.substr(0, open));
    if (imm_part.empty()) {
      imm_part = "0";
    }
    if (!parse_imm(imm_part, imm)) {
      fail(st.line_no, "bad offset '" + imm_part + "'");
      return false;
    }
    return reg_or_fail(st, Trim(token.substr(open + 1, close - open - 1)), reg);
  };

  for (const Statement& st : statements) {
    const std::string& m = st.mnemonic;
    for (uint32_t i = 0; i < st.pad; ++i) {
      out->bytes.push_back(0);
    }

    if (m[0] == '.') {
      if (m == ".word") {
        for (const std::string& op : st.operands) {
          int64_t v = 0;
          if (!parse_imm(op, &v)) {
            return fail(st.line_no, "bad .word operand '" + op + "'");
          }
          emit_word(static_cast<uint32_t>(v));
        }
      } else if (m == ".byte") {
        for (const std::string& op : st.operands) {
          int64_t v = 0;
          if (!parse_imm(op, &v)) {
            return fail(st.line_no, "bad .byte operand '" + op + "'");
          }
          out->bytes.push_back(static_cast<uint8_t>(v));
        }
      } else {
        out->bytes.insert(out->bytes.end(), st.data.begin(), st.data.end());
      }
      continue;
    }

    const std::vector<std::string>& ops = st.operands;
    auto expect_ops = [&](size_t n) {
      if (ops.size() != n) {
        fail(st.line_no, m + " expects " + std::to_string(n) + " operands");
        return false;
      }
      return true;
    };

    // --- Pseudo-instructions ---
    if (m == "nop") {
      emit_word(EncodeI(0, 0, 0, 0, 0x13));
      continue;
    }
    if (m == "ret") {
      emit_word(EncodeI(0, 1, 0, 0, 0x67));  // jalr x0, ra, 0
      continue;
    }
    if (m == "mv") {
      unsigned rd, rs;
      if (!expect_ops(2) || !reg_or_fail(st, ops[0], &rd) || !reg_or_fail(st, ops[1], &rs)) {
        return false;
      }
      emit_word(EncodeI(0, rs, 0, rd, 0x13));
      continue;
    }
    if (m == "neg") {
      unsigned rd, rs;
      if (!expect_ops(2) || !reg_or_fail(st, ops[0], &rd) || !reg_or_fail(st, ops[1], &rs)) {
        return false;
      }
      emit_word(EncodeR(0x20, rs, 0, 0, rd, 0x33));
      continue;
    }
    if (m == "seqz" || m == "snez") {
      unsigned rd, rs;
      if (!expect_ops(2) || !reg_or_fail(st, ops[0], &rd) || !reg_or_fail(st, ops[1], &rs)) {
        return false;
      }
      if (m == "seqz") {
        emit_word(EncodeI(1, rs, 3, rd, 0x13));  // sltiu rd, rs, 1
      } else {
        emit_word(EncodeR(0, rs, 0, 3, rd, 0x33));  // sltu rd, x0, rs
      }
      continue;
    }
    if (m == "li" || m == "la") {
      unsigned rd;
      int64_t value = 0;
      if (!expect_ops(2) || !reg_or_fail(st, ops[0], &rd)) {
        return false;
      }
      if (!parse_imm(ops[1], &value)) {
        return fail(st.line_no, "bad immediate '" + ops[1] + "'");
      }
      uint32_t uval = static_cast<uint32_t>(value);
      uint32_t hi = (uval + 0x800) >> 12;
      int32_t lo = static_cast<int32_t>(uval) - static_cast<int32_t>(hi << 12);
      emit_word(EncodeU(hi & 0xFFFFF, rd, 0x37));
      emit_word(EncodeI(lo, rd, 0, rd, 0x13));
      continue;
    }
    if (m == "j" || m == "call") {
      int64_t target = 0;
      if (!expect_ops(1) || !parse_imm(ops[0], &target)) {
        return fail(st.line_no, "bad jump target");
      }
      int64_t offset = target - st.addr;
      if (offset < -(1 << 20) || offset >= (1 << 20)) {
        return fail(st.line_no, "jump out of range");
      }
      emit_word(EncodeJ(static_cast<int32_t>(offset), m == "j" ? 0 : 1, 0x6F));
      continue;
    }
    if (m == "jr") {
      unsigned rs;
      if (!expect_ops(1) || !reg_or_fail(st, ops[0], &rs)) {
        return false;
      }
      emit_word(EncodeI(0, rs, 0, 0, 0x67));
      continue;
    }
    if (m == "beqz" || m == "bnez") {
      unsigned rs;
      int64_t target = 0;
      if (!expect_ops(2) || !reg_or_fail(st, ops[0], &rs) || !parse_imm(ops[1], &target)) {
        return false;
      }
      int64_t offset = target - st.addr;
      if (offset < -(1 << 12) || offset >= (1 << 12)) {
        return fail(st.line_no, "branch out of range");
      }
      emit_word(EncodeB(static_cast<int32_t>(offset), 0, rs, m == "beqz" ? 0 : 1, 0x63));
      continue;
    }

    auto it = InstrTable().find(m);
    if (it == InstrTable().end()) {
      return fail(st.line_no, "unknown mnemonic '" + m + "'");
    }
    const InstrDesc& d = it->second;
    using F = InstrDesc::Format;

    switch (d.format) {
      case F::kSystem: {
        if (m == "ecall") {
          emit_word(0x00000073);
        } else if (m == "ebreak") {
          emit_word(0x00100073);
        } else {  // fence
          emit_word(0x0000000F);
        }
        break;
      }
      case F::kU: {
        unsigned rd;
        int64_t imm = 0;
        if (!expect_ops(2) || !reg_or_fail(st, ops[0], &rd) || !parse_imm(ops[1], &imm)) {
          return false;
        }
        emit_word(EncodeU(static_cast<uint32_t>(imm) & 0xFFFFF, rd, d.opcode));
        break;
      }
      case F::kJ: {  // jal [rd,] target
        unsigned rd = 1;
        std::string target_op;
        if (ops.size() == 1) {
          target_op = ops[0];
        } else if (ops.size() == 2) {
          if (!reg_or_fail(st, ops[0], &rd)) {
            return false;
          }
          target_op = ops[1];
        } else {
          return fail(st.line_no, "jal expects 1 or 2 operands");
        }
        int64_t target = 0;
        if (!parse_imm(target_op, &target)) {
          return fail(st.line_no, "bad jump target '" + target_op + "'");
        }
        int64_t offset = target - st.addr;
        if (offset < -(1 << 20) || offset >= (1 << 20)) {
          return fail(st.line_no, "jump out of range");
        }
        emit_word(EncodeJ(static_cast<int32_t>(offset), rd, d.opcode));
        break;
      }
      case F::kBranch: {
        unsigned rs1, rs2;
        int64_t target = 0;
        if (!expect_ops(3) || !reg_or_fail(st, ops[0], &rs1) || !reg_or_fail(st, ops[1], &rs2) ||
            !parse_imm(ops[2], &target)) {
          return false;
        }
        int64_t offset = target - st.addr;
        if (offset < -(1 << 12) || offset >= (1 << 12)) {
          return fail(st.line_no, "branch out of range");
        }
        emit_word(EncodeB(static_cast<int32_t>(offset), rs2, rs1, d.funct3, d.opcode));
        break;
      }
      case F::kLoad: {
        unsigned rd, rs1;
        int64_t imm = 0;
        if (!expect_ops(2) || !reg_or_fail(st, ops[0], &rd) ||
            !mem_or_fail(st, ops[1], &imm, &rs1)) {
          return false;
        }
        emit_word(EncodeI(static_cast<int32_t>(imm), rs1, d.funct3, rd, d.opcode));
        break;
      }
      case F::kStore: {
        unsigned rs2, rs1;
        int64_t imm = 0;
        if (!expect_ops(2) || !reg_or_fail(st, ops[0], &rs2) ||
            !mem_or_fail(st, ops[1], &imm, &rs1)) {
          return false;
        }
        emit_word(EncodeS(static_cast<int32_t>(imm), rs2, rs1, d.funct3, d.opcode));
        break;
      }
      case F::kShift: {
        unsigned rd, rs1;
        int64_t shamt = 0;
        if (!expect_ops(3) || !reg_or_fail(st, ops[0], &rd) || !reg_or_fail(st, ops[1], &rs1) ||
            !parse_imm(ops[2], &shamt)) {
          return false;
        }
        if (shamt < 0 || shamt > 31) {
          return fail(st.line_no, "shift amount out of range");
        }
        emit_word(EncodeR(d.funct7, static_cast<unsigned>(shamt), rs1, d.funct3, rd, d.opcode));
        break;
      }
      case F::kI: {
        unsigned rd, rs1;
        int64_t imm = 0;
        if (m == "jalr") {
          // Forms: `jalr rs`, `jalr rd, rs, imm`, `jalr rd, imm(rs)`.
          if (ops.size() == 1) {
            if (!reg_or_fail(st, ops[0], &rs1)) {
              return false;
            }
            rd = 1;
          } else if (ops.size() == 3) {
            if (!reg_or_fail(st, ops[0], &rd) || !reg_or_fail(st, ops[1], &rs1) ||
                !parse_imm(ops[2], &imm)) {
              return false;
            }
          } else if (ops.size() == 2 && ops[1].find('(') != std::string::npos) {
            if (!reg_or_fail(st, ops[0], &rd) || !mem_or_fail(st, ops[1], &imm, &rs1)) {
              return false;
            }
          } else {
            return fail(st.line_no, "bad jalr operands");
          }
        } else {
          if (!expect_ops(3) || !reg_or_fail(st, ops[0], &rd) || !reg_or_fail(st, ops[1], &rs1) ||
              !parse_imm(ops[2], &imm)) {
            return false;
          }
        }
        if (imm < -2048 || imm > 2047) {
          return fail(st.line_no, "immediate out of range (-2048..2047)");
        }
        emit_word(EncodeI(static_cast<int32_t>(imm), rs1, d.funct3, rd, d.opcode));
        break;
      }
      case F::kR: {
        unsigned rd, rs1, rs2;
        if (!expect_ops(3) || !reg_or_fail(st, ops[0], &rd) || !reg_or_fail(st, ops[1], &rs1) ||
            !reg_or_fail(st, ops[2], &rs2)) {
          return false;
        }
        emit_word(EncodeR(d.funct7, rs2, rs1, d.funct3, rd, d.opcode));
        break;
      }
    }
  }

  out->symbols = std::move(symbols);
  return error_.empty();
}

}  // namespace tock
