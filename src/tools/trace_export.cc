// ERA: 3
#include "tools/trace_export.h"

#include <cinttypes>
#include <cstdarg>
#include <cstdint>
#include <cstdio>
#include <cstring>

namespace tock {

namespace {

// One Chrome "thread" per attribution row. Kernel-side rows get small fixed ids;
// process slots start at 10 so new kernel rows can be added without renumbering.
constexpr int kTidKernel = 0;
constexpr int kTidIrq = 1;
constexpr int kTidDeferred = 2;
constexpr int kTidIdle = 3;
constexpr int kTidProcBase = 10;

int TidFor(CycleBucket bucket, uint8_t pid) {
  switch (bucket) {
    case CycleBucket::kUser:
    case CycleBucket::kService:
      return kTidProcBase + pid;
    case CycleBucket::kIrq:
      return kTidIrq;
    case CycleBucket::kCapsule:
      return kTidDeferred;
    case CycleBucket::kIdle:
      return kTidIdle;
    case CycleBucket::kKernel:
      return kTidKernel;
  }
  return kTidKernel;
}

int TidForEvent(uint8_t pid) {
  return pid == KernelTrace::kNoPid ? kTidKernel : kTidProcBase + pid;
}

void Append(std::string& out, const char* fmt, ...) {
  char buf[256];
  va_list args;
  va_start(args, fmt);
  std::vsnprintf(buf, sizeof(buf), fmt, args);
  va_end(args);
  out += buf;
}

// Process names come from TBF headers; escape the JSON-significant characters
// anyway so a hostile image cannot corrupt the document.
std::string EscapeJson(const std::string& s) {
  std::string out;
  for (char c : s) {
    if (c == '"' || c == '\\') {
      out += '\\';
      out += c;
    } else if (static_cast<unsigned char>(c) >= 0x20) {
      out += c;
    }
  }
  return out;
}

void AppendThreadName(std::string& out, int tid, const char* name) {
  Append(out,
         "{\"name\":\"thread_name\",\"ph\":\"M\",\"pid\":1,\"tid\":%d,"
         "\"args\":{\"name\":\"%s\"}},\n",
         tid, name);
}

void AppendHist(std::string& out, const char* name, const Log2Hist& hist, bool last) {
  Append(out, "    \"%s\":{\"count\":%" PRIu64 ",\"sum\":%" PRIu64 ",\"min\":%" PRIu64
              ",\"max\":%" PRIu64 ",\"mean\":%" PRIu64 ",\"buckets\":[",
         name, hist.count(), hist.sum(), hist.min(), hist.max(), hist.Mean());
  for (size_t i = 0; i < Log2Hist::kBuckets; ++i) {
    Append(out, i == 0 ? "%" PRIu64 : ",%" PRIu64, hist.bucket(i));
  }
  out += last ? "]}\n" : "]},\n";
}

}  // namespace

std::string ExportChromeTrace(Kernel& kernel) {
  const KernelTrace& trace = kernel.trace();
  std::string out;
  out.reserve(64 * 1024);
  out += "{\"displayTimeUnit\":\"ms\",\"traceEvents\":[\n";
  Append(out,
         "{\"name\":\"process_name\",\"ph\":\"M\",\"pid\":1,"
         "\"args\":{\"name\":\"tock-sim\"}},\n");
  AppendThreadName(out, kTidKernel, "kernel");
  AppendThreadName(out, kTidIrq, "irq");
  AppendThreadName(out, kTidDeferred, "deferred");
  AppendThreadName(out, kTidIdle, "idle");
  for (size_t i = 0; i < Kernel::kMaxProcesses; ++i) {
    Process* p = kernel.process(i);
    if (p != nullptr && p->id.IsValid()) {
      char label[64];
      std::snprintf(label, sizeof(label), "proc %zu: %s", i,
                    EscapeJson(p->name).c_str());
      AppendThreadName(out, kTidProcBase + static_cast<int>(i), label);
    }
  }

  // Attributed spans (kernel/cycle_accounting.h) as duration events. The ring keeps
  // the newest kSpanDepth spans; older ones were evicted and simply don't render.
  trace.accounting().spans().ForEach([&](const CycleSpan& span) {
    Append(out,
           "{\"name\":\"%s\",\"cat\":\"cycles\",\"ph\":\"X\",\"pid\":1,\"tid\":%d,"
           "\"ts\":%" PRIu64 ",\"dur\":%" PRIu64 "},\n",
           CycleBucketName(span.bucket), TidFor(span.bucket, span.pid), span.start,
           span.end - span.start);
  });

  // kSleep events carry their duration in a 32-bit arg; sleeps too long to fit were
  // saturated (stats.sleep_arg_saturations counts them). Reconstruct those from the
  // sleep_cycles total: whatever the unsaturated retained events don't explain is
  // split evenly over the saturated ones. An estimate (evicted events also went
  // unexplained), but saturated sleeps are >2^32 cycles and dwarf everything else.
  const KernelStats& stats = trace.stats();
  uint64_t unsaturated_sum = 0;
  uint64_t saturated_count = 0;
  trace.events().ForEach([&](const TraceEvent& e) {
    if (e.kind == TraceEventKind::kSleep) {
      if (e.arg == UINT32_MAX && stats.sleep_arg_saturations > 0) {
        ++saturated_count;
      } else {
        unsaturated_sum += e.arg;
      }
    }
  });
  uint64_t saturated_share = 0;
  if (saturated_count > 0 && stats.sleep_cycles > unsaturated_sum) {
    saturated_share = (stats.sleep_cycles - unsaturated_sum) / saturated_count;
  }

  // The raw event ring as instants, newest-kept like the spans.
  trace.events().ForEach([&](const TraceEvent& e) {
    uint64_t arg = e.arg;
    if (e.kind == TraceEventKind::kSleep && e.arg == UINT32_MAX &&
        saturated_share > 0) {
      arg = saturated_share;
    }
    Append(out,
           "{\"name\":\"%s\",\"cat\":\"event\",\"ph\":\"i\",\"s\":\"t\",\"pid\":1,"
           "\"tid\":%d,\"ts\":%" PRIu64 ",\"args\":{\"arg\":%" PRIu64 "}},\n",
           TraceEventKindName(e.kind), TidForEvent(e.pid), e.cycle, arg);
  });

  // Trailing metadata event so every prior line could end with a comma.
  Append(out, "{\"name\":\"clock_sync\",\"ph\":\"M\",\"pid\":1,\"args\":{\"now\":%" PRIu64
              "}}\n],\n",
         kernel.mcu()->CyclesNow());

  // Non-standard sidecar (Chrome ignores unknown top-level keys): the aggregate
  // counters and latency histograms, for scripted consumers of the same file.
  out += "\"tockStats\":{\n";
  // Host-only counters (telemetry transport, vm engine) are skipped: the sidecar
  // is golden-locked, and neither attaching a tap nor switching interpreter
  // engines may change a byte of the artifact.
  uint32_t last_emitted = 0;
  for (uint32_t i = 0; i < static_cast<uint32_t>(StatId::kNumStats); ++i) {
    if (!StatIsHostOnly(static_cast<StatId>(i))) {
      last_emitted = i;
    }
  }
  for (uint32_t i = 0; i < static_cast<uint32_t>(StatId::kNumStats); ++i) {
    StatId id = static_cast<StatId>(i);
    if (StatIsHostOnly(id)) {
      continue;
    }
    Append(out, "  \"%s\":%" PRIu64 "%s\n", StatName(id), StatValue(stats, id),
           i < last_emitted ? "," : "");
  }
  out += "},\n\"tockHists\":{\n";
  AppendHist(out, "syscall", trace.syscall_hist(), false);
  AppendHist(out, "irq_upcall", trace.irq_upcall_hist(), false);
  AppendHist(out, "command_roundtrip", trace.command_roundtrip_hist(), true);
  out += "}";

  // Scheduler sidecar (kernel/scheduler.h): the active policy and each process's
  // decision/context-switch counters and policy state. Emitted only under
  // non-default policies — the golden export (tests/golden/) is recorded under
  // round-robin and must stay byte-identical.
  if (kernel.scheduler_policy() != SchedulerPolicy::kRoundRobin) {
    Append(out, ",\n\"tockSched\":{\"policy\":\"%s\",\"perProcess\":[\n",
           SchedulerPolicyName(kernel.scheduler_policy()));
    bool first = true;
    for (size_t i = 0; i < Kernel::kMaxProcesses; ++i) {
      Process* p = kernel.process(i);
      if (p == nullptr || !p->id.IsValid()) {
        continue;
      }
      Append(out,
             "%s  {\"pid\":%zu,\"decisions\":%" PRIu64 ",\"contextSwitches\":%" PRIu64
             ",\"timesliceExpirations\":%" PRIu64 ",\"priority\":%u,\"queueLevel\":%u}",
             first ? "" : ",\n", i, trace.sched_decisions(i),
             trace.proc_context_switches(i), p->timeslice_expirations,
             static_cast<unsigned>(p->priority), static_cast<unsigned>(p->queue_level));
      first = false;
    }
    out += "\n]}";
  }
  out += "}\n";
  return out;
}

bool WriteChromeTrace(Kernel& kernel, const std::string& path) {
  std::string doc = ExportChromeTrace(kernel);
  std::FILE* f = std::fopen(path.c_str(), "wb");
  if (f == nullptr) {
    return false;
  }
  size_t written = std::fwrite(doc.data(), 1, doc.size(), f);
  bool ok = (std::fclose(f) == 0) && written == doc.size();
  return ok;
}

}  // namespace tock
