// ERA: 4
// CLI wrapper: `loc_audit [src-root]`.
#include <cstdio>

#include "tools/loc_audit.h"

int main(int argc, char** argv) {
  const char* root = argc > 1 ? argv[1] : "src";
  tock::AuditReport report = tock::AuditTree(root);
  std::printf("%s", tock::FormatReport(report).c_str());
  return report.unbalanced_files == 0 ? 0 : 1;
}
