// ERA: 3
// Chrome trace-event JSON exporter: turns the kernel's retained observability
// state — the cycle-attribution span ring (kernel/cycle_accounting.h) and the
// trace-event ring (kernel/trace.h) — into a document loadable by chrome://tracing
// or Perfetto, so a simulated run can be inspected on a real timeline instead of
// read as a text dump.
//
// Mapping: the whole board is one Chrome "process"; each attribution target gets a
// Chrome "thread" (kernel / irq / deferred / idle rows, plus one row per process
// slot carrying both its user and service spans — they never overlap, because
// attribution is switch-based). CycleSpans become "ph":"X" duration events and
// TraceEvents become "ph":"i" instants. Timestamps are simulated cycles written
// into the microsecond field; the absolute numbers are what matter.
//
// The output is deterministic — fixed event order, integer timestamps, no locale —
// so two identical runs export byte-identical files (tests/profiler_test.cc pins a
// golden one). With the trace layer compiled out (-DTOCK_TRACE=OFF) the exporter
// still emits a valid document; it is just empty of events.
#ifndef TOCK_TOOLS_TRACE_EXPORT_H_
#define TOCK_TOOLS_TRACE_EXPORT_H_

#include <string>

#include "kernel/kernel.h"

namespace tock {

// Renders the kernel's span ring, event ring, and latency histograms as a Chrome
// trace-event JSON document. Process slot names label the per-process rows.
std::string ExportChromeTrace(Kernel& kernel);

// ExportChromeTrace to a file. Returns false when the file cannot be written.
bool WriteChromeTrace(Kernel& kernel, const std::string& path);

}  // namespace tock

#endif  // TOCK_TOOLS_TRACE_EXPORT_H_
