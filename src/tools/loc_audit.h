// ERA: 4
// Source-tree audit used to reproduce Figure 5: total kernel size vs. trusted
// ("unsafe"-analog) code across development eras.
//
// Conventions enforced/consumed:
//   * every source file carries an `// ERA: n` header (n in 1..5, see DESIGN.md §6);
//   * code that does what Rust would require `unsafe` for (raw bus access,
//     process-memory translation, capability minting, flash programming) is wrapped
//     in `TRUSTED-BEGIN(reason)` / `TRUSTED-END` comment markers.
// The audit counts non-blank lines per file, attributes them to eras, and counts
// lines inside trusted regions. Unbalanced markers are reported as errors.
#ifndef TOCK_TOOLS_LOC_AUDIT_H_
#define TOCK_TOOLS_LOC_AUDIT_H_

#include <cstdint>
#include <string>
#include <vector>

namespace tock {

struct FileAudit {
  std::string path;
  int era = 0;  // 0 = untagged
  uint64_t total_lines = 0;
  uint64_t trusted_lines = 0;
  bool balanced_markers = true;
};

struct EraTotals {
  uint64_t total_lines = 0;
  uint64_t trusted_lines = 0;
};

struct AuditReport {
  std::vector<FileAudit> files;
  // Cumulative totals: eras[i] includes everything introduced in eras 1..i+1,
  // mirroring how the kernel accretes over time in Figure 5.
  std::vector<EraTotals> cumulative_eras;
  uint64_t untagged_files = 0;
  uint64_t unbalanced_files = 0;
};

// Scans .h/.cc files under `root` (recursively), skipping build directories.
AuditReport AuditTree(const std::string& root);

// Renders the Figure 5 analog table.
std::string FormatReport(const AuditReport& report);

}  // namespace tock

#endif  // TOCK_TOOLS_LOC_AUDIT_H_
