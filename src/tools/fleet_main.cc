// ERA: 2
// fleet: drive N simulated boards as one deployment — the "10 million computers"
// half of the paper's title as a command-line experiment. Boards get per-board
// seeds and heterogeneous scheduler policies, beacon telemetry to each other over
// the shared radio medium, and are stepped in lockstep epochs sharded across host
// threads (board/fleet.h). The run is bit-identical for any --threads value.
//
//   $ ./build/src/tools/fleet --boards=8 --threads=4 --cycles=2000000
//   $ ./build/src/tools/fleet --boards=8 --radio=off   # compute-only, big epochs
#include <sys/resource.h>

#include <algorithm>
#include <chrono>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <memory>
#include <string>
#include <vector>

#include "board/fleet.h"
#include "board/sim_board.h"
#include "kernel/telemetry.h"

namespace {

// Telemetry beacon: broadcast [node, seq] every interval, staggered per node so
// the fleet's transmissions interleave rather than collide on the same cycle.
std::string BeaconApp(int node_id) {
  char buf[1024];
  std::snprintf(buf, sizeof(buf), R"(
_start:
    mv s0, a0              # ram base: packet staging area
    li s1, 0               # beacon sequence number
    li a0, %d
    call sleep_ticks
loop:
    li t0, %d
    sb t0, 0(s0)
    sb s1, 1(s0)
    # allow_ro(radio, 0, packet, 2)
    li a0, 0x30001
    li a1, 0
    mv a2, s0
    li a3, 2
    li a4, 4
    ecall
    # command(radio, 1 = tx, dst=0xFFFF broadcast, len=2)
    li a0, 0x30001
    li a1, 1
    li a2, 0xFFFF
    li a3, 2
    li a4, 2
    ecall
    # yield-wait-for(radio, 0 = tx done)
    li a0, 2
    li a1, 0x30001
    li a2, 0
    li a4, 0
    ecall
    addi s1, s1, 1
    andi s1, s1, 255
    li a0, 200000
    call sleep_ticks
    j loop
)",
                node_id * 10000, node_id);
  return buf;
}

// Telemetry sink: listen for peer beacons and keep a tally at ram+32.
const char* kListenerApp = R"(
_start:
    mv s0, a0
    # allow_rw(radio, 1 = rx sink, ram+64, 8)
    li a0, 0x30001
    li a1, 1
    addi a2, s0, 64
    li a3, 8
    li a4, 3
    ecall
    # command(radio, 2 = listen)
    li a0, 0x30001
    li a1, 2
    li a2, 0
    li a3, 0
    li a4, 2
    ecall
loop:
    # yield-wait-for(radio, 1 = packet received)
    li a0, 2
    li a1, 0x30001
    li a2, 1
    li a4, 0
    ecall
    lw t0, 32(s0)
    addi t0, t0, 1
    sw t0, 32(s0)
    j loop
)";

// CPU-bound filler: keeps the scheduler busy between radio upcalls so the
// per-policy differences (priority, MLFQ demotion) actually matter.
const char* kComputeApp = R"(
_start:
    li s0, 0
    li s1, 1
    li s2, 0x1234
loop:
    add s0, s0, s1
    xor s3, s0, s2
    slli s4, s3, 3
    srli s5, s3, 5
    or s6, s4, s5
    sub s7, s6, s0
    sltu s8, s0, s7
    andi s9, s7, 255
    add s2, s2, s8
    j loop
)";

struct Options {
  size_t boards = 8;
  unsigned threads = 1;
  uint64_t cycles = 2'000'000;
  uint64_t slice = 20'000;
  bool radio = true;
  uint32_t seed = 0xC0FFEE;
  bool restart_wedged = true;
  // Scale-out knobs (board/fleet.h). All three default on and none changes
  // simulated results — they exist so benchmarks can compare modes.
  bool steal = true;      // work-stealing board assignment vs static sharding
  bool idle_skip = true;  // idle-board epoch fast-forward
  bool paged = tock::PagedBank::kCompiled;  // copy-on-write paged board memory
  // Print host peak RSS and the paged-memory resident footprint after the run.
  bool report_rss = false;
  // OTA scenario: board 0 becomes a gateway pushing a signed app update to every
  // other board over the (optionally lossy) medium. --cycles is the soak budget;
  // exit status reflects convergence, so this doubles as a CI smoke leg.
  bool ota = false;
  // Link-fault rates in permille (0..1000), drawn from --fault-seed.
  uint64_t drop = 0;
  uint64_t dup = 0;
  uint64_t reorder = 0;
  uint64_t corrupt = 0;
  uint64_t fault_seed = 0x70CC;
  // Live telemetry (kernel/telemetry.h): publish per-board event rings and
  // stats snapshots into this shm region so `tap --shm=<name>` can watch the
  // run from another process. Zero-perturbation: results are bit-identical
  // with or without it.
  std::string telemetry;        // shm name (or path); empty = off
  uint64_t telemetry_cap = 4096;  // ring capacity per board (power of two)
  bool telemetry_keep = false;  // leave the region file behind after the run
};

bool ParseUint(const char* text, uint64_t* out) {
  char* end = nullptr;
  unsigned long long value = std::strtoull(text, &end, 0);
  if (end == text || *end != '\0') {
    return false;
  }
  *out = value;
  return true;
}

bool ParseOptions(int argc, char** argv, Options* opts) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* eq = std::strchr(arg, '=');
    std::string key = eq != nullptr ? std::string(arg, eq - arg) : std::string(arg);
    const char* value = eq != nullptr ? eq + 1 : "";
    uint64_t n = 0;
    if (key == "--boards" && ParseUint(value, &n) && n > 0) {
      opts->boards = static_cast<size_t>(n);
    } else if (key == "--threads" && ParseUint(value, &n) && n > 0) {
      opts->threads = static_cast<unsigned>(n);
    } else if (key == "--cycles" && ParseUint(value, &n)) {
      opts->cycles = n;
    } else if (key == "--slice" && ParseUint(value, &n) && n > 0) {
      opts->slice = n;
    } else if (key == "--seed" && ParseUint(value, &n)) {
      opts->seed = static_cast<uint32_t>(n);
    } else if (key == "--radio") {
      opts->radio = std::strcmp(value, "off") != 0 && std::strcmp(value, "0") != 0;
    } else if (key == "--restart-wedged") {
      opts->restart_wedged = std::strcmp(value, "off") != 0 && std::strcmp(value, "0") != 0;
    } else if (key == "--steal") {
      opts->steal = std::strcmp(value, "off") != 0 && std::strcmp(value, "0") != 0;
    } else if (key == "--idle-skip") {
      opts->idle_skip = std::strcmp(value, "off") != 0 && std::strcmp(value, "0") != 0;
    } else if (key == "--paged") {
      opts->paged = std::strcmp(value, "off") != 0 && std::strcmp(value, "0") != 0;
    } else if (key == "--report-rss") {
      opts->report_rss = std::strcmp(value, "off") != 0 && std::strcmp(value, "0") != 0;
    } else if (key == "--ota") {
      opts->ota = std::strcmp(value, "off") != 0 && std::strcmp(value, "0") != 0;
    } else if (key == "--drop" && ParseUint(value, &n) && n <= 1000) {
      opts->drop = n;
    } else if (key == "--dup" && ParseUint(value, &n) && n <= 1000) {
      opts->dup = n;
    } else if (key == "--reorder" && ParseUint(value, &n) && n <= 1000) {
      opts->reorder = n;
    } else if (key == "--corrupt" && ParseUint(value, &n) && n <= 1000) {
      opts->corrupt = n;
    } else if (key == "--fault-seed" && ParseUint(value, &n)) {
      opts->fault_seed = n;
    } else if (key == "--telemetry") {
      opts->telemetry = value;
    } else if (key == "--telemetry-cap" && ParseUint(value, &n) && n > 0 &&
               (n & (n - 1)) == 0) {
      opts->telemetry_cap = n;
    } else if (key == "--telemetry-keep") {
      opts->telemetry_keep =
          std::strcmp(value, "off") != 0 && std::strcmp(value, "0") != 0;
    } else {
      std::fprintf(stderr,
                   "unknown or malformed flag: %s\n"
                   "usage: fleet [--boards=N] [--threads=N] [--cycles=N] [--slice=N]\n"
                   "             [--radio=on|off] [--seed=N] [--restart-wedged=on|off]\n"
                   "             [--steal=on|off] [--idle-skip=on|off] [--paged=on|off]\n"
                   "             [--report-rss]\n"
                   "             [--ota] [--drop=permille] [--dup=permille]\n"
                   "             [--reorder=permille] [--corrupt=permille] [--fault-seed=N]\n"
                   "             [--telemetry=<shm name>] [--telemetry-cap=pow2]\n"
                   "             [--telemetry-keep]\n",
                   arg);
      return false;
    }
  }
  return true;
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!ParseOptions(argc, argv, &opts)) {
    return 2;
  }

  tock::FleetConfig fleet_config;
  fleet_config.threads = opts.threads;
  fleet_config.slice = opts.slice;
  fleet_config.restart_wedged = opts.restart_wedged;
  fleet_config.steal = opts.steal;
  fleet_config.idle_skip = opts.idle_skip;
  fleet_config.link_faults.seed = opts.fault_seed;
  fleet_config.link_faults.drop_permille = static_cast<uint32_t>(opts.drop);
  fleet_config.link_faults.duplicate_permille = static_cast<uint32_t>(opts.dup);
  fleet_config.link_faults.reorder_permille = static_cast<uint32_t>(opts.reorder);
  fleet_config.link_faults.corrupt_permille = static_cast<uint32_t>(opts.corrupt);
  tock::Fleet fleet(fleet_config);
  if (opts.ota) {
    opts.radio = true;  // the update plane is the radio
  }

  // Telemetry region: one block per board, created before the boards so each
  // BoardConfig can point at its publisher. Outlives the boards (destroyed
  // after them), which is the order the final-snapshot teardown needs.
  tock::TelemetryRegion telemetry_region;
  if (!opts.telemetry.empty()) {
    tock::TelemetryRegion::Options region_opts;
    region_opts.name = opts.telemetry;
    region_opts.board_count = opts.boards;
    region_opts.ring_capacity = opts.telemetry_cap;
    std::string error;
    if (!telemetry_region.Create(region_opts, tock::TelemetryConfig{}, &error)) {
      std::fprintf(stderr, "telemetry: cannot create region %s: %s\n",
                   opts.telemetry.c_str(), error.c_str());
      return 2;
    }
    if (opts.telemetry_keep) {
      telemetry_region.KeepOnClose();
    }
    std::printf("telemetry: publishing to %s (attach: tap --shm=%s --follow)\n",
                telemetry_region.path().c_str(), opts.telemetry.c_str());
  }

  // Heterogeneous deployment: rotate the scheduling policy across the fleet. The
  // explicit-policy boards opt out of the TOCK_SCHED_POLICY env override — their
  // policy is a deliberate per-board choice, not a default the test matrix may
  // re-point (BoardConfig::allow_scheduler_env).
  static constexpr tock::SchedulerPolicy kPolicyRotation[] = {
      tock::SchedulerPolicy::kRoundRobin,
      tock::SchedulerPolicy::kPriority,
      tock::SchedulerPolicy::kMlfq,
  };

  // The baseline compute app is byte-identical on every board that carries it
  // (its image has no per-board content), so build it once into a fleet-shared
  // immutable flash base image. Boards adopt the base instead of programming
  // their own copy: under paged memory those flash pages stay copy-on-write
  // references until a board writes them (OTA staging, nonvolatile storage), so
  // a homogeneous 1,000-board fleet holds ONE copy of the app image. Eager
  // boards memcpy the base at adoption — identical simulated contents, no
  // sharing, which is exactly the bench baseline.
  auto shared_flash = std::make_shared<std::vector<uint8_t>>(
      tock::MemoryMap::kFlashSize, uint8_t{0xFF});
  uint32_t shared_next = tock::SimBoard::kAppFlashBase;
  {
    tock::AppSpec compute;
    compute.name = "compute";
    compute.source = kComputeApp;
    compute.include_runtime = false;
    std::string error;
    std::vector<uint8_t> image = tock::BuildAppImage(
        compute, shared_next, tock::SimBoard::kDeviceKey, &error);
    if (image.empty() ||
        shared_next + image.size() > tock::SimBoard::kAppFlashEnd) {
      std::fprintf(stderr, "compute app build failed: %s\n", error.c_str());
      return 1;
    }
    std::copy(image.begin(), image.end(), shared_flash->begin() + shared_next);
    shared_next += static_cast<uint32_t>(image.size());
  }
  const std::shared_ptr<const std::vector<uint8_t>> shared_flash_base =
      shared_flash;

  std::vector<std::unique_ptr<tock::SimBoard>> boards;
  boards.reserve(opts.boards);
  for (size_t i = 0; i < opts.boards; ++i) {
    tock::BoardConfig config;
    config.paged_mem = opts.paged;
    config.rng_seed = opts.seed + static_cast<uint32_t>(i);
    config.radio_addr = static_cast<uint16_t>(i + 1);
    if (opts.radio) {
      config.medium = &fleet.medium();
    }
    config.kernel.scheduler.policy = kPolicyRotation[i % 3];
    config.allow_scheduler_env = config.kernel.scheduler.policy ==
                                 tock::SchedulerPolicy::kRoundRobin;
    if (opts.ota) {
      config.ota.role = i == 0 ? tock::OtaRole::kGateway : tock::OtaRole::kSubscriber;
    }
    if (!opts.telemetry.empty()) {
      config.telemetry = telemetry_region.board(i);
    }
    auto board = std::make_unique<tock::SimBoard>(config);

    int expected = 0;
    if (!opts.ota || i != 0) {
      // Baseline workload (on OTA subscribers, the app that keeps running while
      // the update streams in): adopt the shared base holding the pre-built
      // compute image and move the install cursor past it. The OTA gateway
      // carries no baseline app and keeps its pristine flash.
      board->mcu().bus().AdoptFlashBase(shared_flash_base);
      board->installer().set_next_addr(shared_next);
      expected += 1;
    }
    if (opts.radio && !opts.ota) {
      tock::AppSpec beacon;
      beacon.name = "beacon";
      beacon.source = BeaconApp(static_cast<int>(i + 1));
      tock::AppSpec listener;
      listener.name = "listener";
      listener.source = kListenerApp;
      if (board->installer().Install(beacon) == 0 ||
          board->installer().Install(listener) == 0) {
        std::fprintf(stderr, "board %zu: install failed: %s\n", i,
                     board->installer().error().c_str());
        return 1;
      }
      expected += 2;
    }
    if (board->Boot() != expected) {
      std::fprintf(stderr, "board %zu: boot loaded fewer than %d processes\n", i,
                   expected);
      return 1;
    }
    fleet.AddBoard(board.get());
    boards.push_back(std::move(board));
  }
  fleet.AlignClocks();

  if (opts.ota) {
    if (opts.boards < 2) {
      std::fprintf(stderr, "--ota needs at least 2 boards (gateway + subscriber)\n");
      return 2;
    }
    // All subscribers carry the same baseline apps, so they resolve the same
    // staging address; the gateway builds the (position-dependent) signed image
    // for exactly that address.
    uint32_t staging = boards[1]->ota_staging_addr();
    tock::AppSpec update;
    update.name = "update";
    update.source =
        "_start:\nloop:\n    li a0, 100000\n    call sleep_ticks\n    j loop\n";
    update.sign = true;
    std::string error;
    std::vector<uint8_t> image =
        tock::BuildAppImage(update, staging, tock::SimBoard::kDeviceKey, &error);
    if (image.empty()) {
      std::fprintf(stderr, "ota image build failed: %s\n", error.c_str());
      return 1;
    }
    std::vector<uint16_t> subscribers;
    for (size_t i = 1; i < opts.boards; ++i) {
      subscribers.push_back(static_cast<uint16_t>(i + 1));
    }
    boards[0]->ota_gateway().Configure(std::move(image), subscribers);
    boards[0]->ota_gateway().StartPush();
  }

  auto wall_start = std::chrono::steady_clock::now();
  if (opts.ota) {
    // --cycles is a budget, not a fixed run length: stop stepping as soon as the
    // gateway resolved every subscriber so a quick convergence exits quickly.
    constexpr uint64_t kOtaStep = 1'000'000;
    uint64_t ran = 0;
    while (ran < opts.cycles && !boards[0]->ota_gateway().Done()) {
      uint64_t step = opts.cycles - ran < kOtaStep ? opts.cycles - ran : kOtaStep;
      fleet.Run(step);
      ran += step;
    }
  } else {
    fleet.Run(opts.cycles);
  }
  auto wall_end = std::chrono::steady_clock::now();
  double wall_s =
      std::chrono::duration_cast<std::chrono::duration<double>>(wall_end - wall_start)
          .count();

  std::printf("board  policy      cycles       insns        syscalls  tx     rx     ovr  drop   dup  reo  cor  wedged restarts\n");
  for (size_t i = 0; i < fleet.size(); ++i) {
    tock::SimBoard* board = fleet.board(i);
    const tock::KernelStats& stats = board->kernel().stats();
    uint64_t syscalls = stats.syscalls_yield + stats.syscalls_subscribe +
                        stats.syscalls_command + stats.syscalls_rw_allow +
                        stats.syscalls_ro_allow + stats.syscalls_memop +
                        stats.syscalls_exit + stats.syscalls_blocking_command;
    tock::LinkFaultCounters faults = board->radio_hw().fault_counters();
    std::printf(
        "%-6zu %-11s %-12llu %-12llu %-9llu %-6llu %-6llu %-4llu %-6llu %-4llu %-4llu %-4llu %-6llu %llu\n",
        i, tock::SchedulerPolicyName(board->kernel().scheduler_policy()),
        static_cast<unsigned long long>(board->mcu().CyclesNow()),
        static_cast<unsigned long long>(board->kernel().instructions_retired()),
        static_cast<unsigned long long>(syscalls),
        static_cast<unsigned long long>(board->radio_hw().packets_sent()),
        static_cast<unsigned long long>(board->radio_hw().packets_received()),
        static_cast<unsigned long long>(board->radio_hw().rx_overruns()),
        static_cast<unsigned long long>(faults.dropped),
        static_cast<unsigned long long>(faults.duplicated),
        static_cast<unsigned long long>(faults.reordered),
        static_cast<unsigned long long>(faults.corrupted),
        static_cast<unsigned long long>(fleet.health(i).wedge_events),
        static_cast<unsigned long long>(fleet.health(i).supervised_restarts));
  }

  tock::FleetStats totals = fleet.Stats();
  std::printf("\nfleet: %zu boards (%zu live), %u threads, epoch %llu cycles\n",
              totals.boards, totals.boards_live, opts.threads,
              static_cast<unsigned long long>(fleet.EffectiveSlice()));
  std::printf("  instructions     %llu\n",
              static_cast<unsigned long long>(totals.instructions));
  std::printf("  active cycles    %llu\n",
              static_cast<unsigned long long>(totals.active_cycles));
  std::printf("  sleep cycles     %llu\n",
              static_cast<unsigned long long>(totals.sleep_cycles));
  std::printf("  context switches %llu\n",
              static_cast<unsigned long long>(totals.aggregate.context_switches));
  std::printf("  packets tx/rx    %llu/%llu (%llu rx overruns)\n",
              static_cast<unsigned long long>(totals.packets_sent),
              static_cast<unsigned long long>(totals.packets_received),
              static_cast<unsigned long long>(totals.rx_overruns));
  std::printf("  wedge events     %llu (%llu supervised restarts)\n",
              static_cast<unsigned long long>(totals.wedge_events),
              static_cast<unsigned long long>(totals.supervised_restarts));
  std::printf("  link faults      %llu dropped, %llu duplicated, %llu reordered, %llu corrupted\n",
              static_cast<unsigned long long>(totals.frames_dropped),
              static_cast<unsigned long long>(totals.frames_duplicated),
              static_cast<unsigned long long>(totals.frames_reordered),
              static_cast<unsigned long long>(totals.frames_corrupted));
  std::printf("  vm blocks        %llu built, %llu invalidated, %llu chain hits, %llu cache bytes\n",
              static_cast<unsigned long long>(totals.aggregate.vm_blocks_built),
              static_cast<unsigned long long>(totals.aggregate.vm_blocks_invalidated),
              static_cast<unsigned long long>(totals.aggregate.vm_block_chain_hits),
              static_cast<unsigned long long>(totals.aggregate.vm_cache_bytes));
  // Board-memory footprint, read live off the buses (exact even in trace-off
  // builds, where the mem.resident_bytes stats gauge is compiled out).
  uint64_t resident = 0;
  for (size_t i = 0; i < fleet.size(); ++i) {
    resident += fleet.board(i)->mcu().bus().resident_bytes();
  }
  std::printf("  mem resident     %.2f MiB board flash+RAM (%s backing)\n",
              static_cast<double>(resident) / (1024.0 * 1024.0),
              opts.paged && tock::PagedBank::kCompiled ? "paged" : "eager");
  std::printf("  idle skips       %llu epochs fast-forwarded\n",
              static_cast<unsigned long long>(totals.aggregate.fleet_idle_skips));
  if (!opts.telemetry.empty()) {
    std::printf("  telemetry        %llu emitted, %llu dropped, %llu suppressed\n",
                static_cast<unsigned long long>(
                    totals.aggregate.telemetry_events_emitted),
                static_cast<unsigned long long>(
                    totals.aggregate.telemetry_events_dropped),
                static_cast<unsigned long long>(
                    totals.aggregate.telemetry_suppressed));
  }
  std::printf("  wall time        %.3f s (%.1f M sim-insn/s aggregate)\n", wall_s,
              wall_s > 0 ? static_cast<double>(totals.instructions) / wall_s / 1e6
                         : 0.0);
  if (opts.report_rss) {
    struct rusage usage {};
    if (getrusage(RUSAGE_SELF, &usage) == 0) {
      // ru_maxrss is KiB on Linux: the host-process high-water mark, the number
      // the boards-vs-RSS scaling table in README.md is built from.
      std::printf("  host peak rss    %.2f MiB\n",
                  static_cast<double>(usage.ru_maxrss) / 1024.0);
    }
  }

  if (opts.ota) {
    const tock::OtaGatewayStats& gw = boards[0]->ota_gateway().stats();
    std::printf("\nota: %zu subscribers, loss %llu/%llu/%llu/%llu permille (drop/dup/reorder/corrupt)\n",
                opts.boards - 1, static_cast<unsigned long long>(opts.drop),
                static_cast<unsigned long long>(opts.dup),
                static_cast<unsigned long long>(opts.reorder),
                static_cast<unsigned long long>(opts.corrupt));
    std::printf("  frames sent      %llu (%llu retransmits, %llu image re-pushes)\n",
                static_cast<unsigned long long>(gw.frames_sent),
                static_cast<unsigned long long>(gw.retransmits),
                static_cast<unsigned long long>(gw.image_repushes));
    std::printf("  converged        %llu/%zu (%llu failed)\n",
                static_cast<unsigned long long>(gw.converged), opts.boards - 1,
                static_cast<unsigned long long>(gw.failed));
    size_t running = 0;
    for (size_t i = 1; i < opts.boards; ++i) {
      const tock::OtaSubscriberStats& sub = boards[i]->ota_subscriber().stats();
      std::printf("  board %-3zu %-9s chunks %-4llu crc-drops %-3llu dup %-3llu load attempts %llu\n",
                  i, boards[i]->ota_subscriber().Converged() ? "converged" : "pending",
                  static_cast<unsigned long long>(sub.chunks_received),
                  static_cast<unsigned long long>(sub.chunk_crc_failures),
                  static_cast<unsigned long long>(sub.duplicate_chunks),
                  static_cast<unsigned long long>(sub.load_attempts));
      if (boards[i]->ota_subscriber().Converged()) {
        ++running;
      }
    }
    if (running != opts.boards - 1) {
      std::fprintf(stderr, "ota: only %zu/%zu subscribers converged\n", running,
                   opts.boards - 1);
      return 1;
    }
  }
  return 0;
}
