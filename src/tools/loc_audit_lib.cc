// ERA: 4
#include "tools/loc_audit.h"

#include <algorithm>
#include <filesystem>
#include <fstream>
#include <sstream>

namespace tock {
namespace fs = std::filesystem;

namespace {

bool IsSourceFile(const fs::path& path) {
  return path.extension() == ".h" || path.extension() == ".cc";
}

FileAudit AuditFile(const fs::path& path) {
  FileAudit audit;
  audit.path = path.string();
  std::ifstream in(path);
  std::string line;
  int depth = 0;
  bool first_lines = true;
  int line_no = 0;
  while (std::getline(in, line)) {
    ++line_no;
    // Era tag: an `// ERA: n` comment within the first few lines.
    if (first_lines && line_no <= 5) {
      size_t pos = line.find("ERA:");
      if (pos != std::string::npos) {
        audit.era = std::atoi(line.c_str() + pos + 4);
        first_lines = false;
      }
    }
    bool blank = line.find_first_not_of(" \t\r") == std::string::npos;
    if (!blank) {
      ++audit.total_lines;
    }
    if (line.find("TRUSTED-BEGIN") != std::string::npos) {
      ++depth;
    }
    if (depth > 0 && !blank) {
      ++audit.trusted_lines;
    }
    if (line.find("TRUSTED-END") != std::string::npos) {
      if (depth == 0) {
        audit.balanced_markers = false;
      } else {
        --depth;
      }
    }
  }
  if (depth != 0) {
    audit.balanced_markers = false;
  }
  return audit;
}

}  // namespace

AuditReport AuditTree(const std::string& root) {
  AuditReport report;
  int max_era = 1;
  for (const auto& entry : fs::recursive_directory_iterator(root)) {
    if (!entry.is_regular_file() || !IsSourceFile(entry.path())) {
      continue;
    }
    std::string p = entry.path().string();
    if (p.find("/build/") != std::string::npos) {
      continue;
    }
    FileAudit audit = AuditFile(entry.path());
    if (audit.era == 0) {
      ++report.untagged_files;
    }
    if (!audit.balanced_markers) {
      ++report.unbalanced_files;
    }
    max_era = std::max(max_era, audit.era);
    report.files.push_back(std::move(audit));
  }
  std::sort(report.files.begin(), report.files.end(),
            [](const FileAudit& a, const FileAudit& b) { return a.path < b.path; });

  report.cumulative_eras.assign(static_cast<size_t>(max_era), EraTotals{});
  for (const FileAudit& audit : report.files) {
    int era = audit.era == 0 ? max_era : audit.era;
    for (int e = era; e <= max_era; ++e) {
      report.cumulative_eras[e - 1].total_lines += audit.total_lines;
      report.cumulative_eras[e - 1].trusted_lines += audit.trusted_lines;
    }
  }
  return report;
}

std::string FormatReport(const AuditReport& report) {
  std::ostringstream out;
  out << "Figure 5 analog: kernel growth vs. trusted-code footprint by era\n";
  out << "(era 1 = original design, 2 = v2.0 syscall redesign, 3 = loader+crypto,\n";
  out << " 4 = type-system abstractions, 5 = virtualizers/extensions)\n\n";
  out << "  era | cumulative LoC | trusted LoC | trusted %\n";
  out << "  ----+----------------+-------------+----------\n";
  for (size_t i = 0; i < report.cumulative_eras.size(); ++i) {
    const EraTotals& totals = report.cumulative_eras[i];
    double pct = totals.total_lines == 0
                     ? 0.0
                     : 100.0 * static_cast<double>(totals.trusted_lines) /
                           static_cast<double>(totals.total_lines);
    char line[128];
    std::snprintf(line, sizeof(line), "  %3zu | %14llu | %11llu | %7.2f%%\n", i + 1,
                  static_cast<unsigned long long>(totals.total_lines),
                  static_cast<unsigned long long>(totals.trusted_lines), pct);
    out << line;
  }
  out << "\nfiles audited: " << report.files.size()
      << "  untagged: " << report.untagged_files
      << "  unbalanced trusted markers: " << report.unbalanced_files << "\n";
  return out.str();
}

}  // namespace tock
