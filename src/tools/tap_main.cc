// ERA: 8
// tap: attach read-only to a live (or finished) fleet's telemetry region and
// watch it — streaming event tails, per-board stats tables, and exact
// drop/gap diagnostics. Attaching, detaching, or falling behind never affects
// the simulation: the region is mapped PROT_READ and the writer never looks
// for readers (util/spsc_ring.h).
//
//   terminal 1:  ./build/src/tools/fleet --boards=8 --cycles=50000000 --telemetry=tock-fleet
//   terminal 2:  ./build/src/tools/tap --shm=tock-fleet --follow
//
// Exit status: 0 on success, 2 if the region cannot be attached/validated.
#include <chrono>
#include <cinttypes>
#include <cstdint>
#include <cstdio>
#include <cstdlib>
#include <cstring>
#include <string>
#include <thread>
#include <vector>

#include "kernel/telemetry.h"
#include "kernel/trace.h"

namespace {

struct Options {
  std::string shm;
  int64_t board = -1;        // -1 = all boards
  bool follow = false;       // keep polling until --duration-ms elapses
  bool stats = true;         // print the per-board snapshot table
  uint64_t max_events = 16;  // tail length per board in single-pass mode
  uint64_t duration_ms = 0;  // follow budget; 0 = until killed
  uint64_t interval_ms = 50; // follow poll period (host time; readers only)
};

bool ParseUint(const char* text, uint64_t* out) {
  char* end = nullptr;
  unsigned long long value = std::strtoull(text, &end, 0);
  if (end == text || *end != '\0') {
    return false;
  }
  *out = value;
  return true;
}

bool ParseOptions(int argc, char** argv, Options* opts) {
  for (int i = 1; i < argc; ++i) {
    const char* arg = argv[i];
    const char* eq = std::strchr(arg, '=');
    std::string key = eq != nullptr ? std::string(arg, eq - arg) : std::string(arg);
    const char* value = eq != nullptr ? eq + 1 : "";
    uint64_t n = 0;
    if (key == "--shm") {
      opts->shm = value;
    } else if (key == "--board" && ParseUint(value, &n)) {
      opts->board = static_cast<int64_t>(n);
    } else if (key == "--follow") {
      opts->follow = std::strcmp(value, "off") != 0 && std::strcmp(value, "0") != 0;
    } else if (key == "--stats") {
      opts->stats = std::strcmp(value, "off") != 0 && std::strcmp(value, "0") != 0;
    } else if (key == "--max-events" && ParseUint(value, &n)) {
      opts->max_events = n;
    } else if (key == "--duration-ms" && ParseUint(value, &n)) {
      opts->duration_ms = n;
    } else if (key == "--interval-ms" && ParseUint(value, &n) && n > 0) {
      opts->interval_ms = n;
    } else {
      std::fprintf(stderr,
                   "unknown or malformed flag: %s\n"
                   "usage: tap --shm=<name|path> [--board=N] [--follow]\n"
                   "           [--stats=on|off] [--max-events=N]\n"
                   "           [--duration-ms=N] [--interval-ms=N]\n",
                   arg);
      return false;
    }
  }
  if (opts->shm.empty()) {
    std::fprintf(stderr, "tap: --shm=<name|path> is required\n");
    return false;
  }
  return true;
}

void PrintEvent(size_t board, uint64_t seq, const tock::TraceEvent& event,
                uint64_t gap) {
  if (gap > 0) {
    std::printf("[board %zu] ... %" PRIu64 " events lost (ring overwrote seq %" PRIu64
                "..%" PRIu64 ") ...\n",
                board, gap, seq - gap, seq - 1);
  }
  char pid[8];
  if (event.pid == 0xFF) {
    std::snprintf(pid, sizeof(pid), "-");
  } else {
    std::snprintf(pid, sizeof(pid), "%u", event.pid);
  }
  std::printf("[board %zu] seq=%-8" PRIu64 " [%10" PRIu64 "] %-10s pid=%-3s arg=%u\n",
              board, seq, event.cycle, tock::TraceEventKindName(event.kind), pid,
              event.arg);
}

void PrintSnapshot(size_t board, const tock::TelemetrySnapshot& snap) {
  if (snap.seq == 0) {
    std::printf("board %zu: no snapshot published yet\n", board);
    return;
  }
  auto stat = [&](tock::StatId id) {
    return snap.stats[static_cast<size_t>(id)];
  };
  std::printf("board %zu: snapshot #%" PRIu64 " at cycle %" PRIu64 "\n", board,
              snap.seq, snap.cycle);
  std::printf("  syscalls %" PRIu64 "  ctxsw %" PRIu64 "  irqs %" PRIu64
              "  upcalls %" PRIu64 "  faults %" PRIu64 "  restarts %" PRIu64 "\n",
              stat(tock::StatId::kSyscallsTotal),
              stat(tock::StatId::kContextSwitches),
              stat(tock::StatId::kIrqDispatches),
              stat(tock::StatId::kUpcallsDelivered),
              stat(tock::StatId::kProcessFaults),
              stat(tock::StatId::kProcessRestarts));
  std::printf("  telemetry emitted %" PRIu64 "  dropped %" PRIu64
              "  suppressed %" PRIu64 "\n",
              stat(tock::StatId::kTelemetryEventsEmitted),
              stat(tock::StatId::kTelemetryEventsDropped),
              stat(tock::StatId::kTelemetrySuppressed));
  for (size_t row = 0; row < tock::kTelemetryProcRows; ++row) {
    if (snap.proc_names[row].empty()) {
      continue;
    }
    const auto& p = snap.procs[row];
    std::printf("  proc %zu %-16s user %-10" PRIu64 " service %-8" PRIu64
                " syscalls %-8" PRIu64 " upcalls %" PRIu64 "\n",
                row, snap.proc_names[row].c_str(),
                p[static_cast<size_t>(tock::ProcStatField::kUserCycles)],
                p[static_cast<size_t>(tock::ProcStatField::kServiceCycles)],
                p[static_cast<size_t>(tock::ProcStatField::kSyscalls)],
                p[static_cast<size_t>(tock::ProcStatField::kUpcalls)]);
  }
}

}  // namespace

int main(int argc, char** argv) {
  Options opts;
  if (!ParseOptions(argc, argv, &opts)) {
    return 2;
  }

  tock::TelemetryTap tap;
  std::string error;
  if (!tap.Open(opts.shm, &error)) {
    std::fprintf(stderr, "tap: cannot attach to %s: %s\n",
                 tock::ShmRegion::ResolvePath(opts.shm).c_str(), error.c_str());
    return 2;
  }
  std::printf("tap: attached to %s — %zu board(s), %" PRIu64
              " writer(s) bound, ring capacity %" PRIu64 " events\n",
              tock::ShmRegion::ResolvePath(opts.shm).c_str(), tap.board_count(),
              tap.boards_attached(), tap.events(0)->capacity());

  std::vector<size_t> selected;
  for (size_t i = 0; i < tap.board_count(); ++i) {
    if (opts.board < 0 || static_cast<size_t>(opts.board) == i) {
      selected.push_back(i);
    }
  }
  if (selected.empty()) {
    std::fprintf(stderr, "tap: --board=%" PRId64 " out of range (%zu boards)\n",
                 opts.board, tap.board_count());
    return 2;
  }

  if (opts.follow) {
    // Live mode: stream every event as it is published, with gap markers.
    const auto start = std::chrono::steady_clock::now();
    uint64_t words[tock::kTelemetryRecordWords];
    uint64_t gap = 0;
    while (true) {
      for (size_t i : selected) {
        tock::SpscReader* reader = tap.events(i);
        while (reader->PollNext(words, &gap) == tock::SpscReader::Poll::kRecord) {
          PrintEvent(i, reader->next_seq() - 1, tock::DecodeTelemetryRecord(words),
                     gap);
        }
      }
      if (opts.duration_ms != 0) {
        const auto elapsed = std::chrono::duration_cast<std::chrono::milliseconds>(
            std::chrono::steady_clock::now() - start);
        if (elapsed.count() >= static_cast<int64_t>(opts.duration_ms)) {
          break;
        }
      }
      std::this_thread::sleep_for(std::chrono::milliseconds(opts.interval_ms));
    }
  } else {
    // Single pass: drain what the ring holds now, print the tail.
    for (size_t i : selected) {
      tock::SpscReader* reader = tap.events(i);
      struct Tail {
        uint64_t seq;
        uint64_t gap;
        tock::TraceEvent event;
      };
      std::vector<Tail> tail;
      uint64_t words[tock::kTelemetryRecordWords];
      uint64_t gap = 0;
      uint64_t received = 0;
      while (reader->PollNext(words, &gap) == tock::SpscReader::Poll::kRecord) {
        ++received;
        tail.push_back(Tail{reader->next_seq() - 1, gap,
                            tock::DecodeTelemetryRecord(words)});
        if (tail.size() > opts.max_events) {
          tail.erase(tail.begin());
        }
      }
      if (!tail.empty() && tail.front().seq > reader->lost()) {
        std::printf("[board %zu] ... (showing last %zu of %" PRIu64
                    " readable events) ...\n",
                    i, tail.size(), received);
      }
      for (const Tail& t : tail) {
        PrintEvent(i, t.seq, t.event, t.gap);
      }
      std::printf("[board %zu] received %" PRIu64 " events, lost %" PRIu64
                  " to overwrite, next seq %" PRIu64 "\n",
                  i, received, reader->lost(), reader->next_seq());
    }
  }

  if (opts.stats) {
    std::printf("\n");
    for (size_t i : selected) {
      tock::TelemetrySnapshot snap;
      if (tap.ReadSnapshot(i, &snap)) {
        PrintSnapshot(i, snap);
      } else {
        std::printf("board %zu: snapshot read kept tearing (writer busy)\n", i);
      }
    }
  }
  return 0;
}
