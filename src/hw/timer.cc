// ERA: 1
#include "hw/timer.h"

namespace tock {

uint32_t AlarmTimer::MmioRead(uint32_t offset) {
  switch (offset) {
    case AlarmRegs::kNow:
      return static_cast<uint32_t>(clock_->Now());
    case AlarmRegs::kCompare:
      return compare_.Get();
    case AlarmRegs::kCtrl:
      return ctrl_.Get();
    case AlarmRegs::kStatus:
      return status_.Get();
    default:
      return 0;
  }
}

void AlarmTimer::MmioWrite(uint32_t offset, uint32_t value) {
  switch (offset) {
    case AlarmRegs::kCompare:
      compare_.Set(value);
      if (ctrl_.IsSet(AlarmRegs::Ctrl::kEnable)) {
        Arm();
      }
      return;
    case AlarmRegs::kCtrl:
      ctrl_.Set(value);
      if (ctrl_.IsSet(AlarmRegs::Ctrl::kEnable)) {
        Arm();
      } else if (pending_event_ != 0) {
        clock_->Cancel(pending_event_);
        pending_event_ = 0;
      }
      return;
    case AlarmRegs::kIntClr:
      status_.HwModify(FieldValue<uint32_t>{value, 0});
      return;
    default:
      return;
  }
}

void AlarmTimer::Arm() {
  if (pending_event_ != 0) {
    clock_->Cancel(pending_event_);
    pending_event_ = 0;
  }
  // 32-bit wrapping distance from the current counter value to the compare value.
  // A compare equal to "now" fires a full wrap later, matching typical hardware.
  uint32_t now32 = static_cast<uint32_t>(clock_->Now());
  uint32_t delta = compare_.Get() - now32;
  if (delta == 0) {
    delta = UINT32_MAX;
  }
  pending_event_ = clock_->ScheduleAfter(delta, [this] {
    pending_event_ = 0;
    status_.HwModify(AlarmRegs::Status::kFired.Set());
    irq_.Raise();
  });
}

uint32_t SysTick::MmioRead(uint32_t offset) {
  switch (offset) {
    case SysTickRegs::kCtrl:
      return enabled_ ? 1 : 0;
    case SysTickRegs::kStatus:
      return status_.Get();
    default:
      return 0;
  }
}

void SysTick::MmioWrite(uint32_t offset, uint32_t value) {
  switch (offset) {
    case SysTickRegs::kReload:
      ArmCycles(value);
      return;
    case SysTickRegs::kCtrl:
      enabled_ = (value & 1) != 0;
      if (!enabled_ && pending_event_ != 0) {
        clock_->Cancel(pending_event_);
        pending_event_ = 0;
      }
      return;
    case SysTickRegs::kIntClr:
      status_.HwModify(FieldValue<uint32_t>{value, 0});
      return;
    default:
      return;
  }
}

void SysTick::ArmCycles(uint32_t cycles) {
  if (pending_event_ != 0) {
    clock_->Cancel(pending_event_);
    pending_event_ = 0;
  }
  status_.HwModify(SysTickRegs::Status::kExpired.Clear());
  if (!enabled_ || cycles == 0) {
    return;
  }
  pending_event_ = clock_->ScheduleAfter(cycles, [this] {
    pending_event_ = 0;
    status_.HwModify(SysTickRegs::Status::kExpired.Set());
    irq_.Raise();
  });
}

void SysTick::DisarmAndClear() {
  if (pending_event_ != 0) {
    clock_->Cancel(pending_event_);
    pending_event_ = 0;
  }
  status_.HwModify(SysTickRegs::Status::kExpired.Clear());
}

bool SysTick::Expired() const { return status_.IsSet(SysTickRegs::Status::kExpired); }

}  // namespace tock
