// ERA: 3
// 4 KiB-paged backing store for a board memory bank (flash or RAM). The point is
// fleet scale: a thousand-board deployment where most boards never touch most of
// their address space should not pay 640 KiB of host RSS per board. Pages resolve
// copy-on-write — reads hit either a fleet-shared immutable base image (boards
// flashed from the same TBF set share flash pages until OTA/ProgramFlash diverges
// them), a static fill page (0x00 for RAM, 0xFF for erased flash), or a private
// page materialized by the first write. `-DTOCK_PAGED_MEM=OFF` compiles the paged
// paths out entirely; the same binary can also run a bank eagerly at runtime
// (paged=false) so benches can compare both modes in one process.
//
// Determinism: paging is invisible to the simulation. Every read returns exactly
// the bytes an eager vector would hold, every write lands at the same offset; the
// only observable difference is the host-only `mem.resident_bytes` gauge.
#ifndef TOCK_HW_PAGED_MEM_H_
#define TOCK_HW_PAGED_MEM_H_

#include <cstdint>
#include <cstring>
#include <memory>
#include <vector>

// Compile-time gate: when OFF, PagedBank is a thin wrapper over one contiguous
// vector and the COW machinery is dead code the optimizer drops.
#ifndef TOCK_PAGED_MEM_ENABLED
#define TOCK_PAGED_MEM_ENABLED 1
#endif

namespace tock {

class PagedBank {
 public:
  static constexpr bool kCompiled = TOCK_PAGED_MEM_ENABLED != 0;
  static constexpr uint32_t kPageShift = 12;
  static constexpr uint32_t kPageSize = 1u << kPageShift;  // 4 KiB
  static constexpr uint32_t kPageMask = kPageSize - 1;

  // `size` must be a multiple of kPageSize; `fill` is the erased/background byte
  // (0xFF for flash, 0x00 for RAM). `paged=false` allocates eagerly up front —
  // bit-identical behavior, vector-of-bytes footprint.
  PagedBank(uint32_t size, uint8_t fill, bool paged);

  // Bulk accessors; offsets are bank-relative and must be in bounds (the bus
  // checks ranges before calling). The single-page case is the hot path — all
  // 1/2/4-byte VM accesses land here unless they straddle a page line.
  void Read(uint32_t off, void* dst, uint32_t len) const {
    const uint32_t page = off >> kPageShift;
    if (((off + len - 1) >> kPageShift) == page) {
      std::memcpy(dst, read_ptrs_[page] + (off & kPageMask), len);
      return;
    }
    ReadSlow(off, static_cast<uint8_t*>(dst), len);
  }
  void Write(uint32_t off, const void* src, uint32_t len) {
    const uint32_t page = off >> kPageShift;
    if (((off + len - 1) >> kPageShift) == page) {
      uint8_t* dst = write_ptrs_[page];
      if (dst == nullptr) {
        dst = Materialize(page);
      }
      std::memcpy(dst + (off & kPageMask), src, len);
      return;
    }
    WriteSlow(off, static_cast<const uint8_t*>(src), len);
  }

  // Borrowed-pointer accessors for callers that need a real span (the kernel's
  // zero-copy translation fast path). In paged mode a range crossing a page
  // line returns nullptr — callers must then bounce through Read/Write. An
  // eager bank is one flat allocation, so every in-bounds span is contiguous.
  const uint8_t* ContiguousRead(uint32_t off, uint32_t len) const {
    const uint32_t page = off >> kPageShift;
    if (paged_ && len != 0 && ((off + len - 1) >> kPageShift) != page) {
      return nullptr;
    }
    return read_ptrs_[page] + (off & kPageMask);
  }
  uint8_t* ContiguousWrite(uint32_t off, uint32_t len) {
    const uint32_t page = off >> kPageShift;
    if (paged_ && len != 0 && ((off + len - 1) >> kPageShift) != page) {
      return nullptr;
    }
    uint8_t* dst = write_ptrs_[page];
    if (dst == nullptr) {
      dst = Materialize(page);
    }
    return dst + (off & kPageMask);
  }

  // Shares an immutable base image across boards: pages that have not diverged
  // (no private copy yet) read straight from `base`. The image must be exactly
  // bank-sized. In eager mode the image is copied in. Writes after adoption
  // materialize private copies — the base is never mutated.
  void AdoptBase(std::shared_ptr<const std::vector<uint8_t>> base);

  // Resets [off, off+len) to its background contents (base image if adopted,
  // fill byte otherwise). Fully covered private pages are released back to the
  // shared/fill backing — this is how a process restart returns its RAM quota
  // to the fleet. Partially covered pages are rewritten in place.
  void ResetRange(uint32_t off, uint32_t len);

  // Host memory actually committed to this bank: private (diverged) pages in
  // paged mode, the whole bank in eager mode. Shared base-image and fill pages
  // are free riders and intentionally not counted per board.
  uint64_t resident_bytes() const {
    return paged_ ? static_cast<uint64_t>(resident_pages_) * kPageSize : size_;
  }

  bool paged() const { return paged_; }
  uint32_t size() const { return size_; }

 private:
  // Copies the page's current backing into a freshly allocated private page and
  // repoints both pointer tables at it. Out-of-line: the COW miss is cold.
  uint8_t* Materialize(uint32_t page);
  void ReadSlow(uint32_t off, uint8_t* dst, uint32_t len) const;
  void WriteSlow(uint32_t off, const uint8_t* src, uint32_t len);
  // The page's non-private backing: base image if adopted, else the fill page.
  const uint8_t* BackingPage(uint32_t page) const;
  static const uint8_t* FillPage(uint8_t fill);

  uint32_t size_;
  uint8_t fill_;
  bool paged_;
  uint32_t resident_pages_ = 0;
  // Per-page read/write pointers. read_ptrs_[p] is always valid (private page,
  // base image, or shared fill page); write_ptrs_[p] is null until the page has
  // a private copy (or always valid in eager mode).
  std::vector<const uint8_t*> read_ptrs_;
  std::vector<uint8_t*> write_ptrs_;
  std::vector<std::unique_ptr<uint8_t[]>> private_pages_;  // paged mode owners
  std::vector<uint8_t> flat_;                              // eager mode storage
  std::shared_ptr<const std::vector<uint8_t>> base_;       // keeps base alive
};

}  // namespace tock

#endif  // TOCK_HW_PAGED_MEM_H_
