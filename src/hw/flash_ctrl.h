// ERA: 3
// Flash controller: the only path by which flash contents change. Program/erase are
// asynchronous page operations with realistic (very long) latencies, which is why
// storage drivers above it must be split-phase (§2.1's file-system example).
#ifndef TOCK_HW_FLASH_CTRL_H_
#define TOCK_HW_FLASH_CTRL_H_

#include <cstdint>
#include <vector>

#include "hw/costs.h"
#include "hw/interrupt.h"
#include "hw/memory_bus.h"
#include "hw/sim_clock.h"
#include "util/registers.h"

namespace tock {

struct FlashRegs {
  static constexpr uint32_t kCtrl = 0x00;
  static constexpr uint32_t kStatus = 0x04;
  static constexpr uint32_t kIntClr = 0x08;
  static constexpr uint32_t kDstAddr = 0x0C;  // flash byte address (page aligned)
  static constexpr uint32_t kSrcAddr = 0x10;  // RAM source for program
  static constexpr uint32_t kLen = 0x14;

  static constexpr uint32_t kPageSize = 512;

  struct Ctrl {
    static constexpr Field<uint32_t> kProgram{0, 1};
    static constexpr Field<uint32_t> kErase{1, 1};
  };
  struct Status {
    static constexpr Field<uint32_t> kBusy{0, 1};
    static constexpr Field<uint32_t> kDone{1, 1};
    static constexpr Field<uint32_t> kError{2, 1};
  };
};

class FlashController : public MmioDevice {
 public:
  FlashController(SimClock* clock, MemoryBus* bus, InterruptLine irq)
      : clock_(clock), bus_(bus), irq_(irq) {}

  uint32_t MmioRead(uint32_t offset) override {
    switch (offset) {
      case FlashRegs::kStatus:
        return status_.Get();
      case FlashRegs::kDstAddr:
        return dst_;
      case FlashRegs::kSrcAddr:
        return src_;
      case FlashRegs::kLen:
        return len_;
      default:
        return 0;
    }
  }

  void MmioWrite(uint32_t offset, uint32_t value) override {
    switch (offset) {
      case FlashRegs::kCtrl:
        if ((value & FlashRegs::Ctrl::kProgram.Mask()) != 0) {
          StartProgram();
        } else if ((value & FlashRegs::Ctrl::kErase.Mask()) != 0) {
          StartErase();
        }
        return;
      case FlashRegs::kIntClr:
        status_.HwModify(FieldValue<uint32_t>{value, 0});
        return;
      case FlashRegs::kDstAddr:
        dst_ = value;
        return;
      case FlashRegs::kSrcAddr:
        src_ = value;
        return;
      case FlashRegs::kLen:
        len_ = value;
        return;
      default:
        return;
    }
  }

 private:
  void Fail() {
    status_.HwModify(FlashRegs::Status::kError.Set() + FlashRegs::Status::kDone.Set());
    irq_.Raise();
  }

  void StartProgram() {
    if (status_.IsSet(FlashRegs::Status::kBusy)) {
      return;
    }
    std::vector<uint8_t> data(len_);
    if (len_ == 0 || !bus_->ReadBlock(src_, data.data(), len_)) {
      Fail();
      return;
    }
    status_.HwModify(FlashRegs::Status::kBusy.Set());
    uint64_t pages = (len_ + FlashRegs::kPageSize - 1) / FlashRegs::kPageSize;
    clock_->ScheduleAfter(pages * CycleCosts::kFlashWriteCyclesPerPage,
                          [this, data = std::move(data)] {
                            bool ok = bus_->ProgramFlash(dst_, data.data(),
                                                         static_cast<uint32_t>(data.size()));
                            status_.HwModify(FlashRegs::Status::kBusy.Clear());
                            status_.HwModify(ok ? FlashRegs::Status::kDone.Set()
                                                : FlashRegs::Status::kError.Set() +
                                                      FlashRegs::Status::kDone.Set());
                            irq_.Raise();
                          });
  }

  void StartErase() {
    if (status_.IsSet(FlashRegs::Status::kBusy)) {
      return;
    }
    status_.HwModify(FlashRegs::Status::kBusy.Set());
    clock_->ScheduleAfter(CycleCosts::kFlashWriteCyclesPerPage, [this] {
      std::vector<uint8_t> ones(FlashRegs::kPageSize, 0xFF);
      bool ok = bus_->ProgramFlash(dst_ & ~(FlashRegs::kPageSize - 1), ones.data(),
                                   FlashRegs::kPageSize);
      status_.HwModify(FlashRegs::Status::kBusy.Clear());
      status_.HwModify(ok ? FlashRegs::Status::kDone.Set()
                          : FlashRegs::Status::kError.Set() + FlashRegs::Status::kDone.Set());
      irq_.Raise();
    });
  }

  SimClock* clock_;
  MemoryBus* bus_;
  InterruptLine irq_;
  ReadOnlyReg<uint32_t> status_;
  uint32_t dst_ = 0;
  uint32_t src_ = 0;
  uint32_t len_ = 0;
};

}  // namespace tock

#endif  // TOCK_HW_FLASH_CTRL_H_
