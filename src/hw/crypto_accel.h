// ERA: 3
// Simulated cryptographic accelerators (§3.4): AES-128 and SHA-256/HMAC engines with
// DMA and interrupt-driven completion. "Cryptography implemented in hardware
// peripherals is asynchronous" — the key architectural fact that forced Tock's
// process loading into a state machine — is faithfully modelled: START returns
// immediately and a completion interrupt arrives after a size-dependent latency.
#ifndef TOCK_HW_CRYPTO_ACCEL_H_
#define TOCK_HW_CRYPTO_ACCEL_H_

#include <cstdint>

#include "hw/costs.h"
#include "hw/interrupt.h"
#include "hw/memory_bus.h"
#include "hw/sim_clock.h"
#include "util/registers.h"

namespace tock {

struct AesRegs {
  static constexpr uint32_t kCtrl = 0x00;
  static constexpr uint32_t kStatus = 0x04;
  static constexpr uint32_t kIntClr = 0x08;
  static constexpr uint32_t kKey0 = 0x10;  // ..0x1C: 128-bit key
  static constexpr uint32_t kCtr0 = 0x20;  // ..0x2C: counter block / IV
  static constexpr uint32_t kSrc = 0x30;
  static constexpr uint32_t kDst = 0x34;
  static constexpr uint32_t kLen = 0x38;

  struct Ctrl {
    static constexpr Field<uint32_t> kStart{0, 1};
    static constexpr Field<uint32_t> kMode{1, 1};     // 0 = ECB, 1 = CTR
    static constexpr Field<uint32_t> kDecrypt{2, 1};  // ECB only
  };
  struct Status {
    static constexpr Field<uint32_t> kBusy{0, 1};
    static constexpr Field<uint32_t> kDone{1, 1};
    static constexpr Field<uint32_t> kError{2, 1};  // bad length / DMA fault
  };
};

class AesAccel : public MmioDevice {
 public:
  AesAccel(SimClock* clock, MemoryBus* bus, InterruptLine irq)
      : clock_(clock), bus_(bus), irq_(irq) {}

  uint32_t MmioRead(uint32_t offset) override;
  void MmioWrite(uint32_t offset, uint32_t value) override;

 private:
  void Start();

  SimClock* clock_;
  MemoryBus* bus_;
  InterruptLine irq_;
  ReadWriteReg<uint32_t> ctrl_;
  ReadOnlyReg<uint32_t> status_;
  uint32_t key_[4] = {};
  uint32_t ctr_[4] = {};
  uint32_t src_ = 0;
  uint32_t dst_ = 0;
  uint32_t len_ = 0;
};

struct ShaRegs {
  static constexpr uint32_t kCtrl = 0x00;
  static constexpr uint32_t kStatus = 0x04;
  static constexpr uint32_t kIntClr = 0x08;
  static constexpr uint32_t kSrc = 0x0C;
  static constexpr uint32_t kLen = 0x10;
  static constexpr uint32_t kDigest0 = 0x20;  // ..0x3C RO: 256-bit result
  static constexpr uint32_t kKey0 = 0x40;     // ..0x5C: 256-bit HMAC key

  struct Ctrl {
    static constexpr Field<uint32_t> kStart{0, 1};
    static constexpr Field<uint32_t> kMode{1, 1};  // 0 = SHA-256, 1 = HMAC-SHA256
  };
  struct Status {
    static constexpr Field<uint32_t> kBusy{0, 1};
    static constexpr Field<uint32_t> kDone{1, 1};
    static constexpr Field<uint32_t> kError{2, 1};
  };
};

class ShaAccel : public MmioDevice {
 public:
  ShaAccel(SimClock* clock, MemoryBus* bus, InterruptLine irq)
      : clock_(clock), bus_(bus), irq_(irq) {}

  uint32_t MmioRead(uint32_t offset) override;
  void MmioWrite(uint32_t offset, uint32_t value) override;

 private:
  void Start();

  SimClock* clock_;
  MemoryBus* bus_;
  InterruptLine irq_;
  ReadWriteReg<uint32_t> ctrl_;
  ReadOnlyReg<uint32_t> status_;
  uint32_t src_ = 0;
  uint32_t len_ = 0;
  uint32_t digest_[8] = {};
  uint32_t key_[8] = {};
};

}  // namespace tock

#endif  // TOCK_HW_CRYPTO_ACCEL_H_
