// ERA: 1
// Hardware timers: a free-running 32-bit alarm/compare timer (the substrate under the
// virtual alarm mux, §5.4) and a SysTick-style countdown timer the kernel uses to
// preempt userspace processes (§2.3).
#ifndef TOCK_HW_TIMER_H_
#define TOCK_HW_TIMER_H_

#include <cstdint>

#include "hw/interrupt.h"
#include "hw/memory_bus.h"
#include "hw/sim_clock.h"
#include "util/registers.h"

namespace tock {

// Free-running counter (truncated clock cycles) with a compare register. Raises its
// interrupt when the counter passes COMPARE while enabled. Handles 32-bit wraparound
// the way real counters do: the match is "counter reaches compare value", up to one
// full wrap in the future.
struct AlarmRegs {
  static constexpr uint32_t kNow = 0x00;      // RO: current counter value
  static constexpr uint32_t kCompare = 0x04;  // RW: match value
  static constexpr uint32_t kCtrl = 0x08;     // bit0: enable
  static constexpr uint32_t kStatus = 0x0C;   // bit0: fired (latched)
  static constexpr uint32_t kIntClr = 0x10;   // W1C

  struct Ctrl {
    static constexpr Field<uint32_t> kEnable{0, 1};
  };
  struct Status {
    static constexpr Field<uint32_t> kFired{0, 1};
  };
};

class AlarmTimer : public MmioDevice {
 public:
  AlarmTimer(SimClock* clock, InterruptLine irq) : clock_(clock), irq_(irq) {}

  uint32_t MmioRead(uint32_t offset) override;
  void MmioWrite(uint32_t offset, uint32_t value) override;

 private:
  void Arm();

  SimClock* clock_;
  InterruptLine irq_;
  ReadWriteReg<uint32_t> compare_;
  ReadWriteReg<uint32_t> ctrl_;
  ReadOnlyReg<uint32_t> status_;
  uint64_t pending_event_ = 0;  // SimClock event id, 0 = none
};

// Countdown timer for preemption. Writing RELOAD arms it; it raises its interrupt
// `reload` cycles later unless re-armed or disabled first.
struct SysTickRegs {
  static constexpr uint32_t kReload = 0x00;  // write arms the countdown
  static constexpr uint32_t kCtrl = 0x04;    // bit0: enable
  static constexpr uint32_t kStatus = 0x08;  // bit0: expired (latched)
  static constexpr uint32_t kIntClr = 0x0C;  // W1C

  struct Ctrl {
    static constexpr Field<uint32_t> kEnable{0, 1};
  };
  struct Status {
    static constexpr Field<uint32_t> kExpired{0, 1};
  };
};

class SysTick : public MmioDevice {
 public:
  SysTick(SimClock* clock, InterruptLine irq) : clock_(clock), irq_(irq) {}

  uint32_t MmioRead(uint32_t offset) override;
  void MmioWrite(uint32_t offset, uint32_t value) override;

  // Convenience for the kernel scheduler (which owns this device directly rather
  // than going through the bus — it is core, trusted code).
  void ArmCycles(uint32_t cycles);
  void DisarmAndClear();
  bool Expired() const;

 private:
  SimClock* clock_;
  InterruptLine irq_;
  ReadOnlyReg<uint32_t> status_;
  bool enabled_ = true;
  uint64_t pending_event_ = 0;
};

}  // namespace tock

#endif  // TOCK_HW_TIMER_H_
