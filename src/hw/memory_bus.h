// ERA: 1
// The MCU's memory bus: routes loads and stores to flash, RAM, or MMIO peripherals,
// and enforces the MPU on unprivileged accesses. Every memory access made by the
// simulated userspace VM flows through CheckedRead/CheckedWrite, which is what makes
// process isolation (§2.3) *actually enforced* in this reproduction rather than
// assumed.
#ifndef TOCK_HW_MEMORY_BUS_H_
#define TOCK_HW_MEMORY_BUS_H_

#include <cstdint>
#include <optional>
#include <vector>

#include "hw/memory_map.h"
#include "hw/mpu.h"

namespace tock {

// A peripheral's register-bank interface. Offsets are byte offsets from the
// peripheral's base; accesses are whole 32-bit words (the simulated peripherals, like
// most real ones, only decode word accesses).
class MmioDevice {
 public:
  virtual ~MmioDevice() = default;
  virtual uint32_t MmioRead(uint32_t offset) = 0;
  virtual void MmioWrite(uint32_t offset, uint32_t value) = 0;
};

enum class Privilege { kPrivileged, kUnprivileged };

// Notified after any successful ProgramFlash — the single modeled flash-write path
// (flash controller, app installer, fault-injected bit flips). The kernel uses it to
// invalidate predecoded-instruction caches covering the programmed range.
class FlashWriteObserver {
 public:
  virtual ~FlashWriteObserver() = default;
  virtual void OnFlashProgrammed(uint32_t addr, uint32_t len) = 0;
};

enum class BusFaultKind {
  kNone,
  kUnmapped,       // no memory or device at this address
  kMpuViolation,   // unprivileged access denied by the MPU
  kFlashWrite,     // direct store to flash (must go through the flash controller)
  kUnalignedMmio,  // MMIO access not word-sized/word-aligned
};

struct BusFault {
  BusFaultKind kind = BusFaultKind::kNone;
  uint32_t addr = 0;
  AccessType access = AccessType::kRead;
};

class MemoryBus {
 public:
  explicit MemoryBus(Mpu* mpu)
      : mpu_(mpu), flash_(MemoryMap::kFlashSize, 0xFF), ram_(MemoryMap::kRamSize, 0) {}

  // Registers `device` at the given peripheral slot.
  void AttachDevice(MemoryMap::Slot slot, MmioDevice* device);

  // Load of `size` (1, 2 or 4) bytes, little-endian. Unprivileged accesses are
  // checked against the MPU; nullopt => fault, details in last_fault().
  std::optional<uint32_t> Read(uint32_t addr, unsigned size, Privilege priv);

  // Store of `size` bytes. Same checking rules as Read.
  bool Write(uint32_t addr, uint32_t value, unsigned size, Privilege priv);

  // Instruction fetch: a read that must also pass an MPU execute check when
  // unprivileged.
  std::optional<uint32_t> Fetch(uint32_t addr, Privilege priv);

  // DMA-style block accessors used by peripherals and by the kernel's process-memory
  // translation layer. Privileged: they bypass the MPU (as bus-master DMA does on
  // real parts). Return false if the range leaves mapped RAM/flash.
  bool ReadBlock(uint32_t addr, uint8_t* out, uint32_t len);
  bool WriteBlock(uint32_t addr, const uint8_t* data, uint32_t len);

  // TRUSTED-BEGIN(flash programming backdoor): only the flash controller peripheral
  // may write flash contents; it does so through this method after modelling the
  // program/erase latency.
  bool ProgramFlash(uint32_t addr, const uint8_t* data, uint32_t len);
  // TRUSTED-END

  // At most one observer (the kernel); nullptr detaches.
  void set_flash_observer(FlashWriteObserver* observer) { flash_observer_ = observer; }

  const BusFault& last_fault() const { return last_fault_; }
  void ClearFault() { last_fault_ = BusFault{}; }

  Mpu* mpu() { return mpu_; }

  // Raw backing stores, for loaders and test fixtures.
  std::vector<uint8_t>& flash() { return flash_; }
  std::vector<uint8_t>& ram() { return ram_; }

  // Counters for the MMIO-cost experiments.
  uint64_t mmio_accesses() const { return mmio_accesses_; }

 private:
  bool InRam(uint32_t addr, uint32_t len) const {
    return addr >= MemoryMap::kRamBase &&
           static_cast<uint64_t>(addr) + len <= static_cast<uint64_t>(MemoryMap::kRamBase) + MemoryMap::kRamSize;
  }
  bool InFlash(uint32_t addr, uint32_t len) const {
    return static_cast<uint64_t>(addr) + len <= MemoryMap::kFlashBase + MemoryMap::kFlashSize;
  }

  MmioDevice* DeviceAt(uint32_t addr, uint32_t* offset_out);

  bool Fault(BusFaultKind kind, uint32_t addr, AccessType access) {
    last_fault_ = BusFault{kind, addr, access};
    return false;
  }

  Mpu* mpu_;
  std::vector<uint8_t> flash_;
  std::vector<uint8_t> ram_;
  MmioDevice* devices_[MemoryMap::kNumSlots] = {};
  FlashWriteObserver* flash_observer_ = nullptr;
  BusFault last_fault_;
  uint64_t mmio_accesses_ = 0;
};

}  // namespace tock

#endif  // TOCK_HW_MEMORY_BUS_H_
