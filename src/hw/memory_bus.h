// ERA: 1
// The MCU's memory bus: routes loads and stores to flash, RAM, or MMIO peripherals,
// and enforces the MPU on unprivileged accesses. Every memory access made by the
// simulated userspace VM flows through CheckedRead/CheckedWrite, which is what makes
// process isolation (§2.3) *actually enforced* in this reproduction rather than
// assumed.
//
// Backing storage is 4 KiB-paged copy-on-write (hw/paged_mem.h): flash pages can
// resolve from a fleet-shared immutable base image, RAM pages are zero-backed until
// first write. Paging is invisible to the simulation — only the host-side
// resident_bytes() gauge can tell the difference.
#ifndef TOCK_HW_MEMORY_BUS_H_
#define TOCK_HW_MEMORY_BUS_H_

#include <cstdint>
#include <memory>
#include <optional>
#include <vector>

#include "hw/memory_map.h"
#include "hw/mpu.h"
#include "hw/paged_mem.h"

namespace tock {

// A peripheral's register-bank interface. Offsets are byte offsets from the
// peripheral's base; accesses are whole 32-bit words (the simulated peripherals, like
// most real ones, only decode word accesses).
class MmioDevice {
 public:
  virtual ~MmioDevice() = default;
  virtual uint32_t MmioRead(uint32_t offset) = 0;
  virtual void MmioWrite(uint32_t offset, uint32_t value) = 0;
};

enum class Privilege { kPrivileged, kUnprivileged };

// Notified after any successful ProgramFlash — the single modeled flash-write path
// (flash controller, app installer, fault-injected bit flips). The kernel uses it to
// invalidate predecoded-instruction caches covering the programmed range.
class FlashWriteObserver {
 public:
  virtual ~FlashWriteObserver() = default;
  virtual void OnFlashProgrammed(uint32_t addr, uint32_t len) = 0;
};

enum class BusFaultKind {
  kNone,
  kUnmapped,       // no memory or device at this address
  kMpuViolation,   // unprivileged access denied by the MPU
  kFlashWrite,     // direct store to flash (must go through the flash controller)
  kUnalignedMmio,  // MMIO access not word-sized/word-aligned
};

struct BusFault {
  BusFaultKind kind = BusFaultKind::kNone;
  uint32_t addr = 0;
  AccessType access = AccessType::kRead;
};

class MemoryBus {
 public:
  explicit MemoryBus(Mpu* mpu, bool paged = PagedBank::kCompiled)
      : mpu_(mpu),
        flash_(MemoryMap::kFlashSize, 0xFF, paged),
        ram_(MemoryMap::kRamSize, 0x00, paged) {}

  // Registers `device` at the given peripheral slot.
  void AttachDevice(MemoryMap::Slot slot, MmioDevice* device);

  // Load of `size` (1, 2 or 4) bytes, little-endian. Unprivileged accesses are
  // checked against the MPU; nullopt => fault, details in last_fault().
  std::optional<uint32_t> Read(uint32_t addr, unsigned size, Privilege priv);

  // Store of `size` bytes. Same checking rules as Read.
  bool Write(uint32_t addr, uint32_t value, unsigned size, Privilege priv);

  // Instruction fetch: a read that must also pass an MPU execute check when
  // unprivileged.
  std::optional<uint32_t> Fetch(uint32_t addr, Privilege priv);

  // DMA-style block accessors used by peripherals and by the kernel's process-memory
  // translation layer. Privileged: they bypass the MPU (as bus-master DMA does on
  // real parts). Return false if the range leaves mapped RAM/flash.
  bool ReadBlock(uint32_t addr, uint8_t* out, uint32_t len);
  bool WriteBlock(uint32_t addr, const uint8_t* data, uint32_t len);

  // TRUSTED-BEGIN(flash programming backdoor): only the flash controller peripheral
  // may write flash contents; it does so through this method after modelling the
  // program/erase latency.
  bool ProgramFlash(uint32_t addr, const uint8_t* data, uint32_t len);
  // Host-side raw flash patch that deliberately bypasses the flash-write observer
  // (no decode-cache invalidation). Test fixtures use it to plant stale bytes under
  // a cache and prove the *other* invalidation paths catch them.
  bool FlashWriteRaw(uint32_t addr, const uint8_t* data, uint32_t len);
  // TRUSTED-END

  // Shares an immutable flash base image across a fleet: boards flashed from the
  // same TBF set keep COW references into one copy until OTA/ProgramFlash diverges
  // them. Must be exactly kFlashSize bytes. Call before the board runs.
  void AdoptFlashBase(std::shared_ptr<const std::vector<uint8_t>> image) {
    flash_.AdoptBase(std::move(image));
  }

  // Resets a RAM range to zeros, releasing fully covered private pages back to
  // the shared backing. Process restart uses this to return the quota's pages.
  // Returns false if the range leaves RAM.
  bool ResetRam(uint32_t addr, uint32_t len);

  // Borrowed-pointer accessors for the kernel's zero-copy translation fast path.
  // Valid only while no other bus mutation happens; nullptr when the range spans
  // a 4 KiB page line in paged mode (callers bounce via ReadBlock/WriteBlock) or
  // leaves mapped memory.
  uint8_t* RamWritePtr(uint32_t addr, uint32_t len);
  const uint8_t* MemReadPtr(uint32_t addr, uint32_t len);

  // At most one observer (the kernel); nullptr detaches.
  void set_flash_observer(FlashWriteObserver* observer) { flash_observer_ = observer; }

  const BusFault& last_fault() const { return last_fault_; }
  void ClearFault() { last_fault_ = BusFault{}; }

  Mpu* mpu() { return mpu_; }

  // Host memory committed to this board's flash+RAM: private pages only in paged
  // mode (shared base-image and fill pages ride free), the full banks otherwise.
  uint64_t resident_bytes() const {
    return flash_.resident_bytes() + ram_.resident_bytes();
  }
  bool paged() const { return flash_.paged(); }

  // Counters for the MMIO-cost experiments.
  uint64_t mmio_accesses() const { return mmio_accesses_; }

 private:
  bool InRam(uint32_t addr, uint32_t len) const {
    return addr >= MemoryMap::kRamBase &&
           static_cast<uint64_t>(addr) + len <= static_cast<uint64_t>(MemoryMap::kRamBase) + MemoryMap::kRamSize;
  }
  bool InFlash(uint32_t addr, uint32_t len) const {
    return static_cast<uint64_t>(addr) + len <= MemoryMap::kFlashBase + MemoryMap::kFlashSize;
  }

  MmioDevice* DeviceAt(uint32_t addr, uint32_t* offset_out);

  bool Fault(BusFaultKind kind, uint32_t addr, AccessType access) {
    last_fault_ = BusFault{kind, addr, access};
    return false;
  }

  Mpu* mpu_;
  PagedBank flash_;
  PagedBank ram_;
  MmioDevice* devices_[MemoryMap::kNumSlots] = {};
  FlashWriteObserver* flash_observer_ = nullptr;
  BusFault last_fault_;
  uint64_t mmio_accesses_ = 0;
};

}  // namespace tock

#endif  // TOCK_HW_MEMORY_BUS_H_
