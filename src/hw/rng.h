// ERA: 1
// Entropy peripheral: deterministic xorshift32 behind the asynchronous
// start/ready/read interface of a real TRNG (entropy takes time to gather).
#ifndef TOCK_HW_RNG_H_
#define TOCK_HW_RNG_H_

#include <cstdint>

#include "hw/costs.h"
#include "hw/interrupt.h"
#include "hw/memory_bus.h"
#include "hw/sim_clock.h"
#include "util/registers.h"

namespace tock {

struct RngRegs {
  static constexpr uint32_t kCtrl = 0x00;    // bit0: start gathering one word
  static constexpr uint32_t kStatus = 0x04;  // bit0: ready
  static constexpr uint32_t kData = 0x08;    // RO: reading clears ready
  static constexpr uint32_t kIntClr = 0x0C;

  struct Status {
    static constexpr Field<uint32_t> kReady{0, 1};
  };
};

class Rng : public MmioDevice {
 public:
  Rng(SimClock* clock, InterruptLine irq, uint32_t seed)
      : clock_(clock), irq_(irq), state_(seed == 0 ? 0xdeadbeef : seed) {}

  uint32_t MmioRead(uint32_t offset) override {
    switch (offset) {
      case RngRegs::kStatus:
        return status_.Get();
      case RngRegs::kData:
        status_.HwModify(RngRegs::Status::kReady.Clear());
        return data_;
      default:
        return 0;
    }
  }

  void MmioWrite(uint32_t offset, uint32_t value) override {
    if (offset == RngRegs::kCtrl && (value & 1) != 0) {
      clock_->ScheduleAfter(CycleCosts::kRngCyclesPerWord, [this] {
        data_ = NextWord();
        status_.HwModify(RngRegs::Status::kReady.Set());
        irq_.Raise();
      });
    } else if (offset == RngRegs::kIntClr) {
      status_.HwModify(FieldValue<uint32_t>{value, 0});
    }
  }

 private:
  uint32_t NextWord() {
    state_ ^= state_ << 13;
    state_ ^= state_ >> 17;
    state_ ^= state_ << 5;
    return state_;
  }

  SimClock* clock_;
  InterruptLine irq_;
  ReadOnlyReg<uint32_t> status_;
  uint32_t data_ = 0;
  uint32_t state_;
};

}  // namespace tock

#endif  // TOCK_HW_RNG_H_
