// ERA: 1
// Packet radio and shared medium — the substrate for the Signpost-style multi-node
// deployments Tock was designed for (§2). Transmissions broadcast to every other
// radio attached to the same RadioMedium, arriving after an on-air latency
// proportional to packet size.
//
// Cross-board delivery is mailbox-based: the sender computes the absolute arrival
// cycle on the shared timeline (its own clock at transmit time plus the on-air
// latency) and enqueues the frame into each receiver's inbound mailbox. The thread
// that owns the receiving board drains the mailbox at epoch boundaries
// (board/fleet.h) and the frame is delivered by the receiver's own clock when it
// reaches the arrival cycle. Nothing ever touches another board's clock, so boards
// can be stepped from different host threads, and arrival times depend only on the
// transmit time — not on which board stepped first or on the stepping slice.
#ifndef TOCK_HW_RADIO_H_
#define TOCK_HW_RADIO_H_

#include <cstdint>
#include <mutex>
#include <vector>

#include "hw/costs.h"
#include "hw/interrupt.h"
#include "hw/memory_bus.h"
#include "hw/sim_clock.h"
#include "util/registers.h"

namespace tock {

class RadioMedium;

struct RadioRegs {
  static constexpr uint32_t kCtrl = 0x00;
  static constexpr uint32_t kStatus = 0x04;
  static constexpr uint32_t kIntClr = 0x08;
  static constexpr uint32_t kTxAddr = 0x0C;
  static constexpr uint32_t kTxLen = 0x10;  // write starts TX
  static constexpr uint32_t kRxAddr = 0x14;
  static constexpr uint32_t kRxMaxLen = 0x18;
  static constexpr uint32_t kRxLen = 0x1C;     // RO: length of last received packet
  static constexpr uint32_t kNodeAddr = 0x20;  // this node's address (16-bit)
  static constexpr uint32_t kDstAddr = 0x24;   // destination (0xFFFF broadcast)

  struct Ctrl {
    static constexpr Field<uint32_t> kEnable{0, 1};
    static constexpr Field<uint32_t> kRxEnable{1, 1};
  };
  struct Status {
    static constexpr Field<uint32_t> kTxDone{0, 1};
    static constexpr Field<uint32_t> kRxDone{1, 1};
    static constexpr Field<uint32_t> kTxBusy{2, 1};
    // A packet arrived while kRxDone was still set (unconsumed frame in the RX
    // buffer). The new packet was dropped; the buffer is untouched.
    static constexpr Field<uint32_t> kRxOverrun{3, 1};
  };
};

// Fault-injection marks carried by a frame (and surfaced in the delivery log so
// determinism tests can assert fault injection itself is reproducible).
inline constexpr uint8_t kFaultCorrupted = 0x01;   // a payload bit was flipped
inline constexpr uint8_t kFaultReordered = 0x02;   // arrival delayed past later frames
inline constexpr uint8_t kFaultDuplicated = 0x04;  // this frame is the extra copy

// Per-link fault model, drawn per (sender, receiver, seq) from a counter-mode
// hash of the seed — a pure function of frame identity, so the exact same frames
// are dropped/duplicated/reordered/corrupted regardless of host thread count,
// stepping slice, or board step order. Faults only ever ADD latency (reorder and
// duplicate delays are positive), so the medium's lookahead bound — the minimum
// on-air latency — still holds and the epoch-stepping determinism argument is
// untouched.
struct LinkFaultConfig {
  uint64_t seed = 0;
  uint32_t drop_permille = 0;       // frame silently lost (per receiver)
  uint32_t duplicate_permille = 0;  // second copy arrives duplicate_delay later
  uint32_t reorder_permille = 0;    // arrival pushed back by reorder_delay
  uint32_t corrupt_permille = 0;    // one payload bit flipped (position seeded too)
  uint64_t reorder_delay = CycleCosts::kRadioCyclesPerByte * 9 * 3;
  uint64_t duplicate_delay = CycleCosts::kRadioCyclesPerByte * 9;

  bool Enabled() const {
    return (drop_permille | duplicate_permille | reorder_permille | corrupt_permille) != 0;
  }
};

// Receiver-side tally of injected link faults, guarded by the radio's inbox
// mutex (fault draws happen on the sender's thread).
struct LinkFaultCounters {
  uint64_t dropped = 0;
  uint64_t duplicated = 0;
  uint64_t reordered = 0;
  uint64_t corrupted = 0;

  bool operator==(const LinkFaultCounters&) const = default;
};

// A packet in flight: the absolute arrival cycle on the shared timeline plus a
// (sender, sequence) key that totally orders same-cycle arrivals no matter which
// host thread enqueued them first.
struct RadioFrame {
  uint64_t deliver_at = 0;
  uint32_t sender = 0;  // attach index of the transmitting radio (wiring order)
  uint64_t seq = 0;     // sender-local packet sequence number
  uint16_t src = 0;
  uint16_t dst = 0;
  uint8_t fault_bits = 0;  // kFault* marks applied by the medium's fault layer
  std::vector<uint8_t> payload;
};

// One accepted (or overrun-dropped) delivery, for determinism regression tests:
// two runs of the same fleet must produce byte-identical logs regardless of host
// thread count, stepping slice, or board step order.
struct RadioDeliveryRecord {
  uint64_t cycle = 0;
  uint16_t src = 0;
  uint16_t dst = 0;
  uint32_t len = 0;
  uint32_t payload_sum = 0;  // order-sensitive checksum of the payload bytes
  uint8_t fault_bits = 0;    // kFault* marks the medium stamped on the frame
  bool overrun = false;

  bool operator==(const RadioDeliveryRecord&) const = default;
};

class Radio : public MmioDevice {
 public:
  static constexpr uint32_t kMaxPacket = 256;

  Radio(SimClock* clock, MemoryBus* bus, InterruptLine irq)
      : clock_(clock), bus_(bus), irq_(irq) {}

  uint32_t MmioRead(uint32_t offset) override;
  void MmioWrite(uint32_t offset, uint32_t value) override;

  // Medium side: delivers a packet addressed to this node (or broadcast) right
  // now. Drops it (counting an overrun) if an unconsumed frame still occupies the
  // RX buffer.
  void Deliver(uint16_t src, uint16_t dst, const std::vector<uint8_t>& payload,
               uint8_t fault_bits = 0);

  // Medium side: enqueues a frame into the inbound mailbox. The only radio entry
  // point that may be called from a foreign (sender-board) thread.
  void Enqueue(RadioFrame frame);

  // Owner side: drains the mailbox into the time-sorted pending set and arms the
  // delivery event on this board's own clock. Called by the board's owning thread
  // at epoch boundaries (board/fleet.cc), or synchronously by the medium in
  // single-threaded immediate mode.
  void PumpInbox();

  // Owner side: true when no frame is waiting in the inbound mailbox. Pumped
  // (pending_) frames do not count — they have delivery events armed on this
  // board's clock, so the kernel's quiescence check already covers them. The
  // fleet's idle-skip path uses this to prove an epoch has no radio work.
  bool InboxEmpty() {
    std::lock_guard<std::mutex> lock(inbox_mutex_);
    return inbox_.empty();
  }

  uint16_t node_addr() const { return static_cast<uint16_t>(node_addr_); }
  SimClock* clock() { return clock_; }

  void set_medium(RadioMedium* medium, uint32_t attach_index) {
    medium_ = medium;
    attach_index_ = attach_index;
  }
  uint32_t attach_index() const { return attach_index_; }

  uint64_t packets_sent() const { return packets_sent_; }
  uint64_t packets_received() const { return packets_received_; }
  uint64_t rx_overruns() const { return rx_overruns_; }

  // Medium side: records a frame the fault layer dropped on this link. May be
  // called from a foreign (sender-board) thread, like Enqueue.
  void CountDroppedFrame();
  // Snapshot of the injected-fault tally for this receiver.
  LinkFaultCounters fault_counters();

  // Delivery logging for determinism tests; off by default (fleet soaks would
  // otherwise accumulate unbounded host memory).
  void EnableDeliveryLog() { log_deliveries_ = true; }
  const std::vector<RadioDeliveryRecord>& delivery_log() const { return delivery_log_; }

 private:
  void StartTx(uint32_t len);
  // Clock-event callback: delivers every pending frame whose arrival cycle has
  // been reached, in (deliver_at, sender, seq) order, then re-arms.
  void DeliverPending();
  void ArmDelivery();

  SimClock* clock_;
  MemoryBus* bus_;
  InterruptLine irq_;
  RadioMedium* medium_ = nullptr;
  uint32_t attach_index_ = 0;

  ReadWriteReg<uint32_t> ctrl_;
  ReadOnlyReg<uint32_t> status_;
  uint32_t tx_addr_ = 0;
  uint32_t rx_addr_ = 0;
  uint32_t rx_max_len_ = 0;
  uint32_t rx_len_ = 0;
  uint32_t node_addr_ = 0;
  uint32_t dst_addr_ = 0xFFFF;
  uint64_t packets_sent_ = 0;
  uint64_t packets_received_ = 0;
  uint64_t rx_overruns_ = 0;

  // Inbound mailbox: written by sender threads under the mutex, drained by the
  // owning thread. fault_counters_ is also written by sender threads (the fault
  // draws happen at transmit time) and so lives under the same mutex. Everything
  // below them is owner-thread-only.
  std::mutex inbox_mutex_;
  std::vector<RadioFrame> inbox_;
  LinkFaultCounters fault_counters_;
  std::vector<RadioFrame> pending_;   // sorted by (deliver_at, sender, seq)
  uint64_t armed_at_ = UINT64_MAX;    // earliest outstanding delivery event

  bool log_deliveries_ = false;
  std::vector<RadioDeliveryRecord> delivery_log_;
};

// The shared channel connecting all radios in a simulated deployment. Each radio
// has its own MCU and clock; a transmission stamps its arrival cycle from the
// *sender's* clock and lands in each receiver's mailbox.
//
// Two drain modes:
//   * kImmediate (default): Transmit pumps the receiver's mailbox synchronously,
//     scheduling the delivery on the receiver's clock right away. Correct only
//     when all boards are stepped from one host thread (unit tests, ad-hoc use).
//   * kDeferred: Transmit only enqueues; the thread that owns each receiving
//     board pumps at epoch boundaries. As long as the epoch length is at most
//     Lookahead() — the minimum possible on-air latency — every frame is pumped
//     before its receiver simulates past the arrival cycle, so delivery traces
//     are bit-identical for any host thread count and any stepping slice.
class RadioMedium {
 public:
  enum class Mode { kImmediate, kDeferred };

  // Minimum on-air latency of any transmission (1 payload byte + 8 bytes of
  // preamble/framing): the conservative lookahead bound for epoch-based stepping.
  static constexpr uint64_t kLookahead = CycleCosts::kRadioCyclesPerByte * 9;
  static constexpr uint64_t Lookahead() { return kLookahead; }

  void Attach(Radio* radio) {
    radio->set_medium(this, static_cast<uint32_t>(radios_.size()));
    radios_.push_back(radio);
  }

  void SetMode(Mode mode) { mode_ = mode; }
  Mode mode() const { return mode_; }
  size_t attached_count() const { return radios_.size(); }

  // Installs (or clears, with a default-constructed config) the per-link fault
  // model. Call before traffic starts; the draws are keyed off each frame's
  // (sender, receiver, seq) identity, so installing the same config reproduces
  // the same faults in any execution.
  void SetLinkFaults(const LinkFaultConfig& faults) { faults_ = faults; }
  const LinkFaultConfig& link_faults() const { return faults_; }

  // Broadcasts from `sender` to every other attached radio.
  void Transmit(Radio* sender, uint16_t src, uint16_t dst, std::vector<uint8_t> payload);

 private:
  Mode mode_ = Mode::kImmediate;
  LinkFaultConfig faults_;
  std::vector<Radio*> radios_;
};

}  // namespace tock

#endif  // TOCK_HW_RADIO_H_
