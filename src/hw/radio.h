// ERA: 1
// Packet radio and shared medium — the substrate for the Signpost-style multi-node
// deployments Tock was designed for (§2). Transmissions broadcast to every other
// radio attached to the same RadioMedium, arriving after an on-air latency
// proportional to packet size.
#ifndef TOCK_HW_RADIO_H_
#define TOCK_HW_RADIO_H_

#include <cstdint>
#include <vector>

#include "hw/costs.h"
#include "hw/interrupt.h"
#include "hw/memory_bus.h"
#include "hw/sim_clock.h"
#include "util/registers.h"

namespace tock {

class RadioMedium;

struct RadioRegs {
  static constexpr uint32_t kCtrl = 0x00;
  static constexpr uint32_t kStatus = 0x04;
  static constexpr uint32_t kIntClr = 0x08;
  static constexpr uint32_t kTxAddr = 0x0C;
  static constexpr uint32_t kTxLen = 0x10;  // write starts TX
  static constexpr uint32_t kRxAddr = 0x14;
  static constexpr uint32_t kRxMaxLen = 0x18;
  static constexpr uint32_t kRxLen = 0x1C;     // RO: length of last received packet
  static constexpr uint32_t kNodeAddr = 0x20;  // this node's address (16-bit)
  static constexpr uint32_t kDstAddr = 0x24;   // destination (0xFFFF broadcast)

  struct Ctrl {
    static constexpr Field<uint32_t> kEnable{0, 1};
    static constexpr Field<uint32_t> kRxEnable{1, 1};
  };
  struct Status {
    static constexpr Field<uint32_t> kTxDone{0, 1};
    static constexpr Field<uint32_t> kRxDone{1, 1};
    static constexpr Field<uint32_t> kTxBusy{2, 1};
  };
};

class Radio : public MmioDevice {
 public:
  static constexpr uint32_t kMaxPacket = 256;

  Radio(SimClock* clock, MemoryBus* bus, InterruptLine irq)
      : clock_(clock), bus_(bus), irq_(irq) {}

  uint32_t MmioRead(uint32_t offset) override;
  void MmioWrite(uint32_t offset, uint32_t value) override;

  // Medium side: delivers a packet addressed to this node (or broadcast).
  void Deliver(uint16_t src, uint16_t dst, const std::vector<uint8_t>& payload);

  uint16_t node_addr() const { return static_cast<uint16_t>(node_addr_); }
  SimClock* clock() { return clock_; }

  void set_medium(RadioMedium* medium) { medium_ = medium; }

  uint64_t packets_sent() const { return packets_sent_; }
  uint64_t packets_received() const { return packets_received_; }

 private:
  void StartTx(uint32_t len);

  SimClock* clock_;
  MemoryBus* bus_;
  InterruptLine irq_;
  RadioMedium* medium_ = nullptr;

  ReadWriteReg<uint32_t> ctrl_;
  ReadOnlyReg<uint32_t> status_;
  uint32_t tx_addr_ = 0;
  uint32_t rx_addr_ = 0;
  uint32_t rx_max_len_ = 0;
  uint32_t rx_len_ = 0;
  uint32_t node_addr_ = 0;
  uint32_t dst_addr_ = 0xFFFF;
  uint64_t packets_sent_ = 0;
  uint64_t packets_received_ = 0;
};

// The shared channel connecting all radios in a simulated deployment. Each radio has
// its own MCU and clock; delivery is scheduled on the *receiver's* clock, so
// multi-board simulations stay deterministic as long as boards are stepped in
// bounded slices (see board/world.h).
class RadioMedium {
 public:
  void Attach(Radio* radio) {
    radios_.push_back(radio);
    radio->set_medium(this);
  }

  // Broadcasts from `sender` to every other attached radio.
  void Transmit(Radio* sender, uint16_t src, uint16_t dst, std::vector<uint8_t> payload) {
    for (Radio* r : radios_) {
      if (r == sender) {
        continue;
      }
      uint64_t latency = CycleCosts::kRadioCyclesPerByte * (payload.size() + 8);
      r->clock()->ScheduleAfter(latency,
                                [r, src, dst, payload] { r->Deliver(src, dst, payload); });
    }
  }

 private:
  std::vector<Radio*> radios_;
};

}  // namespace tock

#endif  // TOCK_HW_RADIO_H_
