// ERA: 1
// Cycle-cost model for the simulated MCU.
//
// The paper's performance claims (capsule calls ≈ free, process boundary crossings
// costly, async sequences = k syscalls, MPU reprogramming on context switch) are all
// statements about *counts of architectural events*. The simulator charges each event
// a fixed, documented cycle cost loosely calibrated to a Cortex-M4 so benchmark shapes
// (ratios, crossovers) are meaningful even though absolute numbers are synthetic.
#ifndef TOCK_HW_COSTS_H_
#define TOCK_HW_COSTS_H_

#include <cstdint>

namespace tock {

struct CycleCosts {
  // One VM (userspace) instruction.
  static constexpr uint64_t kVmInstruction = 1;
  // Privileged MMIO register read or write over the bus.
  static constexpr uint64_t kMmioAccess = 2;
  // Syscall trap: userspace -> kernel mode (save frame, decode).
  static constexpr uint64_t kSyscallEntry = 45;
  // Syscall return: kernel -> userspace mode (restore frame).
  static constexpr uint64_t kSyscallExit = 40;
  // Scheduling a different process: kernel bookkeeping beyond the trap itself.
  static constexpr uint64_t kContextSwitch = 60;
  // Reconfiguring one MPU region.
  static constexpr uint64_t kMpuRegionConfig = 12;
  // Taking an interrupt (vectoring + stacking).
  static constexpr uint64_t kInterruptEntry = 25;
  // Invoking a userspace upcall (push arguments, enter at handler).
  static constexpr uint64_t kUpcallInvoke = 30;
  // Transition into / out of the deep-sleep state (WFI wakeup latency).
  static constexpr uint64_t kSleepTransition = 10;

  // UART byte time at the simulated baud rate (16 MHz core / 115200 baud ≈ 1389,
  // rounded for readability).
  static constexpr uint64_t kUartCyclesPerByte = 1400;
  // SPI byte time (1 MHz SPI clock on a 16 MHz core).
  static constexpr uint64_t kSpiCyclesPerByte = 128;
  // Hardware AES: cycles per 16-byte block.
  static constexpr uint64_t kAesCyclesPerBlock = 56;
  // Hardware SHA-256: cycles per 64-byte block.
  static constexpr uint64_t kShaCyclesPerBlock = 96;
  // Flash page program / erase latency.
  static constexpr uint64_t kFlashWriteCyclesPerPage = 20000;
  // RNG entropy generation per 32-bit word.
  static constexpr uint64_t kRngCyclesPerWord = 200;
  // Radio: per-byte on-air time (250 kbps at 16 MHz core = 512 cycles/byte).
  static constexpr uint64_t kRadioCyclesPerByte = 512;
  // Temperature sensor conversion time.
  static constexpr uint64_t kTempConversionCycles = 5000;
};

// Power model: relative power draw per cycle in the two CPU states. Only the ratio
// matters for the duty-cycle experiments (E4); units are nanowatt-cycles at a
// nominal 16 MHz, i.e. energy = cycles * power / 16e6 nJ-ish. We report raw
// cycle-weighted units to stay unit-honest.
struct PowerModel {
  static constexpr double kActivePowerPerCycle = 1.0;   // normalized active draw
  static constexpr double kSleepPowerPerCycle = 0.001;  // deep sleep ~1000x lower
};

}  // namespace tock

#endif  // TOCK_HW_COSTS_H_
