// ERA: 1
// SPI controller with DMA transfers against host-modelled slave devices. Chip-select
// polarity is part of the controller's configuration; which polarities a given
// controller instance *can* generate is hardware-fixed and surfaced to the
// compile-time composition checks of §4.1 / Figure 3 (see board/composition.h).
#ifndef TOCK_HW_SPI_H_
#define TOCK_HW_SPI_H_

#include <cstdint>
#include <vector>

#include "hw/costs.h"
#include "hw/interrupt.h"
#include "hw/memory_bus.h"
#include "hw/sim_clock.h"
#include "util/registers.h"

namespace tock {

// Host-side model of an external SPI device (sensor, flash chip, ...).
class SpiSlaveModel {
 public:
  virtual ~SpiSlaveModel() = default;
  // Full-duplex byte exchange: receives the controller's byte, returns the slave's.
  virtual uint8_t Exchange(uint8_t mosi) = 0;
  // Chip-select edge notifications (level is the *logical* selected state).
  virtual void CsAsserted() {}
  virtual void CsDeasserted() {}
};

enum class CsPolarity : uint32_t { kActiveLow = 0, kActiveHigh = 1 };

struct SpiRegs {
  static constexpr uint32_t kCtrl = 0x00;
  static constexpr uint32_t kStatus = 0x04;
  static constexpr uint32_t kDmaTxAddr = 0x08;
  static constexpr uint32_t kDmaRxAddr = 0x0C;
  static constexpr uint32_t kLen = 0x10;  // write starts the transfer
  static constexpr uint32_t kCsSelect = 0x14;
  static constexpr uint32_t kIntClr = 0x18;

  struct Ctrl {
    static constexpr Field<uint32_t> kEnable{0, 1};
    static constexpr Field<uint32_t> kCsPolarity{1, 1};  // CsPolarity value
  };
  struct Status {
    static constexpr Field<uint32_t> kBusy{0, 1};
    static constexpr Field<uint32_t> kDone{1, 1};
  };
};

class Spi : public MmioDevice {
 public:
  static constexpr unsigned kMaxSlaves = 4;

  // `supported_polarity_mask`: bit 0 = can generate active-low CS, bit 1 =
  // active-high (mirrors real controllers where polarity support varies, §4.1).
  Spi(SimClock* clock, MemoryBus* bus, InterruptLine irq, uint32_t supported_polarity_mask)
      : clock_(clock), bus_(bus), irq_(irq), supported_polarity_mask_(supported_polarity_mask) {}

  uint32_t MmioRead(uint32_t offset) override;
  void MmioWrite(uint32_t offset, uint32_t value) override;

  // Host-side: attaches a slave model at a chip-select index.
  void AttachSlave(unsigned cs_index, SpiSlaveModel* slave) {
    if (cs_index < kMaxSlaves) {
      slaves_[cs_index] = slave;
    }
  }

  // True if a configuration write requested an unsupported CS polarity — the runtime
  // misbehaviour that the compile-time checks of Fig 3 exist to prevent.
  bool polarity_config_error() const { return polarity_config_error_; }

 private:
  void StartTransfer(uint32_t len);

  SimClock* clock_;
  MemoryBus* bus_;
  InterruptLine irq_;
  uint32_t supported_polarity_mask_;

  ReadWriteReg<uint32_t> ctrl_;
  ReadOnlyReg<uint32_t> status_;
  ReadWriteReg<uint32_t> dma_tx_addr_;
  ReadWriteReg<uint32_t> dma_rx_addr_;
  ReadWriteReg<uint32_t> cs_select_;

  SpiSlaveModel* slaves_[kMaxSlaves] = {};
  bool polarity_config_error_ = false;
};

}  // namespace tock

#endif  // TOCK_HW_SPI_H_
