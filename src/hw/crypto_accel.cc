// ERA: 3
#include "hw/crypto_accel.h"

#include <cstring>
#include <vector>

#include "crypto/aes128.h"
#include "crypto/hmac_sha256.h"
#include "crypto/sha256.h"

namespace tock {
namespace {

// Register words are little-endian views of the byte-string key/counter material.
void WordsToBytes(const uint32_t* words, unsigned n_words, uint8_t* out) {
  for (unsigned i = 0; i < n_words; ++i) {
    std::memcpy(out + 4 * i, &words[i], 4);
  }
}

void BytesToWords(const uint8_t* bytes, unsigned n_words, uint32_t* out) {
  for (unsigned i = 0; i < n_words; ++i) {
    std::memcpy(&out[i], bytes + 4 * i, 4);
  }
}

}  // namespace

uint32_t AesAccel::MmioRead(uint32_t offset) {
  switch (offset) {
    case AesRegs::kCtrl:
      return ctrl_.Get();
    case AesRegs::kStatus:
      return status_.Get();
    case AesRegs::kSrc:
      return src_;
    case AesRegs::kDst:
      return dst_;
    case AesRegs::kLen:
      return len_;
    default:
      if (offset >= AesRegs::kCtr0 && offset < AesRegs::kCtr0 + 16) {
        return ctr_[(offset - AesRegs::kCtr0) / 4];
      }
      return 0;  // key registers are write-only
  }
}

void AesAccel::MmioWrite(uint32_t offset, uint32_t value) {
  if (offset >= AesRegs::kKey0 && offset < AesRegs::kKey0 + 16) {
    key_[(offset - AesRegs::kKey0) / 4] = value;
    return;
  }
  if (offset >= AesRegs::kCtr0 && offset < AesRegs::kCtr0 + 16) {
    ctr_[(offset - AesRegs::kCtr0) / 4] = value;
    return;
  }
  switch (offset) {
    case AesRegs::kCtrl:
      ctrl_.Set(value);
      if (ctrl_.IsSet(AesRegs::Ctrl::kStart) && !status_.IsSet(AesRegs::Status::kBusy)) {
        Start();
      }
      return;
    case AesRegs::kIntClr:
      status_.HwModify(FieldValue<uint32_t>{value, 0});
      return;
    case AesRegs::kSrc:
      src_ = value;
      return;
    case AesRegs::kDst:
      dst_ = value;
      return;
    case AesRegs::kLen:
      len_ = value;
      return;
    default:
      return;
  }
}

void AesAccel::Start() {
  bool ctr_mode = ctrl_.IsSet(AesRegs::Ctrl::kMode);
  bool decrypt = ctrl_.IsSet(AesRegs::Ctrl::kDecrypt);
  uint32_t len = len_;
  if (len == 0 || (!ctr_mode && len % Aes128::kBlockSize != 0)) {
    status_.HwModify(AesRegs::Status::kError.Set() + AesRegs::Status::kDone.Set());
    irq_.Raise();
    return;
  }

  std::vector<uint8_t> data(len);
  if (!bus_->ReadBlock(src_, data.data(), len)) {
    status_.HwModify(AesRegs::Status::kError.Set() + AesRegs::Status::kDone.Set());
    irq_.Raise();
    return;
  }

  uint8_t key_bytes[Aes128::kKeySize];
  WordsToBytes(key_, 4, key_bytes);
  Aes128 aes(key_bytes);

  if (ctr_mode) {
    uint8_t counter[Aes128::kBlockSize];
    WordsToBytes(ctr_, 4, counter);
    aes.CtrCrypt(counter, data.data(), len);
    BytesToWords(counter, 4, ctr_);  // hardware exposes the advanced counter
  } else {
    for (uint32_t off = 0; off < len; off += Aes128::kBlockSize) {
      if (decrypt) {
        aes.DecryptBlock(&data[off]);
      } else {
        aes.EncryptBlock(&data[off]);
      }
    }
  }

  status_.HwModify(AesRegs::Status::kBusy.Set());
  uint64_t blocks = (len + Aes128::kBlockSize - 1) / Aes128::kBlockSize;
  clock_->ScheduleAfter(blocks * CycleCosts::kAesCyclesPerBlock,
                        [this, data = std::move(data)] {
                          bus_->WriteBlock(dst_, data.data(), static_cast<uint32_t>(data.size()));
                          status_.HwModify(AesRegs::Status::kBusy.Clear());
                          status_.HwModify(AesRegs::Status::kDone.Set());
                          irq_.Raise();
                        });
}

uint32_t ShaAccel::MmioRead(uint32_t offset) {
  switch (offset) {
    case ShaRegs::kCtrl:
      return ctrl_.Get();
    case ShaRegs::kStatus:
      return status_.Get();
    case ShaRegs::kSrc:
      return src_;
    case ShaRegs::kLen:
      return len_;
    default:
      if (offset >= ShaRegs::kDigest0 && offset < ShaRegs::kDigest0 + 32) {
        return digest_[(offset - ShaRegs::kDigest0) / 4];
      }
      return 0;  // key registers are write-only
  }
}

void ShaAccel::MmioWrite(uint32_t offset, uint32_t value) {
  if (offset >= ShaRegs::kKey0 && offset < ShaRegs::kKey0 + 32) {
    key_[(offset - ShaRegs::kKey0) / 4] = value;
    return;
  }
  switch (offset) {
    case ShaRegs::kCtrl:
      ctrl_.Set(value);
      if (ctrl_.IsSet(ShaRegs::Ctrl::kStart) && !status_.IsSet(ShaRegs::Status::kBusy)) {
        Start();
      }
      return;
    case ShaRegs::kIntClr:
      status_.HwModify(FieldValue<uint32_t>{value, 0});
      return;
    case ShaRegs::kSrc:
      src_ = value;
      return;
    case ShaRegs::kLen:
      len_ = value;
      return;
    default:
      return;
  }
}

void ShaAccel::Start() {
  std::vector<uint8_t> data(len_);
  if (len_ > 0 && !bus_->ReadBlock(src_, data.data(), len_)) {
    status_.HwModify(ShaRegs::Status::kError.Set() + ShaRegs::Status::kDone.Set());
    irq_.Raise();
    return;
  }

  uint8_t result[Sha256::kDigestSize];
  if (ctrl_.IsSet(ShaRegs::Ctrl::kMode)) {
    uint8_t key_bytes[32];
    WordsToBytes(key_, 8, key_bytes);
    HmacSha256 mac(key_bytes, sizeof(key_bytes));
    mac.Update(data.data(), data.size());
    mac.Finalize(result);
  } else {
    auto digest = Sha256::Digest(data.data(), data.size());
    std::memcpy(result, digest.data(), digest.size());
  }

  status_.HwModify(ShaRegs::Status::kBusy.Set());
  uint64_t blocks = (len_ + Sha256::kBlockSize - 1) / Sha256::kBlockSize + 1;
  uint32_t result_words[8];
  BytesToWords(result, 8, result_words);
  clock_->ScheduleAfter(blocks * CycleCosts::kShaCyclesPerBlock, [this, result_words] {
    std::memcpy(digest_, result_words, sizeof(digest_));
    status_.HwModify(ShaRegs::Status::kBusy.Clear());
    status_.HwModify(ShaRegs::Status::kDone.Set());
    irq_.Raise();
  });
}

}  // namespace tock
