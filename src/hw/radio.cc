// ERA: 1
#include "hw/radio.h"

#include <algorithm>
#include <tuple>

namespace tock {

uint32_t Radio::MmioRead(uint32_t offset) {
  switch (offset) {
    case RadioRegs::kCtrl:
      return ctrl_.Get();
    case RadioRegs::kStatus:
      return status_.Get();
    case RadioRegs::kRxLen:
      return rx_len_;
    case RadioRegs::kNodeAddr:
      return node_addr_;
    case RadioRegs::kDstAddr:
      return dst_addr_;
    default:
      return 0;
  }
}

void Radio::MmioWrite(uint32_t offset, uint32_t value) {
  switch (offset) {
    case RadioRegs::kCtrl:
      ctrl_.Set(value);
      return;
    case RadioRegs::kIntClr:
      status_.HwModify(FieldValue<uint32_t>{value, 0});
      return;
    case RadioRegs::kTxAddr:
      tx_addr_ = value;
      return;
    case RadioRegs::kTxLen:
      StartTx(value);
      return;
    case RadioRegs::kRxAddr:
      rx_addr_ = value;
      return;
    case RadioRegs::kRxMaxLen:
      rx_max_len_ = value;
      return;
    case RadioRegs::kNodeAddr:
      node_addr_ = value & 0xFFFF;
      return;
    case RadioRegs::kDstAddr:
      dst_addr_ = value & 0xFFFF;
      return;
    default:
      return;
  }
}

void Radio::StartTx(uint32_t len) {
  if (!ctrl_.IsSet(RadioRegs::Ctrl::kEnable) || medium_ == nullptr || len == 0 ||
      len > kMaxPacket || status_.IsSet(RadioRegs::Status::kTxBusy)) {
    return;
  }
  std::vector<uint8_t> payload(len);
  if (!bus_->ReadBlock(tx_addr_, payload.data(), len)) {
    return;
  }
  status_.HwModify(RadioRegs::Status::kTxBusy.Set());
  ++packets_sent_;

  medium_->Transmit(this, static_cast<uint16_t>(node_addr_), static_cast<uint16_t>(dst_addr_),
                    std::move(payload));

  clock_->ScheduleAfter(CycleCosts::kRadioCyclesPerByte * (len + 8), [this] {
    status_.HwModify(RadioRegs::Status::kTxBusy.Clear());
    status_.HwModify(RadioRegs::Status::kTxDone.Set());
    irq_.Raise();
  });
}

void Radio::Enqueue(RadioFrame frame) {
  std::lock_guard<std::mutex> lock(inbox_mutex_);
  // The duplicate copy counts once as a duplication; corruption/reordering of
  // the original frame are tallied on the original only, so each injected fault
  // event increments exactly one counter cell.
  if ((frame.fault_bits & kFaultDuplicated) != 0) {
    ++fault_counters_.duplicated;
  } else {
    if ((frame.fault_bits & kFaultCorrupted) != 0) {
      ++fault_counters_.corrupted;
    }
    if ((frame.fault_bits & kFaultReordered) != 0) {
      ++fault_counters_.reordered;
    }
  }
  inbox_.push_back(std::move(frame));
}

void Radio::CountDroppedFrame() {
  std::lock_guard<std::mutex> lock(inbox_mutex_);
  ++fault_counters_.dropped;
}

LinkFaultCounters Radio::fault_counters() {
  std::lock_guard<std::mutex> lock(inbox_mutex_);
  return fault_counters_;
}

namespace {
bool FrameOrder(const RadioFrame& a, const RadioFrame& b) {
  // fault_bits breaks the tie between a frame and its duplicate when the
  // configured duplicate delay collapses to zero — the order must never fall to
  // std::sort's whim.
  return std::tie(a.deliver_at, a.sender, a.seq, a.fault_bits) <
         std::tie(b.deliver_at, b.sender, b.seq, b.fault_bits);
}
}  // namespace

void Radio::PumpInbox() {
  {
    std::lock_guard<std::mutex> lock(inbox_mutex_);
    if (inbox_.empty()) {
      return;
    }
    pending_.insert(pending_.end(), std::make_move_iterator(inbox_.begin()),
                    std::make_move_iterator(inbox_.end()));
    inbox_.clear();
  }
  // Re-establish the total (deliver_at, sender, seq) order: frames from several
  // sender threads land in the mailbox in host-race order, but the sort key is a
  // pure function of the frames, so the delivery order is not.
  std::sort(pending_.begin(), pending_.end(), FrameOrder);
  ArmDelivery();
}

void Radio::ArmDelivery() {
  if (pending_.empty()) {
    return;
  }
  uint64_t at = pending_.front().deliver_at;
  if (at >= armed_at_) {
    return;  // an event at an earlier-or-equal cycle will sweep this frame too
  }
  armed_at_ = at;
  clock_->ScheduleAt(at, [this] { DeliverPending(); });
}

void Radio::DeliverPending() {
  armed_at_ = UINT64_MAX;
  uint64_t now = clock_->Now();
  size_t consumed = 0;
  while (consumed < pending_.size() && pending_[consumed].deliver_at <= now) {
    const RadioFrame& frame = pending_[consumed];
    Deliver(frame.src, frame.dst, frame.payload, frame.fault_bits);
    ++consumed;
  }
  pending_.erase(pending_.begin(), pending_.begin() + static_cast<long>(consumed));
  ArmDelivery();
}

void Radio::Deliver(uint16_t src, uint16_t dst, const std::vector<uint8_t>& payload,
                    uint8_t fault_bits) {
  if (!ctrl_.IsSet(RadioRegs::Ctrl::kEnable) || !ctrl_.IsSet(RadioRegs::Ctrl::kRxEnable)) {
    return;  // radio off: packet lost, as on air
  }
  if (dst != 0xFFFF && dst != node_addr()) {
    return;  // not addressed to us
  }
  if (rx_addr_ == 0 || rx_max_len_ == 0) {
    return;  // no receive buffer armed: packet lost
  }
  uint32_t len = static_cast<uint32_t>(payload.size());
  if (len > rx_max_len_) {
    len = rx_max_len_;  // truncate oversized packets
  }
  if (status_.IsSet(RadioRegs::Status::kRxDone)) {
    // The previous frame is still unconsumed: real receivers have one RX FIFO
    // slot, so the new packet is dropped on the floor — it must not overwrite the
    // buffer the driver is about to read.
    ++rx_overruns_;
    status_.HwModify(RadioRegs::Status::kRxOverrun.Set());
    if (log_deliveries_) {
      uint32_t sum = 0;
      for (uint32_t i = 0; i < len; ++i) {
        sum = sum * 31 + payload[i];
      }
      delivery_log_.push_back(
          RadioDeliveryRecord{clock_->Now(), src, dst, len, sum, fault_bits, /*overrun=*/true});
    }
    return;
  }
  bus_->WriteBlock(rx_addr_, payload.data(), len);
  rx_len_ = len;
  ++packets_received_;
  status_.HwModify(RadioRegs::Status::kRxDone.Set());
  if (log_deliveries_) {
    uint32_t sum = 0;
    for (uint32_t i = 0; i < len; ++i) {
      sum = sum * 31 + payload[i];
    }
    delivery_log_.push_back(
        RadioDeliveryRecord{clock_->Now(), src, dst, len, sum, fault_bits, /*overrun=*/false});
  }
  irq_.Raise();
}

namespace {

// SplitMix64 finalizer: the per-link fault source. Chained over (seed, sender,
// receiver, seq, draw index) it gives each fault decision an independent,
// uniformly distributed 64-bit draw that is a pure function of frame identity —
// no shared RNG state, so sender threads never race and replays are exact.
uint64_t MixFault(uint64_t x) {
  x += 0x9E3779B97F4A7C15ull;
  x = (x ^ (x >> 30)) * 0xBF58476D1CE4E5B9ull;
  x = (x ^ (x >> 27)) * 0x94D049BB133111EBull;
  return x ^ (x >> 31);
}

uint64_t FaultDraw(const LinkFaultConfig& faults, uint32_t sender, uint32_t receiver,
                   uint64_t seq, uint32_t draw) {
  uint64_t h = MixFault(faults.seed ^ 0x4F54414C494E4Bull);  // "OTALINK"
  h = MixFault(h ^ sender);
  h = MixFault(h ^ receiver);
  h = MixFault(h ^ seq);
  return MixFault(h ^ draw);
}

bool FaultHits(uint64_t draw, uint32_t permille) { return draw % 1000 < permille; }

}  // namespace

void RadioMedium::Transmit(Radio* sender, uint16_t src, uint16_t dst,
                           std::vector<uint8_t> payload) {
  // Arrival time lives on the shared timeline: the sender's clock at transmit
  // time plus the on-air latency. Using the receiver's clock here (as the old
  // implementation did) made arrival depend on which board happened to have
  // stepped further — a stepping-order hazard single-threaded and a data race
  // sharded.
  uint64_t latency = CycleCosts::kRadioCyclesPerByte * (payload.size() + 8);
  uint64_t deliver_at = sender->clock()->Now() + latency;
  uint64_t seq = sender->packets_sent();
  const uint32_t sender_idx = sender->attach_index();
  const bool faulty = faults_.Enabled();
  for (Radio* r : radios_) {
    if (r == sender) {
      continue;
    }
    RadioFrame frame{deliver_at, sender_idx, seq, src, dst, /*fault_bits=*/0, payload};
    bool duplicate = false;
    if (faulty) {
      const uint32_t recv_idx = r->attach_index();
      if (FaultHits(FaultDraw(faults_, sender_idx, recv_idx, seq, 0), faults_.drop_permille)) {
        r->CountDroppedFrame();
        continue;
      }
      uint64_t corrupt_draw = FaultDraw(faults_, sender_idx, recv_idx, seq, 1);
      if (!payload.empty() && FaultHits(corrupt_draw, faults_.corrupt_permille)) {
        // Flip one seeded bit in this receiver's private copy of the payload.
        uint64_t bit = (corrupt_draw / 1000) % (frame.payload.size() * 8);
        frame.payload[bit / 8] ^= static_cast<uint8_t>(1u << (bit % 8));
        frame.fault_bits |= kFaultCorrupted;
      }
      if (FaultHits(FaultDraw(faults_, sender_idx, recv_idx, seq, 2), faults_.reorder_permille)) {
        // Push the arrival back far enough to land behind later transmissions.
        // Delay only ever increases, so the lookahead bound stays valid.
        frame.deliver_at += faults_.reorder_delay;
        frame.fault_bits |= kFaultReordered;
      }
      duplicate =
          FaultHits(FaultDraw(faults_, sender_idx, recv_idx, seq, 3), faults_.duplicate_permille);
    }
    if (duplicate) {
      RadioFrame copy = frame;
      copy.deliver_at += faults_.duplicate_delay;
      copy.fault_bits |= kFaultDuplicated;
      r->Enqueue(std::move(copy));
    }
    r->Enqueue(std::move(frame));
    if (mode_ == Mode::kImmediate) {
      r->PumpInbox();
    }
  }
}

}  // namespace tock
