// ERA: 1
#include "hw/radio.h"

#include <algorithm>
#include <tuple>

namespace tock {

uint32_t Radio::MmioRead(uint32_t offset) {
  switch (offset) {
    case RadioRegs::kCtrl:
      return ctrl_.Get();
    case RadioRegs::kStatus:
      return status_.Get();
    case RadioRegs::kRxLen:
      return rx_len_;
    case RadioRegs::kNodeAddr:
      return node_addr_;
    case RadioRegs::kDstAddr:
      return dst_addr_;
    default:
      return 0;
  }
}

void Radio::MmioWrite(uint32_t offset, uint32_t value) {
  switch (offset) {
    case RadioRegs::kCtrl:
      ctrl_.Set(value);
      return;
    case RadioRegs::kIntClr:
      status_.HwModify(FieldValue<uint32_t>{value, 0});
      return;
    case RadioRegs::kTxAddr:
      tx_addr_ = value;
      return;
    case RadioRegs::kTxLen:
      StartTx(value);
      return;
    case RadioRegs::kRxAddr:
      rx_addr_ = value;
      return;
    case RadioRegs::kRxMaxLen:
      rx_max_len_ = value;
      return;
    case RadioRegs::kNodeAddr:
      node_addr_ = value & 0xFFFF;
      return;
    case RadioRegs::kDstAddr:
      dst_addr_ = value & 0xFFFF;
      return;
    default:
      return;
  }
}

void Radio::StartTx(uint32_t len) {
  if (!ctrl_.IsSet(RadioRegs::Ctrl::kEnable) || medium_ == nullptr || len == 0 ||
      len > kMaxPacket || status_.IsSet(RadioRegs::Status::kTxBusy)) {
    return;
  }
  std::vector<uint8_t> payload(len);
  if (!bus_->ReadBlock(tx_addr_, payload.data(), len)) {
    return;
  }
  status_.HwModify(RadioRegs::Status::kTxBusy.Set());
  ++packets_sent_;

  medium_->Transmit(this, static_cast<uint16_t>(node_addr_), static_cast<uint16_t>(dst_addr_),
                    std::move(payload));

  clock_->ScheduleAfter(CycleCosts::kRadioCyclesPerByte * (len + 8), [this] {
    status_.HwModify(RadioRegs::Status::kTxBusy.Clear());
    status_.HwModify(RadioRegs::Status::kTxDone.Set());
    irq_.Raise();
  });
}

void Radio::Enqueue(RadioFrame frame) {
  std::lock_guard<std::mutex> lock(inbox_mutex_);
  inbox_.push_back(std::move(frame));
}

namespace {
bool FrameOrder(const RadioFrame& a, const RadioFrame& b) {
  return std::tie(a.deliver_at, a.sender, a.seq) < std::tie(b.deliver_at, b.sender, b.seq);
}
}  // namespace

void Radio::PumpInbox() {
  {
    std::lock_guard<std::mutex> lock(inbox_mutex_);
    if (inbox_.empty()) {
      return;
    }
    pending_.insert(pending_.end(), std::make_move_iterator(inbox_.begin()),
                    std::make_move_iterator(inbox_.end()));
    inbox_.clear();
  }
  // Re-establish the total (deliver_at, sender, seq) order: frames from several
  // sender threads land in the mailbox in host-race order, but the sort key is a
  // pure function of the frames, so the delivery order is not.
  std::sort(pending_.begin(), pending_.end(), FrameOrder);
  ArmDelivery();
}

void Radio::ArmDelivery() {
  if (pending_.empty()) {
    return;
  }
  uint64_t at = pending_.front().deliver_at;
  if (at >= armed_at_) {
    return;  // an event at an earlier-or-equal cycle will sweep this frame too
  }
  armed_at_ = at;
  clock_->ScheduleAt(at, [this] { DeliverPending(); });
}

void Radio::DeliverPending() {
  armed_at_ = UINT64_MAX;
  uint64_t now = clock_->Now();
  size_t consumed = 0;
  while (consumed < pending_.size() && pending_[consumed].deliver_at <= now) {
    const RadioFrame& frame = pending_[consumed];
    Deliver(frame.src, frame.dst, frame.payload);
    ++consumed;
  }
  pending_.erase(pending_.begin(), pending_.begin() + static_cast<long>(consumed));
  ArmDelivery();
}

void Radio::Deliver(uint16_t src, uint16_t dst, const std::vector<uint8_t>& payload) {
  if (!ctrl_.IsSet(RadioRegs::Ctrl::kEnable) || !ctrl_.IsSet(RadioRegs::Ctrl::kRxEnable)) {
    return;  // radio off: packet lost, as on air
  }
  if (dst != 0xFFFF && dst != node_addr()) {
    return;  // not addressed to us
  }
  if (rx_addr_ == 0 || rx_max_len_ == 0) {
    return;  // no receive buffer armed: packet lost
  }
  uint32_t len = static_cast<uint32_t>(payload.size());
  if (len > rx_max_len_) {
    len = rx_max_len_;  // truncate oversized packets
  }
  if (status_.IsSet(RadioRegs::Status::kRxDone)) {
    // The previous frame is still unconsumed: real receivers have one RX FIFO
    // slot, so the new packet is dropped on the floor — it must not overwrite the
    // buffer the driver is about to read.
    ++rx_overruns_;
    status_.HwModify(RadioRegs::Status::kRxOverrun.Set());
    if (log_deliveries_) {
      uint32_t sum = 0;
      for (uint32_t i = 0; i < len; ++i) {
        sum = sum * 31 + payload[i];
      }
      delivery_log_.push_back(
          RadioDeliveryRecord{clock_->Now(), src, dst, len, sum, /*overrun=*/true});
    }
    return;
  }
  bus_->WriteBlock(rx_addr_, payload.data(), len);
  rx_len_ = len;
  ++packets_received_;
  status_.HwModify(RadioRegs::Status::kRxDone.Set());
  if (log_deliveries_) {
    uint32_t sum = 0;
    for (uint32_t i = 0; i < len; ++i) {
      sum = sum * 31 + payload[i];
    }
    delivery_log_.push_back(
        RadioDeliveryRecord{clock_->Now(), src, dst, len, sum, /*overrun=*/false});
  }
  irq_.Raise();
}

void RadioMedium::Transmit(Radio* sender, uint16_t src, uint16_t dst,
                           std::vector<uint8_t> payload) {
  // Arrival time lives on the shared timeline: the sender's clock at transmit
  // time plus the on-air latency. Using the receiver's clock here (as the old
  // implementation did) made arrival depend on which board happened to have
  // stepped further — a stepping-order hazard single-threaded and a data race
  // sharded.
  uint64_t latency = CycleCosts::kRadioCyclesPerByte * (payload.size() + 8);
  uint64_t deliver_at = sender->clock()->Now() + latency;
  uint64_t seq = sender->packets_sent();
  for (Radio* r : radios_) {
    if (r == sender) {
      continue;
    }
    r->Enqueue(RadioFrame{deliver_at, sender->attach_index(), seq, src, dst, payload});
    if (mode_ == Mode::kImmediate) {
      r->PumpInbox();
    }
  }
}

}  // namespace tock
