// ERA: 1
#include "hw/radio.h"

namespace tock {

uint32_t Radio::MmioRead(uint32_t offset) {
  switch (offset) {
    case RadioRegs::kCtrl:
      return ctrl_.Get();
    case RadioRegs::kStatus:
      return status_.Get();
    case RadioRegs::kRxLen:
      return rx_len_;
    case RadioRegs::kNodeAddr:
      return node_addr_;
    case RadioRegs::kDstAddr:
      return dst_addr_;
    default:
      return 0;
  }
}

void Radio::MmioWrite(uint32_t offset, uint32_t value) {
  switch (offset) {
    case RadioRegs::kCtrl:
      ctrl_.Set(value);
      return;
    case RadioRegs::kIntClr:
      status_.HwModify(FieldValue<uint32_t>{value, 0});
      return;
    case RadioRegs::kTxAddr:
      tx_addr_ = value;
      return;
    case RadioRegs::kTxLen:
      StartTx(value);
      return;
    case RadioRegs::kRxAddr:
      rx_addr_ = value;
      return;
    case RadioRegs::kRxMaxLen:
      rx_max_len_ = value;
      return;
    case RadioRegs::kNodeAddr:
      node_addr_ = value & 0xFFFF;
      return;
    case RadioRegs::kDstAddr:
      dst_addr_ = value & 0xFFFF;
      return;
    default:
      return;
  }
}

void Radio::StartTx(uint32_t len) {
  if (!ctrl_.IsSet(RadioRegs::Ctrl::kEnable) || medium_ == nullptr || len == 0 ||
      len > kMaxPacket || status_.IsSet(RadioRegs::Status::kTxBusy)) {
    return;
  }
  std::vector<uint8_t> payload(len);
  if (!bus_->ReadBlock(tx_addr_, payload.data(), len)) {
    return;
  }
  status_.HwModify(RadioRegs::Status::kTxBusy.Set());
  ++packets_sent_;

  medium_->Transmit(this, static_cast<uint16_t>(node_addr_), static_cast<uint16_t>(dst_addr_),
                    std::move(payload));

  clock_->ScheduleAfter(CycleCosts::kRadioCyclesPerByte * (len + 8), [this] {
    status_.HwModify(RadioRegs::Status::kTxBusy.Clear());
    status_.HwModify(RadioRegs::Status::kTxDone.Set());
    irq_.Raise();
  });
}

void Radio::Deliver(uint16_t src, uint16_t dst, const std::vector<uint8_t>& payload) {
  (void)src;
  if (!ctrl_.IsSet(RadioRegs::Ctrl::kEnable) || !ctrl_.IsSet(RadioRegs::Ctrl::kRxEnable)) {
    return;  // radio off: packet lost, as on air
  }
  if (dst != 0xFFFF && dst != node_addr()) {
    return;  // not addressed to us
  }
  if (rx_addr_ == 0 || rx_max_len_ == 0) {
    return;  // no receive buffer armed: packet lost
  }
  uint32_t len = static_cast<uint32_t>(payload.size());
  if (len > rx_max_len_) {
    len = rx_max_len_;  // truncate oversized packets
  }
  bus_->WriteBlock(rx_addr_, payload.data(), len);
  rx_len_ = len;
  ++packets_received_;
  status_.HwModify(RadioRegs::Status::kRxDone.Set());
  irq_.Raise();
}

}  // namespace tock
