// ERA: 3
#include "hw/paged_mem.h"

#include <cassert>
#include <cstring>

namespace tock {

PagedBank::PagedBank(uint32_t size, uint8_t fill, bool paged)
    : size_(size), fill_(fill), paged_(kCompiled && paged) {
  assert(size != 0 && (size & kPageMask) == 0);
  const uint32_t pages = size >> kPageShift;
  read_ptrs_.resize(pages);
  write_ptrs_.resize(pages, nullptr);
  if (paged_) {
    private_pages_.resize(pages);
    const uint8_t* fill_page = FillPage(fill);
    for (uint32_t p = 0; p < pages; ++p) {
      read_ptrs_[p] = fill_page;
    }
  } else {
    flat_.assign(size, fill);
    for (uint32_t p = 0; p < pages; ++p) {
      uint8_t* ptr = flat_.data() + (static_cast<size_t>(p) << kPageShift);
      read_ptrs_[p] = ptr;
      write_ptrs_[p] = ptr;
    }
  }
}

const uint8_t* PagedBank::FillPage(uint8_t fill) {
  // Shared immutable background pages. Only the two fills the memory map uses
  // exist (erased flash reads 0xFF, fresh RAM reads 0x00).
  static const uint8_t kZeroPage[kPageSize] = {};
  struct FfPage {
    uint8_t bytes[kPageSize];
    FfPage() { std::memset(bytes, 0xFF, sizeof(bytes)); }
  };
  static const FfPage kFfPage;
  if (fill == 0x00) {
    return kZeroPage;
  }
  assert(fill == 0xFF);
  return kFfPage.bytes;
}

const uint8_t* PagedBank::BackingPage(uint32_t page) const {
  if (base_ != nullptr) {
    return base_->data() + (static_cast<size_t>(page) << kPageShift);
  }
  return FillPage(fill_);
}

uint8_t* PagedBank::Materialize(uint32_t page) {
  // Only paged banks have null write pointers, so this is the COW miss path.
  auto owned = std::make_unique<uint8_t[]>(kPageSize);
  std::memcpy(owned.get(), read_ptrs_[page], kPageSize);
  uint8_t* ptr = owned.get();
  private_pages_[page] = std::move(owned);
  read_ptrs_[page] = ptr;
  write_ptrs_[page] = ptr;
  ++resident_pages_;
  return ptr;
}

void PagedBank::ReadSlow(uint32_t off, uint8_t* dst, uint32_t len) const {
  while (len > 0) {
    const uint32_t page = off >> kPageShift;
    const uint32_t in_page = off & kPageMask;
    const uint32_t chunk = len < kPageSize - in_page ? len : kPageSize - in_page;
    std::memcpy(dst, read_ptrs_[page] + in_page, chunk);
    off += chunk;
    dst += chunk;
    len -= chunk;
  }
}

void PagedBank::WriteSlow(uint32_t off, const uint8_t* src, uint32_t len) {
  while (len > 0) {
    const uint32_t page = off >> kPageShift;
    const uint32_t in_page = off & kPageMask;
    const uint32_t chunk = len < kPageSize - in_page ? len : kPageSize - in_page;
    uint8_t* dst = write_ptrs_[page];
    if (dst == nullptr) {
      dst = Materialize(page);
    }
    std::memcpy(dst + in_page, src, chunk);
    off += chunk;
    src += chunk;
    len -= chunk;
  }
}

void PagedBank::AdoptBase(std::shared_ptr<const std::vector<uint8_t>> base) {
  assert(base != nullptr && base->size() == size_);
  if (!paged_) {
    std::memcpy(flat_.data(), base->data(), size_);
    base_ = std::move(base);  // kept so ResetRange restores image contents
    return;
  }
  const uint8_t* data = base->data();
  const uint32_t pages = size_ >> kPageShift;
  for (uint32_t p = 0; p < pages; ++p) {
    if (write_ptrs_[p] == nullptr) {
      // Clean page: share the image directly. Diverged pages keep their copy.
      read_ptrs_[p] = data + (static_cast<size_t>(p) << kPageShift);
    }
  }
  base_ = std::move(base);
}

void PagedBank::ResetRange(uint32_t off, uint32_t len) {
  assert(static_cast<uint64_t>(off) + len <= size_);
  const uint32_t end = off + len;
  uint32_t pos = off;
  while (pos < end) {
    const uint32_t page = pos >> kPageShift;
    const uint32_t page_start = page << kPageShift;
    const uint32_t page_end = page_start + kPageSize;
    const uint32_t chunk_end = end < page_end ? end : page_end;
    if (paged_) {
      if (private_pages_[page] != nullptr) {
        if (pos == page_start && chunk_end == page_end) {
          // Whole page covered: release the private copy back to the backing.
          private_pages_[page].reset();
          write_ptrs_[page] = nullptr;
          read_ptrs_[page] = BackingPage(page);
          --resident_pages_;
        } else {
          std::memcpy(write_ptrs_[page] + (pos - page_start),
                      BackingPage(page) + (pos - page_start), chunk_end - pos);
        }
      }
      // Clean pages already read from the backing — nothing to restore.
    } else {
      std::memcpy(flat_.data() + pos, BackingPage(page) + (pos - page_start),
                  chunk_end - pos);
    }
    pos = chunk_end;
  }
}

}  // namespace tock
