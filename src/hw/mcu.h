// ERA: 1
// The simulated microcontroller: clock, interrupt controller, MPU, memory bus, and
// the active/sleep energy accounting that underpins the duty-cycle experiments (E4).
//
// Execution model: kernel C++ code charges cycles explicitly via Tick() (at the
// documented CycleCosts); the userspace VM charges one cycle per instruction; and
// peripherals complete work via events scheduled on the clock. When the kernel has
// nothing to do it calls SleepUntilInterrupt(), which fast-forwards to the next
// hardware event and books the skipped cycles as (cheap) sleep instead of (expensive)
// active time — the "asynchronous all the way down" payoff from §2.5.
#ifndef TOCK_HW_MCU_H_
#define TOCK_HW_MCU_H_

#include <cstdint>

#include "hw/costs.h"
#include "hw/interrupt.h"
#include "hw/memory_bus.h"
#include "hw/mpu.h"
#include "hw/sim_clock.h"

namespace tock {

class Mcu {
 public:
  // `paged_mem` selects the 4 KiB COW backing store for flash/RAM (hw/paged_mem.h);
  // false allocates both banks eagerly. Behavior is bit-identical either way.
  explicit Mcu(bool paged_mem = PagedBank::kCompiled) : bus_(&mpu_, paged_mem) {}

  SimClock& clock() { return clock_; }
  InterruptController& irq() { return irq_; }
  Mpu& mpu() { return mpu_; }
  MemoryBus& bus() { return bus_; }

  // Charges `cycles` of active CPU time and advances the clock (firing any hardware
  // events that become due while the CPU is busy).
  void Tick(uint64_t cycles) {
    active_cycles_ += cycles;
    clock_.Advance(cycles);
  }

  // Enters the sleep state until an enabled interrupt is pending, or until the
  // clock reaches `limit_cycle` (whichever is first — callers running the kernel to
  // a deadline, e.g. lockstepped multi-board worlds, must not overshoot it).
  // Returns the number of cycles slept. If no hardware event will ever arrive and
  // no limit applies, returns with wedged() set — the simulation equivalent of a
  // system that would hang in WFI forever.
  uint64_t SleepUntilInterrupt(uint64_t limit_cycle = UINT64_MAX) {
    wedged_ = false;  // a fresh sleep re-evaluates; peers may have scheduled events
    if (irq_.AnyPending()) {
      return 0;
    }
    uint64_t slept = 0;
    while (!irq_.AnyPending()) {
      uint64_t next = clock_.NextEventAt();
      if (next >= limit_cycle) {
        if (next == UINT64_MAX && limit_cycle == UINT64_MAX) {
          wedged_ = true;
          return slept;
        }
        if (clock_.Now() < limit_cycle) {
          uint64_t delta = limit_cycle - clock_.Now();
          clock_.Advance(delta);
          slept += delta;
          sleep_cycles_ += delta;
        }
        if (next == UINT64_MAX) {
          wedged_ = true;
        }
        return slept;
      }
      uint64_t delta = next - clock_.Now();
      clock_.Advance(delta);
      slept += delta;
      sleep_cycles_ += delta;
    }
    ++sleep_transitions_;
    active_cycles_ += CycleCosts::kSleepTransition;
    clock_.Advance(CycleCosts::kSleepTransition);
    return slept;
  }

  uint64_t CyclesNow() const { return clock_.Now(); }
  uint64_t active_cycles() const { return active_cycles_; }
  uint64_t sleep_cycles() const { return sleep_cycles_; }
  uint64_t sleep_transitions() const { return sleep_transitions_; }
  bool wedged() const { return wedged_; }
  void ClearWedged() { wedged_ = false; }

  // Total energy in normalized power-model units (see PowerModel).
  double Energy() const {
    return static_cast<double>(active_cycles_) * PowerModel::kActivePowerPerCycle +
           static_cast<double>(sleep_cycles_) * PowerModel::kSleepPowerPerCycle;
  }

  // Fraction of elapsed time spent asleep (the paper's duty-cycle metric).
  double SleepFraction() const {
    uint64_t total = active_cycles_ + sleep_cycles_;
    return total == 0 ? 0.0 : static_cast<double>(sleep_cycles_) / static_cast<double>(total);
  }

  void ResetEnergyAccounting() {
    active_cycles_ = 0;
    sleep_cycles_ = 0;
    sleep_transitions_ = 0;
  }

 private:
  SimClock clock_;
  InterruptController irq_;
  Mpu mpu_;
  MemoryBus bus_;
  uint64_t active_cycles_ = 0;
  uint64_t sleep_cycles_ = 0;
  uint64_t sleep_transitions_ = 0;
  bool wedged_ = false;
};

}  // namespace tock

#endif  // TOCK_HW_MCU_H_
