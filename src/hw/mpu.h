// ERA: 1
// Memory protection unit model (§2.3): single address space, no translation, a small
// number of regions with read/write/execute permissions that constrain *unprivileged*
// accesses only. The kernel reprograms regions on every context switch; each region
// write costs CycleCosts::kMpuRegionConfig (charged by the caller).
//
// Simplification vs. Cortex-M PMSAv7: regions may have arbitrary base/size rather
// than power-of-two alignment. The paper's claims depend on the *presence and cost*
// of reprogrammable protection, not on alignment arithmetic.
#ifndef TOCK_HW_MPU_H_
#define TOCK_HW_MPU_H_

#include <array>
#include <cstdint>

namespace tock {

enum class AccessType { kRead, kWrite, kExecute };

struct MpuRegionConfig {
  uint32_t base = 0;
  uint32_t size = 0;
  bool read = false;
  bool write = false;
  bool execute = false;
  bool enabled = false;
};

class Mpu {
 public:
  static constexpr unsigned kNumRegions = 8;

  // Programs one region. Returns false for an out-of-range region index.
  bool ConfigureRegion(unsigned index, const MpuRegionConfig& config) {
    if (index >= kNumRegions) {
      return false;
    }
    regions_[index] = config;
    ++config_writes_;
    return true;
  }

  void DisableRegion(unsigned index) {
    if (index < kNumRegions) {
      regions_[index].enabled = false;
      ++config_writes_;
    }
  }

  void DisableAll() {
    for (unsigned i = 0; i < kNumRegions; ++i) {
      regions_[i].enabled = false;
    }
    config_writes_ += kNumRegions;
  }

  // Checks an unprivileged access of `size` bytes at `addr`. The whole access must
  // fall inside a single enabled region granting the permission; regions are
  // first-match (lower index wins), adequate because the kernel never programs
  // overlapping regions for one process.
  bool CheckAccess(uint32_t addr, uint32_t size, AccessType type) const {
    for (const MpuRegionConfig& r : regions_) {
      if (!r.enabled) {
        continue;
      }
      uint64_t end = static_cast<uint64_t>(addr) + size;
      if (addr < r.base || end > static_cast<uint64_t>(r.base) + r.size) {
        continue;
      }
      switch (type) {
        case AccessType::kRead:
          return r.read;
        case AccessType::kWrite:
          return r.write;
        case AccessType::kExecute:
          return r.execute;
      }
    }
    return false;
  }

  const MpuRegionConfig& region(unsigned index) const { return regions_[index]; }

  // Total region-register writes since boot; the context-switch cost experiments (E2)
  // read this to attribute MPU reprogramming cost.
  uint64_t config_writes() const { return config_writes_; }

 private:
  std::array<MpuRegionConfig, kNumRegions> regions_{};
  uint64_t config_writes_ = 0;
};

}  // namespace tock

#endif  // TOCK_HW_MPU_H_
