// ERA: 1
#include "hw/memory_bus.h"

#include <cstring>

namespace tock {

void MemoryBus::AttachDevice(MemoryMap::Slot slot, MmioDevice* device) {
  devices_[slot] = device;
}

MmioDevice* MemoryBus::DeviceAt(uint32_t addr, uint32_t* offset_out) {
  if (addr < MemoryMap::kMmioBase) {
    return nullptr;
  }
  uint32_t slot = (addr - MemoryMap::kMmioBase) / MemoryMap::kMmioStride;
  if (slot >= MemoryMap::kNumSlots) {
    return nullptr;
  }
  *offset_out = (addr - MemoryMap::kMmioBase) % MemoryMap::kMmioStride;
  return devices_[slot];
}

std::optional<uint32_t> MemoryBus::Read(uint32_t addr, unsigned size, Privilege priv) {
  if (priv == Privilege::kUnprivileged &&
      !mpu_->CheckAccess(addr, size, AccessType::kRead)) {
    Fault(BusFaultKind::kMpuViolation, addr, AccessType::kRead);
    return std::nullopt;
  }
  if (InRam(addr, size)) {
    uint32_t value = 0;
    ram_.Read(addr - MemoryMap::kRamBase, &value, size);
    return value;
  }
  if (InFlash(addr, size)) {
    uint32_t value = 0;
    flash_.Read(addr - MemoryMap::kFlashBase, &value, size);
    return value;
  }
  uint32_t offset = 0;
  if (MmioDevice* dev = DeviceAt(addr, &offset)) {
    if (size != 4 || (addr & 3) != 0) {
      Fault(BusFaultKind::kUnalignedMmio, addr, AccessType::kRead);
      return std::nullopt;
    }
    ++mmio_accesses_;
    return dev->MmioRead(offset);
  }
  Fault(BusFaultKind::kUnmapped, addr, AccessType::kRead);
  return std::nullopt;
}

bool MemoryBus::Write(uint32_t addr, uint32_t value, unsigned size, Privilege priv) {
  if (priv == Privilege::kUnprivileged &&
      !mpu_->CheckAccess(addr, size, AccessType::kWrite)) {
    return Fault(BusFaultKind::kMpuViolation, addr, AccessType::kWrite);
  }
  if (InRam(addr, size)) {
    ram_.Write(addr - MemoryMap::kRamBase, &value, size);
    return true;
  }
  if (InFlash(addr, size)) {
    // Flash is not writable over the bus: stores must go through the flash
    // controller peripheral. Real MCUs ignore or fault such stores; we fault so the
    // kernel's read-only-allow guarantees (§3.3.3) are testable.
    return Fault(BusFaultKind::kFlashWrite, addr, AccessType::kWrite);
  }
  uint32_t offset = 0;
  if (MmioDevice* dev = DeviceAt(addr, &offset)) {
    if (size != 4 || (addr & 3) != 0) {
      return Fault(BusFaultKind::kUnalignedMmio, addr, AccessType::kWrite);
    }
    ++mmio_accesses_;
    dev->MmioWrite(offset, value);
    return true;
  }
  return Fault(BusFaultKind::kUnmapped, addr, AccessType::kWrite);
}

std::optional<uint32_t> MemoryBus::Fetch(uint32_t addr, Privilege priv) {
  if (priv == Privilege::kUnprivileged &&
      !mpu_->CheckAccess(addr, 4, AccessType::kExecute)) {
    Fault(BusFaultKind::kMpuViolation, addr, AccessType::kExecute);
    return std::nullopt;
  }
  if (InRam(addr, 4)) {
    uint32_t value = 0;
    ram_.Read(addr - MemoryMap::kRamBase, &value, 4);
    return value;
  }
  if (InFlash(addr, 4)) {
    uint32_t value = 0;
    flash_.Read(addr - MemoryMap::kFlashBase, &value, 4);
    return value;
  }
  Fault(BusFaultKind::kUnmapped, addr, AccessType::kExecute);
  return std::nullopt;
}

bool MemoryBus::ReadBlock(uint32_t addr, uint8_t* out, uint32_t len) {
  if (InRam(addr, len)) {
    ram_.Read(addr - MemoryMap::kRamBase, out, len);
    return true;
  }
  if (InFlash(addr, len)) {
    flash_.Read(addr - MemoryMap::kFlashBase, out, len);
    return true;
  }
  return false;
}

bool MemoryBus::WriteBlock(uint32_t addr, const uint8_t* data, uint32_t len) {
  if (InRam(addr, len)) {
    ram_.Write(addr - MemoryMap::kRamBase, data, len);
    return true;
  }
  return false;
}

bool MemoryBus::ProgramFlash(uint32_t addr, const uint8_t* data, uint32_t len) {
  if (!InFlash(addr, len)) {
    return false;
  }
  flash_.Write(addr - MemoryMap::kFlashBase, data, len);
  if (flash_observer_ != nullptr) {
    flash_observer_->OnFlashProgrammed(addr, len);
  }
  return true;
}

bool MemoryBus::FlashWriteRaw(uint32_t addr, const uint8_t* data, uint32_t len) {
  if (!InFlash(addr, len)) {
    return false;
  }
  flash_.Write(addr - MemoryMap::kFlashBase, data, len);
  return true;
}

bool MemoryBus::ResetRam(uint32_t addr, uint32_t len) {
  if (!InRam(addr, len)) {
    return false;
  }
  ram_.ResetRange(addr - MemoryMap::kRamBase, len);
  return true;
}

uint8_t* MemoryBus::RamWritePtr(uint32_t addr, uint32_t len) {
  if (!InRam(addr, len)) {
    return nullptr;
  }
  return ram_.ContiguousWrite(addr - MemoryMap::kRamBase, len);
}

const uint8_t* MemoryBus::MemReadPtr(uint32_t addr, uint32_t len) {
  if (InRam(addr, len)) {
    return ram_.ContiguousRead(addr - MemoryMap::kRamBase, len);
  }
  if (InFlash(addr, len)) {
    return flash_.ContiguousRead(addr - MemoryMap::kFlashBase, len);
  }
  return nullptr;
}

}  // namespace tock
