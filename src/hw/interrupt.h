// ERA: 1
// NVIC-style interrupt controller for the simulated MCU.
//
// Peripherals raise interrupt lines; the kernel's main loop services pending lines by
// calling the chip driver's bottom-half handler (Tock services interrupts from the
// kernel loop rather than doing work in ISRs, §2.5). Pending state is level-latched:
// a line stays pending until the kernel completes it.
#ifndef TOCK_HW_INTERRUPT_H_
#define TOCK_HW_INTERRUPT_H_

#include <cstdint>
#include <optional>

namespace tock {

class InterruptController {
 public:
  static constexpr unsigned kNumLines = 32;

  // Hardware side: latch `line` pending. Safe to call repeatedly.
  void Raise(unsigned line) {
    if (line < kNumLines) {
      pending_ |= (1u << line);
    }
  }

  // Kernel side: enable/disable delivery of a line.
  void Enable(unsigned line) {
    if (line < kNumLines) {
      enabled_ |= (1u << line);
    }
  }
  void Disable(unsigned line) {
    if (line < kNumLines) {
      enabled_ &= ~(1u << line);
    }
  }

  bool IsPending(unsigned line) const {
    return line < kNumLines && (pending_ & enabled_ & (1u << line)) != 0;
  }

  // True if any enabled line is pending — the MCU's wake-up condition.
  bool AnyPending() const { return (pending_ & enabled_) != 0; }

  // Lowest-numbered pending enabled line, without clearing it.
  std::optional<unsigned> NextPending() const {
    uint32_t active = pending_ & enabled_;
    if (active == 0) {
      return std::nullopt;
    }
    return static_cast<unsigned>(__builtin_ctz(active));
  }

  // Kernel acknowledges that a line's bottom half ran; clears the latch.
  void Complete(unsigned line) {
    if (line < kNumLines) {
      pending_ &= ~(1u << line);
    }
  }

  uint32_t pending_mask() const { return pending_; }
  uint32_t enabled_mask() const { return enabled_; }

 private:
  uint32_t pending_ = 0;
  uint32_t enabled_ = 0;
};

// A single interrupt line handle given to a peripheral at construction, so peripheral
// models cannot raise arbitrary lines.
class InterruptLine {
 public:
  InterruptLine() : controller_(nullptr), line_(0) {}
  InterruptLine(InterruptController* controller, unsigned line)
      : controller_(controller), line_(line) {}

  void Raise() const {
    if (controller_ != nullptr) {
      controller_->Raise(line_);
    }
  }

  unsigned line() const { return line_; }

 private:
  InterruptController* controller_;
  unsigned line_;
};

}  // namespace tock

#endif  // TOCK_HW_INTERRUPT_H_
