// ERA: 1
#include "hw/spi.h"

namespace tock {

uint32_t Spi::MmioRead(uint32_t offset) {
  switch (offset) {
    case SpiRegs::kCtrl:
      return ctrl_.Get();
    case SpiRegs::kStatus:
      return status_.Get();
    case SpiRegs::kDmaTxAddr:
      return dma_tx_addr_.Get();
    case SpiRegs::kDmaRxAddr:
      return dma_rx_addr_.Get();
    case SpiRegs::kCsSelect:
      return cs_select_.Get();
    default:
      return 0;
  }
}

void Spi::MmioWrite(uint32_t offset, uint32_t value) {
  switch (offset) {
    case SpiRegs::kCtrl: {
      ctrl_.Set(value);
      uint32_t polarity = ctrl_.Read(SpiRegs::Ctrl::kCsPolarity);
      if ((supported_polarity_mask_ & (1u << polarity)) == 0) {
        // The controller cannot generate this CS level. The device will never be
        // correctly selected; record the latent misconfiguration.
        polarity_config_error_ = true;
      }
      return;
    }
    case SpiRegs::kDmaTxAddr:
      dma_tx_addr_.Set(value);
      return;
    case SpiRegs::kDmaRxAddr:
      dma_rx_addr_.Set(value);
      return;
    case SpiRegs::kLen:
      StartTransfer(value);
      return;
    case SpiRegs::kCsSelect:
      cs_select_.Set(value);
      return;
    case SpiRegs::kIntClr:
      status_.HwModify(FieldValue<uint32_t>{value, 0});
      return;
    default:
      return;
  }
}

void Spi::StartTransfer(uint32_t len) {
  if (!ctrl_.IsSet(SpiRegs::Ctrl::kEnable) || len == 0 ||
      status_.IsSet(SpiRegs::Status::kBusy)) {
    return;
  }
  status_.HwModify(SpiRegs::Status::kBusy.Set());

  unsigned cs = cs_select_.Get() % kMaxSlaves;
  SpiSlaveModel* slave = slaves_[cs];
  std::vector<uint8_t> tx(len, 0);
  bus_->ReadBlock(dma_tx_addr_.Get(), tx.data(), len);

  // A polarity the controller can't generate means the device never sees its select
  // line: the transfer clocks out but the slave doesn't respond (reads as 0xFF).
  bool selected = slave != nullptr && !polarity_config_error_;

  std::vector<uint8_t> rx(len, 0xFF);
  if (selected) {
    slave->CsAsserted();
    for (uint32_t i = 0; i < len; ++i) {
      rx[i] = slave->Exchange(tx[i]);
    }
    slave->CsDeasserted();
  }

  uint32_t rx_addr = dma_rx_addr_.Get();
  clock_->ScheduleAfter(CycleCosts::kSpiCyclesPerByte * len,
                        [this, rx = std::move(rx), rx_addr] {
                          if (rx_addr != 0) {
                            bus_->WriteBlock(rx_addr, rx.data(), static_cast<uint32_t>(rx.size()));
                          }
                          status_.HwModify(SpiRegs::Status::kBusy.Clear());
                          status_.HwModify(SpiRegs::Status::kDone.Set());
                          irq_.Raise();
                        });
}

}  // namespace tock
