// ERA: 1
#include "hw/uart.h"

#include <vector>

namespace tock {

uint32_t Uart::MmioRead(uint32_t offset) {
  switch (offset) {
    case UartRegs::kCtrl:
      return ctrl_.Get();
    case UartRegs::kStatus:
      return status_.Get();
    case UartRegs::kRxData:
      status_.HwModify(UartRegs::Status::kRxAvail.Clear());
      return rx_data_;
    case UartRegs::kDmaTxAddr:
      return dma_tx_addr_.Get();
    case UartRegs::kDmaRxAddr:
      return dma_rx_addr_.Get();
    default:
      return 0;
  }
}

void Uart::MmioWrite(uint32_t offset, uint32_t value) {
  switch (offset) {
    case UartRegs::kCtrl:
      ctrl_.Set(value);
      if (ctrl_.IsSet(UartRegs::Ctrl::kRxEnable) && !rx_wire_.empty()) {
        DeliverNextRxByte();
      }
      return;
    case UartRegs::kTxData: {
      if (!ctrl_.IsSet(UartRegs::Ctrl::kTxEnable)) {
        return;
      }
      status_.HwModify(UartRegs::Status::kTxIdle.Clear());
      uint8_t byte = static_cast<uint8_t>(value);
      clock_->ScheduleAfter(CycleCosts::kUartCyclesPerByte, [this, byte] {
        output_.push_back(static_cast<char>(byte));
        status_.HwModify(UartRegs::Status::kTxIdle.Set());
        status_.HwModify(UartRegs::Status::kTxDone.Set());
        irq_.Raise();
      });
      return;
    }
    case UartRegs::kDmaTxAddr:
      dma_tx_addr_.Set(value);
      return;
    case UartRegs::kDmaTxLen:
      StartDmaTx(value);
      return;
    case UartRegs::kDmaRxAddr:
      dma_rx_addr_.Set(value);
      return;
    case UartRegs::kDmaRxLen:
      StartDmaRx(value);
      return;
    case UartRegs::kIntClr:
      status_.HwModify(FieldValue<uint32_t>{value, 0});
      return;
    default:
      return;
  }
}

void Uart::StartDmaTx(uint32_t len) {
  if (!ctrl_.IsSet(UartRegs::Ctrl::kTxEnable) || len == 0) {
    return;
  }
  status_.HwModify(UartRegs::Status::kTxIdle.Clear());
  // DMA: latch the buffer contents at transfer start (the bus master reads ahead of
  // the shift register; close enough for the completion-timing behaviour we model).
  std::vector<uint8_t> data(len);
  if (!bus_->ReadBlock(dma_tx_addr_.Get(), data.data(), len)) {
    // Bad DMA pointer: complete immediately with nothing sent. Real hardware would
    // bus-fault the DMA engine; drivers must have validated the buffer.
    status_.HwModify(UartRegs::Status::kTxIdle.Set());
    status_.HwModify(UartRegs::Status::kTxDone.Set());
    irq_.Raise();
    return;
  }
  clock_->ScheduleAfter(CycleCosts::kUartCyclesPerByte * len, [this, data = std::move(data)] {
    output_.append(data.begin(), data.end());
    status_.HwModify(UartRegs::Status::kTxIdle.Set());
    status_.HwModify(UartRegs::Status::kTxDone.Set());
    irq_.Raise();
  });
}

void Uart::StartDmaRx(uint32_t len) {
  if (len == 0) {
    return;
  }
  dma_rx_active_ = true;
  dma_rx_pos_ = 0;
  dma_rx_len_ = len;
  if (!rx_wire_.empty()) {
    DeliverNextRxByte();
  }
}

void Uart::InjectRx(const std::string& bytes) {
  for (char c : bytes) {
    rx_wire_.push_back(static_cast<uint8_t>(c));
  }
  if (ctrl_.IsSet(UartRegs::Ctrl::kRxEnable) || dma_rx_active_) {
    DeliverNextRxByte();
  }
}

void Uart::DeliverNextRxByte() {
  if (rx_delivery_scheduled_ || rx_wire_.empty()) {
    return;
  }
  rx_delivery_scheduled_ = true;
  clock_->ScheduleAfter(CycleCosts::kUartCyclesPerByte, [this] {
    rx_delivery_scheduled_ = false;
    if (rx_wire_.empty()) {
      return;
    }
    uint8_t byte = rx_wire_.front();
    rx_wire_.pop_front();
    if (dma_rx_active_) {
      bus_->WriteBlock(dma_rx_addr_.Get() + dma_rx_pos_, &byte, 1);
      if (++dma_rx_pos_ == dma_rx_len_) {
        dma_rx_active_ = false;
        status_.HwModify(UartRegs::Status::kRxDone.Set());
        irq_.Raise();
      }
    } else {
      rx_data_ = byte;
      status_.HwModify(UartRegs::Status::kRxAvail.Set());
      irq_.Raise();
    }
    if (!rx_wire_.empty()) {
      DeliverNextRxByte();
    }
  });
}

}  // namespace tock
