// ERA: 1
#include "hw/gpio.h"

namespace tock {

uint32_t Gpio::MmioRead(uint32_t offset) {
  switch (offset) {
    case GpioRegs::kDir:
      return dir_.Get();
    case GpioRegs::kOut:
      return out_.Get();
    case GpioRegs::kIn:
      // Reading the input register on a driven pin reflects the driven level, as on
      // real GPIO blocks (the input buffer samples the pad).
      return (in_.Get() & ~dir_.Get()) | (out_.Get() & dir_.Get());
    case GpioRegs::kIrqRise:
      return irq_rise_.Get();
    case GpioRegs::kIrqFall:
      return irq_fall_.Get();
    case GpioRegs::kIrqStatus:
      return irq_status_.Get();
    default:
      return 0;
  }
}

void Gpio::MmioWrite(uint32_t offset, uint32_t value) {
  switch (offset) {
    case GpioRegs::kDir:
      dir_.Set(value);
      return;
    case GpioRegs::kOut: {
      uint32_t changed = (out_.Get() ^ value) & dir_.Get();
      for (unsigned pin = 0; pin < kNumPins; ++pin) {
        if ((changed >> pin) & 1) {
          ++toggles_[pin];
        }
      }
      out_.Set(value);
      return;
    }
    case GpioRegs::kIrqRise:
      irq_rise_.Set(value);
      return;
    case GpioRegs::kIrqFall:
      irq_fall_.Set(value);
      return;
    case GpioRegs::kIntClr:
      irq_status_.HwModify(FieldValue<uint32_t>{value, 0});
      return;
    default:
      return;
  }
}

void Gpio::SetInput(unsigned pin, bool level) {
  if (pin >= kNumPins) {
    return;
  }
  uint32_t mask = 1u << pin;
  bool old_level = (in_.Get() & mask) != 0;
  if (old_level == level) {
    return;
  }
  in_.HwSet(level ? (in_.Get() | mask) : (in_.Get() & ~mask));
  bool rising = level && !old_level;
  uint32_t enabled = rising ? irq_rise_.Get() : irq_fall_.Get();
  if (enabled & mask) {
    irq_status_.HwSet(irq_status_.Get() | mask);
    irq_.Raise();
  }
}

}  // namespace tock
