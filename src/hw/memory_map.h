// ERA: 1
// Physical memory map of the simulated MCU — the class of machine from §2: flash for
// code, a small SRAM, and a bank of MMIO peripherals. No virtual memory.
#ifndef TOCK_HW_MEMORY_MAP_H_
#define TOCK_HW_MEMORY_MAP_H_

#include <cstdint>

namespace tock {

struct MemoryMap {
  static constexpr uint32_t kFlashBase = 0x0000'0000;
  static constexpr uint32_t kFlashSize = 512 * 1024;

  static constexpr uint32_t kRamBase = 0x2000'0000;
  static constexpr uint32_t kRamSize = 128 * 1024;

  static constexpr uint32_t kMmioBase = 0x4000'0000;
  static constexpr uint32_t kMmioStride = 0x1000;  // one 4 KiB page per peripheral

  // Peripheral slots (base = kMmioBase + slot * kMmioStride; IRQ line = slot).
  enum Slot : unsigned {
    kUart0 = 0,
    kAlarm = 1,
    kGpio = 2,
    kSpi0 = 3,
    kRng = 4,
    kAes = 5,
    kSha = 6,
    kFlashCtrl = 7,
    kRadio = 8,
    kTempSensor = 9,
    kSysTick = 10,
    kUart1 = 11,
    kNumSlots = 12,
  };

  static constexpr uint32_t SlotBase(Slot slot) {
    return kMmioBase + static_cast<uint32_t>(slot) * kMmioStride;
  }
};

}  // namespace tock

#endif  // TOCK_HW_MEMORY_MAP_H_
