// ERA: 1
#include "hw/sim_clock.h"

#include <algorithm>

namespace tock {

uint64_t SimClock::ScheduleAt(uint64_t at, EventFn fn) {
  uint64_t id = next_id_++;
  uint64_t due = std::max(at, now_);
  queue_.push(Event{due, next_seq_++, id, std::move(fn)});
  ++live_events_;
  if (due < next_due_) {
    next_due_ = due;
  }
  return id;
}

bool SimClock::Cancel(uint64_t id) {
  // The priority queue cannot remove an arbitrary element; record the id and drop the
  // event lazily when it surfaces. live_events_ is decremented now so NextEventAt
  // consumers don't wait on a dead event's bookkeeping (the stale entry itself is
  // handled when popped).
  if (std::find(cancelled_.begin(), cancelled_.end(), id) != cancelled_.end()) {
    return false;
  }
  cancelled_.push_back(id);
  if (live_events_ > 0) {
    --live_events_;
  }
  return true;
}

void SimClock::AdvanceSlow(uint64_t target) {
  while (!queue_.empty() && queue_.top().at <= target) {
    Event ev = queue_.top();
    queue_.pop();
    auto it = std::find(cancelled_.begin(), cancelled_.end(), ev.id);
    if (it != cancelled_.end()) {
      cancelled_.erase(it);
      continue;
    }
    --live_events_;
    now_ = ev.at;  // events observe their own deadline as "now"
    ev.fn();
  }
  now_ = target;
  next_due_ = queue_.empty() ? UINT64_MAX : queue_.top().at;
}

uint64_t SimClock::NextEventAt() const {
  // Skip over lazily-cancelled entries without mutating the queue: copy-scan is
  // acceptable because cancellations are rare (alarm re-arms dominate).
  if (queue_.empty()) {
    return UINT64_MAX;
  }
  if (cancelled_.empty()) {
    return queue_.top().at;
  }
  auto copy = queue_;
  while (!copy.empty()) {
    const Event& ev = copy.top();
    if (std::find(cancelled_.begin(), cancelled_.end(), ev.id) == cancelled_.end()) {
      return ev.at;
    }
    copy.pop();
  }
  return UINT64_MAX;
}

}  // namespace tock
