// ERA: 1
// On-chip temperature sensor with asynchronous conversion — the simplest split-phase
// peripheral, used heavily by the urban-sensing examples (§2).
#ifndef TOCK_HW_TEMP_SENSOR_H_
#define TOCK_HW_TEMP_SENSOR_H_

#include <cstdint>

#include "hw/costs.h"
#include "hw/interrupt.h"
#include "hw/memory_bus.h"
#include "hw/sim_clock.h"
#include "util/registers.h"

namespace tock {

struct TempRegs {
  static constexpr uint32_t kCtrl = 0x00;    // bit0: start conversion
  static constexpr uint32_t kStatus = 0x04;  // bit0: done
  static constexpr uint32_t kIntClr = 0x08;
  static constexpr uint32_t kValue = 0x0C;  // RO: centi-degrees Celsius, signed

  struct Status {
    static constexpr Field<uint32_t> kDone{0, 1};
  };
};

class TempSensor : public MmioDevice {
 public:
  TempSensor(SimClock* clock, InterruptLine irq) : clock_(clock), irq_(irq) {}

  uint32_t MmioRead(uint32_t offset) override {
    switch (offset) {
      case TempRegs::kStatus:
        return status_.Get();
      case TempRegs::kValue:
        return static_cast<uint32_t>(value_centi_);
      default:
        return 0;
    }
  }

  void MmioWrite(uint32_t offset, uint32_t value) override {
    if (offset == TempRegs::kCtrl && (value & 1) != 0) {
      clock_->ScheduleAfter(CycleCosts::kTempConversionCycles, [this] {
        // Ambient temperature plus a deterministic pseudo-noise wobble so repeated
        // samples differ (sensing apps exercise their whole pipeline).
        ++conversions_;
        int32_t wobble = static_cast<int32_t>((conversions_ * 7919) % 41) - 20;
        value_centi_ = ambient_centi_ + wobble;
        status_.HwModify(TempRegs::Status::kDone.Set());
        irq_.Raise();
      });
    } else if (offset == TempRegs::kIntClr) {
      status_.HwModify(FieldValue<uint32_t>{value, 0});
    }
  }

  // Host-side: sets the ambient temperature in centi-degrees.
  void SetAmbient(int32_t centi_degrees) { ambient_centi_ = centi_degrees; }

 private:
  SimClock* clock_;
  InterruptLine irq_;
  ReadOnlyReg<uint32_t> status_;
  int32_t ambient_centi_ = 2150;  // 21.5 °C
  int32_t value_centi_ = 0;
  uint64_t conversions_ = 0;
};

}  // namespace tock

#endif  // TOCK_HW_TEMP_SENSOR_H_
