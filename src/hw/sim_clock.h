// ERA: 1
// Deterministic simulation clock. All time in the system is cycles of this clock;
// there is no host wall-clock anywhere, so every run is bit-for-bit reproducible.
#ifndef TOCK_HW_SIM_CLOCK_H_
#define TOCK_HW_SIM_CLOCK_H_

#include <cstdint>
#include <functional>
#include <queue>
#include <vector>

namespace tock {

// An event-driven clock: hardware models schedule completion callbacks at absolute
// cycle times; advancing the clock fires due events in (time, insertion) order.
//
// The simulator host-allocates freely (it stands in for physical silicon); the
// *kernel's* heapless discipline is unaffected.
class SimClock {
 public:
  using EventFn = std::function<void()>;

  uint64_t Now() const { return now_; }

  // Schedules `fn` to run when the clock reaches `at` (or immediately upon the next
  // advance if `at` is in the past). Returns an id usable with Cancel.
  uint64_t ScheduleAt(uint64_t at, EventFn fn);

  // Schedules `fn` to run `delay` cycles from now.
  uint64_t ScheduleAfter(uint64_t delay, EventFn fn) { return ScheduleAt(now_ + delay, std::move(fn)); }

  // Cancels a scheduled event. Returns false if it already fired or never existed.
  bool Cancel(uint64_t id);

  // Advances the clock by `cycles`, firing every event whose deadline is reached, in
  // deadline order. Events scheduled by fired events within the window also fire.
  //
  // The common case by far is the kernel ticking one cycle per VM instruction with
  // no event due; `next_due_` caches the earliest queued deadline so that case is a
  // single compare instead of a priority-queue inspection (hot-path work — see
  // DESIGN.md "Hot-path architecture"; simulated time is unaffected).
  void Advance(uint64_t cycles) {
    uint64_t target = now_ + cycles;
    if (target < next_due_) {
      now_ = target;
      return;
    }
    AdvanceSlow(target);
  }

  // Cycle time of the earliest pending event, or UINT64_MAX when none.
  uint64_t NextEventAt() const;

  bool HasPendingEvents() const { return live_events_ > 0; }

 private:
  struct Event {
    uint64_t at;
    uint64_t seq;  // tie-breaker: FIFO among same-cycle events
    uint64_t id;
    EventFn fn;
    bool operator>(const Event& other) const {
      return at != other.at ? at > other.at : seq > other.seq;
    }
  };

  void AdvanceSlow(uint64_t target);

  uint64_t now_ = 0;
  uint64_t next_seq_ = 0;
  uint64_t next_id_ = 1;
  uint64_t live_events_ = 0;
  // Earliest deadline present in queue_ (cancelled entries included — lazily
  // cancelled events still occupy their slot, so this is a conservative lower
  // bound: Advance may take the slow path and find only dead entries, never the
  // reverse). UINT64_MAX when the queue is empty.
  uint64_t next_due_ = UINT64_MAX;
  std::priority_queue<Event, std::vector<Event>, std::greater<Event>> queue_;
  std::vector<uint64_t> cancelled_;  // ids whose events should be dropped when popped
};

}  // namespace tock

#endif  // TOCK_HW_SIM_CLOCK_H_
