// ERA: 1
// 16-pin GPIO bank with edge interrupts. LEDs are output pins (host-observable);
// buttons are input pins (host-drivable).
#ifndef TOCK_HW_GPIO_H_
#define TOCK_HW_GPIO_H_

#include <cstdint>

#include "hw/interrupt.h"
#include "hw/memory_bus.h"
#include "util/registers.h"

namespace tock {

struct GpioRegs {
  static constexpr uint32_t kDir = 0x00;        // 1 = output
  static constexpr uint32_t kOut = 0x04;        // output levels
  static constexpr uint32_t kIn = 0x08;         // RO: input levels
  static constexpr uint32_t kIrqRise = 0x0C;    // per-pin rising-edge IRQ enable
  static constexpr uint32_t kIrqFall = 0x10;    // per-pin falling-edge IRQ enable
  static constexpr uint32_t kIrqStatus = 0x14;  // RO: per-pin pending
  static constexpr uint32_t kIntClr = 0x18;     // W1C
};

class Gpio : public MmioDevice {
 public:
  static constexpr unsigned kNumPins = 16;

  explicit Gpio(InterruptLine irq) : irq_(irq) {}

  uint32_t MmioRead(uint32_t offset) override;
  void MmioWrite(uint32_t offset, uint32_t value) override;

  // --- Host-side API ---

  // Drives an input pin (e.g. a button press); raises the bank interrupt on an
  // enabled edge.
  void SetInput(unsigned pin, bool level);

  // Observes an output pin (e.g. an LED).
  bool GetOutput(unsigned pin) const { return (out_.Get() >> pin) & 1; }

  // Number of level changes seen on an output pin (blink counting in tests).
  uint64_t output_toggles(unsigned pin) const { return toggles_[pin]; }

 private:
  InterruptLine irq_;
  ReadWriteReg<uint32_t> dir_;
  ReadWriteReg<uint32_t> out_;
  ReadOnlyReg<uint32_t> in_;
  ReadWriteReg<uint32_t> irq_rise_;
  ReadWriteReg<uint32_t> irq_fall_;
  ReadOnlyReg<uint32_t> irq_status_;
  uint64_t toggles_[kNumPins] = {};
};

}  // namespace tock

#endif  // TOCK_HW_GPIO_H_
