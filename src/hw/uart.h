// ERA: 1
// Simulated UART with byte-at-a-time and DMA transmit/receive paths, programmed
// through MMIO registers described with the register DSL (§4.3). TX output is
// captured host-side; RX bytes are injected host-side and delivered with realistic
// per-byte pacing so drivers see genuinely asynchronous completion.
#ifndef TOCK_HW_UART_H_
#define TOCK_HW_UART_H_

#include <cstdint>
#include <deque>
#include <string>

#include "hw/costs.h"
#include "hw/interrupt.h"
#include "hw/memory_bus.h"
#include "hw/sim_clock.h"
#include "util/registers.h"

namespace tock {

// Register map (word offsets from peripheral base).
struct UartRegs {
  static constexpr uint32_t kCtrl = 0x00;
  static constexpr uint32_t kStatus = 0x04;
  static constexpr uint32_t kTxData = 0x08;
  static constexpr uint32_t kRxData = 0x0C;
  static constexpr uint32_t kDmaTxAddr = 0x10;
  static constexpr uint32_t kDmaTxLen = 0x14;  // write starts DMA TX
  static constexpr uint32_t kDmaRxAddr = 0x18;
  static constexpr uint32_t kDmaRxLen = 0x1C;  // write starts DMA RX
  static constexpr uint32_t kIntClr = 0x20;    // W1C of STATUS bits

  struct Ctrl {
    static constexpr Field<uint32_t> kTxEnable{0, 1};
    static constexpr Field<uint32_t> kRxEnable{1, 1};
  };
  struct Status {
    static constexpr Field<uint32_t> kTxIdle{0, 1};
    static constexpr Field<uint32_t> kRxAvail{1, 1};
    static constexpr Field<uint32_t> kTxDone{2, 1};
    static constexpr Field<uint32_t> kRxDone{3, 1};
  };
};

class Uart : public MmioDevice {
 public:
  Uart(SimClock* clock, MemoryBus* bus, InterruptLine irq)
      : clock_(clock), bus_(bus), irq_(irq) {
    status_.HwModify(UartRegs::Status::kTxIdle.Set());
  }

  uint32_t MmioRead(uint32_t offset) override;
  void MmioWrite(uint32_t offset, uint32_t value) override;

  // --- Host-side test/example API ---

  // Everything the UART has transmitted since boot.
  const std::string& output() const { return output_; }
  void ClearOutput() { output_.clear(); }

  // Queues bytes "on the wire"; they arrive paced at the simulated baud rate.
  void InjectRx(const std::string& bytes);

 private:
  void StartDmaTx(uint32_t len);
  void StartDmaRx(uint32_t len);
  void DeliverNextRxByte();

  SimClock* clock_;
  MemoryBus* bus_;
  InterruptLine irq_;

  ReadWriteReg<uint32_t> ctrl_;
  ReadOnlyReg<uint32_t> status_;
  ReadWriteReg<uint32_t> dma_tx_addr_;
  ReadWriteReg<uint32_t> dma_rx_addr_;

  std::string output_;
  std::deque<uint8_t> rx_wire_;  // injected, not yet delivered
  uint8_t rx_data_ = 0;
  bool rx_delivery_scheduled_ = false;

  // Active DMA RX transfer.
  bool dma_rx_active_ = false;
  uint32_t dma_rx_pos_ = 0;
  uint32_t dma_rx_len_ = 0;
};

}  // namespace tock

#endif  // TOCK_HW_UART_H_
