// ERA: 3
// Cryptography capsules, the root-of-trust workload of §3.1:
//   HMAC (driver 0x40003): read-only allow 0 = key (32 B), read-only allow 1 = data,
//     read-write allow 2 = digest out (32 B), subscribe 0 = done, command 1 = run.
//   AES-128-CTR (driver 0x40006): read-only allow 0 = key (16 B), read-only allow
//     1 = IV (16 B), read-write allow 2 = data (in place), subscribe 0 = done,
//     command 1 (len) = crypt.
//
// Keys are typically read-only-allowed straight from flash (§3.3.3) — these drivers
// only ever read them through closure-scoped spans.
#ifndef TOCK_CAPSULE_CRYPTO_DRIVERS_H_
#define TOCK_CAPSULE_CRYPTO_DRIVERS_H_

#include <algorithm>
#include <array>

#include "capsule/driver_nums.h"
#include "kernel/driver.h"
#include "kernel/hil.h"
#include "kernel/kernel.h"
#include "util/cells.h"

namespace tock {

class HmacDriver : public SyscallDriver, public hil::DigestClient {
 public:
  HmacDriver(Kernel* kernel, hil::DigestEngine* engine, SubSliceMut data_buffer,
             SubSliceMut digest_buffer)
      : kernel_(kernel),
        engine_(engine),
        data_buffer_(data_buffer),
        digest_buffer_(digest_buffer) {
    engine_->SetDigestClient(this);
  }

  SyscallReturn Command(ProcessId pid, uint32_t command_num, uint32_t arg1,
                        uint32_t arg2) override {
    (void)arg2;
    switch (command_num) {
      case 0:
        return SyscallReturn::Success();
      case 1: {  // run over arg1 bytes of allowed data
        if (busy_) {
          return SyscallReturn::Failure(ErrorCode::kBusy);
        }
        // Fetch the key through a closure-scoped span and program the engine.
        std::array<uint8_t, 32> key{};
        bool have_key = false;
        kernel_->WithReadOnlyBuffer(pid, DriverNum::kHmac, 0,
                                    [&](std::span<const uint8_t> k) {
                                      if (k.size() == key.size()) {
                                        std::copy(k.begin(), k.end(), key.begin());
                                        have_key = true;
                                      }
                                    });
        if (!have_key) {
          return SyscallReturn::Failure(ErrorCode::kInvalid);
        }
        Result<void> keyed = engine_->SetHmacKey(SubSlice(key.data(), key.size()));
        if (!keyed.ok()) {
          return SyscallReturn::Failure(keyed.error());
        }

        auto data = data_buffer_.Take();
        auto digest = digest_buffer_.Take();
        if (!data.has_value() || !digest.has_value()) {
          if (data.has_value()) {
            data_buffer_.Set(*data);
          }
          if (digest.has_value()) {
            digest_buffer_.Set(*digest);
          }
          return SyscallReturn::Failure(ErrorCode::kBusy);
        }
        data->Reset();
        uint32_t copied = 0;
        kernel_->WithReadOnlyBuffer(pid, DriverNum::kHmac, 1,
                                    [&](std::span<const uint8_t> app) {
                                      copied = std::min<uint32_t>(
                                          {arg1, static_cast<uint32_t>(app.size()),
                                           static_cast<uint32_t>(data->Capacity())});
                                      std::copy_n(app.begin(), copied, data->Active().begin());
                                    });
        data->SliceTo(copied);
        SubSliceMut digest_back;
        hil::BufResult started = engine_->ComputeDigest(*data, *digest, &digest_back);
        if (started.has_value()) {
          SubSliceMut returned = started->buffer;
          returned.Reset();
          data_buffer_.Set(returned);
          digest_buffer_.Set(digest_back);
          return SyscallReturn::Failure(started->error);
        }
        busy_ = true;
        requester_ = pid;
        return SyscallReturn::Success();
      }
      default:
        return SyscallReturn::Failure(ErrorCode::kNoSupport);
    }
  }

  // hil::DigestClient
  void DigestDone(SubSliceMut data, SubSliceMut digest, Result<void> result) override {
    data.Reset();
    data_buffer_.Set(data);
    if (busy_) {
      busy_ = false;
      uint32_t delivered = 0;
      if (result.ok()) {
        kernel_->WithReadWriteBuffer(requester_, DriverNum::kHmac, 2,
                                     [&](std::span<uint8_t> out) {
                                       delivered = std::min<uint32_t>(
                                           static_cast<uint32_t>(out.size()),
                                           static_cast<uint32_t>(digest.Size()));
                                       std::copy_n(digest.Active().begin(), delivered,
                                                   out.begin());
                                     });
      }
      kernel_->ScheduleUpcall(requester_, DriverNum::kHmac, 0,
                              result.ok() ? delivered : 0, 0, 0);
    }
    digest_buffer_.Set(digest);
  }

 private:
  Kernel* kernel_;
  hil::DigestEngine* engine_;
  OptionalCell<SubSliceMut> data_buffer_;
  OptionalCell<SubSliceMut> digest_buffer_;
  bool busy_ = false;
  ProcessId requester_;
};

class AesDriver : public SyscallDriver, public hil::AesClient {
 public:
  AesDriver(Kernel* kernel, hil::AesEngine* engine, SubSliceMut data_buffer)
      : kernel_(kernel), engine_(engine), data_buffer_(data_buffer) {
    engine_->SetAesClient(this);
  }

  SyscallReturn Command(ProcessId pid, uint32_t command_num, uint32_t arg1,
                        uint32_t arg2) override {
    (void)arg2;
    switch (command_num) {
      case 0:
        return SyscallReturn::Success();
      case 1: {  // CTR-crypt arg1 bytes of allow 2, in place
        if (busy_) {
          return SyscallReturn::Failure(ErrorCode::kBusy);
        }
        std::array<uint8_t, 16> key{};
        std::array<uint8_t, 16> iv{};
        bool have_key = false;
        bool have_iv = false;
        kernel_->WithReadOnlyBuffer(pid, DriverNum::kAes, 0, [&](std::span<const uint8_t> k) {
          if (k.size() == key.size()) {
            std::copy(k.begin(), k.end(), key.begin());
            have_key = true;
          }
        });
        kernel_->WithReadOnlyBuffer(pid, DriverNum::kAes, 1, [&](std::span<const uint8_t> v) {
          if (v.size() == iv.size()) {
            std::copy(v.begin(), v.end(), iv.begin());
            have_iv = true;
          }
        });
        if (!have_key || !have_iv) {
          return SyscallReturn::Failure(ErrorCode::kInvalid);
        }
        if (!engine_->SetKey(SubSlice(key.data(), key.size())).ok() ||
            !engine_->SetIv(SubSlice(iv.data(), iv.size())).ok()) {
          return SyscallReturn::Failure(ErrorCode::kBusy);
        }

        auto data = data_buffer_.Take();
        if (!data.has_value()) {
          return SyscallReturn::Failure(ErrorCode::kBusy);
        }
        data->Reset();
        uint32_t copied = 0;
        kernel_->WithReadWriteBuffer(pid, DriverNum::kAes, 2, [&](std::span<uint8_t> app) {
          copied = std::min<uint32_t>({arg1, static_cast<uint32_t>(app.size()),
                                       static_cast<uint32_t>(data->Capacity())});
          std::copy_n(app.begin(), copied, data->Active().begin());
        });
        if (copied == 0) {
          data_buffer_.Set(*data);
          return SyscallReturn::Failure(ErrorCode::kInvalid);
        }
        data->SliceTo(copied);
        hil::BufResult started = engine_->Crypt(hil::AesMode::kCtr, *data);
        if (started.has_value()) {
          SubSliceMut returned = started->buffer;
          returned.Reset();
          data_buffer_.Set(returned);
          return SyscallReturn::Failure(started->error);
        }
        busy_ = true;
        requester_ = pid;
        len_ = copied;
        return SyscallReturn::Success();
      }
      default:
        return SyscallReturn::Failure(ErrorCode::kNoSupport);
    }
  }

  // hil::AesClient
  void CryptDone(SubSliceMut buffer, Result<void> result) override {
    if (busy_) {
      busy_ = false;
      uint32_t delivered = 0;
      if (result.ok()) {
        kernel_->WithReadWriteBuffer(requester_, DriverNum::kAes, 2,
                                     [&](std::span<uint8_t> app) {
                                       delivered = std::min<uint32_t>(
                                           len_, static_cast<uint32_t>(app.size()));
                                       std::copy_n(buffer.Active().begin(), delivered,
                                                   app.begin());
                                     });
      }
      kernel_->ScheduleUpcall(requester_, DriverNum::kAes, 0, result.ok() ? delivered : 0, 0,
                              0);
    }
    buffer.Reset();
    data_buffer_.Set(buffer);
  }

 private:
  Kernel* kernel_;
  hil::AesEngine* engine_;
  OptionalCell<SubSliceMut> data_buffer_;
  bool busy_ = false;
  ProcessId requester_;
  uint32_t len_ = 0;
};

}  // namespace tock

#endif  // TOCK_CAPSULE_CRYPTO_DRIVERS_H_
