// ERA: 2
// System call driver numbers, matching upstream Tock's registry where an equivalent
// driver exists.
#ifndef TOCK_CAPSULE_DRIVER_NUMS_H_
#define TOCK_CAPSULE_DRIVER_NUMS_H_

#include <cstdint>

namespace tock {

struct DriverNum {
  static constexpr uint32_t kAlarm = 0x0;
  static constexpr uint32_t kConsole = 0x1;
  static constexpr uint32_t kLed = 0x2;
  static constexpr uint32_t kButton = 0x3;
  static constexpr uint32_t kGpio = 0x4;
  static constexpr uint32_t kRadio = 0x30001;
  static constexpr uint32_t kRng = 0x40001;
  static constexpr uint32_t kHmac = 0x40003;
  static constexpr uint32_t kAes = 0x40006;
  static constexpr uint32_t kTemperature = 0x60000;
  static constexpr uint32_t kProcessInfo = 0xA0001;  // local extension
};

}  // namespace tock

#endif  // TOCK_CAPSULE_DRIVER_NUMS_H_
