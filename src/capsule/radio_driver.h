// ERA: 5
// Packet radio capsule (driver 0x30001) — the Signpost-style networking workload.
//   read-only allow 0 = tx payload | read-write allow 1 = rx sink
//   subscribe 0 = tx done(len) | subscribe 1 = packet received(len, src)
//   command 1 (dst, len) = transmit | command 2 = start listening | command 3 = addr
#ifndef TOCK_CAPSULE_RADIO_DRIVER_H_
#define TOCK_CAPSULE_RADIO_DRIVER_H_

#include <algorithm>

#include "capsule/driver_nums.h"
#include "kernel/driver.h"
#include "kernel/hil.h"
#include "kernel/kernel.h"
#include "util/cells.h"

namespace tock {

class RadioDriver : public SyscallDriver, public hil::RadioClient {
 public:
  RadioDriver(Kernel* kernel, hil::PacketRadio* radio, SubSliceMut tx_buffer,
              SubSliceMut rx_buffer)
      : kernel_(kernel), radio_(radio), tx_buffer_(tx_buffer), rx_buffer_(rx_buffer) {
    radio_->SetRadioClient(this);
  }

  SyscallReturn Command(ProcessId pid, uint32_t command_num, uint32_t arg1,
                        uint32_t arg2) override {
    switch (command_num) {
      case 0:
        return SyscallReturn::Success();

      case 1: {  // transmit arg2 bytes of allow 0 to address arg1
        if (tx_busy_) {
          return SyscallReturn::Failure(ErrorCode::kBusy);
        }
        auto buffer = tx_buffer_.Take();
        if (!buffer.has_value()) {
          return SyscallReturn::Failure(ErrorCode::kBusy);
        }
        buffer->Reset();
        uint32_t copied = 0;
        kernel_->WithReadOnlyBuffer(pid, DriverNum::kRadio, 0,
                                    [&](std::span<const uint8_t> app) {
                                      copied = std::min<uint32_t>(
                                          {arg2, static_cast<uint32_t>(app.size()),
                                           static_cast<uint32_t>(buffer->Capacity())});
                                      std::copy_n(app.begin(), copied,
                                                  buffer->Active().begin());
                                    });
        if (copied == 0) {
          tx_buffer_.Set(*buffer);
          return SyscallReturn::Failure(ErrorCode::kInvalid);
        }
        buffer->SliceTo(copied);
        hil::BufResult started =
            radio_->TransmitPacket(static_cast<uint16_t>(arg1), *buffer);
        if (started.has_value()) {
          SubSliceMut returned = started->buffer;
          returned.Reset();
          tx_buffer_.Set(returned);
          return SyscallReturn::Failure(started->error);
        }
        tx_busy_ = true;
        tx_requester_ = pid;
        tx_len_ = copied;
        return SyscallReturn::Success();
      }

      case 2: {  // start listening: received packets land in this process's allow 1
        listener_ = pid;
        have_listener_ = true;
        if (auto buffer = rx_buffer_.Take()) {
          buffer->Reset();
          hil::BufResult armed = radio_->StartReceive(*buffer);
          if (armed.has_value()) {
            rx_buffer_.Set(armed->buffer);  // already armed from a previous call
          }
        }
        return SyscallReturn::Success();
      }

      case 3:
        return SyscallReturn::SuccessU32(radio_->LocalAddress());

      default:
        return SyscallReturn::Failure(ErrorCode::kNoSupport);
    }
  }

  // hil::RadioClient
  void TransmitDone(SubSliceMut buffer, Result<void> result) override {
    buffer.Reset();
    tx_buffer_.Set(buffer);
    if (tx_busy_) {
      tx_busy_ = false;
      kernel_->ScheduleUpcall(tx_requester_, DriverNum::kRadio, 0,
                              result.ok() ? tx_len_ : 0, 0, 0);
    }
  }

  void PacketReceived(SubSliceMut buffer, uint32_t len) override {
    if (have_listener_) {
      uint32_t delivered = 0;
      kernel_->WithReadWriteBuffer(listener_, DriverNum::kRadio, 1,
                                   [&](std::span<uint8_t> app) {
                                     delivered = std::min<uint32_t>(
                                         len, static_cast<uint32_t>(app.size()));
                                     std::copy_n(buffer.Active().begin(), delivered,
                                                 app.begin());
                                   });
      kernel_->ScheduleUpcall(listener_, DriverNum::kRadio, 1, delivered, 0, 0);
    }
    // Re-arm with the same buffer so listening is continuous.
    buffer.Reset();
    hil::BufResult armed = radio_->StartReceive(buffer);
    if (armed.has_value()) {
      rx_buffer_.Set(armed->buffer);
    }
  }

 private:
  Kernel* kernel_;
  hil::PacketRadio* radio_;
  OptionalCell<SubSliceMut> tx_buffer_;
  OptionalCell<SubSliceMut> rx_buffer_;
  bool tx_busy_ = false;
  ProcessId tx_requester_;
  uint32_t tx_len_ = 0;
  bool have_listener_ = false;
  ProcessId listener_;
};

}  // namespace tock

#endif  // TOCK_CAPSULE_RADIO_DRIVER_H_
