// ERA: 2
// OTA gateway capsule: pushes one signed TBF image to a set of subscriber boards
// over the lossy packet radio (capsule/ota_protocol.h). The §3.4 deployment story
// as a capsule: the gateway chunks the image, runs a per-subscriber seq/ack
// sliding window with per-chunk CRCs, retransmits on exponential-backoff
// timeouts, and — when a subscriber reports that a reassembled image failed the
// integrity/authenticity pipeline — re-pushes the whole image under a fresh
// transfer id, up to a bounded retry budget, then gives up and reports. Nothing
// here ever blocks: every wait is a VirtualAlarm tick, every send is split-phase.
//
// Concurrency discipline: one radio TX may be outstanding at a time, so a single
// round-robin pump (Pump) picks the next due frame across all subscribers from
// TransmitDone / PacketReceived / AlarmFired. All timers are wrapping 32-bit
// (reference, dt) pairs checked with hil::Alarm::Expired.
#ifndef TOCK_CAPSULE_OTA_GATEWAY_H_
#define TOCK_CAPSULE_OTA_GATEWAY_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <vector>

#include "capsule/ota_protocol.h"
#include "capsule/virtual_alarm.h"
#include "hw/radio.h"
#include "kernel/hil.h"
#include "kernel/process_loader.h"
#include "util/crc32.h"

namespace tock {

struct OtaGatewayStats {
  uint64_t frames_sent = 0;
  uint64_t retransmits = 0;       // chunk frames sent beyond the first attempt
  uint64_t frame_crc_drops = 0;   // received frames failing the FCS trailer
  uint64_t acks_received = 0;
  uint64_t statuses_received = 0;
  uint64_t image_repushes = 0;    // whole-image retries after a typed rejection
  uint64_t converged = 0;         // subscribers running the signed update
  uint64_t failed = 0;            // subscribers given up on (retry budget spent)
  // Typed rejection tallies, from subscriber kStatus codes (§3.4 stages).
  uint64_t reject_integrity = 0;     // structural / unsigned
  uint64_t reject_authenticity = 0;  // signature verification failed
  uint64_t reject_image_crc = 0;     // reassembled bytes failed the image CRC
  uint64_t reject_other = 0;
};

class OtaGateway : public hil::RadioClient, public hil::AlarmClient {
 public:
  // Retry/backoff constants (documented in DESIGN.md §12). Timeouts are in alarm
  // ticks (== cycles); a data chunk occupies the air for ~75k cycles.
  static constexpr uint32_t kWindow = 4;             // outstanding chunks per peer
  static constexpr uint32_t kChunkTimeout = 400'000;  // base, doubles per retry
  static constexpr uint32_t kCtrlTimeout = 600'000;   // announce/poll base timeout
  static constexpr uint32_t kBackoffCap = 3;          // max left-shift of a timeout
  static constexpr uint32_t kChunkRetryLimit = 12;    // per-chunk sends before giving up
  static constexpr uint32_t kCtrlRetryLimit = 12;     // announce/poll sends before giving up
  static constexpr uint32_t kImageRetryLimit = 3;     // whole-image pushes per subscriber
  static constexpr uint32_t kTickInterval = 50'000;   // pump/timeout sweep period

  enum class PeerState : uint8_t {
    kIdle,         // not started
    kAnnouncing,   // kAnnounce sent, waiting for the first ack
    kSending,      // sliding window in flight
    kAwaitStatus,  // all chunks acked; polling for the load outcome
    kConverged,    // subscriber reported the signed update running
    kFailed,       // retry budget exhausted — reported and abandoned
  };

  OtaGateway(hil::PacketRadio* radio, VirtualAlarmMux* mux)
      : radio_(radio), mux_(mux), alarm_(mux) {}

  // Board-init wiring: takes over the radio client slot and starts the tick
  // alarm. Only called on boards that play the gateway role.
  void Activate() {
    active_ = true;
    radio_->SetRadioClient(this);
    mux_->AddClient(&alarm_);
    alarm_.SetClient(this);
    ArmRx();
    alarm_.SetAlarm(alarm_.Now(), kTickInterval);
  }

  // Installs the image to distribute and the subscriber set. The image must have
  // been built for the staging address every subscriber will load from.
  void Configure(std::vector<uint8_t> image, const std::vector<uint16_t>& subscribers) {
    image_ = std::move(image);
    image_crc_ = Crc32::Compute(image_.data(), image_.size());
    total_chunks_ = static_cast<uint16_t>((image_.size() + OtaWire::kChunkData - 1) /
                                          OtaWire::kChunkData);
    peers_.clear();
    for (uint16_t addr : subscribers) {
      Peer p;
      p.addr = addr;
      peers_.push_back(std::move(p));
    }
  }

  // Kicks off the push to every configured subscriber.
  void StartPush() {
    uint32_t now = alarm_.Now();
    for (Peer& p : peers_) {
      BeginTransfer(p, now);
    }
    Pump(now);
  }

  bool Done() const {
    for (const Peer& p : peers_) {
      if (p.state != PeerState::kConverged && p.state != PeerState::kFailed) {
        return false;
      }
    }
    return true;
  }

  const OtaGatewayStats& stats() const { return stats_; }
  PeerState peer_state(size_t i) const { return peers_[i].state; }
  uint8_t peer_last_status(size_t i) const { return peers_[i].last_status; }
  size_t peer_count() const { return peers_.size(); }

  // --- hil::RadioClient ---
  void TransmitDone(SubSliceMut buffer, Result<void> result) override {
    (void)buffer;
    (void)result;
    tx_busy_ = false;
    Pump(alarm_.Now());
  }

  void PacketReceived(SubSliceMut buffer, uint32_t len) override {
    HandleFrame(buffer.Active().data(), len);
    ArmRx();
    Pump(alarm_.Now());
  }

  // --- hil::AlarmClient ---
  void AlarmFired() override {
    uint32_t now = alarm_.Now();
    SweepTimeouts(now);
    Pump(now);
    alarm_.SetAlarm(now, kTickInterval);
  }

 private:
  struct Outstanding {
    uint16_t chunk = 0;
    uint32_t retries = 0;   // sends so far (1 == first transmission done)
    uint32_t sent_ref = 0;  // wrapping tick of the last send
  };

  struct Peer {
    uint16_t addr = 0;
    PeerState state = PeerState::kIdle;
    uint8_t xfer = 0;
    uint16_t base = 0;        // all chunks below this are acked
    uint32_t ack_bits = 0;    // acked chunks base+1 .. base+32 (bit i = base+1+i)
    uint16_t next_unsent = 0; // lowest chunk never transmitted this push
    std::vector<Outstanding> window;
    uint32_t ctrl_retries = 0;
    uint32_t ctrl_ref = 0;
    uint32_t ctrl_dt = 0;     // 0 == control frame due immediately
    uint32_t image_attempts = 0;
    uint8_t last_status = 0xFF;
  };

  static uint32_t Backoff(uint32_t base, uint32_t retries) {
    uint32_t shift = retries < kBackoffCap ? retries : kBackoffCap;
    return base << shift;
  }

  void BeginTransfer(Peer& p, uint32_t now) {
    p.state = PeerState::kAnnouncing;
    p.xfer = next_xfer_++;
    p.base = 0;
    p.ack_bits = 0;
    p.next_unsent = 0;
    p.window.clear();
    p.ctrl_retries = 0;
    p.ctrl_ref = now;
    p.ctrl_dt = 0;  // announce due immediately
  }

  void FailPeer(Peer& p) {
    p.state = PeerState::kFailed;
    p.window.clear();
    ++stats_.failed;
  }

  bool IsAcked(const Peer& p, uint16_t chunk) const {
    if (chunk < p.base) {
      return true;
    }
    if (chunk > p.base && chunk - p.base - 1 < 32) {
      return (p.ack_bits >> (chunk - p.base - 1)) & 1u;
    }
    return false;
  }

  bool InWindow(const Peer& p, uint16_t chunk) const {
    for (const Outstanding& o : p.window) {
      if (o.chunk == chunk) {
        return true;
      }
    }
    return false;
  }

  void ArmRx() {
    SubSliceMut rx(rx_buf_.data(), rx_buf_.size());
    radio_->StartReceive(rx);  // single-client slot: refusal means already armed
  }

  bool SendFrame(uint16_t dst, size_t len) {
    SubSliceMut tx(tx_buf_.data(), tx_buf_.size());
    tx.SliceTo(len);
    if (radio_->TransmitPacket(dst, tx).has_value()) {
      return false;  // chip busy; the pump retries on the next event
    }
    tx_busy_ = true;
    ++stats_.frames_sent;
    return true;
  }

  bool SendAnnounce(Peer& p) {
    uint8_t* f = tx_buf_.data();
    f[0] = static_cast<uint8_t>(OtaFrameType::kAnnounce);
    f[1] = p.xfer;
    OtaWire::Put16(f + 2, total_chunks_);
    OtaWire::Put32(f + 4, static_cast<uint32_t>(image_.size()));
    OtaWire::Put32(f + 8, image_crc_);
    OtaWire::Put16(f + 12, radio_->LocalAddress());
    return SendFrame(p.addr, OtaWire::Seal(f, OtaWire::kAnnounceSize));
  }

  bool SendChunk(Peer& p, uint16_t chunk) {
    size_t off = static_cast<size_t>(chunk) * OtaWire::kChunkData;
    size_t len = image_.size() - off;
    if (len > OtaWire::kChunkData) {
      len = OtaWire::kChunkData;
    }
    uint8_t* f = tx_buf_.data();
    f[0] = static_cast<uint8_t>(OtaFrameType::kData);
    f[1] = p.xfer;
    OtaWire::Put16(f + 2, chunk);
    OtaWire::Put16(f + 4, static_cast<uint16_t>(len));
    OtaWire::Put32(f + 6, Crc32::Compute(image_.data() + off, len));
    std::memcpy(f + OtaWire::kDataHeaderSize, image_.data() + off, len);
    return SendFrame(p.addr, OtaWire::Seal(f, OtaWire::kDataHeaderSize + len));
  }

  bool SendPoll(Peer& p) {
    uint8_t* f = tx_buf_.data();
    f[0] = static_cast<uint8_t>(OtaFrameType::kPoll);
    f[1] = p.xfer;
    return SendFrame(p.addr, OtaWire::Seal(f, OtaWire::kPollSize));
  }

  // Emits at most one frame for this peer if one is due at `now`. Returns true
  // if a frame went out (the pump then stops until the next TransmitDone).
  bool PumpPeer(Peer& p, uint32_t now) {
    switch (p.state) {
      case PeerState::kAnnouncing:
      case PeerState::kAwaitStatus: {
        if (p.ctrl_dt != 0 && !hil::Alarm::Expired(now, p.ctrl_ref, p.ctrl_dt)) {
          return false;
        }
        bool sent = p.state == PeerState::kAnnouncing ? SendAnnounce(p) : SendPoll(p);
        if (sent) {
          ++p.ctrl_retries;
          p.ctrl_ref = now;
          p.ctrl_dt = Backoff(kCtrlTimeout, p.ctrl_retries);
        }
        return sent;
      }
      case PeerState::kSending: {
        // Expired outstanding chunk first: selective retransmit with backoff.
        for (Outstanding& o : p.window) {
          if (hil::Alarm::Expired(now, o.sent_ref, Backoff(kChunkTimeout, o.retries))) {
            if (!SendChunk(p, o.chunk)) {
              return false;
            }
            ++o.retries;
            ++stats_.retransmits;
            o.sent_ref = now;
            return true;
          }
        }
        // Otherwise grow the window with the next never-acked chunk.
        if (p.window.size() >= kWindow) {
          return false;
        }
        uint16_t chunk = p.next_unsent;
        while (chunk < total_chunks_ && (IsAcked(p, chunk) || InWindow(p, chunk))) {
          ++chunk;
        }
        if (chunk >= total_chunks_) {
          return false;  // everything in flight or acked
        }
        if (!SendChunk(p, chunk)) {
          return false;
        }
        p.next_unsent = static_cast<uint16_t>(chunk + 1);
        p.window.push_back(Outstanding{chunk, 1, now});
        return true;
      }
      default:
        return false;
    }
  }

  void Pump(uint32_t now) {
    if (!active_ || tx_busy_ || peers_.empty()) {
      return;
    }
    size_t n = peers_.size();
    for (size_t k = 0; k < n; ++k) {
      size_t i = (rr_cursor_ + k) % n;
      if (PumpPeer(peers_[i], now)) {
        rr_cursor_ = (i + 1) % n;
        return;
      }
    }
  }

  // Gives up on peers whose retry budgets ran dry. Separate from the pump so a
  // peer stuck behind a busy radio is not failed early.
  void SweepTimeouts(uint32_t now) {
    (void)now;
    for (Peer& p : peers_) {
      switch (p.state) {
        case PeerState::kAnnouncing:
        case PeerState::kAwaitStatus:
          if (p.ctrl_retries > kCtrlRetryLimit) {
            FailPeer(p);
          }
          break;
        case PeerState::kSending:
          for (const Outstanding& o : p.window) {
            if (o.retries > kChunkRetryLimit) {
              FailPeer(p);
              break;
            }
          }
          break;
        default:
          break;
      }
    }
  }

  Peer* FindPeer(uint16_t addr) {
    for (Peer& p : peers_) {
      if (p.addr == addr) {
        return &p;
      }
    }
    return nullptr;
  }

  void HandleFrame(const uint8_t* f, uint32_t len) {
    if (!OtaWire::SealIntact(f, len)) {
      // Any corruption — header or payload — degrades to a drop; the same
      // timeout/retry machinery that recovers losses recovers this.
      ++stats_.frame_crc_drops;
      return;
    }
    len -= OtaWire::kCrcTrailer;
    if (len < 2) {
      return;
    }
    switch (static_cast<OtaFrameType>(f[0])) {
      case OtaFrameType::kAck: {
        if (len < OtaWire::kAckSize) {
          return;
        }
        Peer* p = FindPeer(OtaWire::Get16(f + 2));
        if (p == nullptr || f[1] != p->xfer) {
          return;  // stale transfer or unknown subscriber
        }
        ++stats_.acks_received;
        HandleAck(*p, OtaWire::Get16(f + 4), OtaWire::Get32(f + 6));
        return;
      }
      case OtaFrameType::kStatus: {
        if (len < OtaWire::kStatusSize) {
          return;
        }
        Peer* p = FindPeer(OtaWire::Get16(f + 2));
        if (p == nullptr || f[1] != p->xfer) {
          return;
        }
        ++stats_.statuses_received;
        HandleStatus(*p, f[4]);
        return;
      }
      default:
        return;  // gateways ignore announce/data/poll
    }
  }

  void HandleAck(Peer& p, uint16_t next_expected, uint32_t bits) {
    if (p.state == PeerState::kAnnouncing) {
      p.state = PeerState::kSending;
    }
    if (p.state != PeerState::kSending) {
      return;  // late ack after completion
    }
    if (next_expected > p.base) {
      p.base = next_expected;
      p.ack_bits = bits;
    } else if (next_expected == p.base) {
      p.ack_bits |= bits;
    }  // next_expected < base: stale (duplicated/reordered ack) — ignore
    for (size_t i = p.window.size(); i-- > 0;) {
      if (IsAcked(p, p.window[i].chunk)) {
        p.window.erase(p.window.begin() + static_cast<long>(i));
      }
    }
    if (p.base >= total_chunks_) {
      // Fully delivered: poll for the load outcome (first poll after a grace
      // period that covers the subscriber's CRC pass + async verify).
      p.state = PeerState::kAwaitStatus;
      p.window.clear();
      p.ctrl_retries = 0;
      p.ctrl_ref = alarm_.Now();
      p.ctrl_dt = kCtrlTimeout;
    }
  }

  void HandleStatus(Peer& p, uint8_t code) {
    p.last_status = code;
    if (code == OtaWire::kStatusOk) {
      p.state = PeerState::kConverged;
      p.window.clear();
      ++stats_.converged;
      return;
    }
    // Typed rejection (§3.4 stage or image CRC): count it, then either re-push
    // the whole image under a fresh transfer id or spend the last of the budget.
    if (code == OtaWire::kStatusImageCrc) {
      ++stats_.reject_image_crc;
    } else {
      switch (static_cast<LoadError>(code)) {
        case LoadError::kStructural:
        case LoadError::kUnsigned:
          ++stats_.reject_integrity;
          break;
        case LoadError::kAuthenticity:
          ++stats_.reject_authenticity;
          break;
        default:
          ++stats_.reject_other;
          break;
      }
    }
    ++p.image_attempts;
    if (p.image_attempts >= kImageRetryLimit) {
      FailPeer(p);
      return;
    }
    ++stats_.image_repushes;
    BeginTransfer(p, alarm_.Now());
  }

  hil::PacketRadio* radio_;
  VirtualAlarmMux* mux_;
  VirtualAlarm alarm_;
  bool active_ = false;
  bool tx_busy_ = false;
  size_t rr_cursor_ = 0;
  uint8_t next_xfer_ = 1;

  std::vector<uint8_t> image_;
  uint32_t image_crc_ = 0;
  uint16_t total_chunks_ = 0;
  std::vector<Peer> peers_;
  OtaGatewayStats stats_;

  std::array<uint8_t, Radio::kMaxPacket> tx_buf_{};
  std::array<uint8_t, Radio::kMaxPacket> rx_buf_{};
};

}  // namespace tock

#endif  // TOCK_CAPSULE_OTA_GATEWAY_H_
