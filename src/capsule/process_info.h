// ERA: 4
// Process-inspection capsule (driver 0xA0001) and the working demonstration of
// capability-gated privileged APIs (§4.4, Listing 1): restarting a process is a
// privileged kernel operation; this capsule can only offer command 4 because the
// board *chose* to mint and hand it a ProcessManagementCapability. An otherwise
// identical capsule without the token cannot even compile a call to RestartProcess
// (tests/compile_fail/).
//
// Commands: 0 exists | 1 = live process count | 2 = own slot index |
//           3 = own restart count | 4 = restart self (privileged) |
//           5 = read kernel stat (arg1 = StatId, kernel/trace.h) -> Success2U32(lo, hi);
//             an out-of-range id returns SuccessU32(kNumStats) so userspace can
//             discover how many stats this kernel ships (the ABI is append-only) |
//           6 = read own ProcStats field (arg1 = ProcStatField,
//             kernel/cycle_accounting.h) -> Success2U32(lo, hi); out-of-range
//             returns SuccessU32(kNumFields), same discovery idiom. The scheduler
//             work appended fields 7-10 (context switches, timeslice expirations,
//             priority, MLFQ queue level); old userspace keeps reading 0-6, new
//             userspace probes kNumFields and finds the rest.
#ifndef TOCK_CAPSULE_PROCESS_INFO_H_
#define TOCK_CAPSULE_PROCESS_INFO_H_

#include "capsule/driver_nums.h"
#include "kernel/capability.h"
#include "kernel/driver.h"
#include "kernel/kernel.h"

namespace tock {

class ProcessInfoDriver : public SyscallDriver {
 public:
  ProcessInfoDriver(Kernel* kernel, ProcessManagementCapability cap)
      : kernel_(kernel), cap_(cap) {}

  SyscallReturn Command(ProcessId pid, uint32_t command_num, uint32_t arg1,
                        uint32_t arg2) override {
    (void)arg2;
    switch (command_num) {
      case 0:
        return SyscallReturn::Success();
      case 1:
        return SyscallReturn::SuccessU32(static_cast<uint32_t>(kernel_->NumLiveProcesses()));
      case 2:
        return SyscallReturn::SuccessU32(pid.index);
      case 3: {
        Process* p = kernel_->GetLiveProcess(pid);
        return p != nullptr ? SyscallReturn::SuccessU32(p->restart_count)
                            : SyscallReturn::Failure(ErrorCode::kInvalid);
      }
      case 4: {
        // The privileged call: impossible without the minted capability token.
        Result<void> result = kernel_->RestartProcess(pid, cap_);
        return result.ok() ? SyscallReturn::Success() : SyscallReturn::Failure(result.error());
      }
      case 5: {
        // Read-only view of the kernel's event counters (kernel/trace.h). Not
        // privileged: counters are aggregate observability, not process control.
        // Out-of-range ids answer with the stat count instead of failing, so a
        // newer userspace on an older kernel can probe what exists.
        if (arg1 >= static_cast<uint32_t>(StatId::kNumStats)) {
          return SyscallReturn::SuccessU32(static_cast<uint32_t>(StatId::kNumStats));
        }
        uint64_t value = StatValue(kernel_->stats(), static_cast<StatId>(arg1));
        return SyscallReturn::Success2U32(static_cast<uint32_t>(value),
                                          static_cast<uint32_t>(value >> 32));
      }
      case 6: {
        // The caller's own profiling row (kernel/cycle_accounting.h): cycle
        // attribution, high-water marks, restarts. Same discovery idiom as 5.
        if (arg1 >= static_cast<uint32_t>(ProcStatField::kNumFields)) {
          return SyscallReturn::SuccessU32(
              static_cast<uint32_t>(ProcStatField::kNumFields));
        }
        ProcStats stats = kernel_->GetProcStats(pid.index);
        uint64_t value = ProcStatValue(stats, static_cast<ProcStatField>(arg1));
        return SyscallReturn::Success2U32(static_cast<uint32_t>(value),
                                          static_cast<uint32_t>(value >> 32));
      }
      default:
        return SyscallReturn::Failure(ErrorCode::kNoSupport);
    }
  }

 private:
  Kernel* kernel_;
  ProcessManagementCapability cap_;
};

}  // namespace tock

#endif  // TOCK_CAPSULE_PROCESS_INFO_H_
