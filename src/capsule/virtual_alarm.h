// ERA: 5
// Timer virtualization (§4.1's virtualizer example; §5.4's "numerous subtle logic
// bugs" subsystem). One hardware alarm serves any number of VirtualAlarm clients.
//
// The hazards the paper alludes to are all here and handled explicitly:
//   * 32-bit tick wraparound: all comparisons use wrapping (now - reference >= dt);
//   * alarms that expired while we were busy: fired immediately on rearm;
//   * reentrancy: a client's AlarmFired may set a new alarm — expired clients are
//     collected and disarmed *before* any callback runs, and the hardware alarm is
//     re-armed after the whole batch;
//   * near-past references: the mux never arms the hardware in the past.
//
// tests/virtual_alarm_test.cc fuzzes these invariants (E12).
#ifndef TOCK_CAPSULE_VIRTUAL_ALARM_H_
#define TOCK_CAPSULE_VIRTUAL_ALARM_H_

#include "kernel/hil.h"
#include "util/intrusive_list.h"

namespace tock {

class VirtualAlarmMux;

// A per-client alarm handle. Storage is owned by whoever owns the client (board or
// capsule), never allocated by the mux — the heapless discipline of §2.4.
class VirtualAlarm : public hil::Alarm {
 public:
  explicit VirtualAlarm(VirtualAlarmMux* mux) : mux_(mux) {}

  uint32_t Now() override;
  void SetAlarm(uint32_t reference, uint32_t dt) override;
  uint32_t GetAlarm() override { return reference_ + dt_; }
  void Disarm() override;
  bool IsArmed() override { return armed_; }
  void SetClient(hil::AlarmClient* client) override { client_ = client; }

  ListLink<VirtualAlarm> link;

 private:
  friend class VirtualAlarmMux;

  VirtualAlarmMux* mux_;
  hil::AlarmClient* client_ = nullptr;
  uint32_t reference_ = 0;
  uint32_t dt_ = 0;
  bool armed_ = false;
  bool expired_pending_ = false;  // marked during a firing batch
};

class VirtualAlarmMux : public hil::AlarmClient {
 public:
  explicit VirtualAlarmMux(hil::Alarm* hw) : hw_(hw) { hw_->SetClient(this); }

  // Board init: registers a client handle with the mux.
  void AddClient(VirtualAlarm* alarm) { clients_.PushHead(alarm); }

  // Unregisters a client handle. Safe to call from inside an AlarmFired callback
  // (clients removing themselves or each other mid-batch): the firing loop rescans
  // from the list head after every callback instead of holding an iterator.
  void RemoveClient(VirtualAlarm* alarm) {
    clients_.Remove(alarm);
    alarm->armed_ = false;
    if (alarm->expired_pending_) {
      alarm->expired_pending_ = false;
      --pending_count_;
    }
    if (!in_firing_batch_) {
      RearmAfterClear(alarm);
    }
  }

  uint32_t Now() { return hw_->Now(); }

  // hil::AlarmClient (from the hardware alarm).
  void AlarmFired() override;

  // Recomputes and arms the hardware alarm for the earliest pending expiration,
  // using the cached earliest client when it is known to still be the minimum.
  void Rearm();

  uint64_t fired_count() const { return fired_count_; }

  // Host-side instrumentation for the earliest-deadline cache: how many rearms had
  // to rescan every client vs. reused the cached minimum. Tests assert the fast
  // path actually engages; the simulated hardware-call sequence (and thus cycle
  // accounting) is identical on both paths.
  uint64_t rearm_scans() const { return rearm_scans_; }
  uint64_t rearm_fast() const { return rearm_fast_; }

 private:
  friend class VirtualAlarm;

  // Wrapping time-to-expiry at `now`; 0 for an already-expired alarm.
  static uint32_t Remaining(uint32_t now, const VirtualAlarm* alarm) {
    uint32_t elapsed = now - alarm->reference_;
    return elapsed >= alarm->dt_ ? 0 : alarm->dt_ - elapsed;
  }

  // Cache-maintaining rearm entry points. Both read hw_->Now() exactly once, like
  // Rearm() always did — the MMIO tick sequence must not change.
  void RearmAfterSet(VirtualAlarm* changed);    // `changed` was just (re)armed
  void RearmAfterClear(VirtualAlarm* changed);  // `changed` was disarmed/removed
  // Arms the hardware for the earliest deadline, rescanning only when the cache is
  // invalid.
  void FinishRearm(uint32_t now);

  hil::Alarm* hw_;
  IntrusiveList<VirtualAlarm> clients_;
  uint64_t fired_count_ = 0;
  bool in_firing_batch_ = false;

  // Earliest-deadline cache. Invariant while `cache_valid_`: the armed set has not
  // changed in a way that could dethrone `earliest_` since the last full scan —
  // every armed client's remaining time shrinks by the same wall amount (clamping
  // at zero preserves order), so the argmin is stable until an arm/disarm/firing
  // batch touches it. `earliest_ == nullptr` means "no client armed". The pointer
  // is only ever dereferenced while the cache is valid.
  VirtualAlarm* earliest_ = nullptr;
  bool cache_valid_ = false;
  // Clients marked expired in the current firing batch and not yet called back:
  // lets the batch loop stop without a final full rescan that finds nothing.
  size_t pending_count_ = 0;
  uint64_t rearm_scans_ = 0;
  uint64_t rearm_fast_ = 0;
};

}  // namespace tock

#endif  // TOCK_CAPSULE_VIRTUAL_ALARM_H_
