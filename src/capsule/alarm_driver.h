// ERA: 5
// Userspace alarm driver (driver 0x0): exposes the virtual alarm stack to processes.
// Per-process expirations live in a grant (§2.4); one VirtualAlarm serves the whole
// driver, re-armed to the soonest pending userspace deadline.
//
// Commands: 0 exists | 1 ticks-per-second | 2 now | 3 stop |
//           4 set-absolute(reference, dt) | 5 set-relative(dt)
// Subscribe 0: fired upcall, args (now, expiration).
#ifndef TOCK_CAPSULE_ALARM_DRIVER_H_
#define TOCK_CAPSULE_ALARM_DRIVER_H_

#include "capsule/driver_nums.h"
#include "capsule/virtual_alarm.h"
#include "kernel/driver.h"
#include "kernel/grant.h"
#include "kernel/kernel.h"

namespace tock {

class AlarmDriver : public SyscallDriver, public hil::AlarmClient {
 public:
  static constexpr uint32_t kTicksPerSecond = 16'000'000;  // simulated core clock

  AlarmDriver(Kernel* kernel, VirtualAlarm* valarm, const MemoryAllocationCapability& mem_cap)
      : kernel_(kernel), valarm_(valarm), grant_(kernel, mem_cap) {
    valarm_->SetClient(this);
  }

  SyscallReturn Command(ProcessId pid, uint32_t command_num, uint32_t arg1,
                        uint32_t arg2) override;

  // hil::AlarmClient
  void AlarmFired() override;

 private:
  struct AlarmState {
    bool armed = false;
    uint32_t reference = 0;
    uint32_t dt = 0;
  };

  // Re-arms the virtual alarm for the earliest armed process deadline.
  void RearmForProcesses();

  Kernel* kernel_;
  VirtualAlarm* valarm_;
  Grant<AlarmState> grant_;
};

}  // namespace tock

#endif  // TOCK_CAPSULE_ALARM_DRIVER_H_
