// ERA: 5
// UART transmit virtualization: multiple kernel clients (console, logger capsules)
// share one hil::UartTransmit. Each client gets a VirtualUartDevice handle; pending
// transmits queue FIFO in an intrusive list (no allocation), and completions are
// dispatched back to the owning device.
#ifndef TOCK_CAPSULE_VIRTUAL_UART_H_
#define TOCK_CAPSULE_VIRTUAL_UART_H_

#include "kernel/hil.h"
#include "util/cells.h"
#include "util/intrusive_list.h"

namespace tock {

class VirtualUartMux;

class VirtualUartDevice : public hil::UartTransmit {
 public:
  explicit VirtualUartDevice(VirtualUartMux* mux) : mux_(mux) {}

  // hil::UartTransmit
  hil::BufResult Transmit(SubSliceMut buffer) override;
  void SetTransmitClient(hil::UartTransmitClient* client) override { client_ = client; }

  ListLink<VirtualUartDevice> link;

 private:
  friend class VirtualUartMux;

  VirtualUartMux* mux_;
  hil::UartTransmitClient* client_ = nullptr;
  OptionalCell<SubSliceMut> pending_;  // buffer waiting for (or on) the wire
};

class VirtualUartMux : public hil::UartTransmitClient {
 public:
  explicit VirtualUartMux(hil::UartTransmit* hw) : hw_(hw) { hw_->SetTransmitClient(this); }

  void AddDevice(VirtualUartDevice* device) { devices_.PushTail(device); }

  // hil::UartTransmitClient (from hardware)
  void TransmitComplete(SubSliceMut buffer, Result<void> result) override;

 private:
  friend class VirtualUartDevice;

  // Starts the next queued transmit if the wire is free.
  void ServiceQueue();

  hil::UartTransmit* hw_;
  IntrusiveList<VirtualUartDevice> devices_;
  VirtualUartDevice* in_flight_ = nullptr;
};

}  // namespace tock

#endif  // TOCK_CAPSULE_VIRTUAL_UART_H_
