// ERA: 5
// Sensor capsules: RNG (driver 0x40001) and temperature (driver 0x60000).
#ifndef TOCK_CAPSULE_SENSORS_H_
#define TOCK_CAPSULE_SENSORS_H_

#include <algorithm>

#include "capsule/driver_nums.h"
#include "kernel/driver.h"
#include "kernel/hil.h"
#include "kernel/kernel.h"

namespace tock {

// RNG: read-write allow 0 = destination | subscribe 0 = done(bytes) |
// command 1 (n) = fetch n random bytes. One request outstanding at a time.
class RngDriver : public SyscallDriver, public hil::RngClient {
 public:
  RngDriver(Kernel* kernel, hil::RngSource* source) : kernel_(kernel), source_(source) {
    source_->SetRngClient(this);
  }

  SyscallReturn Command(ProcessId pid, uint32_t command_num, uint32_t arg1,
                        uint32_t arg2) override {
    (void)arg2;
    switch (command_num) {
      case 0:
        return SyscallReturn::Success();
      case 1: {
        if (busy_) {
          return SyscallReturn::Failure(ErrorCode::kBusy);
        }
        Result<void> started = source_->FetchRandom();
        if (!started.ok()) {
          return SyscallReturn::Failure(started.error());
        }
        busy_ = true;
        requester_ = pid;
        requested_ = arg1;
        filled_ = 0;
        return SyscallReturn::Success();
      }
      default:
        return SyscallReturn::Failure(ErrorCode::kNoSupport);
    }
  }

  // hil::RngClient: one 32-bit word of entropy per callback.
  void RandomReady(uint32_t value) override {
    if (!busy_) {
      return;
    }
    bool done = false;
    Result<void> access = kernel_->WithReadWriteBuffer(
        requester_, DriverNum::kRng, 0, [&](std::span<uint8_t> dest) {
          uint32_t limit = std::min<uint32_t>(requested_, static_cast<uint32_t>(dest.size()));
          for (unsigned b = 0; b < 4 && filled_ < limit; ++b, ++filled_) {
            dest[filled_] = static_cast<uint8_t>(value >> (8 * b));
          }
          done = filled_ >= limit;
        });
    if (!access.ok()) {
      busy_ = false;  // process died or revoked the buffer; abandon the request
      return;
    }
    if (done) {
      busy_ = false;
      kernel_->ScheduleUpcall(requester_, DriverNum::kRng, 0, filled_, 0, 0);
      return;
    }
    if (!source_->FetchRandom().ok()) {
      busy_ = false;
      kernel_->ScheduleUpcall(requester_, DriverNum::kRng, 0, filled_, 0, 0);
    }
  }

 private:
  Kernel* kernel_;
  hil::RngSource* source_;
  bool busy_ = false;
  ProcessId requester_;
  uint32_t requested_ = 0;
  uint32_t filled_ = 0;
};

// Temperature: subscribe 0 = ready(centi-celsius as signed) | command 1 = sample.
class TempDriver : public SyscallDriver, public hil::TemperatureClient {
 public:
  TempDriver(Kernel* kernel, hil::TemperatureSensor* sensor)
      : kernel_(kernel), sensor_(sensor) {
    sensor_->SetTemperatureClient(this);
  }

  SyscallReturn Command(ProcessId pid, uint32_t command_num, uint32_t arg1,
                        uint32_t arg2) override {
    (void)arg1;
    (void)arg2;
    switch (command_num) {
      case 0:
        return SyscallReturn::Success();
      case 1: {
        if (busy_) {
          return SyscallReturn::Failure(ErrorCode::kBusy);
        }
        Result<void> started = sensor_->SampleTemperature();
        if (!started.ok()) {
          return SyscallReturn::Failure(started.error());
        }
        busy_ = true;
        requester_ = pid;
        return SyscallReturn::Success();
      }
      default:
        return SyscallReturn::Failure(ErrorCode::kNoSupport);
    }
  }

  void TemperatureReady(int32_t centi_celsius) override {
    if (!busy_) {
      return;
    }
    busy_ = false;
    kernel_->ScheduleUpcall(requester_, DriverNum::kTemperature, 0,
                            static_cast<uint32_t>(centi_celsius), 0, 0);
  }

 private:
  Kernel* kernel_;
  hil::TemperatureSensor* sensor_;
  bool busy_ = false;
  ProcessId requester_;
};

}  // namespace tock

#endif  // TOCK_CAPSULE_SENSORS_H_
