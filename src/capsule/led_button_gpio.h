// ERA: 1
// LED (driver 0x2), Button (driver 0x3) and GPIO (driver 0x4) capsules over a GPIO
// controller HIL. Board init decides which pins are LEDs, buttons, or raw GPIO.
#ifndef TOCK_CAPSULE_LED_BUTTON_GPIO_H_
#define TOCK_CAPSULE_LED_BUTTON_GPIO_H_

#include <cstdint>

#include "capsule/driver_nums.h"
#include "kernel/driver.h"
#include "kernel/hil.h"
#include "kernel/kernel.h"
#include "util/static_vec.h"

namespace tock {

// Commands: 0 = LED count | 1 = on(led) | 2 = off(led) | 3 = toggle(led).
class LedDriver : public SyscallDriver {
 public:
  static constexpr size_t kMaxLeds = 8;

  LedDriver(hil::GpioController* gpio, std::initializer_list<unsigned> pins) : gpio_(gpio) {
    for (unsigned pin : pins) {
      pins_.PushBack(pin);
      gpio_->MakeOutput(pin);
      gpio_->SetPin(pin, false);
    }
  }

  SyscallReturn Command(ProcessId pid, uint32_t command_num, uint32_t arg1,
                        uint32_t arg2) override {
    (void)pid;
    (void)arg2;
    if (command_num == 0) {
      return SyscallReturn::SuccessU32(static_cast<uint32_t>(pins_.Size()));
    }
    if (arg1 >= pins_.Size()) {
      return SyscallReturn::Failure(ErrorCode::kInvalid);
    }
    unsigned pin = pins_[arg1];
    switch (command_num) {
      case 1:
        gpio_->SetPin(pin, true);
        return SyscallReturn::Success();
      case 2:
        gpio_->SetPin(pin, false);
        return SyscallReturn::Success();
      case 3:
        gpio_->SetPin(pin, !gpio_->ReadPin(pin));
        return SyscallReturn::Success();
      default:
        return SyscallReturn::Failure(ErrorCode::kNoSupport);
    }
  }

 private:
  hil::GpioController* gpio_;
  StaticVec<unsigned, kMaxLeds> pins_;
};

// Commands: 0 = button count | 1 = enable events(btn) | 2 = disable events(btn) |
// 3 = read(btn). Subscribe 0: (button index, pressed) on every enabled edge. Events
// broadcast to all processes; unsubscribed processes drop them (null upcall).
class ButtonDriver : public SyscallDriver, public hil::GpioInterruptClient {
 public:
  static constexpr size_t kMaxButtons = 8;

  ButtonDriver(Kernel* kernel, hil::GpioController* gpio,
               std::initializer_list<unsigned> pins)
      : kernel_(kernel), gpio_(gpio) {
    for (unsigned pin : pins) {
      pins_.PushBack(pin);
      gpio_->MakeInput(pin);
    }
    gpio_->SetInterruptClient(this);
  }

  SyscallReturn Command(ProcessId pid, uint32_t command_num, uint32_t arg1,
                        uint32_t arg2) override {
    (void)pid;
    (void)arg2;
    if (command_num == 0) {
      return SyscallReturn::SuccessU32(static_cast<uint32_t>(pins_.Size()));
    }
    if (arg1 >= pins_.Size()) {
      return SyscallReturn::Failure(ErrorCode::kInvalid);
    }
    unsigned pin = pins_[arg1];
    switch (command_num) {
      case 1:
        gpio_->EnableInterrupt(pin, hil::GpioEdge::kBoth);
        return SyscallReturn::Success();
      case 2:
        gpio_->DisableInterrupt(pin);
        return SyscallReturn::Success();
      case 3:
        return SyscallReturn::SuccessU32(gpio_->ReadPin(pin) ? 1 : 0);
      default:
        return SyscallReturn::Failure(ErrorCode::kNoSupport);
    }
  }

  // hil::GpioInterruptClient
  void PinInterrupt(unsigned pin, bool level) override {
    for (size_t i = 0; i < pins_.Size(); ++i) {
      if (pins_[i] != pin) {
        continue;
      }
      for (size_t s = 0; s < Kernel::kMaxProcesses; ++s) {
        Process* p = kernel_->process(s);
        if (p != nullptr && p->id.IsValid() && p->IsAlive()) {
          kernel_->ScheduleUpcall(p->id, DriverNum::kButton, 0,
                                  static_cast<uint32_t>(i), level ? 1 : 0, 0);
        }
      }
    }
  }

 private:
  Kernel* kernel_;
  hil::GpioController* gpio_;
  StaticVec<unsigned, kMaxButtons> pins_;
};

// Commands: 0 = pin count | 1 = make output(pin) | 2 = set(pin) | 3 = clear(pin) |
// 4 = toggle(pin) | 5 = make input(pin) | 6 = read(pin).
class GpioDriver : public SyscallDriver {
 public:
  GpioDriver(hil::GpioController* gpio, std::initializer_list<unsigned> pins) : gpio_(gpio) {
    for (unsigned pin : pins) {
      pins_.PushBack(pin);
    }
  }

  SyscallReturn Command(ProcessId pid, uint32_t command_num, uint32_t arg1,
                        uint32_t arg2) override {
    (void)pid;
    (void)arg2;
    if (command_num == 0) {
      return SyscallReturn::SuccessU32(static_cast<uint32_t>(pins_.Size()));
    }
    if (arg1 >= pins_.Size()) {
      return SyscallReturn::Failure(ErrorCode::kInvalid);
    }
    unsigned pin = pins_[arg1];
    switch (command_num) {
      case 1:
        gpio_->MakeOutput(pin);
        return SyscallReturn::Success();
      case 2:
        gpio_->SetPin(pin, true);
        return SyscallReturn::Success();
      case 3:
        gpio_->SetPin(pin, false);
        return SyscallReturn::Success();
      case 4:
        gpio_->SetPin(pin, !gpio_->ReadPin(pin));
        return SyscallReturn::Success();
      case 5:
        gpio_->MakeInput(pin);
        return SyscallReturn::Success();
      case 6:
        return SyscallReturn::SuccessU32(gpio_->ReadPin(pin) ? 1 : 0);
      default:
        return SyscallReturn::Failure(ErrorCode::kNoSupport);
    }
  }

 private:
  hil::GpioController* gpio_;
  StaticVec<unsigned, 16> pins_;
};

}  // namespace tock

#endif  // TOCK_CAPSULE_LED_BUTTON_GPIO_H_
