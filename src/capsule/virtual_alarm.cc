// ERA: 5
#include "capsule/virtual_alarm.h"

namespace tock {

uint32_t VirtualAlarm::Now() { return mux_->Now(); }

void VirtualAlarm::SetAlarm(uint32_t reference, uint32_t dt) {
  reference_ = reference;
  dt_ = dt;
  armed_ = true;
  if (!mux_->in_firing_batch_) {
    mux_->RearmAfterSet(this);
  }
  // During a firing batch the mux rearms once, after all callbacks — a client
  // re-arming from inside AlarmFired must not trigger recursive rearms. (The
  // earliest-deadline cache is invalid for the whole batch, so no maintenance is
  // needed here either; the post-batch rearm rescans.)
}

void VirtualAlarm::Disarm() {
  armed_ = false;
  if (!mux_->in_firing_batch_) {
    mux_->RearmAfterClear(this);
  }
}

void VirtualAlarmMux::AlarmFired() {
  uint32_t now = hw_->Now();

  // The firing batch rewrites the armed set wholesale; drop the earliest-deadline
  // cache for the duration and rebuild it in the final rearm.
  cache_valid_ = false;
  earliest_ = nullptr;

  // Phase 1: collect. Mark every expired client and disarm it before running any
  // callback, so a callback that inspects or re-arms its own (or another) alarm sees
  // consistent state.
  for (VirtualAlarm* alarm : clients_) {
    if (alarm->armed_ && hil::Alarm::Expired(now, alarm->reference_, alarm->dt_)) {
      alarm->armed_ = false;
      alarm->expired_pending_ = true;
      ++pending_count_;
    }
  }

  // Phase 2: fire. Callbacks may call SetAlarm/Disarm — and AddClient/RemoveClient —
  // freely; rearming is deferred. Holding an iterator across a callback is the §5.4
  // "subtle logic bug": a callback that unregisters itself (or any client) rewrites
  // the links the iterator is standing on. Instead, rescan from the head for the
  // first still-pending client after every callback. The pending count (maintained
  // here and by RemoveClient) bounds the loop, and lets it stop without one last
  // full scan that would only confirm nothing is left.
  in_firing_batch_ = true;
  while (pending_count_ > 0) {
    VirtualAlarm* pending = nullptr;
    for (VirtualAlarm* alarm : clients_) {
      if (alarm->expired_pending_) {
        pending = alarm;
        break;
      }
    }
    if (pending == nullptr) {
      pending_count_ = 0;  // unreachable: the count tracks flags exactly
      break;
    }
    pending->expired_pending_ = false;
    --pending_count_;
    ++fired_count_;
    if (pending->client_ != nullptr) {
      pending->client_->AlarmFired();
    }
  }
  in_firing_batch_ = false;

  // Phase 3: one rearm for whatever is now the earliest deadline. The cache was
  // invalidated above, so this is always a full scan — matching the old behavior
  // exactly on the one path where the armed set really did change arbitrarily.
  Rearm();
}

void VirtualAlarmMux::RearmAfterSet(VirtualAlarm* changed) {
  uint32_t now = hw_->Now();
  if (cache_valid_) {
    if (earliest_ == nullptr) {
      // Nothing was armed; the new arrival is trivially the minimum.
      earliest_ = changed;
    } else if (changed == earliest_) {
      // The minimum itself moved. Earlier would keep it the minimum, later would
      // promote an unknown runner-up; distinguishing them costs the scan either
      // way, so just invalidate.
      cache_valid_ = false;
    } else if (Remaining(now, changed) < Remaining(now, earliest_)) {
      earliest_ = changed;
    }
    // Ties keep the incumbent: the armed value is identical either way.
  }
  FinishRearm(now);
}

void VirtualAlarmMux::RearmAfterClear(VirtualAlarm* changed) {
  if (cache_valid_ && changed == earliest_) {
    cache_valid_ = false;  // the minimum left; the runner-up is unknown
  }
  // Disarming any other client cannot change the minimum. Note the hardware is
  // still rearmed unconditionally (same MMIO sequence as always) — only the
  // host-side scan is skipped.
  FinishRearm(hw_->Now());
}

void VirtualAlarmMux::Rearm() { FinishRearm(hw_->Now()); }

void VirtualAlarmMux::FinishRearm(uint32_t now) {
  if (!cache_valid_) {
    ++rearm_scans_;
    earliest_ = nullptr;
    uint32_t min_remaining = 0;
    for (VirtualAlarm* alarm : clients_) {
      if (!alarm->armed_) {
        continue;
      }
      // Wrapping remaining time; an already-expired alarm has remaining 0 and must
      // fire as soon as the hardware allows.
      uint32_t remaining = Remaining(now, alarm);
      if (earliest_ == nullptr || remaining < min_remaining) {
        min_remaining = remaining;
        earliest_ = alarm;
      }
    }
    cache_valid_ = true;
  } else {
    ++rearm_fast_;
  }

  if (earliest_ != nullptr) {
    uint32_t remaining = Remaining(now, earliest_);
    hw_->SetAlarm(now, remaining);
    if (remaining == 0) {
      // An already-due (or future-referenced, §"near-past" hazard) minimum is the
      // one case where a client's remaining time can *grow* as the clock advances,
      // which would let the cached argmin go stale. The hardware fires within
      // kMinDt of this arming; until its AlarmFired rebuilds the cache, fall back
      // to full scans. While every deadline is strictly in the future — the common
      // case — remaining times shrink in lockstep and the cache stays sound.
      cache_valid_ = false;
    }
  } else if (hw_->IsArmed()) {
    hw_->Disarm();
  }
}

}  // namespace tock
