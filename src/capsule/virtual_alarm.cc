// ERA: 5
#include "capsule/virtual_alarm.h"

namespace tock {

uint32_t VirtualAlarm::Now() { return mux_->Now(); }

void VirtualAlarm::SetAlarm(uint32_t reference, uint32_t dt) {
  reference_ = reference;
  dt_ = dt;
  armed_ = true;
  if (!mux_->in_firing_batch_) {
    mux_->Rearm();
  }
  // During a firing batch the mux rearms once, after all callbacks — a client
  // re-arming from inside AlarmFired must not trigger recursive rearms.
}

void VirtualAlarm::Disarm() {
  armed_ = false;
  if (!mux_->in_firing_batch_) {
    mux_->Rearm();
  }
}

void VirtualAlarmMux::AlarmFired() {
  uint32_t now = hw_->Now();

  // Phase 1: collect. Mark every expired client and disarm it before running any
  // callback, so a callback that inspects or re-arms its own (or another) alarm sees
  // consistent state.
  for (VirtualAlarm* alarm : clients_) {
    if (alarm->armed_ && hil::Alarm::Expired(now, alarm->reference_, alarm->dt_)) {
      alarm->armed_ = false;
      alarm->expired_pending_ = true;
    }
  }

  // Phase 2: fire. Callbacks may call SetAlarm/Disarm — and AddClient/RemoveClient —
  // freely; rearming is deferred. Holding an iterator across a callback is the §5.4
  // "subtle logic bug": a callback that unregisters itself (or any client) rewrites
  // the links the iterator is standing on. Instead, rescan from the head for the
  // first still-pending client after every callback. Each callback clears one
  // pending flag before running, so the loop terminates; clients removed mid-batch
  // have their flag cleared by RemoveClient and are simply never found.
  in_firing_batch_ = true;
  for (;;) {
    VirtualAlarm* pending = nullptr;
    for (VirtualAlarm* alarm : clients_) {
      if (alarm->expired_pending_) {
        pending = alarm;
        break;
      }
    }
    if (pending == nullptr) {
      break;
    }
    pending->expired_pending_ = false;
    ++fired_count_;
    if (pending->client_ != nullptr) {
      pending->client_->AlarmFired();
    }
  }
  in_firing_batch_ = false;

  // Phase 3: one rearm for whatever is now the earliest deadline.
  Rearm();
}

void VirtualAlarmMux::Rearm() {
  uint32_t now = hw_->Now();
  bool any = false;
  uint32_t min_remaining = 0;

  for (VirtualAlarm* alarm : clients_) {
    if (!alarm->armed_) {
      continue;
    }
    // Wrapping remaining time; an already-expired alarm has remaining 0 and must
    // fire as soon as the hardware allows.
    uint32_t elapsed = now - alarm->reference_;
    uint32_t remaining = elapsed >= alarm->dt_ ? 0 : alarm->dt_ - elapsed;
    if (!any || remaining < min_remaining) {
      min_remaining = remaining;
      any = true;
    }
  }

  if (any) {
    hw_->SetAlarm(now, min_remaining);
  } else if (hw_->IsArmed()) {
    hw_->Disarm();
  }
}

}  // namespace tock
