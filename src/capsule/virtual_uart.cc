// ERA: 5
#include "capsule/virtual_uart.h"

namespace tock {

hil::BufResult VirtualUartDevice::Transmit(SubSliceMut buffer) {
  if (pending_.IsSome()) {
    return hil::Refused(ErrorCode::kBusy, buffer);
  }
  pending_.Set(buffer);
  mux_->ServiceQueue();
  return hil::Started();
}

void VirtualUartMux::ServiceQueue() {
  if (in_flight_ != nullptr) {
    return;  // wire busy; completion will re-enter
  }
  for (VirtualUartDevice* device : devices_) {
    if (device->pending_.IsNone()) {
      continue;
    }
    auto buffer = device->pending_.Take();
    hil::BufResult started = hw_->Transmit(*buffer);
    if (started.has_value()) {
      // Hardware refused (shouldn't happen when we track in_flight_, but a chip
      // driver may have other internal users). Put the buffer back and stop.
      device->pending_.Set(started->buffer);
      return;
    }
    in_flight_ = device;
    return;
  }
}

void VirtualUartMux::TransmitComplete(SubSliceMut buffer, Result<void> result) {
  VirtualUartDevice* device = in_flight_;
  in_flight_ = nullptr;
  if (device != nullptr && device->client_ != nullptr) {
    device->client_->TransmitComplete(buffer, result);
  }
  // The completion callback may have queued a fresh transmit on any device.
  ServiceQueue();
}

}  // namespace tock
