// ERA: 5
// Process console (upstream `process_console`): a tiny kernel shell on its own UART
// for inspecting and managing processes in the field. It is also the showcase for
// capability-gated management from capsule code (§4.4): `stop`/`start` work only
// because the board minted this capsule a ProcessManagementCapability.
//
// Commands (newline-terminated): help | list | stop <idx> | start <idx> |
// stats (kernel event counters, kernel/trace.h) | trace (last few trace events) |
// faults (per-process fault policy, restart budget, and last recorded fault) |
// prof (per-process cycle attribution & high-water marks, kernel/cycle_accounting.h) |
// hist (latency histogram summaries, util/log2_hist.h) |
// sched (active policy, per-process priority/queue level/timeslice expirations/
// context switches, kernel/scheduler.h) |
// loads (ProcessLoader ledger: per-image §3.4 outcome with LoadErrorName — the
// field-debug view of OTA updates that were rejected and why)
#ifndef TOCK_CAPSULE_PROCESS_CONSOLE_H_
#define TOCK_CAPSULE_PROCESS_CONSOLE_H_

#include <array>
#include <cstdio>
#include <cstring>

#include "kernel/capability.h"
#include "kernel/hil.h"
#include "kernel/kernel.h"
#include "kernel/process_loader.h"
#include "util/cells.h"

namespace tock {

class ProcessConsole : public hil::UartReceiveClient, public hil::UartTransmitClient {
 public:
  ProcessConsole(Kernel* kernel, hil::UartTransmit* tx, hil::UartReceive* rx,
                 SubSliceMut tx_buffer, SubSliceMut rx_buffer,
                 ProcessManagementCapability cap)
      : kernel_(kernel), tx_(tx), rx_(rx), tx_buffer_(tx_buffer), rx_buffer_(rx_buffer),
        cap_(cap) {
    tx_->SetTransmitClient(this);
    rx_->SetReceiveClient(this);
  }

  // Board init: begins listening (byte at a time, as upstream does).
  void Start() { ArmReceive(); }

  // Board init: wires the loader ledger behind the `loads` command.
  void SetLoader(ProcessLoader* loader) { loader_ = loader; }

  // hil::UartReceiveClient ---------------------------------------------------------
  void ReceiveComplete(SubSliceMut buffer, uint32_t received, Result<void> result) override {
    if (result.ok() && received == 1) {
      char c = static_cast<char>(buffer[0]);
      if (c == '\n' || c == '\r') {
        line_[line_len_] = '\0';
        ExecuteLine();
        line_len_ = 0;
      } else if (line_len_ + 1 < line_.size()) {
        line_[line_len_++] = c;
      }
    }
    buffer.Reset();
    rx_buffer_.Set(buffer);
    ArmReceive();
  }

  // hil::UartTransmitClient ----------------------------------------------------------
  void TransmitComplete(SubSliceMut buffer, Result<void> result) override {
    (void)result;
    buffer.Reset();
    tx_buffer_.Set(buffer);
  }

 private:
  void ArmReceive() {
    if (auto buffer = rx_buffer_.Take()) {
      buffer->Reset();
      buffer->SliceTo(1);
      hil::BufResult armed = rx_->Receive(*buffer);
      if (armed.has_value()) {
        rx_buffer_.Set(armed->buffer);
      }
    }
  }

  // Formats into the tx buffer and transmits. If a transmit is in flight the output
  // is dropped (a shell, not a log pipeline — matches upstream's best-effort).
  void Emit(const char* text) {
    auto buffer = tx_buffer_.Take();
    if (!buffer.has_value()) {
      return;
    }
    buffer->Reset();
    size_t len = std::min(std::strlen(text), buffer->Capacity());
    std::memcpy(buffer->Active().data(), text, len);
    buffer->SliceTo(len);
    hil::BufResult started = tx_->Transmit(*buffer);
    if (started.has_value()) {
      SubSliceMut returned = started->buffer;
      returned.Reset();
      tx_buffer_.Set(returned);
    }
  }

  void ExecuteLine() {
    char out[512];
    if (std::strcmp(line_.data(), "help") == 0) {
      Emit("commands: help list loads stats trace faults prof hist sched stop <idx> "
           "start <idx>\n");
      return;
    }
    if (std::strcmp(line_.data(), "loads") == 0) {
      if (loader_ == nullptr) {
        Emit("no loader wired\n");
        return;
      }
      size_t pos = static_cast<size_t>(std::snprintf(
          out, sizeof(out), "created %d rejected %d\n addr     name      outcome\n",
          loader_->created_count(), loader_->rejected_count()));
      for (const ProcessLoader::LoadRecord& r : loader_->records()) {
        if (pos >= sizeof(out) - 96) {
          break;
        }
        pos += static_cast<size_t>(std::snprintf(
            out + pos, sizeof(out) - pos, " %08lx %-9s %s%s%s%s%s\n",
            (unsigned long)r.flash_addr, r.name.c_str(),
            r.created ? "created" : LoadErrorName(r.error), r.verified ? " verified" : "",
            r.reject_reason != nullptr ? " (" : "",
            r.reject_reason != nullptr ? r.reject_reason : "",
            r.reject_reason != nullptr ? ")" : ""));
      }
      Emit(out);
      return;
    }
    if (std::strcmp(line_.data(), "stats") == 0) {
      // Compact counter digest; the full table is Kernel::trace().DumpStats().
      const KernelStats& s = kernel_->stats();
      std::snprintf(out, sizeof(out),
                    "syscalls %llu  ctxsw %llu  mpu %llu  irq %llu  deferred %llu\n"
                    "upcalls q %llu d %llu s %llu x %llu  grants %llu/%lluB\n"
                    "sleep %llu cycles in %llu entries\n"
                    "telemetry %llu emitted %llu dropped %llu suppressed\n"
                    "vm blocks %llu built %llu inval  chain %llu  cache %lluB\n"
                    "mem resident %lluB  idle skips %llu\n",
                    (unsigned long long)s.SyscallsTotal(),
                    (unsigned long long)s.context_switches,
                    (unsigned long long)s.mpu_reprograms,
                    (unsigned long long)s.irq_dispatches,
                    (unsigned long long)s.deferred_calls_run,
                    (unsigned long long)s.upcalls_queued,
                    (unsigned long long)s.upcalls_delivered,
                    (unsigned long long)s.upcalls_scrubbed,
                    (unsigned long long)s.upcalls_dropped,
                    (unsigned long long)s.grant_allocs, (unsigned long long)s.grant_bytes,
                    (unsigned long long)s.sleep_cycles,
                    (unsigned long long)s.sleep_entries,
                    (unsigned long long)s.telemetry_events_emitted,
                    (unsigned long long)s.telemetry_events_dropped,
                    (unsigned long long)s.telemetry_suppressed,
                    (unsigned long long)s.vm_blocks_built,
                    (unsigned long long)s.vm_blocks_invalidated,
                    (unsigned long long)s.vm_block_chain_hits,
                    (unsigned long long)s.vm_cache_bytes,
                    (unsigned long long)s.mem_resident_bytes,
                    (unsigned long long)s.fleet_idle_skips);
      Emit(out);
      return;
    }
    if (std::strcmp(line_.data(), "trace") == 0) {
      const auto& ring = kernel_->trace().events();
      size_t start = ring.Size() > 8 ? ring.Size() - 8 : 0;  // what fits a tx buffer
      size_t pos = 0;
      for (size_t i = start; i < ring.Size() && pos < sizeof(out) - 48; ++i) {
        const TraceEvent& e = ring[i];
        pos += static_cast<size_t>(std::snprintf(
            out + pos, sizeof(out) - pos, "[%llu] %s pid=%d arg=%lu\n",
            (unsigned long long)e.cycle, TraceEventKindName(e.kind),
            e.pid == KernelTrace::kNoPid ? -1 : static_cast<int>(e.pid),
            (unsigned long)e.arg));
      }
      Emit(pos == 0 ? "trace empty\n" : out);
      return;
    }
    if (std::strcmp(line_.data(), "list") == 0) {
      size_t pos = static_cast<size_t>(
          std::snprintf(out, sizeof(out), " idx name      state      syscalls\n"));
      for (size_t i = 0; i < Kernel::kMaxProcesses && pos < sizeof(out) - 64; ++i) {
        Process* p = kernel_->process(i);
        if (p == nullptr || !p->id.IsValid()) {
          continue;
        }
        pos += static_cast<size_t>(std::snprintf(
            out + pos, sizeof(out) - pos, " %3zu %-9s %-10s %llu\n", i, p->name.c_str(),
            ProcessStateName(p->state), (unsigned long long)p->syscall_count));
      }
      Emit(out);
      return;
    }
    if (std::strcmp(line_.data(), "faults") == 0) {
      size_t pos = static_cast<size_t>(
          std::snprintf(out, sizeof(out), " idx name      policy  rst state      last fault\n"));
      for (size_t i = 0; i < Kernel::kMaxProcesses && pos < sizeof(out) - 96; ++i) {
        Process* p = kernel_->process(i);
        if (p == nullptr || !p->id.IsValid()) {
          continue;
        }
        pos += static_cast<size_t>(std::snprintf(
            out + pos, sizeof(out) - pos, " %3zu %-9s %-7s %3lu/%lu %-10s ", i,
            p->name.c_str(), FaultActionName(p->fault_policy.action),
            (unsigned long)p->restart_count, (unsigned long)p->fault_policy.max_restarts,
            ProcessStateName(p->state)));
        if (p->fault_info.vm_fault.kind != VmFault::Kind::kNone) {
          pos += static_cast<size_t>(std::snprintf(
              out + pos, sizeof(out) - pos, "%s pc=%lx @%llu",
              FaultCauseName(FaultCauseArg(p->fault_info.vm_fault)),
              (unsigned long)p->fault_info.vm_fault.pc,
              (unsigned long long)p->fault_info.at_cycle));
        } else {
          pos += static_cast<size_t>(std::snprintf(out + pos, sizeof(out) - pos, "-"));
        }
        if (p->state == ProcessState::kRestartPending) {
          pos += static_cast<size_t>(
              std::snprintf(out + pos, sizeof(out) - pos, " revive@%llu",
                            (unsigned long long)p->restart_due_cycle));
        }
        pos += static_cast<size_t>(std::snprintf(out + pos, sizeof(out) - pos, "\n"));
      }
      Emit(out);
      return;
    }
    if (std::strcmp(line_.data(), "prof") == 0) {
      size_t pos = static_cast<size_t>(std::snprintf(
          out, sizeof(out), " idx name      user      service   sys    up   grant  qmax\n"));
      for (size_t i = 0; i < Kernel::kMaxProcesses && pos < sizeof(out) - 80; ++i) {
        Process* p = kernel_->process(i);
        if (p == nullptr || !p->id.IsValid()) {
          continue;
        }
        ProcStats ps = kernel_->GetProcStats(i);
        pos += static_cast<size_t>(std::snprintf(
            out + pos, sizeof(out) - pos,
            " %3zu %-9s %-9llu %-9llu %-6llu %-4llu %-6llu %llu\n", i, p->name.c_str(),
            (unsigned long long)ps.user_cycles, (unsigned long long)ps.service_cycles,
            (unsigned long long)ps.syscalls, (unsigned long long)ps.upcalls,
            (unsigned long long)ps.grant_high_water,
            (unsigned long long)ps.upcall_queue_max));
      }
      Emit(out);
      return;
    }
    if (std::strcmp(line_.data(), "sched") == 0) {
      size_t pos = static_cast<size_t>(std::snprintf(
          out, sizeof(out), "policy %s  ctxsw %llu\n idx name      pri lvl tsexp  ctxsw\n",
          SchedulerPolicyName(kernel_->scheduler_policy()),
          (unsigned long long)kernel_->stats().context_switches));
      for (size_t i = 0; i < Kernel::kMaxProcesses && pos < sizeof(out) - 64; ++i) {
        Process* p = kernel_->process(i);
        if (p == nullptr || !p->id.IsValid()) {
          continue;
        }
        pos += static_cast<size_t>(std::snprintf(
            out + pos, sizeof(out) - pos, " %3zu %-9s %3u %3lu %-6llu %llu\n", i,
            p->name.c_str(), static_cast<unsigned>(p->priority),
            (unsigned long)p->queue_level, (unsigned long long)p->timeslice_expirations,
            (unsigned long long)p->context_switches));
      }
      Emit(out);
      return;
    }
    if (std::strcmp(line_.data(), "hist") == 0) {
      // Summary lines only: the full bucket breakdown is Kernel::trace().DumpHists(),
      // which does not fit a 512-byte tx buffer.
      const KernelTrace& t = kernel_->trace();
      size_t pos = 0;
      const struct {
        const char* name;
        const Log2Hist* hist;
      } rows[] = {{"syscall", &t.syscall_hist()},
                  {"irq2up", &t.irq_upcall_hist()},
                  {"roundtrip", &t.command_roundtrip_hist()}};
      for (const auto& row : rows) {
        pos += static_cast<size_t>(std::snprintf(
            out + pos, sizeof(out) - pos,
            "%-9s n=%llu min=%llu max=%llu mean=%llu\n", row.name,
            (unsigned long long)row.hist->count(), (unsigned long long)row.hist->min(),
            (unsigned long long)row.hist->max(), (unsigned long long)row.hist->Mean()));
      }
      Emit(out);
      return;
    }
    if (std::strncmp(line_.data(), "stop ", 5) == 0 ||
        std::strncmp(line_.data(), "start ", 6) == 0) {
      bool stop = line_[2] == 'o';  // st[o]p vs st[a]rt
      int idx = std::atoi(line_.data() + (stop ? 5 : 6));
      Process* p = kernel_->process(static_cast<size_t>(idx));
      if (p == nullptr || !p->id.IsValid()) {
        Emit("no such process\n");
        return;
      }
      Result<void> result = stop ? kernel_->StopProcess(p->id, cap_)
                                 : kernel_->RestartProcess(p->id, cap_);
      std::snprintf(out, sizeof(out), "%s %d: %s\n", stop ? "stop" : "start", idx,
                    result.ok() ? "ok" : ErrorCodeName(result.error()));
      Emit(out);
      return;
    }
    if (line_len_ > 0) {
      Emit("unknown command (try 'help')\n");
    }
  }

  Kernel* kernel_;
  ProcessLoader* loader_ = nullptr;
  hil::UartTransmit* tx_;
  hil::UartReceive* rx_;
  OptionalCell<SubSliceMut> tx_buffer_;
  OptionalCell<SubSliceMut> rx_buffer_;
  ProcessManagementCapability cap_;
  std::array<char, 64> line_{};
  size_t line_len_ = 0;
};

}  // namespace tock

#endif  // TOCK_CAPSULE_PROCESS_CONSOLE_H_
