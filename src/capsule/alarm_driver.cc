// ERA: 5
#include "capsule/alarm_driver.h"

namespace tock {

SyscallReturn AlarmDriver::Command(ProcessId pid, uint32_t command_num, uint32_t arg1,
                                   uint32_t arg2) {
  switch (command_num) {
    case 0:
      return SyscallReturn::Success();
    case 1:
      return SyscallReturn::SuccessU32(kTicksPerSecond);
    case 2:
      return SyscallReturn::SuccessU32(valarm_->Now());
    case 3: {  // stop
      bool was_armed = false;
      grant_.Enter(pid, [&](AlarmState& state) {
        was_armed = state.armed;
        state.armed = false;
      });
      RearmForProcesses();
      return was_armed ? SyscallReturn::Success()
                       : SyscallReturn::Failure(ErrorCode::kAlready);
    }
    case 4:    // set absolute (reference, dt)
    case 5: {  // set relative (dt)
      uint32_t reference = command_num == 4 ? arg1 : valarm_->Now();
      uint32_t dt = command_num == 4 ? arg2 : arg1;
      bool ok = false;
      grant_.Enter(pid, [&](AlarmState& state) {
        state.armed = true;
        state.reference = reference;
        state.dt = dt;
        ok = true;
      });
      if (!ok) {
        return SyscallReturn::Failure(ErrorCode::kNoMem);
      }
      RearmForProcesses();
      return SyscallReturn::SuccessU32(reference + dt);
    }
    default:
      return SyscallReturn::Failure(ErrorCode::kNoSupport);
  }
}

void AlarmDriver::AlarmFired() {
  uint32_t now = valarm_->Now();
  // Deliver to every process whose deadline passed, then re-arm for the remainder.
  for (size_t i = 0; i < Kernel::kMaxProcesses; ++i) {
    Process* p = kernel_->process(i);
    if (p == nullptr || !p->id.IsValid() || !p->IsAlive()) {
      continue;
    }
    grant_.Enter(p->id, [&](AlarmState& state) {
      if (state.armed && hil::Alarm::Expired(now, state.reference, state.dt)) {
        state.armed = false;
        kernel_->ScheduleUpcall(p->id, DriverNum::kAlarm, 0, now, state.reference + state.dt,
                                0);
      }
    });
  }
  RearmForProcesses();
}

void AlarmDriver::RearmForProcesses() {
  uint32_t now = valarm_->Now();
  bool any = false;
  uint32_t min_remaining = 0;

  for (size_t i = 0; i < Kernel::kMaxProcesses; ++i) {
    Process* p = kernel_->process(i);
    if (p == nullptr || !p->id.IsValid() || !p->IsAlive()) {
      continue;
    }
    grant_.Enter(p->id, [&](AlarmState& state) {
      if (!state.armed) {
        return;
      }
      uint32_t elapsed = now - state.reference;
      uint32_t remaining = elapsed >= state.dt ? 0 : state.dt - elapsed;
      if (!any || remaining < min_remaining) {
        min_remaining = remaining;
        any = true;
      }
    });
  }

  if (any) {
    valarm_->SetAlarm(now, min_remaining);
  } else if (valarm_->IsArmed()) {
    valarm_->Disarm();
  }
}

}  // namespace tock
