// ERA: 2
// Wire format of the OTA signed-app distribution protocol (§3.4 deployment
// story): a gateway board chunks a signed TBF image into radio frames; each
// subscriber reassembles into a flash staging region, verifies a whole-image
// CRC, and hands the region to ProcessLoader::LoadOneAsync.
//
// All integers little-endian. Every frame starts with
//   [0] frame type (OtaFrameType)
//   [1] transfer id — bumped by the gateway on every (re)push, so stale frames
//       from an abandoned transfer are recognised and ignored.
//
// Frame bodies:
//   kAnnounce  [2..3] total_chunks  [4..7] image_size  [8..11] image_crc
//              [12..13] gateway addr                                  (14 B)
//   kData      [2..3] chunk index   [4..5] data len    [6..9] chunk crc
//              [10..] data (kChunkData max)                     (10+len B)
//   kAck       [2..3] subscriber addr  [4..5] next expected chunk
//              [6..9] selective bitmap (chunks next+1 .. next+32)     (10 B)
//   kStatus    [2..3] subscriber addr  [4] status code                 (5 B)
//   kPoll      (header only — gateway asks a subscriber to re-send kStatus)
//
// Every frame additionally ends in a 4-byte CRC32 over everything before it —
// the frame check sequence. A corrupted frame (any byte, header or payload) is
// indistinguishable from a dropped one at the receiver, so the retry/backoff
// plane that recovers losses recovers corruption too. Without it a flipped bit
// in a control frame is catastrophic: a kStatus(ok) whose code byte corrupts
// into a rejection makes the gateway re-push a converged subscriber, loading
// the update twice. The per-chunk CRC in kData stays as the end-to-end check on
// the staged bytes themselves.
//
// kAck/kStatus carry the subscriber address explicitly because the capsule-level
// receive path sees only the payload, not the radio header.
#ifndef TOCK_CAPSULE_OTA_PROTOCOL_H_
#define TOCK_CAPSULE_OTA_PROTOCOL_H_

#include <cstddef>
#include <cstdint>

#include "util/crc32.h"

namespace tock {

enum class OtaFrameType : uint8_t {
  kAnnounce = 1,
  kData = 2,
  kAck = 3,
  kStatus = 4,
  kPoll = 5,
};

struct OtaWire {
  // Payload bytes per kData frame. 128 keeps the whole frame (138 B) well under
  // Radio::kMaxPacket while amortising the 8-byte on-air framing overhead.
  static constexpr size_t kChunkData = 128;

  // Body sizes, excluding the kCrcTrailer every frame ends with.
  static constexpr size_t kAnnounceSize = 14;
  static constexpr size_t kDataHeaderSize = 10;
  static constexpr size_t kAckSize = 10;
  static constexpr size_t kStatusSize = 5;
  static constexpr size_t kPollSize = 2;
  static constexpr size_t kCrcTrailer = 4;

  // kStatus codes. Values below 0xF0 are a ProcessLoader LoadError cast to
  // uint8_t (0 == LoadError::kNone == signed update loaded and running).
  static constexpr uint8_t kStatusOk = 0;
  static constexpr uint8_t kStatusImageCrc = 0xFE;  // reassembled image CRC mismatch

  static void Put16(uint8_t* p, uint16_t v) {
    p[0] = static_cast<uint8_t>(v);
    p[1] = static_cast<uint8_t>(v >> 8);
  }
  static uint16_t Get16(const uint8_t* p) {
    return static_cast<uint16_t>(p[0] | (static_cast<uint16_t>(p[1]) << 8));
  }
  static void Put32(uint8_t* p, uint32_t v) {
    p[0] = static_cast<uint8_t>(v);
    p[1] = static_cast<uint8_t>(v >> 8);
    p[2] = static_cast<uint8_t>(v >> 16);
    p[3] = static_cast<uint8_t>(v >> 24);
  }
  static uint32_t Get32(const uint8_t* p) {
    return static_cast<uint32_t>(p[0]) | (static_cast<uint32_t>(p[1]) << 8) |
           (static_cast<uint32_t>(p[2]) << 16) | (static_cast<uint32_t>(p[3]) << 24);
  }

  // Appends the frame check sequence over `body` bytes; returns the on-air size.
  static size_t Seal(uint8_t* f, size_t body) {
    Put32(f + body, Crc32::Compute(f, body));
    return body + kCrcTrailer;
  }
  // Verifies the trailer; a frame that fails is treated exactly like a drop.
  static bool SealIntact(const uint8_t* f, uint32_t len) {
    return len > kCrcTrailer &&
           Crc32::Compute(f, len - kCrcTrailer) == Get32(f + len - kCrcTrailer);
  }
};

}  // namespace tock

#endif  // TOCK_CAPSULE_OTA_PROTOCOL_H_
