// ERA: 5
// Nonvolatile storage capsule (driver 0x50001, mirroring upstream
// `nonvolatile_storage_driver`): gives each process access to a byte-addressed
// window of flash through the split-phase flash HIL. This is the §2.1 motivating
// stack in miniature — a storage driver above an asynchronous flash controller,
// connected by circular references and completion callbacks.
//
//   read-write allow 0 = read destination | read-only allow 1 = write source
//   subscribe 0 = read done(len) | subscribe 1 = write done(len)
//   command 1 (offset, len) = read | command 2 (offset, len) = write |
//   command 3 = storage size
//
// All processes share one region in this implementation (upstream offers both
// shared and per-app modes); offsets are bounds-checked against it.
#ifndef TOCK_CAPSULE_NONVOLATILE_STORAGE_H_
#define TOCK_CAPSULE_NONVOLATILE_STORAGE_H_

#include <algorithm>

#include "kernel/driver.h"
#include "kernel/hil.h"
#include "kernel/kernel.h"
#include "util/cells.h"

namespace tock {

struct NvStorageDriverNum {
  static constexpr uint32_t kValue = 0x50001;
};

class NonvolatileStorage : public SyscallDriver, public hil::FlashClient {
 public:
  // `region_start`/`region_size`: the flash window userspace may touch. The board
  // carves this from space the kernel and apps don't use.
  NonvolatileStorage(Kernel* kernel, hil::FlashStorage* flash, uint32_t region_start,
                     uint32_t region_size, SubSliceMut buffer)
      : kernel_(kernel),
        flash_(flash),
        region_start_(region_start),
        region_size_(region_size),
        buffer_(buffer) {
    flash_->SetFlashClient(this);
  }

  SyscallReturn Command(ProcessId pid, uint32_t command_num, uint32_t arg1,
                        uint32_t arg2) override {
    switch (command_num) {
      case 0:
        return SyscallReturn::Success();
      case 3:
        return SyscallReturn::SuccessU32(region_size_);
      case 1:  // read(offset, len) into read-write allow 0
        return StartRead(pid, arg1, arg2);
      case 2:  // write(offset, len) from read-only allow 1
        return StartWrite(pid, arg1, arg2);
      default:
        return SyscallReturn::Failure(ErrorCode::kNoSupport);
    }
  }

  // hil::FlashClient ------------------------------------------------------------------
  void WriteComplete(SubSliceMut buffer, Result<void> result) override {
    buffer.Reset();
    buffer_.Set(buffer);
    if (busy_) {
      busy_ = false;
      kernel_->ScheduleUpcall(requester_, NvStorageDriverNum::kValue, 1,
                              result.ok() ? pending_len_ : 0, 0, 0);
    }
  }

  void EraseComplete(Result<void> result) override { (void)result; }

 private:
  bool RangeValid(uint32_t offset, uint32_t len) const {
    return len > 0 && offset <= region_size_ && len <= region_size_ - offset;
  }

  SyscallReturn StartRead(ProcessId pid, uint32_t offset, uint32_t len) {
    if (busy_) {
      return SyscallReturn::Failure(ErrorCode::kBusy);
    }
    if (!RangeValid(offset, len)) {
      return SyscallReturn::Failure(ErrorCode::kInvalid);
    }
    auto buffer = buffer_.Take();
    if (!buffer.has_value()) {
      return SyscallReturn::Failure(ErrorCode::kBusy);
    }
    buffer->Reset();
    uint32_t chunk = std::min<uint32_t>(len, static_cast<uint32_t>(buffer->Capacity()));
    buffer->SliceTo(chunk);
    // Flash reads are synchronous on this hardware class; copy out and complete via
    // an upcall so the userspace contract stays uniformly asynchronous (§2.5).
    Result<void> read = flash_->ReadFlash(region_start_ + offset, *buffer);
    uint32_t delivered = 0;
    if (read.ok()) {
      kernel_->WithReadWriteBuffer(pid, NvStorageDriverNum::kValue, 0,
                                   [&](std::span<uint8_t> app) {
                                     delivered = std::min<uint32_t>(
                                         chunk, static_cast<uint32_t>(app.size()));
                                     std::copy_n(buffer->Active().begin(), delivered,
                                                 app.begin());
                                   });
    }
    buffer->Reset();
    buffer_.Set(*buffer);
    if (!read.ok()) {
      return SyscallReturn::Failure(read.error());
    }
    kernel_->ScheduleUpcall(pid, NvStorageDriverNum::kValue, 0, delivered, 0, 0);
    return SyscallReturn::Success();
  }

  SyscallReturn StartWrite(ProcessId pid, uint32_t offset, uint32_t len) {
    if (busy_) {
      return SyscallReturn::Failure(ErrorCode::kBusy);
    }
    if (!RangeValid(offset, len)) {
      return SyscallReturn::Failure(ErrorCode::kInvalid);
    }
    auto buffer = buffer_.Take();
    if (!buffer.has_value()) {
      return SyscallReturn::Failure(ErrorCode::kBusy);
    }
    buffer->Reset();
    uint32_t copied = 0;
    kernel_->WithReadOnlyBuffer(pid, NvStorageDriverNum::kValue, 1,
                                [&](std::span<const uint8_t> app) {
                                  copied = std::min<uint32_t>(
                                      {len, static_cast<uint32_t>(app.size()),
                                       static_cast<uint32_t>(buffer->Capacity())});
                                  std::copy_n(app.begin(), copied, buffer->Active().begin());
                                });
    if (copied == 0) {
      buffer_.Set(*buffer);
      return SyscallReturn::Failure(ErrorCode::kInvalid);
    }
    buffer->SliceTo(copied);
    hil::BufResult started = flash_->WriteFlash(region_start_ + offset, *buffer);
    if (started.has_value()) {
      SubSliceMut returned = started->buffer;
      returned.Reset();
      buffer_.Set(returned);
      return SyscallReturn::Failure(started->error);
    }
    busy_ = true;
    requester_ = pid;
    pending_len_ = copied;
    return SyscallReturn::Success();
  }

  Kernel* kernel_;
  hil::FlashStorage* flash_;
  uint32_t region_start_;
  uint32_t region_size_;
  OptionalCell<SubSliceMut> buffer_;
  bool busy_ = false;
  ProcessId requester_;
  uint32_t pending_len_ = 0;
};

}  // namespace tock

#endif  // TOCK_CAPSULE_NONVOLATILE_STORAGE_H_
