// ERA: 2
#include "capsule/console.h"

#include <algorithm>

namespace tock {

SyscallReturn ConsoleDriver::Command(ProcessId pid, uint32_t command_num, uint32_t arg1,
                                     uint32_t arg2) {
  (void)arg2;
  switch (command_num) {
    case 0:
      return SyscallReturn::Success();

    case 1: {  // write `arg1` bytes from read-only allow 1
      bool already = false;
      bool entered = false;
      grant_.Enter(pid, [&](ConsoleState& state) {
        entered = true;
        if (state.tx_pending) {
          already = true;
          return;
        }
        state.tx_pending = true;
        state.tx_len = arg1;
      });
      if (!entered) {
        return SyscallReturn::Failure(ErrorCode::kNoMem);
      }
      if (already) {
        return SyscallReturn::Failure(ErrorCode::kBusy);
      }
      ServiceTxQueue();
      return SyscallReturn::Success();
    }

    case 2: {  // read `arg1` bytes into read-write allow 1
      if (rx_ == nullptr) {
        return SyscallReturn::Failure(ErrorCode::kNoSupport);
      }
      if (rx_busy_) {
        return SyscallReturn::Failure(ErrorCode::kBusy);
      }
      auto buffer = rx_buffer_.Take();
      if (!buffer.has_value()) {
        return SyscallReturn::Failure(ErrorCode::kBusy);
      }
      uint32_t len = std::min<uint32_t>(arg1, static_cast<uint32_t>(buffer->Capacity()));
      if (len == 0) {
        rx_buffer_.Set(*buffer);
        return SyscallReturn::Failure(ErrorCode::kSize);
      }
      buffer->Reset();
      buffer->SliceTo(len);
      hil::BufResult started = rx_->Receive(*buffer);
      if (started.has_value()) {
        rx_buffer_.Set(started->buffer);
        return SyscallReturn::Failure(started->error);
      }
      rx_busy_ = true;
      rx_in_flight_ = pid;
      grant_.Enter(pid, [&](ConsoleState& state) {
        state.rx_pending = true;
        state.rx_len = len;
      });
      return SyscallReturn::Success();
    }

    default:
      return SyscallReturn::Failure(ErrorCode::kNoSupport);
  }
}

void ConsoleDriver::ServiceTxQueue() {
  if (tx_busy_ || tx_buffer_.IsNone()) {
    return;
  }
  // Round-robin over processes with a pending write. Process order is fair enough
  // here because each write clears its pending flag on completion.
  for (size_t i = 0; i < Kernel::kMaxProcesses; ++i) {
    Process* p = kernel_->process(i);
    if (p == nullptr || !p->id.IsValid() || !p->IsAlive()) {
      continue;
    }
    ProcessId pid = p->id;
    bool start = false;
    uint32_t len = 0;
    grant_.Enter(pid, [&](ConsoleState& state) {
      if (state.tx_pending) {
        start = true;
        len = state.tx_len;
      }
    });
    if (!start) {
      continue;
    }

    auto buffer = tx_buffer_.Take();
    if (!buffer.has_value()) {
      return;
    }
    buffer->Reset();
    uint32_t capacity = static_cast<uint32_t>(buffer->Capacity());
    uint32_t copied = 0;
    // Closure-scoped access to the process's allowed buffer (§3.3.2): the span
    // cannot outlive this call, so the console cannot hold process memory.
    kernel_->WithReadOnlyBuffer(pid, DriverNum::kConsole, 1,
                                [&](std::span<const uint8_t> app) {
                                  copied = std::min<uint32_t>(
                                      {len, capacity, static_cast<uint32_t>(app.size())});
                                  std::copy_n(app.begin(), copied, buffer->Active().begin());
                                });
    if (copied == 0) {
      // Nothing allowed (or empty): complete immediately with 0 bytes.
      tx_buffer_.Set(*buffer);
      grant_.Enter(pid, [&](ConsoleState& state) { state.tx_pending = false; });
      kernel_->ScheduleUpcall(pid, DriverNum::kConsole, 1, 0, 0, 0);
      continue;
    }

    buffer->SliceTo(copied);
    hil::BufResult started = tx_->Transmit(*buffer);
    if (started.has_value()) {
      SubSliceMut returned = started->buffer;
      returned.Reset();
      tx_buffer_.Set(returned);
      return;  // lower layer busy; retry on its completion
    }
    tx_busy_ = true;
    tx_in_flight_ = pid;
    grant_.Enter(pid, [&](ConsoleState& state) { state.tx_len = copied; });
    return;
  }
}

void ConsoleDriver::TransmitComplete(SubSliceMut buffer, Result<void> result) {
  buffer.Reset();
  tx_buffer_.Set(buffer);
  if (tx_busy_) {
    tx_busy_ = false;
    ProcessId pid = tx_in_flight_;
    uint32_t written = 0;
    grant_.Enter(pid, [&](ConsoleState& state) {
      written = state.tx_len;
      state.tx_pending = false;
    });
    kernel_->ScheduleUpcall(pid, DriverNum::kConsole, 1,
                            result.ok() ? written : 0, 0, 0);
  }
  ServiceTxQueue();
}

void ConsoleDriver::ReceiveComplete(SubSliceMut buffer, uint32_t received,
                                    Result<void> result) {
  ProcessId pid = rx_in_flight_;
  rx_busy_ = false;

  uint32_t delivered = 0;
  if (result.ok()) {
    kernel_->WithReadWriteBuffer(pid, DriverNum::kConsole, 1, [&](std::span<uint8_t> app) {
      delivered = std::min<uint32_t>(received, static_cast<uint32_t>(app.size()));
      std::copy_n(buffer.Active().begin(), delivered, app.begin());
    });
  }
  buffer.Reset();
  rx_buffer_.Set(buffer);

  grant_.Enter(pid, [&](ConsoleState& state) { state.rx_pending = false; });
  kernel_->ScheduleUpcall(pid, DriverNum::kConsole, 2, delivered, 0, 0);
}

}  // namespace tock
