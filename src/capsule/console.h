// ERA: 2
// Console capsule (driver 0x1): buffered process printing and line input over a
// (possibly virtualized) UART. This is the canonical full-path driver: process
// memory enters the kernel through read-only allows, is staged into a capsule-owned
// static buffer, flows down the split-phase UART stack, and completion is signalled
// back with an upcall (§2.5's example sequence).
//
// ABI (matching upstream console):
//   read-only allow 1: bytes to write     subscribe 1: write-complete(len)
//   read-write allow 1: receive buffer    subscribe 2: read-complete(len)
//   command 1 (len): start write          command 2 (len): start read
#ifndef TOCK_CAPSULE_CONSOLE_H_
#define TOCK_CAPSULE_CONSOLE_H_

#include "capsule/driver_nums.h"
#include "kernel/driver.h"
#include "kernel/grant.h"
#include "kernel/hil.h"
#include "kernel/kernel.h"
#include "util/cells.h"

namespace tock {

class ConsoleDriver : public SyscallDriver,
                      public hil::UartTransmitClient,
                      public hil::UartReceiveClient {
 public:
  // `tx_buffer` is the capsule's static staging buffer, owned by the board and
  // lent to the console for the life of the system (a 'static buffer in Tock).
  ConsoleDriver(Kernel* kernel, hil::UartTransmit* tx, hil::UartReceive* rx,
                SubSliceMut tx_buffer, SubSliceMut rx_buffer,
                const MemoryAllocationCapability& mem_cap)
      : kernel_(kernel),
        tx_(tx),
        rx_(rx),
        tx_buffer_(tx_buffer),
        rx_buffer_(rx_buffer),
        grant_(kernel, mem_cap) {
    tx_->SetTransmitClient(this);
    if (rx_ != nullptr) {
      rx_->SetReceiveClient(this);
    }
  }

  SyscallReturn Command(ProcessId pid, uint32_t command_num, uint32_t arg1,
                        uint32_t arg2) override;

  // hil::UartTransmitClient
  void TransmitComplete(SubSliceMut buffer, Result<void> result) override;
  // hil::UartReceiveClient
  void ReceiveComplete(SubSliceMut buffer, uint32_t received, Result<void> result) override;

 private:
  struct ConsoleState {
    bool tx_pending = false;
    uint32_t tx_len = 0;
    bool rx_pending = false;
    uint32_t rx_len = 0;
  };

  // Starts the next pending process write if the staging buffer is free.
  void ServiceTxQueue();

  Kernel* kernel_;
  hil::UartTransmit* tx_;
  hil::UartReceive* rx_;
  OptionalCell<SubSliceMut> tx_buffer_;
  OptionalCell<SubSliceMut> rx_buffer_;
  Grant<ConsoleState> grant_;

  ProcessId tx_in_flight_;      // valid while a write is on the wire
  bool tx_busy_ = false;
  ProcessId rx_in_flight_;
  bool rx_busy_ = false;
};

}  // namespace tock

#endif  // TOCK_CAPSULE_CONSOLE_H_
