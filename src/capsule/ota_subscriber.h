// ERA: 2
// OTA subscriber capsule: reassembles a signed TBF image pushed by the gateway
// (capsule/ota_gateway.h) into a flash staging region, verifies the whole-image
// CRC, and hands the region to ProcessLoader::LoadOneAsync — the §3.4 pipeline
// (integrity → authenticity → runnability) running while the board's existing
// apps keep executing. Degradation is graceful at every stage:
//   * chunk CRC failure → frame silently dropped; the gateway's selective
//     retransmit recovers it;
//   * flash busy on arrival → frame dropped; retransmit recovers it;
//   * reassembled image fails its CRC → kStatus(kStatusImageCrc), gateway
//     re-pushes under a new transfer id;
//   * image fails integrity/authenticity in the loader → kStatus(LoadError),
//     counted and re-pushed up to the gateway's budget;
//   * a new announce at any point restarts reassembly cleanly.
// The periodic tick alarm is always armed once activated, so an OTA board always
// has a future event — it can degrade, but never wedge.
#ifndef TOCK_CAPSULE_OTA_SUBSCRIBER_H_
#define TOCK_CAPSULE_OTA_SUBSCRIBER_H_

#include <array>
#include <cstdint>
#include <cstring>
#include <vector>

#include "capsule/ota_protocol.h"
#include "capsule/virtual_alarm.h"
#include "hw/radio.h"
#include "kernel/hil.h"
#include "kernel/process_loader.h"
#include "util/crc32.h"

namespace tock {

struct OtaSubscriberStats {
  uint64_t announces = 0;        // transfers started (new xfer ids seen)
  uint64_t chunks_received = 0;  // accepted, CRC-clean, flashed chunks
  uint64_t frame_crc_failures = 0;  // frames failing the FCS trailer (any type)
  uint64_t chunk_crc_failures = 0;
  uint64_t duplicate_chunks = 0;
  uint64_t flash_busy_drops = 0;
  uint64_t image_crc_failures = 0;
  uint64_t load_attempts = 0;
  uint64_t loads_rejected = 0;  // typed LoadError outcomes reported upstream
  uint64_t acks_sent = 0;
  uint64_t statuses_sent = 0;
};

class OtaSubscriber : public hil::RadioClient,
                      public hil::AlarmClient,
                      public hil::FlashClient {
 public:
  static constexpr uint32_t kTickInterval = 50'000;  // loader poll / pump period

  enum class State : uint8_t {
    kIdle,       // no transfer announced yet
    kReceiving,  // reassembling chunks into the staging region
    kLoading,    // LoadOneAsync in flight (or waiting to start it)
    kDone,       // outcome determined; re-reports status on kPoll
  };

  OtaSubscriber(hil::PacketRadio* radio, hil::FlashStorage* flash, ProcessLoader* loader,
                VirtualAlarmMux* mux)
      : radio_(radio), flash_(flash), loader_(loader), mux_(mux), alarm_(mux) {}

  // Board-init wiring: takes over the radio *and* flash client slots (the
  // nonvolatile-storage capsule loses its flash callbacks on OTA subscriber
  // boards — an explicit deployment trade documented in DESIGN.md §12) and
  // starts the always-on tick.
  void Activate(uint32_t staging_addr, uint32_t staging_limit) {
    active_ = true;
    staging_addr_ = staging_addr;
    staging_limit_ = staging_limit;
    radio_->SetRadioClient(this);
    flash_->SetFlashClient(this);
    mux_->AddClient(&alarm_);
    alarm_.SetClient(this);
    ArmRx();
    alarm_.SetAlarm(alarm_.Now(), kTickInterval);
  }

  State state() const { return state_; }
  uint8_t last_status() const { return last_status_; }
  const OtaSubscriberStats& stats() const { return stats_; }
  bool Converged() const {
    return state_ == State::kDone && last_status_ == OtaWire::kStatusOk;
  }

  // --- hil::RadioClient ---
  void TransmitDone(SubSliceMut buffer, Result<void> result) override {
    (void)buffer;
    (void)result;
    tx_busy_ = false;
    Pump();
  }

  void PacketReceived(SubSliceMut buffer, uint32_t len) override {
    HandleFrame(buffer.Active().data(), len);
    ArmRx();
    Pump();
  }

  // --- hil::FlashClient ---
  void WriteComplete(SubSliceMut buffer, Result<void> result) override {
    (void)buffer;
    flash_busy_ = false;
    if (write_chunk_ >= 0) {
      if (result.ok()) {
        MarkReceived(static_cast<uint16_t>(write_chunk_));
        ++stats_.chunks_received;
        ack_pending_ = true;  // ack only what is durably staged
      }
      write_chunk_ = -1;
    }
    MaybeFinishImage();
    Pump();
  }

  void EraseComplete(Result<void> result) override { (void)result; }

  // --- hil::AlarmClient ---
  void AlarmFired() override {
    PollLoader();
    Pump();
    alarm_.SetAlarm(alarm_.Now(), kTickInterval);
  }

 private:
  void ArmRx() {
    SubSliceMut rx(rx_buf_.data(), rx_buf_.size());
    radio_->StartReceive(rx);
  }

  bool SendFrame(size_t len) {
    SubSliceMut tx(tx_buf_.data(), tx_buf_.size());
    tx.SliceTo(len);
    if (radio_->TransmitPacket(gw_addr_, tx).has_value()) {
      return false;
    }
    tx_busy_ = true;
    return true;
  }

  // One TX at a time: status reports take precedence over acks.
  void Pump() {
    if (!active_ || tx_busy_) {
      return;
    }
    if (status_pending_) {
      uint8_t* f = tx_buf_.data();
      f[0] = static_cast<uint8_t>(OtaFrameType::kStatus);
      f[1] = xfer_;
      OtaWire::Put16(f + 2, radio_->LocalAddress());
      f[4] = last_status_;
      if (SendFrame(OtaWire::Seal(f, OtaWire::kStatusSize))) {
        status_pending_ = false;
        ++stats_.statuses_sent;
      }
      return;
    }
    if (ack_pending_) {
      uint16_t next = NextExpected();
      uint32_t bits = 0;
      for (uint32_t i = 0; i < 32; ++i) {
        uint32_t c = static_cast<uint32_t>(next) + 1 + i;
        if (c < received_.size() && received_[c] != 0) {
          bits |= 1u << i;
        }
      }
      uint8_t* f = tx_buf_.data();
      f[0] = static_cast<uint8_t>(OtaFrameType::kAck);
      f[1] = xfer_;
      OtaWire::Put16(f + 2, radio_->LocalAddress());
      OtaWire::Put16(f + 4, next);
      OtaWire::Put32(f + 6, bits);
      if (SendFrame(OtaWire::Seal(f, OtaWire::kAckSize))) {
        ack_pending_ = false;
        ++stats_.acks_sent;
      }
      return;
    }
  }

  uint16_t NextExpected() const {
    for (size_t i = 0; i < received_.size(); ++i) {
      if (received_[i] == 0) {
        return static_cast<uint16_t>(i);
      }
    }
    return static_cast<uint16_t>(received_.size());
  }

  void MarkReceived(uint16_t chunk) {
    if (chunk < received_.size()) {
      received_[chunk] = 1;
    }
  }

  bool AllReceived() const {
    return !received_.empty() && NextExpected() == received_.size();
  }

  void HandleFrame(const uint8_t* f, uint32_t len) {
    if (!active_) {
      return;
    }
    if (!OtaWire::SealIntact(f, len)) {
      // Corruption degrades to a drop; the gateway's retry/backoff recovers it.
      ++stats_.frame_crc_failures;
      return;
    }
    len -= OtaWire::kCrcTrailer;
    if (len < 2) {
      return;
    }
    switch (static_cast<OtaFrameType>(f[0])) {
      case OtaFrameType::kAnnounce:
        if (len >= OtaWire::kAnnounceSize) {
          HandleAnnounce(f);
        }
        return;
      case OtaFrameType::kData:
        if (len >= OtaWire::kDataHeaderSize) {
          HandleData(f, len);
        }
        return;
      case OtaFrameType::kPoll:
        if (f[1] == xfer_ && state_ == State::kDone) {
          status_pending_ = true;  // re-report; the gateway's poll was its timeout
        }
        return;
      default:
        return;  // subscribers ignore ack/status
    }
  }

  void HandleAnnounce(const uint8_t* f) {
    uint16_t total = OtaWire::Get16(f + 2);
    uint32_t size = OtaWire::Get32(f + 4);
    if (f[1] == xfer_ && state_ != State::kIdle) {
      // Re-announce of the transfer we are already tracking (our first ack was
      // lost): just re-ack current progress.
      if (state_ == State::kReceiving) {
        ack_pending_ = true;
      } else if (state_ == State::kDone) {
        status_pending_ = true;
      }
      return;
    }
    // New transfer: validate and restart reassembly from scratch. A transfer that
    // cannot fit the staging region is ignored outright (a corrupted announce
    // must not wedge or overflow anything; the gateway will re-announce).
    if (total == 0 || size == 0 || size > staging_limit_ ||
        size > static_cast<uint32_t>(total) * OtaWire::kChunkData ||
        size + staging_addr_ < staging_addr_) {
      return;
    }
    xfer_ = f[1];
    image_size_ = size;
    image_crc_ = OtaWire::Get32(f + 8);
    gw_addr_ = OtaWire::Get16(f + 12);
    received_.assign(total, 0);
    write_chunk_ = -1;
    state_ = State::kReceiving;
    last_status_ = 0xFF;
    load_started_ = false;
    ++stats_.announces;
    ack_pending_ = true;  // tell the gateway we are listening
  }

  void HandleData(const uint8_t* f, uint32_t len) {
    if (f[1] != xfer_) {
      return;  // stale transfer
    }
    if (state_ != State::kReceiving) {
      // We already hold the whole image (loading/reporting): a retransmitted
      // chunk means our final ack was lost — re-ack progress so the gateway's
      // window converges instead of burning its chunk-retry budget.
      if (state_ == State::kLoading || state_ == State::kDone) {
        ack_pending_ = true;
      }
      return;
    }
    uint16_t chunk = OtaWire::Get16(f + 2);
    uint16_t dlen = OtaWire::Get16(f + 4);
    uint32_t crc = OtaWire::Get32(f + 6);
    if (chunk >= received_.size() || dlen == 0 || dlen > OtaWire::kChunkData ||
        OtaWire::kDataHeaderSize + dlen > len) {
      return;  // malformed (possibly corrupted header bytes)
    }
    if (Crc32::Compute(f + OtaWire::kDataHeaderSize, dlen) != crc) {
      // Payload corrupted on the air: drop; the gateway's retransmit timer is
      // the recovery path (selective retransmit of exactly this chunk).
      ++stats_.chunk_crc_failures;
      return;
    }
    if (received_[chunk] != 0) {
      ++stats_.duplicate_chunks;
      ack_pending_ = true;  // our earlier ack was probably lost — re-ack
      return;
    }
    if (flash_busy_) {
      ++stats_.flash_busy_drops;
      return;  // retransmit recovers
    }
    std::memcpy(chunk_buf_.data(), f + OtaWire::kDataHeaderSize, dlen);
    SubSliceMut buf(chunk_buf_.data(), chunk_buf_.size());
    buf.SliceTo(dlen);
    uint32_t addr = staging_addr_ + static_cast<uint32_t>(chunk) * OtaWire::kChunkData;
    if (flash_->WriteFlash(addr, buf).has_value()) {
      ++stats_.flash_busy_drops;
      return;
    }
    flash_busy_ = true;
    write_chunk_ = chunk;
  }

  // All chunks staged: whole-image CRC (synchronous flash reads), then the
  // async §3.4 pipeline.
  void MaybeFinishImage() {
    if (state_ != State::kReceiving || flash_busy_ || !AllReceived()) {
      return;
    }
    uint32_t crc_state = Crc32::kInit;
    uint32_t remaining = image_size_;
    uint32_t addr = staging_addr_;
    while (remaining > 0) {
      uint32_t n = remaining < chunk_buf_.size() ? remaining
                                                 : static_cast<uint32_t>(chunk_buf_.size());
      SubSliceMut buf(chunk_buf_.data(), chunk_buf_.size());
      buf.SliceTo(n);
      if (!flash_->ReadFlash(addr, buf).ok()) {
        break;
      }
      crc_state = Crc32::Update(crc_state, chunk_buf_.data(), n);
      addr += n;
      remaining -= n;
    }
    if (remaining != 0 || Crc32::Finish(crc_state) != image_crc_) {
      // Reassembled bytes are wrong despite per-chunk CRCs (or unreadable):
      // report and let the gateway re-push the whole image.
      ++stats_.image_crc_failures;
      last_status_ = OtaWire::kStatusImageCrc;
      state_ = State::kDone;
      status_pending_ = true;
      return;
    }
    state_ = State::kLoading;
    load_started_ = false;
    StartLoad();
  }

  void StartLoad() {
    if (load_started_) {
      return;
    }
    if (!loader_->LoadOneAsync(staging_addr_).ok()) {
      return;  // loader busy (boot scan still running): retried from the tick
    }
    load_started_ = true;
    ++stats_.load_attempts;
  }

  void PollLoader() {
    if (state_ != State::kLoading) {
      return;
    }
    if (!load_started_) {
      StartLoad();
      return;
    }
    if (!loader_->Done()) {
      return;  // digest still in flight
    }
    const ProcessLoader::LoadRecord* record = loader_->RecordFor(staging_addr_);
    if (record == nullptr) {
      return;  // should not happen; keep polling rather than wedge
    }
    if (record->created) {
      last_status_ = OtaWire::kStatusOk;  // signed update verified and running
    } else {
      last_status_ = static_cast<uint8_t>(record->error);
      ++stats_.loads_rejected;
    }
    state_ = State::kDone;
    status_pending_ = true;
  }

  hil::PacketRadio* radio_;
  hil::FlashStorage* flash_;
  ProcessLoader* loader_;
  VirtualAlarmMux* mux_;
  VirtualAlarm alarm_;

  bool active_ = false;
  bool tx_busy_ = false;
  bool flash_busy_ = false;
  bool ack_pending_ = false;
  bool status_pending_ = false;
  bool load_started_ = false;
  State state_ = State::kIdle;
  uint8_t xfer_ = 0;
  uint8_t last_status_ = 0xFF;
  uint16_t gw_addr_ = 0xFFFF;
  uint32_t staging_addr_ = 0;
  uint32_t staging_limit_ = 0;
  uint32_t image_size_ = 0;
  uint32_t image_crc_ = 0;
  int32_t write_chunk_ = -1;  // chunk index of the in-flight flash write
  std::vector<uint8_t> received_;
  OtaSubscriberStats stats_;

  std::array<uint8_t, Radio::kMaxPacket> tx_buf_{};
  std::array<uint8_t, Radio::kMaxPacket> rx_buf_{};
  std::array<uint8_t, OtaWire::kChunkData> chunk_buf_{};
};

}  // namespace tock

#endif  // TOCK_CAPSULE_OTA_SUBSCRIBER_H_
