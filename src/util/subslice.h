// ERA: 4
// SubSlice: pass resizable windows of a buffer between layers without losing the
// underlying allocation (paper §4.2, Figure 4).
//
// Split-phase APIs move buffer ownership down a driver stack and get it back in the
// completion callback. A layer that only wants to expose the first N bytes to the
// layer below cannot just shrink the span — the original extent would be lost and the
// full buffer could never be returned to the top of the stack. SubSlice remembers the
// original extent: layers slice at will, and `Reset()` restores access to the whole
// underlying buffer.
#ifndef TOCK_UTIL_SUBSLICE_H_
#define TOCK_UTIL_SUBSLICE_H_

#include <cstddef>
#include <cstdint>
#include <span>
#include <type_traits>

namespace tock {

// A window into a caller-owned byte buffer. `Mutable` selects const or mutable
// element access; use the SubSlice / SubSliceMut aliases below.
template <typename Byte>
class BasicSubSlice {
 public:
  // A default-constructed SubSlice is the §5.2 null zero-length-slice pitfall in C++
  // form: with a null data_, Active() would compute `data_ + start_` and hand the
  // null pointer to std::span — undefined behaviour even at length zero (UBSan's
  // "applying offset to null pointer"). Mirror Rust's NonNull::dangling(): empty
  // windows keep a valid, non-null sentinel base, so span construction and pointer
  // arithmetic never touch nullptr.
  constexpr BasicSubSlice() : data_(Sentinel()), capacity_(0), start_(0), end_(0) {}

  // Wraps a full buffer; the active window initially covers all of it. An empty span
  // may legally carry a null data(); substitute the sentinel so data_ stays non-null.
  constexpr explicit BasicSubSlice(std::span<Byte> buffer)
      : data_(buffer.data() == nullptr ? Sentinel() : buffer.data()),
        capacity_(buffer.size()), start_(0), end_(buffer.size()) {}

  constexpr BasicSubSlice(Byte* data, size_t len) : BasicSubSlice(std::span<Byte>(data, len)) {}

  // Length of the active window.
  constexpr size_t Size() const { return end_ - start_; }
  constexpr bool IsEmpty() const { return end_ == start_; }

  // Length of the full underlying buffer, regardless of the current window.
  constexpr size_t Capacity() const { return capacity_; }

  // The active window as a span. Layers should use this for data access. The
  // sentinel invariant (data_ is never null) makes the `data_ + start_` arithmetic
  // here well-defined even for empty windows.
  constexpr std::span<Byte> Active() const { return std::span<Byte>(data_ + start_, Size()); }

  // Element access within the active window (unchecked within the window, like slice
  // indexing after a bounds-checked Slice call).
  constexpr Byte& operator[](size_t i) const { return data_[start_ + i]; }

  // Narrows the active window to [offset, offset+len) *relative to the current
  // window*. Out-of-range requests clamp to the current window, matching the
  // saturating behaviour of upstream `SubSlice::slice` with range ends.
  constexpr void Slice(size_t offset, size_t len) {
    size_t cur = Size();
    if (offset > cur) {
      offset = cur;
    }
    if (len > cur - offset) {
      len = cur - offset;
    }
    start_ += offset;
    end_ = start_ + len;
  }

  // Narrows the window to [offset, end) relative to the current window.
  constexpr void SliceFrom(size_t offset) { Slice(offset, Size() - (offset > Size() ? Size() : offset)); }

  // Narrows the window to the first `len` elements of the current window.
  constexpr void SliceTo(size_t len) { Slice(0, len); }

  // Restores the window to the full underlying buffer. This is the operation that
  // distinguishes SubSlice from a plain span: no matter how many times the buffer was
  // sliced on the way down the stack, the top layer gets its whole allocation back.
  constexpr void Reset() {
    start_ = 0;
    end_ = capacity_;
  }

  // True if this SubSlice windows the same underlying buffer as `other`.
  constexpr bool SameBuffer(const BasicSubSlice& other) const { return data_ == other.data_; }

 private:
  // One valid byte per instantiation, shared by every empty SubSlice as a non-null
  // base address (never read or written through a correctly-sized window).
  static inline std::remove_const_t<Byte> sentinel_byte_{};
  static constexpr Byte* Sentinel() { return &sentinel_byte_; }

  Byte* data_;
  size_t capacity_;
  size_t start_;
  size_t end_;
};

using SubSlice = BasicSubSlice<const uint8_t>;
using SubSliceMut = BasicSubSlice<uint8_t>;

}  // namespace tock

#endif  // TOCK_UTIL_SUBSLICE_H_
