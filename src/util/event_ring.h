// ERA: 1
// Fixed-capacity overwriting event ring for the kernel trace (kernel/trace.h).
//
// Unlike RingBuffer — which drops new elements when full, the right policy for an
// upcall queue — a trace ring must always accept the *newest* event and evict the
// oldest, so the buffer converges on "the last N things the kernel did". Storage is
// embedded, matching the kernel's heapless discipline (§2.4); the number of evicted
// events is counted so a dump can say how much history was lost.
#ifndef TOCK_UTIL_EVENT_RING_H_
#define TOCK_UTIL_EVENT_RING_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace tock {

template <typename T, size_t N>
class EventRing {
  static_assert(N > 0, "event ring capacity must be positive");

 public:
  constexpr EventRing() = default;

  constexpr bool IsEmpty() const { return count_ == 0; }
  constexpr size_t Size() const { return count_; }
  constexpr size_t Capacity() const { return N; }

  // Total events ever recorded, including evicted ones.
  constexpr uint64_t TotalRecorded() const { return total_recorded_; }
  // Events evicted to make room for newer ones.
  constexpr uint64_t Evicted() const { return total_recorded_ - count_; }

  // Appends an event, evicting the oldest when full. Never fails.
  constexpr void Push(const T& value) {
    storage_[(head_ + count_) % N] = value;
    if (count_ == N) {
      head_ = (head_ + 1) % N;  // the slot just written replaced the old head
    } else {
      ++count_;
    }
    ++total_recorded_;
  }

  // The i-th oldest retained event (0 = oldest, Size()-1 = newest).
  constexpr const T& operator[](size_t i) const { return storage_[(head_ + i) % N]; }

  // Visits retained events oldest-first.
  template <typename Fn>
  constexpr void ForEach(Fn&& fn) const {
    for (size_t i = 0; i < count_; ++i) {
      fn(storage_[(head_ + i) % N]);
    }
  }

  constexpr void Clear() {
    head_ = 0;
    count_ = 0;
    total_recorded_ = 0;
  }

 private:
  std::array<T, N> storage_{};
  size_t head_ = 0;
  size_t count_ = 0;
  uint64_t total_recorded_ = 0;
};

}  // namespace tock

#endif  // TOCK_UTIL_EVENT_RING_H_
