// ERA: 3
// Fixed 32-bucket log2 latency histogram (heapless, like every kernel-side data
// structure here, §2.4). Bucket i counts samples v with bit_width(v) == i+1, i.e.
// v in [2^i, 2^(i+1)); bucket 0 additionally absorbs v == 0 and the top bucket
// saturates (v >= 2^31 all land in bucket 31). Power-of-two buckets are the
// standard embedded tradeoff: one CLZ per record, constant memory, and enough
// resolution to tell a 40-cycle direct return from a 4000-cycle round trip.
//
// Used by the profiling layer (kernel/trace.h) for syscall service time, IRQ to
// upcall delivery, and split-phase command round trips; Merge() lets host-side
// tooling aggregate histograms across boards or campaigns.
#ifndef TOCK_UTIL_LOG2_HIST_H_
#define TOCK_UTIL_LOG2_HIST_H_

#include <array>
#include <bit>
#include <cstddef>
#include <cstdint>

namespace tock {

class Log2Hist {
 public:
  static constexpr size_t kBuckets = 32;

  // Bucket a sample falls into: 0 for v <= 1, otherwise floor(log2(v)), capped
  // at the saturating top bucket.
  static constexpr size_t BucketIndex(uint64_t v) {
    if (v <= 1) {
      return 0;
    }
    size_t b = static_cast<size_t>(std::bit_width(v)) - 1;
    return b >= kBuckets ? kBuckets - 1 : b;
  }

  // Inclusive lower bound of bucket i.
  static constexpr uint64_t BucketLow(size_t i) {
    return i == 0 ? 0 : (uint64_t{1} << i);
  }
  // Inclusive upper bound of bucket i (UINT64_MAX for the saturating top bucket).
  static constexpr uint64_t BucketHigh(size_t i) {
    return i >= kBuckets - 1 ? UINT64_MAX : (uint64_t{1} << (i + 1)) - 1;
  }

  constexpr void Record(uint64_t v) {
    ++buckets_[BucketIndex(v)];
    ++count_;
    sum_ += v;
    if (v < min_) {
      min_ = v;
    }
    if (v > max_) {
      max_ = v;
    }
  }

  constexpr uint64_t count() const { return count_; }
  constexpr uint64_t sum() const { return sum_; }
  // min()/max() are only meaningful when count() > 0.
  constexpr uint64_t min() const { return count_ == 0 ? 0 : min_; }
  constexpr uint64_t max() const { return max_; }
  constexpr uint64_t bucket(size_t i) const { return i < kBuckets ? buckets_[i] : 0; }
  constexpr const std::array<uint64_t, kBuckets>& buckets() const { return buckets_; }

  // Mean rounded down; 0 when empty.
  constexpr uint64_t Mean() const { return count_ == 0 ? 0 : sum_ / count_; }

  // Aggregates another histogram into this one (multi-board / multi-campaign
  // rollups). Bucket-exact: both sides bucketed identically before the merge.
  constexpr void Merge(const Log2Hist& other) {
    for (size_t i = 0; i < kBuckets; ++i) {
      buckets_[i] += other.buckets_[i];
    }
    count_ += other.count_;
    sum_ += other.sum_;
    if (other.count_ > 0) {
      if (other.min_ < min_) {
        min_ = other.min_;
      }
      if (other.max_ > max_) {
        max_ = other.max_;
      }
    }
  }

  constexpr void Clear() { *this = Log2Hist{}; }

 private:
  std::array<uint64_t, kBuckets> buckets_{};
  uint64_t count_ = 0;
  uint64_t sum_ = 0;
  uint64_t min_ = UINT64_MAX;
  uint64_t max_ = 0;
};

}  // namespace tock

#endif  // TOCK_UTIL_LOG2_HIST_H_
