// ERA: 1
#include "util/error.h"

namespace tock {

const char* ErrorCodeName(ErrorCode code) {
  switch (code) {
    case ErrorCode::kFail:
      return "FAIL";
    case ErrorCode::kBusy:
      return "BUSY";
    case ErrorCode::kAlready:
      return "ALREADY";
    case ErrorCode::kOff:
      return "OFF";
    case ErrorCode::kReserve:
      return "RESERVE";
    case ErrorCode::kInvalid:
      return "INVAL";
    case ErrorCode::kSize:
      return "SIZE";
    case ErrorCode::kCancel:
      return "CANCEL";
    case ErrorCode::kNoMem:
      return "NOMEM";
    case ErrorCode::kNoSupport:
      return "NOSUPPORT";
    case ErrorCode::kNoDevice:
      return "NODEVICE";
    case ErrorCode::kUninstalled:
      return "UNINSTALLED";
    case ErrorCode::kNoAck:
      return "NOACK";
    case ErrorCode::kBadRval:
      return "BADRVAL";
  }
  return "UNKNOWN";
}

}  // namespace tock
