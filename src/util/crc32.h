// ERA: 2
// CRC-32 (IEEE 802.3, reflected polynomial 0xEDB88320) — the per-chunk and
// whole-image integrity check of the OTA distribution protocol (capsule/ota_*).
// Table-driven, table built once at static-init time; no dependencies.
#ifndef TOCK_UTIL_CRC32_H_
#define TOCK_UTIL_CRC32_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace tock {

class Crc32 {
 public:
  // One-shot CRC over a buffer.
  static uint32_t Compute(const uint8_t* data, size_t len) {
    return Finish(Update(kInit, data, len));
  }

  // Incremental interface for data that arrives in pieces (flash readback loops):
  //   uint32_t s = Crc32::kInit;
  //   s = Crc32::Update(s, chunk, n); ...
  //   uint32_t crc = Crc32::Finish(s);
  static constexpr uint32_t kInit = 0xFFFFFFFFu;

  static uint32_t Update(uint32_t state, const uint8_t* data, size_t len) {
    const std::array<uint32_t, 256>& table = Table();
    for (size_t i = 0; i < len; ++i) {
      state = table[(state ^ data[i]) & 0xFF] ^ (state >> 8);
    }
    return state;
  }

  static constexpr uint32_t Finish(uint32_t state) { return state ^ 0xFFFFFFFFu; }

 private:
  static const std::array<uint32_t, 256>& Table() {
    static const std::array<uint32_t, 256> table = [] {
      std::array<uint32_t, 256> t{};
      for (uint32_t i = 0; i < 256; ++i) {
        uint32_t c = i;
        for (int bit = 0; bit < 8; ++bit) {
          c = (c & 1) != 0 ? 0xEDB88320u ^ (c >> 1) : c >> 1;
        }
        t[i] = c;
      }
      return t;
    }();
    return table;
  }
};

}  // namespace tock

#endif  // TOCK_UTIL_CRC32_H_
