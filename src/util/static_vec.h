// ERA: 1
// Fixed-capacity vector. The kernel performs no heap allocation after boot (§2.4);
// collections whose size is bounded by board configuration use StaticVec.
#ifndef TOCK_UTIL_STATIC_VEC_H_
#define TOCK_UTIL_STATIC_VEC_H_

#include <array>
#include <cassert>
#include <cstddef>
#include <utility>

namespace tock {

template <typename T, size_t N>
class StaticVec {
 public:
  constexpr StaticVec() = default;

  constexpr size_t Size() const { return size_; }
  constexpr bool IsEmpty() const { return size_ == 0; }
  constexpr bool IsFull() const { return size_ == N; }
  static constexpr size_t Capacity() { return N; }

  // Appends a value; returns false when at capacity.
  constexpr bool PushBack(T value) {
    if (size_ == N) {
      return false;
    }
    storage_[size_++] = std::move(value);
    return true;
  }

  // Removes the last element. Precondition: not empty.
  constexpr T PopBack() {
    assert(size_ > 0);
    return std::move(storage_[--size_]);
  }

  // Removes the element at `index` by shifting the tail down (stable order).
  constexpr void Erase(size_t index) {
    assert(index < size_);
    for (size_t i = index + 1; i < size_; ++i) {
      storage_[i - 1] = std::move(storage_[i]);
    }
    --size_;
  }

  constexpr void Clear() { size_ = 0; }

  constexpr T& operator[](size_t i) {
    assert(i < size_);
    return storage_[i];
  }
  constexpr const T& operator[](size_t i) const {
    assert(i < size_);
    return storage_[i];
  }

  constexpr T* begin() { return storage_.data(); }
  constexpr T* end() { return storage_.data() + size_; }
  constexpr const T* begin() const { return storage_.data(); }
  constexpr const T* end() const { return storage_.data() + size_; }

 private:
  std::array<T, N> storage_{};
  size_t size_ = 0;
};

}  // namespace tock

#endif  // TOCK_UTIL_STATIC_VEC_H_
