// ERA: 1
// Interior-mutability cells, the C++ rendering of Tock's core concurrency idiom (§2.1).
//
// Tock components hold shared references to each other and mutate their own state
// through `Cell`-family wrappers rather than through unique mutable references. In
// C++ there is no borrow checker to appease, but routing mutation through the same
// narrow cell API keeps the reentrancy hazards the paper describes confined to one
// place and makes the kernel code structurally comparable to upstream Tock.
#ifndef TOCK_UTIL_CELLS_H_
#define TOCK_UTIL_CELLS_H_

#include <optional>
#include <utility>

namespace tock {

// A mutable value slot. Mirrors `core::cell::Cell<T>`: get copies the value out,
// set replaces it. Intended for small trivially copyable types.
template <typename T>
class Cell {
 public:
  constexpr Cell() : value_() {}
  constexpr explicit Cell(T value) : value_(std::move(value)) {}

  constexpr T Get() const { return value_; }
  constexpr void Set(T value) { value_ = std::move(value); }

  // Replaces the stored value, returning the previous one.
  constexpr T Replace(T value) {
    T old = std::move(value_);
    value_ = std::move(value);
    return old;
  }

 private:
  T value_;
};

// A cell that may be empty. Mirrors Tock's `OptionalCell<T>`.
template <typename T>
class OptionalCell {
 public:
  constexpr OptionalCell() = default;
  constexpr explicit OptionalCell(T value) : value_(std::move(value)) {}

  constexpr bool IsSome() const { return value_.has_value(); }
  constexpr bool IsNone() const { return !value_.has_value(); }

  constexpr void Set(T value) { value_ = std::move(value); }
  constexpr void Clear() { value_.reset(); }

  // Removes and returns the contained value, leaving the cell empty.
  constexpr std::optional<T> Take() {
    std::optional<T> out = std::move(value_);
    value_.reset();
    return out;
  }

  // Copies the contained value out without emptying the cell.
  constexpr std::optional<T> Extract() const { return value_; }

  // Returns the contained value or `fallback` when empty.
  constexpr T UnwrapOr(T fallback) const { return value_.has_value() ? *value_ : fallback; }

  // Runs `fn(T&)` if a value is present; returns whether it ran.
  template <typename Fn>
  constexpr bool Map(Fn&& fn) {
    if (!value_.has_value()) {
      return false;
    }
    fn(*value_);
    return true;
  }

  // Runs `fn(const T&)` if a value is present, producing `fallback` otherwise.
  template <typename R, typename Fn>
  constexpr R MapOr(R fallback, Fn&& fn) const {
    if (!value_.has_value()) {
      return fallback;
    }
    return fn(*value_);
  }

 private:
  std::optional<T> value_;
};

// A cell holding exclusive access to a borrowed object, mirroring Tock's
// `TakeCell<'static, T>`. The cell owns *access*, not storage: it wraps a pointer to
// an object whose lifetime outlasts the cell (statically allocated in real Tock,
// board-owned here). `Take` moves the pointer out, enforcing at runtime the
// move-semantics Rust enforces at compile time: while taken, nobody else can reach
// the object through this cell.
template <typename T>
class TakeCell {
 public:
  constexpr TakeCell() : ptr_(nullptr) {}
  constexpr explicit TakeCell(T* ptr) : ptr_(ptr) {}

  constexpr bool IsSome() const { return ptr_ != nullptr; }
  constexpr bool IsNone() const { return ptr_ == nullptr; }

  // Removes the pointer from the cell. Returns nullptr if already taken.
  constexpr T* Take() {
    T* out = ptr_;
    ptr_ = nullptr;
    return out;
  }

  // Puts a pointer back (e.g. when a split-phase operation completes and returns the
  // buffer it borrowed).
  constexpr void Replace(T* ptr) { ptr_ = ptr; }

  // Runs `fn(T&)` with the contents if present, leaving the pointer in the cell.
  // Returns whether it ran.
  template <typename Fn>
  constexpr bool Map(Fn&& fn) {
    if (ptr_ == nullptr) {
      return false;
    }
    fn(*ptr_);
    return true;
  }

  // Like Map but produces a value, with `fallback` when the cell is empty.
  template <typename R, typename Fn>
  constexpr R MapOr(R fallback, Fn&& fn) {
    if (ptr_ == nullptr) {
      return fallback;
    }
    return fn(*ptr_);
  }

 private:
  T* ptr_;
};

// A cell that owns its storage but exposes take/replace access semantics, mirroring
// Tock's `MapCell<T>`. Unlike TakeCell the value lives inside the cell; `Take` moves
// it out by value.
template <typename T>
class MapCell {
 public:
  constexpr MapCell() = default;
  constexpr explicit MapCell(T value) : value_(std::move(value)) {}

  constexpr bool IsSome() const { return value_.has_value(); }
  constexpr bool IsNone() const { return !value_.has_value(); }

  constexpr void Put(T value) { value_ = std::move(value); }

  constexpr std::optional<T> Take() {
    std::optional<T> out = std::move(value_);
    value_.reset();
    return out;
  }

  template <typename Fn>
  constexpr bool Map(Fn&& fn) {
    if (!value_.has_value()) {
      return false;
    }
    fn(*value_);
    return true;
  }

 private:
  std::optional<T> value_;
};

}  // namespace tock

#endif  // TOCK_UTIL_CELLS_H_
