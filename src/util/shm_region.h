// ERA: 8
// Shared-memory region: the mmap substrate under the live-telemetry transport
// (kernel/telemetry.h). A writer process creates a file-backed mapping in the
// POSIX shm namespace (/dev/shm) and formats it; any number of reader processes
// map the same bytes read-only (tools/tap). All cross-process coordination
// happens through std::atomic words *inside* the mapping — this class only
// owns the lifecycle (create/size/map/unmap/unlink) and never touches content.
//
// Name resolution: a name containing '/' is used as a filesystem path verbatim
// (tests point it at a temp dir); anything else becomes /dev/shm/<name>, which
// is what shm_open(3) does underneath — spelled as plain open()+mmap() here so
// no librt link dependency is needed.
#ifndef TOCK_UTIL_SHM_REGION_H_
#define TOCK_UTIL_SHM_REGION_H_

#include <cstddef>
#include <string>

namespace tock {

class ShmRegion {
 public:
  ShmRegion() = default;
  ~ShmRegion();

  ShmRegion(const ShmRegion&) = delete;
  ShmRegion& operator=(const ShmRegion&) = delete;
  ShmRegion(ShmRegion&& other) noexcept;
  ShmRegion& operator=(ShmRegion&& other) noexcept;

  // Creates (replacing any stale file of the same name) a zero-filled region of
  // `bytes`, mapped read-write. The creator owns the name: a clean Close()
  // unlinks it, while a killed process leaves the file behind for post-mortem
  // attachment. Returns false with `*error` set on failure.
  bool CreateOrReplace(const std::string& name, size_t bytes, std::string* error);

  // Maps an existing region read-only (the tap side). The size comes from the
  // file itself. Writes through base() are a bus error by construction — a
  // reader cannot perturb the writer even by accident.
  bool OpenReadOnly(const std::string& name, std::string* error);

  // Unmaps (and, for the creator, unlinks) the region. Idempotent.
  void Close();

  // Makes Close() leave the backing file behind even for the creator — for
  // post-mortem inspection or a tap that attaches after the run finished.
  void ReleaseOwnership() { owner_ = false; }

  bool valid() const { return base_ != nullptr; }
  void* base() { return base_; }
  const void* base() const { return base_; }
  size_t size() const { return size_; }
  // The resolved filesystem path ("/dev/shm/<name>" for bare names).
  const std::string& path() const { return path_; }

  // The path a bare name resolves to; exposed so CLIs can report it.
  static std::string ResolvePath(const std::string& name);

 private:
  void MoveFrom(ShmRegion& other) noexcept;

  void* base_ = nullptr;
  size_t size_ = 0;
  int fd_ = -1;
  bool owner_ = false;  // creator unlinks on Close
  std::string path_;
};

}  // namespace tock

#endif  // TOCK_UTIL_SHM_REGION_H_
