// ERA: 1
// Error codes and the Result type used across the kernel, capsules and userspace ABI.
//
// Mirrors Tock's `ErrorCode` (kernel internal) and the success/failure variants encoded
// in system call return values. Numeric values match the Tock 2.0 ABI so that the
// simulated userspace sees the same constants a real Tock process would.
#ifndef TOCK_UTIL_ERROR_H_
#define TOCK_UTIL_ERROR_H_

#include <cstdint>
#include <utility>

namespace tock {

// Kernel-wide error codes. Values follow the Tock 2.0 ABI (kernel/src/errorcode.rs).
enum class ErrorCode : uint32_t {
  kFail = 1,         // Generic failure condition.
  kBusy = 2,         // Underlying system is busy; retry.
  kAlready = 3,      // The state requested is already set.
  kOff = 4,          // The component is powered down.
  kReserve = 5,      // Reservation required before use.
  kInvalid = 6,      // An invalid parameter was passed.
  kSize = 7,         // Parameter passed was too large.
  kCancel = 8,       // Operation cancelled by a call.
  kNoMem = 9,        // Memory required not available.
  kNoSupport = 10,   // Operation is not supported.
  kNoDevice = 11,    // Device is not available.
  kUninstalled = 12, // Device is not physically installed.
  kNoAck = 13,       // Packet transmission not acknowledged.
  kBadRval = 1024,   // Driver returned a malformed system call return value.
};

// Human-readable name for an error code (for logs and fault reports).
const char* ErrorCodeName(ErrorCode code);

// A value-or-error result, the kernel's equivalent of Rust's `Result<T, ErrorCode>`.
//
// Deliberately minimal: no exceptions, no heap. `T` must be default-constructible so
// the error arm can leave the payload vacant without a union; kernel payloads are all
// small value types (integers, spans, handles), so this costs nothing in practice.
template <typename T>
class Result {
 public:
  // Success constructor (implicit, mirrors `Ok(v)`).
  constexpr Result(T value) : ok_(true), value_(std::move(value)), error_(ErrorCode::kFail) {}
  // Failure constructor (implicit, mirrors `Err(e)`).
  constexpr Result(ErrorCode error) : ok_(false), value_(), error_(error) {}

  constexpr bool ok() const { return ok_; }
  constexpr explicit operator bool() const { return ok_; }

  // Success payload. Must only be called when ok().
  constexpr const T& value() const { return value_; }
  constexpr T& value() { return value_; }

  // Error code. Must only be called when !ok().
  constexpr ErrorCode error() const { return error_; }

  // Returns the payload, or `fallback` on error.
  constexpr T ValueOr(T fallback) const { return ok_ ? value_ : std::move(fallback); }

 private:
  bool ok_;
  T value_;
  ErrorCode error_;
};

// Result with no success payload (mirrors `Result<(), ErrorCode>`).
template <>
class Result<void> {
 public:
  constexpr Result() : ok_(true), error_(ErrorCode::kFail) {}
  constexpr Result(ErrorCode error) : ok_(false), error_(error) {}

  static constexpr Result Ok() { return Result(); }

  constexpr bool ok() const { return ok_; }
  constexpr explicit operator bool() const { return ok_; }
  constexpr ErrorCode error() const { return error_; }

 private:
  bool ok_;
  ErrorCode error_;
};

}  // namespace tock

#endif  // TOCK_UTIL_ERROR_H_
