// ERA: 4
// Typed register-field DSL (paper §4.3), the C++ analog of the `tock-registers` crate.
//
// Datasheets describe peripheral registers as named bit-fields with offsets, widths
// and access permissions. Hand-writing the shift/mask arithmetic for every access is
// tedious and error-prone; this DSL captures the datasheet once, as constexpr field
// descriptors, and generates the bit manipulation. All operations are constexpr and
// compile to the same instructions as the manual code (verified by bench E9).
//
// Usage, mirroring tock-registers:
//
//   struct Ctrl {
//     static constexpr Field<uint32_t> kEnable{0, 1};
//     static constexpr Field<uint32_t> kBaud{1, 3};
//     enum Baud : uint32_t { k9600 = 0, k115200 = 3 };
//   };
//   ReadWriteReg<uint32_t> ctrl;
//   ctrl.Write(Ctrl::kEnable.Set() + Ctrl::kBaud.Val(Ctrl::k115200));
//   uint32_t baud = ctrl.Read(Ctrl::kBaud);
#ifndef TOCK_UTIL_REGISTERS_H_
#define TOCK_UTIL_REGISTERS_H_

#include <cstdint>
#include <limits>

namespace tock {

// A field's value positioned within its register, ready to be combined and written.
// `mask` records which bits the value covers so Modify can preserve the rest.
template <typename T>
struct FieldValue {
  T mask;
  T value;

  // Combines two positioned field values (e.g. ENABLE::SET + BAUD.val(3)).
  constexpr FieldValue operator+(const FieldValue& other) const {
    return FieldValue{static_cast<T>(mask | other.mask), static_cast<T>(value | other.value)};
  }
};

// A bit-field within a register of underlying type T: `shift` is the bit offset of
// the field's LSB, `width` its size in bits.
template <typename T>
struct Field {
  unsigned shift;
  unsigned width;

  // Mask of the field in register position.
  constexpr T Mask() const {
    constexpr unsigned kBits = std::numeric_limits<T>::digits;
    T low = width >= kBits ? static_cast<T>(~static_cast<T>(0))
                           : static_cast<T>((static_cast<T>(1) << width) - 1);
    return static_cast<T>(low << shift);
  }

  // Positions `value` (given in field units) within the register; out-of-range bits
  // are truncated, matching hardware behaviour of writing a too-wide value.
  constexpr FieldValue<T> Val(T value) const {
    return FieldValue<T>{Mask(), static_cast<T>((value << shift) & Mask())};
  }

  // All field bits set / cleared.
  constexpr FieldValue<T> Set() const { return FieldValue<T>{Mask(), Mask()}; }
  constexpr FieldValue<T> Clear() const { return FieldValue<T>{Mask(), static_cast<T>(0)}; }

  // Extracts this field (in field units) from a raw register value.
  constexpr T ReadFrom(T reg) const { return static_cast<T>((reg & Mask()) >> shift); }

  // True if any bit of the field is set in `reg`.
  constexpr bool IsSetIn(T reg) const { return (reg & Mask()) != 0; }
};

// In-memory register with full read/write access (the storage side of a simulated
// peripheral, or a driver-local shadow register).
template <typename T>
class ReadWriteReg {
 public:
  constexpr ReadWriteReg() : value_(0) {}
  constexpr explicit ReadWriteReg(T value) : value_(value) {}

  constexpr T Get() const { return value_; }
  constexpr void Set(T value) { value_ = value; }

  constexpr T Read(const Field<T>& field) const { return field.ReadFrom(value_); }
  constexpr bool IsSet(const Field<T>& field) const { return field.IsSetIn(value_); }

  // Overwrites the whole register with the given field values (unset fields -> 0).
  constexpr void Write(const FieldValue<T>& fv) { value_ = fv.value; }

  // Read-modify-write: updates only the bits covered by `fv`.
  constexpr void Modify(const FieldValue<T>& fv) {
    value_ = static_cast<T>((value_ & ~fv.mask) | fv.value);
  }

 private:
  T value_;
};

// Register the driver may only read; hardware updates it through HwSet. Attempting a
// driver-side write is a compile error (the method does not exist) — the DSL's
// access-permission modelling from §4.3.
template <typename T>
class ReadOnlyReg {
 public:
  constexpr ReadOnlyReg() : value_(0) {}

  constexpr T Get() const { return value_; }
  constexpr T Read(const Field<T>& field) const { return field.ReadFrom(value_); }
  constexpr bool IsSet(const Field<T>& field) const { return field.IsSetIn(value_); }

  // Hardware-side update (peripheral implementation only).
  constexpr void HwSet(T value) { value_ = value; }
  constexpr void HwModify(const FieldValue<T>& fv) {
    value_ = static_cast<T>((value_ & ~fv.mask) | fv.value);
  }

 private:
  T value_;
};

// Register the driver may only write; reads return 0 on real hardware, so no driver
// read accessor exists. Hardware consumes the value through HwGet.
template <typename T>
class WriteOnlyReg {
 public:
  constexpr WriteOnlyReg() : value_(0) {}

  constexpr void Set(T value) { value_ = value; }
  constexpr void Write(const FieldValue<T>& fv) { value_ = fv.value; }

  // Hardware-side read (peripheral implementation only).
  constexpr T HwGet() const { return value_; }

 private:
  T value_;
};

// A local, mutable copy of a register value for staged updates — read the hardware
// register once, apply several Modify calls, write it back once.
template <typename T>
class LocalRegisterCopy {
 public:
  constexpr explicit LocalRegisterCopy(T value) : value_(value) {}

  constexpr T Get() const { return value_; }
  constexpr T Read(const Field<T>& field) const { return field.ReadFrom(value_); }
  constexpr void Modify(const FieldValue<T>& fv) {
    value_ = static_cast<T>((value_ & ~fv.mask) | fv.value);
  }

 private:
  T value_;
};

}  // namespace tock

#endif  // TOCK_UTIL_REGISTERS_H_
