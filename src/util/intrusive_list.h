// ERA: 1
// Intrusive singly-linked list, the C++ analog of Tock's `kernel::collections::List`.
// Nodes embed their own link, so list membership requires no allocation — essential
// for virtualizers that queue an unbounded-by-the-virtualizer number of clients whose
// storage is owned by each client (§2.2).
#ifndef TOCK_UTIL_INTRUSIVE_LIST_H_
#define TOCK_UTIL_INTRUSIVE_LIST_H_

#include <cstddef>

namespace tock {

// Embed one of these in T to make it linkable. A node may be on at most one list at a
// time (same invariant as Tock's ListLink).
template <typename T>
struct ListLink {
  T* next = nullptr;
};

// Intrusive list over T. `LinkMember` selects which embedded ListLink to use so a type
// can, in principle, sit on multiple lists.
template <typename T, ListLink<T> T::* LinkMember = &T::link>
class IntrusiveList {
 public:
  constexpr IntrusiveList() = default;

  constexpr bool IsEmpty() const { return head_ == nullptr; }

  constexpr T* Head() const { return head_; }

  // Pushes to the front. O(1).
  constexpr void PushHead(T* node) {
    (node->*LinkMember).next = head_;
    head_ = node;
  }

  // Pushes to the back. O(n); virtualizer queues are short and bounded by board
  // configuration, matching upstream behaviour.
  constexpr void PushTail(T* node) {
    (node->*LinkMember).next = nullptr;
    if (head_ == nullptr) {
      head_ = node;
      return;
    }
    T* cur = head_;
    while ((cur->*LinkMember).next != nullptr) {
      cur = (cur->*LinkMember).next;
    }
    (cur->*LinkMember).next = node;
  }

  // Removes and returns the head, or nullptr when empty.
  constexpr T* PopHead() {
    T* out = head_;
    if (out != nullptr) {
      head_ = (out->*LinkMember).next;
      (out->*LinkMember).next = nullptr;
    }
    return out;
  }

  // Unlinks `node` if present; returns whether it was found.
  constexpr bool Remove(T* node) {
    if (head_ == nullptr) {
      return false;
    }
    if (head_ == node) {
      head_ = (node->*LinkMember).next;
      (node->*LinkMember).next = nullptr;
      return true;
    }
    T* cur = head_;
    while ((cur->*LinkMember).next != nullptr) {
      if ((cur->*LinkMember).next == node) {
        (cur->*LinkMember).next = (node->*LinkMember).next;
        (node->*LinkMember).next = nullptr;
        return true;
      }
      cur = (cur->*LinkMember).next;
    }
    return false;
  }

  constexpr bool Contains(const T* node) const {
    for (T* cur = head_; cur != nullptr; cur = (cur->*LinkMember).next) {
      if (cur == node) {
        return true;
      }
    }
    return false;
  }

  constexpr size_t Size() const {
    size_t n = 0;
    for (T* cur = head_; cur != nullptr; cur = (cur->*LinkMember).next) {
      ++n;
    }
    return n;
  }

  // Iteration support (range-for over T*).
  class Iterator {
   public:
    constexpr explicit Iterator(T* node) : node_(node) {}
    constexpr T* operator*() const { return node_; }
    constexpr Iterator& operator++() {
      node_ = (node_->*LinkMember).next;
      return *this;
    }
    constexpr bool operator!=(const Iterator& other) const { return node_ != other.node_; }

   private:
    T* node_;
  };

  constexpr Iterator begin() const { return Iterator(head_); }
  constexpr Iterator end() const { return Iterator(nullptr); }

 private:
  T* head_ = nullptr;
};

}  // namespace tock

#endif  // TOCK_UTIL_INTRUSIVE_LIST_H_
