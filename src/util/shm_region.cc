// ERA: 8
#include "util/shm_region.h"

#include <fcntl.h>
#include <sys/mman.h>
#include <sys/stat.h>
#include <unistd.h>

#include <cerrno>
#include <cstring>
#include <utility>

namespace tock {

namespace {
std::string Errno(const char* what) {
  return std::string(what) + ": " + std::strerror(errno);
}
}  // namespace

std::string ShmRegion::ResolvePath(const std::string& name) {
  if (name.find('/') != std::string::npos) {
    return name;
  }
  return "/dev/shm/" + name;
}

ShmRegion::~ShmRegion() { Close(); }

void ShmRegion::MoveFrom(ShmRegion& other) noexcept {
  base_ = std::exchange(other.base_, nullptr);
  size_ = std::exchange(other.size_, 0);
  fd_ = std::exchange(other.fd_, -1);
  owner_ = std::exchange(other.owner_, false);
  path_ = std::move(other.path_);
  other.path_.clear();
}

ShmRegion::ShmRegion(ShmRegion&& other) noexcept { MoveFrom(other); }

ShmRegion& ShmRegion::operator=(ShmRegion&& other) noexcept {
  if (this != &other) {
    Close();
    MoveFrom(other);
  }
  return *this;
}

bool ShmRegion::CreateOrReplace(const std::string& name, size_t bytes,
                                std::string* error) {
  Close();
  path_ = ResolvePath(name);
  // Replace rather than reuse: a stale region from a killed run may have the
  // wrong geometry, and readers key off the header we are about to write.
  ::unlink(path_.c_str());
  int fd = ::open(path_.c_str(), O_RDWR | O_CREAT | O_EXCL, 0644);
  if (fd < 0) {
    if (error != nullptr) *error = Errno("open");
    return false;
  }
  if (::ftruncate(fd, static_cast<off_t>(bytes)) != 0) {
    if (error != nullptr) *error = Errno("ftruncate");
    ::close(fd);
    ::unlink(path_.c_str());
    return false;
  }
  void* base = ::mmap(nullptr, bytes, PROT_READ | PROT_WRITE, MAP_SHARED, fd, 0);
  if (base == MAP_FAILED) {
    if (error != nullptr) *error = Errno("mmap");
    ::close(fd);
    ::unlink(path_.c_str());
    return false;
  }
  base_ = base;
  size_ = bytes;
  fd_ = fd;
  owner_ = true;
  return true;
}

bool ShmRegion::OpenReadOnly(const std::string& name, std::string* error) {
  Close();
  path_ = ResolvePath(name);
  int fd = ::open(path_.c_str(), O_RDONLY);
  if (fd < 0) {
    if (error != nullptr) *error = Errno("open");
    return false;
  }
  struct stat st{};
  if (::fstat(fd, &st) != 0 || st.st_size <= 0) {
    if (error != nullptr) *error = Errno("fstat");
    ::close(fd);
    return false;
  }
  size_t bytes = static_cast<size_t>(st.st_size);
  void* base = ::mmap(nullptr, bytes, PROT_READ, MAP_SHARED, fd, 0);
  if (base == MAP_FAILED) {
    if (error != nullptr) *error = Errno("mmap");
    ::close(fd);
    return false;
  }
  base_ = base;
  size_ = bytes;
  fd_ = fd;
  owner_ = false;
  return true;
}

void ShmRegion::Close() {
  if (base_ != nullptr) {
    ::munmap(base_, size_);
    base_ = nullptr;
  }
  if (fd_ >= 0) {
    ::close(fd_);
    fd_ = -1;
  }
  if (owner_ && !path_.empty()) {
    ::unlink(path_.c_str());
  }
  owner_ = false;
  size_ = 0;
}

}  // namespace tock
