// ERA: 1
// Fixed-capacity ring buffer, used for upcall queues, UART receive queues, and the
// deferred-call scheduler. No heap: storage is embedded in the object, matching the
// kernel's heapless discipline (§2.4).
#ifndef TOCK_UTIL_RING_BUFFER_H_
#define TOCK_UTIL_RING_BUFFER_H_

#include <array>
#include <cstddef>
#include <optional>

namespace tock {

template <typename T, size_t N>
class RingBuffer {
  static_assert(N > 0, "ring buffer capacity must be positive");

 public:
  constexpr RingBuffer() = default;

  constexpr bool IsEmpty() const { return count_ == 0; }
  constexpr bool IsFull() const { return count_ == N; }
  constexpr size_t Size() const { return count_; }
  constexpr size_t Capacity() const { return N; }

  // Appends an element; returns false (dropping the element) when full. Callers that
  // must not lose events should check IsFull first and apply back-pressure.
  constexpr bool Push(T value) {
    if (IsFull()) {
      return false;
    }
    storage_[(head_ + count_) % N] = std::move(value);
    ++count_;
    return true;
  }

  // Removes and returns the oldest element, or nullopt when empty.
  constexpr std::optional<T> Pop() {
    if (IsEmpty()) {
      return std::nullopt;
    }
    T out = std::move(storage_[head_]);
    head_ = (head_ + 1) % N;
    --count_;
    return out;
  }

  // Oldest element without removing it.
  constexpr const T* Front() const { return IsEmpty() ? nullptr : &storage_[head_]; }

  constexpr void Clear() {
    head_ = 0;
    count_ = 0;
  }

  // Removes every element matching `pred`, preserving the order of the rest. Used by
  // the kernel to scrub the upcall queue when a subscription is swapped out (§3.3.2).
  template <typename Pred>
  constexpr size_t RemoveIf(Pred&& pred) {
    size_t kept = 0;
    size_t removed = 0;
    for (size_t i = 0; i < count_; ++i) {
      size_t src = (head_ + i) % N;
      if (pred(storage_[src])) {
        ++removed;
        continue;
      }
      size_t dst = (head_ + kept) % N;
      if (dst != src) {
        storage_[dst] = std::move(storage_[src]);
      }
      ++kept;
    }
    // Scrub the vacated tail slots. Removed elements were never moved out of their
    // slots (and compaction leaves moved-from residue), so without this the buffer
    // keeps scrubbed entries alive — for upcall queues that means a "cancelled"
    // upcall's data outlives its §3.3.2 scrub.
    for (size_t i = kept; i < count_; ++i) {
      storage_[(head_ + i) % N] = T{};
    }
    count_ = kept;
    return removed;
  }

  // Removes and returns the *oldest* element matching `pred`, or nullopt if none.
  // Unlike RemoveIf this stops scanning at the first hit, touches no storage at all
  // when the buffer is empty, and shifts only the elements behind the hit — the
  // shape the kernel's wait-for paths need (consume one matching upcall, usually
  // from an empty or near-empty queue).
  template <typename Pred>
  constexpr std::optional<T> RemoveFirstIf(Pred&& pred) {
    for (size_t i = 0; i < count_; ++i) {
      size_t src = (head_ + i) % N;
      if (!pred(storage_[src])) {
        continue;
      }
      T out = std::move(storage_[src]);
      for (size_t j = i + 1; j < count_; ++j) {
        storage_[(head_ + j - 1) % N] = std::move(storage_[(head_ + j) % N]);
      }
      // Scrub the vacated tail slot, for the same §3.3.2 hygiene as RemoveIf.
      storage_[(head_ + count_ - 1) % N] = T{};
      --count_;
      return out;
    }
    return std::nullopt;
  }

 private:
  std::array<T, N> storage_{};
  size_t head_ = 0;
  size_t count_ = 0;
};

}  // namespace tock

#endif  // TOCK_UTIL_RING_BUFFER_H_
