// ERA: 8
// Deterministic token-bucket rate limiter, driven by *simulated* cycles.
//
// Guards the telemetry ring against IRQ-storm event floods: a wedged driver
// re-arming an interrupt every few cycles would otherwise evict every useful
// record from the ring before a tap could read it. Because refill is computed
// from the simulated clock (never wall time), admission decisions are a pure
// function of the event cycle sequence — the same run admits and suppresses
// the same events regardless of host speed, thread count, or attached
// readers, which is what lets tests reconcile the suppressed count exactly.
#ifndef TOCK_UTIL_RATE_LIMITER_H_
#define TOCK_UTIL_RATE_LIMITER_H_

#include <cstdint>

namespace tock {

class RateLimiter {
 public:
  struct Config {
    // Bucket depth: how many events may burst back-to-back.
    uint32_t burst = 0;
    // Refill rate: `tokens_per_interval` tokens every `interval_cycles`
    // simulated cycles. interval_cycles == 0 disables limiting entirely
    // (every event admitted) — the default, so telemetry users opt in.
    uint32_t tokens_per_interval = 0;
    uint64_t interval_cycles = 0;
  };

  RateLimiter() = default;
  explicit RateLimiter(const Config& config) { Configure(config); }

  void Configure(const Config& config) {
    config_ = config;
    tokens_ = config.burst;
    primed_ = false;
    admitted_ = 0;
    suppressed_ = 0;
  }

  bool unlimited() const {
    return config_.interval_cycles == 0 || config_.tokens_per_interval == 0 ||
           config_.burst == 0;
  }

  // Returns true if the event at simulated time `cycle` is admitted.
  // `cycle` must be non-decreasing across calls (simulated time is).
  bool Admit(uint64_t cycle) {
    if (unlimited()) {
      ++admitted_;
      return true;
    }
    if (!primed_) {
      // The bucket starts full at the first event; refill intervals are
      // anchored to that cycle so the schedule is run-deterministic.
      primed_ = true;
      last_refill_cycle_ = cycle;
    } else if (cycle > last_refill_cycle_) {
      const uint64_t intervals =
          (cycle - last_refill_cycle_) / config_.interval_cycles;
      if (intervals > 0) {
        const uint64_t refill = intervals * config_.tokens_per_interval;
        tokens_ = refill >= config_.burst - tokens_
                      ? config_.burst
                      : tokens_ + static_cast<uint32_t>(refill);
        last_refill_cycle_ += intervals * config_.interval_cycles;
      }
    }
    if (tokens_ > 0) {
      --tokens_;
      ++admitted_;
      return true;
    }
    ++suppressed_;
    return false;
  }

  uint64_t admitted() const { return admitted_; }
  uint64_t suppressed() const { return suppressed_; }
  uint32_t tokens() const { return tokens_; }

 private:
  Config config_;
  uint32_t tokens_ = 0;
  bool primed_ = false;
  uint64_t last_refill_cycle_ = 0;
  uint64_t admitted_ = 0;
  uint64_t suppressed_ = 0;
};

}  // namespace tock

#endif  // TOCK_UTIL_RATE_LIMITER_H_
