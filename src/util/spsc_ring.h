// ERA: 8
// Single-writer lossy sequence-numbered ring — the wire format of the live
// telemetry transport (kernel/telemetry.h), laid out over raw shared memory
// (util/shm_region.h) so an out-of-process reader can follow a live run.
//
// Contract (the SwQueue idiom from ROADMAP item 4):
//   - Exactly one writer. The writer NEVER blocks, waits, or checks for
//     readers: Push is a fixed number of atomic stores regardless of how many
//     taps are attached (including zero). This is what makes the transport
//     zero-perturbation — a slow reader can lose events but can never slow
//     the simulation down or change its cycle accounting.
//   - Any number of independent readers, each tracking its own next sequence
//     number. A reader that falls more than `capacity` records behind finds
//     its slot overwritten and resynchronises to the oldest live record,
//     reporting the exact number of records it missed (head - capacity is the
//     oldest surviving sequence number, so the gap is precise, not a guess).
//   - Torn reads are detected with a per-slot begin/end sequence pair
//     (a per-record seqlock): the writer bumps `begin` before touching the
//     payload and `end` after, so a reader that raced an overwrite sees
//     begin != end-for-its-sequence and retries or skips.
//
// Every word in the shared region is a std::atomic<uint64_t> accessed with
// explicit ordering — no plain loads/stores touch shared bytes, so the TSan
// fleet leg can map the same region in-process and hammer it from a reader
// thread without false positives (and without real races).
#ifndef TOCK_UTIL_SPSC_RING_H_
#define TOCK_UTIL_SPSC_RING_H_

#include <atomic>
#include <cstddef>
#include <cstdint>

namespace tock {

// Geometry + write cursor, at the front of the ring's memory. The cursor sits
// alone on its cache line so reader polling never contends with the payload
// slots, and the geometry words let a reader validate a mapping it did not
// create.
struct SpscRingHeader {
  alignas(64) std::atomic<uint64_t> head;  // sequence of the NEXT record
  std::atomic<uint64_t> geometry;          // capacity<<32 | word_count
};
static_assert(sizeof(SpscRingHeader) == 64, "header must fill one cache line");

// One slot: [begin seq][end seq][payload words...]. begin/end carry seq+1 of
// the record currently stored (0 = never written).
inline constexpr size_t kSpscSlotOverheadWords = 2;

inline constexpr size_t SpscSlotWords(size_t word_count) {
  return kSpscSlotOverheadWords + word_count;
}

// Total bytes a ring with this geometry occupies, for region sizing.
inline constexpr size_t SpscRingBytes(size_t capacity, size_t word_count) {
  return sizeof(SpscRingHeader) +
         capacity * SpscSlotWords(word_count) * sizeof(uint64_t);
}

class SpscWriter {
 public:
  // Formats `mem` (which must hold SpscRingBytes(capacity, word_count), be
  // 64-byte aligned, and start zeroed) and takes the writer role. `capacity`
  // must be a power of two.
  void Init(void* mem, uint64_t capacity, uint32_t word_count) {
    header_ = static_cast<SpscRingHeader*>(mem);
    slots_ = reinterpret_cast<std::atomic<uint64_t>*>(header_ + 1);
    capacity_ = capacity;
    word_count_ = word_count;
    header_->head.store(0, std::memory_order_relaxed);
    header_->geometry.store((capacity << 32) | word_count,
                            std::memory_order_release);
  }

  bool valid() const { return header_ != nullptr; }
  uint64_t capacity() const { return capacity_; }

  // Publishes one record. Fixed cost, never blocks; the oldest unread record
  // is silently overwritten when the ring is full (readers detect the gap).
  void Push(const uint64_t* words) {
    const uint64_t seq = header_->head.load(std::memory_order_relaxed);
    std::atomic<uint64_t>* slot =
        slots_ + (seq & (capacity_ - 1)) * SpscSlotWords(word_count_);
    // begin first, then payload: a reader that saw any overwritten payload
    // word is guaranteed to also see the new begin and reject the read.
    slot[0].store(seq + 1, std::memory_order_relaxed);
    std::atomic_thread_fence(std::memory_order_release);
    for (uint32_t i = 0; i < word_count_; ++i) {
      slot[kSpscSlotOverheadWords + i].store(words[i],
                                             std::memory_order_relaxed);
    }
    slot[1].store(seq + 1, std::memory_order_release);  // end: record complete
    header_->head.store(seq + 1, std::memory_order_release);
  }

  // Sequence of the next record == total records ever published.
  uint64_t published() const {
    return header_->head.load(std::memory_order_relaxed);
  }

  // Records overwritten before any possible reader could still reach them
  // (monotone, writer-side, independent of whether anyone is attached).
  uint64_t evicted() const {
    const uint64_t head = published();
    return head > capacity_ ? head - capacity_ : 0;
  }

 private:
  SpscRingHeader* header_ = nullptr;
  std::atomic<uint64_t>* slots_ = nullptr;
  uint64_t capacity_ = 0;
  uint32_t word_count_ = 0;
};

class SpscReader {
 public:
  enum class Poll : uint8_t { kEmpty, kRecord };

  // Validates and attaches to a ring formatted by SpscWriter::Init. `bytes`
  // is what the mapping actually has left at `mem`; a truncated or garbage
  // region fails here instead of faulting later.
  bool Bind(const void* mem, size_t bytes) {
    if (mem == nullptr || bytes < sizeof(SpscRingHeader)) return false;
    header_ = static_cast<const SpscRingHeader*>(mem);
    const uint64_t geometry = header_->geometry.load(std::memory_order_acquire);
    const uint64_t capacity = geometry >> 32;
    const uint32_t word_count = static_cast<uint32_t>(geometry);
    if (capacity == 0 || (capacity & (capacity - 1)) != 0 ||
        word_count == 0 || word_count > kMaxWordCount ||
        bytes < SpscRingBytes(capacity, word_count)) {
      header_ = nullptr;
      return false;
    }
    slots_ = reinterpret_cast<const std::atomic<uint64_t>*>(header_ + 1);
    capacity_ = capacity;
    word_count_ = word_count;
    next_ = 0;
    lost_ = 0;
    return true;
  }

  bool valid() const { return header_ != nullptr; }
  uint32_t word_count() const { return word_count_; }
  uint64_t capacity() const { return capacity_; }

  // Copies the next record into `words_out` (word_count() words). If records
  // were overwritten before we got to them, `*gap_out` receives the exact
  // count of records lost immediately before the returned one (0 when none).
  Poll PollNext(uint64_t* words_out, uint64_t* gap_out) {
    uint64_t gap = 0;
    for (int attempt = 0; attempt < kTornRetryLimit; ++attempt) {
      const uint64_t head = header_->head.load(std::memory_order_acquire);
      if (next_ >= head) {
        if (gap_out != nullptr) *gap_out = 0;
        return Poll::kEmpty;  // caught up (any gap already charged persists
                              // in lost_ and re-reports on the next record)
      }
      const uint64_t oldest = head > capacity_ ? head - capacity_ : 0;
      if (next_ < oldest) {  // fell behind: jump to the oldest live record
        gap += oldest - next_;
        lost_ += oldest - next_;
        next_ = oldest;
      }
      const std::atomic<uint64_t>* slot =
          slots_ + (next_ & (capacity_ - 1)) * SpscSlotWords(word_count_);
      if (slot[1].load(std::memory_order_acquire) != next_ + 1) {
        continue;  // writer is mid-publish for this slot; head will confirm
      }
      for (uint32_t i = 0; i < word_count_; ++i) {
        words_out[i] =
            slot[kSpscSlotOverheadWords + i].load(std::memory_order_relaxed);
      }
      std::atomic_thread_fence(std::memory_order_acquire);
      if (slot[0].load(std::memory_order_relaxed) == next_ + 1) {
        ++next_;
        if (gap_out != nullptr) *gap_out = gap;
        return Poll::kRecord;
      }
      // Torn: the writer lapped us mid-copy. Re-resync from head and retry.
    }
    // Writer stalled mid-overwrite of exactly this slot (descheduled between
    // begin and end). Skip the one record rather than spinning forever.
    ++next_;
    ++lost_;
    ++gap;
    if (gap_out != nullptr) *gap_out = gap;
    return Poll::kEmpty;
  }

  // Total records this reader missed (sum of all reported gaps + skips).
  uint64_t lost() const { return lost_; }
  // Sequence number of the next record this reader will return.
  uint64_t next_seq() const { return next_; }
  // Records currently published by the writer (for drain loops).
  uint64_t published() const {
    return header_->head.load(std::memory_order_acquire);
  }

  static constexpr uint32_t kMaxWordCount = 64;
  static constexpr int kTornRetryLimit = 64;

 private:
  const SpscRingHeader* header_ = nullptr;
  const std::atomic<uint64_t>* slots_ = nullptr;
  uint64_t capacity_ = 0;
  uint32_t word_count_ = 0;
  uint64_t next_ = 0;
  uint64_t lost_ = 0;
};

}  // namespace tock

#endif  // TOCK_UTIL_SPSC_RING_H_
