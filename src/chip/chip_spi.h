// ERA: 1
// hil::SpiMaster over an SPI controller, parameterized at compile time on the chip-
// select polarities the silicon supports (§4.1 / Figure 3).
//
// `SupportedPolarityMask` is a non-type template parameter: bit 0 = the controller
// can generate an active-low CS, bit 1 = active-high. Typed device drivers (e.g.
// board/composition.h's SpiDevice) static_assert their required polarity against
// this mask, so an impossible stackup is a *compile error* — the paper's "mismatches
// are caught at compile time through a type error".
#ifndef TOCK_CHIP_CHIP_SPI_H_
#define TOCK_CHIP_CHIP_SPI_H_

#include "chip/kernel_ram.h"
#include "chip/regio.h"
#include "hw/spi.h"
#include "kernel/driver.h"
#include "kernel/hil.h"
#include "util/cells.h"

namespace tock {

// Polarity capability bits for the template parameter.
struct SpiCsCaps {
  static constexpr uint32_t kActiveLow = 1u << 0;
  static constexpr uint32_t kActiveHigh = 1u << 1;
  static constexpr uint32_t kBoth = kActiveLow | kActiveHigh;
};

template <uint32_t SupportedPolarityMask>
class ChipSpi : public hil::SpiMaster, public InterruptService {
 public:
  static constexpr uint32_t kStagingSize = 256;
  static constexpr uint32_t kSupportedPolarities = SupportedPolarityMask;

  ChipSpi(Mcu* mcu, uint32_t base, KernelRamAllocator* kram)
      : regs_(mcu, base), staging_(kram->Allocate(kStagingSize)) {}

  // Applies the given polarity. Statically-validated stacks only call this with a
  // polarity in SupportedPolarityMask; the runtime check remains as belt-and-braces
  // for hand-wired (unchecked) configurations, mirroring the bug class Fig 3 removes.
  Result<void> ConfigurePolarity(CsPolarity polarity) {
    uint32_t bit = polarity == CsPolarity::kActiveLow ? SpiCsCaps::kActiveLow
                                                      : SpiCsCaps::kActiveHigh;
    if ((SupportedPolarityMask & bit) == 0) {
      return Result<void>(ErrorCode::kNoSupport);
    }
    regs_.ModifyField(SpiRegs::kCtrl,
                      SpiRegs::Ctrl::kCsPolarity.Val(static_cast<uint32_t>(polarity)));
    return Result<void>::Ok();
  }

  void Enable() { regs_.ModifyField(SpiRegs::kCtrl, SpiRegs::Ctrl::kEnable.Set()); }

  // hil::SpiMaster --------------------------------------------------------------------
  hil::BufResult Transfer(SubSliceMut buffer) override {
    if (buffer_.IsSome()) {
      return hil::Refused(ErrorCode::kBusy, buffer);
    }
    uint32_t len = static_cast<uint32_t>(buffer.Size());
    if (len == 0 || len > kStagingSize) {
      return hil::Refused(ErrorCode::kSize, buffer);
    }
    regs_.mcu()->bus().WriteBlock(staging_, buffer.Active().data(), len);
    buffer_.Set(buffer);
    len_ = len;
    regs_.Write(SpiRegs::kDmaTxAddr, staging_);
    regs_.Write(SpiRegs::kDmaRxAddr, staging_);
    regs_.Write(SpiRegs::kLen, len);
    return hil::Started();
  }

  Result<void> SelectChip(unsigned cs_index) override {
    if (buffer_.IsSome()) {
      return Result<void>(ErrorCode::kBusy);
    }
    regs_.Write(SpiRegs::kCsSelect, cs_index);
    return Result<void>::Ok();
  }

  void SetSpiClient(hil::SpiClient* client) override { client_ = client; }

  // InterruptService ---------------------------------------------------------------------
  void HandleInterrupt(unsigned line) override {
    (void)line;
    uint32_t status = regs_.Read(SpiRegs::kStatus);
    regs_.Write(SpiRegs::kIntClr, SpiRegs::Status::kDone.Set().value);
    if (!SpiRegs::Status::kDone.IsSetIn(status)) {
      return;
    }
    if (auto buffer = buffer_.Take()) {
      regs_.mcu()->bus().ReadBlock(staging_, buffer->Active().data(), len_);
      if (client_ != nullptr) {
        client_->TransferComplete(*buffer, Result<void>::Ok());
      }
    }
  }

 private:
  RegIo regs_;
  uint32_t staging_;
  hil::SpiClient* client_ = nullptr;
  OptionalCell<SubSliceMut> buffer_;
  uint32_t len_ = 0;
};

}  // namespace tock

#endif  // TOCK_CHIP_CHIP_SPI_H_
