// ERA: 1
// hil::PacketRadio over the packet radio peripheral.
#ifndef TOCK_CHIP_CHIP_RADIO_H_
#define TOCK_CHIP_CHIP_RADIO_H_

#include "chip/kernel_ram.h"
#include "chip/regio.h"
#include "hw/radio.h"
#include "kernel/driver.h"
#include "kernel/hil.h"
#include "util/cells.h"

namespace tock {

class ChipRadio : public hil::PacketRadio, public InterruptService {
 public:
  ChipRadio(Mcu* mcu, uint32_t base, KernelRamAllocator* kram, uint16_t node_addr)
      : regs_(mcu, base),
        node_addr_(node_addr),
        tx_staging_(kram->Allocate(Radio::kMaxPacket)),
        rx_staging_(kram->Allocate(Radio::kMaxPacket)) {}

  // Hardware bring-up; must run after bus attachment.
  void Init() {
    regs_.Write(RadioRegs::kNodeAddr, node_addr_);
    regs_.WriteField(RadioRegs::kCtrl,
                     RadioRegs::Ctrl::kEnable.Set() + RadioRegs::Ctrl::kRxEnable.Set());
    regs_.Write(RadioRegs::kRxAddr, rx_staging_);
    regs_.Write(RadioRegs::kRxMaxLen, Radio::kMaxPacket);
  }

  hil::BufResult TransmitPacket(uint16_t dst, SubSliceMut buffer) override {
    if (tx_buffer_.IsSome()) {
      return hil::Refused(ErrorCode::kBusy, buffer);
    }
    uint32_t len = static_cast<uint32_t>(buffer.Size());
    if (len == 0 || len > Radio::kMaxPacket) {
      return hil::Refused(ErrorCode::kSize, buffer);
    }
    regs_.mcu()->bus().WriteBlock(tx_staging_, buffer.Active().data(), len);
    tx_buffer_.Set(buffer);
    regs_.Write(RadioRegs::kDstAddr, dst);
    regs_.Write(RadioRegs::kTxAddr, tx_staging_);
    regs_.Write(RadioRegs::kTxLen, len);
    return hil::Started();
  }

  hil::BufResult StartReceive(SubSliceMut buffer) override {
    if (rx_buffer_.IsSome()) {
      return hil::Refused(ErrorCode::kBusy, buffer);
    }
    rx_buffer_.Set(buffer);
    return hil::Started();
  }

  void SetRadioClient(hil::RadioClient* client) override { client_ = client; }

  uint16_t LocalAddress() override {
    return static_cast<uint16_t>(regs_.Read(RadioRegs::kNodeAddr));
  }

  // Dropped-on-arrival frames observed via the status register (hw keeps its own
  // count too; this one is what the kernel side saw and acknowledged).
  uint64_t rx_overruns() const { return rx_overruns_; }

  void HandleInterrupt(unsigned line) override {
    (void)line;
    uint32_t status = regs_.Read(RadioRegs::kStatus);
    regs_.Write(RadioRegs::kIntClr,
                (RadioRegs::Status::kTxDone.Set() + RadioRegs::Status::kRxDone.Set() +
                 RadioRegs::Status::kRxOverrun.Set())
                    .value);
    if (RadioRegs::Status::kRxOverrun.IsSetIn(status)) {
      ++rx_overruns_;  // a frame was dropped while the RX buffer held unread data
    }

    if (RadioRegs::Status::kTxDone.IsSetIn(status)) {
      if (auto buffer = tx_buffer_.Take()) {
        if (client_ != nullptr) {
          client_->TransmitDone(*buffer, Result<void>::Ok());
        }
      }
    }
    if (RadioRegs::Status::kRxDone.IsSetIn(status)) {
      uint32_t len = regs_.Read(RadioRegs::kRxLen);
      if (auto buffer = rx_buffer_.Take()) {
        uint32_t copy = len;
        if (copy > buffer->Size()) {
          copy = static_cast<uint32_t>(buffer->Size());
        }
        regs_.mcu()->bus().ReadBlock(rx_staging_, buffer->Active().data(), copy);
        if (client_ != nullptr) {
          client_->PacketReceived(*buffer, copy);
        }
      }
      // If no buffer was armed the packet is lost, as on real radios.
    }
  }

 private:
  RegIo regs_;
  uint16_t node_addr_;
  uint32_t tx_staging_;
  uint32_t rx_staging_;
  hil::RadioClient* client_ = nullptr;
  uint64_t rx_overruns_ = 0;
  OptionalCell<SubSliceMut> tx_buffer_;
  OptionalCell<SubSliceMut> rx_buffer_;
};

}  // namespace tock

#endif  // TOCK_CHIP_CHIP_RADIO_H_
