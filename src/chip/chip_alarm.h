// ERA: 1
// hil::Alarm over the AlarmTimer peripheral's MMIO registers — the lowest layer of
// the timer stack that §5.4 calls out as subtle-bug territory. One hardware compare
// register serves the whole system; multiplexing happens above, in the
// VirtualAlarmMux capsule.
#ifndef TOCK_CHIP_CHIP_ALARM_H_
#define TOCK_CHIP_CHIP_ALARM_H_

#include "chip/regio.h"
#include "hw/timer.h"
#include "kernel/driver.h"
#include "kernel/hil.h"

namespace tock {

class ChipAlarm : public hil::Alarm, public InterruptService {
 public:
  ChipAlarm(Mcu* mcu, uint32_t base) : regs_(mcu, base) {}

  // hil::Alarm
  uint32_t Now() override { return regs_.Read(AlarmRegs::kNow); }

  void SetAlarm(uint32_t reference, uint32_t dt) override {
    uint32_t expiration = reference + dt;
    uint32_t now = Now();
    // If the window already passed, fire as soon as the hardware can manage rather
    // than a full 32-bit wrap later — the classic virtualization-layer hazard.
    if (Expired(now, reference, dt)) {
      expiration = now + kMinDt;
    } else if (expiration - now < kMinDt) {
      expiration = now + kMinDt;
    }
    armed_ = true;
    expiration_ = expiration;
    regs_.Write(AlarmRegs::kCompare, expiration);
    regs_.WriteField(AlarmRegs::kCtrl, AlarmRegs::Ctrl::kEnable.Set());
  }

  uint32_t GetAlarm() override { return expiration_; }

  void Disarm() override {
    armed_ = false;
    regs_.Write(AlarmRegs::kCtrl, 0);
    regs_.Write(AlarmRegs::kIntClr, 1);
  }

  bool IsArmed() override { return armed_; }

  void SetClient(hil::AlarmClient* client) override { client_ = client; }

  // InterruptService
  void HandleInterrupt(unsigned line) override {
    (void)line;
    regs_.Write(AlarmRegs::kIntClr, 1);
    regs_.Write(AlarmRegs::kCtrl, 0);
    armed_ = false;
    if (client_ != nullptr) {
      client_->AlarmFired();
    }
  }

 private:
  // Minimum future distance the hardware can reliably match: programming the
  // compare + control registers costs several bus cycles, so a smaller margin could
  // see the counter pass the compare value mid-programming — which the hardware
  // treats as "match a full 32-bit wrap later" (§5.4's classic timer-logic bug).
  static constexpr uint32_t kMinDt = 16;

  RegIo regs_;
  hil::AlarmClient* client_ = nullptr;
  bool armed_ = false;
  uint32_t expiration_ = 0;
};

}  // namespace tock

#endif  // TOCK_CHIP_CHIP_ALARM_H_
