// ERA: 1
// hil::GpioController over the GPIO bank's MMIO registers.
#ifndef TOCK_CHIP_CHIP_GPIO_H_
#define TOCK_CHIP_CHIP_GPIO_H_

#include "chip/regio.h"
#include "hw/gpio.h"
#include "kernel/driver.h"
#include "kernel/hil.h"

namespace tock {

class ChipGpio : public hil::GpioController, public InterruptService {
 public:
  ChipGpio(Mcu* mcu, uint32_t base) : regs_(mcu, base) {}

  void MakeOutput(unsigned pin) override {
    regs_.Write(GpioRegs::kDir, regs_.Read(GpioRegs::kDir) | Bit(pin));
  }
  void MakeInput(unsigned pin) override {
    regs_.Write(GpioRegs::kDir, regs_.Read(GpioRegs::kDir) & ~Bit(pin));
  }
  void SetPin(unsigned pin, bool level) override {
    uint32_t out = regs_.Read(GpioRegs::kOut);
    regs_.Write(GpioRegs::kOut, level ? (out | Bit(pin)) : (out & ~Bit(pin)));
  }
  bool ReadPin(unsigned pin) override { return (regs_.Read(GpioRegs::kIn) & Bit(pin)) != 0; }

  void EnableInterrupt(unsigned pin, hil::GpioEdge edge) override {
    uint32_t rise = regs_.Read(GpioRegs::kIrqRise);
    uint32_t fall = regs_.Read(GpioRegs::kIrqFall);
    bool rising = edge == hil::GpioEdge::kRising || edge == hil::GpioEdge::kBoth;
    bool falling = edge == hil::GpioEdge::kFalling || edge == hil::GpioEdge::kBoth;
    regs_.Write(GpioRegs::kIrqRise, rising ? (rise | Bit(pin)) : (rise & ~Bit(pin)));
    regs_.Write(GpioRegs::kIrqFall, falling ? (fall | Bit(pin)) : (fall & ~Bit(pin)));
  }

  void DisableInterrupt(unsigned pin) override {
    regs_.Write(GpioRegs::kIrqRise, regs_.Read(GpioRegs::kIrqRise) & ~Bit(pin));
    regs_.Write(GpioRegs::kIrqFall, regs_.Read(GpioRegs::kIrqFall) & ~Bit(pin));
  }

  void SetInterruptClient(hil::GpioInterruptClient* client) override { client_ = client; }
  unsigned NumPins() override { return Gpio::kNumPins; }

  // InterruptService
  void HandleInterrupt(unsigned line) override {
    (void)line;
    uint32_t pending = regs_.Read(GpioRegs::kIrqStatus);
    regs_.Write(GpioRegs::kIntClr, pending);
    uint32_t levels = regs_.Read(GpioRegs::kIn);
    for (unsigned pin = 0; pin < Gpio::kNumPins; ++pin) {
      if ((pending & Bit(pin)) != 0 && client_ != nullptr) {
        client_->PinInterrupt(pin, (levels & Bit(pin)) != 0);
      }
    }
  }

 private:
  static constexpr uint32_t Bit(unsigned pin) { return 1u << pin; }

  RegIo regs_;
  hil::GpioInterruptClient* client_ = nullptr;
};

}  // namespace tock

#endif  // TOCK_CHIP_CHIP_GPIO_H_
