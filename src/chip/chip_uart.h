// ERA: 1
// hil::UartTransmit / hil::UartReceive over the UART peripheral. DMA transfers stage
// through a kernel-RAM window: the buffer contents are copied into simulated RAM,
// the DMA engine is pointed at the staging region, and the kernel buffer is held in
// a TakeCell until the completion interrupt returns it (§4.2's ownership-passing
// discipline).
#ifndef TOCK_CHIP_CHIP_UART_H_
#define TOCK_CHIP_CHIP_UART_H_

#include "chip/kernel_ram.h"
#include "chip/regio.h"
#include "hw/uart.h"
#include "kernel/driver.h"
#include "kernel/hil.h"
#include "util/cells.h"

namespace tock {

class ChipUart : public hil::UartTransmit, public hil::UartReceive, public InterruptService {
 public:
  static constexpr uint32_t kStagingSize = 256;

  ChipUart(Mcu* mcu, uint32_t base, KernelRamAllocator* kram)
      : regs_(mcu, base),
        tx_staging_(kram->Allocate(kStagingSize)),
        rx_staging_(kram->Allocate(kStagingSize)) {}

  // Hardware bring-up. Must run after the peripheral is attached to the bus (board
  // constructors build chip drivers before bus wiring completes).
  void Init() {
    regs_.WriteField(UartRegs::kCtrl,
                     UartRegs::Ctrl::kTxEnable.Set() + UartRegs::Ctrl::kRxEnable.Set());
  }

  // hil::UartTransmit
  hil::BufResult Transmit(SubSliceMut buffer) override {
    if (tx_buffer_.IsSome()) {
      return hil::Refused(ErrorCode::kBusy, buffer);
    }
    uint32_t len = static_cast<uint32_t>(buffer.Size());
    if (len == 0 || len > kStagingSize) {
      return hil::Refused(ErrorCode::kSize, buffer);
    }
    // Stage into simulated kernel RAM for the DMA engine.
    regs_.mcu()->bus().WriteBlock(tx_staging_, buffer.Active().data(), len);
    tx_buffer_.Set(buffer);
    regs_.Write(UartRegs::kDmaTxAddr, tx_staging_);
    regs_.Write(UartRegs::kDmaTxLen, len);
    return hil::Started();
  }

  void SetTransmitClient(hil::UartTransmitClient* client) override { tx_client_ = client; }

  // hil::UartReceive
  hil::BufResult Receive(SubSliceMut buffer) override {
    if (rx_buffer_.IsSome()) {
      return hil::Refused(ErrorCode::kBusy, buffer);
    }
    uint32_t len = static_cast<uint32_t>(buffer.Size());
    if (len == 0 || len > kStagingSize) {
      return hil::Refused(ErrorCode::kSize, buffer);
    }
    rx_buffer_.Set(buffer);
    rx_len_ = len;
    regs_.Write(UartRegs::kDmaRxAddr, rx_staging_);
    regs_.Write(UartRegs::kDmaRxLen, len);
    return hil::Started();
  }

  void SetReceiveClient(hil::UartReceiveClient* client) override { rx_client_ = client; }

  // InterruptService
  void HandleInterrupt(unsigned line) override {
    (void)line;
    uint32_t status = regs_.Read(UartRegs::kStatus);
    regs_.Write(UartRegs::kIntClr,
                (UartRegs::Status::kTxDone.Set() + UartRegs::Status::kRxDone.Set()).value);

    if (UartRegs::Status::kTxDone.IsSetIn(status)) {
      if (auto buffer = tx_buffer_.Take()) {
        if (tx_client_ != nullptr) {
          tx_client_->TransmitComplete(*buffer, Result<void>::Ok());
        }
      }
    }
    if (UartRegs::Status::kRxDone.IsSetIn(status)) {
      if (auto buffer = rx_buffer_.Take()) {
        regs_.mcu()->bus().ReadBlock(rx_staging_, buffer->Active().data(), rx_len_);
        if (rx_client_ != nullptr) {
          rx_client_->ReceiveComplete(*buffer, rx_len_, Result<void>::Ok());
        }
      }
    }
  }

 private:
  RegIo regs_;
  uint32_t tx_staging_;
  uint32_t rx_staging_;
  hil::UartTransmitClient* tx_client_ = nullptr;
  hil::UartReceiveClient* rx_client_ = nullptr;
  OptionalCell<SubSliceMut> tx_buffer_;
  OptionalCell<SubSliceMut> rx_buffer_;
  uint32_t rx_len_ = 0;
};

}  // namespace tock

#endif  // TOCK_CHIP_CHIP_UART_H_
