// ERA: 1
// Allocator for the kernel's reserved RAM window (the analog of kernel .bss on real
// hardware). Chip drivers grab DMA staging regions here at board-init time; after
// boot the allocator is never consulted again, preserving the kernel's heapless
// steady state (§2.4).
#ifndef TOCK_CHIP_KERNEL_RAM_H_
#define TOCK_CHIP_KERNEL_RAM_H_

#include <cassert>
#include <cstdint>

#include "hw/memory_map.h"

namespace tock {

class KernelRamAllocator {
 public:
  KernelRamAllocator(uint32_t base, uint32_t size) : next_(base), end_(base + size) {}

  // Returns the simulated address of a fresh `size`-byte region.
  uint32_t Allocate(uint32_t size, uint32_t align = 4) {
    uint32_t addr = (next_ + align - 1) & ~(align - 1);
    assert(addr + size <= end_ && "kernel RAM reserve exhausted at board init");
    next_ = addr + size;
    return addr;
  }

  uint32_t remaining() const { return end_ - next_; }

 private:
  uint32_t next_;
  uint32_t end_;
};

}  // namespace tock

#endif  // TOCK_CHIP_KERNEL_RAM_H_
