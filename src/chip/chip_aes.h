// ERA: 3
// hil::AesEngine over the AES accelerator (in-place crypt through a kernel-RAM
// staging window).
#ifndef TOCK_CHIP_CHIP_AES_H_
#define TOCK_CHIP_CHIP_AES_H_

#include "chip/kernel_ram.h"
#include "chip/regio.h"
#include "hw/crypto_accel.h"
#include "kernel/driver.h"
#include "kernel/hil.h"
#include "util/cells.h"

namespace tock {

class ChipAes : public hil::AesEngine, public InterruptService {
 public:
  static constexpr uint32_t kStagingSize = 512;

  ChipAes(Mcu* mcu, uint32_t base, KernelRamAllocator* kram)
      : regs_(mcu, base), staging_(kram->Allocate(kStagingSize)) {}

  Result<void> SetKey(SubSlice key) override {
    if (busy_ || key.Size() != 16) {
      return Result<void>(busy_ ? ErrorCode::kBusy : ErrorCode::kSize);
    }
    WriteWords(AesRegs::kKey0, key, 4);
    return Result<void>::Ok();
  }

  Result<void> SetIv(SubSlice iv) override {
    if (busy_ || iv.Size() != 16) {
      return Result<void>(busy_ ? ErrorCode::kBusy : ErrorCode::kSize);
    }
    WriteWords(AesRegs::kCtr0, iv, 4);
    return Result<void>::Ok();
  }

  hil::BufResult Crypt(hil::AesMode mode, SubSliceMut buffer) override {
    if (busy_) {
      return hil::Refused(ErrorCode::kBusy, buffer);
    }
    uint32_t len = static_cast<uint32_t>(buffer.Size());
    if (len == 0 || len > kStagingSize ||
        (mode != hil::AesMode::kCtr && len % 16 != 0)) {
      return hil::Refused(ErrorCode::kSize, buffer);
    }
    regs_.mcu()->bus().WriteBlock(staging_, buffer.Active().data(), len);
    buffer_.Set(buffer);
    len_ = len;
    busy_ = true;
    regs_.Write(AesRegs::kSrc, staging_);
    regs_.Write(AesRegs::kDst, staging_);
    regs_.Write(AesRegs::kLen, len);
    uint32_t mode_bit = mode == hil::AesMode::kCtr ? 1 : 0;
    uint32_t decrypt_bit = mode == hil::AesMode::kEcbDecrypt ? 1 : 0;
    regs_.WriteField(AesRegs::kCtrl, AesRegs::Ctrl::kStart.Set() +
                                         AesRegs::Ctrl::kMode.Val(mode_bit) +
                                         AesRegs::Ctrl::kDecrypt.Val(decrypt_bit));
    return hil::Started();
  }

  void SetAesClient(hil::AesClient* client) override { client_ = client; }

  void HandleInterrupt(unsigned line) override {
    (void)line;
    uint32_t status = regs_.Read(AesRegs::kStatus);
    regs_.Write(AesRegs::kIntClr,
                (AesRegs::Status::kDone.Set() + AesRegs::Status::kError.Set()).value);
    if (!busy_ || !AesRegs::Status::kDone.IsSetIn(status)) {
      return;
    }
    busy_ = false;
    bool ok = !AesRegs::Status::kError.IsSetIn(status);
    if (auto buffer = buffer_.Take()) {
      if (ok) {
        regs_.mcu()->bus().ReadBlock(staging_, buffer->Active().data(), len_);
      }
      if (client_ != nullptr) {
        client_->CryptDone(*buffer, ok ? Result<void>::Ok() : Result<void>(ErrorCode::kFail));
      }
    }
  }

 private:
  void WriteWords(uint32_t reg_base, SubSlice bytes, unsigned n_words) {
    for (unsigned i = 0; i < n_words; ++i) {
      uint32_t word = 0;
      for (unsigned b = 0; b < 4; ++b) {
        word |= static_cast<uint32_t>(bytes[4 * i + b]) << (8 * b);
      }
      regs_.Write(reg_base + 4 * i, word);
    }
  }

  RegIo regs_;
  uint32_t staging_;
  hil::AesClient* client_ = nullptr;
  OptionalCell<SubSliceMut> buffer_;
  uint32_t len_ = 0;
  bool busy_ = false;
};

}  // namespace tock

#endif  // TOCK_CHIP_CHIP_AES_H_
