// ERA: 1
// hil::RngSource and hil::TemperatureSensor chip drivers — the two simplest
// split-phase peripherals.
#ifndef TOCK_CHIP_CHIP_RNG_H_
#define TOCK_CHIP_CHIP_RNG_H_

#include "chip/regio.h"
#include "hw/rng.h"
#include "hw/temp_sensor.h"
#include "kernel/driver.h"
#include "kernel/hil.h"

namespace tock {

class ChipRng : public hil::RngSource, public InterruptService {
 public:
  ChipRng(Mcu* mcu, uint32_t base) : regs_(mcu, base) {}

  Result<void> FetchRandom() override {
    if (busy_) {
      return Result<void>(ErrorCode::kBusy);
    }
    busy_ = true;
    regs_.Write(RngRegs::kCtrl, 1);
    return Result<void>::Ok();
  }

  void SetRngClient(hil::RngClient* client) override { client_ = client; }

  void HandleInterrupt(unsigned line) override {
    (void)line;
    regs_.Write(RngRegs::kIntClr, 1);
    if (!busy_) {
      return;
    }
    busy_ = false;
    uint32_t value = regs_.Read(RngRegs::kData);
    if (client_ != nullptr) {
      client_->RandomReady(value);
    }
  }

 private:
  RegIo regs_;
  hil::RngClient* client_ = nullptr;
  bool busy_ = false;
};

class ChipTemp : public hil::TemperatureSensor, public InterruptService {
 public:
  ChipTemp(Mcu* mcu, uint32_t base) : regs_(mcu, base) {}

  Result<void> SampleTemperature() override {
    if (busy_) {
      return Result<void>(ErrorCode::kBusy);
    }
    busy_ = true;
    regs_.Write(TempRegs::kCtrl, 1);
    return Result<void>::Ok();
  }

  void SetTemperatureClient(hil::TemperatureClient* client) override { client_ = client; }

  void HandleInterrupt(unsigned line) override {
    (void)line;
    regs_.Write(TempRegs::kIntClr, 1);
    if (!busy_) {
      return;
    }
    busy_ = false;
    int32_t value = static_cast<int32_t>(regs_.Read(TempRegs::kValue));
    if (client_ != nullptr) {
      client_->TemperatureReady(value);
    }
  }

 private:
  RegIo regs_;
  hil::TemperatureClient* client_ = nullptr;
  bool busy_ = false;
};

}  // namespace tock

#endif  // TOCK_CHIP_CHIP_RNG_H_
