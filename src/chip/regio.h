// ERA: 1
// Privileged MMIO access helper for chip drivers. Wraps the bus with the per-access
// cycle cost, and pairs with the register DSL's Field types so driver code reads as
// `regs.Read(UartRegs::kStatus, UartRegs::Status::kTxDone)`.
//
// TRUSTED-BEGIN(MMIO access): chip drivers are the privileged, hardware-facing layer
// (the analog of Tock's `chips/` crates, which may use unsafe). Everything above
// them talks through HIL interfaces only.
#ifndef TOCK_CHIP_REGIO_H_
#define TOCK_CHIP_REGIO_H_

#include <cstdint>

#include "hw/costs.h"
#include "hw/mcu.h"
#include "util/registers.h"

namespace tock {

class RegIo {
 public:
  RegIo(Mcu* mcu, uint32_t base) : mcu_(mcu), base_(base) {}

  uint32_t Read(uint32_t offset) const {
    mcu_->Tick(CycleCosts::kMmioAccess);
    auto value = mcu_->bus().Read(base_ + offset, 4, Privilege::kPrivileged);
    return value.has_value() ? *value : 0;
  }

  void Write(uint32_t offset, uint32_t value) const {
    mcu_->Tick(CycleCosts::kMmioAccess);
    mcu_->bus().Write(base_ + offset, value, 4, Privilege::kPrivileged);
  }

  uint32_t ReadField(uint32_t offset, const Field<uint32_t>& field) const {
    return field.ReadFrom(Read(offset));
  }

  bool IsSet(uint32_t offset, const Field<uint32_t>& field) const {
    return field.IsSetIn(Read(offset));
  }

  void WriteField(uint32_t offset, const FieldValue<uint32_t>& fv) const {
    Write(offset, fv.value);
  }

  void ModifyField(uint32_t offset, const FieldValue<uint32_t>& fv) const {
    uint32_t cur = Read(offset);
    Write(offset, (cur & ~fv.mask) | fv.value);
  }

  Mcu* mcu() const { return mcu_; }
  uint32_t base() const { return base_; }

 private:
  Mcu* mcu_;
  uint32_t base_;
};
// TRUSTED-END

}  // namespace tock

#endif  // TOCK_CHIP_REGIO_H_
