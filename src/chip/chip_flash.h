// ERA: 3
// hil::FlashStorage over the flash controller peripheral.
#ifndef TOCK_CHIP_CHIP_FLASH_H_
#define TOCK_CHIP_CHIP_FLASH_H_

#include "chip/kernel_ram.h"
#include "chip/regio.h"
#include "hw/flash_ctrl.h"
#include "kernel/driver.h"
#include "kernel/hil.h"
#include "util/cells.h"

namespace tock {

class ChipFlash : public hil::FlashStorage, public InterruptService {
 public:
  static constexpr uint32_t kStagingSize = FlashRegs::kPageSize;

  ChipFlash(Mcu* mcu, uint32_t base, KernelRamAllocator* kram)
      : regs_(mcu, base), staging_(kram->Allocate(kStagingSize)) {}

  hil::BufResult WriteFlash(uint32_t flash_addr, SubSliceMut buffer) override {
    if (busy_) {
      return hil::Refused(ErrorCode::kBusy, buffer);
    }
    uint32_t len = static_cast<uint32_t>(buffer.Size());
    if (len == 0 || len > kStagingSize) {
      return hil::Refused(ErrorCode::kSize, buffer);
    }
    regs_.mcu()->bus().WriteBlock(staging_, buffer.Active().data(), len);
    write_buffer_.Set(buffer);
    busy_ = true;
    erase_pending_ = false;
    regs_.Write(FlashRegs::kDstAddr, flash_addr);
    regs_.Write(FlashRegs::kSrcAddr, staging_);
    regs_.Write(FlashRegs::kLen, len);
    regs_.WriteField(FlashRegs::kCtrl, FlashRegs::Ctrl::kProgram.Set());
    return hil::Started();
  }

  Result<void> ErasePage(uint32_t flash_addr) override {
    if (busy_) {
      return Result<void>(ErrorCode::kBusy);
    }
    busy_ = true;
    erase_pending_ = true;
    regs_.Write(FlashRegs::kDstAddr, flash_addr);
    regs_.WriteField(FlashRegs::kCtrl, FlashRegs::Ctrl::kErase.Set());
    return Result<void>::Ok();
  }

  Result<void> ReadFlash(uint32_t flash_addr, SubSliceMut buffer) override {
    // Reads are plain (privileged) memory reads on this hardware class.
    bool ok = regs_.mcu()->bus().ReadBlock(flash_addr, buffer.Active().data(),
                                           static_cast<uint32_t>(buffer.Size()));
    return ok ? Result<void>::Ok() : Result<void>(ErrorCode::kInvalid);
  }

  void SetFlashClient(hil::FlashClient* client) override { client_ = client; }

  void HandleInterrupt(unsigned line) override {
    (void)line;
    uint32_t status = regs_.Read(FlashRegs::kStatus);
    regs_.Write(FlashRegs::kIntClr,
                (FlashRegs::Status::kDone.Set() + FlashRegs::Status::kError.Set()).value);
    if (!busy_ || !FlashRegs::Status::kDone.IsSetIn(status)) {
      return;
    }
    busy_ = false;
    Result<void> result = FlashRegs::Status::kError.IsSetIn(status)
                              ? Result<void>(ErrorCode::kFail)
                              : Result<void>::Ok();
    if (erase_pending_) {
      erase_pending_ = false;
      if (client_ != nullptr) {
        client_->EraseComplete(result);
      }
      return;
    }
    if (auto buffer = write_buffer_.Take()) {
      if (client_ != nullptr) {
        client_->WriteComplete(*buffer, result);
      }
    }
  }

 private:
  RegIo regs_;
  uint32_t staging_;
  hil::FlashClient* client_ = nullptr;
  OptionalCell<SubSliceMut> write_buffer_;
  bool busy_ = false;
  bool erase_pending_ = false;
};

}  // namespace tock

#endif  // TOCK_CHIP_CHIP_FLASH_H_
