// ERA: 3
// hil::DigestEngine over the SHA/HMAC accelerator. In addition to the HIL used by
// capsules, exposes a privileged flash-direct digest path for the process loader:
// the accelerator DMAs straight out of flash (real hash engines do), which is what
// lets the asynchronous loader verify images without buffering them (§3.4).
#ifndef TOCK_CHIP_CHIP_DIGEST_H_
#define TOCK_CHIP_CHIP_DIGEST_H_

#include "chip/kernel_ram.h"
#include "chip/regio.h"
#include "hw/crypto_accel.h"
#include "kernel/driver.h"
#include "kernel/hil.h"
#include "kernel/phys_digest.h"
#include "util/cells.h"

namespace tock {

class ChipDigest : public hil::DigestEngine, public PhysDigestEngine, public InterruptService {
 public:
  static constexpr uint32_t kStagingSize = 512;
  static constexpr uint32_t kDigestSize = PhysDigestEngine::kDigestSize;

  ChipDigest(Mcu* mcu, uint32_t base, KernelRamAllocator* kram)
      : regs_(mcu, base), staging_(kram->Allocate(kStagingSize)) {}

  // hil::DigestEngine ---------------------------------------------------------------
  hil::BufResult ComputeDigest(SubSliceMut data, SubSliceMut digest,
                               SubSliceMut* digest_on_failure) override {
    if (busy_) {
      *digest_on_failure = digest;
      return hil::Refused(ErrorCode::kBusy, data);
    }
    uint32_t len = static_cast<uint32_t>(data.Size());
    if (len > kStagingSize || digest.Size() < kDigestSize) {
      *digest_on_failure = digest;
      return hil::Refused(ErrorCode::kSize, data);
    }
    regs_.mcu()->bus().WriteBlock(staging_, data.Active().data(), len);
    data_buffer_.Set(data);
    digest_buffer_.Set(digest);
    busy_ = true;
    phys_request_ = false;
    StartHardware(staging_, len);
    return hil::Started();
  }

  Result<void> SetHmacKey(SubSlice key) override {  // overrides both HIL and Phys bases
    if (busy_) {
      return Result<void>(ErrorCode::kBusy);
    }
    if (key.Size() == 0) {
      hmac_mode_ = false;
      return Result<void>::Ok();
    }
    if (key.Size() != 32) {
      return Result<void>(ErrorCode::kSize);
    }
    for (unsigned i = 0; i < 8; ++i) {
      uint32_t word = 0;
      for (unsigned b = 0; b < 4; ++b) {
        word |= static_cast<uint32_t>(key[4 * i + b]) << (8 * b);
      }
      regs_.Write(ShaRegs::kKey0 + 4 * i, word);
    }
    hmac_mode_ = true;
    return Result<void>::Ok();
  }

  void SetDigestClient(hil::DigestClient* client) override { client_ = client; }

  // PhysDigestEngine ------------------------------------------------------------------
  // Digests `len` bytes starting at physical address `addr` (flash or RAM). Result is
  // delivered to `done` (one outstanding request). Requires that the caller is
  // trusted kernel code; capsules only ever see the HIL above.
  Result<void> ComputeDigestPhys(uint32_t addr, uint32_t len, PhysDoneFn done,
                                 void* context) override {
    if (busy_) {
      return Result<void>(ErrorCode::kBusy);
    }
    busy_ = true;
    phys_request_ = true;
    phys_done_ = done;
    phys_context_ = context;
    StartHardware(addr, len);
    return Result<void>::Ok();
  }

  // InterruptService ------------------------------------------------------------------
  void HandleInterrupt(unsigned line) override {
    (void)line;
    uint32_t status = regs_.Read(ShaRegs::kStatus);
    regs_.Write(ShaRegs::kIntClr, (ShaRegs::Status::kDone.Set() + ShaRegs::Status::kError.Set()).value);
    if (!busy_ || !ShaRegs::Status::kDone.IsSetIn(status)) {
      return;
    }
    busy_ = false;
    bool ok = !ShaRegs::Status::kError.IsSetIn(status);

    uint8_t digest_bytes[kDigestSize];
    for (unsigned i = 0; i < 8; ++i) {
      uint32_t word = regs_.Read(ShaRegs::kDigest0 + 4 * i);
      for (unsigned b = 0; b < 4; ++b) {
        digest_bytes[4 * i + b] = static_cast<uint8_t>(word >> (8 * b));
      }
    }

    if (phys_request_) {
      phys_request_ = false;
      if (phys_done_ != nullptr) {
        phys_done_(phys_context_, digest_bytes, ok);
      }
      return;
    }

    auto data = data_buffer_.Take();
    auto digest = digest_buffer_.Take();
    if (data.has_value() && digest.has_value()) {
      for (unsigned i = 0; i < kDigestSize; ++i) {
        (*digest)[i] = digest_bytes[i];
      }
      if (client_ != nullptr) {
        client_->DigestDone(*data, *digest,
                            ok ? Result<void>::Ok() : Result<void>(ErrorCode::kFail));
      }
    }
  }

 private:
  void StartHardware(uint32_t addr, uint32_t len) {
    regs_.Write(ShaRegs::kSrc, addr);
    regs_.Write(ShaRegs::kLen, len);
    regs_.WriteField(ShaRegs::kCtrl, ShaRegs::Ctrl::kStart.Set() +
                                         ShaRegs::Ctrl::kMode.Val(hmac_mode_ ? 1 : 0));
  }

  RegIo regs_;
  uint32_t staging_;
  hil::DigestClient* client_ = nullptr;
  OptionalCell<SubSliceMut> data_buffer_;
  OptionalCell<SubSliceMut> digest_buffer_;
  bool busy_ = false;
  bool hmac_mode_ = false;
  bool phys_request_ = false;
  PhysDoneFn phys_done_ = nullptr;
  void* phys_context_ = nullptr;
};

}  // namespace tock

#endif  // TOCK_CHIP_CHIP_DIGEST_H_
