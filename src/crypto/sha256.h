// ERA: 3
// SHA-256 (FIPS 180-4), streaming interface. Used by the simulated SHA accelerator
// and the process loader's integrity checks (§3.4). Verified against NIST vectors in
// tests/crypto_test.cc.
#ifndef TOCK_CRYPTO_SHA256_H_
#define TOCK_CRYPTO_SHA256_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace tock {

class Sha256 {
 public:
  static constexpr size_t kDigestSize = 32;
  static constexpr size_t kBlockSize = 64;

  Sha256() { Reset(); }

  // Resets to the initial state so the object can be reused.
  void Reset();

  // Absorbs `len` bytes.
  void Update(const uint8_t* data, size_t len);

  // Finalizes and writes the 32-byte digest. The object must be Reset() before reuse.
  void Finalize(uint8_t digest[kDigestSize]);

  // One-shot convenience.
  static std::array<uint8_t, kDigestSize> Digest(const uint8_t* data, size_t len);

 private:
  void ProcessBlock(const uint8_t block[kBlockSize]);

  std::array<uint32_t, 8> state_;
  std::array<uint8_t, kBlockSize> buffer_;
  size_t buffer_len_ = 0;
  uint64_t total_len_ = 0;
};

}  // namespace tock

#endif  // TOCK_CRYPTO_SHA256_H_
