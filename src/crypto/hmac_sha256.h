// ERA: 3
// HMAC-SHA256 (RFC 2104). Stands in for the signature scheme on process binaries
// (§3.4): the paper's root-of-trust products verify asymmetric signatures; we use a
// device-key MAC, which exercises the identical loader state machine (fetch header ->
// hash image -> verify tag -> mark runnable) with a dependency tree we fully own.
// Verified against RFC 4231 vectors in tests/crypto_test.cc.
#ifndef TOCK_CRYPTO_HMAC_SHA256_H_
#define TOCK_CRYPTO_HMAC_SHA256_H_

#include <array>
#include <cstddef>
#include <cstdint>

#include "crypto/sha256.h"

namespace tock {

class HmacSha256 {
 public:
  static constexpr size_t kTagSize = Sha256::kDigestSize;

  // Initializes with an arbitrary-length key (hashed first when longer than the
  // block size, per RFC 2104).
  HmacSha256(const uint8_t* key, size_t key_len);

  void Update(const uint8_t* data, size_t len);
  void Finalize(uint8_t tag[kTagSize]);

  // One-shot convenience.
  static std::array<uint8_t, kTagSize> Compute(const uint8_t* key, size_t key_len,
                                               const uint8_t* data, size_t len);

  // Constant-time tag comparison.
  static bool VerifyTag(const uint8_t* expected, const uint8_t* actual, size_t len);

 private:
  std::array<uint8_t, Sha256::kBlockSize> opad_key_;
  Sha256 inner_;
};

}  // namespace tock

#endif  // TOCK_CRYPTO_HMAC_SHA256_H_
