// ERA: 3
// Software AES-128 (FIPS 197): ECB block operations plus CTR-mode streaming.
//
// The paper's root-of-trust adopters rely on hardware crypto accelerators; our
// simulated AES peripheral (hw/aes_accel) models the asynchronous interface and
// latency, and uses this software implementation to produce the actual bytes.
// Verified against FIPS 197 / NIST SP 800-38A vectors in tests/crypto_test.cc.
//
// This is a plain table-based implementation: it is *not* constant-time and is for
// the simulation only.
#ifndef TOCK_CRYPTO_AES128_H_
#define TOCK_CRYPTO_AES128_H_

#include <array>
#include <cstddef>
#include <cstdint>

namespace tock {

class Aes128 {
 public:
  static constexpr size_t kBlockSize = 16;
  static constexpr size_t kKeySize = 16;
  static constexpr unsigned kNumRounds = 10;

  // Expands `key` into the round-key schedule.
  explicit Aes128(const uint8_t key[kKeySize]);

  // Encrypts/decrypts one 16-byte block in place.
  void EncryptBlock(uint8_t block[kBlockSize]) const;
  void DecryptBlock(uint8_t block[kBlockSize]) const;

  // CTR mode: XORs `len` bytes of `data` (in place) with the keystream generated
  // from `counter_block`, incrementing the counter big-endian per block. Encryption
  // and decryption are the same operation.
  void CtrCrypt(uint8_t counter_block[kBlockSize], uint8_t* data, size_t len) const;

 private:
  std::array<uint32_t, 4 * (kNumRounds + 1)> round_keys_;
};

}  // namespace tock

#endif  // TOCK_CRYPTO_AES128_H_
