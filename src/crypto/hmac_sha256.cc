// ERA: 3
#include "crypto/hmac_sha256.h"

#include <cstring>

namespace tock {

HmacSha256::HmacSha256(const uint8_t* key, size_t key_len) {
  std::array<uint8_t, Sha256::kBlockSize> block_key{};
  if (key_len > Sha256::kBlockSize) {
    auto digest = Sha256::Digest(key, key_len);
    std::memcpy(block_key.data(), digest.data(), digest.size());
  } else {
    std::memcpy(block_key.data(), key, key_len);
  }

  std::array<uint8_t, Sha256::kBlockSize> ipad_key;
  for (size_t i = 0; i < Sha256::kBlockSize; ++i) {
    ipad_key[i] = static_cast<uint8_t>(block_key[i] ^ 0x36);
    opad_key_[i] = static_cast<uint8_t>(block_key[i] ^ 0x5c);
  }
  inner_.Update(ipad_key.data(), ipad_key.size());
}

void HmacSha256::Update(const uint8_t* data, size_t len) { inner_.Update(data, len); }

void HmacSha256::Finalize(uint8_t tag[kTagSize]) {
  uint8_t inner_digest[Sha256::kDigestSize];
  inner_.Finalize(inner_digest);
  Sha256 outer;
  outer.Update(opad_key_.data(), opad_key_.size());
  outer.Update(inner_digest, sizeof(inner_digest));
  outer.Finalize(tag);
}

std::array<uint8_t, HmacSha256::kTagSize> HmacSha256::Compute(const uint8_t* key, size_t key_len,
                                                              const uint8_t* data, size_t len) {
  HmacSha256 mac(key, key_len);
  mac.Update(data, len);
  std::array<uint8_t, kTagSize> tag;
  mac.Finalize(tag.data());
  return tag;
}

bool HmacSha256::VerifyTag(const uint8_t* expected, const uint8_t* actual, size_t len) {
  uint8_t diff = 0;
  for (size_t i = 0; i < len; ++i) {
    diff |= static_cast<uint8_t>(expected[i] ^ actual[i]);
  }
  return diff == 0;
}

}  // namespace tock
