// ERA: 2
// Fleet runtime: N SimBoards sharded across a pool of host threads, stepped in
// epoch-bounded slices on a shared timeline — the "10 million computers" half of
// the paper's title turned into a simulation substrate.
//
// Ownership rule (CompartOS-style compartment isolation): every board owns all of
// its mutable state. A board is only ever touched by the one thread stepping it
// during an epoch; the sole cross-board channel is the radio mailbox
// (hw/radio.h), which senders append to under a mutex and the owning thread
// drains at epoch boundaries. Because arrival cycles are computed on the shared
// timeline at transmit time and the epoch length never exceeds the medium's
// lookahead (minimum on-air latency), every run is bit-identical for any host
// thread count.
//
// Supervision follows the launch/sustain/check-alive pattern of fleet process
// managers: each epoch barrier the supervisor looks for wedged boards (no
// runnable process, no future hardware event) and — when configured — revives
// their dead processes through the capability-gated restart path.
#ifndef TOCK_BOARD_FLEET_H_
#define TOCK_BOARD_FLEET_H_

#include <atomic>
#include <cstdint>
#include <vector>

#include "board/sim_board.h"
#include "hw/radio.h"
#include "kernel/trace.h"

namespace tock {

struct FleetConfig {
  // Host threads stepping boards. With `steal` (the default) threads claim
  // boards from a shared per-epoch queue; otherwise boards are statically
  // sharded round-robin (board i belongs to thread i % threads). Results are
  // bit-identical for any value of `threads` and either assignment mode.
  unsigned threads = 1;
  // Work-stealing board assignment. Each epoch every thread claims the next
  // unstepped board with an atomic fetch-add, so a thread that drew only idle
  // boards keeps pulling work instead of waiting at the barrier behind a hot
  // shard. Legal because board state only crosses threads at the epoch
  // barriers, and cross-board delivery is ordered by the frame's
  // (deliver_at, sender attach index, seq) key — never by which host thread
  // stepped the receiver. `false` restores static sharding (bench baseline).
  bool steal = true;
  // Idle-board fast-forward: a board that is provably quiescent for a whole
  // epoch (no pending IRQ/deferred call/schedulable process, next clock event
  // at or past the epoch end, radio inbox empty) advances its clock without
  // entering the kernel main loop. Bit-identical to stepping — counted in
  // fleet.idle_skips (host-only; excluded from golden stat dumps).
  bool idle_skip = true;
  // Radio channel to drive in deferred (mailbox) mode. nullptr = the fleet owns
  // a private medium; World (board/sim_board.h) passes its own.
  RadioMedium* medium = nullptr;
  // Requested epoch length in cycles. Automatically clamped to the radio medium's
  // lookahead once any radio is attached, so cross-board delivery stays complete
  // and deterministic; larger values only matter for radio-less fleets, where
  // barriers are pure overhead.
  uint64_t slice = 20'000;
  // Supervision: revive the dead (terminated/faulted) processes of a board that
  // has wedged — no runnable process and no pending hardware event — for at
  // least `wedge_grace_epochs` consecutive epochs.
  bool restart_wedged = false;
  uint64_t wedge_grace_epochs = 2;
  // Seeded per-link fault model installed on the medium when Enabled(). Left
  // alone when all rates are zero, so a Fleet wrapping an externally owned
  // medium (World does this per Run) never clobbers faults installed directly
  // via RadioMedium::SetLinkFaults.
  LinkFaultConfig link_faults;
};

// Per-board supervision ledger.
struct BoardHealth {
  uint64_t wedge_events = 0;         // epochs this board sat wedged
  uint64_t supervised_restarts = 0;  // processes revived by the supervisor
  bool wedged = false;               // wedged at the last epoch barrier
  uint64_t consecutive_wedged = 0;   // internal: grace counter
};

// Fleet-wide aggregate of the per-board KernelStats plus MCU and radio totals.
struct FleetStats {
  KernelStats aggregate;
  uint64_t instructions = 0;
  uint64_t active_cycles = 0;
  uint64_t sleep_cycles = 0;
  uint64_t packets_sent = 0;
  uint64_t packets_received = 0;
  uint64_t rx_overruns = 0;
  // Link-fault totals, summed over every board's receive side. Deterministic:
  // faults are drawn per (seed, link, seq), so the totals are bit-identical for
  // any host thread count.
  uint64_t frames_dropped = 0;
  uint64_t frames_duplicated = 0;
  uint64_t frames_reordered = 0;
  uint64_t frames_corrupted = 0;
  size_t boards = 0;
  size_t boards_live = 0;  // boards with a live process or a pending hw event
  uint64_t wedge_events = 0;
  uint64_t supervised_restarts = 0;
};

class Fleet {
 public:
  explicit Fleet(const FleetConfig& config = FleetConfig{})
      : config_(config),
        medium_(config.medium != nullptr ? config.medium : &owned_medium_) {
    medium_->SetMode(RadioMedium::Mode::kDeferred);
    if (config_.link_faults.Enabled()) {
      medium_->SetLinkFaults(config_.link_faults);
    }
  }

  // The shared radio channel. Point BoardConfig::medium here before constructing
  // boards that should hear each other.
  RadioMedium& medium() { return *medium_; }

  void AddBoard(SimBoard* board) {
    boards_.push_back(board);
    health_.push_back(BoardHealth{});
  }
  size_t size() const { return boards_.size(); }
  SimBoard* board(size_t i) { return i < boards_.size() ? boards_[i] : nullptr; }
  const BoardHealth& health(size_t i) const { return health_[i]; }

  // Fast-forwards every board's clock to the latest board's cycle, so the fleet
  // starts epochs aligned on the shared timeline. Call after per-board Boot()
  // (whose cost differs per app mix); the skipped cycles are booked as sleep.
  void AlignClocks();

  // Advances every board `cycles` past its current time, in lockstep epochs.
  // Deterministic: per-board results are bit-identical for any `threads`.
  void Run(uint64_t cycles);

  // The epoch length Run() actually uses after the lookahead clamp.
  uint64_t EffectiveSlice() const;

  FleetStats Stats() const;

 private:
  // Steps one board through [its now, min(epoch_end, its target)): pump radio
  // mailbox, fast-forward if provably idle, otherwise run the kernel;
  // force-advance a wedged clock to keep lockstep.
  void StepBoard(size_t i, uint64_t epoch_end);
  // Barrier-time supervision for one board (single-threaded).
  void Supervise(size_t i);

  FleetConfig config_;
  RadioMedium owned_medium_;
  RadioMedium* medium_;
  std::vector<SimBoard*> boards_;
  std::vector<BoardHealth> health_;
  std::vector<uint64_t> targets_;  // per-board absolute run targets
  // Work-stealing epoch queue: reset to 0 by the coordinator before each epoch
  // gate; every thread (coordinator included) claims boards with fetch_add.
  std::atomic<size_t> next_board_{0};
};

}  // namespace tock

#endif  // TOCK_BOARD_FLEET_H_
