// ERA: 2
#include "board/fleet.h"

#include <algorithm>
#include <barrier>
#include <thread>

namespace tock {

void Fleet::AlignClocks() {
  uint64_t max_now = 0;
  for (SimBoard* board : boards_) {
    max_now = std::max(max_now, board->mcu().CyclesNow());
  }
  for (SimBoard* board : boards_) {
    uint64_t now = board->mcu().CyclesNow();
    if (now < max_now) {
      // Alignment happens before the measured run: the skipped cycles pass
      // outside the active/sleep energy accounting, firing any boot-scheduled
      // events on the way.
      board->mcu().clock().Advance(max_now - now);
    }
  }
}

uint64_t Fleet::EffectiveSlice() const {
  uint64_t slice = config_.slice == 0 ? 1 : config_.slice;
  if (medium_->attached_count() > 0) {
    // Conservative-parallel stepping: an epoch may never outrun the earliest
    // possible radio arrival, or a receiver could simulate past a frame still
    // sitting in its mailbox.
    slice = std::min(slice, RadioMedium::Lookahead());
  }
  return slice;
}

void Fleet::StepBoard(size_t i, uint64_t epoch_end) {
  SimBoard* board = boards_[i];
  // Drain frames peers sent during earlier epochs onto this board's own clock.
  board->radio_hw().PumpInbox();
  uint64_t target = std::min(epoch_end, targets_[i]);
  if (board->mcu().CyclesNow() >= target) {
    return;
  }
  // Idle fast-forward: a board that is provably quiescent until `target` — and
  // whose radio inbox holds no un-pumped frame (belt and braces: the lookahead
  // clamp already guarantees in-flight frames deliver at or past epoch_end) —
  // skips the kernel main loop entirely. TryIdleFastForward replays the one
  // main-loop pass stepping would have made, byte for byte, so simulated state
  // is bit-identical either way; only the host-only fleet.idle_skips counter
  // records that the shortcut was taken.
  if (config_.idle_skip && board->radio_hw().InboxEmpty() &&
      board->kernel().TryIdleFastForward(target, board->main_cap())) {
    board->OnEpochBarrier();
    return;
  }
  board->kernel().MainLoop(target, board->main_cap());
  // A wedged (or panicked) board stalls short of the target; peers may still
  // address radio frames to it, so force the clock forward to preserve lockstep.
  if (board->mcu().CyclesNow() < target) {
    board->mcu().clock().Advance(target - board->mcu().CyclesNow());
  }
  // Host-side observability only (telemetry snapshot, trace-artifact flush):
  // runs on the board's owning thread while the board is quiesced, and never
  // touches simulated state — fleet fingerprints are invariant to it.
  board->OnEpochBarrier();
}

void Fleet::Supervise(size_t i) {
  SimBoard* board = boards_[i];
  BoardHealth& health = health_[i];
  if (!board->mcu().wedged()) {
    health.wedged = false;
    health.consecutive_wedged = 0;
    return;
  }
  health.wedged = true;
  ++health.wedge_events;
  ++health.consecutive_wedged;
  if (!config_.restart_wedged || health.consecutive_wedged < config_.wedge_grace_epochs) {
    return;
  }
  // Check-alive failed for `wedge_grace_epochs` consecutive barriers (the grace
  // period covers a board that merely idles while a frame sits un-pumped in its
  // mailbox). Sustain the board by reviving its dead processes through the
  // capability-gated restart path — the board-local analog of a fleet process
  // supervisor relaunching a crashed worker.
  Kernel& kernel = board->kernel();
  for (size_t p = 0; p < Kernel::kMaxProcesses; ++p) {
    Process* proc = kernel.process(p);
    if (proc == nullptr || !proc->id.IsValid()) {
      continue;
    }
    if (proc->state == ProcessState::kTerminated || proc->state == ProcessState::kFaulted) {
      if (kernel.RestartProcess(proc->id, board->pm_cap()).ok()) {
        ++health.supervised_restarts;
      }
    }
  }
  health.consecutive_wedged = 0;
  board->mcu().ClearWedged();
}

void Fleet::Run(uint64_t cycles) {
  if (boards_.empty() || cycles == 0) {
    return;
  }
  uint64_t slice = EffectiveSlice();
  targets_.resize(boards_.size());
  uint64_t start = UINT64_MAX;
  uint64_t end = 0;
  for (size_t i = 0; i < boards_.size(); ++i) {
    uint64_t now = boards_[i]->mcu().CyclesNow();
    targets_[i] = now + cycles;
    start = std::min(start, now);
    end = std::max(end, targets_[i]);
  }

  unsigned threads = std::max(1u, config_.threads);
  threads = static_cast<unsigned>(
      std::min<size_t>(threads, boards_.size()));

  if (threads == 1) {
    for (uint64_t t = start; t < end;) {
      uint64_t epoch_end = std::min(t + slice, end);
      for (size_t i = 0; i < boards_.size(); ++i) {
        StepBoard(i, epoch_end);
      }
      for (size_t i = 0; i < boards_.size(); ++i) {
        Supervise(i);
      }
      t = epoch_end;
    }
    return;
  }

  // Sharded run. Two board→thread assignment modes — work-stealing (default):
  // every thread claims the next unstepped board with an atomic fetch-add, so a
  // thread whose boards all idle-skip keeps pulling work instead of idling at
  // the barrier behind a hot shard; static: board i belongs to thread
  // i % threads (bench baseline). Either way there are two barriers per epoch:
  // `gate` publishes the epoch plan (and the reset steal cursor) to the
  // workers, `done` hands the quiesced boards back to the coordinator for
  // supervision. The barriers are also the happens-before edges that make the
  // mailbox handoff race-free: every Enqueue in epoch k is ordered before every
  // PumpInbox in epoch k+1. Which thread steps a board never affects simulated
  // state — boards are only touched between the barriers by their claiming
  // thread, and cross-board delivery is ordered by the frame's
  // (deliver_at, sender, seq) key — so stealing keeps runs bit-identical.
  uint64_t epoch_end = 0;
  bool stop = false;
  const bool steal = config_.steal;
  std::barrier gate(static_cast<std::ptrdiff_t>(threads));
  std::barrier done(static_cast<std::ptrdiff_t>(threads));

  auto step_claimed = [&] {
    size_t i;
    while ((i = next_board_.fetch_add(1, std::memory_order_relaxed)) <
           boards_.size()) {
      StepBoard(i, epoch_end);
    }
  };

  std::vector<std::thread> workers;
  workers.reserve(threads - 1);
  for (unsigned w = 1; w < threads; ++w) {
    workers.emplace_back([&, w] {
      while (true) {
        gate.arrive_and_wait();
        if (stop) {
          return;
        }
        if (steal) {
          step_claimed();
        } else {
          for (size_t i = w; i < boards_.size(); i += threads) {
            StepBoard(i, epoch_end);
          }
        }
        done.arrive_and_wait();
      }
    });
  }

  for (uint64_t t = start; t < end;) {
    epoch_end = std::min(t + slice, end);
    // Relaxed is enough: the gate barrier below publishes the reset to the
    // workers, and the previous done barrier ordered their last claims before
    // this store.
    next_board_.store(0, std::memory_order_relaxed);
    gate.arrive_and_wait();
    if (steal) {
      step_claimed();
    } else {
      for (size_t i = 0; i < boards_.size(); i += threads) {
        StepBoard(i, epoch_end);
      }
    }
    done.arrive_and_wait();
    // Single-threaded at the barrier: supervision decisions are made on quiesced
    // boards, so they are a pure function of simulated state.
    for (size_t i = 0; i < boards_.size(); ++i) {
      Supervise(i);
    }
    t = epoch_end;
  }
  stop = true;
  gate.arrive_and_wait();
  for (std::thread& worker : workers) {
    worker.join();
  }
}

FleetStats Fleet::Stats() const {
  FleetStats stats;
  stats.boards = boards_.size();
  for (size_t i = 0; i < boards_.size(); ++i) {
    SimBoard* board = boards_[i];
    stats.aggregate.Accumulate(board->kernel().stats());
    stats.instructions += board->kernel().instructions_retired();
    stats.active_cycles += board->mcu().active_cycles();
    stats.sleep_cycles += board->mcu().sleep_cycles();
    stats.packets_sent += board->radio_hw().packets_sent();
    stats.packets_received += board->radio_hw().packets_received();
    stats.rx_overruns += board->radio_hw().rx_overruns();
    LinkFaultCounters faults = board->radio_hw().fault_counters();
    stats.frames_dropped += faults.dropped;
    stats.frames_duplicated += faults.duplicated;
    stats.frames_reordered += faults.reordered;
    stats.frames_corrupted += faults.corrupted;
    if (board->kernel().NumLiveProcesses() > 0 ||
        board->mcu().clock().HasPendingEvents()) {
      ++stats.boards_live;
    }
    stats.wedge_events += health_[i].wedge_events;
    stats.supervised_restarts += health_[i].supervised_restarts;
  }
  return stats;
}

}  // namespace tock
