// ERA: 4
// Compile-time layer-composition checking (§4.1, Figure 3).
//
// A hardware SPI controller advertises, in its *type*, which chip-select polarities
// the silicon can generate (ChipSpi<SpiCsCaps::...>). A device driver states, in its
// type, which polarity its device requires. Wiring a device to a controller that
// cannot generate its polarity is a compile error — the exact mechanism the paper
// describes: "using template constants in Rust types we can express the capabilities
// of hardware drivers and the requirements of chip-specific drivers".
//
// tests/compile_fail/spi_polarity_mismatch.cc verifies the negative case.
#ifndef TOCK_BOARD_COMPOSITION_H_
#define TOCK_BOARD_COMPOSITION_H_

#include "chip/chip_spi.h"
#include "kernel/hil.h"
#include "util/cells.h"

namespace tock {

// A typed SPI device binding. `Controller` is a ChipSpi instantiation; `RequiredCs`
// is the SpiCsCaps bit this device's chip-select pin needs.
template <typename Controller, uint32_t RequiredCs>
class SpiDeviceBinding {
  static_assert((Controller::kSupportedPolarities & RequiredCs) != 0,
                "invalid board composition: this SPI controller cannot generate the "
                "chip-select polarity the device requires (Fig 3)");

 public:
  SpiDeviceBinding(Controller* controller, unsigned cs_index)
      : controller_(controller), cs_index_(cs_index) {}

  // Applies the statically-validated configuration to the hardware. Because the
  // static_assert already proved compatibility, the runtime path cannot hit the
  // controller's polarity_config_error.
  Result<void> Configure() {
    CsPolarity polarity = RequiredCs == SpiCsCaps::kActiveHigh ? CsPolarity::kActiveHigh
                                                               : CsPolarity::kActiveLow;
    Result<void> configured = controller_->ConfigurePolarity(polarity);
    if (!configured.ok()) {
      return configured;
    }
    controller_->Enable();
    return controller_->SelectChip(cs_index_);
  }

  hil::SpiMaster* master() { return controller_; }
  unsigned cs_index() const { return cs_index_; }

 private:
  Controller* controller_;
  unsigned cs_index_;
};

// Example device-driver types, each encoding its datasheet's CS requirement.
// (Modelled on common parts: most sensors are active-low; some displays latch on an
// active-high frame-select.)
template <typename Controller>
using ActiveLowSensorBinding = SpiDeviceBinding<Controller, SpiCsCaps::kActiveLow>;

template <typename Controller>
using ActiveHighDisplayBinding = SpiDeviceBinding<Controller, SpiCsCaps::kActiveHigh>;

}  // namespace tock

#endif  // TOCK_BOARD_COMPOSITION_H_
