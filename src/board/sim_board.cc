// ERA: 2
#include "board/sim_board.h"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

#include "board/fleet.h"

#include "capsule/driver_nums.h"
#include "hw/memory_map.h"
#include "kernel/telemetry.h"
#include "tools/trace_export.h"

namespace tock {

const uint8_t SimBoard::kDeviceKey[32] = {
    0x10, 0x32, 0x54, 0x76, 0x98, 0xBA, 0xDC, 0xFE, 0x11, 0x22, 0x33,
    0x44, 0x55, 0x66, 0x77, 0x88, 0x99, 0xAA, 0xBB, 0xCC, 0xDD, 0xEE,
    0xFF, 0x00, 0x13, 0x37, 0xC0, 0xDE, 0xFA, 0xCE, 0xB0, 0x0C};

namespace {
InterruptLine Line(Mcu& mcu, MemoryMap::Slot slot) {
  return InterruptLine(&mcu.irq(), static_cast<unsigned>(slot));
}
uint32_t Base(MemoryMap::Slot slot) { return MemoryMap::SlotBase(slot); }

// TOCK_SCHED_POLICY=round-robin|cooperative|priority|mlfq re-points the scheduling
// policy for the whole process, which is how scripts/check_matrix.sh sweeps the test
// suite across policies without editing board code. An explicit non-default choice
// made by the board wins over the environment; unknown names are ignored. A policy
// equal to the default (round-robin) is indistinguishable from "took the default"
// here, so boards that *explicitly* choose round-robin — e.g. one slot of a
// heterogeneous fleet — opt out via BoardConfig::allow_scheduler_env = false.
BoardConfig ApplySchedulerEnv(BoardConfig config) {
  if (config.allow_scheduler_env &&
      config.kernel.scheduler.policy == SchedulerPolicy::kRoundRobin) {
    if (const char* env = std::getenv("TOCK_SCHED_POLICY")) {
      SchedulerPolicy policy;
      if (SchedulerPolicyFromName(env, &policy)) {
        config.kernel.scheduler.policy = policy;
      }
    }
  }
  return config;
}
}  // namespace

SimBoard::BusWiring::BusWiring(SimBoard& board) {
  MemoryBus& bus = board.mcu_.bus();
  bus.AttachDevice(MemoryMap::kUart0, &board.uart_hw_);
  bus.AttachDevice(MemoryMap::kUart1, &board.uart1_hw_);
  bus.AttachDevice(MemoryMap::kAlarm, &board.alarm_hw_);
  bus.AttachDevice(MemoryMap::kSysTick, &board.systick_);
  bus.AttachDevice(MemoryMap::kGpio, &board.gpio_hw_);
  bus.AttachDevice(MemoryMap::kSpi0, &board.spi_hw_);
  bus.AttachDevice(MemoryMap::kRng, &board.rng_hw_);
  bus.AttachDevice(MemoryMap::kAes, &board.aes_hw_);
  bus.AttachDevice(MemoryMap::kSha, &board.sha_hw_);
  bus.AttachDevice(MemoryMap::kFlashCtrl, &board.flash_hw_);
  bus.AttachDevice(MemoryMap::kRadio, &board.radio_hw_);
  bus.AttachDevice(MemoryMap::kTempSensor, &board.temp_hw_);
}

SimBoard::SimBoard(const BoardConfig& config)
    : config_(ApplySchedulerEnv(config)),
      // Memory backing mode is a board-construction choice (runtime knob so one
      // binary can benchmark paged vs eager fleets side by side).
      mcu_(config_.paged_mem),
      // Hardware peripherals, attached to the bus below.
      uart_hw_(&mcu_.clock(), &mcu_.bus(), Line(mcu_, MemoryMap::kUart0)),
      uart1_hw_(&mcu_.clock(), &mcu_.bus(), Line(mcu_, MemoryMap::kUart1)),
      alarm_hw_(&mcu_.clock(), Line(mcu_, MemoryMap::kAlarm)),
      systick_(&mcu_.clock(), Line(mcu_, MemoryMap::kSysTick)),
      gpio_hw_(Line(mcu_, MemoryMap::kGpio)),
      spi_hw_(&mcu_.clock(), &mcu_.bus(), Line(mcu_, MemoryMap::kSpi0), SpiCsCaps::kActiveLow),
      rng_hw_(&mcu_.clock(), Line(mcu_, MemoryMap::kRng), config.rng_seed),
      aes_hw_(&mcu_.clock(), &mcu_.bus(), Line(mcu_, MemoryMap::kAes)),
      sha_hw_(&mcu_.clock(), &mcu_.bus(), Line(mcu_, MemoryMap::kSha)),
      flash_hw_(&mcu_.clock(), &mcu_.bus(), Line(mcu_, MemoryMap::kFlashCtrl)),
      radio_hw_(&mcu_.clock(), &mcu_.bus(), Line(mcu_, MemoryMap::kRadio)),
      temp_hw_(&mcu_.clock(), Line(mcu_, MemoryMap::kTempSensor)),
      // Kernel core (config_ rather than config: the scheduler-policy environment
      // override has been applied to config_).
      kernel_(&mcu_, &systick_, config_.kernel),
      fault_injector_(config.fault_injection_seed),
      kram_(MemoryMap::kRamBase, Kernel::kKernelRamReserve),
      // Chip drivers over MMIO.
      chip_alarm_(&mcu_, Base(MemoryMap::kAlarm)),
      chip_uart_(&mcu_, Base(MemoryMap::kUart0), &kram_),
      chip_uart1_(&mcu_, Base(MemoryMap::kUart1), &kram_),
      chip_gpio_(&mcu_, Base(MemoryMap::kGpio)),
      chip_rng_(&mcu_, Base(MemoryMap::kRng)),
      chip_temp_(&mcu_, Base(MemoryMap::kTempSensor)),
      chip_digest_(&mcu_, Base(MemoryMap::kSha), &kram_),
      chip_aes_(&mcu_, Base(MemoryMap::kAes), &kram_),
      chip_spi_(&mcu_, Base(MemoryMap::kSpi0), &kram_),
      chip_radio_(&mcu_, Base(MemoryMap::kRadio), &kram_, config.radio_addr),
      chip_flash_(&mcu_, Base(MemoryMap::kFlashCtrl), &kram_),
      // Virtualizers.
      valarm_mux_(&chip_alarm_),
      alarm_driver_valarm_(&valarm_mux_),
      vuart_mux_(&chip_uart_),
      console_vuart_(&vuart_mux_),
      // Capsules, handed exactly the handles and buffers they need.
      alarm_driver_(&kernel_, &alarm_driver_valarm_, mem_cap_),
      console_(&kernel_, &console_vuart_, &chip_uart_,
               SubSliceMut(console_tx_storage_.data(), console_tx_storage_.size()),
               SubSliceMut(console_rx_storage_.data(), console_rx_storage_.size()), mem_cap_),
      led_driver_(&chip_gpio_, {kLed0, kLed1}),
      button_driver_(&kernel_, &chip_gpio_, {kButton0, kButton1}),
      gpio_driver_(&chip_gpio_, {2, 3, 4, 5, 6, 7}),
      rng_driver_(&kernel_, &chip_rng_),
      temp_driver_(&kernel_, &chip_temp_),
      hmac_driver_(&kernel_, &chip_digest_,
                   SubSliceMut(hmac_data_storage_.data(), hmac_data_storage_.size()),
                   SubSliceMut(hmac_digest_storage_.data(), hmac_digest_storage_.size())),
      aes_driver_(&kernel_, &chip_aes_,
                  SubSliceMut(aes_data_storage_.data(), aes_data_storage_.size())),
      radio_driver_(&kernel_, &chip_radio_,
                    SubSliceMut(radio_tx_storage_.data(), radio_tx_storage_.size()),
                    SubSliceMut(radio_rx_storage_.data(), radio_rx_storage_.size())),
      process_info_(&kernel_, pm_cap_),
      nv_storage_(&kernel_, &chip_flash_, kNvStorageBase, kNvStorageSize,
                  SubSliceMut(nv_storage_buffer_.data(), nv_storage_buffer_.size())),
      process_console_(&kernel_, &chip_uart1_, &chip_uart1_,
                       SubSliceMut(pconsole_tx_storage_.data(), pconsole_tx_storage_.size()),
                       SubSliceMut(pconsole_rx_storage_.data(), pconsole_rx_storage_.size()),
                       pm_cap_),
      loader_(&kernel_, kAppFlashBase, kAppFlashEnd, pm_cap_, load_cap_),
      installer_(&mcu_, kAppFlashBase, kAppFlashEnd),
      ota_gateway_(&chip_radio_, &valarm_mux_),
      ota_subscriber_(&chip_radio_, &chip_flash_, &loader_, &valarm_mux_) {
  // Chip bring-up (bus attachment happened in BusWiring, before chips constructed).
  chip_uart_.Init();
  chip_uart1_.Init();
  chip_radio_.Init();
  process_console_.Start();

  // Virtualizer client registration.
  valarm_mux_.AddClient(&alarm_driver_valarm_);
  vuart_mux_.AddDevice(&console_vuart_);

  // Interrupt bottom-half routing.
  kernel_.RegisterIrqHandler(MemoryMap::kUart0, &chip_uart_);
  kernel_.RegisterIrqHandler(MemoryMap::kUart1, &chip_uart1_);
  kernel_.RegisterIrqHandler(MemoryMap::kAlarm, &chip_alarm_);
  kernel_.RegisterIrqHandler(MemoryMap::kGpio, &chip_gpio_);
  kernel_.RegisterIrqHandler(MemoryMap::kSpi0, &chip_spi_);
  kernel_.RegisterIrqHandler(MemoryMap::kRng, &chip_rng_);
  kernel_.RegisterIrqHandler(MemoryMap::kAes, &chip_aes_);
  kernel_.RegisterIrqHandler(MemoryMap::kSha, &chip_digest_);
  kernel_.RegisterIrqHandler(MemoryMap::kFlashCtrl, &chip_flash_);
  kernel_.RegisterIrqHandler(MemoryMap::kRadio, &chip_radio_);
  kernel_.RegisterIrqHandler(MemoryMap::kTempSensor, &chip_temp_);

  // System call driver table.
  kernel_.RegisterDriver(DriverNum::kAlarm, &alarm_driver_);
  kernel_.RegisterDriver(DriverNum::kConsole, &console_);
  kernel_.RegisterDriver(DriverNum::kLed, &led_driver_);
  kernel_.RegisterDriver(DriverNum::kButton, &button_driver_);
  kernel_.RegisterDriver(DriverNum::kGpio, &gpio_driver_);
  kernel_.RegisterDriver(DriverNum::kRng, &rng_driver_);
  kernel_.RegisterDriver(DriverNum::kTemperature, &temp_driver_);
  kernel_.RegisterDriver(DriverNum::kHmac, &hmac_driver_);
  kernel_.RegisterDriver(DriverNum::kAes, &aes_driver_);
  kernel_.RegisterDriver(DriverNum::kRadio, &radio_driver_);
  kernel_.RegisterDriver(DriverNum::kProcessInfo, &process_info_);
  kernel_.RegisterDriver(NvStorageDriverNum::kValue, &nv_storage_);

  // Fault-injection harness (inert until a test arms it).
  kernel_.SetFaultInjector(&fault_injector_);

  // Loader + installer crypto wiring.
  loader_.SetDigestEngine(&chip_digest_);
  loader_.SetDeviceKey(kDeviceKey);
  installer_.SetDeviceKey(kDeviceKey);
  process_console_.SetLoader(&loader_);

  if (config_.medium != nullptr) {
    config_.medium->Attach(&radio_hw_);
  }

  // Live telemetry: hand the publisher this kernel and splice it into the
  // trace hook. Pure observation — the sink never blocks or arms events.
  if (config_.telemetry != nullptr) {
    config_.telemetry->AttachKernel(&kernel_);
    kernel_.SetTelemetrySink(config_.telemetry);
  }
}

SimBoard::~SimBoard() {
  // Final snapshot so taps attached after the run see the end-state counters.
  if (config_.telemetry != nullptr) {
    config_.telemetry->PublishSnapshot(mcu_.CyclesNow());
    kernel_.SetTelemetrySink(nullptr);
    config_.telemetry->AttachKernel(nullptr);
  }
  if (!config_.trace_export_path.empty()) {
    WriteChromeTrace(kernel_, config_.trace_export_path);
  }
}

void SimBoard::Run(uint64_t cycles) {
  if (config_.trace_export_flush_cycles == 0) {
    kernel_.MainLoop(mcu_.CyclesNow() + cycles, main_cap_);
    return;
  }
  // Step against the FULL deadline and flush whenever the post-step clock
  // passes the next flush point. Because no step ever sees a shortened
  // deadline, idle sleeps fast-forward exactly as in an unflushed run and the
  // recorded trace is identical — flushing only chooses when the artifact is
  // rewritten, never how the simulation advances.
  const uint64_t deadline = mcu_.CyclesNow() + cycles;
  uint64_t next_flush = mcu_.CyclesNow() + config_.trace_export_flush_cycles;
  while (mcu_.CyclesNow() < deadline) {
    if (!kernel_.MainLoopStep(main_cap_, deadline)) {
      break;  // wedged: nothing runnable and no future hardware event
    }
    if (mcu_.CyclesNow() >= next_flush) {
      FlushTraceArtifact();
      next_flush = mcu_.CyclesNow() + config_.trace_export_flush_cycles;
    }
  }
  FlushTraceArtifact();
}

void SimBoard::OnEpochBarrier() {
  if (config_.telemetry != nullptr) {
    config_.telemetry->MaybePublishSnapshot(mcu_.CyclesNow());
  }
  if (config_.trace_export_flush_cycles != 0 &&
      mcu_.CyclesNow() >= next_trace_flush_cycle_) {
    FlushTraceArtifact();
    next_trace_flush_cycle_ = mcu_.CyclesNow() + config_.trace_export_flush_cycles;
  }
}

void SimBoard::FlushTraceArtifact() {
  if (config_.trace_export_path.empty()) {
    return;
  }
  // Write-complete-then-rename: an observer (or a kill between flushes) always
  // finds a fully closed JSON document, never a truncated array.
  const std::string tmp = config_.trace_export_path + ".tmp";
  if (WriteChromeTrace(kernel_, tmp)) {
    std::rename(tmp.c_str(), config_.trace_export_path.c_str());
  }
}

bool SimBoard::ExportTrace(const std::string& path) {
  return WriteChromeTrace(kernel_, path);
}

int SimBoard::Boot() {
  int created = 0;
  if (config_.kernel.loader == LoaderMode::kSynchronous) {
    created = loader_.LoadAllSync();
  } else if (loader_.StartAsyncLoad().ok()) {
    // Drive the kernel until the verification state machine settles. Generous
    // bound: signature checks are tens of thousands of cycles per app.
    uint64_t deadline = mcu_.CyclesNow() + 50'000'000;
    while (!loader_.Done() && mcu_.CyclesNow() < deadline) {
      if (!kernel_.MainLoopStep(main_cap_)) {
        break;
      }
    }
    created = loader_.created_count();
  }

  // OTA roles come alive only after boot: a subscriber's default staging address
  // is the first free app slot, which is known only once the baseline apps are
  // installed and the boot scan has run. Activation steals the radio (and, for
  // subscribers, flash) client slots from the syscall capsules — OTA boards give
  // those peripherals to the update plane.
  if (config_.ota.role == OtaRole::kGateway) {
    ota_gateway_.Activate();
  } else if (config_.ota.role == OtaRole::kSubscriber) {
    uint32_t staging =
        config_.ota.staging_addr != 0 ? config_.ota.staging_addr : installer_.next_addr();
    ota_staging_addr_ = staging;
    ota_subscriber_.Activate(staging, staging < kAppFlashEnd ? kAppFlashEnd - staging : 0);
  }
  return created;
}

World::World() {
  // Deferred mailbox mode even single-threaded: arrival times then come from the
  // sender's timeline, so delivery traces do not depend on the Run slice or on
  // the order boards were added.
  medium_.SetMode(RadioMedium::Mode::kDeferred);
}

void World::Run(uint64_t cycles, uint64_t slice) {
  FleetConfig config;
  config.threads = 1;
  config.medium = &medium_;
  config.slice = slice;
  Fleet fleet(config);
  for (SimBoard* board : boards_) {
    fleet.AddBoard(board);
  }
  fleet.Run(cycles);
}

}  // namespace tock
