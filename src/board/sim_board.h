// ERA: 2
// SimBoard: the trusted platform-initialization layer (Fig 2's "core kernel +
// hardware-specific adaptors" wiring). This is the one place capabilities are
// minted (§4.4), static buffers are carved out, chips are bound to peripherals, the
// driver table is populated, and the loader is configured. Everything above (the
// capsules) receives only the narrow handles constructed here.
#ifndef TOCK_BOARD_SIM_BOARD_H_
#define TOCK_BOARD_SIM_BOARD_H_

#include <array>
#include <cstdint>
#include <vector>

#include "capsule/alarm_driver.h"
#include "capsule/console.h"
#include "capsule/crypto_drivers.h"
#include "capsule/led_button_gpio.h"
#include "capsule/nonvolatile_storage.h"
#include "capsule/ota_gateway.h"
#include "capsule/ota_subscriber.h"
#include "capsule/process_console.h"
#include "capsule/process_info.h"
#include "capsule/radio_driver.h"
#include "capsule/sensors.h"
#include "capsule/virtual_alarm.h"
#include "capsule/virtual_uart.h"
#include "chip/chip_aes.h"
#include "chip/chip_alarm.h"
#include "chip/chip_digest.h"
#include "chip/chip_flash.h"
#include "chip/chip_gpio.h"
#include "chip/chip_radio.h"
#include "chip/chip_rng.h"
#include "chip/chip_spi.h"
#include "chip/chip_uart.h"
#include "chip/kernel_ram.h"
#include "hw/crypto_accel.h"
#include "hw/flash_ctrl.h"
#include "hw/gpio.h"
#include "hw/mcu.h"
#include "hw/radio.h"
#include "hw/rng.h"
#include "hw/spi.h"
#include "hw/temp_sensor.h"
#include "hw/timer.h"
#include "hw/uart.h"
#include "kernel/capability.h"
#include "kernel/fault_injector.h"
#include "kernel/kernel.h"
#include "kernel/process_loader.h"
#include "libtock/libtock.h"

namespace tock {

class BoardTelemetry;  // kernel/telemetry.h

// Role a board plays in the OTA signed-app distribution scenario (DESIGN.md §12).
// Both OTA capsules are always constructed (they are plain members) but stay
// inert — no client slots stolen, no alarms armed — unless a role is configured.
enum class OtaRole : uint8_t { kNone, kGateway, kSubscriber };

struct OtaBoardConfig {
  OtaRole role = OtaRole::kNone;
  // Subscriber: flash address the pushed image is staged at and loaded from.
  // 0 = the first free app slot at Boot() time (installer().next_addr()), which
  // every subscriber with the same baseline apps resolves identically — TBF
  // images are position-dependent, so the gateway builds one image for this
  // shared address.
  uint32_t staging_addr = 0;
};

struct BoardConfig {
  KernelConfig kernel;
  // Back this board's flash/RAM with 4 KiB copy-on-write pages (hw/paged_mem.h):
  // flash pages reference a fleet-shared immutable base image until first write,
  // RAM pages materialize on first write. Defaults to the build-wide setting
  // (-DTOCK_PAGED_MEM); the runtime knob exists so benchmarks can compare paged
  // and eager boards inside one binary. Simulated behavior is bit-identical
  // either way — only host memory usage (mem.resident_bytes) differs.
  bool paged_mem = PagedBank::kCompiled;
  uint32_t rng_seed = 0xC0FFEE;
  uint16_t radio_addr = 1;
  RadioMedium* medium = nullptr;  // attach to a shared radio medium (multi-board)
  // Whether the TOCK_SCHED_POLICY environment override (the check_matrix.sh test
  // sweep) may re-point this board's scheduling policy. Heterogeneous fleets set
  // this false on boards whose policy is an explicit choice — the env hook cannot
  // otherwise tell "explicitly chose round-robin" from "took the default".
  bool allow_scheduler_env = true;
  // Seed for the board-owned fault injector (tests); the injector is always wired
  // but injects nothing until armed, so it costs one null-check per instruction.
  uint64_t fault_injection_seed = 0;
  // When non-empty, the board writes a Chrome trace-event JSON file
  // (tools/trace_export.h) here at destruction — a run artifact for
  // chrome://tracing / Perfetto. ExportTrace() exports on demand instead.
  std::string trace_export_path;
  // When nonzero, the trace export is also rewritten (atomically, via a tmp
  // file + rename) at least every this many simulated cycles while the board
  // runs, so a killed or wedged run still leaves a valid JSON artifact.
  // Applies to Run() (which then flushes between main-loop steps — the steps
  // run against the full deadline, so the recorded trace is identical to an
  // unflushed run) and to fleet epoch barriers.
  uint64_t trace_export_flush_cycles = 0;
  // Live telemetry publisher for this board (one block of a TelemetryRegion,
  // kernel/telemetry.h). The board attaches its kernel to it and feeds it from
  // the trace hook; publishing never perturbs simulated behavior.
  BoardTelemetry* telemetry = nullptr;
  // OTA distribution role (activated at the end of Boot()).
  OtaBoardConfig ota;
};

class SimBoard {
 public:
  // Apps are flashed into the upper half of flash; the lower half is notionally the
  // kernel image.
  static constexpr uint32_t kAppFlashBase = 256 * 1024;
  static constexpr uint32_t kAppFlashEnd = MemoryMap::kFlashSize;

  // The device key used to sign and verify application images (per-device secret
  // fused at manufacturing in the real products of §3.4).
  static const uint8_t kDeviceKey[32];

  // Flash window exposed to userspace through the nonvolatile-storage capsule
  // (below the app region, above the notional kernel image).
  static constexpr uint32_t kNvStorageBase = 192 * 1024;
  static constexpr uint32_t kNvStorageSize = 64 * 1024;

  // LED / button pin assignment on the GPIO bank.
  static constexpr unsigned kLed0 = 0;
  static constexpr unsigned kLed1 = 1;
  static constexpr unsigned kButton0 = 8;
  static constexpr unsigned kButton1 = 9;

  explicit SimBoard(const BoardConfig& config = BoardConfig{});
  ~SimBoard();

  // Writes the Chrome trace-event export of everything recorded so far. Returns
  // false on IO failure. Independent of the at-destruction export.
  bool ExportTrace(const std::string& path);

  // --- Pre-boot: install app images (the tockloader step). ---
  AppInstaller& installer() { return installer_; }

  // Runs the configured loader (synchronous pass, or the asynchronous verified
  // state machine driven to completion). Returns processes created.
  int Boot();

  // Runs the kernel main loop for `cycles` of simulated time. With
  // trace_export_flush_cycles set, runs in flush-sized chunks and rewrites the
  // trace artifact between chunks; otherwise a single MainLoop call (the
  // golden-trace path).
  void Run(uint64_t cycles);

  // Fleet hook, called by Fleet::StepBoard after each epoch slice: publishes a
  // telemetry snapshot (period-gated) and flushes the trace artifact when due.
  // Host-side work only — never touches simulated state.
  void OnEpochBarrier();

  BoardTelemetry* telemetry() { return config_.telemetry; }

  // --- Introspection for tests, examples, experiments ---
  Mcu& mcu() { return mcu_; }
  Kernel& kernel() { return kernel_; }
  ProcessLoader& loader() { return loader_; }
  Uart& uart_hw() { return uart_hw_; }
  Uart& uart1_hw() { return uart1_hw_; }  // the process console's port
  Gpio& gpio_hw() { return gpio_hw_; }
  TempSensor& temp_hw() { return temp_hw_; }
  Radio& radio_hw() { return radio_hw_; }
  ChipDigest& chip_digest() { return chip_digest_; }
  FaultInjector& fault_injector() { return fault_injector_; }
  VirtualAlarmMux& valarm_mux() { return valarm_mux_; }
  OtaGateway& ota_gateway() { return ota_gateway_; }
  OtaSubscriber& ota_subscriber() { return ota_subscriber_; }
  // Resolved OTA staging address (valid on subscriber boards after Boot()).
  uint32_t ota_staging_addr() const { return ota_staging_addr_; }
  const MainLoopCapability& main_cap() { return main_cap_; }
  const ProcessManagementCapability& pm_cap() { return pm_cap_; }

 private:
  BoardConfig config_;

  // ---- Capability minting (trusted init only, §4.4) ----
  CapabilityFactory cap_factory_;
  ProcessManagementCapability pm_cap_ = cap_factory_.MintProcessManagement();
  MainLoopCapability main_cap_ = cap_factory_.MintMainLoop();
  MemoryAllocationCapability mem_cap_ = cap_factory_.MintMemoryAllocation();
  ProcessLoadingCapability load_cap_ = cap_factory_.MintProcessLoading();

  // ---- Hardware ----
  Mcu mcu_;
  Uart uart_hw_;
  Uart uart1_hw_;
  AlarmTimer alarm_hw_;
  SysTick systick_;
  Gpio gpio_hw_;
  Spi spi_hw_;
  Rng rng_hw_;
  AesAccel aes_hw_;
  ShaAccel sha_hw_;
  FlashController flash_hw_;
  Radio radio_hw_;
  TempSensor temp_hw_;

  // Attaches every peripheral to the bus *before* chips and capsules construct, so
  // their bring-up MMIO writes land on real devices (member-initialization order is
  // the board's wiring order).
  struct BusWiring {
    BusWiring(SimBoard& board);
  } bus_wiring_{*this};

  // ---- Kernel ----
  Kernel kernel_;
  FaultInjector fault_injector_;
  KernelRamAllocator kram_;

  // ---- Chip drivers (privileged HIL implementations) ----
  ChipAlarm chip_alarm_;
  ChipUart chip_uart_;
  ChipUart chip_uart1_;
  ChipGpio chip_gpio_;
  ChipRng chip_rng_;
  ChipTemp chip_temp_;
  ChipDigest chip_digest_;
  ChipAes chip_aes_;
  ChipSpi<SpiCsCaps::kActiveLow> chip_spi_;
  ChipRadio chip_radio_;
  ChipFlash chip_flash_;

  // ---- Virtualizers ----
  VirtualAlarmMux valarm_mux_;
  VirtualAlarm alarm_driver_valarm_;
  VirtualUartMux vuart_mux_;
  VirtualUartDevice console_vuart_;

  // ---- Static capsule buffers (the board-owned 'static allocations) ----
  std::array<uint8_t, 128> console_tx_storage_{};
  std::array<uint8_t, 64> console_rx_storage_{};
  std::array<uint8_t, 256> hmac_data_storage_{};
  std::array<uint8_t, 32> hmac_digest_storage_{};
  std::array<uint8_t, 256> aes_data_storage_{};
  std::array<uint8_t, 256> radio_tx_storage_{};
  std::array<uint8_t, 256> radio_rx_storage_{};
  std::array<uint8_t, 256> nv_storage_buffer_{};
  std::array<uint8_t, 512> pconsole_tx_storage_{};
  std::array<uint8_t, 8> pconsole_rx_storage_{};

  // ---- Capsules ----
  AlarmDriver alarm_driver_;
  ConsoleDriver console_;
  LedDriver led_driver_;
  ButtonDriver button_driver_;
  GpioDriver gpio_driver_;
  RngDriver rng_driver_;
  TempDriver temp_driver_;
  HmacDriver hmac_driver_;
  AesDriver aes_driver_;
  RadioDriver radio_driver_;
  ProcessInfoDriver process_info_;
  NonvolatileStorage nv_storage_;
  ProcessConsole process_console_;

  // ---- Loading ----
  ProcessLoader loader_;
  AppInstaller installer_;

  // ---- OTA distribution (inert unless config_.ota.role is set; see Boot()) ----
  OtaGateway ota_gateway_;
  OtaSubscriber ota_subscriber_;
  uint32_t ota_staging_addr_ = 0;

  // Rewrites the trace artifact via tmp + rename so an observer never reads a
  // half-written file. No-op when trace_export_path is empty.
  void FlushTraceArtifact();
  uint64_t next_trace_flush_cycle_ = 0;
};

// A set of boards stepped in bounded slices against a shared radio medium — the
// Signpost-style deployment substrate (§2). Thin single-threaded wrapper over the
// fleet epoch engine (board/fleet.h): the medium runs in deferred (mailbox) mode,
// so cross-board arrival times are computed on the shared timeline and the result
// is independent of the `slice` parameter and of board registration order.
class World {
 public:
  World();

  RadioMedium& medium() { return medium_; }

  void AddBoard(SimBoard* board) { boards_.push_back(board); }

  // Advances every board to (its own) now + cycles, in lookahead-bounded epochs.
  void Run(uint64_t cycles, uint64_t slice = 20'000);

 private:
  RadioMedium medium_;
  std::vector<SimBoard*> boards_;
};

}  // namespace tock

#endif  // TOCK_BOARD_SIM_BOARD_H_
