// Process loading tests (§3.4, E11): TBF framing, the synchronous structural
// loader, the asynchronous verified state machine, and dynamic runtime loading.
#include <gtest/gtest.h>

#include <cstring>

#include "board/sim_board.h"
#include "crypto/hmac_sha256.h"
#include "kernel/tbf.h"

namespace tock {
namespace {

const std::string kSpinApp = "_start:\nspin:\n    j spin\n";
const std::string kExitApp = "_start:\n    li a0, 0\n    li a1, 9\n    li a4, 6\n    ecall\n";

// ---- TBF framing ------------------------------------------------------------------------

TEST(Tbf, BuildProducesStructurallyValidHeader) {
  std::vector<uint8_t> binary(100, 0x13);  // nops
  auto image = BuildTbfImage("demo", binary, 0, 4096, false, nullptr);
  TbfHeader header;
  std::memcpy(&header, image.data(), sizeof(header));
  EXPECT_TRUE(header.StructurallyValid());
  EXPECT_EQ(header.Name(), "demo");
  EXPECT_EQ(header.binary_size, 100u);
  EXPECT_TRUE(header.IsEnabled());
  EXPECT_FALSE(header.IsSigned());
  EXPECT_EQ(image.size() % 8, 0u);
}

TEST(Tbf, ChecksumDetectsHeaderCorruption) {
  std::vector<uint8_t> binary(16, 0x13);
  auto image = BuildTbfImage("demo", binary, 0, 4096, false, nullptr);
  TbfHeader header;
  std::memcpy(&header, image.data(), sizeof(header));
  header.min_ram += 4;  // corrupt a field without fixing the checksum
  EXPECT_FALSE(header.StructurallyValid());
}

TEST(Tbf, SignedImageCarriesValidHmacTag) {
  uint8_t key[32] = {9};
  std::vector<uint8_t> binary(64, 0xAB);
  auto image = BuildTbfImage("signed", binary, 0, 4096, true, key);
  TbfHeader header;
  std::memcpy(&header, image.data(), sizeof(header));
  ASSERT_TRUE(header.IsSigned());
  auto expected = HmacSha256::Compute(key, sizeof(key), image.data(),
                                      TbfHeader::kHeaderSize + header.binary_size);
  EXPECT_EQ(std::memcmp(image.data() + TbfHeader::kHeaderSize + header.binary_size,
                        expected.data(), expected.size()),
            0);
}

TEST(Tbf, EntryOffsetMustPointInsideBinary) {
  TbfHeader header;
  header.binary_size = 64;
  header.total_size = TbfHeader::kHeaderSize + 64;
  header.entry_offset = TbfHeader::kHeaderSize + 64;  // one past the end
  header.checksum = header.ComputeChecksum();
  EXPECT_FALSE(header.StructurallyValid());
}

// ---- Synchronous loader -------------------------------------------------------------------

TEST(SyncLoader, LoadsPackedAppsAndStopsAtGarbage) {
  SimBoard board;
  AppSpec a;
  a.name = "one";
  a.source = kSpinApp;
  AppSpec b;
  b.name = "two";
  b.source = kSpinApp;
  ASSERT_NE(board.installer().Install(a), 0u);
  ASSERT_NE(board.installer().Install(b), 0u);
  EXPECT_EQ(board.loader().LoadAllSync(), 2);
  EXPECT_EQ(board.kernel().process(0)->name, "one");
  EXPECT_EQ(board.kernel().process(1)->name, "two");
}

TEST(SyncLoader, SkipsDisabledApps) {
  SimBoard board;
  AppSpec a;
  a.name = "off";
  a.source = kSpinApp;
  a.enabled = false;
  AppSpec b;
  b.name = "on";
  b.source = kSpinApp;
  ASSERT_NE(board.installer().Install(a), 0u);
  ASSERT_NE(board.installer().Install(b), 0u);
  EXPECT_EQ(board.loader().LoadAllSync(), 1);
  EXPECT_EQ(board.kernel().process(0)->name, "on");
}

TEST(SyncLoader, EmptyFlashLoadsNothing) {
  SimBoard board;
  EXPECT_EQ(board.loader().LoadAllSync(), 0);
  EXPECT_EQ(board.kernel().NumLiveProcesses(), 0u);
}

TEST(SyncLoader, RejectsCorruptHeaderWithoutWedgingScan) {
  SimBoard board;
  AppSpec a;
  a.name = "ok";
  a.source = kSpinApp;
  uint32_t addr = board.installer().Install(a);
  ASSERT_NE(addr, 0u);
  // Corrupt the checksum in flash.
  uint8_t byte;
  board.mcu().bus().ReadBlock(addr + 44, &byte, 1);  // somewhere in the header tail
  byte ^= 0xFF;
  board.mcu().bus().ProgramFlash(addr + 44, &byte, 1);
  EXPECT_EQ(board.loader().LoadAllSync(), 0);
  EXPECT_EQ(board.loader().rejected_count(), 1);
}

// ---- Asynchronous verified loader (§3.4) -----------------------------------------------------

TEST(AsyncLoader, LoadsOnlyCorrectlySignedApps) {
  BoardConfig config;
  config.kernel.loader = LoaderMode::kAsynchronous;
  SimBoard board(config);

  AppSpec good;
  good.name = "good";
  good.source = kSpinApp;
  good.sign = true;
  AppSpec unsigned_app;
  unsigned_app.name = "nosig";
  unsigned_app.source = kSpinApp;
  unsigned_app.sign = false;
  AppSpec tampered;
  tampered.name = "evil";
  tampered.source = kSpinApp;
  tampered.sign = true;
  tampered.corrupt_signature = true;

  ASSERT_NE(board.installer().Install(good), 0u);
  ASSERT_NE(board.installer().Install(unsigned_app), 0u);
  ASSERT_NE(board.installer().Install(tampered), 0u);

  EXPECT_EQ(board.Boot(), 1);
  EXPECT_EQ(board.loader().rejected_count(), 2);
  ASSERT_EQ(board.kernel().NumLiveProcesses(), 1u);
  EXPECT_EQ(board.kernel().process(0)->name, "good");

  // The load records document why each image was accepted or rejected.
  ASSERT_EQ(board.loader().records().size(), 3u);
  EXPECT_TRUE(board.loader().records()[0].verified);
  EXPECT_STREQ(board.loader().records()[1].reject_reason, "unsigned image");
  EXPECT_STREQ(board.loader().records()[2].reject_reason, "signature verification failed");
}

TEST(AsyncLoader, VerificationConsumesCryptoTime) {
  // The state machine exists because crypto is asynchronous: loading must advance
  // simulated time, unlike the synchronous structural pass.
  BoardConfig sync_config;
  SimBoard sync_board(sync_config);
  AppSpec app;
  app.name = "app";
  app.source = kSpinApp;
  app.sign = true;
  ASSERT_NE(sync_board.installer().Install(app), 0u);
  uint64_t t0 = sync_board.mcu().CyclesNow();
  sync_board.Boot();
  uint64_t sync_cycles = sync_board.mcu().CyclesNow() - t0;

  BoardConfig async_config;
  async_config.kernel.loader = LoaderMode::kAsynchronous;
  SimBoard async_board(async_config);
  ASSERT_NE(async_board.installer().Install(app), 0u);
  t0 = async_board.mcu().CyclesNow();
  ASSERT_EQ(async_board.Boot(), 1);
  uint64_t async_cycles = async_board.mcu().CyclesNow() - t0;

  EXPECT_GT(async_cycles, sync_cycles + CycleCosts::kShaCyclesPerBlock);
}

TEST(AsyncLoader, DynamicallyLoadsAppAtRuntime) {
  // §3.4's "major benefit": with loading as a state machine, installing an app
  // after boot is just triggering the kernel to check it.
  BoardConfig config;
  config.kernel.loader = LoaderMode::kAsynchronous;
  SimBoard board(config);

  AppSpec first;
  first.name = "first";
  first.source = kSpinApp;
  first.sign = true;
  ASSERT_NE(board.installer().Install(first), 0u);
  ASSERT_EQ(board.Boot(), 1);
  board.Run(100'000);
  EXPECT_EQ(board.kernel().NumLiveProcesses(), 1u);

  // "Over-the-air update": flash a new signed app while the system runs.
  AppSpec second;
  second.name = "second";
  second.source = kExitApp;
  second.sign = true;
  uint32_t addr = board.installer().Install(second);
  ASSERT_NE(addr, 0u);
  ASSERT_TRUE(board.loader().LoadOneAsync(addr).ok());
  board.Run(10'000'000);

  ASSERT_EQ(board.loader().created_count(), 2);
  Process* p = board.kernel().process(1);
  ASSERT_NE(p, nullptr);
  EXPECT_EQ(p->name, "second");
  EXPECT_EQ(p->state, ProcessState::kTerminated);  // it ran and exited(9)
  EXPECT_EQ(p->completion_code, 9u);
}

TEST(AsyncLoader, RequiresDigestEngineAndKey) {
  SimBoard board;
  ProcessLoader bare(&board.kernel(), SimBoard::kAppFlashBase, SimBoard::kAppFlashEnd,
                     board.pm_cap(), CapabilityFactory{}.MintProcessLoading());
  EXPECT_FALSE(bare.StartAsyncLoad().ok());
}

// ---- Retrying a failed slot (the OTA re-push path) ------------------------------------------

TEST(AsyncLoader, RetryAfterRejectionClearsStaleRecord) {
  // A slot whose image was rejected must be loadable again once better bytes
  // arrive: LoadOneAsync clears the stale failure record so the ledger keeps one
  // row per slot, and the retry is judged on the slot's current contents.
  SimBoard board;
  ASSERT_EQ(board.Boot(), 0);  // empty flash; the image arrives "over the air"
  uint32_t addr = SimBoard::kAppFlashBase;
  AppSpec tampered;
  tampered.name = "app";
  tampered.source = kSpinApp;
  tampered.sign = true;
  tampered.corrupt_signature = true;
  {
    std::string error;
    std::vector<uint8_t> image = BuildAppImage(tampered, addr, SimBoard::kDeviceKey, &error);
    ASSERT_FALSE(image.empty()) << error;
    ASSERT_TRUE(board.mcu().bus().ProgramFlash(addr, image.data(),
                                               static_cast<uint32_t>(image.size())));
  }

  // First attempt: rejected at the authenticity stage.
  ASSERT_TRUE(board.loader().LoadOneAsync(addr).ok());
  board.Run(10'000'000);
  ASSERT_TRUE(board.loader().Done());
  const ProcessLoader::LoadRecord* rec = board.loader().RecordFor(addr);
  ASSERT_NE(rec, nullptr);
  EXPECT_FALSE(rec->created);
  EXPECT_EQ(rec->error, LoadError::kAuthenticity);
  size_t after_first = board.loader().records().size();

  // Second attempt against the same bad bytes: the stale record is replaced,
  // not accumulated.
  ASSERT_TRUE(board.loader().LoadOneAsync(addr).ok());
  board.Run(10'000'000);
  EXPECT_EQ(board.loader().records().size(), after_first);
  EXPECT_EQ(board.loader().RecordFor(addr)->error, LoadError::kAuthenticity);

  // "Better bytes arrive": reprogram the slot with a correctly signed image.
  AppSpec good = tampered;
  good.corrupt_signature = false;
  std::string error;
  std::vector<uint8_t> image = BuildAppImage(good, addr, SimBoard::kDeviceKey, &error);
  ASSERT_FALSE(image.empty()) << error;
  ASSERT_TRUE(board.mcu().bus().ProgramFlash(addr, image.data(),
                                             static_cast<uint32_t>(image.size())));
  ASSERT_TRUE(board.loader().LoadOneAsync(addr).ok());
  board.Run(10'000'000);
  rec = board.loader().RecordFor(addr);
  ASSERT_NE(rec, nullptr);
  EXPECT_TRUE(rec->created);
  EXPECT_TRUE(rec->verified);
  EXPECT_EQ(board.kernel().NumLiveProcesses(), 1u);
  // Still one row for the slot: created records replace the failure history.
  size_t rows = 0;
  for (const ProcessLoader::LoadRecord& r : board.loader().records()) {
    rows += r.flash_addr == addr ? 1 : 0;
  }
  EXPECT_EQ(rows, 1u);
}

// ---- Installer diagnostics ----------------------------------------------------------------------

TEST(Installer, ReportsAssemblyErrors) {
  SimBoard board;
  AppSpec bad;
  bad.name = "bad";
  bad.source = "_start:\n    bogus a0\n";
  EXPECT_EQ(board.installer().Install(bad), 0u);
  EXPECT_NE(board.installer().error().find("assembly failed"), std::string::npos);
}

TEST(Installer, RequiresStartSymbol) {
  SimBoard board;
  AppSpec bad;
  bad.name = "bad";
  bad.source = "main:\n    nop\n";
  bad.include_runtime = false;
  EXPECT_EQ(board.installer().Install(bad), 0u);
  EXPECT_NE(board.installer().error().find("_start"), std::string::npos);
}

}  // namespace
}  // namespace tock
