// MUST NOT COMPILE: calling a privileged kernel API without a capability token.
// There is no way to conjure the argument: the type has no public constructor.
#include "kernel/kernel.h"

void Exploit(tock::Kernel* kernel, tock::ProcessId pid) {
  kernel->StopProcess(pid, {});  // error: initializer list can't reach private ctor
}
