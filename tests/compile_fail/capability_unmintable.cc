// MUST NOT COMPILE: capability tokens can only be minted by trusted board code via
// CapabilityFactory (paper §4.4, Listing 1). Direct construction is a compile error.
#include "kernel/capability.h"

int main() {
  tock::ProcessManagementCapability cap;  // error: constructor is private
  (void)cap;
  return 0;
}
