// MUST NOT COMPILE: an active-high device bound to a controller whose silicon can
// only generate active-low chip selects (paper §4.1, Figure 3).
#include "board/composition.h"

using LowOnlyController = tock::ChipSpi<tock::SpiCsCaps::kActiveLow>;

int main() {
  tock::ActiveHighDisplayBinding<LowOnlyController> binding(nullptr, 0);
  (void)binding;
  return 0;
}
