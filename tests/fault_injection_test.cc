// Fault-policy and fault-injection tests (§2.3, §2.4, §3.4).
//
// Exercises the per-process FaultPolicy machinery (panic / stop / deferred
// backoff restart) against deterministically injected faults: synthesized MPU
// violations and illegal instructions, TBF header/signature bit-flips, grant
// allocation pressure, and IRQ storms. The long randomized soak lives in
// fault_soak_test.cc; these are the targeted single-scenario checks.
#include <gtest/gtest.h>

#include <cstring>
#include <string>
#include <vector>

#include "board/sim_board.h"
#include "kernel/fault_injector.h"
#include "kernel/grant.h"
#include "kernel/process_loader.h"

namespace tock {
namespace {

const std::string kSpinApp = "_start:\nspin:\n    j spin\n";

// A worker that counts iterations in RAM and makes one yield-no-wait syscall per
// loop, so syscall_count measures forward progress.
const std::string kWorkerApp = R"(
_start:
    mv s0, a0
loop:
    lw t0, 0(s0)
    addi t0, t0, 1
    sw t0, 0(s0)
    li a0, 0
    li a4, 0
    ecall
    j loop
)";

// ---- ResetForRestart hygiene (regression) ------------------------------------------------

TEST(ProcessReset, ClearsDiagnosticsFromPreviousIncarnation) {
  Process p;
  p.id = ProcessId{0, 1};
  p.ram_start = 0x10000000;
  p.ram_size = 8192;
  p.fault_info.vm_fault.kind = VmFault::Kind::kIllegalInstruction;
  p.fault_info.at_cycle = 1234;
  p.timeslice_expirations = 7;
  p.restart_due_cycle = 999;

  p.ResetForRestart();

  // A restarted process that never faulted again must not still show the old
  // fault, and its preemption count must not accumulate across incarnations.
  EXPECT_EQ(p.fault_info.vm_fault.kind, VmFault::Kind::kNone);
  EXPECT_EQ(p.fault_info.at_cycle, 0u);
  EXPECT_EQ(p.timeslice_expirations, 0u);
  EXPECT_EQ(p.restart_due_cycle, 0u);
  EXPECT_EQ(p.id.generation, 2u);  // stale ProcessIds must go dead
}

// ---- Injected CPU faults -----------------------------------------------------------------

TEST(FaultInjection, InjectedMpuViolationFaultsOnlyTheTargetProcess) {
  SimBoard board;
  AppSpec victim;
  victim.name = "victim";
  victim.source = kWorkerApp;
  AppSpec peer;
  peer.name = "peer";
  peer.source = kWorkerApp;
  ASSERT_NE(board.installer().Install(victim), 0u);
  ASSERT_NE(board.installer().Install(peer), 0u);
  ASSERT_EQ(board.Boot(), 2);

  board.fault_injector().ArmCpuFault(0, 500, VmFault::Kind::kBus);
  board.Run(2'000'000);

  Process* v = board.kernel().process(0);
  Process* p = board.kernel().process(1);
  EXPECT_EQ(board.fault_injector().cpu_faults_injected(), 1u);
  EXPECT_EQ(v->state, ProcessState::kFaulted);  // default policy: Stop
  EXPECT_EQ(v->fault_info.vm_fault.kind, VmFault::Kind::kBus);
  EXPECT_EQ(v->fault_info.vm_fault.bus_fault.kind, BusFaultKind::kMpuViolation);
  EXPECT_TRUE(p->IsAlive());
  EXPECT_GT(p->syscall_count, 0u);
  if (KernelTrace::kEnabled) {
    EXPECT_EQ(board.kernel().stats().process_faults, 1u);
  }
}

TEST(FaultInjection, FaultCauseIsRecordedInTheTrace) {
  if (!KernelTrace::kEnabled) {
    GTEST_SKIP() << "trace layer compiled out (TOCK_TRACE=OFF)";
  }
  SimBoard board;
  AppSpec app;
  app.name = "victim";
  app.source = kWorkerApp;
  ASSERT_NE(board.installer().Install(app), 0u);
  ASSERT_EQ(board.Boot(), 1);

  board.fault_injector().ArmCpuFault(0, 200, VmFault::Kind::kIllegalInstruction);
  board.Run(1'000'000);

  const auto& ring = board.kernel().trace().events();
  bool found = false;
  for (size_t i = 0; i < ring.Size(); ++i) {
    if (ring[i].kind == TraceEventKind::kProcessFault) {
      found = true;
      EXPECT_STREQ(FaultCauseName(ring[i].arg), "illegal-instruction");
    }
  }
  EXPECT_TRUE(found);
}

TEST(FaultPolicy, RestartIsDeferredWithExponentialBackoff) {
  BoardConfig config;
  config.kernel.default_fault_policy =
      FaultPolicy::Restart(/*max_restarts=*/8, /*backoff_base_cycles=*/200'000,
                           /*backoff_cap_cycles=*/10'000'000);
  SimBoard board(config);
  AppSpec app;
  app.name = "crashy";
  app.source = kWorkerApp;
  ASSERT_NE(board.installer().Install(app), 0u);
  ASSERT_EQ(board.Boot(), 1);

  board.fault_injector().ArmCpuFault(0, 300, VmFault::Kind::kBus);
  // Run in small slices until the fault fires, so we land inside the backoff.
  // (The injector's audit counter is the guard; KernelStats may be compiled out.)
  Process* p = board.kernel().process(0);
  int guard = 1000;
  while (board.fault_injector().armed_cpu_faults() > 0 && guard-- > 0) {
    board.Run(10'000);
  }
  ASSERT_EQ(board.fault_injector().cpu_faults_injected(), 1u);

  // The process is parked, its dynamic state reclaimed, and the revival scheduled
  // in the future — not performed inline in the fault handler.
  EXPECT_EQ(p->state, ProcessState::kRestartPending);
  EXPECT_FALSE(p->IsAlive());
  EXPECT_EQ(p->restart_count, 1u);
  EXPECT_EQ(p->grant_break, p->ram_start + p->ram_size);
  EXPECT_TRUE(p->upcall_queue.IsEmpty());
  if (KernelTrace::kEnabled) {
    EXPECT_EQ(board.kernel().stats().process_restarts, 0u);  // not revived yet
  }
  uint64_t first_delay = p->restart_due_cycle - p->fault_info.at_cycle;
  EXPECT_EQ(first_delay, 200'000u);
  ASSERT_GT(p->restart_due_cycle, board.mcu().CyclesNow());

  // Past the due cycle the process comes back and runs again.
  board.Run(p->restart_due_cycle - board.mcu().CyclesNow() + 100'000);
  EXPECT_TRUE(p->IsAlive());
  if (KernelTrace::kEnabled) {
    EXPECT_EQ(board.kernel().stats().process_restarts, 1u);
  }

  // A second fault backs off twice as long.
  board.fault_injector().ArmCpuFault(0, 300, VmFault::Kind::kBus);
  guard = 1000;
  while (board.fault_injector().armed_cpu_faults() > 0 && guard-- > 0) {
    board.Run(10'000);
  }
  ASSERT_EQ(board.fault_injector().cpu_faults_injected(), 2u);
  uint64_t second_delay = p->restart_due_cycle - p->fault_info.at_cycle;
  EXPECT_EQ(second_delay, 2 * first_delay);
}

TEST(FaultPolicy, AppBreakResetsAndPeerGrantsSurviveRestart) {
  BoardConfig config;
  config.kernel.default_fault_policy = FaultPolicy::Restart(8, 50'000, 1'000'000);
  SimBoard board(config);
  AppSpec victim;
  victim.name = "victim";
  // First incarnation only (RAM persists and marks the run): grow the break with
  // sbrk(2048), then spin. The restarted incarnation must come back at the
  // original break, not the widened one.
  victim.source = R"(
_start:
    mv s0, a0
    lw t0, 0(s0)
    bnez t0, spin
    li t1, 1
    sw t1, 0(s0)
    li a0, 1
    li a1, 2048
    li a4, 5
    ecall
spin:
    j spin
)";
  AppSpec peer;
  peer.name = "peer";
  peer.source = kWorkerApp;
  ASSERT_NE(board.installer().Install(victim), 0u);
  ASSERT_NE(board.installer().Install(peer), 0u);
  ASSERT_EQ(board.Boot(), 2);
  board.Run(500'000);

  Process* v = board.kernel().process(0);
  Process* p = board.kernel().process(1);
  ASSERT_EQ(v->app_break, v->initial_break + 2048);

  // Give the peer a grant allocation filled with a known pattern.
  CapabilityFactory factory;
  auto mem_cap = factory.MintMemoryAllocation();
  struct Pattern {
    uint8_t bytes[64];
  };
  Grant<Pattern> grant(&board.kernel(), mem_cap);
  ASSERT_TRUE(grant
                  .Enter(p->id,
                         [](Pattern& pat) {
                           for (size_t i = 0; i < sizeof(pat.bytes); ++i) {
                             pat.bytes[i] = static_cast<uint8_t>(0xA0 + i);
                           }
                         })
                  .ok());
  std::vector<uint8_t> before(p->ram_start + p->ram_size - p->grant_break);
  ASSERT_TRUE(board.mcu().bus().ReadBlock(p->grant_break, before.data(), before.size()));

  board.fault_injector().ArmCpuFault(0, 100, VmFault::Kind::kBus);
  board.Run(5'000'000);  // fault + backoff + revival

  ASSERT_EQ(board.fault_injector().cpu_faults_injected(), 1u);
  EXPECT_TRUE(v->IsAlive());
  EXPECT_EQ(v->restart_count, 1u);
  // The widened break did not survive the restart...
  EXPECT_EQ(v->app_break, v->initial_break);
  // ...and the peer's grant memory is byte-for-byte unaffected.
  std::vector<uint8_t> after(before.size());
  ASSERT_TRUE(board.mcu().bus().ReadBlock(p->grant_break, after.data(), after.size()));
  EXPECT_EQ(std::memcmp(before.data(), after.data(), before.size()), 0);
  int a_check = 0;
  ASSERT_TRUE(grant.Enter(p->id, [&](Pattern& pat) { a_check = pat.bytes[5]; }).ok());
  EXPECT_EQ(a_check, 0xA5);
}

TEST(FaultPolicy, CrashLoopingProcessCannotStarveItsPeer) {
  // The acceptance scenario: a process that faults the moment it runs, under a
  // Restart policy, must not prevent its peer from finishing its workload.
  BoardConfig config;
  config.kernel.default_fault_policy = FaultPolicy::Stop();
  SimBoard board(config);
  AppSpec bad;
  bad.name = "bad";
  bad.source = R"(
_start:
    li t0, 0x20000000
    sw t0, 0(t0)       # kernel RAM: faults immediately, every incarnation
)";
  AppSpec good;
  good.name = "good";
  good.source = R"(
_start:
    la a0, msg
    li a1, 5
    call console_print
    li a0, 42
    call tock_exit_terminate
msg:
    .asciz "done\n"
)";
  ASSERT_NE(board.installer().Install(bad), 0u);
  ASSERT_NE(board.installer().Install(good), 0u);
  ASSERT_EQ(board.Boot(), 2);

  // Give only the crash-looper a restart policy with a modest budget.
  ASSERT_TRUE(board.kernel()
                  .SetFaultPolicy(board.kernel().process(0)->id,
                                  FaultPolicy::Restart(/*max_restarts=*/4,
                                                       /*backoff_base_cycles=*/20'000,
                                                       /*backoff_cap_cycles=*/500'000),
                                  board.pm_cap())
                  .ok());
  board.Run(20'000'000);

  Process* bad_p = board.kernel().process(0);
  Process* good_p = board.kernel().process(1);
  EXPECT_EQ(good_p->state, ProcessState::kTerminated);
  EXPECT_EQ(good_p->completion_code, 42u);
  EXPECT_NE(board.uart_hw().output().find("done"), std::string::npos);
  // The crash loop burned its whole budget and ended terminally faulted.
  EXPECT_EQ(bad_p->restart_count, 4u);
  EXPECT_EQ(bad_p->state, ProcessState::kFaulted);
  if (KernelTrace::kEnabled) {
    EXPECT_EQ(board.kernel().stats().process_faults, 5u);  // initial + 4 restarts
    EXPECT_EQ(board.kernel().stats().process_restarts, 4u);
  }
}

TEST(FaultPolicy, PanicPolicyHaltsTheKernel) {
  BoardConfig config;
  config.kernel.default_fault_policy = FaultPolicy::Panic();
  SimBoard board(config);
  AppSpec bad;
  bad.name = "bad";
  bad.source = "_start:\n    li t0, 0x20000000\n    sw t0, 0(t0)\n";
  AppSpec other;
  other.name = "other";
  other.source = kWorkerApp;
  ASSERT_NE(board.installer().Install(bad), 0u);
  ASSERT_NE(board.installer().Install(other), 0u);
  ASSERT_EQ(board.Boot(), 2);

  board.Run(10'000'000);

  EXPECT_TRUE(board.kernel().panicked());
  EXPECT_EQ(board.kernel().process(0)->state, ProcessState::kFaulted);
  // The main loop halted: the peer stopped being scheduled, well short of the
  // simulated deadline.
  uint64_t halted_at = board.mcu().CyclesNow();
  EXPECT_LT(halted_at, 10'000'000u);
  uint64_t peer_syscalls = board.kernel().process(1)->syscall_count;
  board.Run(1'000'000);
  EXPECT_EQ(board.kernel().process(1)->syscall_count, peer_syscalls);
}

TEST(FaultPolicy, StopWhileRestartPendingCancelsTheRevival) {
  BoardConfig config;
  config.kernel.default_fault_policy = FaultPolicy::Restart(8, 500'000, 10'000'000);
  SimBoard board(config);
  AppSpec app;
  app.name = "victim";
  app.source = kWorkerApp;
  ASSERT_NE(board.installer().Install(app), 0u);
  ASSERT_EQ(board.Boot(), 1);

  board.fault_injector().ArmCpuFault(0, 200, VmFault::Kind::kBus);
  Process* p = board.kernel().process(0);
  int guard = 1000;
  while (board.fault_injector().armed_cpu_faults() > 0 && guard-- > 0) {
    board.Run(10'000);
  }
  ASSERT_EQ(p->state, ProcessState::kRestartPending);

  // Field operator stops the flapping process (e.g. via the process console).
  ASSERT_TRUE(board.kernel().StopProcess(p->id, board.pm_cap()).ok());
  EXPECT_EQ(p->state, ProcessState::kTerminated);

  board.Run(2'000'000);  // well past the would-be revival
  EXPECT_EQ(p->state, ProcessState::kTerminated);
  if (KernelTrace::kEnabled) {
    EXPECT_EQ(board.kernel().stats().process_restarts, 0u);
  }
}

// ---- Grant-allocation pressure ----------------------------------------------------------

TEST(FaultInjection, GrantFailureInjectionTargetsOnlyTheVictim) {
  SimBoard board;
  AppSpec a;
  a.name = "a";
  a.source = kSpinApp;
  AppSpec b;
  b.name = "b";
  b.source = kSpinApp;
  ASSERT_NE(board.installer().Install(a), 0u);
  ASSERT_NE(board.installer().Install(b), 0u);
  ASSERT_EQ(board.Boot(), 2);

  CapabilityFactory factory;
  auto mem_cap = factory.MintMemoryAllocation();
  struct Counter {
    int value = 0;
  };
  Grant<Counter> grant(&board.kernel(), mem_cap);
  ProcessId pa = board.kernel().process(0)->id;
  ProcessId pb = board.kernel().process(1)->id;

  board.fault_injector().FailNextGrantAllocs(pa.index, 1);

  // The victim's first-time allocation fails as if its quota were exhausted...
  Result<void> denied = grant.Enter(pa, [](Counter&) {});
  EXPECT_FALSE(denied.ok());
  // ...the peer allocates fine, and the victim recovers once the pressure lifts.
  EXPECT_TRUE(grant.Enter(pb, [](Counter&) {}).ok());
  EXPECT_TRUE(grant.Enter(pa, [](Counter&) {}).ok());
  EXPECT_EQ(board.fault_injector().grant_failures_injected(), 1u);
}

// ---- IRQ storm ---------------------------------------------------------------------------

TEST(FaultInjection, IrqStormIsServicedWithoutStarvingApps) {
  SimBoard board;
  AppSpec app;
  app.name = "worker";
  app.source = R"(
_start:
    la a0, msg
    li a1, 3
    call console_print
    li a0, 0
    call tock_exit_terminate
msg:
    .asciz "ok\n"
)";
  ASSERT_NE(board.installer().Install(app), 0u);
  ASSERT_EQ(board.Boot(), 1);

  uint64_t dispatches_before = board.kernel().stats().irq_dispatches;
  board.fault_injector().StartIrqStorm(&board.mcu(), MemoryMap::kGpio,
                                       /*period_cycles=*/2'000, /*count=*/50);
  board.Run(10'000'000);

  EXPECT_EQ(board.fault_injector().irqs_injected(), 50u);
  if (KernelTrace::kEnabled) {
    EXPECT_GE(board.kernel().stats().irq_dispatches - dispatches_before, 50u);
  }
  EXPECT_EQ(board.kernel().process(0)->state, ProcessState::kTerminated);
  EXPECT_NE(board.uart_hw().output().find("ok"), std::string::npos);
}

// ---- Loader corruption: integrity vs. authenticity (§3.4) --------------------------------

TEST(LoaderCorruption, BitFlippedHeaderFailsTheIntegrityStep) {
  BoardConfig config;
  config.kernel.loader = LoaderMode::kAsynchronous;
  SimBoard board(config);
  AppSpec app;
  app.name = "signed";
  app.source = kSpinApp;
  app.sign = true;
  uint32_t addr = board.installer().Install(app);
  ASSERT_NE(addr, 0u);

  // Flip one bit past the magic word (bits 0..31 would read as end-of-list, not
  // as corruption): the XOR checksum must catch it at the structural step.
  ASSERT_TRUE(FaultInjector::FlipHeaderBit(&board.mcu(), addr, /*bit_index=*/300));
  EXPECT_EQ(board.Boot(), 0);
  ASSERT_EQ(board.loader().records().size(), 1u);
  EXPECT_EQ(board.loader().records()[0].error, LoadError::kStructural);
  EXPECT_FALSE(board.loader().records()[0].created);
}

TEST(LoaderCorruption, BitFlippedSignatureFailsTheAuthenticityStep) {
  BoardConfig config;
  config.kernel.loader = LoaderMode::kAsynchronous;
  SimBoard board(config);
  AppSpec tampered;
  tampered.name = "tampered";
  tampered.source = kSpinApp;
  tampered.sign = true;
  AppSpec good;
  good.name = "good";
  good.source = kSpinApp;
  good.sign = true;
  uint32_t tampered_addr = board.installer().Install(tampered);
  ASSERT_NE(tampered_addr, 0u);
  ASSERT_NE(board.installer().Install(good), 0u);

  // The image still parses (header intact), but its MAC no longer verifies.
  ASSERT_TRUE(FaultInjector::FlipSignatureBit(&board.mcu(), tampered_addr, /*bit_index=*/77));
  EXPECT_EQ(board.Boot(), 1);
  ASSERT_EQ(board.loader().records().size(), 2u);
  EXPECT_EQ(board.loader().records()[0].error, LoadError::kAuthenticity);
  EXPECT_FALSE(board.loader().records()[0].created);
  EXPECT_TRUE(board.loader().records()[1].created);

  // Integrity and authenticity failures are distinct, typed outcomes.
  EXPECT_NE(LoadError::kStructural, LoadError::kAuthenticity);
  EXPECT_STRNE(LoadErrorName(LoadError::kStructural), LoadErrorName(LoadError::kAuthenticity));
}

// ---- Decode-cache coherence under flash corruption (vm/decode.h) -------------------------

// Mid-run reprogramming of a process's code — the fault-injection analogue of a TBF
// bit-flip landing in flash — must never leave the process executing stale decodes.
// ProgramFlash is the single modeled flash-write path; the kernel observes it
// (Kernel::OnFlashProgrammed) and invalidates the overlapping decode-cache words,
// so the next execution of the corrupted word refetches, decodes the garbage, and
// faults. Without that hook the predecoded loop body would keep running the *old*
// instructions forever and this test would time out un-faulted.
TEST(FaultInjection, MidRunFlashCorruptionIsExecutedFreshNotFromStaleDecodes) {
  SimBoard board;
  AppSpec worker;
  worker.name = "worker";
  worker.source = kWorkerApp;
  ASSERT_NE(board.installer().Install(worker), 0u);
  ASSERT_EQ(board.Boot(), 1);

  // Warm the decode cache: the loop body has executed many times.
  board.Run(100'000);
  Process* p = board.kernel().process(0);
  ASSERT_NE(p, nullptr);
  ASSERT_TRUE(p->IsAlive());
  ASSERT_GT(p->syscall_count, 0u);

  // Clobber the first loop instruction (entry + 4, after `mv s0, a0`) with an
  // all-zero word — not a valid RV32 encoding.
  const uint8_t zeros[4] = {0, 0, 0, 0};
  ASSERT_TRUE(board.mcu().bus().ProgramFlash(p->entry_point + 4, zeros, 4));

  board.Run(1'000'000);
  EXPECT_EQ(p->state, ProcessState::kFaulted);
  EXPECT_EQ(p->fault_info.vm_fault.kind, VmFault::Kind::kIllegalInstruction);
  EXPECT_EQ(p->fault_info.vm_fault.pc, p->entry_point + 4);
}

// Same scenario under the batch engine with superblocks: the corrupted word sits
// inside a hot chained block, so the ProgramFlash observer must drop the whole
// block (not just the word) for the garbage to be refetched. The run must be
// bit-identical to the per-insn reference engine — same fault, same pc, same
// instruction and cycle counts — and the terminal fault must settle the
// vm.cache_bytes gauge back to zero (ReleaseVmCache on the death path).
TEST(FaultInjection, MidRunFlashCorruptionUnderSuperblocksMatchesPerInsnEngine) {
  struct Outcome {
    uint64_t instructions = 0;
    uint64_t syscalls = 0;
    uint64_t cycles = 0;
    ProcessState state = ProcessState::kUnstarted;
    VmFault fault;
    uint64_t blocks_invalidated = 0;
    uint64_t cache_bytes = 0;
  };
  auto run = [](bool batch_engine) {
    BoardConfig config;
    config.kernel.enable_threaded_dispatch = batch_engine;
    config.kernel.enable_superblocks = batch_engine;
    SimBoard board(config);
    AppSpec worker;
    worker.name = "worker";
    worker.source = kWorkerApp;
    EXPECT_NE(board.installer().Install(worker), 0u);
    EXPECT_EQ(board.Boot(), 1);

    board.Run(100'000);  // warm: blocks built and chained across the loop branch
    Process* p = board.kernel().process(0);
    EXPECT_NE(p, nullptr);
    const uint8_t zeros[4] = {0, 0, 0, 0};
    EXPECT_TRUE(board.mcu().bus().ProgramFlash(p->entry_point + 4, zeros, 4));
    board.Run(1'000'000);

    Outcome o;
    o.instructions = board.kernel().instructions_retired();
    o.syscalls = board.kernel().stats().SyscallsTotal();
    o.cycles = board.mcu().CyclesNow();
    o.state = p->state;
    o.fault = p->fault_info.vm_fault;
    o.blocks_invalidated = board.kernel().stats().vm_blocks_invalidated;
    o.cache_bytes = board.kernel().stats().vm_cache_bytes;
    return o;
  };

  Outcome batch = run(true);
  Outcome perinsn = run(false);

  EXPECT_EQ(batch.state, ProcessState::kFaulted);
  EXPECT_EQ(batch.fault.kind, VmFault::Kind::kIllegalInstruction);
  EXPECT_EQ(batch.fault.pc, perinsn.fault.pc);
  EXPECT_EQ(batch.instructions, perinsn.instructions);
  EXPECT_EQ(batch.syscalls, perinsn.syscalls);
  EXPECT_EQ(batch.cycles, perinsn.cycles);

  if (KernelConfig::trace_enabled && KernelConfig::decode_cache_compiled) {
    // The terminal fault released the tables, settling the gauge to zero.
    EXPECT_EQ(batch.cache_bytes, 0u);
    if (DecodeCache::kSuperblocksCompiled) {
      // At least the corrupted word's block plus the blocks dying with the
      // released tables.
      EXPECT_GT(batch.blocks_invalidated, 0u);
    }
  }
}

}  // namespace
}  // namespace tock
