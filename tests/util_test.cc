// Unit tests for the util layer: cells, SubSlice, ring buffer, static vec,
// intrusive list, and the register-field DSL.
#include <gtest/gtest.h>

#include <array>
#include <cstdint>
#include <memory>
#include <numeric>
#include <span>

#include "util/cells.h"
#include "util/error.h"
#include "util/event_ring.h"
#include "util/intrusive_list.h"
#include "util/log2_hist.h"
#include "util/registers.h"
#include "util/ring_buffer.h"
#include "util/static_vec.h"
#include "util/subslice.h"

namespace tock {
namespace {

// ---- Result ------------------------------------------------------------------------

TEST(Result, SuccessCarriesValue) {
  Result<int> r(42);
  ASSERT_TRUE(r.ok());
  EXPECT_EQ(r.value(), 42);
  EXPECT_EQ(r.ValueOr(-1), 42);
}

TEST(Result, FailureCarriesError) {
  Result<int> r(ErrorCode::kBusy);
  ASSERT_FALSE(r.ok());
  EXPECT_EQ(r.error(), ErrorCode::kBusy);
  EXPECT_EQ(r.ValueOr(-1), -1);
}

TEST(Result, VoidSpecialization) {
  Result<void> ok = Result<void>::Ok();
  EXPECT_TRUE(ok.ok());
  Result<void> err(ErrorCode::kNoMem);
  EXPECT_FALSE(err.ok());
  EXPECT_EQ(err.error(), ErrorCode::kNoMem);
}

TEST(Result, ErrorCodeNamesAreStable) {
  EXPECT_STREQ(ErrorCodeName(ErrorCode::kFail), "FAIL");
  EXPECT_STREQ(ErrorCodeName(ErrorCode::kNoMem), "NOMEM");
  EXPECT_STREQ(ErrorCodeName(ErrorCode::kBadRval), "BADRVAL");
}

// ---- Cells -------------------------------------------------------------------------

TEST(Cell, GetSetReplace) {
  Cell<int> cell(1);
  EXPECT_EQ(cell.Get(), 1);
  cell.Set(2);
  EXPECT_EQ(cell.Get(), 2);
  EXPECT_EQ(cell.Replace(3), 2);
  EXPECT_EQ(cell.Get(), 3);
}

TEST(OptionalCell, TakeEmptiesTheCell) {
  OptionalCell<int> cell(7);
  ASSERT_TRUE(cell.IsSome());
  auto taken = cell.Take();
  ASSERT_TRUE(taken.has_value());
  EXPECT_EQ(*taken, 7);
  EXPECT_TRUE(cell.IsNone());
  EXPECT_FALSE(cell.Take().has_value());
}

TEST(OptionalCell, ExtractCopiesWithoutEmptying) {
  OptionalCell<int> cell(9);
  EXPECT_EQ(*cell.Extract(), 9);
  EXPECT_TRUE(cell.IsSome());
}

TEST(OptionalCell, MapRunsOnlyWhenPresent) {
  OptionalCell<int> cell;
  int runs = 0;
  EXPECT_FALSE(cell.Map([&](int&) { ++runs; }));
  cell.Set(1);
  EXPECT_TRUE(cell.Map([&](int& v) {
    ++runs;
    v = 5;
  }));
  EXPECT_EQ(runs, 1);
  EXPECT_EQ(cell.UnwrapOr(0), 5);
}

TEST(OptionalCell, MapOrFallsBack) {
  OptionalCell<int> cell;
  EXPECT_EQ(cell.MapOr<int>(-1, [](const int& v) { return v * 2; }), -1);
  cell.Set(21);
  EXPECT_EQ(cell.MapOr<int>(-1, [](const int& v) { return v * 2; }), 42);
}

TEST(TakeCell, TakeEnforcesExclusiveAccess) {
  int storage = 11;
  TakeCell<int> cell(&storage);
  ASSERT_TRUE(cell.IsSome());
  int* taken = cell.Take();
  EXPECT_EQ(taken, &storage);
  EXPECT_TRUE(cell.IsNone());
  EXPECT_EQ(cell.Take(), nullptr);  // double-take yields nothing
  cell.Replace(taken);
  EXPECT_TRUE(cell.IsSome());
}

TEST(TakeCell, MapLeavesContentsInPlace) {
  int storage = 1;
  TakeCell<int> cell(&storage);
  EXPECT_TRUE(cell.Map([](int& v) { v = 2; }));
  EXPECT_TRUE(cell.IsSome());
  EXPECT_EQ(storage, 2);
  EXPECT_EQ(cell.MapOr<int>(-1, [](int& v) { return v + 1; }), 3);
}

TEST(MapCell, OwnsItsStorage) {
  MapCell<int> cell;
  EXPECT_TRUE(cell.IsNone());
  cell.Put(4);
  EXPECT_TRUE(cell.Map([](int& v) { v *= 10; }));
  auto taken = cell.Take();
  ASSERT_TRUE(taken.has_value());
  EXPECT_EQ(*taken, 40);
  EXPECT_TRUE(cell.IsNone());
}

// ---- SubSlice (Figure 4) -------------------------------------------------------------

class SubSliceTest : public ::testing::Test {
 protected:
  void SetUp() override { std::iota(storage_.begin(), storage_.end(), 0); }
  std::array<uint8_t, 16> storage_;
};

TEST_F(SubSliceTest, InitiallyCoversWholeBuffer) {
  SubSliceMut slice(storage_.data(), storage_.size());
  EXPECT_EQ(slice.Size(), 16u);
  EXPECT_EQ(slice.Capacity(), 16u);
  EXPECT_EQ(slice[0], 0);
  EXPECT_EQ(slice[15], 15);
}

TEST_F(SubSliceTest, SliceNarrowsWindowRelatively) {
  SubSliceMut slice(storage_.data(), storage_.size());
  slice.Slice(4, 8);
  EXPECT_EQ(slice.Size(), 8u);
  EXPECT_EQ(slice[0], 4);
  slice.Slice(2, 2);  // relative to the current window
  EXPECT_EQ(slice.Size(), 2u);
  EXPECT_EQ(slice[0], 6);
}

TEST_F(SubSliceTest, ResetRestoresFullExtent) {
  SubSliceMut slice(storage_.data(), storage_.size());
  slice.Slice(10, 2);
  slice.Slice(1, 1);
  slice.Reset();
  EXPECT_EQ(slice.Size(), 16u);
  EXPECT_EQ(slice[0], 0);
}

TEST_F(SubSliceTest, OutOfRangeSliceClamps) {
  SubSliceMut slice(storage_.data(), storage_.size());
  slice.Slice(20, 5);
  EXPECT_EQ(slice.Size(), 0u);
  slice.Reset();
  slice.Slice(12, 100);
  EXPECT_EQ(slice.Size(), 4u);
}

TEST_F(SubSliceTest, SliceToAndFrom) {
  SubSliceMut slice(storage_.data(), storage_.size());
  slice.SliceTo(4);
  EXPECT_EQ(slice.Size(), 4u);
  EXPECT_EQ(slice[3], 3);
  slice.Reset();
  slice.SliceFrom(12);
  EXPECT_EQ(slice.Size(), 4u);
  EXPECT_EQ(slice[0], 12);
}

TEST_F(SubSliceTest, WritesThroughWindowHitUnderlyingBuffer) {
  SubSliceMut slice(storage_.data(), storage_.size());
  slice.Slice(8, 4);
  slice[0] = 0xAA;
  EXPECT_EQ(storage_[8], 0xAA);
}

TEST_F(SubSliceTest, SameBufferIdentity) {
  SubSliceMut a(storage_.data(), storage_.size());
  SubSliceMut b(storage_.data(), storage_.size());
  std::array<uint8_t, 4> other{};
  SubSliceMut c(other.data(), other.size());
  EXPECT_TRUE(a.SameBuffer(b));
  EXPECT_FALSE(a.SameBuffer(c));
}

// Regression (§5.2): a default-constructed SubSlice used to carry a null data_, so
// Active() computed `nullptr + 0` — the null zero-length-slice UB the paper calls
// out for Rust slices. The fix gives empty slices a non-null sentinel base (the C++
// analog of NonNull::dangling()); every operation below must be well-defined.
TEST(SubSliceDefault, EmptySliceOperationsAreNullSafe) {
  SubSliceMut slice;
  EXPECT_EQ(slice.Size(), 0u);
  EXPECT_TRUE(slice.IsEmpty());
  EXPECT_EQ(slice.Capacity(), 0u);
  std::span<uint8_t> active = slice.Active();
  EXPECT_EQ(active.size(), 0u);
  EXPECT_NE(active.data(), nullptr);  // the sentinel, never nullptr arithmetic
  slice.Slice(3, 7);  // clamps to the (empty) window
  EXPECT_EQ(slice.Size(), 0u);
  slice.Reset();
  EXPECT_EQ(slice.Size(), 0u);
  // Two empty slices window the "same" (sentinel) buffer; a real buffer differs.
  SubSliceMut other;
  EXPECT_TRUE(slice.SameBuffer(other));
  std::array<uint8_t, 4> storage{};
  SubSliceMut real(storage.data(), storage.size());
  EXPECT_FALSE(slice.SameBuffer(real));
}

TEST(SubSliceDefault, EmptySpanWithNullDataIsNullSafe) {
  // std::span's default constructor yields data() == nullptr; wrapping it must not
  // leave a null base inside the SubSlice either.
  SubSlice slice{std::span<const uint8_t>()};
  EXPECT_EQ(slice.Size(), 0u);
  EXPECT_NE(slice.Active().data(), nullptr);
}

// Property: any sequence of slices never escapes the original extent, and Reset
// always restores it — the Figure 4 invariant.
class SubSliceProperty : public ::testing::TestWithParam<uint32_t> {};

TEST_P(SubSliceProperty, SliceSequencesStayInBoundsAndResetRestores) {
  std::array<uint8_t, 64> storage{};
  std::iota(storage.begin(), storage.end(), 0);
  SubSliceMut slice(storage.data(), storage.size());

  uint32_t state = GetParam() * 2654435761u + 1;
  auto next = [&state] {
    state ^= state << 13;
    state ^= state >> 17;
    state ^= state << 5;
    return state;
  };

  for (int step = 0; step < 100; ++step) {
    uint32_t offset = next() % 70;  // deliberately allows out-of-range requests
    uint32_t len = next() % 70;
    slice.Slice(offset, len);
    ASSERT_LE(slice.Size(), slice.Capacity());
    if (!slice.IsEmpty()) {
      // Every visible element must alias the original storage at a consistent index.
      uint8_t first = slice[0];
      ASSERT_LT(first, 64);
      ASSERT_EQ(&slice[0], &storage[first]);
    }
    if (next() % 4 == 0) {
      slice.Reset();
      ASSERT_EQ(slice.Size(), 64u);
    }
  }
  slice.Reset();
  EXPECT_EQ(slice.Size(), 64u);
  EXPECT_EQ(&slice[0], storage.data());
}

INSTANTIATE_TEST_SUITE_P(Seeds, SubSliceProperty, ::testing::Range(0u, 16u));

// ---- RingBuffer ----------------------------------------------------------------------

TEST(RingBuffer, PushPopFifoOrder) {
  RingBuffer<int, 4> rb;
  EXPECT_TRUE(rb.IsEmpty());
  EXPECT_TRUE(rb.Push(1));
  EXPECT_TRUE(rb.Push(2));
  EXPECT_TRUE(rb.Push(3));
  EXPECT_EQ(*rb.Pop(), 1);
  EXPECT_EQ(*rb.Pop(), 2);
  EXPECT_TRUE(rb.Push(4));
  EXPECT_TRUE(rb.Push(5));
  EXPECT_TRUE(rb.Push(6));
  EXPECT_TRUE(rb.IsFull());
  EXPECT_FALSE(rb.Push(7));
  EXPECT_EQ(*rb.Pop(), 3);
  EXPECT_EQ(*rb.Pop(), 4);
  EXPECT_EQ(*rb.Pop(), 5);
  EXPECT_EQ(*rb.Pop(), 6);
  EXPECT_FALSE(rb.Pop().has_value());
}

TEST(RingBuffer, FrontPeeksWithoutRemoving) {
  RingBuffer<int, 2> rb;
  EXPECT_EQ(rb.Front(), nullptr);
  rb.Push(9);
  ASSERT_NE(rb.Front(), nullptr);
  EXPECT_EQ(*rb.Front(), 9);
  EXPECT_EQ(rb.Size(), 1u);
}

TEST(RingBuffer, RemoveIfPreservesOrderOfSurvivors) {
  RingBuffer<int, 8> rb;
  for (int i = 1; i <= 6; ++i) {
    rb.Push(i);
  }
  size_t removed = rb.RemoveIf([](int v) { return v % 2 == 0; });
  EXPECT_EQ(removed, 3u);
  EXPECT_EQ(rb.Size(), 3u);
  EXPECT_EQ(*rb.Pop(), 1);
  EXPECT_EQ(*rb.Pop(), 3);
  EXPECT_EQ(*rb.Pop(), 5);
}

TEST(RingBuffer, RemoveIfWorksAcrossWraparound) {
  RingBuffer<int, 4> rb;
  rb.Push(1);
  rb.Push(2);
  rb.Pop();
  rb.Pop();
  rb.Push(3);
  rb.Push(4);
  rb.Push(5);
  rb.Push(6);  // storage now wraps
  EXPECT_EQ(rb.RemoveIf([](int v) { return v == 4 || v == 6; }), 2u);
  EXPECT_EQ(*rb.Pop(), 3);
  EXPECT_EQ(*rb.Pop(), 5);
  EXPECT_TRUE(rb.IsEmpty());
}

// Regression (§3.3.2 scrub hygiene): RemoveIf used to compact survivors but leave
// the removed elements (and moved-from residue) alive in the vacated tail slots —
// a "scrubbed" upcall's payload survived its own scrub. Vacated slots must be reset
// to T{}, observable here as the shared_ptr refcount dropping back to 1.
TEST(RingBuffer, RemoveIfScrubsVacatedSlots) {
  RingBuffer<std::shared_ptr<int>, 4> rb;
  auto keep = std::make_shared<int>(1);
  auto scrub_a = std::make_shared<int>(2);
  auto scrub_b = std::make_shared<int>(3);
  rb.Push(scrub_a);
  rb.Push(keep);
  rb.Push(scrub_b);
  EXPECT_EQ(scrub_a.use_count(), 2);
  EXPECT_EQ(scrub_b.use_count(), 2);

  EXPECT_EQ(rb.RemoveIf([](const std::shared_ptr<int>& p) { return *p != 1; }), 2u);
  EXPECT_EQ(rb.Size(), 1u);
  // The buffer holds no reference to the scrubbed elements any more.
  EXPECT_EQ(scrub_a.use_count(), 1);
  EXPECT_EQ(scrub_b.use_count(), 1);
  EXPECT_EQ(keep.use_count(), 2);
  EXPECT_EQ(**rb.Front(), 1);
}

TEST(RingBuffer, RemoveIfScrubsVacatedSlotsAcrossWraparound) {
  RingBuffer<std::shared_ptr<int>, 4> rb;
  rb.Push(std::make_shared<int>(0));
  rb.Push(std::make_shared<int>(0));
  rb.Pop();
  rb.Pop();  // head now at slot 2
  std::array<std::shared_ptr<int>, 4> tracked;
  for (int i = 0; i < 4; ++i) {
    tracked[i] = std::make_shared<int>(i);
    rb.Push(tracked[i]);  // elements 2..3 wrap into slots 0..1
  }
  EXPECT_EQ(rb.RemoveIf([](const std::shared_ptr<int>& p) { return *p % 2 == 0; }), 2u);
  EXPECT_EQ(rb.Size(), 2u);
  EXPECT_EQ(tracked[0].use_count(), 1);
  EXPECT_EQ(tracked[2].use_count(), 1);
  EXPECT_EQ(tracked[1].use_count(), 2);
  EXPECT_EQ(tracked[3].use_count(), 2);
  EXPECT_EQ(**rb.Pop(), 1);
  EXPECT_EQ(**rb.Pop(), 3);
}

// RemoveFirstIf is the upcall-queue fast path (HandleYield wait-for / blocking
// command): it must take only the *first* match, hand it back, shift survivors,
// and scrub exactly the one vacated slot — the same hygiene contract as RemoveIf.
TEST(RingBuffer, RemoveFirstIfTakesOnlyTheFirstMatchInFifoOrder) {
  RingBuffer<int, 8> rb;
  for (int v : {10, 21, 32, 41, 52}) {
    rb.Push(v);
  }
  std::optional<int> taken = rb.RemoveFirstIf([](int v) { return v % 2 == 1; });
  ASSERT_TRUE(taken.has_value());
  EXPECT_EQ(*taken, 21);  // not 41: first match wins
  EXPECT_EQ(rb.Size(), 4u);
  EXPECT_EQ(*rb.Pop(), 10);
  EXPECT_EQ(*rb.Pop(), 32);
  EXPECT_EQ(*rb.Pop(), 41);
  EXPECT_EQ(*rb.Pop(), 52);

  EXPECT_FALSE(rb.RemoveFirstIf([](int) { return true; }).has_value());  // now empty
}

TEST(RingBuffer, RemoveFirstIfReturnsNulloptWhenNothingMatches) {
  RingBuffer<int, 4> rb;
  rb.Push(2);
  rb.Push(4);
  EXPECT_FALSE(rb.RemoveFirstIf([](int v) { return v > 100; }).has_value());
  EXPECT_EQ(rb.Size(), 2u);
  EXPECT_EQ(*rb.Front(), 2);  // untouched
}

TEST(RingBuffer, RemoveFirstIfScrubsTheVacatedSlotAcrossWraparound) {
  RingBuffer<std::shared_ptr<int>, 4> rb;
  rb.Push(std::make_shared<int>(0));
  rb.Push(std::make_shared<int>(0));
  rb.Pop();
  rb.Pop();  // head at slot 2: pushed elements wrap
  std::array<std::shared_ptr<int>, 3> tracked;
  for (int i = 0; i < 3; ++i) {
    tracked[i] = std::make_shared<int>(i);
    rb.Push(tracked[i]);
  }
  std::optional<std::shared_ptr<int>> taken =
      rb.RemoveFirstIf([](const std::shared_ptr<int>& p) { return *p == 1; });
  ASSERT_TRUE(taken.has_value());
  EXPECT_EQ(**taken, 1);
  taken.reset();
  // The buffer holds no residue of the removed element; survivors keep order.
  EXPECT_EQ(tracked[1].use_count(), 1);
  EXPECT_EQ(tracked[0].use_count(), 2);
  EXPECT_EQ(tracked[2].use_count(), 2);
  EXPECT_EQ(**rb.Pop(), 0);
  EXPECT_EQ(**rb.Pop(), 2);
  EXPECT_TRUE(rb.IsEmpty());
}

TEST(RingBuffer, ClearResets) {
  RingBuffer<int, 2> rb;
  rb.Push(1);
  rb.Clear();
  EXPECT_TRUE(rb.IsEmpty());
  EXPECT_TRUE(rb.Push(2));
  EXPECT_EQ(*rb.Pop(), 2);
}

// ---- EventRing -----------------------------------------------------------------------
// The trace ring (kernel/trace.h) — unlike RingBuffer it never drops new entries;
// when full it evicts the oldest, because the most recent events are the ones a
// post-mortem wants.

TEST(EventRing, KeepsEverythingWithinCapacity) {
  EventRing<int, 4> ring;
  for (int i = 0; i < 3; ++i) {
    ring.Push(i);
  }
  EXPECT_EQ(ring.Size(), 3u);
  EXPECT_EQ(ring.TotalRecorded(), 3u);
  EXPECT_EQ(ring.Evicted(), 0u);
  for (size_t i = 0; i < ring.Size(); ++i) {
    EXPECT_EQ(ring[i], static_cast<int>(i));
  }
}

TEST(EventRing, OverflowEvictsOldestNotNewest) {
  EventRing<int, 4> ring;
  for (int i = 0; i < 10; ++i) {
    ring.Push(i);
  }
  EXPECT_EQ(ring.Size(), 4u);
  EXPECT_EQ(ring.TotalRecorded(), 10u);
  EXPECT_EQ(ring.Evicted(), 6u);
  // The four *newest* survive, oldest-first.
  int expected = 6;
  ring.ForEach([&expected](const int& v) { EXPECT_EQ(v, expected++); });
  EXPECT_EQ(expected, 10);
  EXPECT_EQ(ring[0], 6);
  EXPECT_EQ(ring[3], 9);
}

TEST(EventRing, ClearResetsAllBookkeeping) {
  EventRing<int, 2> ring;
  ring.Push(1);
  ring.Push(2);
  ring.Push(3);
  ring.Clear();
  EXPECT_EQ(ring.Size(), 0u);
  EXPECT_EQ(ring.TotalRecorded(), 0u);
  EXPECT_EQ(ring.Evicted(), 0u);
  ring.Push(7);
  EXPECT_EQ(ring.Size(), 1u);
  EXPECT_EQ(ring[0], 7);
}

// ---- StaticVec -----------------------------------------------------------------------

TEST(StaticVec, PushPopAndBounds) {
  StaticVec<int, 3> v;
  EXPECT_TRUE(v.PushBack(1));
  EXPECT_TRUE(v.PushBack(2));
  EXPECT_TRUE(v.PushBack(3));
  EXPECT_FALSE(v.PushBack(4));
  EXPECT_TRUE(v.IsFull());
  EXPECT_EQ(v.PopBack(), 3);
  EXPECT_EQ(v.Size(), 2u);
}

TEST(StaticVec, EraseShiftsStably) {
  StaticVec<int, 4> v;
  v.PushBack(10);
  v.PushBack(20);
  v.PushBack(30);
  v.Erase(1);
  ASSERT_EQ(v.Size(), 2u);
  EXPECT_EQ(v[0], 10);
  EXPECT_EQ(v[1], 30);
}

TEST(StaticVec, RangeForIteration) {
  StaticVec<int, 4> v;
  v.PushBack(1);
  v.PushBack(2);
  int sum = 0;
  for (int x : v) {
    sum += x;
  }
  EXPECT_EQ(sum, 3);
}

// ---- IntrusiveList -------------------------------------------------------------------

struct Node {
  int value;
  ListLink<Node> link;
};

TEST(IntrusiveList, PushHeadPopHead) {
  IntrusiveList<Node> list;
  Node a{1, {}}, b{2, {}};
  list.PushHead(&a);
  list.PushHead(&b);
  EXPECT_EQ(list.Size(), 2u);
  EXPECT_EQ(list.PopHead(), &b);
  EXPECT_EQ(list.PopHead(), &a);
  EXPECT_EQ(list.PopHead(), nullptr);
}

TEST(IntrusiveList, PushTailKeepsFifo) {
  IntrusiveList<Node> list;
  Node a{1, {}}, b{2, {}}, c{3, {}};
  list.PushTail(&a);
  list.PushTail(&b);
  list.PushTail(&c);
  EXPECT_EQ(list.PopHead(), &a);
  EXPECT_EQ(list.PopHead(), &b);
  EXPECT_EQ(list.PopHead(), &c);
}

TEST(IntrusiveList, RemoveMiddleAndMissing) {
  IntrusiveList<Node> list;
  Node a{1, {}}, b{2, {}}, c{3, {}}, d{4, {}};
  list.PushTail(&a);
  list.PushTail(&b);
  list.PushTail(&c);
  EXPECT_TRUE(list.Remove(&b));
  EXPECT_FALSE(list.Remove(&d));
  EXPECT_FALSE(list.Contains(&b));
  EXPECT_TRUE(list.Contains(&a));
  EXPECT_TRUE(list.Contains(&c));
  EXPECT_EQ(list.Size(), 2u);
}

TEST(IntrusiveList, IterationVisitsAll) {
  IntrusiveList<Node> list;
  Node a{1, {}}, b{2, {}}, c{4, {}};
  list.PushTail(&a);
  list.PushTail(&b);
  list.PushTail(&c);
  int sum = 0;
  for (Node* n : list) {
    sum += n->value;
  }
  EXPECT_EQ(sum, 7);
}

// ---- Register DSL (§4.3, E9) ----------------------------------------------------------

struct TestReg {
  static constexpr Field<uint32_t> kEnable{0, 1};
  static constexpr Field<uint32_t> kMode{1, 3};
  static constexpr Field<uint32_t> kCount{8, 8};
  static constexpr Field<uint32_t> kFull{0, 32};
};

TEST(Registers, FieldMasksAndPositions) {
  EXPECT_EQ(TestReg::kEnable.Mask(), 0x1u);
  EXPECT_EQ(TestReg::kMode.Mask(), 0xEu);
  EXPECT_EQ(TestReg::kCount.Mask(), 0xFF00u);
  EXPECT_EQ(TestReg::kFull.Mask(), 0xFFFFFFFFu);
}

TEST(Registers, ValTruncatesToFieldWidth) {
  EXPECT_EQ(TestReg::kMode.Val(0x7).value, 0xEu);
  EXPECT_EQ(TestReg::kMode.Val(0xFF).value, 0xEu);  // overflow truncated
  EXPECT_EQ(TestReg::kCount.Val(0x12).value, 0x1200u);
}

TEST(Registers, WriteOverwritesWholeRegister) {
  ReadWriteReg<uint32_t> reg(0xFFFFFFFF);
  reg.Write(TestReg::kCount.Val(0x34));
  EXPECT_EQ(reg.Get(), 0x3400u);  // unset fields become zero
}

TEST(Registers, ModifyPreservesOtherFields) {
  ReadWriteReg<uint32_t> reg;
  reg.Write(TestReg::kEnable.Set() + TestReg::kCount.Val(0xAB));
  reg.Modify(TestReg::kMode.Val(0x5));
  EXPECT_EQ(reg.Read(TestReg::kEnable), 1u);
  EXPECT_EQ(reg.Read(TestReg::kMode), 5u);
  EXPECT_EQ(reg.Read(TestReg::kCount), 0xABu);
}

TEST(Registers, CombinedFieldValues) {
  FieldValue<uint32_t> fv = TestReg::kEnable.Set() + TestReg::kMode.Val(2);
  EXPECT_EQ(fv.mask, 0xFu);
  EXPECT_EQ(fv.value, 0x5u);
}

TEST(Registers, ReadOnlyHwSideUpdates) {
  ReadOnlyReg<uint32_t> reg;
  reg.HwSet(0x0100);
  EXPECT_EQ(reg.Read(TestReg::kCount), 1u);
  reg.HwModify(TestReg::kEnable.Set());
  EXPECT_EQ(reg.Get(), 0x0101u);
}

TEST(Registers, WriteOnlyHwSideReads) {
  WriteOnlyReg<uint32_t> reg;
  reg.Write(TestReg::kCount.Val(0x42));
  EXPECT_EQ(reg.HwGet(), 0x4200u);
}

TEST(Registers, LocalCopyStagesModifications) {
  LocalRegisterCopy<uint32_t> copy(0x0101);
  copy.Modify(TestReg::kCount.Val(0xFF));
  copy.Modify(TestReg::kEnable.Clear());
  EXPECT_EQ(copy.Get(), 0xFF00u);
  EXPECT_EQ(copy.Read(TestReg::kCount), 0xFFu);
}

TEST(Registers, IsSetDetectsAnyFieldBit) {
  ReadWriteReg<uint32_t> reg;
  EXPECT_FALSE(reg.IsSet(TestReg::kMode));
  reg.Modify(TestReg::kMode.Val(0x4));
  EXPECT_TRUE(reg.IsSet(TestReg::kMode));
}

TEST(Log2Hist, BucketBoundariesAreExact) {
  // Bucket i covers [2^i, 2^(i+1)); bucket 0 additionally absorbs 0 and 1. Probe
  // every boundary: low edge, high edge, and one past the high edge.
  EXPECT_EQ(Log2Hist::BucketIndex(0), 0u);
  EXPECT_EQ(Log2Hist::BucketIndex(1), 0u);
  EXPECT_EQ(Log2Hist::BucketIndex(2), 1u);
  EXPECT_EQ(Log2Hist::BucketIndex(3), 1u);
  EXPECT_EQ(Log2Hist::BucketIndex(4), 2u);
  for (size_t i = 1; i < Log2Hist::kBuckets - 1; ++i) {
    EXPECT_EQ(Log2Hist::BucketIndex(Log2Hist::BucketLow(i)), i);
    EXPECT_EQ(Log2Hist::BucketIndex(Log2Hist::BucketHigh(i)), i);
    EXPECT_EQ(Log2Hist::BucketIndex(Log2Hist::BucketHigh(i) + 1), i + 1);
  }
  Log2Hist h;
  h.Record(0);
  h.Record(1);
  h.Record(2);
  EXPECT_EQ(h.bucket(0), 2u);
  EXPECT_EQ(h.bucket(1), 1u);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.sum(), 3u);
  EXPECT_EQ(h.min(), 0u);
  EXPECT_EQ(h.max(), 2u);
  EXPECT_EQ(h.Mean(), 1u);
}

TEST(Log2Hist, TopBucketSaturates) {
  // Everything from 2^31 up to UINT64_MAX lands in bucket 31 — no overflow, no
  // out-of-bounds index, and the stats still carry the true extremes.
  Log2Hist h;
  h.Record(uint64_t{1} << 31);
  h.Record(uint64_t{1} << 40);
  h.Record(UINT64_MAX);
  EXPECT_EQ(h.bucket(Log2Hist::kBuckets - 1), 3u);
  EXPECT_EQ(h.count(), 3u);
  EXPECT_EQ(h.max(), UINT64_MAX);
  EXPECT_EQ(h.min(), uint64_t{1} << 31);
  EXPECT_EQ(Log2Hist::BucketHigh(Log2Hist::kBuckets - 1), UINT64_MAX);
}

TEST(Log2Hist, MergeIsBucketExactAndTracksExtremes) {
  Log2Hist a;
  Log2Hist b;
  a.Record(5);     // bucket 2
  a.Record(1000);  // bucket 9
  b.Record(6);     // bucket 2
  b.Record(2);     // bucket 1
  a.Merge(b);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.sum(), 5u + 1000u + 6u + 2u);
  EXPECT_EQ(a.bucket(1), 1u);
  EXPECT_EQ(a.bucket(2), 2u);
  EXPECT_EQ(a.bucket(9), 1u);
  EXPECT_EQ(a.min(), 2u);
  EXPECT_EQ(a.max(), 1000u);
  // Merging an empty histogram is a no-op, including on min().
  Log2Hist empty;
  a.Merge(empty);
  EXPECT_EQ(a.count(), 4u);
  EXPECT_EQ(a.min(), 2u);
  // And merging *into* an empty one adopts the other's extremes.
  Log2Hist c;
  c.Merge(a);
  EXPECT_EQ(c.min(), 2u);
  EXPECT_EQ(c.max(), 1000u);
  EXPECT_EQ(c.count(), 4u);
  c.Clear();
  EXPECT_EQ(c.count(), 0u);
  EXPECT_EQ(c.min(), 0u);
}

}  // namespace
}  // namespace tock
